// PVN Store walkthrough (paper §3.1): "PVNC components can be provided as
// independent entities and shared among users ... we propose building a
// 'PVN Store' akin to an app- or browser-extension marketplace."
//
// Browse the catalog, compose a PVNC from purchased modules under a budget,
// price it, deploy it, and show the itemized bill.
#include <cstdio>

#include "testbed/testbed.h"

using namespace pvn;

int main() {
  Testbed tb;

  std::printf("== PVN Store catalog ==\n");
  std::printf("%-18s %-14s %-8s %s\n", "module", "publisher", "price",
              "description");
  for (const ModuleInfo& info : tb.store->catalog()) {
    std::printf("%-18s %-14s $%-7.2f %s\n", info.name.c_str(),
                info.publisher.c_str(), info.price_per_deploy,
                info.description.c_str());
  }

  // Compose greedily by utility-per-dollar under a budget.
  const double budget = 2.00;
  const std::map<std::string, double> utility = {
      {"pii-detector", 4.0},     {"tls-validator", 3.0},
      {"dns-validator", 2.0},    {"tracker-blocker", 1.5},
      {"malware-detector", 1.0}, {"classifier", 0.2}};
  std::printf("\n== composing under a $%.2f budget ==\n", budget);

  std::vector<std::pair<double, std::string>> ranked;
  for (const auto& [name, u] : utility) {
    if (const ModuleInfo* info = tb.store->info(name)) {
      const double per_dollar =
          info->price_per_deploy > 0 ? u / info->price_per_deploy : u * 100;
      ranked.emplace_back(per_dollar, name);
    }
  }
  std::sort(ranked.rbegin(), ranked.rend());

  Pvnc pvnc;
  pvnc.name = "alice-phone";
  double spent = 0;
  for (const auto& [per_dollar, name] : ranked) {
    const double price = tb.store->info(name)->price_per_deploy;
    if (spent + price > budget) continue;
    spent += price;
    pvnc.chain.push_back(PvncModule{name, {}});
    std::printf("  + %-18s ($%.2f, %.1f utility/$)\n", name.c_str(), price,
                per_dollar);
  }
  std::printf("cart total: $%.2f\n", tb.store->price_of(pvnc.module_names()));

  const DeployOutcome out = tb.deploy(pvnc);
  std::printf("\n== deployment ==\n");
  if (!out.ok) {
    std::printf("failed: %s\n", out.failure.c_str());
    return 1;
  }
  std::printf("chain %s live after %s; paid $%.2f\n", out.chain_id.c_str(),
              format_duration(out.elapsed).c_str(), out.paid);

  std::printf("\n== itemized ledger ==\n");
  for (const LedgerEntry& e : tb.ledger->entries()) {
    std::printf("  %10s  %-12s -> %-12s $%-6.2f %s\n",
                format_duration(e.at).c_str(), e.payer.c_str(),
                e.payee.c_str(), e.amount, e.memo.c_str());
  }
  std::printf("access-net revenue: $%.2f\n", tb.ledger->balance("access-net"));
  return 0;
}
