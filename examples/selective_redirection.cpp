// Selective redirection (Fig. 1c) end-to-end through the PVNC `tunnel`
// policy: sensitive flows (port 443, which need TLS interception in a
// trusted cloud enclave) are encapsulated toward the cloud gateway by the
// access switch; everything else stays in-network at full speed.
#include <cstdio>

#include "netsim/trace.h"
#include "testbed/testbed.h"

using namespace pvn;

int main() {
  Testbed tb;

  // PVNC: tunnel only dport 443 to the cloud gateway.
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  PvncPolicy tunnel;
  tunnel.kind = PvncPolicy::Kind::kTunnel;
  tunnel.match.proto = IpProto::kUdp;
  tunnel.match.dst_port = 443;
  tunnel.gateway = tb.addrs.cloud_gw;
  pvnc.policies.push_back(tunnel);
  const DeployOutcome out = tb.deploy(pvnc);
  std::printf("deployment: %s\n",
              out.ok ? out.chain_id.c_str() : out.failure.c_str());

  // Echo responders on the web server for both flow classes.
  tb.web->bind_udp(80, [&](Ipv4Addr src, Port sport, Port dport,
                           const Bytes& b) {
    tb.web->send_udp(src, dport, sport, b);
  });
  tb.web->bind_udp(443, [&](Ipv4Addr src, Port sport, Port dport,
                            const Bytes& b) {
    tb.web->send_udp(src, dport, sport, b);
  });

  SimTime sent80 = 0, sent443 = 0;
  SimDuration rtt80 = 0, rtt443 = 0;
  tb.client->bind_udp(7080, [&](Ipv4Addr, Port, Port, const Bytes&) {
    rtt80 = tb.net.sim().now() - sent80;
  });
  tb.client->bind_udp(7443, [&](Ipv4Addr, Port, Port, const Bytes&) {
    rtt443 = tb.net.sim().now() - sent443;
  });

  sent80 = tb.net.sim().now();
  tb.client->send_udp(tb.addrs.web, 7080, 80, Bytes(64, 1));
  tb.net.sim().run();
  sent443 = tb.net.sim().now();
  tb.client->send_udp(tb.addrs.web, 7443, 443, Bytes(64, 2));
  tb.net.sim().run();

  std::printf("\nweb flow (port 80):        RTT %s   [in-network path]\n",
              format_duration(rtt80).c_str());
  std::printf("sensitive flow (port 443): RTT %s   [via cloud enclave]\n",
              format_duration(rtt443).c_str());
  std::printf("\ncloud gateway decapsulated %llu / re-encapsulated %llu "
              "packets; auth failures: %llu\n",
              static_cast<unsigned long long>(tb.cloud_gw->decapsulated()),
              static_cast<unsigned long long>(tb.cloud_gw->reencapsulated()),
              static_cast<unsigned long long>(tb.cloud_gw->auth_failures()));
  std::printf(
      "\nOnly the flows that need the trusted environment pay the detour — "
      "the\nrest of Alice's traffic never leaves the access network.\n");
  return 0;
}
