// Quickstart: author a PVNC in the text format, discover the access
// network's PVN support via DHCP, negotiate, deploy, send traffic, and read
// back what the PVN did for you.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "pvn/pvnc_parser.h"
#include "testbed/testbed.h"

using namespace pvn;

int main() {
  // 1. The user writes (or buys from the PVN Store) a configuration.
  const std::string pvnc_text = R"(
# Alice's roaming protection profile
pvnc "alice-phone" {
  module tls-validator mode=block
  module dns-validator mode=block
  module pii-detector action=block
  module tracker-blocker
  policy drop proto=udp dport=1900        # no SSDP chatter
}
)";
  const auto parsed = parse_pvnc(pvnc_text);
  if (std::holds_alternative<ParseError>(parsed)) {
    const auto& err = std::get<ParseError>(parsed);
    std::printf("PVNC parse error at line %d: %s\n", err.line,
                err.message.c_str());
    return 1;
  }
  const Pvnc pvnc = std::get<Pvnc>(parsed);
  std::printf("parsed PVNC '%s': %zu modules, %zu policies\n",
              pvnc.name.c_str(), pvnc.chain.size(), pvnc.policies.size());

  // 2. Join an access network: DHCP advertises PVN support.
  Testbed tb;
  DhcpClient dhcp(*tb.client);
  DhcpLease lease;
  dhcp.acquire(tb.addrs.control, [&](const DhcpLease& l) { lease = l; });
  tb.net.sim().run();
  std::printf("DHCP lease: addr=%s pvn=%s server=%s standards=%s\n",
              lease.addr.to_string().c_str(),
              lease.pvn_supported ? "yes" : "no",
              lease.pvn_server.to_string().c_str(),
              lease.pvn_standards.c_str());

  // 3. Discover, negotiate, deploy.
  const DeployOutcome out = tb.deploy(pvnc);
  if (!out.ok) {
    std::printf("deployment failed: %s\n", out.failure.c_str());
    return 1;
  }
  std::printf("deployed chain %s in %s for $%.2f (%d messages)\n",
              out.chain_id.c_str(), format_duration(out.elapsed).c_str(),
              out.paid, out.messages_sent + out.messages_received);

  // 4. Use the network: a normal fetch, a leaky beacon, a tracker beacon.
  HttpClient http(*tb.client);
  http.fetch(tb.addrs.web, 80, "/bytes/20000",
             [](const HttpResponse& r, const FetchTiming& t) {
               std::printf("web fetch: status=%d %zu bytes in %s\n", r.status,
                           r.body.size(), format_duration(t.total()).c_str());
             });
  tb.net.sim().run();
  TelemetryEmitter leaky(*tb.client, tb.addrs.web, 80,
                         {"imei=356938035643809", "password=hunter2"});
  leaky.start(2, milliseconds(50));
  TelemetryEmitter tracker_beacon(*tb.client, tb.addrs.tracker, 80, {});
  tracker_beacon.start(2, milliseconds(50));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(30));

  // 5. Read the PVN's findings (what it blocked on your behalf).
  if (Chain* chain = tb.mbox_host->chain(out.chain_id)) {
    std::printf("\nPVN findings (%zu):\n", chain->findings().size());
    for (const MboxFinding& f : chain->findings()) {
      std::printf("  [%10s] %-16s %-16s %s\n",
                  format_duration(f.at).c_str(), f.module.c_str(),
                  f.kind.c_str(), f.detail.c_str());
    }
  }
  return 0;
}
