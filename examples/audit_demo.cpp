// Audit demo: the "trust but verify" story (paper §3.1 Auditor, §3.3).
//
// Alice deploys her PVN on an access network that turns out to be dishonest:
// it charges for the tls-validator module but never instantiates it, and it
// covertly shapes video. The auditor gathers attestation and measurement
// evidence, files a billing dispute, the provider's reputation collapses,
// and Alice's device re-homes to a competing PVN provider.
#include <cstdio>

#include "audit/attestation.h"
#include "audit/reputation.h"
#include "testbed/testbed.h"

using namespace pvn;

int main() {
  ReputationSystem reputation(0.4);
  const std::vector<std::string> providers = {"shady-isp", "honest-isp"};

  std::printf("== connecting to shady-isp ==\n");
  Testbed shady;
  shady.server->cheat_skip_module("tls-validator");  // the cheat
  const Pvnc pvnc = shady.standard_pvnc();
  const DeployOutcome out = shady.deploy(pvnc);
  std::printf("deployed: %s, paid $%.2f for %zu modules\n",
              out.chain_id.c_str(), out.paid, pvnc.chain.size());

  // --- audit round -----------------------------------------------------------
  std::printf("\n== audit round ==\n");
  // 1. Attestation: the enclave can only sign what is actually deployed.
  Attester enclave(4242);
  KeyRegistry device_trust;
  device_trust.trust(enclave.key());
  std::vector<std::string> actually_deployed;
  if (Chain* chain = shady.mbox_host->chain(out.chain_id)) {
    for (const Middlebox* m : chain->modules()) {
      actually_deployed.push_back(m->name());
    }
  }
  const Digest expected = config_digest(pvnc.module_names(), {});
  const Digest actual = config_digest(actually_deployed, {});
  const AttestationQuote quote =
      enclave.quote(/*nonce=*/7, actual, shady.net.sim().now());
  const AttestationVerdict verdict = verify_quote(
      quote, device_trust, enclave.key().public_key(), 7, expected);
  std::printf("attestation: %s (expected %zu modules, enclave attests %zu)\n",
              to_string(verdict), pvnc.chain.size(),
              actually_deployed.size());

  // 2. Active measurement: covert shaping check (install the cheat live).
  shady.access_sw->add_meter("covert", Rate::kbps(1500), 20000);
  FlowRule shape;
  shape.priority = 5000;
  shape.match.tos = 0x20;
  shape.cookie = "isp-cheat";
  shape.actions.push_back(ActMeter{"covert"});
  shape.actions.push_back(ActOutput{1});
  shady.access_sw->table(0).add(shape);

  RateProbe control(*shady.client, *shady.web, 9001);
  RateProbe marked(*shady.client, *shady.web, 9002);
  double control_mbps = 0, marked_mbps = 0;
  control.run(Rate::mbps(10), seconds(2), 0, "application/octet",
              [&](const RateProbe::Result& r) { control_mbps = r.achieved_mbps; });
  shady.net.sim().run();
  marked.run(Rate::mbps(10), seconds(2), 0x20, "video/mp4",
             [&](const RateProbe::Result& r) { marked_mbps = r.achieved_mbps; });
  shady.net.sim().run();
  const DifferentiationVerdict diff =
      judge_differentiation(control_mbps, marked_mbps);
  std::printf("differentiation probe: control %.1f Mbps vs video %.1f Mbps "
              "-> %s (ratio %.2f)\n",
              control_mbps, marked_mbps,
              diff.differentiated ? "SHAPED" : "clean", diff.ratio);

  // --- consequences ------------------------------------------------------------
  std::printf("\n== consequences ==\n");
  ViolationLog log;
  if (verdict != AttestationVerdict::kOk) {
    log.record({shady.net.sim().now(), "shady-isp", "config-mismatch",
                "paid module not deployed"});
  }
  if (diff.differentiated) {
    log.record({shady.net.sim().now(), "shady-isp", "differentiation",
                "video shaped to ~1.5 Mbps"});
  }
  for (const Violation& v : log.all()) {
    reputation.report_violation(v.provider, 0.5);
    std::printf("violation recorded: %s (%s)\n", v.kind.c_str(),
                v.detail.c_str());
  }
  const std::size_t dispute = shady.ledger->file_dispute(
      shady.net.sim().now(), "alice-phone", "access-net", out.paid,
      "attestation config-mismatch + differentiation evidence");
  shady.ledger->grant_refund(dispute);
  std::printf("dispute filed and refund granted: alice balance = $%.2f\n",
              shady.ledger->balance("alice-phone"));
  std::printf("shady-isp reputation: %.2f (blacklisted: %s)\n",
              reputation.score("shady-isp"),
              reputation.blacklisted("shady-isp") ? "yes" : "no");

  // --- re-homing ----------------------------------------------------------------
  const std::string choice = reputation.pick_provider(providers);
  std::printf("\ndevice re-homes to: %s\n", choice.c_str());
  Testbed honest;
  const DeployOutcome out2 = honest.deploy(pvnc);
  std::printf("redeployed on %s: %s (%zu modules)\n", choice.c_str(),
              out2.ok ? out2.chain_id.c_str() : out2.failure.c_str(),
              out2.deployed_modules.size());
  return 0;
}
