// Secure roaming: the paper's headline user story — "the illusion that they
// are in the same, fully controlled and customized network environment
// regardless of which access network they connect to."
//
// Alice carries ONE PVNC across three very different access networks (a
// full-featured home ISP, a coffee-shop WiFi that only allows privacy
// modules, and an airport network that charges triple). On each network the
// device negotiates what it can, and the same attacks are attempted; the
// table shows what protection survived where.
#include <cstdio>

#include "mbox/inline_modules.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

struct NetworkRun {
  std::string deployed;
  bool tracker_blocked = false;
  bool pii_blocked = false;
  double paid = 0.0;
};

NetworkRun visit(const char* name, TestbedConfig cfg, const Pvnc& pvnc,
                 const ClientConfig& ccfg) {
  std::printf("-- connecting to %s --\n", name);
  Testbed tb(cfg);
  NetworkRun run;
  const DeployOutcome out = tb.deploy(pvnc, ccfg);
  if (!out.ok) {
    run.deployed = out.failure;
    return run;
  }
  run.paid = out.paid;
  for (std::size_t i = 0; i < out.deployed_modules.size(); ++i) {
    run.deployed += (i ? "," : "") + out.deployed_modules[i];
  }

  // Attack 1: tracker beacon.
  const std::uint64_t before = tb.tracker_http->requests_served();
  TelemetryEmitter beacon(*tb.client, tb.addrs.tracker, 80, {});
  beacon.start(1, milliseconds(10));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(20));
  run.tracker_blocked = tb.tracker_http->requests_served() == before;

  // Attack 2: PII leak to an arbitrary server.
  bool leak_arrived = false;
  tb.web_http->set_handler([&](const HttpRequest& req) {
    if (payload_contains(req.body, "imei=")) leak_arrived = true;
    return synthesize_response(req);
  });
  TelemetryEmitter leaky(*tb.client, tb.addrs.web, 80, {"imei=35693803564"});
  leaky.start(1, milliseconds(10));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(20));
  run.pii_blocked = !leak_arrived;
  return run;
}

}  // namespace

int main() {
  // One PVNC for every network Alice visits.
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"pii-detector", {{"action", "block"}}});
  pvnc.chain.push_back(PvncModule{"tracker-blocker", {}});

  ClientConfig ccfg;
  ccfg.constraints.max_price = 6.0;
  ccfg.constraints.module_utility = {{"tls-validator", 2.0},
                                     {"pii-detector", 3.0},
                                     {"tracker-blocker", 1.0}};

  struct Visit {
    const char* name;
    NetworkRun run;
  };
  std::vector<Visit> visits;

  {
    TestbedConfig home;  // full support, fair prices
    visits.push_back({"home ISP", visit("home ISP", home, pvnc, ccfg)});
  }
  {
    TestbedConfig cafe;  // only privacy modules allowed
    cafe.allowed_modules = {"pii-detector", "tracker-blocker"};
    visits.push_back(
        {"coffee-shop WiFi", visit("coffee-shop WiFi", cafe, pvnc, ccfg)});
  }
  {
    TestbedConfig airport;  // everything offered, at triple price
    airport.price_multiplier = 3.0;
    visits.push_back(
        {"airport WiFi", visit("airport WiFi", airport, pvnc, ccfg)});
  }

  std::printf("\n%-18s %-44s %-10s %-14s %-12s\n", "network", "deployed",
              "paid", "tracker", "PII leak");
  for (const Visit& v : visits) {
    std::printf("%-18s %-44s $%-9.2f %-14s %-12s\n", v.name,
                v.run.deployed.c_str(), v.run.paid,
                v.run.tracker_blocked ? "blocked" : "LEAKED",
                v.run.pii_blocked ? "blocked" : "LEAKED");
  }
  std::printf(
      "\nThe same PVNC delivered the strongest protection each network could "
      "offer —\nAlice never reconfigured anything while roaming.\n");
  return 0;
}
