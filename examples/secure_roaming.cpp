// Secure roaming: the paper's headline user story — "the illusion that they
// are in the same, fully controlled and customized network environment
// regardless of which access network they connect to."
//
// Alice carries ONE PVNC across three very different access networks (a
// full-featured home ISP, a coffee-shop WiFi that only allows privacy
// modules, and an airport network that charges triple). On each network the
// device negotiates what it can, and the same attacks are attempted; the
// table shows what protection survived where.
#include <cstdio>

#include "mbox/inline_modules.h"
#include "testbed/roaming.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

struct NetworkRun {
  std::string deployed;
  bool tracker_blocked = false;
  bool pii_blocked = false;
  double paid = 0.0;
};

NetworkRun visit(const char* name, TestbedConfig cfg, const Pvnc& pvnc,
                 const ClientConfig& ccfg) {
  std::printf("-- connecting to %s --\n", name);
  Testbed tb(cfg);
  NetworkRun run;
  const DeployOutcome out = tb.deploy(pvnc, ccfg);
  if (!out.ok) {
    run.deployed = out.failure;
    return run;
  }
  run.paid = out.paid;
  for (std::size_t i = 0; i < out.deployed_modules.size(); ++i) {
    run.deployed += (i ? "," : "") + out.deployed_modules[i];
  }

  // Attack 1: tracker beacon.
  const std::uint64_t before = tb.tracker_http->requests_served();
  TelemetryEmitter beacon(*tb.client, tb.addrs.tracker, 80, {});
  beacon.start(1, milliseconds(10));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(20));
  run.tracker_blocked = tb.tracker_http->requests_served() == before;

  // Attack 2: PII leak to an arbitrary server.
  bool leak_arrived = false;
  tb.web_http->set_handler([&](const HttpRequest& req) {
    if (payload_contains(req.body, "imei=")) leak_arrived = true;
    return synthesize_response(req);
  });
  TelemetryEmitter leaky(*tb.client, tb.addrs.web, 80, {"imei=35693803564"});
  leaky.start(1, milliseconds(10));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(20));
  run.pii_blocked = !leak_arrived;
  return run;
}

// Act 2: live migration. Act 1 re-deploys from scratch on every network —
// fine for stateless protection, but any per-flow middlebox state (which
// flows are video, which trackers were seen) starts cold. With live
// migration the device keeps ONE session: the new network's server pulls a
// digest-protected checkpoint of the old chain before taking over, so the
// protection *and its memory* follow Alice across the street.
void migrate_walkthrough() {
  std::printf("\n== live migration: the PVN follows the user ==\n");
  RoamingTestbed tb;

  // 1. Alice's device deploys on access network A as usual.
  PvnClient agent(*tb.client, tb.roaming_pvnc());
  agent.start_session(tb.addrs.control_a);
  tb.net.sim().run_until(seconds(1));
  std::printf("deployed on A:     chain %s, state %s\n",
              agent.chain_id().c_str(),
              agent.state() == SessionState::kActive ? "active" : "NOT active");

  // 2. Browsing builds per-flow state in A's classifier.
  for (int i = 0; i < 5; ++i) {
    tb.client->send_udp(
        tb.addrs.web, static_cast<Port>(5000 + i), 80,
        to_bytes("HTTP/1.1 200 OK Content-Type: video #" + std::to_string(i)));
  }
  tb.net.sim().run_until(seconds(2));
  std::uint64_t flows_on_a = 0;
  for (Middlebox* m : tb.a.mbox->chain(agent.chain_id())->modules()) {
    if (auto* c = dynamic_cast<Classifier*>(m)) flows_on_a = c->flows_classified();
  }
  std::printf("state built on A:  %llu classified flows\n",
              static_cast<unsigned long long>(flows_on_a));

  // 3. Alice walks across the street: the device re-attaches to network B
  //    and migrates its session there. The old chain keeps serving
  //    in-flight packets during the drain window; B's server fetches the
  //    final checkpoint from A (StateRequest -> StateTransfer) and restores
  //    it into the fresh chain before acking.
  tb.re_attach();
  bool migrated = false;
  agent.migrate(tb.addrs.control_b, milliseconds(300),
                [&](const DeployOutcome& o) { migrated = o.ok; });
  tb.net.sim().run_until(seconds(8));

  std::uint64_t flows_on_b = 0;
  if (Chain* chain = tb.b.mbox->chain(agent.chain_id())) {
    for (Middlebox* m : chain->modules()) {
      if (auto* c = dynamic_cast<Classifier*>(m)) {
        flows_on_b = c->flows_classified();
      }
    }
  }
  std::printf("migrated to B:     %s, handoffs=%llu, old session %s\n",
              migrated ? "ok" : "FAILED",
              static_cast<unsigned long long>(tb.b.server->handoffs_completed()),
              tb.a.server->deployments_active() == 0 ? "torn down" : "LEAKED");
  std::printf("state carried:     %llu of %llu flows survived the move\n",
              static_cast<unsigned long long>(flows_on_b),
              static_cast<unsigned long long>(flows_on_a));
}

}  // namespace

int main() {
  // One PVNC for every network Alice visits.
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"pii-detector", {{"action", "block"}}});
  pvnc.chain.push_back(PvncModule{"tracker-blocker", {}});

  ClientConfig ccfg;
  ccfg.constraints.max_price = 6.0;
  ccfg.constraints.module_utility = {{"tls-validator", 2.0},
                                     {"pii-detector", 3.0},
                                     {"tracker-blocker", 1.0}};

  struct Visit {
    const char* name;
    NetworkRun run;
  };
  std::vector<Visit> visits;

  {
    TestbedConfig home;  // full support, fair prices
    visits.push_back({"home ISP", visit("home ISP", home, pvnc, ccfg)});
  }
  {
    TestbedConfig cafe;  // only privacy modules allowed
    cafe.allowed_modules = {"pii-detector", "tracker-blocker"};
    visits.push_back(
        {"coffee-shop WiFi", visit("coffee-shop WiFi", cafe, pvnc, ccfg)});
  }
  {
    TestbedConfig airport;  // everything offered, at triple price
    airport.price_multiplier = 3.0;
    visits.push_back(
        {"airport WiFi", visit("airport WiFi", airport, pvnc, ccfg)});
  }

  std::printf("\n%-18s %-44s %-10s %-14s %-12s\n", "network", "deployed",
              "paid", "tracker", "PII leak");
  for (const Visit& v : visits) {
    std::printf("%-18s %-44s $%-9.2f %-14s %-12s\n", v.name,
                v.run.deployed.c_str(), v.run.paid,
                v.run.tracker_blocked ? "blocked" : "LEAKED",
                v.run.pii_blocked ? "blocked" : "LEAKED");
  }
  std::printf(
      "\nThe same PVNC delivered the strongest protection each network could "
      "offer —\nAlice never reconfigured anything while roaming.\n");

  migrate_walkthrough();
  return 0;
}
