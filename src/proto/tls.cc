#include "proto/tls.h"

namespace pvn {

Bytes Certificate::canonical_bytes() const {
  ByteWriter w;
  w.str(subject);
  w.str(issuer);
  w.u64(subject_key.id);
  w.i64(not_before);
  w.i64(not_after);
  w.u64(serial);
  return std::move(w).take();
}

void Certificate::encode(ByteWriter& w) const {
  w.str(subject);
  w.str(issuer);
  w.u64(subject_key.id);
  w.i64(not_before);
  w.i64(not_after);
  w.u64(serial);
  w.blob(issuer_signature.mac.to_bytes());
  w.u64(issuer_signature.signer);
}

Certificate Certificate::decode(ByteReader& r) {
  Certificate c;
  c.subject = r.str();
  c.issuer = r.str();
  c.subject_key.id = r.u64();
  c.not_before = r.i64();
  c.not_after = r.i64();
  c.serial = r.u64();
  c.issuer_signature.mac = Digest::from_bytes(r.blob()).value_or(Digest{});
  c.issuer_signature.signer = r.u64();
  return c;
}

Bytes encode_chain(const CertChain& chain) {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(chain.size()));
  for (const Certificate& c : chain) c.encode(w);
  return std::move(w).take();
}

std::optional<CertChain> decode_chain(const Bytes& raw) {
  ByteReader r(raw);
  const std::uint16_t n = r.u16();
  CertChain chain;
  for (std::uint16_t i = 0; i < n; ++i) chain.push_back(Certificate::decode(r));
  if (!r.ok()) return std::nullopt;
  return chain;
}

const char* to_string(CertStatus status) {
  switch (status) {
    case CertStatus::kOk: return "ok";
    case CertStatus::kEmptyChain: return "empty-chain";
    case CertStatus::kExpired: return "expired";
    case CertStatus::kNotYetValid: return "not-yet-valid";
    case CertStatus::kNameMismatch: return "name-mismatch";
    case CertStatus::kUntrustedRoot: return "untrusted-root";
    case CertStatus::kBadSignature: return "bad-signature";
    case CertStatus::kRevoked: return "revoked";
  }
  return "?";
}

CertificateAuthority::CertificateAuthority(std::string name,
                                           std::uint64_t key_seed)
    : name_(std::move(name)), key_(key_seed) {
  self_cert_.subject = name_;
  self_cert_.issuer = name_;
  self_cert_.subject_key = key_.public_key();
  self_cert_.not_before = 0;
  self_cert_.not_after = seconds(100LL * 365 * 24 * 3600);
  self_cert_.serial = 0;
  self_cert_.issuer_signature = key_.sign(self_cert_.canonical_bytes());
}

Certificate CertificateAuthority::issue(const std::string& subject,
                                        const PublicKey& subject_key,
                                        SimTime not_before, SimTime not_after) {
  Certificate c;
  c.subject = subject;
  c.issuer = name_;
  c.subject_key = subject_key;
  c.not_before = not_before;
  c.not_after = not_after;
  c.serial = next_serial_++;
  c.issuer_signature = key_.sign(c.canonical_bytes());
  return c;
}

std::unique_ptr<CertificateAuthority> CertificateAuthority::issue_intermediate(
    const std::string& name, std::uint64_t key_seed, SimTime not_before,
    SimTime not_after) {
  auto child = std::make_unique<CertificateAuthority>(name, key_seed);
  child->self_cert_ =
      issue(name, child->key_.public_key(), not_before, not_after);
  child->parent_cert_ = self_cert_;
  return child;
}

void TrustStore::trust_root(const CertificateAuthority& ca) {
  keys.trust(ca.key());
  trusted_roots.insert(ca.key().public_key().id);
}

void TrustStore::add_intermediate(const CertificateAuthority& ca) {
  keys.trust(ca.key());
}

CertStatus validate_chain(const CertChain& chain, const TrustStore& trust,
                          SimTime now, const std::string& expected_name) {
  if (chain.empty()) return CertStatus::kEmptyChain;

  // Name check on the leaf.
  if (!expected_name.empty() && chain.front().subject != expected_name) {
    return CertStatus::kNameMismatch;
  }

  for (std::size_t i = 0; i < chain.size(); ++i) {
    const Certificate& cert = chain[i];
    if (now < cert.not_before) return CertStatus::kNotYetValid;
    if (now > cert.not_after) return CertStatus::kExpired;
    if (trust.revoked_serials.contains(cert.serial) && cert.serial != 0) {
      return CertStatus::kRevoked;
    }
    // Signature: each cert is signed by its issuer — the next cert in the
    // chain, or itself for the self-signed root.
    const PublicKey issuer_key = (i + 1 < chain.size())
                                     ? chain[i + 1].subject_key
                                     : cert.subject_key;
    if (!trust.keys.verify(issuer_key, cert.canonical_bytes(),
                           cert.issuer_signature)) {
      // Distinguish "we don't know the key" from "the signature is wrong":
      // unknown root keys mean the chain ends somewhere we do not trust.
      if (!trust.keys.trusts(issuer_key)) return CertStatus::kUntrustedRoot;
      return CertStatus::kBadSignature;
    }
  }

  // The chain must terminate in a trusted root.
  if (!trust.trusted_roots.contains(chain.back().subject_key.id)) {
    return CertStatus::kUntrustedRoot;
  }
  return CertStatus::kOk;
}

Bytes TlsRecord::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.blob(body);
  return std::move(w).take();
}

std::optional<TlsRecord> TlsRecord::decode(const Bytes& raw) {
  ByteReader r(raw);
  TlsRecord rec;
  rec.type = static_cast<TlsContentType>(r.u8());
  rec.body = r.blob();
  if (!r.ok()) return std::nullopt;
  return rec;
}

Digest derive_session_key(const Bytes& client_nonce, const Bytes& server_nonce,
                          const PublicKey& server_key) {
  ByteWriter w;
  w.blob(client_nonce);
  w.blob(server_nonce);
  w.u64(server_key.id);
  w.str("tls-lite-master-secret");
  return digest_of(w.bytes());
}

Bytes seal_app_data(const Digest& session_key, const Bytes& plaintext) {
  ByteWriter w;
  w.blob(plaintext);
  w.blob(hmac(session_key.to_bytes(), plaintext).to_bytes());
  return std::move(w).take();
}

std::optional<Bytes> open_app_data(const Digest& session_key,
                                   const Bytes& sealed) {
  ByteReader r(sealed);
  Bytes plaintext = r.blob();
  const auto mac = Digest::from_bytes(r.blob());
  if (!r.ok() || !mac) return std::nullopt;
  if (hmac(session_key.to_bytes(), plaintext) != *mac) return std::nullopt;
  return plaintext;
}

// --- TlsServer --------------------------------------------------------------

TlsServer::TlsServer(TcpConnection& conn, CertChain chain, KeyPair key)
    : conn_(&conn),
      chain_(std::move(chain)),
      key_(std::move(key)),
      framer_([this](Bytes frame) { on_record(std::move(frame)); }) {
  conn_->on_data = [this](const Bytes& data) { framer_.feed(data); };
}

void TlsServer::send(const Bytes& plaintext) {
  if (!established_) return;
  TlsRecord rec;
  rec.type = TlsContentType::kAppData;
  rec.body = seal_app_data(session_key_, plaintext);
  conn_->send(StreamFramer::frame(rec.encode()));
}

void TlsServer::on_record(Bytes frame) {
  const auto rec = TlsRecord::decode(frame);
  if (!rec) return;
  switch (rec->type) {
    case TlsContentType::kClientHello: {
      ByteReader r(rec->body);
      r.str();  // SNI (unused server-side in this model)
      client_nonce_ = r.blob();
      // ServerHello: nonce + certificate chain.
      ByteWriter nonce;
      nonce.u64(key_.public_key().id);
      nonce.str("server-nonce");
      server_nonce_ = digest_of(nonce.bytes()).to_bytes();
      TlsRecord hello;
      hello.type = TlsContentType::kServerHello;
      ByteWriter body;
      body.blob(server_nonce_);
      body.blob(encode_chain(chain_));
      hello.body = std::move(body).take();
      conn_->send(StreamFramer::frame(hello.encode()));
      session_key_ =
          derive_session_key(client_nonce_, server_nonce_, key_.public_key());
      break;
    }
    case TlsContentType::kFinished:
      established_ = true;
      break;
    case TlsContentType::kAppData: {
      const auto plaintext = open_app_data(session_key_, rec->body);
      if (plaintext && on_data_) on_data_(*plaintext);
      break;
    }
    default:
      break;
  }
}

// --- TlsClient --------------------------------------------------------------

TlsClient::TlsClient(TcpConnection& conn, std::string server_name,
                     const TrustStore* trust, TlsClientPolicy policy,
                     std::uint64_t nonce_seed)
    : conn_(&conn),
      server_name_(std::move(server_name)),
      trust_(trust),
      policy_(policy),
      framer_([this](Bytes frame) { on_record(std::move(frame)); }) {
  ByteWriter nonce;
  nonce.u64(nonce_seed);
  nonce.str("client-nonce");
  client_nonce_ = digest_of(nonce.bytes()).to_bytes();

  conn_->on_data = [this](const Bytes& data) { framer_.feed(data); };
  const auto send_hello = [this] {
    TlsRecord hello;
    hello.type = TlsContentType::kClientHello;
    ByteWriter body;
    body.str(server_name_);
    body.blob(client_nonce_);
    hello.body = std::move(body).take();
    conn_->send(StreamFramer::frame(hello.encode()));
  };
  if (conn_->established()) {
    send_hello();
  } else {
    conn_->on_connected = send_hello;
  }
}

void TlsClient::send(const Bytes& plaintext) {
  if (!info_.established) return;
  TlsRecord rec;
  rec.type = TlsContentType::kAppData;
  rec.body = seal_app_data(info_.session_key, plaintext);
  conn_->send(StreamFramer::frame(rec.encode()));
}

void TlsClient::on_record(Bytes frame) {
  const auto rec = TlsRecord::decode(frame);
  if (!rec) return;
  switch (rec->type) {
    case TlsContentType::kServerHello: {
      ByteReader r(rec->body);
      const Bytes server_nonce = r.blob();
      const auto chain = decode_chain(r.blob());
      if (!r.ok() || !chain || chain->empty()) {
        info_.cert_status = CertStatus::kEmptyChain;
        conn_->abort();
        if (on_connected_) on_connected_(info_);
        return;
      }
      info_.server_chain = *chain;
      if (policy_ == TlsClientPolicy::kStrict && trust_ != nullptr) {
        info_.cert_status =
            validate_chain(*chain, *trust_, conn_->now(), server_name_);
      } else {
        info_.cert_status = CertStatus::kOk;  // broken client: no checks
      }
      if (info_.cert_status != CertStatus::kOk) {
        TlsRecord alert;
        alert.type = TlsContentType::kAlert;
        conn_->send(StreamFramer::frame(alert.encode()));
        conn_->close();
        if (on_connected_) on_connected_(info_);
        return;
      }
      info_.session_key = derive_session_key(
          client_nonce_, server_nonce, chain->front().subject_key);
      TlsRecord fin;
      fin.type = TlsContentType::kFinished;
      conn_->send(StreamFramer::frame(fin.encode()));
      info_.established = true;
      if (on_connected_) on_connected_(info_);
      break;
    }
    case TlsContentType::kAppData: {
      const auto plaintext = open_app_data(info_.session_key, rec->body);
      if (!plaintext) {
        bad_mac_ = true;
        return;
      }
      if (on_data_) on_data_(*plaintext);
      break;
    }
    default:
      break;
  }
}

}  // namespace pvn
