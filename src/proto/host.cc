#include "proto/host.h"

namespace pvn {

Host::Host(Network& net, std::string name, Ipv4Addr addr)
    : Node(net, std::move(name)), addr_(addr) {}

Host::~Host() = default;

void Host::handle_foreign_packet(Packet pkt, int in_port) {
  (void)pkt;
  (void)in_port;
  ++not_for_me_;
}

void Host::handle_packet(Packet pkt, int in_port) {
  // Anycast packets (PVN discovery floods) are delivered locally too.
  if (pkt.ip.dst != addr_ && pkt.ip.dst != kPvnAnycast) {
    handle_foreign_packet(std::move(pkt), in_port);
    return;
  }
  switch (pkt.ip.proto) {
    case IpProto::kTcp:
      on_tcp(pkt.ip, pkt.l4);
      break;
    case IpProto::kUdp:
      on_udp(pkt.ip, pkt.l4);
      break;
    case IpProto::kEsp:
      // A device-side tunnel endpoint (tunnel/vpn.h): decapsulated inner
      // packets re-enter the receive path as if they arrived directly.
      if (esp_handler_) {
        if (auto inner = esp_handler_(pkt)) {
          handle_packet(std::move(*inner), in_port);
        }
      }
      break;
    default:
      // ICMP handled by subclasses (VPN gateways override handle_packet).
      break;
  }
}

void Host::send_ip(Ipv4Addr dst, IpProto proto, Bytes l4, std::uint8_t tos) {
  Packet pkt = network().make_packet(addr_, dst, proto, std::move(l4));
  pkt.ip.tos = tos;
  if (outbound_transform_) pkt = outbound_transform_(std::move(pkt));
  send(uplink_, std::move(pkt));
}

void Host::bind_udp(Port port, UdpHandler handler) {
  udp_handlers_[port] = std::move(handler);
}

void Host::unbind_udp(Port port) { udp_handlers_.erase(port); }

void Host::send_udp(Ipv4Addr dst, Port src_port, Port dst_port, Bytes payload,
                    std::uint8_t tos) {
  UdpHeader hdr;
  hdr.src_port = src_port;
  hdr.dst_port = dst_port;
  send_ip(dst, IpProto::kUdp, serialize_udp(hdr, payload), tos);
}

void Host::on_udp(const IpHeader& ip, const Bytes& l4) {
  const auto dg = parse_udp(l4);
  if (!dg) return;
  const auto it = udp_handlers_.find(dg->hdr.dst_port);
  if (it == udp_handlers_.end()) return;
  it->second(ip.src, dg->hdr.src_port, dg->hdr.dst_port, dg->payload);
}

Port Host::alloc_ephemeral_port() {
  // Linear probe; fine for simulation scale.
  for (int i = 0; i < 16384; ++i) {
    const Port p = next_ephemeral_;
    next_ephemeral_ = next_ephemeral_ == 65535 ? 49152 : next_ephemeral_ + 1;
    bool used = false;
    for (const auto& [key, conn] : conns_) {
      if (std::get<0>(key) == p && conn->state() != TcpConnection::State::kClosed) {
        used = true;
        break;
      }
    }
    if (!used) return p;
  }
  return 0;
}

TcpConnection& Host::tcp_connect(Ipv4Addr dst, Port dst_port, TcpConfig cfg) {
  const Port lport = alloc_ephemeral_port();
  auto conn = std::unique_ptr<TcpConnection>(
      new TcpConnection(*this, dst, dst_port, lport, cfg));
  TcpConnection& ref = *conn;
  conns_[ConnKey{lport, dst.v, dst_port}] = std::move(conn);
  ref.start_connect();
  return ref;
}

void Host::tcp_listen(Port port, AcceptHandler handler, TcpConfig cfg) {
  listeners_[port] = Listener{std::move(handler), cfg};
}

void Host::tcp_unlisten(Port port) { listeners_.erase(port); }

std::size_t Host::gc_closed() {
  std::size_t n = 0;
  for (auto it = conns_.begin(); it != conns_.end();) {
    if (it->second->state() == TcpConnection::State::kClosed) {
      it = conns_.erase(it);
      ++n;
    } else {
      ++it;
    }
  }
  return n;
}

void Host::send_rst(const IpHeader& ip, const TcpHeader& hdr) {
  TcpHeader rst;
  rst.src_port = hdr.dst_port;
  rst.dst_port = hdr.src_port;
  rst.seq = hdr.ack;
  rst.ack = hdr.seq + 1;
  rst.flags = kTcpRst | kTcpAck;
  ++rsts_sent_;
  send_ip(ip.src, IpProto::kTcp, serialize_tcp(rst, {}));
}

void Host::on_tcp(const IpHeader& ip, const Bytes& l4) {
  const auto seg = parse_tcp(l4);
  if (!seg) return;
  const ConnKey key{seg->hdr.dst_port, ip.src.v, seg->hdr.src_port};
  auto it = conns_.find(key);
  if (it != conns_.end() &&
      it->second->state() != TcpConnection::State::kClosed) {
    it->second->on_segment(ip, *seg);
    return;
  }

  if (seg->hdr.syn() && !seg->hdr.ack_flag()) {
    const auto lit = listeners_.find(seg->hdr.dst_port);
    if (lit == listeners_.end()) {
      send_rst(ip, seg->hdr);
      return;
    }
    auto conn = std::unique_ptr<TcpConnection>(new TcpConnection(
        *this, ip.src, seg->hdr.src_port, seg->hdr.dst_port, lit->second.cfg));
    TcpConnection& ref = *conn;
    conns_[key] = std::move(conn);  // replaces a closed stale entry if any
    lit->second.handler(ref);       // app installs callbacks
    ref.start_accept(seg->hdr);
    return;
  }

  if (!seg->hdr.rst()) send_rst(ip, seg->hdr);
}

}  // namespace pvn
