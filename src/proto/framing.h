// Length-prefixed message framing over a TCP byte stream.
//
// TLS records, HTTP-lite messages, and PVN control messages are framed as
// u32-length-prefixed blobs. StreamFramer reassembles complete frames from
// arbitrary stream chunk boundaries.
#pragma once

#include <functional>

#include "util/bytes.h"

namespace pvn {

class StreamFramer {
 public:
  using FrameHandler = std::function<void(Bytes frame)>;

  explicit StreamFramer(FrameHandler on_frame)
      : on_frame_(std::move(on_frame)) {}

  // Frames `payload` for transmission.
  static Bytes frame(const Bytes& payload) {
    ByteWriter w;
    w.blob(payload);
    return std::move(w).take();
  }

  // Feeds received stream bytes; emits complete frames via the handler.
  void feed(const Bytes& chunk) {
    buf_.insert(buf_.end(), chunk.begin(), chunk.end());
    for (;;) {
      if (buf_.size() < 4) return;
      const std::uint32_t len = (std::uint32_t(buf_[0]) << 24) |
                                (std::uint32_t(buf_[1]) << 16) |
                                (std::uint32_t(buf_[2]) << 8) |
                                std::uint32_t(buf_[3]);
      if (buf_.size() < 4u + len) return;
      Bytes frame(buf_.begin() + 4, buf_.begin() + 4 + len);
      buf_.erase(buf_.begin(), buf_.begin() + 4 + len);
      on_frame_(std::move(frame));
    }
  }

  std::size_t buffered() const { return buf_.size(); }

 private:
  FrameHandler on_frame_;
  Bytes buf_;
};

}  // namespace pvn
