#include "proto/tcp.h"

#include <algorithm>

#include "proto/host.h"

namespace pvn {
namespace {

// Wraparound-safe sequence comparisons.
bool seq_lt(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}
bool seq_le(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) <= 0;
}

constexpr SimDuration kMaxRto = seconds(60);
constexpr int kMaxSynRetries = 6;
constexpr int kMaxConsecutiveTimeouts = 10;  // then the connection aborts

}  // namespace

TcpConnection::TcpConnection(Host& host, Ipv4Addr remote_addr, Port remote_port,
                             Port local_port, TcpConfig cfg)
    : host_(&host),
      cfg_(cfg),
      remote_addr_(remote_addr),
      remote_port_(remote_port),
      local_port_(local_port),
      rto_(cfg.initial_rto) {
  cwnd_ = static_cast<double>(cfg_.initial_cwnd_segments) * cfg_.mss;
  ssthresh_ = 1e18;  // effectively unbounded until the first loss
}

SimTime TcpConnection::now() const { return host_->sim().now(); }

void TcpConnection::start_connect() {
  state_ = State::kSynSent;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;  // SYN consumes one sequence number
  send_segment(kTcpSyn, iss_, {}, false);
  arm_rto();
}

void TcpConnection::start_accept(const TcpHeader& syn) {
  state_ = State::kSynRcvd;
  rcv_nxt_ = syn.seq + 1;
  peer_window_ = syn.window;
  snd_una_ = iss_;
  snd_nxt_ = iss_ + 1;
  send_segment(kTcpSyn | kTcpAck, iss_, {}, false);
  arm_rto();
}

std::uint32_t TcpConnection::effective_window() const {
  const double w = std::min(cwnd_, static_cast<double>(peer_window_));
  const std::uint32_t flight = snd_nxt_ - snd_una_;
  if (w <= flight) return 0;
  return static_cast<std::uint32_t>(w) - flight;
}

bool TcpConnection::send(const Bytes& data) {
  if (state_ == State::kClosed || fin_pending_ || fin_sent_) return false;
  if (state_ == State::kFinWait || state_ == State::kLastAck) return false;
  if (send_buf_.size() + data.size() > cfg_.max_send_buffer) return false;
  send_buf_.insert(send_buf_.end(), data.begin(), data.end());
  stats_.bytes_sent += data.size();
  try_send();
  return true;
}

void TcpConnection::close() {
  if (state_ == State::kClosed || fin_pending_ || fin_sent_) return;
  fin_pending_ = true;
  maybe_send_fin();
}

void TcpConnection::abort() {
  if (state_ == State::kClosed) return;
  TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = remote_port_;
  hdr.seq = snd_nxt_;
  hdr.flags = kTcpRst;
  host_->send_ip(remote_addr_, IpProto::kTcp, serialize_tcp(hdr, {}));
  enter_closed();
}

void TcpConnection::maybe_send_fin() {
  if (!fin_pending_ || fin_sent_ || !send_buf_.empty()) return;
  if (state_ != State::kEstablished && state_ != State::kCloseWait &&
      state_ != State::kSynSent && state_ != State::kSynRcvd) {
    return;
  }
  if (state_ == State::kSynSent || state_ == State::kSynRcvd) {
    // Handshake incomplete: defer the FIN until established.
    return;
  }
  fin_seq_ = snd_nxt_;
  snd_nxt_ += 1;
  fin_sent_ = true;
  send_segment(kTcpFin | kTcpAck, fin_seq_, {}, false);
  state_ = state_ == State::kCloseWait ? State::kLastAck : State::kFinWait;
  arm_rto();
}

void TcpConnection::try_send() {
  if (state_ != State::kEstablished && state_ != State::kCloseWait) {
    return;
  }
  if (in_recovery_) {
    recovery_send();
    return;
  }
  while (!send_buf_.empty()) {
    const std::uint32_t window = effective_window();
    if (window == 0) break;
    const std::uint32_t len = std::min<std::uint32_t>(
        {cfg_.mss, window, static_cast<std::uint32_t>(send_buf_.size())});
    Bytes payload(send_buf_.begin(),
                  send_buf_.begin() + static_cast<std::ptrdiff_t>(len));
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<std::ptrdiff_t>(len));
    const std::uint32_t seq = snd_nxt_;
    snd_nxt_ += len;
    inflight_[seq] = payload;
    if (!timed_valid_) {
      timed_valid_ = true;
      timed_seq_ = seq;
      timed_sent_at_ = host_->sim().now();
    }
    send_segment(kTcpAck, seq, payload, false);
  }
  if (flight_size() > 0 && rto_event_ == kInvalidEventId) arm_rto();
  maybe_send_fin();
}

std::vector<std::pair<std::uint32_t, std::uint32_t>>
TcpConnection::sack_ranges() const {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> ranges;
  if (!cfg_.enable_sack) return ranges;
  for (const auto& [seq, data] : reorder_) {
    const std::uint32_t end = seq + static_cast<std::uint32_t>(data.size());
    if (!ranges.empty() && ranges.back().second == seq) {
      ranges.back().second = end;  // merge contiguous
    } else {
      if (ranges.size() == TcpHeader::kMaxSackRanges) break;
      ranges.emplace_back(seq, end);
    }
  }
  return ranges;
}

void TcpConnection::send_segment(std::uint8_t flags, std::uint32_t seq,
                                 const Bytes& payload, bool count_retransmit) {
  TcpHeader hdr;
  hdr.src_port = local_port_;
  hdr.dst_port = remote_port_;
  hdr.seq = seq;
  hdr.ack = rcv_nxt_;
  hdr.flags = flags;
  hdr.window = cfg_.recv_window_bytes;
  if ((flags & kTcpAck) != 0) hdr.sacks = sack_ranges();
  ++stats_.segments_sent;
  if (count_retransmit) ++stats_.retransmits;
  host_->send_ip(remote_addr_, IpProto::kTcp, serialize_tcp(hdr, payload));
}

void TcpConnection::send_ack() { send_segment(kTcpAck, snd_nxt_, {}, false); }

void TcpConnection::arm_rto() {
  cancel_rto();
  rto_event_ = host_->sim().schedule_after(rto_, SimCategory::kProto, [this] {
    rto_event_ = kInvalidEventId;
    on_rto();
  });
}

void TcpConnection::cancel_rto() {
  if (rto_event_ != kInvalidEventId) {
    host_->sim().cancel(rto_event_);
    rto_event_ = kInvalidEventId;
  }
}

void TcpConnection::on_rto() {
  if (state_ == State::kClosed) return;
  ++stats_.timeouts;
  if (++consecutive_timeouts_ > kMaxConsecutiveTimeouts) {
    enter_closed();  // peer unreachable: give up
    return;
  }
  rto_ = std::min<SimDuration>(rto_ * 2, kMaxRto);

  if (state_ == State::kSynSent || state_ == State::kSynRcvd) {
    if (++syn_retries_ > kMaxSynRetries) {
      enter_closed();
      return;
    }
    const std::uint8_t flags =
        state_ == State::kSynSent ? kTcpSyn : (kTcpSyn | kTcpAck);
    send_segment(flags, iss_, {}, true);
    arm_rto();
    return;
  }

  // Loss: collapse the window and go back to the first unacknowledged byte.
  // Treating all outstanding data as lost (go-back-N) sidesteps NewReno's
  // one-hole-per-RTT recovery, which deadlocks practical throughput under
  // the bursty multi-loss patterns a DropTail overflow produces. The
  // receiver discards any duplicate segments this re-sends.
  ssthresh_ = std::max(static_cast<double>(flight_size()) / 2,
                       2.0 * cfg_.mss);
  cwnd_ = cfg_.mss;
  stats_.cwnd_segments = cwnd_ / cfg_.mss;
  dup_acks_ = 0;
  in_recovery_ = false;
  timed_valid_ = false;  // Karn
  sacked_.clear();
  rtx_times_.clear();

  // Requeue every unacked payload in front of the send buffer.
  for (auto it = inflight_.rbegin(); it != inflight_.rend(); ++it) {
    send_buf_.insert(send_buf_.begin(), it->second.begin(), it->second.end());
  }
  inflight_.clear();
  const bool had_fin = fin_sent_;
  snd_nxt_ = snd_una_;
  if (had_fin) {
    // The FIN (and possibly its preceding data) must be re-emitted.
    fin_sent_ = false;
    fin_pending_ = true;
    if (state_ == State::kFinWait) state_ = State::kEstablished;
    if (state_ == State::kLastAck) state_ = State::kCloseWait;
  }
  try_send();
  if (flight_size() > 0 || fin_sent_) {
    ++stats_.retransmits;
    arm_rto();
  }
}

void TcpConnection::update_rtt(SimDuration sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const SimDuration err = srtt_ > sample ? srtt_ - sample : sample - srtt_;
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
  rto_ = srtt_ + std::max<SimDuration>(4 * rttvar_, milliseconds(1));
  rto_ = std::clamp<SimDuration>(rto_, cfg_.min_rto, kMaxRto);
  stats_.srtt = srtt_;
}

void TcpConnection::apply_sacks(const TcpHeader& hdr) {
  for (const auto& [begin, end] : hdr.sacks) {
    for (auto it = inflight_.lower_bound(begin);
         it != inflight_.end() && seq_lt(it->first, end); ++it) {
      const std::uint32_t seg_end =
          it->first + static_cast<std::uint32_t>(it->second.size());
      if (seq_le(seg_end, end)) sacked_.insert(it->first);
    }
  }
}

std::uint64_t TcpConnection::estimate_pipe() const {
  // RFC 6675 "pipe": bytes believed to be in the network. A segment is
  //   * out of the pipe if SACKed (it arrived), or
  //   * lost (below the highest SACK, unSACKed, never/too-long-ago resent)
  //   * otherwise in the pipe (original transmission or recent retransmit).
  const std::uint32_t max_sacked = sacked_.empty() ? snd_una_ : *sacked_.rbegin();
  const SimTime now = host_->sim().now();
  const SimDuration rtx_stale = srtt_ > 0 ? 2 * srtt_ : rto_;
  std::uint64_t pipe = 0;
  for (auto it = inflight_.lower_bound(snd_una_); it != inflight_.end(); ++it) {
    if (sacked_.contains(it->first)) continue;
    if (seq_lt(it->first, max_sacked)) {
      const auto rt = rtx_times_.find(it->first);
      if (rt == rtx_times_.end() || now - rt->second > rtx_stale) {
        continue;  // lost and not (recently) retransmitted: not in the pipe
      }
    }
    pipe += it->second.size();
  }
  return pipe;
}

void TcpConnection::recovery_send() {
  const std::uint32_t max_sacked =
      sacked_.empty() ? snd_una_ : *sacked_.rbegin();
  const SimTime now = host_->sim().now();
  const SimDuration rtx_stale = srtt_ > 0 ? 2 * srtt_ : rto_;
  std::uint64_t pipe = estimate_pipe();

  // First repair holes, oldest first; then send new data if room remains.
  // The first eligible hole is always retransmitted even when the pipe is
  // full (RFC 6675 §5 step 4a) — otherwise recovery can never start after
  // a large burst where pipe > cwnd.
  bool sent_any = false;
  for (auto it = inflight_.lower_bound(snd_una_);
       it != inflight_.end() && seq_lt(it->first, max_sacked); ++it) {
    if (sent_any && pipe + cfg_.mss > static_cast<std::uint64_t>(cwnd_)) {
      return;
    }
    if (sacked_.contains(it->first)) continue;
    const auto rt = rtx_times_.find(it->first);
    if (rt != rtx_times_.end() && now - rt->second <= rtx_stale) continue;
    rtx_times_[it->first] = now;
    timed_valid_ = false;  // Karn
    ++stats_.fast_retransmits;
    send_segment(kTcpAck, it->first, it->second, true);
    pipe += it->second.size();
    sent_any = true;
  }
  // Head-of-line hole with no SACK info at all: resend the head.
  if (sacked_.empty()) {
    const auto head = inflight_.lower_bound(snd_una_);
    if (head != inflight_.end()) {
      const auto rt = rtx_times_.find(head->first);
      if (rt == rtx_times_.end() || now - rt->second > rtx_stale) {
        rtx_times_[head->first] = now;
        timed_valid_ = false;  // Karn
        ++stats_.fast_retransmits;
        send_segment(kTcpAck, head->first, head->second, true);
        pipe += head->second.size();
      }
    }
  }
  // New data, clocked by the same pipe bound.
  while (!send_buf_.empty() &&
         pipe + cfg_.mss <= static_cast<std::uint64_t>(cwnd_)) {
    const std::uint32_t len = std::min<std::uint32_t>(
        {cfg_.mss, static_cast<std::uint32_t>(send_buf_.size())});
    Bytes payload(send_buf_.begin(),
                  send_buf_.begin() + static_cast<std::ptrdiff_t>(len));
    send_buf_.erase(send_buf_.begin(),
                    send_buf_.begin() + static_cast<std::ptrdiff_t>(len));
    const std::uint32_t seq = snd_nxt_;
    snd_nxt_ += len;
    inflight_[seq] = payload;
    send_segment(kTcpAck, seq, payload, false);
    pipe += len;
  }
}

void TcpConnection::handle_ack(const TcpHeader& hdr) {
  peer_window_ = hdr.window;
  const std::uint32_t ack = hdr.ack;
  apply_sacks(hdr);

  if (seq_lt(snd_una_, ack)) {
    // After a go-back-N timeout the peer's cumulative ACK can jump past our
    // rewound snd_nxt_ (a single retransmission filled the hole in front of
    // data the receiver already held). The requeued bytes below `ack` are
    // duplicates the peer already has: drop them and fast-forward.
    if (seq_lt(snd_nxt_, ack)) {
      const std::uint32_t dup = ack - snd_nxt_;
      const std::size_t drop =
          std::min<std::size_t>(dup, send_buf_.size());
      send_buf_.erase(send_buf_.begin(),
                      send_buf_.begin() + static_cast<std::ptrdiff_t>(drop));
      snd_nxt_ = ack;
    }
    // New data acknowledged.
    if (timed_valid_ && seq_lt(timed_seq_, ack)) {
      update_rtt(host_->sim().now() - timed_sent_at_);
      timed_valid_ = false;
    }
    // Drop fully-acked segments from the retransmission buffer.
    for (auto it = inflight_.begin(); it != inflight_.end();) {
      if (seq_le(it->first + static_cast<std::uint32_t>(it->second.size()),
                 ack)) {
        it = inflight_.erase(it);
      } else {
        break;
      }
    }
    snd_una_ = ack;
    dup_acks_ = 0;
    consecutive_timeouts_ = 0;
    sacked_.erase(sacked_.begin(), sacked_.lower_bound(ack));
    rtx_times_.erase(rtx_times_.begin(), rtx_times_.lower_bound(ack));

    if (in_recovery_ && seq_le(recovery_end_, ack)) {
      // Leave fast recovery: deflate to ssthresh.
      in_recovery_ = false;
      rtx_times_.clear();
      cwnd_ = ssthresh_;
    } else if (in_recovery_) {
      // Partial ACK: keep repairing from the SACK scoreboard.
      recovery_send();
    } else if (cwnd_ < ssthresh_) {
      cwnd_ += cfg_.mss;  // slow start
    } else {
      cwnd_ += static_cast<double>(cfg_.mss) * cfg_.mss / cwnd_;  // CA
    }
    stats_.cwnd_segments = cwnd_ / cfg_.mss;

    if (flight_size() == 0 && !(fin_sent_ && seq_le(snd_una_, fin_seq_))) {
      cancel_rto();
    } else {
      arm_rto();
    }
    try_send();
  } else if (ack == snd_una_ && flight_size() > 0) {
    // Duplicate ACK.
    ++dup_acks_;
    if (!in_recovery_ && dup_acks_ == 3) {
      // Fast retransmit: enter SACK-based recovery.
      ssthresh_ =
          std::max(static_cast<double>(flight_size()) / 2, 2.0 * cfg_.mss);
      rtx_times_.clear();
      cwnd_ = ssthresh_;
      in_recovery_ = true;
      recovery_end_ = snd_nxt_;
      recovery_send();
      arm_rto();
    } else if (in_recovery_) {
      recovery_send();
    }
    stats_.cwnd_segments = cwnd_ / cfg_.mss;
  }

  // Has our FIN been acknowledged?
  if (fin_sent_ && seq_lt(fin_seq_, snd_una_)) {
    if (state_ == State::kLastAck) {
      enter_closed();
    } else if (state_ == State::kFinWait && peer_fin_seen_) {
      enter_closed();
    }
  }
}

void TcpConnection::deliver_in_order() {
  bool delivered = true;
  while (delivered) {
    delivered = false;
    auto it = reorder_.begin();
    while (it != reorder_.end() && seq_le(it->first, rcv_nxt_)) {
      const std::uint32_t seq = it->first;
      Bytes data = std::move(it->second);
      reorder_bytes_ -= data.size();
      it = reorder_.erase(it);
      const std::uint32_t end = seq + static_cast<std::uint32_t>(data.size());
      if (seq_le(end, rcv_nxt_)) continue;  // fully duplicate
      const std::size_t skip = rcv_nxt_ - seq;
      if (skip > 0) data.erase(data.begin(), data.begin() + static_cast<std::ptrdiff_t>(skip));
      rcv_nxt_ += static_cast<std::uint32_t>(data.size());
      stats_.bytes_delivered += data.size();
      if (on_data) on_data(data);
      delivered = true;
      break;  // reorder_ may have changed; restart scan
    }
  }
  if (peer_fin_seen_ && rcv_nxt_ == peer_fin_seq_) {
    rcv_nxt_ = peer_fin_seq_ + 1;
    if (state_ == State::kEstablished) {
      state_ = State::kCloseWait;
    }
    send_ack();
    if (on_eof) on_eof();
    if (state_ == State::kFinWait && fin_sent_ && seq_lt(fin_seq_, snd_una_)) {
      enter_closed();
      return;
    }
    if (state_ == State::kCloseWait && fin_pending_) maybe_send_fin();
  }
}

void TcpConnection::on_segment(const IpHeader& ip, const TcpSegment& seg) {
  (void)ip;
  const TcpHeader& hdr = seg.hdr;

  if (hdr.rst()) {
    enter_closed();
    return;
  }

  switch (state_) {
    case State::kClosed:
      return;
    case State::kSynSent: {
      if (hdr.syn() && hdr.ack_flag() && hdr.ack == iss_ + 1) {
        rcv_nxt_ = hdr.seq + 1;
        snd_una_ = hdr.ack;
        peer_window_ = hdr.window;
        state_ = State::kEstablished;
        cancel_rto();
        rto_ = cfg_.initial_rto;
        send_ack();
        if (on_connected) on_connected();
        try_send();
      }
      return;
    }
    case State::kSynRcvd: {
      if (hdr.syn() && !hdr.ack_flag()) {
        // Our SYN|ACK was lost; resend.
        send_segment(kTcpSyn | kTcpAck, iss_, {}, true);
        return;
      }
      if (hdr.ack_flag() && hdr.ack == iss_ + 1) {
        snd_una_ = hdr.ack;
        peer_window_ = hdr.window;
        state_ = State::kEstablished;
        cancel_rto();
        rto_ = cfg_.initial_rto;
        if (on_connected) on_connected();
        try_send();
        // Fall through to process any piggybacked data below.
        break;
      }
      return;
    }
    default:
      break;
  }

  // Established-family processing.
  if (hdr.ack_flag()) handle_ack(hdr);
  if (state_ == State::kClosed) return;

  if (!seg.payload.empty()) {
    const std::uint32_t seq = seg.hdr.seq;
    const std::uint32_t end =
        seq + static_cast<std::uint32_t>(seg.payload.size());
    if (seq_le(end, rcv_nxt_)) {
      // Entirely old data: re-ACK so the sender can advance.
      send_ack();
    } else {
      if (!reorder_.contains(seq)) {
        reorder_bytes_ += seg.payload.size();
        reorder_[seq] = seg.payload;
      }
      deliver_in_order();
      send_ack();
    }
  }

  if (hdr.fin()) {
    const std::uint32_t fin_at =
        hdr.seq + static_cast<std::uint32_t>(seg.payload.size());
    peer_fin_seen_ = true;
    peer_fin_seq_ = fin_at;
    deliver_in_order();
    if (rcv_nxt_ != peer_fin_seq_ + 1) {
      // FIN arrived but earlier data is missing; ACK what we have.
      send_ack();
    }
  }
}

void TcpConnection::enter_closed() {
  if (state_ == State::kClosed) return;
  state_ = State::kClosed;
  cancel_rto();
  send_buf_.clear();
  inflight_.clear();
  reorder_.clear();
  reorder_bytes_ = 0;
  if (on_closed) on_closed();
}

}  // namespace pvn
