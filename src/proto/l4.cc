#include "proto/l4.h"

#include "netsim/packet.h"

namespace pvn {

void TcpHeader::encode(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(seq);
  w.u32(ack);
  w.u8(flags);
  w.u32(window);
  w.u16(0);  // pad the base header to the nominal 20 bytes
  const std::size_t n = sacks.size() < kMaxSackRanges ? sacks.size()
                                                      : kMaxSackRanges;
  w.u8(static_cast<std::uint8_t>(n));
  for (std::size_t i = 0; i < n; ++i) {
    w.u32(sacks[i].first);
    w.u32(sacks[i].second);
  }
}

TcpHeader TcpHeader::decode(ByteReader& r) {
  TcpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  h.seq = r.u32();
  h.ack = r.u32();
  h.flags = r.u8();
  h.window = r.u32();
  r.u16();
  const std::uint8_t n = r.u8();
  for (std::uint8_t i = 0; i < n && i < kMaxSackRanges; ++i) {
    const std::uint32_t begin = r.u32();
    const std::uint32_t end = r.u32();
    h.sacks.emplace_back(begin, end);
  }
  return h;
}

void UdpHeader::encode(ByteWriter& w) const {
  w.u16(src_port);
  w.u16(dst_port);
  w.u32(0);  // pad to 8 bytes (length/checksum slot)
}

UdpHeader UdpHeader::decode(ByteReader& r) {
  UdpHeader h;
  h.src_port = r.u16();
  h.dst_port = r.u16();
  r.u32();
  return h;
}

std::optional<TcpSegment> parse_tcp(const Bytes& l4) {
  ByteReader r(l4);
  TcpSegment seg;
  seg.hdr = TcpHeader::decode(r);
  if (!r.ok()) return std::nullopt;
  seg.payload = r.raw(r.remaining());
  return seg;
}

std::optional<UdpDatagram> parse_udp(const Bytes& l4) {
  ByteReader r(l4);
  UdpDatagram dg;
  dg.hdr = UdpHeader::decode(r);
  if (!r.ok()) return std::nullopt;
  dg.payload = r.raw(r.remaining());
  return dg;
}

Bytes serialize_tcp(const TcpHeader& hdr, const Bytes& payload) {
  ByteWriter w;
  hdr.encode(w);
  w.raw(payload);
  return std::move(w).take();
}

Bytes serialize_udp(const UdpHeader& hdr, const Bytes& payload) {
  ByteWriter w;
  hdr.encode(w);
  w.raw(payload);
  return std::move(w).take();
}

bool peek_ports(std::uint8_t ip_proto, const Bytes& l4, Port& src, Port& dst) {
  const auto proto = static_cast<IpProto>(ip_proto);
  if (proto != IpProto::kTcp && proto != IpProto::kUdp) return false;
  if (l4.size() < 4) return false;
  src = static_cast<Port>((l4[0] << 8) | l4[1]);
  dst = static_cast<Port>((l4[2] << 8) | l4[3]);
  return true;
}

}  // namespace pvn
