// HTTP-lite: a text-shaped request/response protocol over TCP.
//
// Real-enough for the paper's workloads: headers are plaintext (so the PII
// detector and classifier middleboxes can inspect them), bodies have
// Content-Length framing, and a server can synthesize payloads of any size
// ("/bytes/N") for download experiments.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "proto/host.h"

namespace pvn {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::vector<std::pair<std::string, std::string>> headers;
  Bytes body;

  const std::string* header(const std::string& name) const;
  void set_header(const std::string& name, const std::string& value);
  Bytes serialize() const;
};

struct HttpResponse {
  int status = 200;
  std::string reason = "OK";
  std::vector<std::pair<std::string, std::string>> headers;
  Bytes body;

  const std::string* header(const std::string& name) const;
  void set_header(const std::string& name, const std::string& value);
  Bytes serialize() const;
};

// Incremental parser for one direction of an HTTP-lite stream.
// Emits complete messages via the callback. Handles pipelined messages.
class HttpParser {
 public:
  enum class Kind { kRequest, kResponse };
  using RequestHandler = std::function<void(HttpRequest)>;
  using ResponseHandler = std::function<void(HttpResponse)>;

  HttpParser(Kind kind, RequestHandler on_request, ResponseHandler on_response)
      : kind_(kind),
        on_request_(std::move(on_request)),
        on_response_(std::move(on_response)) {}

  void feed(const Bytes& chunk);
  bool error() const { return error_; }
  // Body bytes received so far for the in-flight message (for TTFB-style
  // progress measurements).
  std::size_t partial_body_bytes() const;

 private:
  bool try_parse_one();

  Kind kind_;
  RequestHandler on_request_;
  ResponseHandler on_response_;
  std::string buf_;
  bool error_ = false;
};

// A server application bound to a listening port of a Host.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  HttpServer(Host& host, Port port = 80);
  ~HttpServer();

  // Overrides the default handler. The default serves:
  //   /bytes/N        -> N bytes of deterministic filler
  //   anything else   -> 200 with a small text body
  void set_handler(Handler handler) { handler_ = std::move(handler); }

  std::uint64_t requests_served() const { return requests_; }

 private:
  struct ConnState;
  void on_accept(TcpConnection& conn);

  Host* host_;
  Handler handler_;
  std::uint64_t requests_ = 0;
  std::vector<std::unique_ptr<ConnState>> conns_;
};

// Default content generator used by HttpServer for /bytes/N paths.
HttpResponse synthesize_response(const HttpRequest& req);

// Timing observed by an HttpClient fetch.
struct FetchTiming {
  SimTime started = 0;
  SimTime connected = 0;
  SimTime first_byte = 0;
  SimTime completed = 0;
  bool ok = false;
  std::size_t body_bytes = 0;

  SimDuration total() const { return completed - started; }
  SimDuration ttfb() const { return first_byte - started; }
};

// One-shot HTTP client: opens a connection per fetch.
class HttpClient {
 public:
  explicit HttpClient(Host& host);
  ~HttpClient();

  using Callback = std::function<void(const HttpResponse&, const FetchTiming&)>;

  // Fetches http://<dst>:<port><path>. Extra headers ride on the request
  // (the PII experiments put leaky headers there).
  void fetch(Ipv4Addr dst, Port port, const std::string& path, Callback cb,
             std::vector<std::pair<std::string, std::string>> headers = {},
             Bytes body = {}, const std::string& method = "GET");

 private:
  struct FetchState;
  Host* host_;
  std::vector<std::unique_ptr<FetchState>> fetches_;
};

}  // namespace pvn
