// DHCP-lite: address assignment with an options field that carries the PVN
// support advertisement (paper §3.1: discovery "could be done during DHCP
// negotiation"). Option 224 announces the PVN deployment server's address.
//
// The protocol also supports the post-deployment "DHCP refresh to obtain the
// new addresses" the paper describes after a PVNC is installed.
#pragma once

#include <functional>
#include <map>

#include "proto/host.h"

namespace pvn {

constexpr Port kDhcpServerPort = 67;
constexpr Port kDhcpClientPort = 68;

// Option carrying the PVN deployment server IPv4 address (4 bytes).
constexpr std::uint8_t kDhcpOptPvnServer = 224;
// Option carrying the supported PVNC standards as a comma-separated string.
constexpr std::uint8_t kDhcpOptPvnStandards = 225;

enum class DhcpType : std::uint8_t {
  kDiscover = 1,
  kOffer = 2,
  kRequest = 3,
  kAck = 4,
  kNak = 5,
};

struct DhcpMessage {
  DhcpType type = DhcpType::kDiscover;
  std::uint32_t xid = 0;          // transaction id
  std::uint64_t client_id = 0;    // stands in for the MAC address
  Ipv4Addr offered;               // OFFER/REQUEST/ACK
  std::map<std::uint8_t, Bytes> options;

  Bytes encode() const;
  static std::optional<DhcpMessage> decode(const Bytes& raw);
};

// Address pool server; optionally advertises PVN support in its offers.
class DhcpServer {
 public:
  DhcpServer(Host& host, Ipv4Addr pool_start, int pool_size);

  // Enables the PVN-support option in OFFER/ACK messages.
  void advertise_pvn(Ipv4Addr deployment_server, std::string standards);
  void stop_advertising_pvn();

  std::uint64_t leases_granted() const { return leases_; }

 private:
  void on_message(Ipv4Addr src, const Bytes& payload);

  Host* host_;
  Ipv4Addr pool_start_;
  int pool_size_;
  int next_offset_ = 0;
  std::map<std::uint64_t, Ipv4Addr> leases_by_client_;
  bool pvn_enabled_ = false;
  Ipv4Addr pvn_server_;
  std::string pvn_standards_;
  std::uint64_t leases_ = 0;
};

// Outcome of a DHCP exchange, including any PVN advertisement discovered.
struct DhcpLease {
  bool ok = false;
  Ipv4Addr addr;
  bool pvn_supported = false;
  Ipv4Addr pvn_server;
  std::string pvn_standards;
};

class DhcpClient {
 public:
  explicit DhcpClient(Host& host);

  using Callback = std::function<void(const DhcpLease&)>;

  // Runs DISCOVER -> OFFER -> REQUEST -> ACK against `server`. On success
  // the host's address is updated to the leased address.
  void acquire(Ipv4Addr server, Callback cb,
               SimDuration timeout = seconds(3));

 private:
  void on_message(const Bytes& payload);
  void finish(const DhcpLease& lease);

  Host* host_;
  Ipv4Addr server_;
  std::uint32_t xid_ = 0;
  Callback cb_;
  EventId timeout_event_ = kInvalidEventId;
  bool in_progress_ = false;
};

}  // namespace pvn
