#include "proto/dhcp.h"

#include "util/digest.h"

namespace pvn {

Bytes DhcpMessage::encode() const {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.u32(xid);
  w.u64(client_id);
  w.u32(offered.v);
  w.u16(static_cast<std::uint16_t>(options.size()));
  for (const auto& [code, value] : options) {
    w.u8(code);
    w.blob(value);
  }
  return std::move(w).take();
}

std::optional<DhcpMessage> DhcpMessage::decode(const Bytes& raw) {
  ByteReader r(raw);
  DhcpMessage m;
  m.type = static_cast<DhcpType>(r.u8());
  m.xid = r.u32();
  m.client_id = r.u64();
  m.offered = Ipv4Addr(r.u32());
  const std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    const std::uint8_t code = r.u8();
    m.options[code] = r.blob();
  }
  if (!r.ok()) return std::nullopt;
  return m;
}

DhcpServer::DhcpServer(Host& host, Ipv4Addr pool_start, int pool_size)
    : host_(&host), pool_start_(pool_start), pool_size_(pool_size) {
  host_->bind_udp(kDhcpServerPort,
                  [this](Ipv4Addr src, Port, Port, const Bytes& payload) {
                    on_message(src, payload);
                  });
}

void DhcpServer::advertise_pvn(Ipv4Addr deployment_server,
                               std::string standards) {
  pvn_enabled_ = true;
  pvn_server_ = deployment_server;
  pvn_standards_ = std::move(standards);
}

void DhcpServer::stop_advertising_pvn() { pvn_enabled_ = false; }

void DhcpServer::on_message(Ipv4Addr src, const Bytes& payload) {
  const auto msg = DhcpMessage::decode(payload);
  if (!msg) return;

  DhcpMessage reply;
  reply.xid = msg->xid;
  reply.client_id = msg->client_id;

  switch (msg->type) {
    case DhcpType::kDiscover: {
      auto it = leases_by_client_.find(msg->client_id);
      if (it == leases_by_client_.end()) {
        if (next_offset_ >= pool_size_) return;  // pool exhausted: silence
        const Ipv4Addr addr{pool_start_.v +
                            static_cast<std::uint32_t>(next_offset_++)};
        it = leases_by_client_.emplace(msg->client_id, addr).first;
      }
      reply.type = DhcpType::kOffer;
      reply.offered = it->second;
      break;
    }
    case DhcpType::kRequest: {
      const auto it = leases_by_client_.find(msg->client_id);
      if (it == leases_by_client_.end() || it->second != msg->offered) {
        reply.type = DhcpType::kNak;
      } else {
        reply.type = DhcpType::kAck;
        reply.offered = it->second;
        ++leases_;
      }
      break;
    }
    default:
      return;
  }

  if (pvn_enabled_ &&
      (reply.type == DhcpType::kOffer || reply.type == DhcpType::kAck)) {
    ByteWriter addr;
    addr.u32(pvn_server_.v);
    reply.options[kDhcpOptPvnServer] = std::move(addr).take();
    reply.options[kDhcpOptPvnStandards] = to_bytes(pvn_standards_);
  }

  host_->send_udp(src, kDhcpServerPort, kDhcpClientPort, reply.encode());
}

DhcpClient::DhcpClient(Host& host) : host_(&host) {
  host_->bind_udp(kDhcpClientPort,
                  [this](Ipv4Addr, Port, Port, const Bytes& payload) {
                    on_message(payload);
                  });
}

void DhcpClient::acquire(Ipv4Addr server, Callback cb, SimDuration timeout) {
  server_ = server;
  cb_ = std::move(cb);
  xid_ = static_cast<std::uint32_t>(host_->sim().now() ^ 0x5A5A) + 1;
  in_progress_ = true;

  DhcpMessage discover;
  discover.type = DhcpType::kDiscover;
  discover.xid = xid_;
  discover.client_id = digest_of(host_->name()).lanes[0];
  host_->send_udp(server_, kDhcpClientPort, kDhcpServerPort, discover.encode());

  timeout_event_ = host_->sim().schedule_after(timeout, SimCategory::kProto, [this] {
    timeout_event_ = kInvalidEventId;
    finish(DhcpLease{});
  });
}

void DhcpClient::on_message(const Bytes& payload) {
  if (!in_progress_) return;
  const auto msg = DhcpMessage::decode(payload);
  if (!msg || msg->xid != xid_) return;

  switch (msg->type) {
    case DhcpType::kOffer: {
      DhcpMessage request;
      request.type = DhcpType::kRequest;
      request.xid = xid_;
      request.client_id = msg->client_id;
      request.offered = msg->offered;
      host_->send_udp(server_, kDhcpClientPort, kDhcpServerPort,
                      request.encode());
      break;
    }
    case DhcpType::kAck: {
      DhcpLease lease;
      lease.ok = true;
      lease.addr = msg->offered;
      if (const auto it = msg->options.find(kDhcpOptPvnServer);
          it != msg->options.end() && it->second.size() == 4) {
        ByteReader r(it->second);
        lease.pvn_supported = true;
        lease.pvn_server = Ipv4Addr(r.u32());
      }
      if (const auto it = msg->options.find(kDhcpOptPvnStandards);
          it != msg->options.end()) {
        lease.pvn_standards = to_string(it->second);
      }
      host_->set_addr(lease.addr);
      finish(lease);
      break;
    }
    case DhcpType::kNak:
      finish(DhcpLease{});
      break;
    default:
      break;
  }
}

void DhcpClient::finish(const DhcpLease& lease) {
  if (!in_progress_) return;
  in_progress_ = false;
  if (timeout_event_ != kInvalidEventId) {
    host_->sim().cancel(timeout_event_);
    timeout_event_ = kInvalidEventId;
  }
  if (cb_) cb_(lease);
}

}  // namespace pvn
