// TLS-lite: certificate chains, a certificate authority, chain validation,
// and a handshake + record layer over TCP.
//
// The paper's HTTPS/TLS Enhancement module (§4) interposes on handshakes to
// validate certificates *better than the client does* — so the model needs:
//   * real-looking chains (leaf signed by intermediate signed by root)
//   * every failure mode the TlsValidator must catch: expired, revoked,
//     name-mismatched, untrusted-root, bad-signature (MITM re-signing)
//   * clients with broken validation (the [23] population) that accept
//     anything, so interception succeeds without the PVN and fails with it
//
// Record protection is structural: application records carry an HMAC keyed
// by the session key. An interceptor that re-terminates TLS gets a different
// session key, which the content-modification auditor can detect end-to-end.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "proto/framing.h"
#include "proto/tcp.h"
#include "util/digest.h"

namespace pvn {

struct Certificate {
  std::string subject;       // DNS name the cert is valid for
  std::string issuer;
  PublicKey subject_key;
  SimTime not_before = 0;
  SimTime not_after = 0;
  std::uint64_t serial = 0;
  Signature issuer_signature;  // over canonical_bytes()

  Bytes canonical_bytes() const;
  void encode(ByteWriter& w) const;
  static Certificate decode(ByteReader& r);
  bool operator==(const Certificate&) const = default;
};

using CertChain = std::vector<Certificate>;  // leaf first, root last

Bytes encode_chain(const CertChain& chain);
std::optional<CertChain> decode_chain(const Bytes& raw);

enum class CertStatus {
  kOk,
  kEmptyChain,
  kExpired,
  kNotYetValid,
  kNameMismatch,
  kUntrustedRoot,
  kBadSignature,
  kRevoked,
};
const char* to_string(CertStatus status);

// A certificate authority: issues and revokes certificates. Roots are
// self-signed; intermediates chain to a parent CA.
class CertificateAuthority {
 public:
  CertificateAuthority(std::string name, std::uint64_t key_seed);

  const std::string& name() const { return name_; }
  const KeyPair& key() const { return key_; }
  const Certificate& self_certificate() const { return self_cert_; }

  Certificate issue(const std::string& subject, const PublicKey& subject_key,
                    SimTime not_before, SimTime not_after);
  // Creates a subordinate CA whose certificate is issued by this one.
  std::unique_ptr<CertificateAuthority> issue_intermediate(
      const std::string& name, std::uint64_t key_seed, SimTime not_before,
      SimTime not_after);

  void revoke(std::uint64_t serial) { revoked_.insert(serial); }
  bool is_revoked(std::uint64_t serial) const {
    return revoked_.contains(serial);
  }

  const Certificate* chain_to_root() const {
    return parent_cert_.subject.empty() ? nullptr : &parent_cert_;
  }

 private:
  std::string name_;
  KeyPair key_;
  Certificate self_cert_;
  Certificate parent_cert_;  // empty subject for root CAs
  std::uint64_t next_serial_ = 1;
  std::set<std::uint64_t> revoked_;
};

// The validation context a client (or the PVN TlsValidator) trusts.
struct TrustStore {
  KeyRegistry keys;                    // public->secret for signature checks
  std::set<std::uint64_t> trusted_roots;  // public key ids of trusted roots
  std::set<std::uint64_t> revoked_serials;  // CRL snapshot

  void trust_root(const CertificateAuthority& ca);
  // Also trusts the keys of intermediates so their signatures verify.
  void add_intermediate(const CertificateAuthority& ca);
};

// Full chain validation: signatures, validity window, name match, root
// trust, revocation.
CertStatus validate_chain(const CertChain& chain, const TrustStore& trust,
                          SimTime now, const std::string& expected_name);

// --- Handshake + record layer over TCP ------------------------------------

enum class TlsContentType : std::uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kFinished = 3,
  kAppData = 4,
  kAlert = 5,
};

struct TlsRecord {
  TlsContentType type = TlsContentType::kAppData;
  Bytes body;

  Bytes encode() const;
  static std::optional<TlsRecord> decode(const Bytes& raw);
};

// Client-side validation behaviour. kNone models the large population of
// apps that skip certificate checks entirely [23].
enum class TlsClientPolicy { kStrict, kNone };

struct TlsSessionInfo {
  bool established = false;
  CertStatus cert_status = CertStatus::kEmptyChain;
  CertChain server_chain;
  Digest session_key;  // shared secret digest (structural)
};

// Server side: serves a certificate chain over an accepted TcpConnection.
class TlsServer {
 public:
  using DataHandler = std::function<void(const Bytes&)>;

  TlsServer(TcpConnection& conn, CertChain chain, KeyPair key);

  void set_on_data(DataHandler handler) { on_data_ = std::move(handler); }
  void send(const Bytes& plaintext);
  bool established() const { return established_; }
  const Digest& session_key() const { return session_key_; }

 private:
  void on_record(Bytes frame);

  TcpConnection* conn_;
  CertChain chain_;
  KeyPair key_;
  StreamFramer framer_;
  bool established_ = false;
  Bytes client_nonce_;
  Bytes server_nonce_;
  Digest session_key_;
  DataHandler on_data_;
};

// Client side: connects, validates the chain per policy, exchanges data.
class TlsClient {
 public:
  using ConnectedHandler = std::function<void(const TlsSessionInfo&)>;
  using DataHandler = std::function<void(const Bytes&)>;

  TlsClient(TcpConnection& conn, std::string server_name,
            const TrustStore* trust, TlsClientPolicy policy,
            std::uint64_t nonce_seed);

  void set_on_connected(ConnectedHandler h) { on_connected_ = std::move(h); }
  void set_on_data(DataHandler h) { on_data_ = std::move(h); }
  void send(const Bytes& plaintext);
  const TlsSessionInfo& info() const { return info_; }

  // True iff a received record failed its MAC (tampering indicator).
  bool saw_bad_mac() const { return bad_mac_; }

 private:
  void on_record(Bytes frame);

  TcpConnection* conn_;
  std::string server_name_;
  const TrustStore* trust_;
  TlsClientPolicy policy_;
  StreamFramer framer_;
  Bytes client_nonce_;
  TlsSessionInfo info_;
  ConnectedHandler on_connected_;
  DataHandler on_data_;
  bool bad_mac_ = false;
};

// Derives the session key both sides compute after the handshake.
Digest derive_session_key(const Bytes& client_nonce, const Bytes& server_nonce,
                          const PublicKey& server_key);

// MACs an application record body with the session key (structural AEAD).
Bytes seal_app_data(const Digest& session_key, const Bytes& plaintext);
// Returns nullopt if the MAC does not verify.
std::optional<Bytes> open_app_data(const Digest& session_key, const Bytes& sealed);

}  // namespace pvn
