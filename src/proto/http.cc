#include "proto/http.h"

#include <charconv>

namespace pvn {
namespace {

const std::string* find_header(
    const std::vector<std::pair<std::string, std::string>>& headers,
    const std::string& name) {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

void append_headers(
    std::string& out,
    const std::vector<std::pair<std::string, std::string>>& headers,
    std::size_t body_size) {
  bool has_length = false;
  for (const auto& [k, v] : headers) {
    out += k;
    out += ": ";
    out += v;
    out += "\r\n";
    if (k == "Content-Length") has_length = true;
  }
  if (!has_length) {
    out += "Content-Length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

}  // namespace

const std::string* HttpRequest::header(const std::string& name) const {
  return find_header(headers, name);
}
void HttpRequest::set_header(const std::string& name,
                             const std::string& value) {
  for (auto& [k, v] : headers) {
    if (k == name) {
      v = value;
      return;
    }
  }
  headers.emplace_back(name, value);
}

const std::string* HttpResponse::header(const std::string& name) const {
  return find_header(headers, name);
}
void HttpResponse::set_header(const std::string& name,
                              const std::string& value) {
  for (auto& [k, v] : headers) {
    if (k == name) {
      v = value;
      return;
    }
  }
  headers.emplace_back(name, value);
}

Bytes HttpRequest::serialize() const {
  std::string out = method + " " + path + " HTTP/1.1\r\n";
  append_headers(out, headers, body.size());
  Bytes raw = to_bytes(out);
  raw.insert(raw.end(), body.begin(), body.end());
  return raw;
}

Bytes HttpResponse::serialize() const {
  std::string out =
      "HTTP/1.1 " + std::to_string(status) + " " + reason + "\r\n";
  append_headers(out, headers, body.size());
  Bytes raw = to_bytes(out);
  raw.insert(raw.end(), body.begin(), body.end());
  return raw;
}

void HttpParser::feed(const Bytes& chunk) {
  if (error_) return;
  buf_.append(chunk.begin(), chunk.end());
  while (try_parse_one()) {
  }
}

std::size_t HttpParser::partial_body_bytes() const {
  const auto head_end = buf_.find("\r\n\r\n");
  if (head_end == std::string::npos) return 0;
  return buf_.size() - (head_end + 4);
}

bool HttpParser::try_parse_one() {
  const auto head_end = buf_.find("\r\n\r\n");
  if (head_end == std::string::npos) return false;
  const std::string head = buf_.substr(0, head_end);

  // Parse status/request line + headers.
  std::vector<std::pair<std::string, std::string>> headers;
  std::size_t line_start = head.find("\r\n");
  std::string first_line =
      head.substr(0, line_start == std::string::npos ? head.size() : line_start);
  std::size_t content_length = 0;
  if (line_start != std::string::npos) {
    std::size_t pos = line_start + 2;
    while (pos < head.size()) {
      std::size_t eol = head.find("\r\n", pos);
      if (eol == std::string::npos) eol = head.size();
      const std::string line = head.substr(pos, eol - pos);
      const auto colon = line.find(": ");
      if (colon == std::string::npos) {
        error_ = true;
        return false;
      }
      headers.emplace_back(line.substr(0, colon), line.substr(colon + 2));
      pos = eol + 2;
    }
  }
  if (const std::string* cl = find_header(headers, "Content-Length")) {
    std::size_t v = 0;
    const auto [p, ec] = std::from_chars(cl->data(), cl->data() + cl->size(), v);
    if (ec != std::errc() || p != cl->data() + cl->size()) {
      error_ = true;
      return false;
    }
    content_length = v;
  }

  const std::size_t total = head_end + 4 + content_length;
  if (buf_.size() < total) return false;
  Bytes body(buf_.begin() + static_cast<std::ptrdiff_t>(head_end + 4),
             buf_.begin() + static_cast<std::ptrdiff_t>(total));
  buf_.erase(0, total);

  if (kind_ == Kind::kRequest) {
    HttpRequest req;
    const auto sp1 = first_line.find(' ');
    const auto sp2 = first_line.find(' ', sp1 + 1);
    if (sp1 == std::string::npos || sp2 == std::string::npos) {
      error_ = true;
      return false;
    }
    req.method = first_line.substr(0, sp1);
    req.path = first_line.substr(sp1 + 1, sp2 - sp1 - 1);
    req.headers = std::move(headers);
    req.body = std::move(body);
    if (on_request_) on_request_(std::move(req));
  } else {
    HttpResponse resp;
    const auto sp1 = first_line.find(' ');
    if (sp1 == std::string::npos) {
      error_ = true;
      return false;
    }
    const auto sp2 = first_line.find(' ', sp1 + 1);
    resp.status = std::atoi(first_line.c_str() + sp1 + 1);
    resp.reason = sp2 == std::string::npos ? "" : first_line.substr(sp2 + 1);
    resp.headers = std::move(headers);
    resp.body = std::move(body);
    if (on_response_) on_response_(std::move(resp));
  }
  return true;
}

HttpResponse synthesize_response(const HttpRequest& req) {
  HttpResponse resp;
  if (req.path.rfind("/bytes/", 0) == 0) {
    const std::size_t n =
        static_cast<std::size_t>(std::atoll(req.path.c_str() + 7));
    resp.body.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      resp.body[i] = static_cast<std::uint8_t>('a' + (i % 23));
    }
    resp.set_header("Content-Type", "application/octet-stream");
  } else {
    const std::string text = "hello from pvn http-lite: " + req.path;
    resp.body = to_bytes(text);
    resp.set_header("Content-Type", "text/plain");
  }
  return resp;
}

struct HttpServer::ConnState {
  TcpConnection* conn = nullptr;
  HttpParser parser{HttpParser::Kind::kRequest, nullptr, nullptr};
};

HttpServer::HttpServer(Host& host, Port port)
    : host_(&host), handler_(synthesize_response) {
  host_->tcp_listen(port, [this](TcpConnection& conn) { on_accept(conn); });
}

void HttpServer::on_accept(TcpConnection& conn) {
  auto state = std::make_unique<ConnState>();
  ConnState* s = state.get();
  s->conn = &conn;
  s->parser = HttpParser(
      HttpParser::Kind::kRequest,
      [this, s](HttpRequest req) {
        ++requests_;
        const HttpResponse resp = handler_(req);
        s->conn->send(resp.serialize());
        const std::string* connection = req.header("Connection");
        if (connection != nullptr && *connection == "close") s->conn->close();
      },
      nullptr);
  conn.on_data = [s](const Bytes& data) { s->parser.feed(data); };
  conns_.push_back(std::move(state));
}

struct HttpClient::FetchState {
  HttpParser parser{HttpParser::Kind::kResponse, nullptr, nullptr};
  FetchTiming timing;
  Callback cb;
  bool done = false;
};

void HttpClient::fetch(Ipv4Addr dst, Port port, const std::string& path,
                       Callback cb,
                       std::vector<std::pair<std::string, std::string>> headers,
                       Bytes body, const std::string& method) {
  auto state = std::make_unique<FetchState>();
  FetchState* s = state.get();
  s->cb = std::move(cb);
  s->timing.started = host_->sim().now();

  TcpConnection& conn = host_->tcp_connect(dst, port);
  HttpRequest req;
  req.method = method;
  req.path = path;
  req.headers = std::move(headers);
  req.body = std::move(body);

  s->parser = HttpParser(
      HttpParser::Kind::kResponse, nullptr, [this, s, &conn](HttpResponse resp) {
        if (s->done) return;
        s->done = true;
        s->timing.completed = host_->sim().now();
        s->timing.ok = resp.status >= 200 && resp.status < 400;
        s->timing.body_bytes = resp.body.size();
        conn.close();
        if (s->cb) s->cb(resp, s->timing);
      });

  conn.on_connected = [this, s, &conn, req = std::move(req)]() {
    s->timing.connected = host_->sim().now();
    conn.send(req.serialize());
  };
  conn.on_data = [this, s](const Bytes& data) {
    if (s->timing.first_byte == 0) s->timing.first_byte = host_->sim().now();
    s->parser.feed(data);
  };
  conn.on_closed = [this, s]() {
    if (s->done) return;
    s->done = true;
    s->timing.completed = host_->sim().now();
    s->timing.ok = false;
    HttpResponse failed;
    failed.status = 0;
    if (s->cb) s->cb(failed, s->timing);
  };
  fetches_.push_back(std::move(state));
}

// Out of line so unique_ptr<ConnState>/unique_ptr<FetchState> destroy with
// the complete types in scope.
HttpClient::HttpClient(Host& host) : host_(&host) {}
HttpServer::~HttpServer() = default;
HttpClient::~HttpClient() = default;

}  // namespace pvn
