// An end host: a Node with an IP address, a UDP port demultiplexer, and a
// TCP-lite stack (see proto/tcp.h). Hosts have a single uplink (port 0) by
// default; multihomed nodes (Fig. 1c scenarios) can retarget the uplink.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "netsim/network.h"
#include "netsim/node.h"
#include "proto/tcp.h"

namespace pvn {

class Host : public Node {
 public:
  using UdpHandler =
      std::function<void(Ipv4Addr src, Port src_port, Port dst_port, const Bytes&)>;
  using AcceptHandler = std::function<void(TcpConnection&)>;

  Host(Network& net, std::string name, Ipv4Addr addr);
  ~Host() override;

  Ipv4Addr addr() const { return addr_; }
  // Re-addresses the host (DHCP refresh after a PVN deployment, §3.1).
  void set_addr(Ipv4Addr addr) { addr_ = addr; }

  // Which port outbound IP traffic leaves through (default 0).
  void set_uplink(int port) { uplink_ = port; }
  int uplink() const { return uplink_; }

  void handle_packet(Packet pkt, int in_port) override;

  // --- raw IP ---
  void send_ip(Ipv4Addr dst, IpProto proto, Bytes l4, std::uint8_t tos = 0);

  // --- tunnel hooks (tunnel/vpn.h DeviceTunnel) ---
  // Applied to every outbound IP packet just before transmission; lets a
  // device-side VPN encapsulate traffic when the network's PVN is down.
  using OutboundTransform = std::function<Packet(Packet)>;
  void set_outbound_transform(OutboundTransform t) {
    outbound_transform_ = std::move(t);
  }
  // Invoked for inbound ESP addressed to this host. A returned packet (the
  // decapsulated inner datagram) re-enters the receive path.
  using EspHandler = std::function<std::optional<Packet>(const Packet&)>;
  void set_esp_handler(EspHandler h) { esp_handler_ = std::move(h); }

  // --- UDP ---
  void bind_udp(Port port, UdpHandler handler);
  void unbind_udp(Port port);
  void send_udp(Ipv4Addr dst, Port src_port, Port dst_port, Bytes payload,
                std::uint8_t tos = 0);

  // --- TCP ---
  // Initiates a connection; returns a reference owned by this Host. The
  // reference stays valid until gc_closed() is called after it closes.
  TcpConnection& tcp_connect(Ipv4Addr dst, Port dst_port, TcpConfig cfg = {});
  // Accepts connections on `port`; the handler runs at SYN time so the app
  // can install callbacks before the handshake completes.
  void tcp_listen(Port port, AcceptHandler handler, TcpConfig cfg = {});
  void tcp_unlisten(Port port);

  // Frees connections that have fully closed. Invalidates their references.
  std::size_t gc_closed();

  std::uint64_t not_for_me_drops() const { return not_for_me_; }
  std::uint64_t rsts_sent() const { return rsts_sent_; }

  // Hook invoked for every packet this host receives that is not addressed
  // to it (used by gateway-ish subclasses); default drops.
  virtual void handle_foreign_packet(Packet pkt, int in_port);

 private:
  friend class TcpConnection;

  using ConnKey = std::tuple<Port, std::uint32_t, Port>;  // lport, raddr, rport

  Port alloc_ephemeral_port();
  void on_tcp(const IpHeader& ip, const Bytes& l4);
  void on_udp(const IpHeader& ip, const Bytes& l4);
  void send_rst(const IpHeader& ip, const TcpHeader& hdr);

  Ipv4Addr addr_;
  int uplink_ = 0;
  OutboundTransform outbound_transform_;
  EspHandler esp_handler_;
  Port next_ephemeral_ = 49152;
  std::map<Port, UdpHandler> udp_handlers_;
  struct Listener {
    AcceptHandler handler;
    TcpConfig cfg;
  };
  std::map<Port, Listener> listeners_;
  std::map<ConnKey, std::unique_ptr<TcpConnection>> conns_;
  std::uint64_t not_for_me_ = 0;
  std::uint64_t rsts_sent_ = 0;
};

}  // namespace pvn
