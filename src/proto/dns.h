// DNS-lite: name resolution with optionally-signed (DNSSEC-like) records,
// forgeable resolvers, and a stub resolver that supports the PVN DNS
// Validation module's two defences (paper §4 "DNS Validation"):
//   * signature validation against trusted zone keys, and
//   * multi-resolver quorum for unsigned names.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "proto/host.h"
#include "util/digest.h"

namespace pvn {

constexpr Port kDnsPort = 53;

struct DnsRecord {
  std::string name;
  Ipv4Addr addr;
  std::uint32_t ttl_seconds = 300;
  bool signed_record = false;
  Signature signature;  // by the zone key over canonical_bytes()

  Bytes canonical_bytes() const;
  void encode(ByteWriter& w) const;
  static DnsRecord decode(ByteReader& r);
  bool operator==(const DnsRecord&) const = default;
};

struct DnsMessage {
  std::uint16_t id = 0;
  bool response = false;
  bool nxdomain = false;
  std::string question;
  std::vector<DnsRecord> answers;

  Bytes encode() const;
  static std::optional<DnsMessage> decode(const Bytes& raw);
  bool operator==(const DnsMessage&) const = default;
};

// An authoritative/recursive resolver bound to UDP port 53 of a Host.
// A dishonest resolver (on-path ISP, §2.1) can be configured to forge
// specific names.
class DnsServer {
 public:
  // If `zone_key` is non-null, records are signed at insertion (DNSSEC-lite).
  explicit DnsServer(Host& host, const KeyPair* zone_key = nullptr);

  // Records are signed when the server has a zone key, unless `sign` is
  // false (models names outside the signed zone).
  void add_record(const std::string& name, Ipv4Addr addr,
                  std::uint32_t ttl_seconds = 300, bool sign = true);
  // Forged answers are returned *unsigned* even when a zone key exists —
  // the forger does not hold the zone's private key.
  void forge(const std::string& name, Ipv4Addr addr);
  void clear_forgeries() { forged_.clear(); }

  std::uint64_t queries_served() const { return queries_; }

 private:
  void on_query(Ipv4Addr src, Port sport, const Bytes& payload);

  Host* host_;
  const KeyPair* zone_key_;
  std::map<std::string, DnsRecord> records_;
  std::map<std::string, Ipv4Addr> forged_;
  std::uint64_t queries_ = 0;
};

// Result of a stub resolution.
struct DnsResult {
  enum class Status {
    kOk,
    kNxDomain,
    kTimeout,
    kBogus,       // signature check failed on a record claiming to be signed
    kNoQuorum,    // multi-resolver answers disagreed beyond the threshold
  };
  Status status = Status::kTimeout;
  Ipv4Addr addr;
  bool authenticated = false;  // true if signature-validated
};

// A stub resolver running on a Host. Queries one or more upstream resolvers;
// validates signatures against `trusted_zone_keys` when provided.
class StubResolver {
 public:
  StubResolver(Host& host, std::vector<Ipv4Addr> resolvers,
               const KeyRegistry* trusted_zone_keys = nullptr,
               PublicKey zone_key_id = {});

  using Callback = std::function<void(const DnsResult&)>;

  // Resolves `name`. With `quorum` > 1, that many resolvers are queried in
  // parallel and the majority answer wins; disagreement -> kNoQuorum.
  void resolve(const std::string& name, Callback cb, int quorum = 1,
               SimDuration timeout = seconds(2));

  std::uint64_t queries_sent() const { return queries_sent_; }

 private:
  struct Pending {
    std::string name;
    Callback cb;
    int expected = 1;
    std::vector<DnsMessage> answers;
    EventId timeout_event = kInvalidEventId;
  };

  void on_response(const Bytes& payload);
  void finish(std::uint16_t id, Pending& p);
  DnsResult judge(const Pending& p) const;

  Host* host_;
  std::vector<Ipv4Addr> resolvers_;
  const KeyRegistry* trusted_;
  PublicKey zone_key_id_;
  Port local_port_ = 5353;
  std::uint16_t next_id_ = 1;
  std::map<std::uint16_t, Pending> pending_;
  std::uint64_t queries_sent_ = 0;
};

}  // namespace pvn
