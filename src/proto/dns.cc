#include "proto/dns.h"

#include <algorithm>

namespace pvn {

Bytes DnsRecord::canonical_bytes() const {
  ByteWriter w;
  w.str(name);
  w.u32(addr.v);
  w.u32(ttl_seconds);
  return std::move(w).take();
}

void DnsRecord::encode(ByteWriter& w) const {
  w.str(name);
  w.u32(addr.v);
  w.u32(ttl_seconds);
  w.u8(signed_record ? 1 : 0);
  if (signed_record) {
    w.blob(signature.mac.to_bytes());
    w.u64(signature.signer);
  }
}

DnsRecord DnsRecord::decode(ByteReader& r) {
  DnsRecord rec;
  rec.name = r.str();
  rec.addr = Ipv4Addr(r.u32());
  rec.ttl_seconds = r.u32();
  rec.signed_record = r.u8() != 0;
  if (rec.signed_record) {
    const auto mac = Digest::from_bytes(r.blob());
    rec.signature.mac = mac.value_or(Digest{});
    rec.signature.signer = r.u64();
  }
  return rec;
}

Bytes DnsMessage::encode() const {
  ByteWriter w;
  w.u16(id);
  w.u8(response ? 1 : 0);
  w.u8(nxdomain ? 1 : 0);
  w.str(question);
  w.u16(static_cast<std::uint16_t>(answers.size()));
  for (const DnsRecord& rec : answers) rec.encode(w);
  return std::move(w).take();
}

std::optional<DnsMessage> DnsMessage::decode(const Bytes& raw) {
  ByteReader r(raw);
  DnsMessage m;
  m.id = r.u16();
  m.response = r.u8() != 0;
  m.nxdomain = r.u8() != 0;
  m.question = r.str();
  const std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n; ++i) m.answers.push_back(DnsRecord::decode(r));
  if (!r.ok()) return std::nullopt;
  return m;
}

DnsServer::DnsServer(Host& host, const KeyPair* zone_key)
    : host_(&host), zone_key_(zone_key) {
  host_->bind_udp(kDnsPort, [this](Ipv4Addr src, Port sport, Port,
                                   const Bytes& payload) {
    on_query(src, sport, payload);
  });
}

void DnsServer::add_record(const std::string& name, Ipv4Addr addr,
                           std::uint32_t ttl_seconds, bool sign) {
  DnsRecord rec;
  rec.name = name;
  rec.addr = addr;
  rec.ttl_seconds = ttl_seconds;
  if (sign && zone_key_ != nullptr) {
    rec.signed_record = true;
    rec.signature = zone_key_->sign(rec.canonical_bytes());
  }
  records_[name] = rec;
}

void DnsServer::forge(const std::string& name, Ipv4Addr addr) {
  forged_[name] = addr;
}

void DnsServer::on_query(Ipv4Addr src, Port sport, const Bytes& payload) {
  const auto query = DnsMessage::decode(payload);
  if (!query || query->response) return;
  ++queries_;

  DnsMessage reply;
  reply.id = query->id;
  reply.response = true;
  reply.question = query->question;

  if (const auto fit = forged_.find(query->question); fit != forged_.end()) {
    DnsRecord rec;
    rec.name = query->question;
    rec.addr = fit->second;
    reply.answers.push_back(rec);  // forgeries cannot carry valid signatures
  } else if (const auto it = records_.find(query->question);
             it != records_.end()) {
    reply.answers.push_back(it->second);
  } else {
    reply.nxdomain = true;
  }
  host_->send_udp(src, kDnsPort, sport, reply.encode());
}

StubResolver::StubResolver(Host& host, std::vector<Ipv4Addr> resolvers,
                           const KeyRegistry* trusted_zone_keys,
                           PublicKey zone_key_id)
    : host_(&host),
      resolvers_(std::move(resolvers)),
      trusted_(trusted_zone_keys),
      zone_key_id_(zone_key_id) {
  host_->bind_udp(local_port_, [this](Ipv4Addr, Port, Port,
                                      const Bytes& payload) {
    on_response(payload);
  });
}

void StubResolver::resolve(const std::string& name, Callback cb, int quorum,
                           SimDuration timeout) {
  const std::uint16_t id = next_id_++;
  Pending& p = pending_[id];
  p.name = name;
  p.cb = std::move(cb);
  p.expected = std::min<int>(quorum, static_cast<int>(resolvers_.size()));
  if (p.expected < 1) p.expected = 1;

  DnsMessage query;
  query.id = id;
  query.question = name;
  const Bytes wire = query.encode();
  for (int i = 0; i < p.expected && i < static_cast<int>(resolvers_.size());
       ++i) {
    host_->send_udp(resolvers_[static_cast<std::size_t>(i)], local_port_,
                    kDnsPort, wire);
    ++queries_sent_;
  }
  p.timeout_event = host_->sim().schedule_after(timeout, SimCategory::kProto, [this, id] {
    const auto it = pending_.find(id);
    if (it == pending_.end()) return;
    it->second.timeout_event = kInvalidEventId;
    finish(id, it->second);
  });
}

void StubResolver::on_response(const Bytes& payload) {
  const auto msg = DnsMessage::decode(payload);
  if (!msg || !msg->response) return;
  const auto it = pending_.find(msg->id);
  if (it == pending_.end()) return;
  Pending& p = it->second;
  if (msg->question != p.name) return;
  p.answers.push_back(*msg);
  if (static_cast<int>(p.answers.size()) >= p.expected) finish(msg->id, p);
}

DnsResult StubResolver::judge(const Pending& p) const {
  DnsResult result;
  if (p.answers.empty()) {
    result.status = DnsResult::Status::kTimeout;
    return result;
  }

  // Signature validation first: one authenticated answer settles it.
  for (const DnsMessage& m : p.answers) {
    for (const DnsRecord& rec : m.answers) {
      if (!rec.signed_record) continue;
      if (trusted_ != nullptr &&
          trusted_->verify(zone_key_id_, rec.canonical_bytes(),
                           rec.signature)) {
        result.status = DnsResult::Status::kOk;
        result.addr = rec.addr;
        result.authenticated = true;
        return result;
      }
      if (trusted_ != nullptr) {
        // Claimed to be signed but failed validation.
        result.status = DnsResult::Status::kBogus;
        return result;
      }
    }
  }

  // Quorum over unsigned answers: majority address wins.
  std::map<std::uint32_t, int> votes;
  int nx = 0;
  for (const DnsMessage& m : p.answers) {
    if (m.nxdomain || m.answers.empty()) {
      ++nx;
      continue;
    }
    ++votes[m.answers.front().addr.v];
  }
  const int total = static_cast<int>(p.answers.size());
  if (nx * 2 > total) {
    result.status = DnsResult::Status::kNxDomain;
    return result;
  }
  for (const auto& [addr, count] : votes) {
    if (count * 2 > total) {
      result.status = DnsResult::Status::kOk;
      result.addr = Ipv4Addr(addr);
      return result;
    }
  }
  if (total == 1 && !votes.empty()) {
    result.status = DnsResult::Status::kOk;
    result.addr = Ipv4Addr(votes.begin()->first);
    return result;
  }
  result.status = DnsResult::Status::kNoQuorum;
  return result;
}

void StubResolver::finish(std::uint16_t id, Pending& p) {
  if (p.timeout_event != kInvalidEventId) {
    host_->sim().cancel(p.timeout_event);
  }
  const DnsResult result = judge(p);
  Callback cb = std::move(p.cb);
  pending_.erase(id);
  if (cb) cb(result);
}

}  // namespace pvn
