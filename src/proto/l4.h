// Transport-layer header codecs. A Packet's `l4` buffer is one of:
//   TcpHeader + payload        (ip.proto == kTcp)
//   UdpHeader + payload        (ip.proto == kUdp)
//   EspHeader + inner packet   (ip.proto == kEsp, see src/tunnel)
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "util/bytes.h"

namespace pvn {

using Port = std::uint16_t;

// TCP flag bits.
constexpr std::uint8_t kTcpSyn = 0x01;
constexpr std::uint8_t kTcpAck = 0x02;
constexpr std::uint8_t kTcpFin = 0x04;
constexpr std::uint8_t kTcpRst = 0x08;

struct TcpHeader {
  Port src_port = 0;
  Port dst_port = 0;
  std::uint32_t seq = 0;
  std::uint32_t ack = 0;
  std::uint8_t flags = 0;
  std::uint32_t window = 0;
  // SACK option: up to 3 [begin, end) ranges the receiver holds above the
  // cumulative ACK. Modern loss recovery is impossible without this under
  // the bursty multi-loss patterns DropTail overflow produces.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sacks;

  static constexpr std::size_t kWireSize = 20;  // base header, sans options
  static constexpr std::size_t kMaxSackRanges = 3;

  bool syn() const { return flags & kTcpSyn; }
  bool ack_flag() const { return flags & kTcpAck; }
  bool fin() const { return flags & kTcpFin; }
  bool rst() const { return flags & kTcpRst; }

  void encode(ByteWriter& w) const;
  static TcpHeader decode(ByteReader& r);
  bool operator==(const TcpHeader&) const = default;
};

struct UdpHeader {
  Port src_port = 0;
  Port dst_port = 0;

  static constexpr std::size_t kWireSize = 8;

  void encode(ByteWriter& w) const;
  static UdpHeader decode(ByteReader& r);
  bool operator==(const UdpHeader&) const = default;
};

// Parsed view of an L4 buffer: header + remaining payload.
struct TcpSegment {
  TcpHeader hdr;
  Bytes payload;
};
struct UdpDatagram {
  UdpHeader hdr;
  Bytes payload;
};

// Returns nullopt on truncated input.
std::optional<TcpSegment> parse_tcp(const Bytes& l4);
std::optional<UdpDatagram> parse_udp(const Bytes& l4);

Bytes serialize_tcp(const TcpHeader& hdr, const Bytes& payload);
Bytes serialize_udp(const UdpHeader& hdr, const Bytes& payload);

// Best-effort extraction of (src,dst) ports from an L4 buffer of the given
// protocol; used by the SDN match engine. Returns false for non-port protos.
bool peek_ports(std::uint8_t ip_proto, const Bytes& l4, Port& src, Port& dst);

}  // namespace pvn
