// TCP-lite: a reliable byte-stream transport with Reno congestion control.
//
// Implements the subset of TCP the paper's experiments depend on:
//   * three-way handshake, FIN teardown, RST on unexpected segments
//   * cumulative ACKs, out-of-order reassembly, exactly-once in-order delivery
//   * retransmission timeout with Karn/RFC6298-style SRTT/RTTVAR estimation
//   * Reno congestion control: slow start, congestion avoidance, fast
//     retransmit on 3 duplicate ACKs, fast recovery (simplified NewReno)
//   * receiver flow control via the advertised window
//
// The split-TCP experiment (DESIGN.md E6) is *the* reason this exists: the
// crossover between direct and proxied connections emerges from cwnd growth
// vs RTT and loss-recovery time, so those mechanisms are modelled carefully;
// everything else (urgent data, window scaling, SACK, timestamps) is out of
// scope.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "netsim/packet.h"
#include "proto/l4.h"
#include "util/sim.h"

namespace pvn {

class Host;

struct TcpStats {
  std::uint64_t bytes_sent = 0;        // app bytes handed to send()
  std::uint64_t bytes_delivered = 0;   // app bytes delivered in order
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_retransmits = 0;
  SimDuration srtt = 0;                // smoothed RTT estimate
  double cwnd_segments = 0;            // current congestion window
};

struct TcpConfig {
  std::uint32_t mss = 1400;                   // payload bytes per segment
  std::uint32_t initial_cwnd_segments = 10;   // RFC 6928 IW10
  std::uint32_t recv_window_bytes = 4 << 20;
  SimDuration min_rto = milliseconds(200);
  SimDuration initial_rto = seconds(1);
  std::uint64_t max_send_buffer = 64 << 20;
  // Ablation knob: when false the receiver advertises no SACK ranges, so
  // the sender falls back to head-of-line (NewReno-ish) recovery. Used by
  // bench_a1_tcp_ablation to show why SACK is load-bearing for E6.
  bool enable_sack = true;
};

// One end of a TCP connection. Created via Host::tcp_connect or delivered to
// a listener's accept callback. Lifetime is managed by the owning Host; the
// connection stays alive until closed and drained.
class TcpConnection {
 public:
  enum class State {
    kSynSent,
    kSynRcvd,
    kEstablished,
    kFinWait,     // we sent FIN, waiting for its ACK (and possibly peer FIN)
    kCloseWait,   // peer sent FIN, app may still send
    kLastAck,     // peer FIN'd, we sent FIN, waiting for final ACK
    kClosed,
  };

  // Application callbacks. on_data receives in-order stream bytes.
  std::function<void()> on_connected;
  std::function<void(const Bytes&)> on_data;
  std::function<void()> on_eof;     // peer sent FIN; stream ended (half-close)
  std::function<void()> on_closed;  // fully closed (or reset)

  State state() const { return state_; }
  bool established() const { return state_ == State::kEstablished; }
  // Current simulation time (convenience for protocol layers above).
  SimTime now() const;
  const TcpStats& stats() const { return stats_; }
  Ipv4Addr remote_addr() const { return remote_addr_; }
  Port remote_port() const { return remote_port_; }
  Port local_port() const { return local_port_; }

  // Appends bytes to the send buffer. Returns false (and accepts nothing)
  // if the buffer is full or the connection cannot send.
  bool send(const Bytes& data);

  // Graceful close: FIN is emitted once the send buffer drains.
  void close();

  // Abortive close: emits RST and tears down immediately.
  void abort();

  std::uint64_t unsent_bytes() const { return send_buf_.size(); }

 private:
  friend class Host;

  TcpConnection(Host& host, Ipv4Addr remote_addr, Port remote_port,
                Port local_port, TcpConfig cfg);

  void start_connect();
  void start_accept(const TcpHeader& syn);
  void on_segment(const IpHeader& ip, const TcpSegment& seg);
  void try_send();
  void send_segment(std::uint8_t flags, std::uint32_t seq, const Bytes& payload,
                    bool count_retransmit);
  void send_ack();
  void arm_rto();
  void cancel_rto();
  void on_rto();
  void handle_ack(const TcpHeader& hdr);
  void apply_sacks(const TcpHeader& hdr);
  // RFC 6675-style recovery: retransmit holes / send new data while the
  // estimated amount of data in the pipe is below cwnd.
  void recovery_send();
  std::uint64_t estimate_pipe() const;
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sack_ranges() const;
  void deliver_in_order();
  void update_rtt(SimDuration sample);
  void enter_closed();
  void maybe_send_fin();
  std::uint32_t flight_size() const { return snd_nxt_ - snd_una_; }
  std::uint32_t effective_window() const;

  Host* host_;
  TcpConfig cfg_;
  State state_ = State::kClosed;
  Ipv4Addr remote_addr_;
  Port remote_port_ = 0;
  Port local_port_ = 0;

  // Send side. Sequence numbers count stream bytes; ISS = 0 for clarity
  // (simulation does not need randomized ISNs).
  std::uint32_t snd_una_ = 0;  // oldest unacknowledged
  std::uint32_t snd_nxt_ = 0;  // next to send
  std::uint32_t iss_ = 0;
  std::deque<std::uint8_t> send_buf_;   // bytes not yet sent
  std::map<std::uint32_t, Bytes> inflight_;  // seq -> payload (for retransmit)
  bool fin_pending_ = false;   // app called close()
  bool fin_sent_ = false;
  std::uint32_t fin_seq_ = 0;

  // Receive side.
  std::uint32_t rcv_nxt_ = 0;
  std::map<std::uint32_t, Bytes> reorder_;
  std::uint64_t reorder_bytes_ = 0;
  bool peer_fin_seen_ = false;
  std::uint32_t peer_fin_seq_ = 0;

  // Congestion control (Reno + SACK-based recovery), in bytes.
  double cwnd_ = 0;
  double ssthresh_ = 0;
  std::uint32_t dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint32_t recovery_end_ = 0;
  std::uint32_t peer_window_ = 65535;
  std::set<std::uint32_t> sacked_;  // inflight segment starts seen in SACKs
  // Holes retransmitted this episode -> when. A hole may be resent again if
  // its last retransmission is older than ~1 RTT (it was probably dropped).
  std::map<std::uint32_t, SimTime> rtx_times_;

  // RTO machinery.
  SimDuration srtt_ = 0;
  SimDuration rttvar_ = 0;
  SimDuration rto_;
  EventId rto_event_ = kInvalidEventId;
  // Single timed segment for RTT estimation (classic Karn: invalidated on
  // any retransmission, so samples are never biased by recovery stalls).
  bool timed_valid_ = false;
  std::uint32_t timed_seq_ = 0;
  SimTime timed_sent_at_ = 0;
  int syn_retries_ = 0;
  int consecutive_timeouts_ = 0;

  TcpStats stats_;
};

}  // namespace pvn
