// Telemetry cross-checks for the auditing layer.
//
// Path proofs (audit/path_proof.h) let a device prove its packets traversed
// the deployed chain; the telemetry layer gives the network's own account of
// the same events. TelemetryAuditor reconciles the two: a dishonest ISP that
// skips or bypasses a chain (pvn/server.h cheat_skip_module, the paper's
// §3.3 validation scenario) produces a chain traversal count below the
// number of proofs the device holds, and internal dataplane accounting
// identities stop adding up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace pvn {

struct TelemetryFinding {
  std::string check;   // short id, e.g. "chain-undercount"
  std::string detail;  // human-readable explanation
};

class TelemetryAuditor {
 public:
  // Cross-checks a device's verified path-proof count for `chain_id`
  // against the dataplane's own account (`mbox.chain.packets`): the chain
  // cannot have processed fewer packets than the device holds valid proofs
  // for. Empty result = consistent.
  std::vector<TelemetryFinding> check_chain_traversals(
      const telemetry::MetricsSnapshot& snap, const std::string& chain_id,
      std::uint64_t verified_proofs) const;

  // Internal consistency identities across layers:
  //   * every switch ingress packet arrived over some link, so
  //     sum(netsim.link.delivered_packets) >= sum(sdn.switch.packets_in);
  //   * the aggregate meter drop count never exceeds the per-switch
  //     dropped_meter total (the switch also counts missing-meter drops);
  //   * flow-table hits + misses >= switch ingress (every ingress packet
  //     performs at least one table lookup unless default-forwarded).
  std::vector<TelemetryFinding> check_dataplane_consistency(
      const telemetry::MetricsSnapshot& snap) const;
};

}  // namespace pvn
