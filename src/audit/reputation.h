// Provider reputation (paper §3.1: violations "inform reputations for PVN
// providers"; §3.3: "face loss of revenue from blacklisting").
//
// Two generations coexist here:
//   - ReputationSystem: the original time-free score used by the auditor
//     (bench_e13, audit_demo) for offline blacklisting decisions.
//   - HostScoreboard: the adversarial-hardening layer's online reputation —
//     typed misbehavior reports with per-class severities, exponential
//     decay-based rehabilitation, and hysteresis quarantine so a host
//     hovering at the threshold does not flap in and out of selection.
//     PvnClients consult it during discovery to exclude quarantined hosts,
//     and the DeploymentServer feeds it on Byzantine-standby demotion.
// CircuitBreaker is the companion per-target breaker: reputation decides
// *whom to trust*, the breaker decides *when to stop hammering* a host that
// is currently failing, trusted or not.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "audit/measurements.h"
#include "telemetry/metrics.h"
#include "util/time.h"

namespace pvn {

class ReputationSystem {
 public:
  explicit ReputationSystem(double blacklist_threshold = 0.3)
      : threshold_(blacklist_threshold) {}

  // Score in [0,1]; unknown providers start at 1.0 ("trust but verify").
  double score(const std::string& provider) const;

  // Each verified violation multiplies the score by (1 - weight).
  void report_violation(const std::string& provider, double weight = 0.25);
  // Successful audits slowly rebuild trust.
  void report_clean_audit(const std::string& provider, double recovery = 0.02);

  bool blacklisted(const std::string& provider) const {
    return score(provider) < threshold_;
  }

  // Among candidates, the best non-blacklisted provider (highest score), or
  // empty if all are blacklisted — the "take their business to competing
  // PVN-supporting providers" decision.
  std::string pick_provider(const std::vector<std::string>& candidates) const;

 private:
  double threshold_;
  std::map<std::string, double> scores_;
};

// --- adversarial-hardening reputation (typed, decaying, hysteretic) --------

// What a host was observed doing wrong. Severity differs per class: a
// corrupt checkpoint is proof of misbehavior, a deploy timeout is weak
// circumstantial evidence (the host may just be overloaded).
enum class Misbehavior : std::uint8_t {
  kBogusOffer = 0,        // offer failed vet_offer sanity bounds
  kCorruptCheckpoint,     // digest cross-check failed / corrupt transfer
  kReplayedCheckpoint,    // stale seq replayed
  kNakFlood,              // sustained kBusy NAKs with no progress
  kCapacityLie,           // advertised capacity it demonstrably lacks
  kAuditFailure,          // auditor-verified violation (measurements.h)
  kDeployTimeout,         // acked nothing until the deadline
};
constexpr std::size_t kMisbehaviorCount =
    static_cast<std::size_t>(Misbehavior::kDeployTimeout) + 1;
const char* to_string(Misbehavior m);
// Score multiplier weight per class, in (0, 1].
double misbehavior_weight(Misbehavior m);

struct HostScoreboardConfig {
  // Hysteresis: enter quarantine when the score falls below the low-water
  // mark, leave only after rehabilitation lifts it above the high-water
  // mark. A single threshold would flap selection on every small change.
  double quarantine_enter = 0.35;
  double quarantine_exit = 0.65;
  // Decay-based rehabilitation: accumulated distrust (1 - score) halves
  // every half-life of quiet operation, so a quarantined host that stops
  // misbehaving eventually re-enters the candidate pool.
  SimDuration rehab_half_life = seconds(60);
  // Additional linear recovery per reported success (clean deploy/audit).
  double success_recovery = 0.02;
};

// Shared, simulation-time-aware reputation over untrusted hosts, keyed by
// an opaque host id (this repo uses the server's Ipv4Addr string). Scores
// live in [0,1]; unknown hosts start at 1.0 ("trust but verify").
class HostScoreboard {
 public:
  explicit HostScoreboard(HostScoreboardConfig cfg = {});

  double score(const std::string& host, SimTime now) const;
  void report(const std::string& host, Misbehavior what, SimTime now);
  void report_success(const std::string& host, SimTime now);

  // Hysteretic quarantine decision; updates the host's latched state.
  bool quarantined(const std::string& host, SimTime now);

  std::uint64_t violations() const { return violations_; }
  std::uint64_t violations(Misbehavior m) const {
    return by_class_[static_cast<std::size_t>(m)];
  }
  std::uint64_t quarantine_enters() const { return enters_; }
  std::uint64_t quarantine_exits() const { return exits_; }

 private:
  struct Entry {
    double distrust = 0.0;  // 1 - score, before lazy decay
    SimTime updated = 0;
    bool quarantined = false;
  };
  // Applies rehabilitation decay since the last touch.
  double decayed_distrust(const Entry& e, SimTime now) const;
  Entry& touch(const std::string& host, SimTime now);
  // Hysteresis: latch below the entry mark, unlatch above the exit mark.
  // Run on every report as well as every query — a score can dip through
  // the quarantine window and decay back out between two queries.
  void update_latch(Entry& e, const std::string& host, double score);

  HostScoreboardConfig cfg_;
  std::map<std::string, Entry> entries_;
  std::uint64_t violations_ = 0;
  std::uint64_t by_class_[kMisbehaviorCount] = {};
  std::uint64_t enters_ = 0;
  std::uint64_t exits_ = 0;
  telemetry::Counter* m_violations_[kMisbehaviorCount] = {};
  telemetry::Counter* m_quarantine_enters_ = nullptr;
  telemetry::Counter* m_quarantine_exits_ = nullptr;
};

// --- circuit breaker -------------------------------------------------------

enum class BreakerState : std::uint8_t { kClosed, kOpen, kHalfOpen };
const char* to_string(BreakerState s);

struct CircuitBreakerConfig {
  // Consecutive failures before the breaker opens. <= 0 disables tripping
  // entirely (allow() is always true).
  int failure_threshold = 3;
  // How long an open breaker rejects attempts before letting one probe
  // through (half-open).
  SimDuration open_for = seconds(10);
};

// Per-target failure breaker: after `failure_threshold` consecutive
// failures the target is not attempted again until `open_for` elapses;
// then a single half-open probe decides between closing and re-opening.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig cfg = {}) : cfg_(cfg) {}

  // True when an attempt may proceed. An open breaker whose cool-down has
  // elapsed transitions to half-open and admits exactly this attempt.
  bool allow(SimTime now);
  void record_failure(SimTime now);
  void record_success();

  BreakerState state() const { return state_; }
  std::uint64_t transitions() const { return transitions_; }
  std::uint64_t rejected() const { return rejected_; }

 private:
  void set_state(BreakerState s);

  CircuitBreakerConfig cfg_;
  BreakerState state_ = BreakerState::kClosed;
  int consecutive_failures_ = 0;
  SimTime open_until_ = 0;
  std::uint64_t transitions_ = 0;
  std::uint64_t rejected_ = 0;
};

}  // namespace pvn
