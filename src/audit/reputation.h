// Provider reputation (paper §3.1: violations "inform reputations for PVN
// providers"; §3.3: "face loss of revenue from blacklisting").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "audit/measurements.h"

namespace pvn {

class ReputationSystem {
 public:
  explicit ReputationSystem(double blacklist_threshold = 0.3)
      : threshold_(blacklist_threshold) {}

  // Score in [0,1]; unknown providers start at 1.0 ("trust but verify").
  double score(const std::string& provider) const;

  // Each verified violation multiplies the score by (1 - weight).
  void report_violation(const std::string& provider, double weight = 0.25);
  // Successful audits slowly rebuild trust.
  void report_clean_audit(const std::string& provider, double recovery = 0.02);

  bool blacklisted(const std::string& provider) const {
    return score(provider) < threshold_;
  }

  // Among candidates, the best non-blacklisted provider (highest score), or
  // empty if all are blacklisted — the "take their business to competing
  // PVN-supporting providers" decision.
  std::string pick_provider(const std::vector<std::string>& candidates) const;

 private:
  double threshold_;
  std::map<std::string, double> scores_;
};

}  // namespace pvn
