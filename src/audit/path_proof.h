// Path proofs (paper §3.1: "the device will need to obtain proofs that
// packets sent to the PVN were actually routed correctly through the PVN").
//
// Each PVN element on the intended path holds a per-deployment key and
// appends HMAC(key_i, packet_digest || previous_mac) to a proof chain the
// device can verify end-to-end: a valid chain proves the packet visited
// every element, in order.
#pragma once

#include <vector>

#include "util/digest.h"

namespace pvn {

struct PathProof {
  Digest packet_digest;
  std::vector<Digest> macs;  // one per hop, in path order
};

// Hop side: extends the proof with this hop's MAC.
void extend_proof(PathProof& proof, const Bytes& hop_key);

// Device side: recomputes the chain with all hop keys (in expected order).
// Returns true iff every hop MAC matches — i.e. the packet traversed every
// element in order, with no skips, reorderings, or substitutions.
bool verify_proof(const PathProof& proof, const Digest& packet_digest,
                  const std::vector<Bytes>& hop_keys);

}  // namespace pvn
