#include "audit/attestation.h"

namespace pvn {

Bytes AttestationQuote::signed_bytes() const {
  ByteWriter w;
  w.u64(nonce);
  w.raw(config_digest.to_bytes());
  w.i64(issued_at);
  return std::move(w).take();
}

Digest config_digest(const std::vector<std::string>& chain_modules,
                     const std::vector<std::string>& rule_render) {
  ByteWriter w;
  w.str("pvn-config-v1");
  w.u32(static_cast<std::uint32_t>(chain_modules.size()));
  for (const std::string& m : chain_modules) w.str(m);
  w.u32(static_cast<std::uint32_t>(rule_render.size()));
  for (const std::string& r : rule_render) w.str(r);
  return digest_of(w.bytes());
}

AttestationQuote Attester::quote(std::uint64_t nonce, const Digest& digest,
                                 SimTime now) const {
  AttestationQuote q;
  q.nonce = nonce;
  q.config_digest = digest;
  q.issued_at = now;
  q.signature = key_.sign(q.signed_bytes());
  return q;
}

const char* to_string(AttestationVerdict verdict) {
  switch (verdict) {
    case AttestationVerdict::kOk: return "ok";
    case AttestationVerdict::kUnknownKey: return "unknown-key";
    case AttestationVerdict::kBadSignature: return "bad-signature";
    case AttestationVerdict::kWrongNonce: return "wrong-nonce";
    case AttestationVerdict::kConfigMismatch: return "config-mismatch";
  }
  return "?";
}

AttestationVerdict verify_quote(const AttestationQuote& quote,
                                const KeyRegistry& trusted,
                                const PublicKey& enclave_key,
                                std::uint64_t expected_nonce,
                                const Digest& expected_config) {
  if (!trusted.trusts(enclave_key)) return AttestationVerdict::kUnknownKey;
  if (!trusted.verify(enclave_key, quote.signed_bytes(), quote.signature)) {
    return AttestationVerdict::kBadSignature;
  }
  if (quote.nonce != expected_nonce) return AttestationVerdict::kWrongNonce;
  if (!(quote.config_digest == expected_config)) {
    return AttestationVerdict::kConfigMismatch;
  }
  return AttestationVerdict::kOk;
}

}  // namespace pvn
