// Active-measurement auditing (paper §3.1/§3.3): "limited active
// measurements to audit ISPs and check for violations of PVN policies" —
// tests for service differentiation (Glasnost/BingeOn-style record-replay),
// content modification, TLS interception, and path inflation.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "proto/host.h"
#include "util/digest.h"

namespace pvn {

struct Violation {
  SimTime at = 0;
  std::string provider;
  std::string kind;    // "differentiation", "content-modification", ...
  std::string detail;
};

// --- Rate probe (differentiation detection) ---------------------------------

// Sends a constant-rate UDP stream with a given DSCP marking and measures
// goodput at a cooperating sink. Comparing marked vs control goodput
// reveals class-based shaping (the record/replay idea of Glasnost [9] and
// the BingeOn study [18]).
class RateProbe {
 public:
  RateProbe(Host& sender, Host& sink, Port sink_port);

  struct Result {
    double offered_mbps = 0;
    double achieved_mbps = 0;
    int packets_sent = 0;
    int packets_received = 0;
  };
  using Callback = std::function<void(const Result&)>;

  // Streams for `duration` at `rate` with payloads that look like `kind`
  // ("video" payloads carry a video content marker so DPI classifies them).
  void run(Rate rate, SimDuration duration, std::uint8_t tos,
           const std::string& payload_marker, Callback done);

 private:
  Host* sender_;
  Host* sink_;
  Port sink_port_;
  Port src_port_ = 40000;
  int received_ = 0;
  std::uint64_t received_bytes_ = 0;
};

// Verdict: shaped iff the marked stream achieved < `threshold` of control.
struct DifferentiationVerdict {
  bool differentiated = false;
  double ratio = 1.0;  // marked / control goodput
};
DifferentiationVerdict judge_differentiation(double control_mbps,
                                             double marked_mbps,
                                             double threshold = 0.8);

// --- Content modification ----------------------------------------------------

// Fetches a URL whose content digest the device knows out-of-band (e.g.
// pinned from a trusted network) and compares.
class ContentCheck {
 public:
  explicit ContentCheck(Host& client);

  using Callback = std::function<void(bool modified, Digest got)>;
  void run(Ipv4Addr server, Port port, const std::string& path,
           const Digest& expected, Callback done);

 private:
  Host* client_;
  std::unique_ptr<class HttpClient> http_;
};

// --- Path inflation -----------------------------------------------------------

// Compares measured RTT against a baseline (e.g. the RTT promised in the
// PVN offer, or measured on a trusted network). Inflated iff measured >
// baseline * tolerance.
struct PathInflationVerdict {
  bool inflated = false;
  SimDuration measured = 0;
  SimDuration baseline = 0;
};
PathInflationVerdict judge_path_inflation(SimDuration measured,
                                          SimDuration baseline,
                                          double tolerance = 1.5);

// --- TLS interception ----------------------------------------------------------

// The device pins the server's real key id (obtained via a trusted channel)
// and compares against what the network presented.
bool tls_intercepted(const PublicKey& pinned_server_key,
                     const PublicKey& presented_key);

// --- Violation log --------------------------------------------------------------

class ViolationLog {
 public:
  void record(Violation v) { violations_.push_back(std::move(v)); }
  const std::vector<Violation>& all() const { return violations_; }
  std::size_t count(const std::string& kind) const;

 private:
  std::vector<Violation> violations_;
};

}  // namespace pvn
