#include "audit/reputation.h"

#include <cmath>

#include "telemetry/span.h"

namespace pvn {

double ReputationSystem::score(const std::string& provider) const {
  const auto it = scores_.find(provider);
  return it == scores_.end() ? 1.0 : it->second;
}

void ReputationSystem::report_violation(const std::string& provider,
                                        double weight) {
  double& s = scores_.try_emplace(provider, 1.0).first->second;
  s *= (1.0 - weight);
  if (s < 0.0) s = 0.0;
}

void ReputationSystem::report_clean_audit(const std::string& provider,
                                          double recovery) {
  double& s = scores_.try_emplace(provider, 1.0).first->second;
  s += recovery;
  if (s > 1.0) s = 1.0;
}

std::string ReputationSystem::pick_provider(
    const std::vector<std::string>& candidates) const {
  std::string best;
  double best_score = -1.0;
  for (const std::string& c : candidates) {
    if (blacklisted(c)) continue;
    const double s = score(c);
    if (s > best_score) {
      best_score = s;
      best = c;
    }
  }
  return best;
}

// --- HostScoreboard --------------------------------------------------------

const char* to_string(Misbehavior m) {
  switch (m) {
    case Misbehavior::kBogusOffer: return "bogus-offer";
    case Misbehavior::kCorruptCheckpoint: return "corrupt-checkpoint";
    case Misbehavior::kReplayedCheckpoint: return "replayed-checkpoint";
    case Misbehavior::kNakFlood: return "nak-flood";
    case Misbehavior::kCapacityLie: return "capacity-lie";
    case Misbehavior::kAuditFailure: return "audit-failure";
    case Misbehavior::kDeployTimeout: return "deploy-timeout";
  }
  return "?";
}

double misbehavior_weight(Misbehavior m) {
  switch (m) {
    case Misbehavior::kBogusOffer: return 0.35;
    case Misbehavior::kCorruptCheckpoint: return 0.50;
    case Misbehavior::kReplayedCheckpoint: return 0.40;
    case Misbehavior::kNakFlood: return 0.25;
    case Misbehavior::kCapacityLie: return 0.35;
    case Misbehavior::kAuditFailure: return 0.50;
    case Misbehavior::kDeployTimeout: return 0.15;
  }
  return 0.25;
}

HostScoreboard::HostScoreboard(HostScoreboardConfig cfg) : cfg_(cfg) {
  auto& reg = telemetry::MetricsRegistry::global();
  for (std::size_t i = 0; i < kMisbehaviorCount; ++i) {
    m_violations_[i] = &reg.counter("audit.reputation.violations",
                                    to_string(static_cast<Misbehavior>(i)));
  }
  m_quarantine_enters_ = &reg.counter("audit.reputation.quarantine_enters");
  m_quarantine_exits_ = &reg.counter("audit.reputation.quarantine_exits");
}

double HostScoreboard::decayed_distrust(const Entry& e, SimTime now) const {
  if (e.distrust <= 0.0) return 0.0;
  const SimDuration dt = now - e.updated;
  if (dt <= 0 || cfg_.rehab_half_life <= 0) return e.distrust;
  const double halves =
      static_cast<double>(dt) / static_cast<double>(cfg_.rehab_half_life);
  return e.distrust * std::pow(0.5, halves);
}

HostScoreboard::Entry& HostScoreboard::touch(const std::string& host,
                                             SimTime now) {
  Entry& e = entries_.try_emplace(host).first->second;
  e.distrust = decayed_distrust(e, now);
  e.updated = now;
  return e;
}

double HostScoreboard::score(const std::string& host, SimTime now) const {
  const auto it = entries_.find(host);
  if (it == entries_.end()) return 1.0;
  return 1.0 - decayed_distrust(it->second, now);
}

void HostScoreboard::report(const std::string& host, Misbehavior what,
                            SimTime now) {
  Entry& e = touch(host, now);
  // Multiplicative accrual on the trust side: repeated violations approach
  // zero trust asymptotically, and a severe class dominates a mild one.
  const double w = misbehavior_weight(what);
  e.distrust = 1.0 - (1.0 - e.distrust) * (1.0 - w);
  ++violations_;
  ++by_class_[static_cast<std::size_t>(what)];
  m_violations_[static_cast<std::size_t>(what)]->inc();
  telemetry::SpanRecorder::global().instant(
      std::string("violation_") + to_string(what), "reputation", host);
  // Latch quarantine at report time, not only when someone asks: between a
  // report and the next query the score decays upward, so a caller polling
  // on its own (slow) discovery cadence could sail past the entire window
  // in which the score sat below the entry mark and never see the host
  // quarantined at all.
  update_latch(e, host, 1.0 - e.distrust);
}

void HostScoreboard::report_success(const std::string& host, SimTime now) {
  Entry& e = touch(host, now);
  e.distrust -= cfg_.success_recovery;
  if (e.distrust < 0.0) e.distrust = 0.0;
}

bool HostScoreboard::quarantined(const std::string& host, SimTime now) {
  const auto it = entries_.find(host);
  if (it == entries_.end()) return false;  // unknown host: trusted
  Entry& e = it->second;
  update_latch(e, host, 1.0 - decayed_distrust(e, now));
  return e.quarantined;
}

void HostScoreboard::update_latch(Entry& e, const std::string& host,
                                  double score) {
  if (!e.quarantined && score < cfg_.quarantine_enter) {
    e.quarantined = true;
    ++enters_;
    m_quarantine_enters_->inc();
    telemetry::SpanRecorder::global().instant("quarantine_enter", "reputation",
                                              host);
  } else if (e.quarantined && score > cfg_.quarantine_exit) {
    e.quarantined = false;
    ++exits_;
    m_quarantine_exits_->inc();
    telemetry::SpanRecorder::global().instant("quarantine_exit", "reputation",
                                              host);
  }
}

// --- CircuitBreaker --------------------------------------------------------

const char* to_string(BreakerState s) {
  switch (s) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

void CircuitBreaker::set_state(BreakerState s) {
  if (state_ == s) return;
  state_ = s;
  ++transitions_;
}

bool CircuitBreaker::allow(SimTime now) {
  if (cfg_.failure_threshold <= 0) return true;
  switch (state_) {
    case BreakerState::kClosed:
      return true;
    case BreakerState::kOpen:
      if (now >= open_until_) {
        set_state(BreakerState::kHalfOpen);
        return true;  // the single probe
      }
      ++rejected_;
      return false;
    case BreakerState::kHalfOpen:
      // A probe is already in flight; hold further attempts.
      ++rejected_;
      return false;
  }
  return true;
}

void CircuitBreaker::record_failure(SimTime now) {
  if (cfg_.failure_threshold <= 0) return;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: straight back to open.
    open_until_ = now + cfg_.open_for;
    set_state(BreakerState::kOpen);
    return;
  }
  if (++consecutive_failures_ >= cfg_.failure_threshold &&
      state_ == BreakerState::kClosed) {
    open_until_ = now + cfg_.open_for;
    set_state(BreakerState::kOpen);
  }
}

void CircuitBreaker::record_success() {
  consecutive_failures_ = 0;
  if (state_ != BreakerState::kClosed) set_state(BreakerState::kClosed);
}

}  // namespace pvn
