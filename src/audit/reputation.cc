#include "audit/reputation.h"

namespace pvn {

double ReputationSystem::score(const std::string& provider) const {
  const auto it = scores_.find(provider);
  return it == scores_.end() ? 1.0 : it->second;
}

void ReputationSystem::report_violation(const std::string& provider,
                                        double weight) {
  double& s = scores_.try_emplace(provider, 1.0).first->second;
  s *= (1.0 - weight);
  if (s < 0.0) s = 0.0;
}

void ReputationSystem::report_clean_audit(const std::string& provider,
                                          double recovery) {
  double& s = scores_.try_emplace(provider, 1.0).first->second;
  s += recovery;
  if (s > 1.0) s = 1.0;
}

std::string ReputationSystem::pick_provider(
    const std::vector<std::string>& candidates) const {
  std::string best;
  double best_score = -1.0;
  for (const std::string& c : candidates) {
    if (blacklisted(c)) continue;
    const double s = score(c);
    if (s > best_score) {
      best_score = s;
      best = c;
    }
  }
  return best;
}

}  // namespace pvn
