// Trusted-stack attestation (paper §3.1 "Auditor", §3.3): the PVN host's
// enclave signs a quote binding a fresh client nonce to a digest of the
// deployed configuration (chain modules + installed rules). The device
// verifies the quote against keys it trusts (manufacturer-distributed).
#pragma once

#include <string>
#include <vector>

#include "util/digest.h"
#include "util/time.h"

namespace pvn {

struct AttestationQuote {
  std::uint64_t nonce = 0;
  Digest config_digest;
  SimTime issued_at = 0;
  Signature signature;

  Bytes signed_bytes() const;
};

// Canonical digest of a deployed configuration: ordered module names plus
// rendered flow rules. Both sides compute it independently.
Digest config_digest(const std::vector<std::string>& chain_modules,
                     const std::vector<std::string>& rule_render);

// The enclave side (runs on the PVN host).
class Attester {
 public:
  explicit Attester(std::uint64_t key_seed) : key_(key_seed) {}

  const KeyPair& key() const { return key_; }

  AttestationQuote quote(std::uint64_t nonce, const Digest& digest,
                         SimTime now) const;

 private:
  KeyPair key_;
};

enum class AttestationVerdict {
  kOk,
  kUnknownKey,     // enclave key not in the trust registry
  kBadSignature,   // quote tampered or forged
  kWrongNonce,     // replayed quote
  kConfigMismatch, // deployed config differs from what the device requested
};
const char* to_string(AttestationVerdict verdict);

AttestationVerdict verify_quote(const AttestationQuote& quote,
                                const KeyRegistry& trusted,
                                const PublicKey& enclave_key,
                                std::uint64_t expected_nonce,
                                const Digest& expected_config);

}  // namespace pvn
