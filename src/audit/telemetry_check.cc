#include "audit/telemetry_check.h"

namespace pvn {

std::vector<TelemetryFinding> TelemetryAuditor::check_chain_traversals(
    const telemetry::MetricsSnapshot& snap, const std::string& chain_id,
    std::uint64_t verified_proofs) const {
  std::vector<TelemetryFinding> findings;
  const telemetry::MetricSample* sample =
      snap.find("mbox.chain.packets", chain_id);
  if (sample == nullptr) {
    if (verified_proofs > 0) {
      findings.push_back(TelemetryFinding{
          "chain-missing",
          "device holds " + std::to_string(verified_proofs) +
              " path proofs for chain " + chain_id +
              " but the network reports no telemetry for it"});
    }
    return findings;
  }
  if (sample->counter_value < verified_proofs) {
    findings.push_back(TelemetryFinding{
        "chain-undercount",
        "network reports " + std::to_string(sample->counter_value) +
            " packets through chain " + chain_id + " but device verified " +
            std::to_string(verified_proofs) + " path proofs"});
  }
  return findings;
}

std::vector<TelemetryFinding> TelemetryAuditor::check_dataplane_consistency(
    const telemetry::MetricsSnapshot& snap) const {
  std::vector<TelemetryFinding> findings;

  const std::uint64_t link_delivered =
      snap.counter_total("netsim.link.delivered_packets");
  const std::uint64_t switch_in = snap.counter_total("sdn.switch.packets_in");
  if (switch_in > link_delivered) {
    findings.push_back(TelemetryFinding{
        "switch-ingress-exceeds-links",
        "switches report " + std::to_string(switch_in) +
            " ingress packets but links only delivered " +
            std::to_string(link_delivered)});
  }

  const std::uint64_t meter_drops =
      snap.counter_total("sdn.meter.dropped_packets");
  const std::uint64_t switch_meter_drops =
      snap.counter_total("sdn.switch.dropped_meter");
  if (meter_drops > switch_meter_drops) {
    findings.push_back(TelemetryFinding{
        "meter-drop-mismatch",
        "meters report " + std::to_string(meter_drops) +
            " drops but switches only attribute " +
            std::to_string(switch_meter_drops) + " drops to meters"});
  }

  const std::uint64_t lookups = snap.counter_total("sdn.flow_table.hits") +
                                snap.counter_total("sdn.flow_table.misses");
  const std::uint64_t default_forwarded_ceiling =
      snap.counter_total("sdn.switch.forwarded");
  if (lookups + default_forwarded_ceiling < switch_in) {
    findings.push_back(TelemetryFinding{
        "lookup-undercount",
        "switches saw " + std::to_string(switch_in) +
            " ingress packets but flow tables performed only " +
            std::to_string(lookups) + " lookups"});
  }

  return findings;
}

}  // namespace pvn
