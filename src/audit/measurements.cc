#include "audit/measurements.h"

#include "proto/http.h"

namespace pvn {

RateProbe::RateProbe(Host& sender, Host& sink, Port sink_port)
    : sender_(&sender), sink_(&sink), sink_port_(sink_port) {}

void RateProbe::run(Rate rate, SimDuration duration, std::uint8_t tos,
                    const std::string& payload_marker, Callback done) {
  received_ = 0;
  received_bytes_ = 0;
  sink_->bind_udp(sink_port_, [this](Ipv4Addr, Port, Port, const Bytes& data) {
    ++received_;
    received_bytes_ += data.size();
  });

  // Packet payload: the marker (so DPI classifies the stream) plus filler.
  Bytes payload = to_bytes("Content-Type: " + payload_marker + "\r\n");
  payload.resize(1200, 0x5A);

  const SimDuration interval = rate.transmit_time(
      static_cast<std::int64_t>(payload.size() + UdpHeader::kWireSize +
                                IpHeader::kWireSize));
  const int total = interval > 0
                        ? static_cast<int>(duration / interval)
                        : 1000;

  auto sent = std::make_shared<int>(0);
  Simulator& sim = sender_->sim();
  for (int i = 0; i < total; ++i) {
    sim.schedule_after(interval * i, SimCategory::kWorkload, [this, payload, tos, sent] {
      sender_->send_udp(sink_->addr(), src_port_, sink_port_, payload, tos);
      ++*sent;
    });
  }
  const double offered_mbps = rate.mbps_value();
  sim.schedule_after(duration + seconds(1), SimCategory::kWorkload,
                     [this, done = std::move(done),
                                             offered_mbps, duration, total] {
    Result r;
    r.offered_mbps = offered_mbps;
    r.packets_sent = total;
    r.packets_received = received_;
    r.achieved_mbps =
        static_cast<double>(received_bytes_) * 8.0 / to_seconds(duration) / 1e6;
    done(r);
  });
}

DifferentiationVerdict judge_differentiation(double control_mbps,
                                             double marked_mbps,
                                             double threshold) {
  DifferentiationVerdict v;
  if (control_mbps <= 0) return v;
  v.ratio = marked_mbps / control_mbps;
  v.differentiated = v.ratio < threshold;
  return v;
}

ContentCheck::ContentCheck(Host& client)
    : client_(&client), http_(std::make_unique<HttpClient>(client)) {}

void ContentCheck::run(Ipv4Addr server, Port port, const std::string& path,
                       const Digest& expected, Callback done) {
  http_->fetch(server, port, path,
               [expected, done = std::move(done)](const HttpResponse& resp,
                                                  const FetchTiming& timing) {
                 const Digest got = digest_of(resp.body);
                 const bool modified = !timing.ok || !(got == expected);
                 done(modified, got);
               });
}

PathInflationVerdict judge_path_inflation(SimDuration measured,
                                          SimDuration baseline,
                                          double tolerance) {
  PathInflationVerdict v;
  v.measured = measured;
  v.baseline = baseline;
  v.inflated = baseline > 0 &&
               static_cast<double>(measured) >
                   static_cast<double>(baseline) * tolerance;
  return v;
}

bool tls_intercepted(const PublicKey& pinned_server_key,
                     const PublicKey& presented_key) {
  return !(pinned_server_key == presented_key);
}

std::size_t ViolationLog::count(const std::string& kind) const {
  std::size_t n = 0;
  for (const Violation& v : violations_) {
    if (v.kind == kind) ++n;
  }
  return n;
}

}  // namespace pvn
