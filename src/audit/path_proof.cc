#include "audit/path_proof.h"

namespace pvn {
namespace {

Digest hop_mac(const Bytes& key, const Digest& packet_digest,
               const Digest* prev) {
  ByteWriter w;
  w.raw(packet_digest.to_bytes());
  if (prev != nullptr) w.raw(prev->to_bytes());
  return hmac(key, w.bytes());
}

}  // namespace

void extend_proof(PathProof& proof, const Bytes& hop_key) {
  const Digest* prev = proof.macs.empty() ? nullptr : &proof.macs.back();
  proof.macs.push_back(hop_mac(hop_key, proof.packet_digest, prev));
}

bool verify_proof(const PathProof& proof, const Digest& packet_digest,
                  const std::vector<Bytes>& hop_keys) {
  if (!(proof.packet_digest == packet_digest)) return false;
  if (proof.macs.size() != hop_keys.size()) return false;
  const Digest* prev = nullptr;
  for (std::size_t i = 0; i < hop_keys.size(); ++i) {
    const Digest expected = hop_mac(hop_keys[i], packet_digest, prev);
    if (!(proof.macs[i] == expected)) return false;
    prev = &proof.macs[i];
  }
  return true;
}

}  // namespace pvn
