#include "sdn/match.h"

namespace pvn {

bool FlowMatch::matches(const Packet& pkt, int in_port_no) const {
  if (in_port && *in_port != in_port_no) return false;
  if (src && !src->contains(pkt.ip.src)) return false;
  if (dst && !dst->contains(pkt.ip.dst)) return false;
  if (proto && *proto != pkt.ip.proto) return false;
  if (tos && *tos != pkt.ip.tos) return false;
  if (src_port || dst_port) {
    Port sp = 0, dp = 0;
    if (!peek_ports(static_cast<std::uint8_t>(pkt.ip.proto), pkt.l4, sp, dp)) {
      return false;
    }
    if (src_port && *src_port != sp) return false;
    if (dst_port && *dst_port != dp) return false;
  }
  return true;
}

int FlowMatch::specificity() const {
  int n = 0;
  n += in_port.has_value();
  n += src.has_value() ? 1 + src->len / 8 : 0;
  n += dst.has_value() ? 1 + dst->len / 8 : 0;
  n += proto.has_value();
  n += src_port.has_value();
  n += dst_port.has_value();
  n += tos.has_value();
  return n;
}

std::string FlowMatch::to_string() const {
  std::string out = "{";
  if (in_port) out += "in:" + std::to_string(*in_port) + " ";
  if (src) out += "src:" + src->to_string() + " ";
  if (dst) out += "dst:" + dst->to_string() + " ";
  if (proto) out += std::string("proto:") + pvn::to_string(*proto) + " ";
  if (src_port) out += "sport:" + std::to_string(*src_port) + " ";
  if (dst_port) out += "dport:" + std::to_string(*dst_port) + " ";
  if (tos) out += "tos:" + std::to_string(*tos) + " ";
  if (out.size() > 1 && out.back() == ' ') out.pop_back();
  out += "}";
  return out;
}

}  // namespace pvn
