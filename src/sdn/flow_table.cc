#include "sdn/flow_table.h"

#include <algorithm>

namespace pvn {

void FlowTable::add(FlowRule rule) {
  // Find insertion position: ordered by priority desc, then specificity
  // desc, then insertion order (stable).
  const int prio = rule.priority;
  const int spec = rule.match.specificity();
  auto it = rules_.begin();
  auto oit = order_.begin();
  for (; it != rules_.end(); ++it, ++oit) {
    if (it->priority < prio) break;
    if (it->priority == prio && it->match.specificity() < spec) break;
  }
  oit = order_.insert(oit, seq_++);
  rules_.insert(it, std::move(rule));
  (void)oit;
}

std::size_t FlowTable::remove_by_cookie(const std::string& cookie) {
  return remove_if(
      [&cookie](const FlowRule& rule) { return rule.cookie == cookie; });
}

std::size_t FlowTable::remove_if(
    const std::function<bool(const FlowRule&)>& pred) {
  std::size_t removed = 0;
  for (std::size_t i = rules_.size(); i-- > 0;) {
    if (pred(rules_[i])) {
      rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(i));
      order_.erase(order_.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    }
  }
  return removed;
}

const FlowRule* FlowTable::lookup(const Packet& pkt, int in_port) const {
  for (const FlowRule& rule : rules_) {
    if (rule.match.matches(pkt, in_port)) {
      ++rule.hit_packets;
      rule.hit_bytes += pkt.size();
      return &rule;
    }
  }
  ++misses_;
  return nullptr;
}

}  // namespace pvn
