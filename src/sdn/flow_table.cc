#include "sdn/flow_table.h"

#include <algorithm>

#include "telemetry/metrics.h"
#include "util/hash.h"

namespace pvn {
namespace {

// Aggregate (all tables) telemetry cells; per-switch breakdowns live in
// SdnSwitch, which knows its own name. Function-local statics: registered
// once, the references stay valid for the registry's lifetime.
telemetry::Counter& hits_counter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::global().counter("sdn.flow_table.hits");
  return c;
}
telemetry::Counter& misses_counter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::global().counter("sdn.flow_table.misses");
  return c;
}
telemetry::Counter& removed_counter() {
  static telemetry::Counter& c =
      telemetry::MetricsRegistry::global().counter("sdn.flow_table.removed");
  return c;
}

}  // namespace

std::size_t FlowTable::ExactKeyHash::operator()(
    const ExactKey& k) const noexcept {
  std::uint64_t a = (static_cast<std::uint64_t>(k.src) << 32) | k.dst;
  std::uint64_t b = (static_cast<std::uint64_t>(static_cast<std::uint32_t>(
                         k.in_port))
                     << 32) |
                    (static_cast<std::uint64_t>(k.src_port) << 16) |
                    k.dst_port;
  std::uint64_t c = (static_cast<std::uint64_t>(k.mask) << 16) |
                    (static_cast<std::uint64_t>(k.proto) << 8) | k.tos;
  return static_cast<std::size_t>(
      hash_combine_u64(hash_combine_u64(mix_u64(a), b), c));
}

void FlowTable::add(FlowRule rule) {
  rule.cached_specificity = rule.match.specificity();
  // Find insertion position: ordered by priority desc, then specificity
  // desc, then insertion order (stable). Uses the cached specificity of the
  // rules walked past instead of recomputing each one.
  const int prio = rule.priority;
  const int spec = rule.cached_specificity;
  auto it = rules_.begin();
  for (; it != rules_.end(); ++it) {
    if (it->priority < prio) break;
    if (it->priority == prio && it->cached_specificity < spec) break;
  }
  rules_.insert(it, std::move(rule));
  index_dirty_ = true;
}

std::size_t FlowTable::remove_by_cookie(const std::string& cookie) {
  return remove_if(
      [&cookie](const FlowRule& rule) { return rule.cookie == cookie; });
}

std::size_t FlowTable::remove_if(
    const std::function<bool(const FlowRule&)>& pred) {
  std::size_t removed = 0;
  for (std::size_t i = rules_.size(); i-- > 0;) {
    if (pred(rules_[i])) {
      rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(i));
      ++removed;
    }
  }
  if (removed > 0) {
    index_dirty_ = true;
    removed_counter().inc(removed);
  }
  return removed;
}

void FlowTable::clear() {
  rules_.clear();
  buckets_.clear();
  index_dirty_ = false;
}

std::optional<std::uint8_t> FlowTable::hashable_mask(const FlowMatch& m) {
  std::uint8_t mask = 0;
  if (m.in_port) mask |= kFieldInPort;
  if (m.src) {
    if (m.src->len < 32) return std::nullopt;  // true prefix: wildcard path
    mask |= kFieldSrc;
  }
  if (m.dst) {
    if (m.dst->len < 32) return std::nullopt;
    mask |= kFieldDst;
  }
  if (m.proto) mask |= kFieldProto;
  if (m.src_port) mask |= kFieldSrcPort;
  if (m.dst_port) mask |= kFieldDstPort;
  if (m.tos) mask |= kFieldTos;
  if (mask == 0) return std::nullopt;  // match-all: wildcard path
  return mask;
}

void FlowTable::rebuild_index() const {
  buckets_.clear();
  for (std::uint32_t i = 0; i < rules_.size(); ++i) {
    const FlowRule& rule = rules_[i];
    if (buckets_.empty() || buckets_.back().priority != rule.priority) {
      buckets_.emplace_back();
      buckets_.back().priority = rule.priority;
    }
    Bucket& bucket = buckets_.back();
    const auto mask = hashable_mask(rule.match);
    if (!mask) {
      bucket.wildcard.push_back(i);
      continue;
    }
    ExactKey key;
    key.mask = *mask;
    const FlowMatch& m = rule.match;
    if (m.in_port) key.in_port = *m.in_port;
    if (m.src) key.src = m.src->addr.v;
    if (m.dst) key.dst = m.dst->addr.v;
    if (m.proto) key.proto = static_cast<std::uint8_t>(*m.proto);
    if (m.src_port) key.src_port = *m.src_port;
    if (m.dst_port) key.dst_port = *m.dst_port;
    if (m.tos) key.tos = *m.tos;
    // First insertion wins: rules_ is walked in sort order, so duplicate
    // keys keep the (priority, specificity, FIFO) winner.
    bucket.exact.emplace(key, i);
    if (std::find(bucket.masks.begin(), bucket.masks.end(), *mask) ==
        bucket.masks.end()) {
      bucket.masks.push_back(*mask);
    }
  }
  index_dirty_ = false;
}

const FlowRule* FlowTable::lookup(const Packet& pkt, int in_port) const {
  if (index_dirty_) rebuild_index();

  // L4 ports are parsed lazily, at most once per lookup.
  int ports_state = 0;  // 0 = not parsed, 1 = available, -1 = unavailable
  Port src_port = 0, dst_port = 0;
  const auto ports_available = [&]() {
    if (ports_state == 0) {
      ports_state = peek_ports(static_cast<std::uint8_t>(pkt.ip.proto),
                               pkt.l4, src_port, dst_port)
                        ? 1
                        : -1;
    }
    return ports_state == 1;
  };

  constexpr std::uint32_t kNoRule = 0xFFFFFFFFu;
  for (const Bucket& bucket : buckets_) {
    std::uint32_t best = kNoRule;
    for (const std::uint8_t mask : bucket.masks) {
      if ((mask & (kFieldSrcPort | kFieldDstPort)) != 0 && !ports_available()) {
        continue;  // port-matching rules cannot match a portless packet
      }
      ExactKey key;
      key.mask = mask;
      if (mask & kFieldInPort) key.in_port = in_port;
      if (mask & kFieldSrc) key.src = pkt.ip.src.v;
      if (mask & kFieldDst) key.dst = pkt.ip.dst.v;
      if (mask & kFieldProto) key.proto = static_cast<std::uint8_t>(pkt.ip.proto);
      if (mask & kFieldSrcPort) key.src_port = src_port;
      if (mask & kFieldDstPort) key.dst_port = dst_port;
      if (mask & kFieldTos) key.tos = pkt.ip.tos;
      const auto it = bucket.exact.find(key);
      if (it != bucket.exact.end() && it->second < best) best = it->second;
    }
    // Wildcard indices ascend in the same global order the hash winner is
    // drawn from, so the first wildcard match below `best` decides.
    for (const std::uint32_t idx : bucket.wildcard) {
      if (idx >= best) break;
      if (rules_[idx].match.matches(pkt, in_port)) {
        best = idx;
        break;
      }
    }
    if (best != kNoRule) {
      const FlowRule& rule = rules_[best];
      ++rule.hit_packets;
      rule.hit_bytes += pkt.size();
      hits_counter().inc();
      return &rule;
    }
  }
  ++misses_;
  misses_counter().inc();
  return nullptr;
}

}  // namespace pvn
