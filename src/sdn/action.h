// Actions a flow rule can apply, executed in order. The subset of OpenFlow
// the PVNC compiler needs, plus a middlebox-diversion action (the paper's
// software middleboxes interpose via redirect-to-mbox).
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "netsim/addr.h"

namespace pvn {

// Forward the packet out a switch port.
struct ActOutput {
  int port = 0;
  bool operator==(const ActOutput&) const = default;
};

// Drop the packet (explicit; table-miss behaviour is configured separately).
struct ActDrop {
  bool operator==(const ActDrop&) const = default;
};

// Rewrite the DSCP/class byte (used to mark classified traffic).
struct ActSetTos {
  std::uint8_t tos = 0;
  bool operator==(const ActSetTos&) const = default;
};

// Rewrite the destination address (redirection to proxies / gateways).
struct ActSetDst {
  Ipv4Addr dst;
  bool operator==(const ActSetDst&) const = default;
};

// Divert through a registered middlebox chain, then continue the action list
// with whatever packets the chain emits.
struct ActMbox {
  std::string chain_id;
  bool operator==(const ActMbox&) const = default;
};

// Pass through a token-bucket meter; non-conforming packets are dropped
// (shaping/throttling, e.g. the Binge On 1.5 Mbps policer).
struct ActMeter {
  std::string meter_id;
  bool operator==(const ActMeter&) const = default;
};

// Continue matching in a later table of the pipeline.
struct ActGotoTable {
  int table = 0;
  bool operator==(const ActGotoTable&) const = default;
};

// Encapsulate toward a tunnel gateway (used for selective redirection,
// Fig. 1c). The switch delegates to a registered tunnel encapsulator.
struct ActTunnel {
  Ipv4Addr gateway;
  bool operator==(const ActTunnel&) const = default;
};

using Action = std::variant<ActOutput, ActDrop, ActSetTos, ActSetDst, ActMbox,
                            ActMeter, ActGotoTable, ActTunnel>;
using ActionList = std::vector<Action>;

std::string to_string(const Action& action);

}  // namespace pvn
