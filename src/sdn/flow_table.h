// A priority flow table: the core SDN data structure PVNCs compile into.
//
// Semantics: lookup() returns the matching rule that is first in
// (priority desc, specificity desc, insertion order) — identical to a linear
// scan of the sorted rule vector. Structure: rules are additionally indexed
// two-level — per-priority buckets, each holding an exact-match hash map
// keyed on the fields its hashable rules actually set (per-bucket field
// masks) plus an ordered wildcard fallback list — so the dominant
// per-subscriber exact-match rules cost O(#priority-bands) hash probes per
// packet instead of an O(#rules) scan. See DESIGN.md "Hot paths and
// performance model".
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "sdn/action.h"
#include "sdn/match.h"

namespace pvn {

struct FlowRule {
  int priority = 0;
  FlowMatch match;
  ActionList actions;
  std::string cookie;  // owner tag, e.g. "pvn:<device>" — enables teardown

  // Counters.
  mutable std::uint64_t hit_packets = 0;
  mutable std::uint64_t hit_bytes = 0;

  // match.specificity(), cached by FlowTable::add (callers need not set it).
  int cached_specificity = -1;
};

class FlowTable {
 public:
  // Inserts a rule; rules are kept ordered by (priority desc,
  // specificity desc, insertion order).
  void add(FlowRule rule);

  // Removes all rules with the given cookie; returns how many.
  std::size_t remove_by_cookie(const std::string& cookie);
  // Removes all rules matching `pred`; returns how many. Used for partial
  // rewiring (e.g. dropping only the middlebox-diversion rules of a cookie
  // when its chain host crashed, leaving drop/rate policies installed).
  std::size_t remove_if(const std::function<bool(const FlowRule&)>& pred);
  void clear();

  // Highest-priority matching rule, or nullptr (table miss). Updates the
  // rule's counters.
  const FlowRule* lookup(const Packet& pkt, int in_port) const;

  std::size_t size() const { return rules_.size(); }
  const std::vector<FlowRule>& rules() const { return rules_; }

  std::uint64_t misses() const { return misses_; }

 private:
  // Bitmask of FlowMatch fields a hashable rule sets.
  enum FieldBits : std::uint8_t {
    kFieldInPort = 1u << 0,
    kFieldSrc = 1u << 1,
    kFieldDst = 1u << 2,
    kFieldProto = 1u << 3,
    kFieldSrcPort = 1u << 4,
    kFieldDstPort = 1u << 5,
    kFieldTos = 1u << 6,
  };

  // Exact-match hash key: the field mask plus the matched field values
  // (unset fields zeroed, so equal keys imply equal matches).
  struct ExactKey {
    std::uint8_t mask = 0;
    std::uint8_t proto = 0;
    std::uint8_t tos = 0;
    std::int32_t in_port = 0;
    std::uint32_t src = 0;
    std::uint32_t dst = 0;
    std::uint16_t src_port = 0;
    std::uint16_t dst_port = 0;
    bool operator==(const ExactKey&) const = default;
  };
  struct ExactKeyHash {
    std::size_t operator()(const ExactKey& k) const noexcept;
  };

  struct Bucket {
    int priority = 0;
    // Distinct field masks of the hashable rules in this priority band; a
    // lookup builds one key per mask.
    std::vector<std::uint8_t> masks;
    // Exact key -> lowest rules_ index with that key (the winner among
    // duplicates under the sort order).
    std::unordered_map<ExactKey, std::uint32_t, ExactKeyHash> exact;
    // Non-hashable rules, ascending rules_ index (== specificity desc, FIFO).
    std::vector<std::uint32_t> wildcard;
  };

  // A rule is hashable iff every set field is an exact value (prefixes /32),
  // so a packet can be probed with one key per distinct mask.
  static std::optional<std::uint8_t> hashable_mask(const FlowMatch& m);
  void rebuild_index() const;

  std::vector<FlowRule> rules_;  // sorted: priority desc, spec desc, FIFO
  mutable std::uint64_t misses_ = 0;

  // Lazily (re)built two-level index; any structural change just marks it
  // dirty, keeping add/remove simple and O(n) like the insertion itself.
  mutable std::vector<Bucket> buckets_;  // priority desc
  mutable bool index_dirty_ = true;
};

}  // namespace pvn
