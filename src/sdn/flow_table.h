// A priority flow table: the core SDN data structure PVNCs compile into.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "sdn/action.h"
#include "sdn/match.h"

namespace pvn {

struct FlowRule {
  int priority = 0;
  FlowMatch match;
  ActionList actions;
  std::string cookie;  // owner tag, e.g. "pvn:<device>" — enables teardown

  // Counters.
  mutable std::uint64_t hit_packets = 0;
  mutable std::uint64_t hit_bytes = 0;
};

class FlowTable {
 public:
  // Inserts a rule; rules are kept ordered by (priority desc,
  // specificity desc, insertion order).
  void add(FlowRule rule);

  // Removes all rules with the given cookie; returns how many.
  std::size_t remove_by_cookie(const std::string& cookie);
  // Removes all rules matching `pred`; returns how many. Used for partial
  // rewiring (e.g. dropping only the middlebox-diversion rules of a cookie
  // when its chain host crashed, leaving drop/rate policies installed).
  std::size_t remove_if(const std::function<bool(const FlowRule&)>& pred);
  void clear() { rules_.clear(); }

  // Highest-priority matching rule, or nullptr (table miss). Updates the
  // rule's counters.
  const FlowRule* lookup(const Packet& pkt, int in_port) const;

  std::size_t size() const { return rules_.size(); }
  const std::vector<FlowRule>& rules() const { return rules_; }

  std::uint64_t misses() const { return misses_; }

 private:
  std::vector<FlowRule> rules_;
  std::uint64_t seq_ = 0;
  std::vector<std::uint64_t> order_;  // parallel to rules_: insertion seq
  mutable std::uint64_t misses_ = 0;
};

}  // namespace pvn
