#include "sdn/meter.h"

namespace pvn {

void Meter::refill(SimTime now) {
  if (now <= last_refill_) return;
  const double elapsed = to_seconds(now - last_refill_);
  tokens_ += elapsed * static_cast<double>(rate_.bits_per_second) / 8.0;
  if (tokens_ > static_cast<double>(burst_bytes_)) {
    tokens_ = static_cast<double>(burst_bytes_);
  }
  last_refill_ = now;
}

bool Meter::conforms(std::int64_t bytes, SimTime now) {
  refill(now);
  if (tokens_ >= static_cast<double>(bytes)) {
    tokens_ -= static_cast<double>(bytes);
    ++passed_;
    return true;
  }
  ++dropped_;
  return false;
}

}  // namespace pvn
