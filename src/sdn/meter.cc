#include "sdn/meter.h"

#include "telemetry/metrics.h"

namespace pvn {
namespace {

telemetry::Counter& passed_counter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::global().counter(
      "sdn.meter.passed_packets");
  return c;
}
telemetry::Counter& dropped_counter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::global().counter(
      "sdn.meter.dropped_packets");
  return c;
}

}  // namespace

void Meter::refill(SimTime now) {
  if (now <= last_refill_) return;
  const double elapsed = to_seconds(now - last_refill_);
  tokens_ += elapsed * static_cast<double>(rate_.bits_per_second) / 8.0;
  if (tokens_ > static_cast<double>(burst_bytes_)) {
    tokens_ = static_cast<double>(burst_bytes_);
  }
  last_refill_ = now;
}

bool Meter::conforms(std::int64_t bytes, SimTime now) {
  refill(now);
  if (tokens_ >= static_cast<double>(bytes)) {
    tokens_ -= static_cast<double>(bytes);
    ++passed_;
    passed_counter().inc();
    return true;
  }
  ++dropped_;
  dropped_counter().inc();
  return false;
}

}  // namespace pvn
