// The programmable access-network dataplane: a multi-table match/action
// switch with meters, middlebox diversion, and tunnel encapsulation hooks.
//
// This is the element a PVN deployment programs: the compiler (src/pvn)
// turns a PVNC into FlowRules + middlebox chains, and the DeploymentServer
// installs them here via the Controller.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "netsim/network.h"
#include "netsim/node.h"
#include "sdn/flow_table.h"
#include "sdn/meter.h"
#include "telemetry/metrics.h"

namespace pvn {

// Implemented by middlebox chains (src/mbox); keeps sdn ← mbox layering
// acyclic. process() consumes a packet and returns the packets to continue
// with (empty = dropped/absorbed), plus the processing delay to charge.
class PacketProcessor {
 public:
  virtual ~PacketProcessor() = default;
  virtual std::vector<Packet> process(Packet pkt, SimTime now,
                                      SimDuration& delay) = 0;
};

// Encapsulation hook (src/tunnel): wraps the packet for a tunnel gateway.
using TunnelEncap = std::function<Packet(Packet inner, Ipv4Addr gateway)>;

struct SwitchStats {
  std::uint64_t packets_in = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped_rule = 0;
  std::uint64_t dropped_miss = 0;
  std::uint64_t dropped_meter = 0;
  std::uint64_t diverted_mbox = 0;
  std::uint64_t tunneled = 0;
};

class SdnSwitch : public Node {
 public:
  SdnSwitch(Network& net, std::string name, int num_tables = 2);

  FlowTable& table(int index = 0) { return tables_.at(static_cast<std::size_t>(index)); }
  int table_count() const { return static_cast<int>(tables_.size()); }

  void add_meter(const std::string& id, Rate rate, std::int64_t burst_bytes);
  Meter* meter(const std::string& id);

  void register_processor(const std::string& chain_id, PacketProcessor* proc);
  void unregister_processor(const std::string& chain_id);
  void set_tunnel_encap(TunnelEncap encap) { tunnel_encap_ = std::move(encap); }

  // Table-miss behaviour for table 0 (later tables always drop on miss):
  // if set, missing packets go out this port; otherwise they are dropped.
  void set_default_port(int port) { default_port_ = port; }

  void handle_packet(Packet pkt, int in_port) override;

  const SwitchStats& stats() const { return stats_; }

  // Per-pipeline-packet processing latency (models lookup cost). Charged
  // once per ingress packet before actions execute.
  void set_pipeline_latency(SimDuration d) { pipeline_latency_ = d; }

 private:
  void run_pipeline(Packet pkt, int in_port, int table_index);
  void execute(const ActionList& actions, std::size_t start, Packet pkt,
               int in_port);

  std::vector<FlowTable> tables_;
  std::map<std::string, std::unique_ptr<Meter>> meters_;
  std::map<std::string, PacketProcessor*> processors_;
  TunnelEncap tunnel_encap_;
  std::optional<int> default_port_;
  SimDuration pipeline_latency_ = 0;
  SwitchStats stats_;
  // Telemetry cells registered under instance = switch name, mirroring the
  // SwitchStats fields the exporters and the auditor consume.
  telemetry::Counter* m_packets_in_ = nullptr;
  telemetry::Counter* m_forwarded_ = nullptr;
  telemetry::Counter* m_dropped_rule_ = nullptr;
  telemetry::Counter* m_dropped_miss_ = nullptr;
  telemetry::Counter* m_dropped_meter_ = nullptr;
  telemetry::Counter* m_diverted_mbox_ = nullptr;
  telemetry::Counter* m_tunneled_ = nullptr;
};

}  // namespace pvn
