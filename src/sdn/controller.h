// A minimal SDN controller: the management-plane entry point the PVN
// DeploymentServer uses to program switches. Models control-channel latency
// so deployment-time measurements (experiment E4/E8) include it.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "sdn/switch.h"

namespace pvn {

class Controller {
 public:
  explicit Controller(Simulator& sim, SimDuration control_rtt = milliseconds(2))
      : sim_(&sim), control_rtt_(control_rtt) {}

  void manage(SdnSwitch& sw) { switches_[sw.name()] = &sw; }
  SdnSwitch* switch_by_name(const std::string& name);

  // Installs a rule after one control-channel RTT; invokes `done` when the
  // switch has applied it.
  void install_rule(const std::string& switch_name, int table, FlowRule rule,
                    std::function<void(bool)> done = nullptr);

  // Removes all rules with `cookie` on every managed switch (all tables).
  void remove_by_cookie(const std::string& cookie,
                        std::function<void(std::size_t)> done = nullptr);

  // Failure rewiring: removes only the rules of `cookie` that divert
  // packets into a middlebox chain (ActMbox), so traffic for that device
  // bypasses a crashed chain while its drop/rate/mark policies stay
  // installed. Also unregisters the chain's processor on every switch.
  void bypass_chain(const std::string& cookie, const std::string& chain_id,
                    std::function<void(std::size_t)> done = nullptr);

  // Standby promotion (survivability layer): after one control RTT,
  // re-points every installed ActMbox rule for `chain_id` at `standby` by
  // re-registering the processor under the same chain id. The compiled flow
  // rules stay untouched, so the dataplane blackout is bounded by the
  // control RTT. `done` reports whether the switch was found.
  void promote_chain(const std::string& switch_name,
                     const std::string& chain_id, PacketProcessor* standby,
                     std::function<void(bool)> done = nullptr);

  void add_meter(const std::string& switch_name, const std::string& meter_id,
                 Rate rate, std::int64_t burst_bytes,
                 std::function<void(bool)> done = nullptr);

  std::uint64_t rules_installed() const { return rules_installed_; }
  std::uint64_t promotions() const { return promotions_; }

 private:
  Simulator* sim_;
  SimDuration control_rtt_;
  std::map<std::string, SdnSwitch*> switches_;
  std::uint64_t rules_installed_ = 0;
  std::uint64_t promotions_ = 0;
};

}  // namespace pvn
