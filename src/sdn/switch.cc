#include "sdn/switch.h"

namespace pvn {

std::string to_string(const Action& action) {
  struct V {
    std::string operator()(const ActOutput& a) {
      return "output:" + std::to_string(a.port);
    }
    std::string operator()(const ActDrop&) { return "drop"; }
    std::string operator()(const ActSetTos& a) {
      return "set_tos:" + std::to_string(a.tos);
    }
    std::string operator()(const ActSetDst& a) {
      return "set_dst:" + a.dst.to_string();
    }
    std::string operator()(const ActMbox& a) { return "mbox:" + a.chain_id; }
    std::string operator()(const ActMeter& a) { return "meter:" + a.meter_id; }
    std::string operator()(const ActGotoTable& a) {
      return "goto:" + std::to_string(a.table);
    }
    std::string operator()(const ActTunnel& a) {
      return "tunnel:" + a.gateway.to_string();
    }
  };
  return std::visit(V{}, action);
}

SdnSwitch::SdnSwitch(Network& net, std::string name, int num_tables)
    : Node(net, std::move(name)),
      tables_(static_cast<std::size_t>(num_tables < 1 ? 1 : num_tables)) {
  auto& reg = telemetry::MetricsRegistry::global();
  const std::string& inst = this->name();
  m_packets_in_ = &reg.counter("sdn.switch.packets_in", inst);
  m_forwarded_ = &reg.counter("sdn.switch.forwarded", inst);
  m_dropped_rule_ = &reg.counter("sdn.switch.dropped_rule", inst);
  m_dropped_miss_ = &reg.counter("sdn.switch.dropped_miss", inst);
  m_dropped_meter_ = &reg.counter("sdn.switch.dropped_meter", inst);
  m_diverted_mbox_ = &reg.counter("sdn.switch.diverted_mbox", inst);
  m_tunneled_ = &reg.counter("sdn.switch.tunneled", inst);
}

void SdnSwitch::add_meter(const std::string& id, Rate rate,
                          std::int64_t burst_bytes) {
  meters_[id] = std::make_unique<Meter>(rate, burst_bytes);
}

Meter* SdnSwitch::meter(const std::string& id) {
  const auto it = meters_.find(id);
  return it == meters_.end() ? nullptr : it->second.get();
}

void SdnSwitch::register_processor(const std::string& chain_id,
                                   PacketProcessor* proc) {
  processors_[chain_id] = proc;
}

void SdnSwitch::unregister_processor(const std::string& chain_id) {
  processors_.erase(chain_id);
}

void SdnSwitch::handle_packet(Packet pkt, int in_port) {
  ++stats_.packets_in;
  m_packets_in_->inc();
  if (pipeline_latency_ > 0) {
    sim().schedule_after(pipeline_latency_, SimCategory::kSwitch,
                         [this, pkt = std::move(pkt), in_port]() mutable {
                           run_pipeline(std::move(pkt), in_port, 0);
                         });
  } else {
    run_pipeline(std::move(pkt), in_port, 0);
  }
}

void SdnSwitch::run_pipeline(Packet pkt, int in_port, int table_index) {
  if (table_index >= table_count()) {
    ++stats_.dropped_miss;
    m_dropped_miss_->inc();
    return;
  }
  const FlowRule* rule =
      tables_[static_cast<std::size_t>(table_index)].lookup(pkt, in_port);
  if (rule == nullptr) {
    if (table_index == 0 && default_port_) {
      ++stats_.forwarded;
      m_forwarded_->inc();
      send(*default_port_, std::move(pkt));
    } else {
      ++stats_.dropped_miss;
      m_dropped_miss_->inc();
    }
    return;
  }
  execute(rule->actions, 0, std::move(pkt), in_port);
}

void SdnSwitch::execute(const ActionList& actions, std::size_t start,
                        Packet pkt, int in_port) {
  for (std::size_t i = start; i < actions.size(); ++i) {
    const Action& action = actions[i];
    if (const auto* out = std::get_if<ActOutput>(&action)) {
      ++stats_.forwarded;
      m_forwarded_->inc();
      send(out->port, std::move(pkt));
      return;
    }
    if (std::get_if<ActDrop>(&action) != nullptr) {
      ++stats_.dropped_rule;
      m_dropped_rule_->inc();
      return;
    }
    if (const auto* set_tos = std::get_if<ActSetTos>(&action)) {
      pkt.ip.tos = set_tos->tos;
      continue;
    }
    if (const auto* set_dst = std::get_if<ActSetDst>(&action)) {
      pkt.ip.dst = set_dst->dst;
      continue;
    }
    if (const auto* meter_act = std::get_if<ActMeter>(&action)) {
      Meter* m = meter(meter_act->meter_id);
      if (m == nullptr ||
          !m->conforms(static_cast<std::int64_t>(pkt.size()), sim().now())) {
        ++stats_.dropped_meter;
        m_dropped_meter_->inc();
        return;
      }
      continue;
    }
    if (const auto* goto_table = std::get_if<ActGotoTable>(&action)) {
      run_pipeline(std::move(pkt), in_port, goto_table->table);
      return;
    }
    if (const auto* tunnel = std::get_if<ActTunnel>(&action)) {
      if (!tunnel_encap_) {
        ++stats_.dropped_rule;
        m_dropped_rule_->inc();
        return;
      }
      ++stats_.tunneled;
      m_tunneled_->inc();
      pkt = tunnel_encap_(std::move(pkt), tunnel->gateway);
      continue;
    }
    if (const auto* mbox = std::get_if<ActMbox>(&action)) {
      const auto it = processors_.find(mbox->chain_id);
      if (it == processors_.end()) {
        ++stats_.dropped_rule;
        m_dropped_rule_->inc();
        return;
      }
      ++stats_.diverted_mbox;
      m_diverted_mbox_->inc();
      SimDuration delay = 0;
      std::vector<Packet> outs =
          it->second->process(std::move(pkt), sim().now(), delay);
      // Continue the remaining actions for each emitted packet after the
      // chain's processing delay.
      for (Packet& out : outs) {
        if (delay > 0) {
          // Copy the tail of the action list: the rule may be removed
          // before the deferred continuation runs.
          sim().schedule_after(
              delay, SimCategory::kMbox, [this, acts = actions, i, out = std::move(out),
                      in_port]() mutable {
                execute(acts, i + 1, std::move(out), in_port);
              });
        } else {
          execute(actions, i + 1, std::move(out), in_port);
        }
      }
      return;
    }
  }
  // Action list exhausted without output/drop: drop.
  ++stats_.dropped_rule;
  m_dropped_rule_->inc();
}

}  // namespace pvn
