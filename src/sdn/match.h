// OpenFlow-lite match fields. Every field is optional; an unset field is a
// wildcard. PVNC compilation (src/pvn/compiler) targets this structure.
#pragma once

#include <optional>
#include <string>

#include "netsim/packet.h"
#include "proto/l4.h"

namespace pvn {

struct FlowMatch {
  std::optional<int> in_port;
  std::optional<Prefix> src;
  std::optional<Prefix> dst;
  std::optional<IpProto> proto;
  std::optional<Port> src_port;
  std::optional<Port> dst_port;
  std::optional<std::uint8_t> tos;

  // True iff every set field matches the packet.
  bool matches(const Packet& pkt, int in_port_no) const;

  // Number of set fields — used to prefer more-specific rules among equal
  // priorities.
  int specificity() const;

  std::string to_string() const;

  bool operator==(const FlowMatch&) const = default;

  // Convenience builders.
  static FlowMatch any() { return {}; }
  static FlowMatch to_dst(Prefix p) {
    FlowMatch m;
    m.dst = p;
    return m;
  }
  static FlowMatch of_proto(IpProto p) {
    FlowMatch m;
    m.proto = p;
    return m;
  }
  static FlowMatch to_port(IpProto p, Port port) {
    FlowMatch m;
    m.proto = p;
    m.dst_port = port;
    return m;
  }
};

}  // namespace pvn
