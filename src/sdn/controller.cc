#include "sdn/controller.h"

namespace pvn {

SdnSwitch* Controller::switch_by_name(const std::string& name) {
  const auto it = switches_.find(name);
  return it == switches_.end() ? nullptr : it->second;
}

void Controller::install_rule(const std::string& switch_name, int table,
                              FlowRule rule, std::function<void(bool)> done) {
  sim_->schedule_after(control_rtt_, SimCategory::kPvnControl, [this, switch_name, table,
                                      rule = std::move(rule),
                                      done = std::move(done)]() mutable {
    SdnSwitch* sw = switch_by_name(switch_name);
    if (sw == nullptr || table >= sw->table_count()) {
      if (done) done(false);
      return;
    }
    sw->table(table).add(std::move(rule));
    ++rules_installed_;
    if (done) done(true);
  });
}

void Controller::remove_by_cookie(const std::string& cookie,
                                  std::function<void(std::size_t)> done) {
  sim_->schedule_after(control_rtt_, SimCategory::kPvnControl, [this, cookie, done = std::move(done)] {
    std::size_t removed = 0;
    for (auto& [name, sw] : switches_) {
      for (int t = 0; t < sw->table_count(); ++t) {
        removed += sw->table(t).remove_by_cookie(cookie);
      }
    }
    if (done) done(removed);
  });
}

void Controller::bypass_chain(const std::string& cookie,
                              const std::string& chain_id,
                              std::function<void(std::size_t)> done) {
  sim_->schedule_after(control_rtt_, SimCategory::kPvnControl, [this, cookie, chain_id,
                                      done = std::move(done)] {
    std::size_t removed = 0;
    const auto diverts_into_chain = [&](const FlowRule& rule) {
      if (rule.cookie != cookie) return false;
      for (const Action& action : rule.actions) {
        if (const auto* mbox = std::get_if<ActMbox>(&action)) {
          if (mbox->chain_id == chain_id) return true;
        }
      }
      return false;
    };
    for (auto& [name, sw] : switches_) {
      for (int t = 0; t < sw->table_count(); ++t) {
        removed += sw->table(t).remove_if(diverts_into_chain);
      }
      sw->unregister_processor(chain_id);
    }
    if (done) done(removed);
  });
}

void Controller::promote_chain(const std::string& switch_name,
                               const std::string& chain_id,
                               PacketProcessor* standby,
                               std::function<void(bool)> done) {
  sim_->schedule_after(control_rtt_, SimCategory::kPvnControl,
                       [this, switch_name, chain_id, standby,
                        done = std::move(done)] {
                         SdnSwitch* sw = switch_by_name(switch_name);
                         if (sw == nullptr || standby == nullptr) {
                           if (done) done(false);
                           return;
                         }
                         sw->unregister_processor(chain_id);
                         sw->register_processor(chain_id, standby);
                         ++promotions_;
                         telemetry::MetricsRegistry::global()
                             .counter("sdn.controller.promotions")
                             .inc();
                         if (done) done(true);
                       });
}

void Controller::add_meter(const std::string& switch_name,
                           const std::string& meter_id, Rate rate,
                           std::int64_t burst_bytes,
                           std::function<void(bool)> done) {
  sim_->schedule_after(control_rtt_, SimCategory::kPvnControl, [this, switch_name, meter_id, rate,
                                      burst_bytes, done = std::move(done)] {
    SdnSwitch* sw = switch_by_name(switch_name);
    if (sw == nullptr) {
      if (done) done(false);
      return;
    }
    sw->add_meter(meter_id, rate, burst_bytes);
    if (done) done(true);
  });
}

}  // namespace pvn
