// Token-bucket meter: the shaping/throttling primitive.
//
// Used both by PVNCs (user-chosen per-flow policies) and by the dishonest-ISP
// models in the audit experiments (e.g. the Binge On 1.5 Mbps video policer,
// paper §2.2).
#pragma once

#include <cstdint>
#include <string>

#include "util/time.h"
#include "util/units.h"

namespace pvn {

class Meter {
 public:
  Meter(Rate rate, std::int64_t burst_bytes)
      : rate_(rate), burst_bytes_(burst_bytes), tokens_(burst_bytes) {}

  // Returns true iff a packet of `bytes` conforms at time `now`;
  // non-conforming packets should be dropped (policing).
  bool conforms(std::int64_t bytes, SimTime now);

  Rate rate() const { return rate_; }
  std::uint64_t dropped() const { return dropped_; }
  std::uint64_t passed() const { return passed_; }

 private:
  void refill(SimTime now);

  Rate rate_;
  std::int64_t burst_bytes_;
  double tokens_;
  SimTime last_refill_ = 0;
  std::uint64_t dropped_ = 0;
  std::uint64_t passed_ = 0;
};

}  // namespace pvn
