// Population-scale topology for storm and adversarial experiments: N client
// hosts behind an aggregation router, two honest PVN access networks, and an
// optional rogue deployment server that competes in the same offer auction.
//
//   client_0 ─┐
//   client_1 ─┤p0..pN-1                 ┌─ sw A ─p1─ control A (10.0.0.5)
//      ...    ├──── agg Router ──pN ────┘
//   client_N-1┘          │ pN+1 ─────────── sw B ─p1─ control B (10.0.1.5)
//                        └ pN+2 ─────────── rogue host (10.0.2.5, optional)
//
// Every deployment server sees all clients through one switch port, which is
// exactly the regime admission control and amortized lease sweeping are for:
// a flash crowd or a mass expiry arrives as one undifferentiated burst. The
// clients share a single HostScoreboard (when enabled), so one device's bad
// experience with the rogue protects the rest of the fleet.
#pragma once

#include <memory>
#include <vector>

#include "audit/reputation.h"
#include "netsim/router.h"
#include "pvn/client.h"
#include "pvn/server.h"

namespace pvn {

// How the rogue deployment server misbehaves. It speaks just enough of the
// discovery protocol to attack the auction; it never runs a middlebox.
enum class RogueMode : std::uint8_t {
  // Undercuts every honest offer but attaches an absurd lease (shorter than
  // any renewal cadence can sustain). Vetting drops it; an unvetted client
  // deploys into a lease that collapses immediately.
  kBogusOffers,
  // Offers honestly-looking terms, then refuses every deployment with a
  // kBusy NAK and a long retry-after — a denial-of-service on the device's
  // deploy budget.
  kNakFlood,
  // Offers honestly-looking terms, acks every deployment with a fake chain
  // id, then ignores the session: no rules, no renewals answered. The device
  // believes it is protected until the lease heartbeat catches the lie.
  kBlackhole,
};
const char* to_string(RogueMode mode);

// A deployment server test double that wins auctions and misbehaves.
class RogueServer {
 public:
  RogueServer(Host& host, RogueMode mode);
  ~RogueServer();

  RogueServer(const RogueServer&) = delete;
  RogueServer& operator=(const RogueServer&) = delete;

  RogueMode mode() const { return mode_; }

  // --- attack telemetry ---
  std::uint64_t offers_sent() const { return offers_sent_; }
  std::uint64_t naks_sent() const { return naks_sent_; }
  // kBlackhole: deployments acked but never served. Each one is a device
  // stranded until its renew heartbeat gives up on us.
  std::uint64_t fake_acks() const { return fake_acks_; }

 private:
  void on_packet(Ipv4Addr src, Port sport, const Bytes& payload);

  Host* host_;
  RogueMode mode_;
  std::uint64_t offers_sent_ = 0;
  std::uint64_t naks_sent_ = 0;
  std::uint64_t fake_acks_ = 0;
};

struct PopulationConfig {
  int clients = 200;
  LinkParams access;    // client <-> agg
  LinkParams backhaul;  // agg <-> switches / switch <-> control
  std::uint64_t seed = 1;
  SimDuration lease_duration = seconds(30);
  SimDuration checkpoint_interval = 0;  // no standbys in this topology
  // Population-scale middlebox pools: 2000 single-module chains at the
  // ClickOS 6 MiB/instance figure need ~12 GiB, so the default 4 GiB budget
  // would turn every storm into an out-of-memory test.
  std::int64_t mbox_budget = 64LL * kGiB;
  // Admission control on both honest servers (0 = unbounded, the default
  // ServerConfig behaviour).
  std::size_t max_pending_deploys = 0;
  std::size_t max_expiries_per_sweep = 0;
  bool rogue = false;
  RogueMode rogue_mode = RogueMode::kBogusOffers;

  PopulationConfig() {
    access.rate = Rate::mbps(50);
    access.latency = milliseconds(5);
    backhaul.rate = Rate::mbps(10'000);
    backhaul.latency = milliseconds(1);
  }
};

struct PopulationAddrs {
  Ipv4Addr control_a{10, 0, 0, 5};
  Ipv4Addr control_b{10, 0, 1, 5};
  Ipv4Addr rogue{10, 0, 2, 5};
};

class PopulationTestbed {
 public:
  explicit PopulationTestbed(PopulationConfig cfg = {});

  // One access network's PVN service stack (mirrors RoamingTestbed).
  struct AccessNet {
    std::unique_ptr<PvnStore> store;
    std::unique_ptr<MboxHost> mbox;
    std::unique_ptr<Controller> controller;
    std::unique_ptr<Ledger> ledger;
    std::unique_ptr<DeploymentServer> server;
  };

  // --- topology ---
  Network net;
  PopulationAddrs addrs;
  std::vector<Host*> clients;
  Router* agg = nullptr;
  SdnSwitch* sw_a = nullptr;
  SdnSwitch* sw_b = nullptr;
  Host* control_a = nullptr;
  Host* control_b = nullptr;
  Host* rogue_host = nullptr;  // non-null when cfg.rogue

  AccessNet a, b;
  std::unique_ptr<RogueServer> rogue;

  // Fleet-shared reputation (scenarios opt in via make_agents).
  HostScoreboard scoreboard;

  // --- the fleet ---
  // One PvnClient per client host, created on demand. When `shared_scoreboard`
  // the fleet pools misbehavior reports in `scoreboard`.
  std::vector<std::unique_ptr<PvnClient>> agents;
  void make_agents(ClientConfig base = {}, bool shared_scoreboard = false);

  // Address / identity scheme: client i lives at 10.1.<i/250>.<2 + i%250>
  // and deploys a PVNC named "dev-<i>".
  static Ipv4Addr client_addr(int i);
  Pvnc pvnc_for(int i) const;

  // Fleet health snapshots for benches.
  int active_agents() const;    // sessions in kActive
  int fallback_agents() const;  // sessions in kFallback

  static constexpr const char* kSwitchA = "pop-sw-a";
  static constexpr const char* kSwitchB = "pop-sw-b";

 private:
  PopulationConfig cfg_;
};

}  // namespace pvn
