#include "testbed/roaming.h"

namespace pvn {

RoamingTestbed::RoamingTestbed(RoamingConfig cfg) : net(cfg.seed), cfg_(cfg) {
  // --- nodes ---
  client = &net.add_node<Host>("client", addrs.client);
  control_a = &net.add_node<Host>("control-a", addrs.control_a);
  control_b = &net.add_node<Host>("control-b", addrs.control_b);
  web = &net.add_node<Host>("web", addrs.web);
  dns_host = &net.add_node<Host>("dns", addrs.dns);
  tracker = &net.add_node<Host>("tracker", addrs.tracker);
  sw_a = &net.add_node<SdnSwitch>(kSwitchA, 2);
  sw_b = &net.add_node<SdnSwitch>(kSwitchB, 2);
  wan = &net.add_node<Router>("wan");

  // --- links --- (client port 0 = network A, port 1 = network B)
  net.connect(*client, *sw_a, cfg.access);      // swA p0
  net.connect(*client, *sw_b, cfg.access);      // swB p0
  net.connect(*sw_a, *wan, cfg.backhaul);       // swA p1, wan p0
  net.connect(*sw_b, *wan, cfg.backhaul);       // swB p1, wan p1
  net.connect(*sw_a, *control_a, cfg.backhaul); // swA p2
  net.connect(*sw_b, *control_b, cfg.backhaul); // swB p2
  net.connect(*wan, *web, cfg.server_link);     // wan p2
  net.connect(*wan, *dns_host, cfg.server_link);// wan p3
  net.connect(*wan, *tracker, cfg.server_link); // wan p4

  // --- routing ---
  // The client's /32 starts on network A; re_attach() flips it to B. The
  // /24 and /24-style network routes keep each control host reachable from
  // the other network (that is the state-handoff path).
  wan->add_route(*Prefix::parse("10.0.0.0/24"), 0);
  wan->add_route(*Prefix::parse("10.0.1.0/24"), 1);
  wan->add_route(Prefix{addrs.web, 32}, 2);
  wan->add_route(Prefix{addrs.dns, 32}, 3);
  wan->add_route(Prefix{addrs.tracker, 32}, 4);

  // Infrastructure rules, network A (mirrors Testbed).
  {
    FlowRule to_control;
    to_control.priority = 0;
    to_control.match.dst = Prefix{addrs.control_a, 32};
    to_control.cookie = "infra";
    to_control.actions.push_back(ActOutput{2});
    sw_a->table(0).add(to_control);

    FlowRule to_client;
    to_client.priority = 0;
    to_client.match.dst = *Prefix::parse("10.0.0.0/24");
    to_client.cookie = "infra";
    to_client.actions.push_back(ActOutput{0});
    sw_a->table(0).add(to_client);

    FlowRule to_wan;
    to_wan.priority = 0;
    to_wan.cookie = "infra";
    to_wan.actions.push_back(ActOutput{1});
    sw_a->table(0).add(to_wan);
  }
  // Network B. The client keeps its A-network address when it roams, so B
  // pins a host route for it rather than owning the 10.0.0.0/24 prefix.
  {
    FlowRule to_control;
    to_control.priority = 0;
    to_control.match.dst = Prefix{addrs.control_b, 32};
    to_control.cookie = "infra";
    to_control.actions.push_back(ActOutput{2});
    sw_b->table(0).add(to_control);

    FlowRule to_client;
    to_client.priority = 1;  // beats the default before it reaches the wan
    to_client.match.dst = Prefix{addrs.client, 32};
    to_client.cookie = "infra";
    to_client.actions.push_back(ActOutput{0});
    sw_b->table(0).add(to_client);

    FlowRule to_wan;
    to_wan.priority = 0;
    to_wan.cookie = "infra";
    to_wan.actions.push_back(ActOutput{1});
    sw_b->table(0).add(to_wan);
  }

  // --- security environment (shared store inputs) ---
  root_ca = std::make_unique<CertificateAuthority>("RoamingRootCA", 11);
  trust.trust_root(*root_ca);
  dns_trusted.trust(dns_zone_key);

  web_http = std::make_unique<HttpServer>(*web);
  dns_server = std::make_unique<DnsServer>(*dns_host, &dns_zone_key);
  dns_server->add_record("web.example", addrs.web);

  store_env.tls_trust = &trust;
  store_env.dns_zone_keys = &dns_trusted;
  store_env.dns_zone_key_id = dns_zone_key.public_key();
  store_env.tracker_addrs = {addrs.tracker};
  store_env.pii_patterns = {"imei=", "password="};

  // --- per-network PVN stacks ---
  const auto build = [this](AccessNet& an, Host& control, SdnSwitch& sw,
                            const char* sw_name, const char* net_name) {
    an.store = std::make_unique<PvnStore>(make_standard_store(store_env));
    an.mbox = std::make_unique<MboxHost>(net.sim());
    an.controller = std::make_unique<Controller>(net.sim());
    an.controller->manage(sw);
    an.ledger = std::make_unique<Ledger>();
    ServerConfig scfg;
    scfg.switch_name = sw_name;
    scfg.switch_client_port = 0;
    scfg.switch_wan_port = 1;
    scfg.lease_duration = cfg_.lease_duration;
    scfg.checkpoint_interval = cfg_.checkpoint_interval;
    scfg.network_name = net_name;
    an.server = std::make_unique<DeploymentServer>(
        control, *an.store, *an.mbox, *an.controller, *an.ledger, scfg);
  };
  build(a, *control_a, *sw_a, kSwitchA, "access-net-a");
  build(b, *control_b, *sw_b, kSwitchB, "access-net-b");

  faults = std::make_unique<FaultInjector>(net);
}

void RoamingTestbed::re_attach() {
  if (attached_to_b_) return;
  attached_to_b_ = true;
  client->set_uplink(1);
  // Host route beats network A's /24: return traffic now rides network B.
  wan->add_route(Prefix{addrs.client, 32}, 1);
}

Pvnc RoamingTestbed::roaming_pvnc(const std::string& owner) const {
  Pvnc pvnc;
  pvnc.name = owner;
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"classifier", {}});
  pvnc.chain.push_back(PvncModule{"tracker-blocker", {}});
  return pvnc;
}

}  // namespace pvn
