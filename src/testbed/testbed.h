// The canonical experiment topology used by integration tests, benchmarks,
// and examples — one "PVN-capable access network" in a box:
//
//   client ──p0─ [access SdnSwitch] ─p1── wan Router ──┬── web server
//                      │p2                             ├── video server
//              control Host                            ├── dns resolver
//        (DHCP + DeploymentServer +                    ├── tracker
//         Controller + MboxHost + Store)               ├── malicious host
//                                                      └── cloud gateway
//
// The switch starts with two low-priority infrastructure rules (plain
// routing); PVN deployments layer their cookie-scoped rules on top.
#pragma once

#include <memory>
#include <vector>

#include "audit/measurements.h"
#include "audit/reputation.h"
#include "mbox/proxies.h"
#include "netsim/faults.h"
#include "netsim/router.h"
#include "proto/dhcp.h"
#include "proto/dns.h"
#include "proto/tls.h"
#include "pvn/client.h"
#include "pvn/server.h"
#include "pvn/standby.h"
#include "tunnel/vpn.h"
#include "workload/generators.h"

namespace pvn {

struct TestbedConfig {
  LinkParams access;       // client <-> switch
  LinkParams backhaul;     // switch <-> wan router
  LinkParams server_link;  // wan router <-> each server
  SimDuration cloud_extra_latency = milliseconds(40);  // wan <-> cloud
  std::uint64_t seed = 1;
  // Provider behaviour knobs.
  std::set<std::string> allowed_modules;  // empty = all
  double price_multiplier = 1.0;
  // Deployment lease length handed to the server (0 = no leases).
  SimDuration lease_duration = 0;
  // Survivability: adds a second mbox pool behind the switch (p3, host
  // 10.0.0.6) with a StandbyAgent; the server mirrors every deployment
  // there and promotes it when the primary MboxHost crashes.
  bool standby = false;
  SimDuration checkpoint_interval = milliseconds(200);
  // Byzantine-robustness: additional standby pools behind the switch
  // (hosts 10.0.0.7+, switch ports p4+). Only meaningful with standby;
  // the server demotes a lying pool and re-mirrors onto the next one.
  int extra_standby_pools = 0;
  // Middlebox pool parameters (memory budget / per-instance cost); applied
  // to the primary pool and every standby pool alike.
  MboxHostConfig mbox;
  // Overload control (ServerConfig pass-throughs, see server.h).
  std::size_t max_pending_deploys = 0;
  SimDuration busy_retry_after = milliseconds(500);
  std::size_t max_expiries_per_sweep = 0;
  SimDuration sweep_drain_interval = milliseconds(10);

  TestbedConfig() {
    access.rate = Rate::mbps(50);
    access.latency = milliseconds(8);
    backhaul.rate = Rate::mbps(1000);
    backhaul.latency = milliseconds(2);
    server_link.rate = Rate::mbps(1000);
    server_link.latency = milliseconds(10);
  }
};

// Well-known addresses in the testbed.
struct TestbedAddrs {
  Ipv4Addr client{10, 0, 0, 2};
  Ipv4Addr control{10, 0, 0, 5};
  Ipv4Addr standby{10, 0, 0, 6};  // only wired when TestbedConfig::standby
  Ipv4Addr web{93, 184, 216, 34};
  Ipv4Addr video{93, 184, 216, 35};
  Ipv4Addr dns{8, 8, 8, 8};
  Ipv4Addr tracker{6, 6, 6, 6};
  Ipv4Addr malicious{66, 6, 6, 6};
  Ipv4Addr cloud_gw{203, 0, 113, 5};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig cfg = {});

  // --- topology ---
  Network net;
  TestbedAddrs addrs;
  Host* client = nullptr;
  Host* control = nullptr;
  Host* web = nullptr;
  Host* video = nullptr;
  Host* dns_host = nullptr;
  Host* tracker = nullptr;
  Host* malicious = nullptr;
  VpnGateway* cloud_gw = nullptr;
  SdnSwitch* access_sw = nullptr;
  Router* wan = nullptr;
  Link* access_link = nullptr;
  Host* standby_node = nullptr;  // non-null when cfg.standby
  // Extra pools (cfg.extra_standby_pools), parallel vectors by pool index.
  std::vector<Host*> extra_standby_nodes;

  // --- access-network services ---
  std::unique_ptr<PvnStore> store;
  std::unique_ptr<MboxHost> mbox_host;
  // Warm-standby pool (cfg.standby): destroyed after the server, which
  // holds a raw pointer and a crash listener on it.
  std::unique_ptr<MboxHost> standby_mbox;
  std::unique_ptr<StandbyAgent> standby_agent;
  std::vector<std::unique_ptr<MboxHost>> extra_standby_mboxes;
  std::vector<std::unique_ptr<StandbyAgent>> extra_standby_agents;
  std::unique_ptr<Controller> controller;
  std::unique_ptr<Ledger> ledger;
  std::unique_ptr<DeploymentServer> server;
  std::unique_ptr<DhcpServer> dhcp;
  std::unique_ptr<DnsServer> dns_server;
  std::unique_ptr<EspDecapProcessor> esp_decap_proc;

  // --- resilience harness ---
  // Deterministic fault injection over the testbed's links and nodes.
  std::unique_ptr<FaultInjector> faults;
  // Client-side VPN fallback toward the cloud gateway; created inactive.
  // Hand it to a PvnClient via set_fallback for automatic failover.
  std::unique_ptr<DeviceTunnel> device_tunnel;

  // --- content / security environment ---
  std::unique_ptr<CertificateAuthority> root_ca;
  std::unique_ptr<KeyPair> web_tls_key;
  TrustStore trust;           // what a well-configured device trusts
  KeyPair dns_zone_key{777};
  KeyRegistry dns_trusted;
  std::unique_ptr<HttpServer> web_http;
  std::unique_ptr<HttpServer> video_http;
  std::unique_ptr<HttpServer> tracker_http;

  static constexpr const char* kSwitchName = "access-sw";
  static Bytes tunnel_key() { return to_bytes("testbed-tunnel-key"); }

  // Deploys `pvnc` for the client through the full discovery protocol and
  // runs the simulation until the outcome lands. Returns it.
  DeployOutcome deploy(const Pvnc& pvnc, ClientConfig ccfg = {});

  // The standard experiment PVNC (validators + pii + tracker blocking).
  Pvnc standard_pvnc(const std::string& owner = "alice-phone") const;

  // Store environment used (exposed so tests can extend it).
  StoreEnvironment store_env;

 private:
  TestbedConfig cfg_;
};

}  // namespace pvn
