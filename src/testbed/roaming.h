// Dual-access-network topology for live PVN migration (paper Fig. 1c:
// "the PVN follows the user"):
//
//            p0┌──────────────┐p1
//   client ────┤              ├──── wan Router ──┬── web server
//      │       │ access sw A  │p2                └── dns resolver
//      │       └──────────────┘└── control A (10.0.0.5)
//      │p1     ┌──────────────┐
//      └───────┤ access sw B  │p2── control B (10.0.1.5)
//              └──────────────┘p1── wan Router
//
// The client is dual-homed: port 0 on network A, port 1 on network B.
// `re_attach()` models the device roaming onto network B — its uplink moves
// to port 1 and the wan's host route for the client flips to B — while the
// old session on A keeps serving in-flight packets until the client's
// migration drains and tears it down. The networks reach each other through
// the wan, which is how the new deployment server pulls the old chain's
// state (kStateRequest handoff).
#pragma once

#include <memory>

#include "netsim/faults.h"
#include "netsim/router.h"
#include "proto/dns.h"
#include "proto/tls.h"
#include "pvn/client.h"
#include "pvn/server.h"
#include "workload/generators.h"

namespace pvn {

struct RoamingConfig {
  LinkParams access;       // client <-> each switch
  LinkParams backhaul;     // switch <-> wan / control
  LinkParams server_link;  // wan <-> servers
  std::uint64_t seed = 1;
  SimDuration lease_duration = seconds(30);
  SimDuration checkpoint_interval = milliseconds(200);

  RoamingConfig() {
    access.rate = Rate::mbps(50);
    access.latency = milliseconds(8);
    backhaul.rate = Rate::mbps(1000);
    backhaul.latency = milliseconds(2);
    server_link.rate = Rate::mbps(1000);
    server_link.latency = milliseconds(10);
  }
};

struct RoamingAddrs {
  Ipv4Addr client{10, 0, 0, 2};     // kept across the move (mobility anchor)
  Ipv4Addr control_a{10, 0, 0, 5};
  Ipv4Addr control_b{10, 0, 1, 5};
  Ipv4Addr web{93, 184, 216, 34};
  Ipv4Addr dns{8, 8, 8, 8};
  Ipv4Addr tracker{6, 6, 6, 6};
};

class RoamingTestbed {
 public:
  explicit RoamingTestbed(RoamingConfig cfg = {});

  // One access network's PVN service stack.
  struct AccessNet {
    std::unique_ptr<PvnStore> store;
    std::unique_ptr<MboxHost> mbox;
    std::unique_ptr<Controller> controller;
    std::unique_ptr<Ledger> ledger;
    std::unique_ptr<DeploymentServer> server;
  };

  // --- topology ---
  Network net;
  RoamingAddrs addrs;
  Host* client = nullptr;
  Host* control_a = nullptr;
  Host* control_b = nullptr;
  Host* web = nullptr;
  Host* dns_host = nullptr;
  Host* tracker = nullptr;
  SdnSwitch* sw_a = nullptr;
  SdnSwitch* sw_b = nullptr;
  Router* wan = nullptr;

  AccessNet a, b;

  // --- content / security environment (shared by both stores) ---
  std::unique_ptr<CertificateAuthority> root_ca;
  TrustStore trust;
  KeyPair dns_zone_key{777};
  KeyRegistry dns_trusted;
  std::unique_ptr<HttpServer> web_http;
  std::unique_ptr<DnsServer> dns_server;
  std::unique_ptr<FaultInjector> faults;
  StoreEnvironment store_env;

  static constexpr const char* kSwitchA = "access-sw-a";
  static constexpr const char* kSwitchB = "access-sw-b";

  // Moves the device onto network B: outbound traffic leaves through the
  // client's second interface and the wan's host route for the client flips
  // to B. Packets already in flight through A still get delivered (the old
  // chain serves them until the migration drain tears it down).
  void re_attach();
  bool attached_to_b() const { return attached_to_b_; }

  // A small stateful chain suitable for migration experiments.
  Pvnc roaming_pvnc(const std::string& owner = "alice-phone") const;

 private:
  RoamingConfig cfg_;
  bool attached_to_b_ = false;
};

}  // namespace pvn
