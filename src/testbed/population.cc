#include "testbed/population.h"

#include "mbox/registry.h"

namespace pvn {

const char* to_string(RogueMode mode) {
  switch (mode) {
    case RogueMode::kBogusOffers: return "bogus-offers";
    case RogueMode::kNakFlood: return "nak-flood";
    case RogueMode::kBlackhole: return "blackhole";
  }
  return "?";
}

RogueServer::RogueServer(Host& host, RogueMode mode)
    : host_(&host), mode_(mode) {
  host_->bind_udp(kPvnPort,
                  [this](Ipv4Addr src, Port sport, Port, const Bytes& payload) {
                    on_packet(src, sport, payload);
                  });
}

RogueServer::~RogueServer() { host_->unbind_udp(kPvnPort); }

void RogueServer::on_packet(Ipv4Addr src, Port sport, const Bytes& payload) {
  const auto msg = unwrap(payload);
  if (!msg) return;
  switch (msg->first) {
    case PvnMsgType::kDiscovery: {
      const auto dm = DiscoveryMessage::decode(msg->second);
      if (!dm) return;
      // Win the auction: echo back exactly what was asked for, cheaper than
      // any honest quote (pick_best_offer breaks utility ties by price).
      Offer offer;
      offer.seq = dm->seq;
      offer.deployment_server = host_->addr();
      offer.standards = dm->standards;
      offer.offered_modules = dm->modules;
      offer.total_price = 0.01;
      offer.expires_at = host_->sim().now() + seconds(30);
      offer.capacity_bytes = 1LL << 30;
      // kBogusOffers attaches terms no honest network would quote: a lease
      // shorter than any renewal cadence can sustain. Vetting rejects it
      // (kLeaseTooShort); negotiation alone does not look at the lease.
      offer.lease_duration = mode_ == RogueMode::kBogusOffers
                                 ? milliseconds(1)
                                 : seconds(30);
      ++offers_sent_;
      host_->send_udp(src, kPvnPort, sport,
                      wrap(PvnMsgType::kOffer, offer.encode()));
      break;
    }
    case PvnMsgType::kDeployRequest: {
      const auto req = DeployRequest::decode(msg->second);
      if (!req) return;
      if (mode_ == RogueMode::kNakFlood) {
        DeployNack nack;
        nack.seq = req->seq;
        nack.reason = "server busy";
        nack.code = NackCode::kBusy;
        nack.retry_after = seconds(5);
        ++naks_sent_;
        host_->send_udp(src, kPvnPort, sport,
                        wrap(PvnMsgType::kDeployNack, nack.encode()));
        return;
      }
      // kBlackhole (and a bogus-offer taker): ack a deployment that does not
      // exist. No rules are installed and no renewal will ever be answered;
      // the device is stranded until its lease heartbeat gives up.
      DeployAck ack;
      ack.seq = req->seq;
      ack.chain_id = "rogue:" + req->device_id;
      ack.dhcp_refresh = false;
      ack.lease_duration = mode_ == RogueMode::kBogusOffers ? milliseconds(1)
                                                            : seconds(30);
      ++fake_acks_;
      host_->send_udp(src, kPvnPort, sport,
                      wrap(PvnMsgType::kDeployAck, ack.encode()));
      break;
    }
    default:
      // Renewals, teardowns, state requests: silence. That IS the attack.
      break;
  }
}

Ipv4Addr PopulationTestbed::client_addr(int i) {
  return Ipv4Addr(10, 1, static_cast<std::uint8_t>(i / 250),
                  static_cast<std::uint8_t>(2 + i % 250));
}

PopulationTestbed::PopulationTestbed(PopulationConfig cfg)
    : net(cfg.seed), cfg_(cfg) {
  // --- nodes ---
  clients.reserve(static_cast<std::size_t>(cfg.clients));
  for (int i = 0; i < cfg.clients; ++i) {
    clients.push_back(&net.add_node<Host>("client-" + std::to_string(i),
                                          client_addr(i)));
  }
  agg = &net.add_node<Router>("agg");
  sw_a = &net.add_node<SdnSwitch>(kSwitchA, 2);
  sw_b = &net.add_node<SdnSwitch>(kSwitchB, 2);
  control_a = &net.add_node<Host>("control-a", addrs.control_a);
  control_b = &net.add_node<Host>("control-b", addrs.control_b);
  if (cfg.rogue) {
    rogue_host = &net.add_node<Host>("rogue", addrs.rogue);
  }

  // --- links --- (agg ports: 0..N-1 clients, N = sw A, N+1 = sw B,
  // N+2 = rogue)
  for (Host* c : clients) net.connect(*c, *agg, cfg.access);
  net.connect(*agg, *sw_a, cfg.backhaul);       // swA p0
  net.connect(*agg, *sw_b, cfg.backhaul);       // swB p0
  if (cfg.rogue) net.connect(*agg, *rogue_host, cfg.backhaul);
  net.connect(*sw_a, *control_a, cfg.backhaul); // swA p1
  net.connect(*sw_b, *control_b, cfg.backhaul); // swB p1

  // --- routing ---
  const int n = cfg.clients;
  for (int i = 0; i < n; ++i) {
    agg->add_route(Prefix{client_addr(i), 32}, i);
  }
  agg->add_route(*Prefix::parse("10.0.0.0/24"), n);
  agg->add_route(*Prefix::parse("10.0.1.0/24"), n + 1);
  if (cfg.rogue) agg->add_route(*Prefix::parse("10.0.2.0/24"), n + 2);

  // Infrastructure rules: each switch forwards its control host's traffic
  // up to p1 and everything else back toward the aggregation router, which
  // routes by destination. The switches are single-homed onto the agg, so
  // "client side" and "wan side" are the same port.
  //
  // GCC 12's -Wmaybe-uninitialized trips on the inlined FlowTable insert of
  // the action variant here (a known optional/variant false positive); the
  // identical pattern in testbed.cc happens not to tickle it.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmaybe-uninitialized"
  for (int s = 0; s < 2; ++s) {
    SdnSwitch& sw = s == 0 ? *sw_a : *sw_b;
    const Ipv4Addr control = s == 0 ? addrs.control_a : addrs.control_b;

    FlowRule to_control;
    to_control.priority = 0;
    to_control.match.dst = Prefix{control, 32};
    to_control.cookie = "infra";
    to_control.actions.push_back(ActOutput{1});
    sw.table(0).add(std::move(to_control));

    FlowRule to_agg;
    to_agg.priority = 0;
    to_agg.cookie = "infra";
    to_agg.actions.push_back(ActOutput{0});
    sw.table(0).add(std::move(to_agg));
  }
#pragma GCC diagnostic pop

  // --- per-network PVN stacks ---
  // The store only needs tracker-blocker (pvnc_for), which has no external
  // environment dependencies.
  const auto build = [this](AccessNet& an, Host& control, SdnSwitch& sw,
                            const char* sw_name, const char* net_name) {
    an.store = std::make_unique<PvnStore>(make_standard_store({}));
    MboxHostConfig mcfg;
    mcfg.memory_budget = cfg_.mbox_budget;
    an.mbox = std::make_unique<MboxHost>(net.sim(), mcfg);
    an.controller = std::make_unique<Controller>(net.sim());
    an.controller->manage(sw);
    an.ledger = std::make_unique<Ledger>();
    ServerConfig scfg;
    scfg.switch_name = sw_name;
    scfg.switch_client_port = 0;
    scfg.switch_wan_port = 0;  // single-homed: the agg routes by destination
    scfg.switch_control_port = 1;
    scfg.lease_duration = cfg_.lease_duration;
    scfg.checkpoint_interval = cfg_.checkpoint_interval;
    scfg.max_pending_deploys = cfg_.max_pending_deploys;
    scfg.max_expiries_per_sweep = cfg_.max_expiries_per_sweep;
    scfg.network_name = net_name;
    an.server = std::make_unique<DeploymentServer>(
        control, *an.store, *an.mbox, *an.controller, *an.ledger, scfg);
  };
  build(a, *control_a, *sw_a, kSwitchA, "pop-net-a");
  build(b, *control_b, *sw_b, kSwitchB, "pop-net-b");

  if (cfg.rogue) {
    rogue = std::make_unique<RogueServer>(*rogue_host, cfg.rogue_mode);
  }
}

Pvnc PopulationTestbed::pvnc_for(int i) const {
  Pvnc pvnc;
  pvnc.name = "dev-" + std::to_string(i);
  pvnc.chain.push_back(PvncModule{"tracker-blocker", {}});
  return pvnc;
}

void PopulationTestbed::make_agents(ClientConfig base, bool shared_scoreboard) {
  agents.clear();
  agents.reserve(clients.size());
  if (shared_scoreboard) base.scoreboard = &scoreboard;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    agents.push_back(std::make_unique<PvnClient>(
        *clients[i], pvnc_for(static_cast<int>(i)), base));
  }
}

int PopulationTestbed::active_agents() const {
  int n = 0;
  for (const auto& agent : agents) {
    if (agent->state() == SessionState::kActive) ++n;
  }
  return n;
}

int PopulationTestbed::fallback_agents() const {
  int n = 0;
  for (const auto& agent : agents) {
    if (agent->state() == SessionState::kFallback) ++n;
  }
  return n;
}

}  // namespace pvn
