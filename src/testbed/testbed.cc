#include "testbed/testbed.h"

namespace pvn {

Testbed::Testbed(TestbedConfig cfg) : net(cfg.seed), cfg_(cfg) {
  // --- nodes ---
  client = &net.add_node<Host>("client", addrs.client);
  control = &net.add_node<Host>("control", addrs.control);
  web = &net.add_node<Host>("web", addrs.web);
  video = &net.add_node<Host>("video", addrs.video);
  dns_host = &net.add_node<Host>("dns", addrs.dns);
  tracker = &net.add_node<Host>("tracker", addrs.tracker);
  malicious = &net.add_node<Host>("malicious", addrs.malicious);
  cloud_gw = &net.add_node<VpnGateway>("cloud-gw", addrs.cloud_gw,
                                       tunnel_key());
  access_sw = &net.add_node<SdnSwitch>(kSwitchName, 2);
  wan = &net.add_node<Router>("wan");
  if (cfg.standby) {
    standby_node = &net.add_node<Host>("standby", addrs.standby);
    for (int i = 0; i < cfg.extra_standby_pools; ++i) {
      extra_standby_nodes.push_back(&net.add_node<Host>(
          "standby-" + std::to_string(i + 1),
          Ipv4Addr(10, 0, 0, static_cast<std::uint8_t>(7 + i))));
    }
  }

  // --- links ---
  access_link = &net.connect(*client, *access_sw, cfg.access);  // sw p0
  net.connect(*access_sw, *wan, cfg.backhaul);                  // sw p1
  net.connect(*access_sw, *control, cfg.backhaul);              // sw p2
  if (cfg.standby) {
    net.connect(*access_sw, *standby_node, cfg.backhaul);       // sw p3
    for (Host* node : extra_standby_nodes) {                    // sw p4+
      net.connect(*access_sw, *node, cfg.backhaul);
    }
  }
  net.connect(*wan, *web, cfg.server_link);      // wan p1
  net.connect(*wan, *video, cfg.server_link);    // wan p2
  net.connect(*wan, *dns_host, cfg.server_link); // wan p3
  net.connect(*wan, *tracker, cfg.server_link);  // wan p4
  net.connect(*wan, *malicious, cfg.server_link);// wan p5
  LinkParams cloud_link = cfg.server_link;
  cloud_link.latency = cfg.server_link.latency + cfg.cloud_extra_latency;
  net.connect(*wan, *cloud_gw, cloud_link);      // wan p6

  // --- routing ---
  wan->add_route(*Prefix::parse("10.0.0.0/24"), 0);
  wan->add_route(Prefix{addrs.web, 32}, 1);
  wan->add_route(Prefix{addrs.video, 32}, 2);
  wan->add_route(Prefix{addrs.dns, 32}, 3);
  wan->add_route(Prefix{addrs.tracker, 32}, 4);
  wan->add_route(Prefix{addrs.malicious, 32}, 5);
  wan->add_route(Prefix{addrs.cloud_gw, 32}, 6);
  // Cloud gateway reaches the world back through the wan router.

  // Infrastructure rules: plain L3 forwarding at the lowest priority.
  {
    FlowRule to_control;
    to_control.priority = 0;
    to_control.match.dst = Prefix{addrs.control, 32};
    to_control.cookie = "infra";
    to_control.actions.push_back(ActOutput{2});
    access_sw->table(0).add(to_control);

    FlowRule to_client;
    to_client.priority = 0;
    to_client.match.dst = *Prefix::parse("10.0.0.0/24");
    to_client.cookie = "infra";
    to_client.actions.push_back(ActOutput{0});
    access_sw->table(0).add(to_client);

    FlowRule to_wan;
    to_wan.priority = 0;
    to_wan.cookie = "infra";
    to_wan.actions.push_back(ActOutput{1});
    access_sw->table(0).add(to_wan);

    if (cfg.standby) {
      FlowRule to_standby;
      to_standby.priority = 1;  // beats the 10.0.0.0/24 -> p0 rule
      to_standby.match.dst = Prefix{addrs.standby, 32};
      to_standby.cookie = "infra";
      to_standby.actions.push_back(ActOutput{3});
      access_sw->table(0).add(to_standby);
      for (std::size_t i = 0; i < extra_standby_nodes.size(); ++i) {
        FlowRule to_extra;
        to_extra.priority = 1;
        to_extra.match.dst = Prefix{extra_standby_nodes[i]->addr(), 32};
        to_extra.cookie = "infra";
        to_extra.actions.push_back(ActOutput{4 + static_cast<int>(i)});
        access_sw->table(0).add(to_extra);
      }
    }
  }
  // Tunnel encapsulation hook for ActTunnel (Fig. 1c), and the matching
  // decapsulation of returning ESP traffic from the cloud gateway.
  access_sw->set_tunnel_encap([this](Packet inner, Ipv4Addr gateway) {
    static std::uint32_t seq = 0;
    return esp_encap(inner, Ipv4Addr(10, 0, 0, 1), gateway, tunnel_key(),
                     /*spi=*/1, ++seq);
  });
  esp_decap_proc = std::make_unique<EspDecapProcessor>(tunnel_key());
  access_sw->register_processor("esp-decap", esp_decap_proc.get());
  {
    FlowRule decap;
    decap.priority = 20000;
    decap.match.proto = IpProto::kEsp;
    decap.match.dst = *Prefix::parse("10.0.0.1");
    decap.cookie = "infra";
    decap.actions.push_back(ActMbox{"esp-decap"});
    decap.actions.push_back(ActOutput{0});
    access_sw->table(0).add(decap);
  }

  // --- security environment ---
  root_ca = std::make_unique<CertificateAuthority>("TestbedRootCA", 11);
  web_tls_key = std::make_unique<KeyPair>(12);
  trust.trust_root(*root_ca);
  dns_trusted.trust(dns_zone_key);

  // --- servers ---
  web_http = std::make_unique<HttpServer>(*web);
  video_http = std::make_unique<HttpServer>(*video);
  install_video_server(*video_http, 250 * 1000);
  tracker_http = std::make_unique<HttpServer>(*tracker);
  dns_server = std::make_unique<DnsServer>(*dns_host, &dns_zone_key);
  dns_server->add_record("web.example", addrs.web);
  dns_server->add_record("video.example", addrs.video);
  // A replicated CDN service: authoritative DNS hands out the far replica;
  // the replica-selector module can steer clients to the near one.
  dns_server->add_record("cdn.example", addrs.video, 300, /*sign=*/false);

  // --- PVN services on the control host ---
  store_env.tls_trust = &trust;
  store_env.dns_zone_keys = &dns_trusted;
  store_env.dns_zone_key_id = dns_zone_key.public_key();
  store_env.dns_pins = {{"web.example", addrs.web}};
  store_env.dns_require_signed = {"bank.example"};
  store_env.tracker_addrs = {addrs.tracker};
  store_env.pii_patterns = {"imei=", "lat=", "password=", "email="};
  store_env.malware_signatures = {to_bytes("EVIL_SHELLCODE")};
  store_env.replica_services = {{"cdn.example", {addrs.web, addrs.video}}};
  store_env.replica_rtt = {{addrs.web, milliseconds(20)},
                           {addrs.video, milliseconds(90)}};
  store = std::make_unique<PvnStore>(make_standard_store(store_env));

  mbox_host = std::make_unique<MboxHost>(net.sim(), cfg.mbox);
  if (cfg.standby) {
    standby_mbox = std::make_unique<MboxHost>(net.sim(), cfg.mbox);
    standby_agent =
        std::make_unique<StandbyAgent>(*standby_node, *standby_mbox);
    for (Host* node : extra_standby_nodes) {
      extra_standby_mboxes.push_back(
          std::make_unique<MboxHost>(net.sim(), cfg.mbox));
      extra_standby_agents.push_back(std::make_unique<StandbyAgent>(
          *node, *extra_standby_mboxes.back()));
    }
  }
  controller = std::make_unique<Controller>(net.sim());
  controller->manage(*access_sw);
  ledger = std::make_unique<Ledger>();

  ServerConfig scfg;
  scfg.switch_name = kSwitchName;
  scfg.switch_client_port = 0;
  scfg.switch_wan_port = 1;
  scfg.allowed_modules = cfg.allowed_modules;
  scfg.price_multiplier = cfg.price_multiplier;
  scfg.lease_duration = cfg.lease_duration;
  scfg.max_pending_deploys = cfg.max_pending_deploys;
  scfg.busy_retry_after = cfg.busy_retry_after;
  scfg.max_expiries_per_sweep = cfg.max_expiries_per_sweep;
  scfg.sweep_drain_interval = cfg.sweep_drain_interval;
  if (cfg.standby) {
    scfg.standby_host = standby_mbox.get();
    scfg.standby_addr = addrs.standby;
    scfg.checkpoint_interval = cfg.checkpoint_interval;
    for (std::size_t i = 0; i < extra_standby_mboxes.size(); ++i) {
      scfg.extra_standbys.push_back(
          {extra_standby_mboxes[i].get(), extra_standby_nodes[i]->addr()});
    }
  }
  server = std::make_unique<DeploymentServer>(*control, *store, *mbox_host,
                                              *controller, *ledger, scfg);

  dhcp = std::make_unique<DhcpServer>(*control, Ipv4Addr(10, 0, 0, 50), 100);
  dhcp->advertise_pvn(addrs.control, "openflow-lite,mbox-v1");

  // --- resilience harness ---
  faults = std::make_unique<FaultInjector>(net);
  device_tunnel =
      std::make_unique<DeviceTunnel>(*client, addrs.cloud_gw, tunnel_key());
}

Pvnc Testbed::standard_pvnc(const std::string& owner) const {
  Pvnc pvnc;
  pvnc.name = owner;
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"dns-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"pii-detector", {{"action", "block"}}});
  pvnc.chain.push_back(PvncModule{"tracker-blocker", {}});
  return pvnc;
}

DeployOutcome Testbed::deploy(const Pvnc& pvnc, ClientConfig ccfg) {
  PvnClient agent(*client, pvnc, ccfg);
  DeployOutcome outcome;
  bool done = false;
  agent.discover_and_deploy(addrs.control, [&](const DeployOutcome& o) {
    outcome = o;
    done = true;
  });
  net.sim().run_until(net.sim().now() + seconds(30));
  (void)done;
  return outcome;
}

}  // namespace pvn
