// Inline middlebox modules — the paper's §4 "PVN-enabled functionality":
//   TlsValidator   — HTTPS/TLS Enhancements (validates chains the app won't)
//   DnsValidator   — DNS Validation (DNSSEC-lite + pinning)
//   PiiDetector    — Detecting and Blocking PII (ReCon-style)
//   TrackerBlocker — tracker/ad blocking by destination
//   MalwareDetector— signature-based malware blocking
//   Classifier     — content classification feeding per-class policies
//                    (Fig. 1a: web vs video/image)
#pragma once

#include <map>
#include <set>

#include "mbox/middlebox.h"
#include "proto/dns.h"
#include "proto/tls.h"

namespace pvn {

enum class EnforcementMode { kWarn, kBlock };

// --- TlsValidator -----------------------------------------------------------

// Reassembles TLS handshakes from TCP flows on the configured port and
// validates the server certificate chain against the device's trust store.
// On failure in kBlock mode it drops the ServerHello and injects RSTs at
// both endpoints, killing the connection before any data leaks.
class TlsValidator : public Middlebox {
 public:
  TlsValidator(const TrustStore& trust, EnforcementMode mode,
               Port tls_port = 443);

  const std::string& name() const override { return name_; }
  Verdict process(Packet& pkt, MboxContext& ctx) override;
  SimDuration extra_delay() const override { return microseconds(20); }
  Bytes serialize_state() const override;
  bool restore_state(const Bytes& state, std::uint32_t version) override;

  std::uint64_t handshakes_checked() const { return checked_; }
  std::uint64_t handshakes_blocked() const { return blocked_; }

 private:
  struct FlowState {
    std::uint32_t next_seq = 0;
    bool synced = false;
    bool gave_up = false;
    Bytes buffer;  // contiguous in-order stream bytes not yet framed
    std::string sni;  // client->server direction only
    bool verdict_done = false;
  };

  FlowState& state_for(const FlowKey& key);
  Verdict on_record(const FlowKey& key, FlowState& st, const TlsRecord& rec,
                    Packet& pkt, MboxContext& ctx);
  void inject_rsts(const Packet& server_hello_pkt, MboxContext& ctx);

  std::string name_ = "tls-validator";
  const TrustStore* trust_;
  EnforcementMode mode_;
  Port tls_port_;
  std::map<FlowKey, FlowState> flows_;
  std::map<FlowKey, std::string> sni_by_server_flow_;
  std::uint64_t checked_ = 0;
  std::uint64_t blocked_ = 0;
  bool pending_drop_ = false;
};

// --- DnsValidator -----------------------------------------------------------

class DnsValidator : public Middlebox {
 public:
  // `trusted_zone_keys`/`zone_key_id`: DNSSEC-lite validation.
  // `pins`: name -> expected address, models cross-checking open resolvers.
  // `require_signed`: names that must carry a valid signature (an unsigned
  // answer for them is treated as forged — the DNSSEC expectation).
  DnsValidator(const KeyRegistry* trusted_zone_keys, PublicKey zone_key_id,
               std::map<std::string, Ipv4Addr> pins, EnforcementMode mode,
               std::set<std::string> require_signed = {});

  const std::string& name() const override { return name_; }
  Verdict process(Packet& pkt, MboxContext& ctx) override;
  SimDuration extra_delay() const override { return microseconds(10); }
  Bytes serialize_state() const override;
  bool restore_state(const Bytes& state, std::uint32_t version) override;

  std::uint64_t responses_checked() const { return checked_; }
  std::uint64_t responses_blocked() const { return blocked_; }

 private:
  std::string name_ = "dns-validator";
  const KeyRegistry* trusted_;
  PublicKey zone_key_id_;
  std::map<std::string, Ipv4Addr> pins_;
  EnforcementMode mode_;
  std::set<std::string> require_signed_;
  std::uint64_t checked_ = 0;
  std::uint64_t blocked_ = 0;
};

// --- PiiDetector ------------------------------------------------------------

enum class PiiAction { kMonitor, kBlock, kScrub };

class PiiDetector : public Middlebox {
 public:
  PiiDetector(std::vector<std::string> patterns, PiiAction action);

  const std::string& name() const override { return name_; }
  Verdict process(Packet& pkt, MboxContext& ctx) override;
  // PII scanning is the costliest inline module (string search over payload).
  SimDuration extra_delay() const override { return microseconds(35); }
  Bytes serialize_state() const override;
  bool restore_state(const Bytes& state, std::uint32_t version) override;

  std::uint64_t leaks_found() const { return leaks_; }

 private:
  std::string name_ = "pii-detector";
  std::vector<std::string> patterns_;
  PiiAction action_;
  std::uint64_t leaks_ = 0;
};

// --- TrackerBlocker -----------------------------------------------------------

class TrackerBlocker : public Middlebox {
 public:
  explicit TrackerBlocker(std::set<Ipv4Addr> tracker_addrs);

  const std::string& name() const override { return name_; }
  Verdict process(Packet& pkt, MboxContext& ctx) override;
  Bytes serialize_state() const override;
  bool restore_state(const Bytes& state, std::uint32_t version) override;

  std::uint64_t blocked() const { return blocked_; }

 private:
  std::string name_ = "tracker-blocker";
  std::set<Ipv4Addr> trackers_;
  std::uint64_t blocked_ = 0;
};

// --- MalwareDetector ------------------------------------------------------------

class MalwareDetector : public Middlebox {
 public:
  MalwareDetector(std::vector<Bytes> signatures, EnforcementMode mode);

  const std::string& name() const override { return name_; }
  Verdict process(Packet& pkt, MboxContext& ctx) override;
  SimDuration extra_delay() const override { return microseconds(25); }
  Bytes serialize_state() const override;
  bool restore_state(const Bytes& state, std::uint32_t version) override;

  std::uint64_t detections() const { return detections_; }

 private:
  std::string name_ = "malware-detector";
  std::vector<Bytes> signatures_;
  EnforcementMode mode_;
  std::uint64_t detections_ = 0;
};

// --- Classifier -----------------------------------------------------------------

// Stateful content classifier: watches HTTP response headers and request
// paths; once a flow is classified, every subsequent packet of that flow
// (both directions) is marked with the class's DSCP value, which later
// tables/meters match on (Fig. 1a).
class Classifier : public Middlebox {
 public:
  struct Rule {
    std::string substring;  // matched against payload text
    std::uint8_t tos;
  };

  explicit Classifier(std::vector<Rule> rules);

  const std::string& name() const override { return name_; }
  Verdict process(Packet& pkt, MboxContext& ctx) override;
  Bytes serialize_state() const override;
  bool restore_state(const Bytes& state, std::uint32_t version) override;

  std::uint64_t flows_classified() const { return classified_; }

 private:
  std::string name_ = "classifier";
  std::vector<Rule> rules_;
  std::map<FlowKey, std::uint8_t> flow_class_;
  std::uint64_t classified_ = 0;
};

// --- ReplicaSelector ---------------------------------------------------------------

// Client-assisted replica selection (paper §4 "Other applications"): the
// middlebox rewrites unsigned DNS answers for replicated services to the
// replica with the lowest measured RTT from this access network. Signed
// answers are never touched (a rewrite would break the signature — those
// services must do replica selection themselves).
class ReplicaSelector : public Middlebox {
 public:
  struct Service {
    std::vector<Ipv4Addr> replicas;
  };

  // `rtt_of`: the network's RTT estimates per replica (fed by the same
  // probing machinery as the remote-PVN locator).
  ReplicaSelector(std::map<std::string, Service> services,
                  std::map<Ipv4Addr, SimDuration> rtt_of);

  const std::string& name() const override { return name_; }
  Verdict process(Packet& pkt, MboxContext& ctx) override;
  SimDuration extra_delay() const override { return microseconds(15); }

  std::uint64_t rewrites() const { return rewrites_; }

  // Exposed for tests: the replica this selector would pick for a service.
  Ipv4Addr best_replica(const std::string& service_name) const;

 private:
  std::string name_ = "replica-selector";
  std::map<std::string, Service> services_;
  std::map<Ipv4Addr, SimDuration> rtt_;
  std::uint64_t rewrites_ = 0;
};

// Payload substring search helper shared by the DPI modules.
bool payload_contains(const Bytes& haystack, const std::string& needle);
bool payload_contains(const Bytes& haystack, const Bytes& needle);

}  // namespace pvn
