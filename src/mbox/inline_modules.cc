#include "mbox/inline_modules.h"

#include <algorithm>

namespace pvn {

bool payload_contains(const Bytes& haystack, const Bytes& needle) {
  if (needle.empty() || haystack.size() < needle.size()) return false;
  return std::search(haystack.begin(), haystack.end(), needle.begin(),
                     needle.end()) != haystack.end();
}

bool payload_contains(const Bytes& haystack, const std::string& needle) {
  return payload_contains(haystack, to_bytes(needle));
}

namespace {

// Counter-only module state: a fixed run of u64s, validated before commit.
Bytes counters_state(std::initializer_list<std::uint64_t> vals) {
  ByteWriter w;
  for (const std::uint64_t v : vals) w.u64(v);
  return std::move(w).take();
}

bool restore_counters(const Bytes& state,
                      std::initializer_list<std::uint64_t*> out) {
  ByteReader r(state);
  std::vector<std::uint64_t> tmp;
  tmp.reserve(out.size());
  for (std::size_t i = 0; i < out.size(); ++i) tmp.push_back(r.u64());
  if (!r.exhausted()) return false;
  std::size_t i = 0;
  for (std::uint64_t* p : out) *p = tmp[i++];
  return true;
}

}  // namespace

// --- TlsValidator -----------------------------------------------------------

TlsValidator::TlsValidator(const TrustStore& trust, EnforcementMode mode,
                           Port tls_port)
    : trust_(&trust), mode_(mode), tls_port_(tls_port) {}

TlsValidator::FlowState& TlsValidator::state_for(const FlowKey& key) {
  return flows_[key];
}

void TlsValidator::inject_rsts(const Packet& server_hello_pkt,
                               MboxContext& ctx) {
  const auto seg = parse_tcp(server_hello_pkt.l4);
  if (!seg || ctx.injected == nullptr) return;
  // RST toward the client, spoofed from the server.
  TcpHeader to_client;
  to_client.src_port = seg->hdr.src_port;
  to_client.dst_port = seg->hdr.dst_port;
  to_client.seq = seg->hdr.seq;
  to_client.flags = kTcpRst;
  Packet rst1;
  rst1.ip.src = server_hello_pkt.ip.src;
  rst1.ip.dst = server_hello_pkt.ip.dst;
  rst1.ip.proto = IpProto::kTcp;
  rst1.l4 = serialize_tcp(to_client, {});
  ctx.injected->push_back(std::move(rst1));
  // RST toward the server, spoofed from the client.
  TcpHeader to_server;
  to_server.src_port = seg->hdr.dst_port;
  to_server.dst_port = seg->hdr.src_port;
  to_server.seq = seg->hdr.ack;
  to_server.flags = kTcpRst;
  Packet rst2;
  rst2.ip.src = server_hello_pkt.ip.dst;
  rst2.ip.dst = server_hello_pkt.ip.src;
  rst2.ip.proto = IpProto::kTcp;
  rst2.l4 = serialize_tcp(to_server, {});
  ctx.injected->push_back(std::move(rst2));
}

Middlebox::Verdict TlsValidator::on_record(const FlowKey& key, FlowState& st,
                                           const TlsRecord& rec, Packet& pkt,
                                           MboxContext& ctx) {
  switch (rec.type) {
    case TlsContentType::kClientHello: {
      ByteReader r(rec.body);
      st.sni = r.str();
      // Remember the SNI for the reverse (server->client) flow.
      sni_by_server_flow_[key.reversed()] = st.sni;
      return Verdict::kForward;
    }
    case TlsContentType::kServerHello: {
      if (st.verdict_done) return Verdict::kForward;
      st.verdict_done = true;
      ++checked_;
      ByteReader r(rec.body);
      r.blob();  // server nonce
      const auto chain = decode_chain(r.blob());
      std::string sni;
      if (const auto it = sni_by_server_flow_.find(key);
          it != sni_by_server_flow_.end()) {
        sni = it->second;
      }
      const CertStatus status =
          chain ? validate_chain(*chain, *trust_, ctx.now, sni)
                : CertStatus::kEmptyChain;
      if (status == CertStatus::kOk) return Verdict::kForward;
      ctx.report(name_, "tls-invalid-cert",
                 "sni=" + sni + " status=" + to_string(status));
      if (mode_ == EnforcementMode::kBlock) {
        ++blocked_;
        inject_rsts(pkt, ctx);
        return Verdict::kDrop;
      }
      return Verdict::kForward;
    }
    default:
      return Verdict::kForward;
  }
}

Bytes TlsValidator::serialize_state() const {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(flows_.size()));
  for (const auto& [key, st] : flows_) {
    write_flow_key(w, key);
    w.u32(st.next_seq);
    w.u8(st.synced ? 1 : 0);
    w.u8(st.gave_up ? 1 : 0);
    w.blob(st.buffer);
    w.str(st.sni);
    w.u8(st.verdict_done ? 1 : 0);
  }
  w.u16(static_cast<std::uint16_t>(sni_by_server_flow_.size()));
  for (const auto& [key, sni] : sni_by_server_flow_) {
    write_flow_key(w, key);
    w.str(sni);
  }
  w.u64(checked_);
  w.u64(blocked_);
  return std::move(w).take();
}

bool TlsValidator::restore_state(const Bytes& state, std::uint32_t version) {
  if (version != state_version()) return false;
  ByteReader r(state);
  std::map<FlowKey, FlowState> flows;
  const std::uint16_t n_flows = r.u16();
  if (!r.ok()) return false;
  for (std::uint16_t i = 0; i < n_flows; ++i) {
    const FlowKey key = read_flow_key(r);
    FlowState st;
    st.next_seq = r.u32();
    st.synced = r.u8() != 0;
    st.gave_up = r.u8() != 0;
    st.buffer = r.blob();
    st.sni = r.str();
    st.verdict_done = r.u8() != 0;
    if (!r.ok()) return false;
    flows[key] = std::move(st);
  }
  std::map<FlowKey, std::string> snis;
  const std::uint16_t n_snis = r.u16();
  if (!r.ok()) return false;
  for (std::uint16_t i = 0; i < n_snis; ++i) {
    const FlowKey key = read_flow_key(r);
    snis[key] = r.str();
    if (!r.ok()) return false;
  }
  const std::uint64_t checked = r.u64();
  const std::uint64_t blocked = r.u64();
  if (!r.exhausted()) return false;
  flows_ = std::move(flows);
  sni_by_server_flow_ = std::move(snis);
  checked_ = checked;
  blocked_ = blocked;
  return true;
}

Middlebox::Verdict TlsValidator::process(Packet& pkt, MboxContext& ctx) {
  if (pkt.ip.proto != IpProto::kTcp) return Verdict::kForward;
  const auto seg = parse_tcp(pkt.l4);
  if (!seg) return Verdict::kForward;
  if (seg->hdr.src_port != tls_port_ && seg->hdr.dst_port != tls_port_) {
    return Verdict::kForward;
  }
  const FlowKey key = FlowKey::of(pkt);
  FlowState& st = state_for(key);
  if (st.gave_up) return Verdict::kForward;

  if (seg->hdr.syn()) {
    st.next_seq = seg->hdr.seq + 1;
    st.synced = true;
    return Verdict::kForward;
  }
  if (seg->payload.empty()) return Verdict::kForward;
  if (!st.synced) {
    st.gave_up = true;  // joined mid-flow; cannot reassemble reliably
    return Verdict::kForward;
  }
  if (seg->hdr.seq != st.next_seq) {
    if (seg->hdr.seq + seg->payload.size() <= st.next_seq) {
      return Verdict::kForward;  // pure duplicate: already inspected
    }
    // Out-of-order beyond our simple tracker: stop inspecting this flow.
    st.gave_up = true;
    ctx.report(name_, "tls-unverifiable", "out-of-order flow");
    return Verdict::kForward;
  }
  st.next_seq += static_cast<std::uint32_t>(seg->payload.size());

  // Reassemble complete length-prefixed frames, keeping any remainder
  // buffered for the next segment.
  std::vector<Bytes> frames;
  st.buffer.insert(st.buffer.end(), seg->payload.begin(), seg->payload.end());
  for (;;) {
    if (st.buffer.size() < 4) break;
    const std::uint32_t len = (std::uint32_t(st.buffer[0]) << 24) |
                              (std::uint32_t(st.buffer[1]) << 16) |
                              (std::uint32_t(st.buffer[2]) << 8) |
                              std::uint32_t(st.buffer[3]);
    if (st.buffer.size() < 4u + len) break;
    frames.emplace_back(st.buffer.begin() + 4, st.buffer.begin() + 4 + len);
    st.buffer.erase(st.buffer.begin(), st.buffer.begin() + 4 + len);
  }
  Verdict verdict = Verdict::kForward;
  for (const Bytes& frame : frames) {
    const auto rec = TlsRecord::decode(frame);
    if (!rec) continue;
    const Verdict v = on_record(key, st, *rec, pkt, ctx);
    if (v == Verdict::kDrop) verdict = Verdict::kDrop;
  }
  return verdict;
}

// --- DnsValidator -----------------------------------------------------------

DnsValidator::DnsValidator(const KeyRegistry* trusted_zone_keys,
                           PublicKey zone_key_id,
                           std::map<std::string, Ipv4Addr> pins,
                           EnforcementMode mode,
                           std::set<std::string> require_signed)
    : trusted_(trusted_zone_keys),
      zone_key_id_(zone_key_id),
      pins_(std::move(pins)),
      mode_(mode),
      require_signed_(std::move(require_signed)) {}

Middlebox::Verdict DnsValidator::process(Packet& pkt, MboxContext& ctx) {
  if (pkt.ip.proto != IpProto::kUdp) return Verdict::kForward;
  const auto dg = parse_udp(pkt.l4);
  if (!dg || dg->hdr.src_port != kDnsPort) return Verdict::kForward;
  const auto msg = DnsMessage::decode(dg->payload);
  if (!msg || !msg->response) return Verdict::kForward;
  ++checked_;

  for (const DnsRecord& rec : msg->answers) {
    bool bad = false;
    std::string why;
    if (rec.signed_record) {
      if (trusted_ != nullptr &&
          !trusted_->verify(zone_key_id_, rec.canonical_bytes(),
                            rec.signature)) {
        bad = true;
        why = "bad-signature";
      }
    } else if (require_signed_.contains(rec.name)) {
      bad = true;
      why = "unsigned answer for a signed zone";
    } else if (const auto pin = pins_.find(rec.name); pin != pins_.end()) {
      if (pin->second != rec.addr) {
        bad = true;
        why = "pin-mismatch got=" + rec.addr.to_string() +
              " expected=" + pin->second.to_string();
      }
    }
    if (bad) {
      ctx.report(name_, "dns-forgery", "name=" + rec.name + " " + why);
      if (mode_ == EnforcementMode::kBlock) {
        ++blocked_;
        return Verdict::kDrop;
      }
    }
  }
  return Verdict::kForward;
}

Bytes DnsValidator::serialize_state() const {
  return counters_state({checked_, blocked_});
}

bool DnsValidator::restore_state(const Bytes& state, std::uint32_t version) {
  return version == state_version() &&
         restore_counters(state, {&checked_, &blocked_});
}

// --- PiiDetector ------------------------------------------------------------

PiiDetector::PiiDetector(std::vector<std::string> patterns, PiiAction action)
    : patterns_(std::move(patterns)), action_(action) {}

Middlebox::Verdict PiiDetector::process(Packet& pkt, MboxContext& ctx) {
  if (pkt.l4.empty()) return Verdict::kForward;
  // Scan the transport payload only (skip the L4 header bytes).
  std::size_t header = 0;
  if (pkt.ip.proto == IpProto::kTcp) header = TcpHeader::kWireSize;
  if (pkt.ip.proto == IpProto::kUdp) header = UdpHeader::kWireSize;
  if (pkt.l4.size() <= header) return Verdict::kForward;

  bool found_any = false;
  for (const std::string& pattern : patterns_) {
    const Bytes needle = to_bytes(pattern);
    // Track positions by offset: scrubbing detaches the CoW payload, which
    // invalidates iterators into the previous buffer.
    std::size_t pos = header;
    while (true) {
      const Bytes& view = pkt.l4;
      const auto it =
          std::search(view.begin() + static_cast<std::ptrdiff_t>(pos),
                      view.end(), needle.begin(), needle.end());
      if (it == view.end()) break;
      pos = static_cast<std::size_t>(it - view.begin());
      found_any = true;
      ++leaks_;
      ctx.report(name_, "pii-leak",
                 "pattern=" + pattern + " dst=" + pkt.ip.dst.to_string());
      if (action_ == PiiAction::kScrub) {
        Bytes& mut = pkt.l4.mutate();
        std::fill(mut.begin() + static_cast<std::ptrdiff_t>(pos),
                  mut.begin() + static_cast<std::ptrdiff_t>(pos +
                                                            needle.size()),
                  std::uint8_t('x'));
      }
      ++pos;
    }
  }
  if (found_any && action_ == PiiAction::kBlock) return Verdict::kDrop;
  return Verdict::kForward;
}

Bytes PiiDetector::serialize_state() const { return counters_state({leaks_}); }

bool PiiDetector::restore_state(const Bytes& state, std::uint32_t version) {
  return version == state_version() && restore_counters(state, {&leaks_});
}

// --- TrackerBlocker -----------------------------------------------------------

TrackerBlocker::TrackerBlocker(std::set<Ipv4Addr> tracker_addrs)
    : trackers_(std::move(tracker_addrs)) {}

Middlebox::Verdict TrackerBlocker::process(Packet& pkt, MboxContext& ctx) {
  if (!trackers_.contains(pkt.ip.dst)) return Verdict::kForward;
  ++blocked_;
  ctx.report(name_, "tracker-blocked", "dst=" + pkt.ip.dst.to_string());
  return Verdict::kDrop;
}

Bytes TrackerBlocker::serialize_state() const {
  return counters_state({blocked_});
}

bool TrackerBlocker::restore_state(const Bytes& state, std::uint32_t version) {
  return version == state_version() && restore_counters(state, {&blocked_});
}

// --- MalwareDetector ------------------------------------------------------------

MalwareDetector::MalwareDetector(std::vector<Bytes> signatures,
                                 EnforcementMode mode)
    : signatures_(std::move(signatures)), mode_(mode) {}

Middlebox::Verdict MalwareDetector::process(Packet& pkt, MboxContext& ctx) {
  for (const Bytes& sig : signatures_) {
    if (payload_contains(pkt.l4, sig)) {
      ++detections_;
      ctx.report(name_, "malware",
                 "signature-hit src=" + pkt.ip.src.to_string());
      if (mode_ == EnforcementMode::kBlock) return Verdict::kDrop;
    }
  }
  return Verdict::kForward;
}

Bytes MalwareDetector::serialize_state() const {
  return counters_state({detections_});
}

bool MalwareDetector::restore_state(const Bytes& state, std::uint32_t version) {
  return version == state_version() && restore_counters(state, {&detections_});
}

// --- ReplicaSelector ---------------------------------------------------------------

ReplicaSelector::ReplicaSelector(std::map<std::string, Service> services,
                                 std::map<Ipv4Addr, SimDuration> rtt_of)
    : services_(std::move(services)), rtt_(std::move(rtt_of)) {}

Ipv4Addr ReplicaSelector::best_replica(const std::string& service_name) const {
  const auto it = services_.find(service_name);
  if (it == services_.end() || it->second.replicas.empty()) return {};
  Ipv4Addr best = it->second.replicas.front();
  SimDuration best_rtt = kSecond * 3600;
  for (const Ipv4Addr replica : it->second.replicas) {
    const auto rt = rtt_.find(replica);
    const SimDuration rtt = rt == rtt_.end() ? kSecond * 3600 : rt->second;
    if (rtt < best_rtt) {
      best_rtt = rtt;
      best = replica;
    }
  }
  return best;
}

Middlebox::Verdict ReplicaSelector::process(Packet& pkt, MboxContext& ctx) {
  if (pkt.ip.proto != IpProto::kUdp) return Verdict::kForward;
  const auto dg = parse_udp(pkt.l4);
  if (!dg || dg->hdr.src_port != kDnsPort) return Verdict::kForward;
  auto msg = DnsMessage::decode(dg->payload);
  if (!msg || !msg->response) return Verdict::kForward;

  bool rewritten = false;
  for (DnsRecord& rec : msg->answers) {
    if (rec.signed_record) continue;  // cannot rewrite without breaking sigs
    const auto it = services_.find(rec.name);
    if (it == services_.end()) continue;
    const Ipv4Addr best = best_replica(rec.name);
    if (best.is_unspecified() || best == rec.addr) continue;
    ctx.report(name_, "replica-rewrite",
               "name=" + rec.name + " " + rec.addr.to_string() + " -> " +
                   best.to_string());
    rec.addr = best;
    rewritten = true;
    ++rewrites_;
  }
  if (rewritten) {
    pkt.l4 = serialize_udp(dg->hdr, msg->encode());
  }
  return Verdict::kForward;
}

// --- Classifier -----------------------------------------------------------------

Classifier::Classifier(std::vector<Rule> rules) : rules_(std::move(rules)) {}

Bytes Classifier::serialize_state() const {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(flow_class_.size()));
  for (const auto& [key, tos] : flow_class_) {
    write_flow_key(w, key);
    w.u8(tos);
  }
  w.u64(classified_);
  return std::move(w).take();
}

bool Classifier::restore_state(const Bytes& state, std::uint32_t version) {
  if (version != state_version()) return false;
  ByteReader r(state);
  std::map<FlowKey, std::uint8_t> classes;
  const std::uint16_t n = r.u16();
  if (!r.ok()) return false;
  for (std::uint16_t i = 0; i < n; ++i) {
    const FlowKey key = read_flow_key(r);
    classes[key] = r.u8();
    if (!r.ok()) return false;
  }
  const std::uint64_t classified = r.u64();
  if (!r.exhausted()) return false;
  flow_class_ = std::move(classes);
  classified_ = classified;
  return true;
}

Middlebox::Verdict Classifier::process(Packet& pkt, MboxContext& ctx) {
  (void)ctx;
  const FlowKey key = FlowKey::of(pkt);
  // Already classified (either direction)?
  if (const auto it = flow_class_.find(key); it != flow_class_.end()) {
    pkt.ip.tos = it->second;
    return Verdict::kForward;
  }
  if (const auto it = flow_class_.find(key.reversed());
      it != flow_class_.end()) {
    pkt.ip.tos = it->second;
    return Verdict::kForward;
  }
  for (const Rule& rule : rules_) {
    if (payload_contains(pkt.l4, rule.substring)) {
      flow_class_[key] = rule.tos;
      ++classified_;
      pkt.ip.tos = rule.tos;
      break;
    }
  }
  return Verdict::kForward;
}

}  // namespace pvn
