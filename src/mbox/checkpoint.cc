#include "mbox/checkpoint.h"

namespace pvn {

Bytes ChainCheckpoint::encode() const {
  ByteWriter w;
  w.u32(kMagic);
  w.u8(kFormatVersion);
  w.str(chain_id);
  w.u64(seq);
  w.i64(taken_at);
  w.u8(incremental ? 1 : 0);
  w.u16(static_cast<std::uint16_t>(modules.size()));
  for (const ModuleSnapshot& m : modules) {
    w.str(m.module);
    w.u32(m.state_version);
    w.u64(m.packets_seen);
    w.u64(m.packets_dropped);
    w.blob(m.state);
  }
  Bytes out = std::move(w).take();
  const Bytes mac = digest_of(out).to_bytes();
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

std::optional<ChainCheckpoint> ChainCheckpoint::decode(const Bytes& b) {
  constexpr std::size_t kDigestSize = 32;
  if (b.size() < kDigestSize) return std::nullopt;
  const Bytes payload(b.begin(), b.end() - kDigestSize);
  const Bytes mac(b.end() - kDigestSize, b.end());
  const auto want = Digest::from_bytes(mac);
  if (!want || digest_of(payload) != *want) return std::nullopt;

  ByteReader r(payload);
  if (r.u32() != kMagic) return std::nullopt;
  if (r.u8() != kFormatVersion) return std::nullopt;
  ChainCheckpoint ckpt;
  ckpt.chain_id = r.str();
  ckpt.seq = r.u64();
  ckpt.taken_at = r.i64();
  ckpt.incremental = r.u8() != 0;
  const std::uint16_t count = r.u16();
  if (!r.ok()) return std::nullopt;
  ckpt.modules.reserve(count);
  for (std::uint16_t i = 0; i < count; ++i) {
    ModuleSnapshot m;
    m.module = r.str();
    m.state_version = r.u32();
    m.packets_seen = r.u64();
    m.packets_dropped = r.u64();
    m.state = r.blob();
    if (!r.ok()) return std::nullopt;
    ckpt.modules.push_back(std::move(m));
  }
  if (!r.exhausted()) return std::nullopt;
  return ckpt;
}

ChainCheckpoint capture_chain(const Chain& chain, std::uint64_t seq,
                              SimTime now,
                              std::map<std::string, Digest>* changed_since) {
  ChainCheckpoint ckpt;
  ckpt.chain_id = chain.id();
  ckpt.seq = seq;
  ckpt.taken_at = now;
  ckpt.incremental = changed_since != nullptr;
  for (const Middlebox* mbox : chain.modules()) {
    ModuleSnapshot m;
    m.module = mbox->name();
    m.state_version = mbox->state_version();
    m.packets_seen = mbox->packets_seen;
    m.packets_dropped = mbox->packets_dropped;
    m.state = mbox->serialize_state();
    if (changed_since != nullptr) {
      const Digest d = digest_of(m.state);
      auto [it, inserted] = changed_since->try_emplace(m.module, d);
      if (!inserted) {
        if (it->second == d) continue;  // unchanged: omit from incremental
        it->second = d;
      }
    }
    ckpt.modules.push_back(std::move(m));
  }
  return ckpt;
}

std::size_t restore_chain(Chain& chain, const ChainCheckpoint& ckpt) {
  std::size_t restored = 0;
  for (const ModuleSnapshot& snap : ckpt.modules) {
    for (Middlebox* mbox : chain.modules()) {
      if (mbox->name() != snap.module) continue;
      if (!mbox->restore_state(snap.state, snap.state_version)) break;
      mbox->packets_seen = snap.packets_seen;
      mbox->packets_dropped = snap.packets_dropped;
      ++restored;
      break;
    }
  }
  return restored;
}

}  // namespace pvn
