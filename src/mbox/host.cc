#include "mbox/host.h"

#include <algorithm>

namespace pvn {

FlowKey FlowKey::of(const Packet& pkt) {
  FlowKey key;
  key.src = pkt.ip.src;
  key.dst = pkt.ip.dst;
  key.proto = pkt.ip.proto;
  peek_ports(static_cast<std::uint8_t>(pkt.ip.proto), pkt.l4, key.src_port,
             key.dst_port);
  return key;
}

FlowKey FlowKey::reversed() const {
  FlowKey key = *this;
  std::swap(key.src, key.dst);
  std::swap(key.src_port, key.dst_port);
  return key;
}

std::vector<Packet> Chain::process(Packet pkt, SimTime now,
                                   SimDuration& delay) {
  ++packets_;
  delay = per_packet_delay_;
  std::vector<Packet> injected;
  MboxContext ctx;
  ctx.now = now;
  ctx.findings = &findings_;
  ctx.injected = &injected;

  bool dropped = false;
  for (Middlebox* mbox : modules_) {
    ++mbox->packets_seen;
    delay += mbox->extra_delay();
    if (mbox->process(pkt, ctx) == Middlebox::Verdict::kDrop) {
      ++mbox->packets_dropped;
      dropped = true;
      break;
    }
  }
  std::vector<Packet> out;
  if (!dropped) out.push_back(std::move(pkt));
  for (Packet& p : injected) out.push_back(std::move(p));
  return out;
}

void MboxHost::instantiate(std::unique_ptr<Middlebox> mbox,
                           std::function<void(Middlebox*)> ready) {
  if (crashed_ ||
      memory_in_use_ + cfg_.memory_per_instance > cfg_.memory_budget) {
    sim_->schedule_after(0, [ready = std::move(ready)] { ready(nullptr); });
    return;
  }
  memory_in_use_ += cfg_.memory_per_instance;
  Middlebox* raw = mbox.get();
  owned_.push_back(std::move(mbox));
  // A crash between now and the readiness event frees the instance; deliver
  // nullptr instead of the dangling pointer in that case.
  const int gen = crashes_;
  sim_->schedule_after(cfg_.instantiation_delay,
                       [this, gen, raw, ready = std::move(ready)] {
                         ready(gen == crashes_ ? raw : nullptr);
                       });
}

bool MboxHost::destroy(Middlebox* mbox) {
  const auto it = std::find_if(
      owned_.begin(), owned_.end(),
      [mbox](const std::unique_ptr<Middlebox>& p) { return p.get() == mbox; });
  if (it == owned_.end()) return false;
  owned_.erase(it);
  memory_in_use_ -= cfg_.memory_per_instance;
  return true;
}

Chain& MboxHost::create_chain(const std::string& id) {
  auto chain = std::make_unique<Chain>(id, cfg_.per_packet_delay);
  Chain& ref = *chain;
  chains_[id] = std::move(chain);
  return ref;
}

Chain* MboxHost::chain(const std::string& id) {
  const auto it = chains_.find(id);
  return it == chains_.end() ? nullptr : it->second.get();
}

bool MboxHost::destroy_chain(const std::string& id) {
  return chains_.erase(id) > 0;
}

void MboxHost::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crashes_;
  owned_.clear();
  chains_.clear();
  memory_in_use_ = 0;
  if (crash_listener_) crash_listener_();
}

}  // namespace pvn
