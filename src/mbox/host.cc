#include "mbox/host.h"

#include <algorithm>

namespace pvn {

FlowKey FlowKey::of(const Packet& pkt) {
  FlowKey key;
  key.src = pkt.ip.src;
  key.dst = pkt.ip.dst;
  key.proto = pkt.ip.proto;
  peek_ports(static_cast<std::uint8_t>(pkt.ip.proto), pkt.l4, key.src_port,
             key.dst_port);
  return key;
}

FlowKey FlowKey::reversed() const {
  FlowKey key = *this;
  std::swap(key.src, key.dst);
  std::swap(key.src_port, key.dst_port);
  return key;
}

void write_flow_key(ByteWriter& w, const FlowKey& key) {
  w.u32(key.src.v);
  w.u32(key.dst.v);
  w.u8(static_cast<std::uint8_t>(key.proto));
  w.u16(key.src_port);
  w.u16(key.dst_port);
}

FlowKey read_flow_key(ByteReader& r) {
  FlowKey key;
  key.src = Ipv4Addr(r.u32());
  key.dst = Ipv4Addr(r.u32());
  key.proto = static_cast<IpProto>(r.u8());
  key.src_port = r.u16();
  key.dst_port = r.u16();
  return key;
}

Chain::Chain(std::string id, SimDuration per_packet_delay)
    : id_(std::move(id)), per_packet_delay_(per_packet_delay) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_packets_ = &reg.counter("mbox.chain.packets", id_);
  m_dropped_ = &reg.counter("mbox.chain.dropped", id_);
  m_findings_ = &reg.counter("mbox.chain.findings", id_);
  m_latency_ns_ =
      &reg.histogram("mbox.chain.latency_ns", id_, telemetry::latency_bounds_ns());
}

void Chain::append(Middlebox* mbox) {
  modules_.push_back(mbox);
  auto& reg = telemetry::MetricsRegistry::global();
  module_cells_.push_back(ModuleCells{
      &reg.counter("mbox.module.processed", mbox->name()),
      &reg.counter("mbox.module.dropped", mbox->name())});
}

std::vector<Packet> Chain::process(Packet pkt, SimTime now,
                                   SimDuration& delay) {
  ++packets_;
  m_packets_->inc();
  delay = per_packet_delay_;
  std::vector<Packet> injected;
  MboxContext ctx;
  ctx.now = now;
  ctx.findings = &findings_;
  ctx.injected = &injected;
  const std::size_t findings_before = findings_.size();

  bool dropped = false;
  for (std::size_t m = 0; m < modules_.size(); ++m) {
    Middlebox* mbox = modules_[m];
    ++mbox->packets_seen;
    module_cells_[m].processed->inc();
    delay += mbox->extra_delay();
    if (mbox->process(pkt, ctx) == Middlebox::Verdict::kDrop) {
      ++mbox->packets_dropped;
      module_cells_[m].dropped->inc();
      dropped = true;
      break;
    }
  }
  if (dropped) m_dropped_->inc();
  m_findings_->inc(findings_.size() - findings_before);
  m_latency_ns_->observe(static_cast<std::uint64_t>(delay));
  std::vector<Packet> out;
  if (!dropped) out.push_back(std::move(pkt));
  for (Packet& p : injected) out.push_back(std::move(p));
  return out;
}

MboxHost::MboxHost(Simulator& sim, MboxHostConfig cfg) : sim_(&sim), cfg_(cfg) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_instantiations_ = &reg.counter("mbox.host.instantiations");
  m_instantiation_failures_ = &reg.counter("mbox.host.instantiation_failures");
  m_crashes_ = &reg.counter("mbox.host.crashes");
  m_memory_in_use_ = &reg.gauge("mbox.host.memory_in_use");
  m_instances_ = &reg.gauge("mbox.host.instances");
}

void MboxHost::instantiate(std::unique_ptr<Middlebox> mbox,
                           std::function<void(Middlebox*)> ready) {
  if (crashed_ ||
      memory_in_use_ + cfg_.memory_per_instance > cfg_.memory_budget) {
    m_instantiation_failures_->inc();
    sim_->schedule_after(0, SimCategory::kMbox,
                         [ready = std::move(ready)] { ready(nullptr); });
    return;
  }
  memory_in_use_ += cfg_.memory_per_instance;
  Middlebox* raw = mbox.get();
  owned_.push_back(std::move(mbox));
  m_instantiations_->inc();
  m_memory_in_use_->set(memory_in_use_);
  m_instances_->set(static_cast<std::int64_t>(owned_.size()));
  // A crash between now and the readiness event frees the instance; deliver
  // nullptr instead of the dangling pointer in that case.
  const int gen = crashes_;
  sim_->schedule_after(cfg_.instantiation_delay, SimCategory::kMbox,
                       [this, gen, raw, ready = std::move(ready)] {
                         ready(gen == crashes_ ? raw : nullptr);
                       });
}

bool MboxHost::destroy(Middlebox* mbox) {
  const auto it = std::find_if(
      owned_.begin(), owned_.end(),
      [mbox](const std::unique_ptr<Middlebox>& p) { return p.get() == mbox; });
  if (it == owned_.end()) return false;
  owned_.erase(it);
  memory_in_use_ -= cfg_.memory_per_instance;
  m_memory_in_use_->set(memory_in_use_);
  m_instances_->set(static_cast<std::int64_t>(owned_.size()));
  return true;
}

Chain& MboxHost::create_chain(const std::string& id) {
  auto chain = std::make_unique<Chain>(id, cfg_.per_packet_delay);
  Chain& ref = *chain;
  chains_[id] = std::move(chain);
  return ref;
}

Chain* MboxHost::chain(const std::string& id) {
  const auto it = chains_.find(id);
  return it == chains_.end() ? nullptr : it->second.get();
}

bool MboxHost::destroy_chain(const std::string& id) {
  return chains_.erase(id) > 0;
}

void MboxHost::crash() {
  if (crashed_) return;
  crashed_ = true;
  ++crashes_;
  owned_.clear();
  chains_.clear();
  memory_in_use_ = 0;
  m_crashes_->inc();
  m_memory_in_use_->set(0);
  m_instances_->set(0);
  if (crash_listener_) crash_listener_();
}

}  // namespace pvn
