// The "PVN Store" (paper §3.1): a marketplace of middlebox modules with
// prices, publishers, and resource estimates. PVNCs reference modules by
// store name; the deployment compiler instantiates them via the factory.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "mbox/middlebox.h"
#include "util/digest.h"

namespace pvn {

struct ModuleInfo {
  std::string name;
  std::string publisher;
  std::string description;
  double price_per_deploy = 0.0;  // what the network charges per deployment
  std::int64_t est_memory_bytes = 6 * 1024 * 1024;
  SimDuration est_per_packet_delay = microseconds(45);
};

// Factory producing a fresh instance per deployment; parameters come from
// the PVNC text (opaque key=value strings the factory interprets).
using ModuleFactory = std::function<std::unique_ptr<Middlebox>(
    const std::map<std::string, std::string>& params)>;

class PvnStore {
 public:
  void publish(ModuleInfo info, ModuleFactory factory);
  bool has(const std::string& name) const { return entries_.contains(name); }
  const ModuleInfo* info(const std::string& name) const;
  std::vector<ModuleInfo> catalog() const;

  // Instantiates a module; nullptr if unknown.
  std::unique_ptr<Middlebox> make(
      const std::string& name,
      const std::map<std::string, std::string>& params) const;

  double price_of(const std::vector<std::string>& modules) const;

 private:
  struct Entry {
    ModuleInfo info;
    ModuleFactory factory;
  };
  std::map<std::string, Entry> entries_;
};

// Builds a store stocked with the standard modules used across the
// experiments (validators, detectors, classifier). Middleboxes that need
// runtime context (trust stores, zone keys) read it from `env`.
struct StoreEnvironment {
  const struct TrustStore* tls_trust = nullptr;
  const KeyRegistry* dns_zone_keys = nullptr;
  PublicKey dns_zone_key_id;
  std::map<std::string, Ipv4Addr> dns_pins;
  std::set<std::string> dns_require_signed;
  std::set<Ipv4Addr> tracker_addrs;
  std::vector<std::string> pii_patterns;
  std::vector<Bytes> malware_signatures;
  // Replica selection: service name -> candidate replicas, plus the access
  // network's RTT estimates per replica.
  std::map<std::string, std::vector<Ipv4Addr>> replica_services;
  std::map<Ipv4Addr, SimDuration> replica_rtt;
};

PvnStore make_standard_store(const StoreEnvironment& env);

}  // namespace pvn
