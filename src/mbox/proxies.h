// TCP-terminating proxy middleboxes.
//
// These change byte counts / timing, so unlike the inline modules they
// re-originate connections (the paper's §2.2 "In-network optimizations"):
//   SplitTcpProxy    — terminates TCP near the client and opens a second
//                      connection to the server (E6: who wins and when)
//   TranscodingProxy — HTTP proxy that shrinks video/image bodies (Fig. 1a's
//                      "Transcoder/Compressor" box)
//   PrefetchingProxy — HTTP proxy that prefetches into an in-network cache
//                      so unused prefetches never cross the access link (§4)
#pragma once

#include <deque>
#include <map>

#include "proto/http.h"

namespace pvn {

// --- SplitTcpProxy ------------------------------------------------------------

class SplitTcpProxy : public Host {
 public:
  // Accepts on `listen_port`; each accepted connection is bridged to
  // `upstream`:`upstream_port`.
  SplitTcpProxy(Network& net, std::string name, Ipv4Addr addr,
                Ipv4Addr upstream, Port upstream_port, Port listen_port);
  ~SplitTcpProxy() override;

  std::uint64_t connections_bridged() const { return bridged_; }
  std::uint64_t bytes_upstream() const { return bytes_up_; }
  std::uint64_t bytes_downstream() const { return bytes_down_; }

 private:
  struct Bridge;
  void on_accept(TcpConnection& client);

  Ipv4Addr upstream_;
  Port upstream_port_;
  std::uint64_t bridged_ = 0;
  std::uint64_t bytes_up_ = 0;
  std::uint64_t bytes_down_ = 0;
  std::vector<std::unique_ptr<Bridge>> bridges_;
};

// --- TranscodingProxy -----------------------------------------------------------

struct TranscodeConfig {
  // Content-Type substrings that get transcoded, with the size ratio kept.
  // E.g. {"video", 0.4} -> video bodies shrink to 40%.
  std::map<std::string, double> ratios = {{"video", 0.4}, {"image", 0.5}};
  SimDuration processing_delay = milliseconds(5);  // per response
};

class TranscodingProxy : public Host {
 public:
  TranscodingProxy(Network& net, std::string name, Ipv4Addr addr,
                   Ipv4Addr upstream, Port listen_port = 8080,
                   TranscodeConfig cfg = {});
  ~TranscodingProxy() override;

  std::uint64_t responses_transcoded() const { return transcoded_; }
  std::uint64_t bytes_saved() const { return bytes_saved_; }

 private:
  struct ProxyConn;
  void on_accept(TcpConnection& client);
  HttpResponse maybe_transcode(HttpResponse resp);

  Ipv4Addr upstream_;
  TranscodeConfig cfg_;
  HttpClient http_;
  std::uint64_t transcoded_ = 0;
  std::uint64_t bytes_saved_ = 0;
  std::vector<std::unique_ptr<ProxyConn>> conns_;
};

// --- PrefetchingProxy ------------------------------------------------------------

class PrefetchingProxy : public Host {
 public:
  PrefetchingProxy(Network& net, std::string name, Ipv4Addr addr,
                   Ipv4Addr upstream, Port listen_port = 8081);
  ~PrefetchingProxy() override;

  // Warms the cache with these paths (runs upstream fetches immediately).
  void prefetch(const std::vector<std::string>& paths);

  // Checkpointable cache (survivability layer): a standby proxy restores the
  // warm cache instead of re-fetching. Same all-or-nothing contract as
  // Middlebox::restore_state.
  Bytes serialize_cache() const;
  bool restore_cache(const Bytes& state);

  std::uint64_t cache_hits() const { return hits_; }
  std::uint64_t cache_misses() const { return misses_; }
  std::size_t cached_entries() const { return cache_.size(); }

 private:
  struct ProxyConn;
  void on_accept(TcpConnection& client);
  void respond(TcpConnection& client, const HttpResponse& resp);

  Ipv4Addr upstream_;
  HttpClient http_;
  std::map<std::string, HttpResponse> cache_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::vector<std::unique_ptr<ProxyConn>> conns_;
};

}  // namespace pvn
