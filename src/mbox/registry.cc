#include "mbox/registry.h"

#include "mbox/inline_modules.h"
#include "proto/tls.h"

namespace pvn {

void PvnStore::publish(ModuleInfo info, ModuleFactory factory) {
  const std::string name = info.name;
  entries_[name] = Entry{std::move(info), std::move(factory)};
}

const ModuleInfo* PvnStore::info(const std::string& name) const {
  const auto it = entries_.find(name);
  return it == entries_.end() ? nullptr : &it->second.info;
}

std::vector<ModuleInfo> PvnStore::catalog() const {
  std::vector<ModuleInfo> out;
  out.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) out.push_back(entry.info);
  return out;
}

std::unique_ptr<Middlebox> PvnStore::make(
    const std::string& name,
    const std::map<std::string, std::string>& params) const {
  const auto it = entries_.find(name);
  if (it == entries_.end()) return nullptr;
  return it->second.factory(params);
}

double PvnStore::price_of(const std::vector<std::string>& modules) const {
  double total = 0.0;
  for (const std::string& m : modules) {
    if (const ModuleInfo* mi = info(m)) total += mi->price_per_deploy;
  }
  return total;
}

namespace {

EnforcementMode mode_from(const std::map<std::string, std::string>& params) {
  const auto it = params.find("mode");
  if (it != params.end() && it->second == "warn") return EnforcementMode::kWarn;
  return EnforcementMode::kBlock;
}

}  // namespace

PvnStore make_standard_store(const StoreEnvironment& env) {
  PvnStore store;

  if (env.tls_trust != nullptr) {
    const TrustStore* trust = env.tls_trust;
    store.publish(
        ModuleInfo{"tls-validator", "nu-systems",
                   "Validates server certificate chains; blocks MITM",
                   0.50, 6 * 1024 * 1024, microseconds(65)},
        [trust](const std::map<std::string, std::string>& params) {
          return std::make_unique<TlsValidator>(*trust, mode_from(params));
        });
  }

  store.publish(
      ModuleInfo{"dns-validator", "nu-systems",
                 "DNSSEC-lite validation + resolver pinning", 0.25,
                 6 * 1024 * 1024, microseconds(55)},
      [keys = env.dns_zone_keys, id = env.dns_zone_key_id, pins = env.dns_pins,
       required = env.dns_require_signed](
          const std::map<std::string, std::string>& params) {
        return std::make_unique<DnsValidator>(keys, id, pins,
                                              mode_from(params), required);
      });

  store.publish(
      ModuleInfo{"pii-detector", "recon-labs",
                 "Detects and blocks/scrubs PII in outbound traffic", 1.00,
                 6 * 1024 * 1024, microseconds(80)},
      [patterns = env.pii_patterns](
          const std::map<std::string, std::string>& params) {
        PiiAction action = PiiAction::kBlock;
        if (const auto it = params.find("action"); it != params.end()) {
          if (it->second == "monitor") action = PiiAction::kMonitor;
          if (it->second == "scrub") action = PiiAction::kScrub;
        }
        return std::make_unique<PiiDetector>(patterns, action);
      });

  store.publish(
      ModuleInfo{"tracker-blocker", "privacy-coop",
                 "Drops traffic to known trackers", 0.10, 6 * 1024 * 1024,
                 microseconds(45)},
      [trackers = env.tracker_addrs](const std::map<std::string, std::string>&) {
        return std::make_unique<TrackerBlocker>(trackers);
      });

  store.publish(
      ModuleInfo{"malware-detector", "nu-systems",
                 "Signature-based malware blocking", 0.75, 6 * 1024 * 1024,
                 microseconds(70)},
      [sigs = env.malware_signatures](
          const std::map<std::string, std::string>& params) {
        return std::make_unique<MalwareDetector>(sigs, mode_from(params));
      });

  if (!env.replica_services.empty()) {
    std::map<std::string, ReplicaSelector::Service> services;
    for (const auto& [name, replicas] : env.replica_services) {
      services[name] = ReplicaSelector::Service{replicas};
    }
    store.publish(
        ModuleInfo{"replica-selector", "cdn-coop",
                   "Steers replicated services to the nearest replica", 0.30,
                   6 * 1024 * 1024, microseconds(60)},
        [services, rtt = env.replica_rtt](
            const std::map<std::string, std::string>&) {
          return std::make_unique<ReplicaSelector>(services, rtt);
        });
  }

  store.publish(
      ModuleInfo{"classifier", "nu-systems",
                 "Marks flows by content class (web/video/image)", 0.05,
                 6 * 1024 * 1024, microseconds(45)},
      [](const std::map<std::string, std::string>& params) {
        std::vector<Classifier::Rule> rules;
        // Defaults match the Fig. 1a example.
        rules.push_back({"Content-Type: video", 0x20});
        rules.push_back({"Content-Type: image", 0x20});
        rules.push_back({"Content-Type: text", 0x10});
        if (const auto it = params.find("video_tos"); it != params.end()) {
          rules[0].tos = static_cast<std::uint8_t>(std::stoi(it->second));
          rules[1].tos = rules[0].tos;
        }
        if (const auto it = params.find("web_tos"); it != params.end()) {
          rules[2].tos = static_cast<std::uint8_t>(std::stoi(it->second));
        }
        return std::make_unique<Classifier>(std::move(rules));
      });

  return store;
}

}  // namespace pvn
