// MboxHost: the NFV compute pool of an access network, with the resource
// model the paper cites from ClickOS [24] (§3.3 "Scalability and overhead"):
// ~30 ms to instantiate an instance, ~45 µs of added per-packet delay, and
// ~6 MB of memory per instance. Chains built here are registered with the
// SDN switch as PacketProcessors.
#pragma once

#include <functional>
#include <map>
#include <memory>

#include "mbox/middlebox.h"
#include "sdn/switch.h"
#include "telemetry/metrics.h"
#include "util/units.h"

namespace pvn {

struct MboxHostConfig {
  SimDuration instantiation_delay = milliseconds(30);
  SimDuration per_packet_delay = microseconds(45);
  std::int64_t memory_per_instance = 6 * kMiB;
  std::int64_t memory_budget = 4 * kGiB;
};

// An ordered set of middlebox instances one PVN's traffic traverses.
class Chain : public PacketProcessor {
 public:
  Chain(std::string id, SimDuration per_packet_delay);

  const std::string& id() const { return id_; }
  void append(Middlebox* mbox);
  const std::vector<Middlebox*>& modules() const { return modules_; }

  std::vector<Packet> process(Packet pkt, SimTime now,
                              SimDuration& delay) override;

  const std::vector<MboxFinding>& findings() const { return findings_; }
  std::uint64_t packets() const { return packets_; }

 private:
  // Per-module telemetry cells, cached at append() time so process() never
  // does a registry lookup. Instance label = module name.
  struct ModuleCells {
    telemetry::Counter* processed = nullptr;
    telemetry::Counter* dropped = nullptr;
  };

  std::string id_;
  SimDuration per_packet_delay_;
  std::vector<Middlebox*> modules_;
  std::vector<ModuleCells> module_cells_;
  std::vector<MboxFinding> findings_;
  std::uint64_t packets_ = 0;
  telemetry::Counter* m_packets_ = nullptr;
  telemetry::Counter* m_dropped_ = nullptr;
  telemetry::Counter* m_findings_ = nullptr;
  telemetry::Histogram* m_latency_ns_ = nullptr;
};

class MboxHost {
 public:
  explicit MboxHost(Simulator& sim, MboxHostConfig cfg = {});

  // Instantiates a middlebox (charging instantiation delay + memory).
  // `ready` fires with the instance pointer, or nullptr if the host is out
  // of memory or crashed. The host owns the instance.
  void instantiate(std::unique_ptr<Middlebox> mbox,
                   std::function<void(Middlebox*)> ready);

  // Tears down an instance, releasing its memory.
  bool destroy(Middlebox* mbox);

  // Creates an empty chain with the configured per-packet base delay.
  Chain& create_chain(const std::string& id);
  Chain* chain(const std::string& id);
  bool destroy_chain(const std::string& id);

  // Fault injection: drops every instance and chain on the floor (memory
  // returns to zero, like a machine losing power) and refuses new
  // instantiations until restart(). The crash listener fires synchronously
  // so the control plane can unregister now-dead chain processors from the
  // dataplane before another packet is diverted to them.
  void crash();
  void restart() { crashed_ = false; }
  bool crashed() const { return crashed_; }
  int crashes() const { return crashes_; }
  void set_crash_listener(std::function<void()> listener) {
    crash_listener_ = std::move(listener);
  }

  std::int64_t memory_in_use() const { return memory_in_use_; }
  std::int64_t memory_budget() const { return cfg_.memory_budget; }
  int instances() const { return static_cast<int>(owned_.size()); }
  const MboxHostConfig& config() const { return cfg_; }

 private:
  Simulator* sim_;
  MboxHostConfig cfg_;
  std::vector<std::unique_ptr<Middlebox>> owned_;
  std::map<std::string, std::unique_ptr<Chain>> chains_;
  std::int64_t memory_in_use_ = 0;
  bool crashed_ = false;
  int crashes_ = 0;
  std::function<void()> crash_listener_;
  // Aggregate telemetry (hosts carry no name; one pool per testbed).
  telemetry::Counter* m_instantiations_ = nullptr;
  telemetry::Counter* m_instantiation_failures_ = nullptr;
  telemetry::Counter* m_crashes_ = nullptr;
  telemetry::Gauge* m_memory_in_use_ = nullptr;
  telemetry::Gauge* m_instances_ = nullptr;
};

}  // namespace pvn
