// Chain checkpoints: versioned, digest-protected snapshots of a middlebox
// chain's dynamic state (survivability layer, DESIGN.md "Survivability").
//
// A ChainCheckpoint captures every module's serialized state plus its
// per-module counters. The wire encoding appends a digest over the payload,
// so a snapshot that was truncated or bit-flipped in transit decodes to
// nullopt — never to a partially-restored chain. Incremental checkpoints
// omit modules whose state digest is unchanged since the last full capture;
// restore applies incrementals on top of previously restored state.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "mbox/host.h"
#include "util/digest.h"

namespace pvn {

struct ModuleSnapshot {
  std::string module;           // Middlebox::name()
  std::uint32_t state_version = 1;
  std::uint64_t packets_seen = 0;
  std::uint64_t packets_dropped = 0;
  Bytes state;                  // Middlebox::serialize_state()
};

struct ChainCheckpoint {
  static constexpr std::uint32_t kMagic = 0x50564e43;  // "PVNC"
  static constexpr std::uint8_t kFormatVersion = 1;

  std::string chain_id;
  std::uint64_t seq = 0;        // monotonically increasing per chain
  SimTime taken_at = 0;
  bool incremental = false;     // only modules whose state changed
  std::vector<ModuleSnapshot> modules;

  Bytes encode() const;
  // Verifies magic, format version, and the trailing digest before decoding
  // any field; corruption anywhere yields nullopt.
  static std::optional<ChainCheckpoint> decode(const Bytes& b);
};

// Captures every module of `chain`. When `changed_since` is non-null (a map
// of module name -> last captured state digest), modules whose serialized
// state digest is unchanged are omitted and the checkpoint is marked
// incremental; the map is updated in place with the new digests.
ChainCheckpoint capture_chain(const Chain& chain, std::uint64_t seq,
                              SimTime now,
                              std::map<std::string, Digest>* changed_since =
                                  nullptr);

// Restores a checkpoint into `chain` by module name. All-or-nothing per
// module (a module that rejects its snapshot is left untouched); returns the
// number of modules restored. Modules present in the chain but absent from
// an incremental checkpoint keep their current state.
std::size_t restore_chain(Chain& chain, const ChainCheckpoint& ckpt);

}  // namespace pvn
