#include "mbox/proxies.h"

#include "util/digest.h"

namespace pvn {

// --- SplitTcpProxy ------------------------------------------------------------

struct SplitTcpProxy::Bridge {
  TcpConnection* client = nullptr;
  TcpConnection* upstream = nullptr;
  Bytes pending_up;  // client bytes received before upstream established
  bool upstream_ready = false;
};

SplitTcpProxy::SplitTcpProxy(Network& net, std::string name, Ipv4Addr addr,
                             Ipv4Addr upstream, Port upstream_port,
                             Port listen_port)
    : Host(net, std::move(name), addr),
      upstream_(upstream),
      upstream_port_(upstream_port) {
  tcp_listen(listen_port, [this](TcpConnection& c) { on_accept(c); });
}

void SplitTcpProxy::on_accept(TcpConnection& client) {
  ++bridged_;
  auto bridge = std::make_unique<Bridge>();
  Bridge* b = bridge.get();
  b->client = &client;
  b->upstream = &tcp_connect(upstream_, upstream_port_);

  b->upstream->on_connected = [this, b] {
    b->upstream_ready = true;
    if (!b->pending_up.empty()) {
      bytes_up_ += b->pending_up.size();
      b->upstream->send(b->pending_up);
      b->pending_up.clear();
    }
  };
  b->client->on_data = [this, b](const Bytes& data) {
    if (b->upstream_ready) {
      bytes_up_ += data.size();
      b->upstream->send(data);
    } else {
      b->pending_up.insert(b->pending_up.end(), data.begin(), data.end());
    }
  };
  b->upstream->on_data = [this, b](const Bytes& data) {
    bytes_down_ += data.size();
    b->client->send(data);
  };
  // Half-close propagation in both directions.
  b->client->on_eof = [b] { b->upstream->close(); };
  b->upstream->on_eof = [b] { b->client->close(); };
  b->client->on_closed = [b] {
    if (b->upstream->state() != TcpConnection::State::kClosed &&
        b->upstream->unsent_bytes() == 0) {
      b->upstream->close();
    }
  };
  b->upstream->on_closed = [b] {
    if (b->client->state() != TcpConnection::State::kClosed &&
        b->client->unsent_bytes() == 0) {
      b->client->close();
    }
  };
  bridges_.push_back(std::move(bridge));
}

// --- TranscodingProxy -----------------------------------------------------------

struct TranscodingProxy::ProxyConn {
  TcpConnection* client = nullptr;
  HttpParser parser{HttpParser::Kind::kRequest, nullptr, nullptr};
};

TranscodingProxy::TranscodingProxy(Network& net, std::string name,
                                   Ipv4Addr addr, Ipv4Addr upstream,
                                   Port listen_port, TranscodeConfig cfg)
    : Host(net, std::move(name), addr),
      upstream_(upstream),
      cfg_(cfg),
      http_(*this) {
  tcp_listen(listen_port, [this](TcpConnection& c) { on_accept(c); });
}

HttpResponse TranscodingProxy::maybe_transcode(HttpResponse resp) {
  const std::string* content_type = resp.header("Content-Type");
  if (content_type == nullptr) return resp;
  for (const auto& [needle, ratio] : cfg_.ratios) {
    if (content_type->find(needle) == std::string::npos) continue;
    const std::size_t original = resp.body.size();
    const auto target = static_cast<std::size_t>(
        static_cast<double>(original) * ratio);
    if (target >= original) break;
    resp.body.resize(target);
    resp.set_header("Content-Length", std::to_string(target));
    resp.set_header("X-Transcoded", "1");
    ++transcoded_;
    bytes_saved_ += original - target;
    break;
  }
  return resp;
}

void TranscodingProxy::on_accept(TcpConnection& client) {
  auto state = std::make_unique<ProxyConn>();
  ProxyConn* s = state.get();
  s->client = &client;
  s->parser = HttpParser(
      HttpParser::Kind::kRequest,
      [this, s](HttpRequest req) {
        http_.fetch(
            upstream_, 80, req.path,
            [this, s](const HttpResponse& resp, const FetchTiming&) {
              // Charge the transcoding compute time before replying.
              sim().schedule_after(cfg_.processing_delay, SimCategory::kMbox,
                                   [this, s, resp]() mutable {
                                     const HttpResponse out =
                                         maybe_transcode(std::move(resp));
                                     s->client->send(out.serialize());
                                   });
            },
            req.headers, req.body, req.method);
      },
      nullptr);
  client.on_data = [s](const Bytes& data) { s->parser.feed(data); };
  client.on_eof = [s] { s->client->close(); };
  conns_.push_back(std::move(state));
}

// --- PrefetchingProxy ------------------------------------------------------------

struct PrefetchingProxy::ProxyConn {
  TcpConnection* client = nullptr;
  HttpParser parser{HttpParser::Kind::kRequest, nullptr, nullptr};
};

PrefetchingProxy::PrefetchingProxy(Network& net, std::string name,
                                   Ipv4Addr addr, Ipv4Addr upstream,
                                   Port listen_port)
    : Host(net, std::move(name), addr), upstream_(upstream), http_(*this) {
  tcp_listen(listen_port, [this](TcpConnection& c) { on_accept(c); });
}

void PrefetchingProxy::prefetch(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    if (cache_.contains(path)) continue;
    http_.fetch(upstream_, 80, path,
                [this, path](const HttpResponse& resp, const FetchTiming& t) {
                  if (t.ok) cache_[path] = resp;
                });
  }
}

void PrefetchingProxy::respond(TcpConnection& client,
                               const HttpResponse& resp) {
  client.send(resp.serialize());
}

Bytes PrefetchingProxy::serialize_cache() const {
  ByteWriter w;
  w.u16(static_cast<std::uint16_t>(cache_.size()));
  for (const auto& [path, resp] : cache_) {
    w.str(path);
    w.u16(static_cast<std::uint16_t>(resp.status));
    w.str(resp.reason);
    w.u16(static_cast<std::uint16_t>(resp.headers.size()));
    for (const auto& [name, value] : resp.headers) {
      w.str(name);
      w.str(value);
    }
    w.blob(resp.body);
  }
  w.u64(hits_);
  w.u64(misses_);
  Bytes out = std::move(w).take();
  const Bytes mac = digest_of(out).to_bytes();
  out.insert(out.end(), mac.begin(), mac.end());
  return out;
}

bool PrefetchingProxy::restore_cache(const Bytes& state) {
  constexpr std::size_t kDigestSize = 32;
  if (state.size() < kDigestSize) return false;
  const Bytes payload(state.begin(), state.end() - kDigestSize);
  const Bytes mac(state.end() - kDigestSize, state.end());
  const auto want = Digest::from_bytes(mac);
  if (!want || digest_of(payload) != *want) return false;

  ByteReader r(payload);
  std::map<std::string, HttpResponse> cache;
  const std::uint16_t n = r.u16();
  if (!r.ok()) return false;
  for (std::uint16_t i = 0; i < n; ++i) {
    const std::string path = r.str();
    HttpResponse resp;
    resp.status = r.u16();
    resp.reason = r.str();
    const std::uint16_t n_headers = r.u16();
    if (!r.ok()) return false;
    for (std::uint16_t h = 0; h < n_headers; ++h) {
      const std::string name = r.str();
      resp.headers.emplace_back(name, r.str());
    }
    resp.body = r.blob();
    if (!r.ok()) return false;
    cache[path] = std::move(resp);
  }
  const std::uint64_t hits = r.u64();
  const std::uint64_t misses = r.u64();
  if (!r.exhausted()) return false;
  cache_ = std::move(cache);
  hits_ = hits;
  misses_ = misses;
  return true;
}

void PrefetchingProxy::on_accept(TcpConnection& client) {
  auto state = std::make_unique<ProxyConn>();
  ProxyConn* s = state.get();
  s->client = &client;
  s->parser = HttpParser(
      HttpParser::Kind::kRequest,
      [this, s](HttpRequest req) {
        if (const auto it = cache_.find(req.path); it != cache_.end()) {
          ++hits_;
          respond(*s->client, it->second);
          return;
        }
        ++misses_;
        http_.fetch(upstream_, 80, req.path,
                    [this, s, path = req.path](const HttpResponse& resp,
                                               const FetchTiming& t) {
                      if (t.ok) cache_[path] = resp;
                      respond(*s->client, resp);
                    },
                    req.headers, req.body, req.method);
      },
      nullptr);
  client.on_data = [s](const Bytes& data) { s->parser.feed(data); };
  client.on_eof = [s] { s->client->close(); };
  conns_.push_back(std::move(state));
}

// Out of line so the unique_ptr members destroy with complete types.
SplitTcpProxy::~SplitTcpProxy() = default;
TranscodingProxy::~TranscodingProxy() = default;
PrefetchingProxy::~PrefetchingProxy() = default;

}  // namespace pvn
