// Software middleboxes: the paper's in-network execution environment.
//
// Two families:
//   * inline modules (this interface): per-packet inspection/modification in
//     a Chain diverted from the SDN switch (validators, detectors,
//     classifiers). They never change payload sizes, so TCP flows pass
//     through untouched unless a module drops/injects packets.
//   * TCP-terminating proxies (mbox/proxies.h): split-TCP, transcoding,
//     prefetching — full Hosts that re-originate connections.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "netsim/packet.h"
#include "proto/l4.h"
#include "util/bytes.h"
#include "util/sim.h"

namespace pvn {

// A security/policy event a module wants the device owner to see.
struct MboxFinding {
  SimTime at = 0;
  std::string module;
  std::string kind;    // e.g. "tls-invalid-cert", "pii-leak", "malware"
  std::string detail;
};

// Per-flow key for stateful modules.
struct FlowKey {
  Ipv4Addr src;
  Ipv4Addr dst;
  IpProto proto = IpProto::kTcp;
  Port src_port = 0;
  Port dst_port = 0;

  static FlowKey of(const Packet& pkt);
  // The same flow viewed from the opposite direction.
  FlowKey reversed() const;
  auto operator<=>(const FlowKey&) const = default;
};

struct MboxContext {
  SimTime now = 0;
  std::vector<MboxFinding>* findings = nullptr;
  // Packets a module wants to originate (e.g. an injected RST). They are
  // sent out of the switch via the chain's normal continuation.
  std::vector<Packet>* injected = nullptr;

  void report(const std::string& module, const std::string& kind,
              const std::string& detail) const {
    if (findings != nullptr) {
      findings->push_back(MboxFinding{now, module, kind, detail});
    }
  }
};

class Middlebox {
 public:
  virtual ~Middlebox() = default;

  virtual const std::string& name() const = 0;

  enum class Verdict { kForward, kDrop };

  // Inspect (and possibly mutate) the packet. kDrop removes it from the
  // network; injected packets in ctx are forwarded regardless.
  virtual Verdict process(Packet& pkt, MboxContext& ctx) = 0;

  // Extra per-packet processing cost beyond the chain's base cost.
  virtual SimDuration extra_delay() const { return 0; }

  // --- Checkpointable state (survivability layer) ---------------------------
  //
  // Stateful modules serialize their dynamic state (flow tables, reassembly
  // buffers, classification caches) so a warm standby can resume mid-session
  // after a crash or a migration. Restore must be all-or-nothing: decode into
  // temporaries and only commit on full success, so a corrupted snapshot
  // leaves the module untouched.

  // Bumped whenever a module's state wire format changes.
  virtual std::uint32_t state_version() const { return 1; }
  // Encodes the module's dynamic state. Stateless modules return empty.
  virtual Bytes serialize_state() const { return {}; }
  // Replaces the module's dynamic state with a previously serialized
  // snapshot. Returns false (without partial mutation) on version mismatch
  // or malformed bytes.
  virtual bool restore_state(const Bytes& state, std::uint32_t version) {
    return version == state_version() && state.empty();
  }

  std::uint64_t packets_seen = 0;
  std::uint64_t packets_dropped = 0;
};

// FlowKey codec shared by stateful modules' state snapshots.
void write_flow_key(ByteWriter& w, const FlowKey& key);
FlowKey read_flow_key(ByteReader& r);

}  // namespace pvn
