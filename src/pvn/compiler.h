// Lowers a PVNC to SDN flow rules + a middlebox chain for one deployment
// point (the access network's SdnSwitch).
//
// Layout produced (two-table pipeline):
//   table 0 — the device's policies (drop / meter / mark / tunnel), each
//             falling through to table 1; plus a scope rule sending all of
//             the device's remaining traffic to table 1.
//   table 1 — diversion through the PVN's middlebox chain, then forwarding
//             (client-side port vs WAN port by direction).
// Non-device traffic never matches (cookie-scoped rules are removed on
// teardown) and follows the switch's default port.
#pragma once

#include <string>
#include <vector>

#include "pvn/pvnc.h"
#include "sdn/flow_table.h"

namespace pvn {

struct DeploymentContext {
  Ipv4Addr device;      // the PVN owner's address
  int client_port = 0;  // switch port toward the device
  int wan_port = 1;     // switch port toward the Internet
  std::string chain_id; // processor id registered on the switch
  std::string cookie;   // rule owner tag, e.g. "pvn:alice-phone"
  // Access-network control plane (deployment server / DHCP): traffic
  // between the device and this address bypasses the PVN so management
  // keeps working after deployment (teardown, redeploy, DHCP refresh).
  Ipv4Addr control;
  int control_port = 2;  // switch port toward the control host
};

struct MeterSpec {
  std::string id;
  Rate rate;
  std::int64_t burst_bytes;
};

struct CompiledPvnc {
  std::vector<std::pair<int, FlowRule>> rules;  // (table index, rule)
  std::vector<MeterSpec> meters;
  std::vector<PvncModule> chain;  // instantiate in order
};

CompiledPvnc compile_pvnc(const Pvnc& pvnc, const DeploymentContext& ctx);

}  // namespace pvn
