// The user-facing PVNC text format (paper §3.1: "high-level tools that
// compile user-readable configurations into low-level SDN code").
//
//   pvnc "alice-phone" {
//     module tls-validator mode=block
//     module pii-detector action=scrub
//     policy drop proto=udp dport=1900
//     policy rate tos=0x20 rate=1500kbps
//     policy mark dport=80 tos=16
//     policy tunnel dport=443 gateway=203.0.113.5
//   }
//
// Lines starting with '#' are comments. Match fields accepted in policies:
// src=<cidr> dst=<cidr> proto=tcp|udp sport=<n> dport=<n> tos=<n|0xNN>.
#pragma once

#include <string>
#include <variant>

#include "pvn/pvnc.h"

namespace pvn {

struct ParseError {
  int line = 0;
  std::string message;
};

// Returns the parsed PVNC or the first error encountered.
std::variant<Pvnc, ParseError> parse_pvnc(const std::string& text);

// Inverse of parse_pvnc (canonical form); round-trips through the parser.
std::string format_pvnc(const Pvnc& pvnc);

}  // namespace pvn
