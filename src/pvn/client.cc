#include "pvn/client.h"

namespace pvn {

PvnClient::PvnClient(Host& host, Pvnc pvnc, ClientConfig cfg)
    : host_(&host), pvnc_(std::move(pvnc)), cfg_(std::move(cfg)) {
  host_->bind_udp(local_port_, [this](Ipv4Addr, Port, Port,
                                      const Bytes& payload) {
    on_packet(payload);
  });
}

void PvnClient::discover_and_deploy(Ipv4Addr server, DoneCallback done) {
  in_progress_ = true;
  awaiting_ack_ = false;
  started_ = host_->sim().now();
  server_ = server;
  offers_.clear();
  outcome_ = DeployOutcome{};
  done_ = std::move(done);

  DiscoveryMessage dm;
  dm.seq = ++seq_;
  dm.device_id = pvnc_.name;
  dm.standards = cfg_.standards;
  dm.modules = pvnc_.module_names();
  dm.est_memory_bytes = pvnc_.est_memory_bytes();
  host_->send_udp(server_, local_port_, kPvnPort,
                  wrap(PvnMsgType::kDiscovery, dm.encode()));
  ++outcome_.messages_sent;

  timer_ = host_->sim().schedule_after(cfg_.offer_wait, [this] {
    timer_ = kInvalidEventId;
    on_offers_collected();
  });
}

void PvnClient::teardown(Ipv4Addr server) {
  Teardown td;
  td.device_id = pvnc_.name;
  host_->send_udp(server, local_port_, kPvnPort,
                  wrap(PvnMsgType::kTeardown, td.encode()));
}

void PvnClient::on_packet(const Bytes& payload) {
  if (!in_progress_) return;
  const auto msg = unwrap(payload);
  if (!msg) return;
  ++outcome_.messages_received;

  switch (msg->first) {
    case PvnMsgType::kOffer: {
      const auto offer = Offer::decode(msg->second);
      if (offer && offer->seq == seq_ && !awaiting_ack_) {
        offers_.push_back(*offer);
        ++outcome_.offers_received;
      }
      break;
    }
    case PvnMsgType::kDeployAck: {
      const auto ack = DeployAck::decode(msg->second);
      if (ack && ack->seq == seq_ && awaiting_ack_) {
        outcome_.ok = true;
        outcome_.chain_id = ack->chain_id;
        finish(outcome_);
      }
      break;
    }
    case PvnMsgType::kDeployNack: {
      const auto nack = DeployNack::decode(msg->second);
      if (nack && nack->seq == seq_ && awaiting_ack_) {
        outcome_.ok = false;
        outcome_.failure = "nack: " + nack->reason;
        finish(outcome_);
      }
      break;
    }
    default:
      break;
  }
}

void PvnClient::on_offers_collected() {
  if (!in_progress_ || awaiting_ack_) return;
  const std::vector<std::string> requested = pvnc_.module_names();
  const int best = pick_best_offer(offers_, requested, cfg_.constraints,
                                   host_->sim().now());
  if (best < 0) {
    outcome_.ok = false;
    outcome_.failure = offers_.empty() ? "no offers (network lacks PVN support)"
                                       : "no acceptable offer";
    finish(outcome_);
    return;
  }
  const Offer& offer = offers_[static_cast<std::size_t>(best)];
  const NegotiationResult negotiated =
      evaluate_offer(offer, requested, cfg_.constraints, host_->sim().now());

  DeployRequest req;
  req.seq = seq_;
  req.device_id = pvnc_.name;
  if (cfg_.pvnc_uri.empty()) {
    req.pvnc = negotiated.action == NegotiationAction::kCounterSubset
                   ? restrict_to_modules(pvnc_, negotiated.accept_modules)
                   : pvnc_;
  } else {
    req.pvnc_uri = cfg_.pvnc_uri;  // the provider fetches the object itself
  }
  req.payment = offer.total_price;
  outcome_.paid = offer.total_price;
  outcome_.utility = negotiated.utility;
  outcome_.deployed_modules = req.pvnc.module_names();

  awaiting_ack_ = true;
  host_->send_udp(offer.deployment_server, local_port_, kPvnPort,
                  wrap(PvnMsgType::kDeployRequest, req.encode()));
  ++outcome_.messages_sent;

  timer_ = host_->sim().schedule_after(cfg_.deploy_timeout, [this] {
    timer_ = kInvalidEventId;
    if (!in_progress_) return;
    outcome_.ok = false;
    outcome_.failure = "deploy timeout";
    finish(outcome_);
  });
}

void PvnClient::finish(DeployOutcome outcome) {
  if (timer_ != kInvalidEventId) {
    host_->sim().cancel(timer_);
    timer_ = kInvalidEventId;
  }
  in_progress_ = false;
  outcome.elapsed = host_->sim().now() - started_;
  if (done_) done_(outcome);
}

}  // namespace pvn
