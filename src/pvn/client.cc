#include "pvn/client.h"

#include <algorithm>
#include <cmath>

#include "tunnel/vpn.h"

namespace pvn {

const char* to_string(SessionState s) {
  switch (s) {
    case SessionState::kIdle: return "idle";
    case SessionState::kDiscovering: return "discovering";
    case SessionState::kDeploying: return "deploying";
    case SessionState::kActive: return "active";
    case SessionState::kFallback: return "fallback";
  }
  return "?";
}

PvnClient::PvnClient(Host& host, Pvnc pvnc, ClientConfig cfg)
    : host_(&host),
      pvnc_(std::move(pvnc)),
      cfg_(std::move(cfg)),
      rng_(host.network().rng().fork()) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_discovery_rounds_ = &reg.counter("pvn.client.discovery_rounds");
  m_offers_received_ = &reg.counter("pvn.client.offers_received");
  m_deploys_ok_ = &reg.counter("pvn.client.deploys_ok");
  m_deploys_failed_ = &reg.counter("pvn.client.deploys_failed");
  m_retransmissions_ = &reg.counter("pvn.client.deploy_retransmissions");
  m_offer_expiries_ = &reg.counter("pvn.client.offer_expiries");
  m_failovers_ = &reg.counter("pvn.client.failovers");
  m_recoveries_ = &reg.counter("pvn.client.recoveries");
  m_renews_sent_ = &reg.counter("pvn.client.renews_sent");
  m_renews_acked_ = &reg.counter("pvn.client.renews_acked");
  m_migrations_ = &reg.counter("pvn.client.migrations");
  telemetry::SpanRecorder::global().set_clock(&host_->sim());
  host_->bind_udp(local_port_, [this](Ipv4Addr, Port, Port,
                                      const Bytes& payload) {
    on_packet(payload);
  });
}

PvnClient::~PvnClient() {
  cancel_timer(collect_timer_);
  cancel_timer(rto_timer_);
  cancel_timer(deadline_timer_);
  cancel_timer(renew_timer_);
  cancel_timer(fallback_timer_);
  cancel_timer(drain_timer_);
  host_->unbind_udp(local_port_);
}

void PvnClient::cancel_timer(EventId& id) {
  if (id != kInvalidEventId) {
    host_->sim().cancel(id);
    id = kInvalidEventId;
  }
}

SimDuration PvnClient::jittered(SimDuration base, int attempt) const {
  double d = static_cast<double>(base);
  for (int i = 1; i < attempt; ++i) d *= cfg_.retry.backoff;
  const double j = cfg_.retry.jitter;
  if (j > 0.0) d *= rng_.uniform(1.0 - j, 1.0 + j);
  return static_cast<SimDuration>(d);
}

SimDuration PvnClient::renew_delay() const {
  const int div = std::max(1, cfg_.session.renew_divisor);
  double d = static_cast<double>(lease_) / div;
  // Desynchronize: clients deployed the same instant must not renew in
  // lockstep every period (thundering herd at the server).
  const double j = cfg_.session.renew_jitter;
  if (j > 0.0) d *= rng_.uniform(1.0 - j, 1.0 + j);
  return static_cast<SimDuration>(d);
}

void PvnClient::discover_and_deploy(Ipv4Addr server, DoneCallback done) {
  in_progress_ = true;
  awaiting_ack_ = false;
  started_ = host_->sim().now();
  server_ = server;
  discovery_round_ = 0;
  deploy_attempt_ = 0;
  outcome_ = DeployOutcome{};
  done_ = std::move(done);
  cycle_span_ = telemetry::SpanRecorder::global().start("deploy_cycle", "pvn",
                                                        pvnc_.name);
  start_discovery_round();
}

void PvnClient::start_discovery_round() {
  // While in fallback the session stays in kFallback through rediscovery
  // attempts: the tunnel is still carrying traffic until a deploy lands.
  // A migration likewise stays kActive: the old session is still serving.
  if (session_ && !in_fallback_ && !migrating_) {
    set_state(SessionState::kDiscovering);
  }
  ++discovery_round_;
  m_discovery_rounds_->inc();
  phase_span_ = telemetry::SpanRecorder::global().start("discovery", "pvn",
                                                        pvnc_.name);
  outcome_.discovery_rounds = discovery_round_;
  offers_.clear();
  outcome_.offers_received = 0;

  DiscoveryMessage dm;
  dm.seq = ++seq_;  // fresh seq per round: stale offers are ignored
  dm.device_id = pvnc_.name;
  dm.standards = cfg_.standards;
  dm.modules = pvnc_.module_names();
  dm.est_memory_bytes = pvnc_.est_memory_bytes();
  const Bytes dm_bytes = wrap(PvnMsgType::kDiscovery, dm.encode());
  host_->send_udp(server_, local_port_, kPvnPort, dm_bytes);
  ++outcome_.messages_sent;
  // Competing networks join the same auction round.
  for (const Ipv4Addr& extra : cfg_.extra_servers) {
    if (extra == server_) continue;
    host_->send_udp(extra, local_port_, kPvnPort, dm_bytes);
    ++outcome_.messages_sent;
  }

  // Round 1 waits exactly offer_wait (keeps the happy-path deployment
  // latency deterministic); later rounds back off with jitter.
  const SimDuration wait = discovery_round_ == 1
                               ? cfg_.offer_wait
                               : jittered(cfg_.offer_wait, discovery_round_);
  collect_timer_ = host_->sim().schedule_after(wait, SimCategory::kPvnControl, [this] {
    collect_timer_ = kInvalidEventId;
    on_offers_collected();
  });
}

void PvnClient::teardown(Ipv4Addr server) {
  Teardown td;
  td.device_id = pvnc_.name;
  host_->send_udp(server, local_port_, kPvnPort,
                  wrap(PvnMsgType::kTeardown, td.encode()));
}

void PvnClient::on_packet(const Bytes& payload) {
  const auto msg = unwrap(payload);
  if (!msg) return;
  if (msg->first == PvnMsgType::kLeaseAck) {
    if (const auto ack = LeaseAck::decode(msg->second)) on_lease_ack(*ack);
    return;
  }
  if (!in_progress_) return;
  ++outcome_.messages_received;

  switch (msg->first) {
    case PvnMsgType::kOffer: {
      const auto offer = Offer::decode(msg->second);
      if (offer && offer->seq == seq_ && !awaiting_ack_ &&
          accept_offer(*offer)) {
        offers_.push_back(*offer);
        ++outcome_.offers_received;
        m_offers_received_->inc();
      }
      break;
    }
    case PvnMsgType::kDeployAck: {
      const auto ack = DeployAck::decode(msg->second);
      if (ack && ack->seq == seq_ && awaiting_ack_) {
        outcome_.ok = true;
        outcome_.chain_id = ack->chain_id;
        outcome_.lease_duration = ack->lease_duration;
        finish(outcome_);
      }
      break;
    }
    case PvnMsgType::kDeployNack: {
      const auto nack = DeployNack::decode(msg->second);
      if (nack && nack->seq == seq_ && awaiting_ack_) {
        outcome_.ok = false;
        outcome_.failure = "nack: " + nack->reason;
        outcome_.nack_code = nack->code;
        outcome_.retry_after = nack->retry_after;
        finish(outcome_);
      }
      break;
    }
    default:
      break;
  }
}

// Structural decode already rejected malformed offers; this drops the
// well-formed-but-adversarial ones and charges the sender's reputation.
bool PvnClient::accept_offer(const Offer& offer) {
  if (!cfg_.vet_offers) return true;
  const OfferDefect defect =
      vet_offer(offer, pvnc_.est_memory_bytes(), cfg_.offer_bounds,
                host_->sim().now());
  if (defect == OfferDefect::kNone) return true;
  ++offers_rejected_;
  ++outcome_.offers_vetted_out;
  telemetry::MetricsRegistry::global()
      .counter("pvn.client.offers_rejected", to_string(defect))
      .inc();
  telemetry::SpanRecorder::global().instant(
      std::string("offer_rejected_") + to_string(defect), "pvn", pvnc_.name);
  if (cfg_.scoreboard != nullptr) {
    cfg_.scoreboard->report(offer.deployment_server.to_string(),
                            Misbehavior::kBogusOffer, host_->sim().now());
  }
  return false;
}

void PvnClient::filter_distrusted_offers() {
  if (cfg_.scoreboard == nullptr && !cfg_.use_breaker) return;
  const SimTime now = host_->sim().now();
  std::erase_if(offers_, [this, now](const Offer& offer) {
    const std::string server = offer.deployment_server.to_string();
    if (cfg_.scoreboard != nullptr &&
        cfg_.scoreboard->quarantined(server, now)) {
      ++offers_quarantined_;
      telemetry::SpanRecorder::global().instant("offer_quarantined", "pvn",
                                                pvnc_.name);
      return true;
    }
    if (cfg_.use_breaker) {
      CircuitBreaker& b = breaker_for(server);
      const BreakerState before = b.state();
      const bool allowed = b.allow(now);
      note_breaker_transition(server, before, b);
      if (!allowed) {
        ++offers_quarantined_;
        telemetry::SpanRecorder::global().instant("offer_breaker_open", "pvn",
                                                  pvnc_.name);
        return true;
      }
    }
    return false;
  });
}

CircuitBreaker& PvnClient::breaker_for(const std::string& server) {
  const auto it = breakers_.find(server);
  if (it != breakers_.end()) return it->second;
  return breakers_.try_emplace(server, CircuitBreaker(cfg_.breaker))
      .first->second;
}

const CircuitBreaker* PvnClient::breaker(const std::string& server) const {
  const auto it = breakers_.find(server);
  return it == breakers_.end() ? nullptr : &it->second;
}

void PvnClient::note_breaker_transition(const std::string& server,
                                        BreakerState before,
                                        const CircuitBreaker& b) {
  if (b.state() == before) return;
  telemetry::MetricsRegistry::global()
      .counter("pvn.client.breaker_transitions", to_string(b.state()))
      .inc();
  telemetry::SpanRecorder::global().instant(
      std::string("breaker_") + to_string(b.state()), "pvn", server);
}

void PvnClient::on_offers_collected() {
  if (!in_progress_ || awaiting_ack_) return;
  phase_span_.finish();  // discovery phase ends when offers are evaluated
  filter_distrusted_offers();
  if (offers_.empty() &&
      discovery_round_ < cfg_.retry.max_discovery_rounds) {
    start_discovery_round();  // retransmit: the discovery may have been lost
    return;
  }
  const std::vector<std::string> requested = pvnc_.module_names();
  const int best = pick_best_offer(offers_, requested, cfg_.constraints,
                                   host_->sim().now());
  if (best < 0) {
    // Offers that were heard but vetted out still mean the network spoke
    // PVN — it just had nothing acceptable to say.
    fail(offers_.empty() && outcome_.offers_vetted_out == 0
             ? "no offers (network lacks PVN support)"
             : "no acceptable offer");
    return;
  }
  chosen_offer_ = offers_[static_cast<std::size_t>(best)];
  telemetry::Span negotiate_span = telemetry::SpanRecorder::global().start(
      "negotiate", "pvn", pvnc_.name);
  const NegotiationResult negotiated = evaluate_offer(
      chosen_offer_, requested, cfg_.constraints, host_->sim().now());

  DeployRequest req;
  req.seq = seq_;
  req.device_id = pvnc_.name;
  if (cfg_.pvnc_uri.empty()) {
    req.pvnc = negotiated.action == NegotiationAction::kCounterSubset
                   ? restrict_to_modules(pvnc_, negotiated.accept_modules)
                   : pvnc_;
  } else {
    req.pvnc_uri = cfg_.pvnc_uri;  // the provider fetches the object itself
  }
  req.payment = chosen_offer_.total_price;
  // Tell the server which modules the user's policy treats as hard
  // constraints: losing one of those later cannot be degraded around.
  req.required_modules = cfg_.constraints.required_modules;
  if (migrating_) {
    // Ask the new server to pull our session state from the old one
    // before acking (live migration handoff).
    req.handoff_server = migrate_from_server_;
    req.handoff_chain_id = migrate_from_chain_;
  }
  outcome_.paid = chosen_offer_.total_price;
  outcome_.utility = negotiated.utility;
  outcome_.deployed_modules = req.pvnc.module_names();

  negotiate_span.finish();
  deploy_bytes_ = wrap(PvnMsgType::kDeployRequest, req.encode());
  deploy_attempt_ = 0;
  awaiting_ack_ = true;
  phase_span_ = telemetry::SpanRecorder::global().start("deploy", "pvn",
                                                        pvnc_.name);
  if (session_ && !in_fallback_ && !migrating_) {
    set_state(SessionState::kDeploying);
  }

  // Overall deadline, independent of per-attempt retransmission timers.
  deadline_timer_ = host_->sim().schedule_after(cfg_.deploy_timeout, SimCategory::kPvnControl, [this] {
    deadline_timer_ = kInvalidEventId;
    if (!in_progress_) return;
    fail("deploy timeout");
  });
  send_deploy_request();
}

void PvnClient::send_deploy_request() {
  // An offer can lapse between collection and a retransmission; deploying
  // against it would only earn a nack, so restart discovery instead.
  if (chosen_offer_.expires_at != 0 &&
      host_->sim().now() > chosen_offer_.expires_at) {
    m_offer_expiries_->inc();
    telemetry::SpanRecorder::global().instant("offer_expired", "pvn",
                                              pvnc_.name);
    awaiting_ack_ = false;
    cancel_timer(deadline_timer_);
    if (discovery_round_ < cfg_.retry.max_discovery_rounds) {
      start_discovery_round();
    } else {
      fail("offer expired before deployment");
    }
    return;
  }
  ++deploy_attempt_;
  outcome_.deploy_attempts = deploy_attempt_;
  if (deploy_attempt_ > 1) {
    ++retransmissions_;
    m_retransmissions_->inc();
    telemetry::SpanRecorder::global().instant("retransmit", "pvn",
                                              pvnc_.name);
  }
  host_->send_udp(chosen_offer_.deployment_server, local_port_, kPvnPort,
                  deploy_bytes_);
  ++outcome_.messages_sent;

  if (deploy_attempt_ >= cfg_.retry.max_deploy_attempts) return;  // deadline decides
  rto_timer_ = host_->sim().schedule_after(
      jittered(cfg_.retry.deploy_rto, deploy_attempt_),
      SimCategory::kPvnControl, [this] {
        rto_timer_ = kInvalidEventId;
        if (!in_progress_ || !awaiting_ack_) return;
        send_deploy_request();
      });
}

void PvnClient::fail(const std::string& reason) {
  outcome_.ok = false;
  outcome_.failure = reason;
  finish(outcome_);
}

void PvnClient::account_deploy_result(const DeployOutcome& outcome) {
  const std::string server = chosen_offer_.deployment_server.to_string();
  const SimTime now = host_->sim().now();
  if (outcome.ok) {
    busy_streaks_.erase(server);
    pending_retry_after_ = 0;
    if (cfg_.scoreboard != nullptr) {
      cfg_.scoreboard->report_success(server, now);
    }
    if (cfg_.use_breaker) {
      CircuitBreaker& b = breaker_for(server);
      const BreakerState before = b.state();
      b.record_success();
      note_breaker_transition(server, before, b);
    }
    return;
  }
  if (outcome.nack_code == NackCode::kBusy) {
    ++busy_nacks_;
    pending_retry_after_ = outcome.retry_after;
    // A busy server is behaving — unless it sheds everything forever. A
    // run of kBusy with no success in between is reported as a NAK flood.
    int& streak = busy_streaks_[server];
    if (++streak >= cfg_.nak_flood_streak && cfg_.scoreboard != nullptr) {
      streak = 0;
      cfg_.scoreboard->report(server, Misbehavior::kNakFlood, now);
    }
  } else {
    busy_streaks_.erase(server);
  }
  if (outcome.failure == "deploy timeout" && cfg_.scoreboard != nullptr) {
    cfg_.scoreboard->report(server, Misbehavior::kDeployTimeout, now);
  }
  if (cfg_.use_breaker) {
    CircuitBreaker& b = breaker_for(server);
    const BreakerState before = b.state();
    b.record_failure(now);
    note_breaker_transition(server, before, b);
  }
}

void PvnClient::finish(DeployOutcome outcome) {
  cancel_timer(collect_timer_);
  cancel_timer(rto_timer_);
  cancel_timer(deadline_timer_);
  in_progress_ = false;
  awaiting_ack_ = false;
  (outcome.ok ? m_deploys_ok_ : m_deploys_failed_)->inc();
  // Only deploy-phase outcomes score the server: a failed discovery round
  // never chose one.
  if (outcome.deploy_attempts > 0) account_deploy_result(outcome);
  phase_span_.finish();
  cycle_span_.finish();
  outcome.elapsed = host_->sim().now() - started_;
  if (done_) {
    // Move out first: the callback may start a new cycle (session retry).
    DoneCallback cb = std::move(done_);
    done_ = nullptr;
    cb(outcome);
  }
  if (session_) on_session_outcome(outcome);
}

// --- session mode ----------------------------------------------------------

void PvnClient::set_state(SessionState s) {
  if (state_ == s) return;
  state_ = s;
  if (on_state_) on_state_(s);
}

void PvnClient::start_session(Ipv4Addr server, DoneCallback done) {
  stop_session();
  session_ = true;
  server_ = server;
  session_done_ = std::move(done);
  session_cycle();
}

void PvnClient::stop_session() {
  session_ = false;
  lease_span_.finish();
  cancel_timer(renew_timer_);
  cancel_timer(fallback_timer_);
  cancel_timer(drain_timer_);
  renew_misses_ = 0;
  fallback_delay_ = 0;
  in_fallback_ = false;
  migrating_ = false;
  if (fallback_ != nullptr && fallback_->active()) fallback_->disable();
  set_state(SessionState::kIdle);
}

void PvnClient::session_cycle() {
  if (!session_ || in_progress_) return;
  discover_and_deploy(server_, nullptr);
}

void PvnClient::on_session_outcome(const DeployOutcome& outcome) {
  if (!session_) return;
  if (session_done_) session_done_(outcome);
  if (migrating_ && !outcome.ok) {
    // Migration failed: the old deployment is still live and its lease is
    // still being renewed — just stay where we are, no fallback.
    migrating_ = false;
    server_ = migrate_from_server_;
    telemetry::SpanRecorder::global().instant("migration_failed", "pvn",
                                              pvnc_.name);
    return;
  }
  if (outcome.ok) {
    enter_active(outcome);
  } else {
    enter_fallback();
  }
}

void PvnClient::enter_active(const DeployOutcome& outcome) {
  if (migrating_) {
    // The new deployment is live; switch over. The old chain keeps serving
    // in-flight packets for the drain window, then is torn down.
    migrating_ = false;
    lease_span_.finish();
    const Ipv4Addr old_server = migrate_from_server_;
    cancel_timer(drain_timer_);
    drain_timer_ = host_->sim().schedule_after(
        migrate_drain_, SimCategory::kPvnControl, [this, old_server] {
          drain_timer_ = kInvalidEventId;
          teardown(old_server);
          ++migrations_;
          m_migrations_->inc();
          telemetry::SpanRecorder::global().instant("migration_switchover",
                                                    "pvn", pvnc_.name);
        });
  }
  chain_id_ = outcome.chain_id;
  lease_ = outcome.lease_duration;
  // The lease lives wherever the winning offer came from — with competing
  // networks in the auction (extra_servers) that is not necessarily the
  // discovery target, and renewing against the wrong host would silently
  // let the real lease lapse.
  active_server_ = chosen_offer_.deployment_server;
  renew_misses_ = 0;
  fallback_delay_ = 0;
  degraded_modules_.clear();
  cancel_timer(fallback_timer_);
  cancel_timer(renew_timer_);  // a migrated-from lease may still have one
  if (in_fallback_) {
    in_fallback_ = false;
    ++recoveries_;
    m_recoveries_->inc();
    telemetry::SpanRecorder::global().instant("recovery", "pvn", pvnc_.name);
  }
  if (fallback_ != nullptr && fallback_->active()) fallback_->disable();
  set_state(SessionState::kActive);
  lease_span_ =
      telemetry::SpanRecorder::global().start("lease", "pvn", pvnc_.name);
  if (lease_ > 0) {
    renew_timer_ = host_->sim().schedule_after(
        renew_delay(), SimCategory::kPvnControl, [this] {
          renew_timer_ = kInvalidEventId;
          send_renew();
        });
  }
}

void PvnClient::migrate(Ipv4Addr new_server, SimDuration drain,
                        DoneCallback done) {
  if (!session_ || state_ != SessionState::kActive || in_progress_ ||
      migrating_) {
    if (done) {
      DeployOutcome outcome;
      outcome.failure = "no active session to migrate";
      done(outcome);
    }
    return;
  }
  migrating_ = true;
  migrate_from_server_ = active_server_;
  migrate_from_chain_ = chain_id_;
  migrate_drain_ = drain;
  telemetry::SpanRecorder::global().instant("migration_begin", "pvn",
                                            pvnc_.name);
  discover_and_deploy(new_server, std::move(done));
}

void PvnClient::enter_fallback() {
  cancel_timer(renew_timer_);
  chain_id_.clear();
  lease_span_.finish();
  if (!in_fallback_) {
    in_fallback_ = true;
    ++failovers_;
    m_failovers_->inc();
    telemetry::SpanRecorder::global().instant("failover", "pvn", pvnc_.name);
    if (fallback_ != nullptr) fallback_->enable();
    set_state(SessionState::kFallback);
    fallback_delay_ = cfg_.session.fallback_retry;
  } else {
    const auto scaled = static_cast<SimDuration>(
        static_cast<double>(fallback_delay_) * cfg_.session.fallback_backoff);
    fallback_delay_ = std::min(scaled, cfg_.session.fallback_retry_max);
  }
  SimDuration delay = fallback_delay_;
  const double j = cfg_.retry.jitter;
  if (j > 0.0) {
    delay = static_cast<SimDuration>(static_cast<double>(delay) *
                                     rng_.uniform(1.0 - j, 1.0 + j));
  }
  // Backpressure: a shedding server told us when to come back; retrying
  // sooner would only earn another kBusy.
  if (pending_retry_after_ > delay) delay = pending_retry_after_;
  pending_retry_after_ = 0;
  fallback_timer_ = host_->sim().schedule_after(delay, SimCategory::kPvnControl, [this] {
    fallback_timer_ = kInvalidEventId;
    session_cycle();
  });
}

void PvnClient::send_renew() {
  if (!session_ || state_ != SessionState::kActive) return;
  if (renew_misses_ >= cfg_.session.renew_miss_limit) {
    // The server has stopped answering: treat the PVN as lost. A host that
    // acked the deployment but then ignores the lease it granted (blackhole)
    // broke its word — charge it as an audit failure so a shared scoreboard
    // steers the fleet's next discovery round elsewhere.
    if (cfg_.scoreboard != nullptr) {
      cfg_.scoreboard->report(active_server_.to_string(),
                              Misbehavior::kAuditFailure, host_->sim().now());
    }
    enter_fallback();
    return;
  }
  LeaseRenew renew;
  renew.seq = ++renew_seq_;
  renew.device_id = pvnc_.name;
  renew.chain_id = chain_id_;
  // Renew against the server holding the lease: during a migration
  // `server_` already points at the new network.
  host_->send_udp(active_server_, local_port_, kPvnPort,
                  wrap(PvnMsgType::kLeaseRenew, renew.encode()));
  ++renews_sent_;
  m_renews_sent_->inc();
  ++renew_misses_;  // cleared when the ack arrives
  renew_timer_ = host_->sim().schedule_after(
      renew_delay(), SimCategory::kPvnControl, [this] {
        renew_timer_ = kInvalidEventId;
        send_renew();
      });
}

void PvnClient::on_lease_ack(const LeaseAck& ack) {
  if (!session_ || state_ != SessionState::kActive) return;
  if (ack.seq != renew_seq_) return;  // stale
  if (!ack.ok) {
    // Lease refused (chain lost, lease expired server-side, ...).
    enter_fallback();
    return;
  }
  renew_misses_ = 0;
  renews_acked_ += 1;
  m_renews_acked_->inc();
  if (ack.lease_duration > 0) lease_ = ack.lease_duration;
  degraded_modules_ = ack.degraded_modules;
}

}  // namespace pvn
