// Automated access-policy negotiation (paper §3.3): "a set of soft and hard
// constraints can inform the decision of whether a user is willing to
// connect to a given access network, and under what conditions."
#pragma once

#include <limits>
#include <map>
#include <string>
#include <vector>

#include "pvn/discovery.h"

namespace pvn {

struct Constraints {
  // Hard: the deployment is unacceptable without these.
  std::vector<std::string> required_modules;
  // No budget by default: any finite price is acceptable.
  double max_price = std::numeric_limits<double>::infinity();

  // Soft: utility gained per module deployed (missing = 0 utility).
  std::map<std::string, double> module_utility;
};

enum class NegotiationAction {
  kAccept,        // deploy the offered subset as-is
  kCounterSubset, // re-request with only the offered modules (new price)
  kReject,        // walk away (wait for other offers / eschew PVNs / tunnel)
};

struct NegotiationResult {
  NegotiationAction action = NegotiationAction::kReject;
  double utility = 0.0;            // achieved utility if accepted
  std::vector<std::string> accept_modules;  // modules to deploy
  std::string reason;
};

// Scores an offer against the constraints. `requested` is what the device
// asked for in its DM.
NegotiationResult evaluate_offer(const Offer& offer,
                                 const std::vector<std::string>& requested,
                                 const Constraints& constraints,
                                 SimTime now);

// Picks the best acceptable offer (highest utility, ties by lower price);
// returns index into `offers`, or -1 if none acceptable.
int pick_best_offer(const std::vector<Offer>& offers,
                    const std::vector<std::string>& requested,
                    const Constraints& constraints, SimTime now);

}  // namespace pvn
