#include "pvn/pvnc_parser.h"

#include <charconv>
#include <sstream>

namespace pvn {
namespace {

std::vector<std::string> split_ws(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string tok;
  while (in >> tok) out.push_back(tok);
  return out;
}

bool parse_int(const std::string& s, long& out) {
  int base = 10;
  const char* begin = s.data();
  const char* end = s.data() + s.size();
  if (s.size() > 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X')) {
    base = 16;
    begin += 2;
  }
  const auto [p, ec] = std::from_chars(begin, end, out, base);
  return ec == std::errc() && p == end;
}

// "1500kbps" / "2mbps" / "400bps"
bool parse_rate(const std::string& s, Rate& out) {
  std::size_t i = 0;
  while (i < s.size() && (std::isdigit(s[i]) != 0)) ++i;
  long value = 0;
  if (!parse_int(s.substr(0, i), value)) return false;
  const std::string unit = s.substr(i);
  if (unit == "bps") {
    out = Rate::bps(value);
  } else if (unit == "kbps") {
    out = Rate::kbps(value);
  } else if (unit == "mbps") {
    out = Rate::mbps(value);
  } else if (unit == "gbps") {
    out = Rate::gbps(value);
  } else {
    return false;
  }
  return true;
}

// Applies one key=value token to a policy; returns error text or "".
std::string apply_policy_kv(PvncPolicy& policy, const std::string& key,
                            const std::string& value) {
  if (key == "src" || key == "dst") {
    const auto prefix = Prefix::parse(value);
    if (!prefix) return "bad cidr: " + value;
    (key == "src" ? policy.match.src : policy.match.dst) = *prefix;
    return "";
  }
  if (key == "proto") {
    if (value == "tcp") {
      policy.match.proto = IpProto::kTcp;
    } else if (value == "udp") {
      policy.match.proto = IpProto::kUdp;
    } else {
      return "bad proto: " + value;
    }
    return "";
  }
  long n = 0;
  if (key == "sport" || key == "dport") {
    if (!parse_int(value, n) || n < 0 || n > 65535) return "bad port: " + value;
    (key == "sport" ? policy.match.src_port : policy.match.dst_port) =
        static_cast<Port>(n);
    return "";
  }
  if (key == "tos") {
    if (!parse_int(value, n) || n < 0 || n > 255) return "bad tos: " + value;
    // For `mark`, tos is the value to set; for other kinds it is a match
    // field. Store in both places; the kind decides which is used.
    policy.tos = static_cast<std::uint8_t>(n);
    if (policy.kind != PvncPolicy::Kind::kMark) {
      policy.match.tos = static_cast<std::uint8_t>(n);
    }
    return "";
  }
  if (key == "rate") {
    if (!parse_rate(value, policy.rate)) return "bad rate: " + value;
    return "";
  }
  if (key == "gateway") {
    const auto addr = Ipv4Addr::parse(value);
    if (!addr) return "bad gateway: " + value;
    policy.gateway = *addr;
    return "";
  }
  if (key == "priority") {
    if (!parse_int(value, n)) return "bad priority: " + value;
    policy.priority = static_cast<int>(n);
    return "";
  }
  return "unknown policy field: " + key;
}

}  // namespace

std::variant<Pvnc, ParseError> parse_pvnc(const std::string& text) {
  Pvnc pvnc;
  bool in_block = false;
  bool saw_block = false;
  int line_no = 0;
  std::istringstream in(text);
  std::string line;

  while (std::getline(in, line)) {
    ++line_no;
    // Strip comments.
    if (const auto hash = line.find('#'); hash != std::string::npos) {
      line.resize(hash);
    }
    const std::vector<std::string> tokens = split_ws(line);
    if (tokens.empty()) continue;

    if (!in_block) {
      if (tokens[0] != "pvnc") {
        return ParseError{line_no, "expected 'pvnc \"name\" {'"};
      }
      if (tokens.size() < 3 || tokens.back() != "{") {
        return ParseError{line_no, "expected 'pvnc \"name\" {'"};
      }
      std::string name = tokens[1];
      if (name.size() >= 2 && name.front() == '"' && name.back() == '"') {
        name = name.substr(1, name.size() - 2);
      }
      if (name.empty()) return ParseError{line_no, "empty pvnc name"};
      pvnc.name = name;
      in_block = true;
      saw_block = true;
      continue;
    }

    if (tokens[0] == "}") {
      in_block = false;
      continue;
    }

    if (tokens[0] == "module") {
      if (tokens.size() < 2) {
        return ParseError{line_no, "module needs a name"};
      }
      PvncModule mod;
      mod.store_name = tokens[1];
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          return ParseError{line_no, "module param must be key=value: " +
                                         tokens[i]};
        }
        mod.params[tokens[i].substr(0, eq)] = tokens[i].substr(eq + 1);
      }
      pvnc.chain.push_back(std::move(mod));
      continue;
    }

    if (tokens[0] == "policy") {
      if (tokens.size() < 2) {
        return ParseError{line_no, "policy needs a kind"};
      }
      PvncPolicy policy;
      const std::string& kind = tokens[1];
      if (kind == "drop") {
        policy.kind = PvncPolicy::Kind::kDrop;
      } else if (kind == "rate") {
        policy.kind = PvncPolicy::Kind::kRateLimit;
      } else if (kind == "mark") {
        policy.kind = PvncPolicy::Kind::kMark;
      } else if (kind == "tunnel") {
        policy.kind = PvncPolicy::Kind::kTunnel;
      } else {
        return ParseError{line_no, "unknown policy kind: " + kind};
      }
      for (std::size_t i = 2; i < tokens.size(); ++i) {
        const auto eq = tokens[i].find('=');
        if (eq == std::string::npos) {
          return ParseError{line_no,
                            "policy field must be key=value: " + tokens[i]};
        }
        const std::string err = apply_policy_kv(
            policy, tokens[i].substr(0, eq), tokens[i].substr(eq + 1));
        if (!err.empty()) return ParseError{line_no, err};
      }
      if (policy.kind == PvncPolicy::Kind::kRateLimit &&
          policy.rate.bits_per_second <= 0) {
        return ParseError{line_no, "rate policy needs rate=<n>[k|m|g]bps"};
      }
      if (policy.kind == PvncPolicy::Kind::kTunnel &&
          policy.gateway.is_unspecified()) {
        return ParseError{line_no, "tunnel policy needs gateway=<addr>"};
      }
      pvnc.policies.push_back(policy);
      continue;
    }

    return ParseError{line_no, "unknown directive: " + tokens[0]};
  }

  if (!saw_block) {
    return ParseError{line_no > 0 ? line_no : 1, "no pvnc block found"};
  }
  if (in_block) return ParseError{line_no, "unterminated pvnc block"};
  return pvnc;
}

std::string format_pvnc(const Pvnc& pvnc) {
  std::ostringstream out;
  out << "pvnc \"" << pvnc.name << "\" {\n";
  for (const PvncModule& m : pvnc.chain) {
    out << "  module " << m.store_name;
    for (const auto& [k, v] : m.params) out << " " << k << "=" << v;
    out << "\n";
  }
  for (const PvncPolicy& p : pvnc.policies) {
    out << "  policy ";
    switch (p.kind) {
      case PvncPolicy::Kind::kDrop: out << "drop"; break;
      case PvncPolicy::Kind::kRateLimit: out << "rate"; break;
      case PvncPolicy::Kind::kMark: out << "mark"; break;
      case PvncPolicy::Kind::kTunnel: out << "tunnel"; break;
    }
    if (p.match.src) out << " src=" << p.match.src->to_string();
    if (p.match.dst) out << " dst=" << p.match.dst->to_string();
    if (p.match.proto) {
      out << " proto=" << to_string(*p.match.proto);
    }
    if (p.match.src_port) out << " sport=" << *p.match.src_port;
    if (p.match.dst_port) out << " dport=" << *p.match.dst_port;
    if (p.kind == PvncPolicy::Kind::kMark) {
      out << " tos=" << static_cast<int>(p.tos);
    } else if (p.match.tos) {
      out << " tos=" << static_cast<int>(*p.match.tos);
    }
    if (p.kind == PvncPolicy::Kind::kRateLimit) {
      out << " rate=" << p.rate.bits_per_second << "bps";
    }
    if (p.kind == PvncPolicy::Kind::kTunnel) {
      out << " gateway=" << p.gateway.to_string();
    }
    if (p.priority != 100) out << " priority=" << p.priority;
    out << "\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace pvn
