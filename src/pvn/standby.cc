#include "pvn/standby.h"

namespace pvn {

StandbyAgent::StandbyAgent(Host& host, MboxHost& standby)
    : host_(&host), standby_(&standby) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_applied_ = &reg.counter("pvn.standby.checkpoints_applied");
  m_rejected_ = &reg.counter("pvn.standby.checkpoints_rejected");
  m_bytes_ = &reg.counter("pvn.standby.bytes_received");
  host_->bind_udp(kPvnStandbyPort,
                  [this](Ipv4Addr, Port, Port, const Bytes& payload) {
                    on_packet(payload);
                  });
}

StandbyAgent::~StandbyAgent() { host_->unbind_udp(kPvnStandbyPort); }

void StandbyAgent::on_packet(const Bytes& payload) {
  const auto msg = unwrap(payload);
  if (!msg || msg->first != PvnMsgType::kStateTransfer) return;
  const auto xfer = StateTransfer::decode(msg->second);
  if (!xfer || !xfer->ok) return;
  bytes_ += xfer->checkpoint.size();
  m_bytes_->inc(xfer->checkpoint.size());
  const auto ckpt = ChainCheckpoint::decode(xfer->checkpoint);
  if (!ckpt || ckpt->chain_id != xfer->chain_id) {
    ++rejected_;
    m_rejected_->inc();
    return;
  }
  // Datagrams can be duplicated or reordered; never step a chain backwards.
  if (const auto it = last_seq_.find(ckpt->chain_id);
      it != last_seq_.end() && ckpt->seq <= it->second) {
    ++rejected_;
    m_rejected_->inc();
    return;
  }
  Chain* chain = standby_->chain(ckpt->chain_id);
  if (chain == nullptr) return;  // standby not (yet) instantiated
  restore_chain(*chain, *ckpt);
  last_seq_[ckpt->chain_id] = ckpt->seq;
  ++applied_;
  m_applied_->inc();
}

}  // namespace pvn
