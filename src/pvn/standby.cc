#include "pvn/standby.h"

#include "util/digest.h"

namespace pvn {

StandbyAgent::StandbyAgent(Host& host, MboxHost& standby)
    : host_(&host), standby_(&standby) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_applied_ = &reg.counter("pvn.standby.checkpoints_applied");
  m_rejected_ = &reg.counter("pvn.standby.checkpoints_rejected");
  m_bytes_ = &reg.counter("pvn.standby.bytes_received");
  host_->bind_udp(kPvnStandbyPort,
                  [this](Ipv4Addr src, Port sport, Port, const Bytes& payload) {
                    on_packet(src, sport, payload);
                  });
}

StandbyAgent::~StandbyAgent() { host_->unbind_udp(kPvnStandbyPort); }

void StandbyAgent::ack(Ipv4Addr dst, Port dport, const StateTransfer& xfer,
                       bool applied, const Bytes& digest) {
  StateAck sa;
  sa.seq = xfer.seq;
  sa.device_id = xfer.device_id;
  sa.chain_id = xfer.chain_id;
  sa.applied = applied;
  sa.digest = digest;
  host_->send_udp(dst, kPvnStandbyPort, dport,
                  wrap(PvnMsgType::kStateAck, sa.encode()));
}

void StandbyAgent::on_packet(Ipv4Addr src, Port sport, const Bytes& payload) {
  const auto msg = unwrap(payload);
  if (!msg || msg->first != PvnMsgType::kStateTransfer) return;
  const auto xfer = StateTransfer::decode(msg->second);
  if (!xfer || !xfer->ok) return;
  bytes_ += xfer->checkpoint.size();
  m_bytes_->inc(xfer->checkpoint.size());
  if (byzantine_) {
    // Claim the state was applied while holding none of it. The digest is
    // computed over bytes the agent never applied — off by the trailing
    // flip — so an honest cross-check catches the lie immediately.
    Bytes forged = xfer->checkpoint;
    if (forged.empty()) {
      forged.push_back(0x5a);
    } else {
      forged.back() ^= 0xff;
    }
    ack(src, sport, *xfer, true, digest_of(forged).to_bytes());
    return;
  }
  const auto ckpt = ChainCheckpoint::decode(xfer->checkpoint);
  if (!ckpt || ckpt->chain_id != xfer->chain_id) {
    ++rejected_;
    m_rejected_->inc();
    ack(src, sport, *xfer, false, {});
    return;
  }
  // Datagrams can be duplicated or reordered; never step a chain backwards.
  if (const auto it = last_seq_.find(ckpt->chain_id);
      it != last_seq_.end() && ckpt->seq <= it->second) {
    ++rejected_;
    m_rejected_->inc();
    ack(src, sport, *xfer, false, {});
    return;
  }
  Chain* chain = standby_->chain(ckpt->chain_id);
  if (chain == nullptr) return;  // standby not (yet) instantiated
  restore_chain(*chain, *ckpt);
  last_seq_[ckpt->chain_id] = ckpt->seq;
  ++applied_;
  m_applied_->inc();
  ack(src, sport, *xfer, true, digest_of(xfer->checkpoint).to_bytes());
}

}  // namespace pvn
