#include "pvn/billing.h"

namespace pvn {

void Ledger::charge(SimTime at, const std::string& payer,
                    const std::string& payee, double amount,
                    const std::string& memo) {
  entries_.push_back(LedgerEntry{at, payer, payee, amount, memo});
}

std::size_t Ledger::file_dispute(SimTime at, const std::string& claimant,
                                 const std::string& respondent, double amount,
                                 const std::string& evidence) {
  disputes_.push_back(Dispute{at, claimant, respondent, amount, evidence,
                              /*refunded=*/false});
  return disputes_.size() - 1;
}

bool Ledger::grant_refund(std::size_t dispute_index) {
  if (dispute_index >= disputes_.size()) return false;
  Dispute& d = disputes_[dispute_index];
  if (d.refunded) return false;
  d.refunded = true;
  charge(d.at, d.respondent, d.claimant, d.amount,
         "refund: " + d.evidence);
  return true;
}

double Ledger::balance(const std::string& party) const {
  double balance = 0.0;
  for (const LedgerEntry& e : entries_) {
    if (e.payee == party) balance += e.amount;
    if (e.payer == party) balance -= e.amount;
  }
  return balance;
}

}  // namespace pvn
