// Warm-standby checkpoint receiver (survivability layer).
//
// A StandbyAgent fronts the standby MboxHost on the access network: the
// DeploymentServer streams periodic incremental ChainCheckpoints to it as
// kStateTransfer datagrams over the simulated network, and the agent applies
// each one to the matching standby chain. When the primary mbox host
// crashes, the server promotes the standby chain through sdn::Controller;
// the chain then resumes from the last applied checkpoint, so the staleness
// of the promoted state is bounded by the checkpoint interval.
//
// Corrupted or replayed transfers are rejected whole: the checkpoint codec
// is digest-protected and the agent drops any seq it has already applied.
//
// Robustness: every transfer is answered with a kStateAck carrying the
// digest of the checkpoint bytes the agent actually applied (or a rejection
// for corrupt/replayed ones). The server cross-checks the digest against
// what it sent, so a Byzantine standby — one that discards state while
// claiming to hold it — is detected and demoted. set_byzantine() turns the
// agent into exactly that adversary for tests and benches.
#pragma once

#include "mbox/checkpoint.h"
#include "proto/host.h"
#include "pvn/discovery.h"
#include "telemetry/metrics.h"

namespace pvn {

// UDP port the agent listens on (the deployment protocol itself uses 3030).
constexpr Port kPvnStandbyPort = 3032;

class StandbyAgent {
 public:
  StandbyAgent(Host& host, MboxHost& standby);
  ~StandbyAgent();

  StandbyAgent(const StandbyAgent&) = delete;
  StandbyAgent& operator=(const StandbyAgent&) = delete;

  std::uint64_t checkpoints_applied() const { return applied_; }
  std::uint64_t checkpoints_rejected() const { return rejected_; }
  std::uint64_t bytes_received() const { return bytes_; }

  // Adversary hook: the agent stops applying checkpoints but keeps acking
  // them as applied — with the digest of state it does not hold. A server
  // cross-checking StateAck digests demotes it within a few checkpoints.
  void set_byzantine(bool lie) { byzantine_ = lie; }
  bool byzantine() const { return byzantine_; }

 private:
  void on_packet(Ipv4Addr src, Port sport, const Bytes& payload);
  void ack(Ipv4Addr dst, Port dport, const StateTransfer& xfer, bool applied,
           const Bytes& digest);

  Host* host_;
  MboxHost* standby_;
  std::map<std::string, std::uint64_t> last_seq_;  // by chain id
  std::uint64_t applied_ = 0;
  std::uint64_t rejected_ = 0;
  std::uint64_t bytes_ = 0;
  bool byzantine_ = false;
  telemetry::Counter* m_applied_ = nullptr;
  telemetry::Counter* m_rejected_ = nullptr;
  telemetry::Counter* m_bytes_ = nullptr;
};

}  // namespace pvn
