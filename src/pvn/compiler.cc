#include "pvn/compiler.h"

namespace pvn {
namespace {

// Restricts a match to the device's traffic in one direction.
FlowMatch scoped(FlowMatch match, Ipv4Addr device, bool outbound) {
  if (outbound) {
    match.src = Prefix{device, 32};
  } else {
    match.dst = Prefix{device, 32};
  }
  return match;
}

// Policies are written from the device's perspective (dst/dport name the
// remote side). For the inbound rule the remote appears as src/sport, so
// the match must be mirrored before scoping — otherwise scoping would
// clobber the user's dst field with the device address.
FlowMatch mirrored(FlowMatch match) {
  std::swap(match.src, match.dst);
  std::swap(match.src_port, match.dst_port);
  return match;
}

}  // namespace

// Pipeline layout (see compiler.h): table 0 scopes the device's traffic and
// diverts it through the middlebox chain FIRST (so classifier marks are
// visible to policies), then table 1 applies the user's policies and
// forwards. Policies are emitted per direction so the final forwarding port
// is known.
CompiledPvnc compile_pvnc(const Pvnc& pvnc, const DeploymentContext& ctx) {
  CompiledPvnc out;
  out.chain = pvnc.chain;

  // Management-plane bypass: device <-> control traffic is never diverted.
  if (!ctx.control.is_unspecified()) {
    FlowRule to_control;
    to_control.priority = 10000;
    to_control.match.src = Prefix{ctx.device, 32};
    to_control.match.dst = Prefix{ctx.control, 32};
    to_control.cookie = ctx.cookie;
    to_control.actions.push_back(ActOutput{ctx.control_port});
    out.rules.emplace_back(0, std::move(to_control));

    FlowRule from_control;
    from_control.priority = 10000;
    from_control.match.src = Prefix{ctx.control, 32};
    from_control.match.dst = Prefix{ctx.device, 32};
    from_control.cookie = ctx.cookie;
    from_control.actions.push_back(ActOutput{ctx.client_port});
    out.rules.emplace_back(0, std::move(from_control));
  }

  // Table 0: scope + divert through the chain, then continue in table 1.
  for (const bool outbound : {true, false}) {
    FlowRule divert;
    divert.priority = 1;
    divert.match = scoped(FlowMatch::any(), ctx.device, outbound);
    divert.cookie = ctx.cookie;
    if (!out.chain.empty()) divert.actions.push_back(ActMbox{ctx.chain_id});
    divert.actions.push_back(ActGotoTable{1});
    out.rules.emplace_back(0, std::move(divert));
  }

  // Table 1: the user's policies (per direction, scoped so a PVN can never
  // touch other users' traffic — §3.3 "Avoiding harm"), then forwarding.
  int meter_seq = 0;
  for (const PvncPolicy& policy : pvnc.policies) {
    std::string meter_id;
    if (policy.kind == PvncPolicy::Kind::kRateLimit) {
      meter_id = ctx.cookie + ":m" + std::to_string(meter_seq++);
      out.meters.push_back(MeterSpec{
          meter_id, policy.rate,
          /*burst=*/policy.rate.bits_per_second / 8 / 4});
    }
    for (const bool outbound : {true, false}) {
      FlowRule rule;
      rule.priority = policy.priority;
      rule.match = scoped(outbound ? policy.match : mirrored(policy.match),
                          ctx.device, outbound);
      rule.cookie = ctx.cookie;
      const int egress = outbound ? ctx.wan_port : ctx.client_port;
      switch (policy.kind) {
        case PvncPolicy::Kind::kDrop:
          rule.actions.push_back(ActDrop{});
          break;
        case PvncPolicy::Kind::kRateLimit:
          rule.actions.push_back(ActMeter{meter_id});
          rule.actions.push_back(ActOutput{egress});
          break;
        case PvncPolicy::Kind::kMark:
          rule.actions.push_back(ActSetTos{policy.tos});
          rule.actions.push_back(ActOutput{egress});
          break;
        case PvncPolicy::Kind::kTunnel:
          // Tunnelled traffic is handled at the remote PVN (Fig. 1c) and
          // always leaves via the WAN.
          rule.actions.push_back(ActTunnel{policy.gateway});
          rule.actions.push_back(ActOutput{ctx.wan_port});
          break;
      }
      out.rules.emplace_back(1, std::move(rule));
    }
  }

  // Table 1 fall-through forwarding per direction.
  for (const bool outbound : {true, false}) {
    FlowRule forward;
    forward.priority = 1;
    forward.match = scoped(FlowMatch::any(), ctx.device, outbound);
    forward.cookie = ctx.cookie;
    forward.actions.push_back(
        ActOutput{outbound ? ctx.wan_port : ctx.client_port});
    out.rules.emplace_back(1, std::move(forward));
  }

  return out;
}

}  // namespace pvn
