// The access network's PVN deployment server (paper §3.1, Fig. 1b).
//
// Listens for discovery messages, emits offers (possibly for a subset of the
// requested modules, priced from the PVN Store), and on a deployment request
// compiles the PVNC, instantiates the middlebox chain on the MboxHost,
// programs the SdnSwitch through the Controller, and acknowledges.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "mbox/host.h"
#include "mbox/registry.h"
#include "proto/host.h"
#include "pvn/billing.h"
#include "pvn/compiler.h"
#include "pvn/discovery.h"
#include "sdn/controller.h"

namespace pvn {

struct ServerConfig {
  std::vector<std::string> standards = {"openflow-lite", "mbox-v1"};
  // Modules this network will deploy; empty = everything in the store.
  // Models the "partial PVN configuration" case (§3.3).
  std::set<std::string> allowed_modules;
  double price_multiplier = 1.0;
  SimDuration offer_ttl = seconds(30);
  std::string switch_name;
  int switch_client_port = 0;
  int switch_wan_port = 1;
  int switch_control_port = 2;
  // Multi-device access networks: maps a device address to the switch port
  // it sits behind. When unset, switch_client_port is used for everyone.
  std::function<int(Ipv4Addr)> client_port_for;
  std::string network_name = "access-net";
};

class DeploymentServer {
 public:
  DeploymentServer(Host& host, PvnStore& store, MboxHost& mbox_host,
                   Controller& controller, Ledger& ledger, ServerConfig cfg);
  ~DeploymentServer();

  std::uint64_t discoveries_seen() const { return discoveries_; }
  std::uint64_t deployments_active() const { return deployments_.size(); }
  std::uint64_t deployments_total() const { return deploy_count_; }
  std::uint64_t nacks_sent() const { return nacks_; }

  // Test/experiment hook: makes the server a cheater that silently skips
  // instantiating the named module while still charging for it (§3.3
  // "Validating that configurations ... are correctly deployed").
  void cheat_skip_module(const std::string& module) { skip_module_ = module; }

  // Failure-injection hook: the server goes silent on deployment requests
  // (answers discovery, never acks) — exercises the client's deploy timeout.
  void drop_deploy_requests(bool drop) { drop_deploys_ = drop; }

 private:
  struct Deployment {
    std::string cookie;
    std::string chain_id;
    std::vector<Middlebox*> instances;
    double paid = 0.0;
  };

  void on_packet(Ipv4Addr src, Port sport, const Bytes& payload);
  void handle_discovery(Ipv4Addr src, Port sport, const DiscoveryMessage& dm);
  // Resolves a pvnc:// URI (fetching the object from cloud storage) before
  // handing the request to handle_deploy.
  void resolve_and_deploy(Ipv4Addr src, Port sport, DeployRequest req);
  void handle_deploy(Ipv4Addr src, Port sport, const DeployRequest& req);
  void handle_teardown(Ipv4Addr src, Port sport, const Teardown& td);
  void nack(Ipv4Addr dst, Port dport, std::uint32_t seq,
            const std::string& reason);

  Host* host_;
  PvnStore* store_;
  MboxHost* mbox_host_;
  Controller* controller_;
  Ledger* ledger_;
  ServerConfig cfg_;
  std::map<std::string, Deployment> deployments_;  // by device id
  std::uint64_t discoveries_ = 0;
  std::uint64_t deploy_count_ = 0;
  std::uint64_t nacks_ = 0;
  std::uint64_t chain_seq_ = 0;
  std::string skip_module_;
  bool drop_deploys_ = false;
  std::unique_ptr<class HttpClient> http_;  // for pvnc:// URI resolution
};

}  // namespace pvn
