// The access network's PVN deployment server (paper §3.1, Fig. 1b).
//
// Listens for discovery messages, emits offers (possibly for a subset of the
// requested modules, priced from the PVN Store), and on a deployment request
// compiles the PVNC, instantiates the middlebox chain on the MboxHost,
// programs the SdnSwitch through the Controller, and acknowledges.
//
// Resilience (§3.3):
//   - Deployment requests are idempotent: a byte-identical retransmission of
//     an already acked (device, seq) request re-sends the cached ack instead
//     of deploying twice; retransmissions of one still in flight are simply
//     dropped. A *different* request reusing a seq (a fresh client session)
//     is a redeployment, not a duplicate.
//   - With ServerConfig::lease_duration > 0 every deployment is a lease.
//     Clients renew with kLeaseRenew; a periodic sweep tears down expired
//     deployments and reclaims their middlebox memory, so a crashed client
//     cannot strand 6 MB per instance forever.
//   - When the MboxHost crashes, chains die with it. Deployments whose lost
//     modules were all optional are degraded: the controller removes just
//     the chain-divert rules so traffic bypasses the dead chain. If a
//     required module is lost the deployment is torn down and the client
//     learns via its next (refused) renewal.
//
// Robustness (overload + Byzantine standbys):
//   - Admission control: at most max_pending_deploys deployments may be in
//     flight; excess requests are shed with an explicit kBusy NAK carrying a
//     retry-after hint, so a flash crowd backs off instead of retransmitting
//     into a black hole. Memory-admission failures NAK as kOutOfMemory.
//   - The lease sweep is amortized: at most max_expiries_per_sweep expired
//     deployments are torn down per tick, the rest drain on follow-up ticks,
//     so a mass expiry cannot monopolize the event loop.
//   - Standby pools: the server can mirror onto several standby hosts. Every
//     streamed checkpoint is acknowledged (kStateAck) with the digest of
//     what the standby applied; a pool whose acks repeatedly contradict what
//     was sent is demoted as Byzantine and its deployments re-mirror onto
//     the next healthy pool, without disturbing the active sessions.
#pragma once

#include <map>
#include <memory>
#include <set>

#include "mbox/host.h"
#include "mbox/registry.h"
#include "proto/host.h"
#include "pvn/billing.h"
#include "pvn/compiler.h"
#include "pvn/discovery.h"
#include "sdn/controller.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"

namespace pvn {

// One warm-standby compute pool: the mbox host chains mirror onto, and the
// address of the StandbyAgent fronting it (checkpoint stream destination).
struct StandbyPoolConfig {
  MboxHost* host = nullptr;
  Ipv4Addr addr;
};

struct ServerConfig {
  std::vector<std::string> standards = {"openflow-lite", "mbox-v1"};
  // Modules this network will deploy; empty = everything in the store.
  // Models the "partial PVN configuration" case (§3.3).
  std::set<std::string> allowed_modules;
  double price_multiplier = 1.0;
  SimDuration offer_ttl = seconds(30);
  // Deployments become leases when > 0: unrenewed deployments are reclaimed
  // after this long. 0 (default) keeps the original deploy-forever behavior.
  SimDuration lease_duration = 0;
  std::string switch_name;
  int switch_client_port = 0;
  int switch_wan_port = 1;
  int switch_control_port = 2;
  // Multi-device access networks: maps a device address to the switch port
  // it sits behind. When unset, switch_client_port is used for everyone.
  std::function<int(Ipv4Addr)> client_port_for;
  std::string network_name = "access-net";

  // --- survivability (warm standby + migration) ------------------------
  // A second mbox compute pool. When set, offers advertise standby
  // capacity, every deployment gets a warm-standby chain here, and a
  // primary crash promotes the standby through the controller instead of
  // degrading or tearing down. Must outlive the server.
  MboxHost* standby_host = nullptr;
  // Address of the StandbyAgent fronting standby_host; incremental
  // checkpoints stream to it as kStateTransfer datagrams.
  Ipv4Addr standby_addr;
  // Period of the incremental checkpoint stream; bounds the staleness of
  // promoted state. <= 0 disables streaming (cold standby).
  SimDuration checkpoint_interval = milliseconds(200);
  // Migration: how long to wait for the old server's kStateTransfer before
  // acking the deployment with a cold chain.
  SimDuration handoff_timeout = milliseconds(500);

  // --- robustness (overload control + Byzantine standbys) --------------
  // Bounded pending-work queue: at most this many deployments in flight at
  // once; excess requests are shed with kBusy + busy_retry_after instead of
  // being silently queued without bound. 0 = unbounded (no shedding).
  std::size_t max_pending_deploys = 0;
  SimDuration busy_retry_after = milliseconds(500);
  // Lease-sweep amortization: tear down at most this many expired
  // deployments per sweep tick (0 = unbounded); the backlog drains on
  // follow-up ticks spaced sweep_drain_interval apart, so a mass expiry
  // cannot monopolize the event loop.
  std::size_t max_expiries_per_sweep = 0;
  SimDuration sweep_drain_interval = milliseconds(10);
  // Additional standby pools beyond standby_host/standby_addr. A crashed or
  // demoted (Byzantine) pool fails over to the next healthy one.
  std::vector<StandbyPoolConfig> extra_standbys;
  // Demote a standby pool after this many checkpoint acks whose digest
  // contradicts what was sent (or that report the state unapplied).
  // <= 0 disables the Byzantine cross-check.
  int byzantine_ack_threshold = 3;
};

class DeploymentServer {
 public:
  DeploymentServer(Host& host, PvnStore& store, MboxHost& mbox_host,
                   Controller& controller, Ledger& ledger, ServerConfig cfg);
  ~DeploymentServer();

  std::uint64_t discoveries_seen() const { return discoveries_; }
  std::uint64_t deployments_active() const { return deployments_.size(); }
  std::uint64_t deployments_total() const { return deploy_count_; }
  std::uint64_t nacks_sent() const { return nacks_; }
  // Resilience telemetry.
  std::uint64_t duplicate_deploys() const { return duplicates_; }
  std::uint64_t leases_renewed() const { return renews_; }
  std::uint64_t leases_expired() const { return leases_expired_; }
  std::uint64_t degraded_deployments() const { return degraded_; }
  std::uint64_t chains_lost() const { return chains_lost_; }
  // Survivability telemetry.
  std::uint64_t standbys_ready() const { return standbys_ready_; }
  std::uint64_t standby_promotions() const { return standby_promotions_; }
  std::uint64_t standbys_lost() const { return standbys_lost_; }
  std::uint64_t checkpoints_streamed() const { return checkpoints_streamed_; }
  std::uint64_t checkpoint_bytes() const { return checkpoint_bytes_; }
  std::uint64_t state_requests_served() const { return state_requests_; }
  std::uint64_t handoffs_completed() const { return handoffs_completed_; }
  std::uint64_t handoff_timeouts() const { return handoff_timeouts_; }
  // Robustness telemetry.
  std::uint64_t deploys_shed() const { return sheds_; }
  std::size_t pending_deploys() const { return pending_.size(); }
  std::uint64_t sweep_ticks() const { return sweep_ticks_; }
  std::uint64_t max_swept_per_tick() const { return max_swept_per_tick_; }
  std::uint64_t bad_state_acks() const { return bad_state_acks_; }
  std::uint64_t standbys_demoted() const { return standbys_demoted_; }
  std::uint64_t standbys_remirrored() const { return standbys_remirrored_; }

  // Test/experiment hook: makes the server a cheater that silently skips
  // instantiating the named module while still charging for it (§3.3
  // "Validating that configurations ... are correctly deployed").
  void cheat_skip_module(const std::string& module) { skip_module_ = module; }

  // Failure-injection hook: the server goes silent on deployment requests
  // (answers discovery, never acks) — exercises the client's deploy timeout.
  void drop_deploy_requests(bool drop) { drop_deploys_ = drop; }

 private:
  struct Deployment {
    std::string cookie;
    std::string chain_id;
    std::vector<Middlebox*> instances;
    double paid = 0.0;
    // Resilience bookkeeping.
    std::uint32_t seq = 0;       // deploy request seq, for deduplication
    Bytes request_bytes;         // encoded request; a duplicate must match it
    Bytes ack_bytes;             // cached ack, re-sent on duplicate requests
    SimTime expires_at = 0;      // 0 = no lease
    int mbox_generation = 0;     // MboxHost::crashes() at instantiation
    bool degraded = false;
    std::vector<std::string> module_names;
    std::vector<std::string> required_modules;  // from the client
    // Survivability bookkeeping.
    Pvnc pvnc;                   // retained to instantiate the standby chain
    std::vector<Middlebox*> standby_instances;
    int standby_pool = -1;       // index into pools_; -1 = no standby
    int standby_generation = 0;  // standby host crashes() at instantiation
    bool standby_ready = false;
    bool promoted = false;       // traffic now runs on the standby chain
    std::uint64_t ckpt_seq = 0;
    std::map<std::string, Digest> ckpt_digests;  // incremental-capture state
    EventId ckpt_timer = kInvalidEventId;
    // Byzantine cross-check: digest of the last streamed checkpoint, to be
    // matched against the standby's kStateAck.
    std::uint32_t last_sent_seq = 0;
    Digest last_sent_digest;
  };

  // Runtime state of one standby pool.
  struct StandbyPool {
    MboxHost* host = nullptr;
    Ipv4Addr addr;
    bool byzantine = false;  // demoted: never selected again
    int bad_acks = 0;        // consecutive contradicting StateAcks
  };

  // A deployment waiting for the old server's checkpoint (live migration).
  struct PendingHandoff {
    std::string chain_id;        // the NEW chain to restore into
    std::uint32_t seq = 0;       // StateRequest seq, matches the reply
    std::function<void(bool)> ack;  // ack_deployment(state_restored)
    EventId timer = kInvalidEventId;
  };

  void on_packet(Ipv4Addr src, Port sport, const Bytes& payload);
  void handle_discovery(Ipv4Addr src, Port sport, const DiscoveryMessage& dm);
  // Resolves a pvnc:// URI (fetching the object from cloud storage) before
  // handing the request to handle_deploy.
  void resolve_and_deploy(Ipv4Addr src, Port sport, DeployRequest req);
  void handle_deploy(Ipv4Addr src, Port sport, const DeployRequest& req);
  void handle_teardown(Ipv4Addr src, Port sport, const Teardown& td);
  void handle_renew(Ipv4Addr src, Port sport, const LeaseRenew& renew);
  void nack(Ipv4Addr dst, Port dport, std::uint32_t seq,
            const std::string& reason,
            NackCode code = NackCode::kUnspecified, SimDuration retry_after = 0);

  // Removes a device's deployment: flow rules, chain processor, middlebox
  // instances (unless the MboxHost crash already destroyed them).
  void teardown_device(const std::string& device_id);
  // Invoked synchronously from MboxHost::crash(): unregisters the now-dead
  // chain processors, then promotes each deployment's warm standby when one
  // is ready, degrading or tearing down the rest.
  void on_mbox_crash();
  void arm_sweep();
  void sweep();

  // --- survivability ---------------------------------------------------
  // Instantiates the warm-standby chain for an acked deployment and starts
  // the incremental checkpoint stream once it is ready.
  void setup_standby(const std::string& device_id);
  void arm_checkpoint(const std::string& device_id);
  void stream_checkpoint(const std::string& device_id);
  // First pool that is present, healthy, and not demoted; -1 if none.
  int pick_standby_pool() const;
  bool standby_available() const { return pick_standby_pool() >= 0; }
  // Cross-checks a standby's checkpoint ack against what was streamed;
  // enough contradictions demote the pool as Byzantine.
  void handle_state_ack(const StateAck& sa);
  // Marks the pool Byzantine, destroys its standby chains, and re-mirrors
  // the affected deployments onto the next healthy pool. Active sessions
  // (still running on their primaries) are untouched.
  void demote_pool(int pool, const std::string& why);
  // Standby host crash: promoted deployments lose their chain (degrade or
  // teardown); unpromoted ones just lose the warm spare.
  void on_standby_crash(int pool);
  // Degrades `dep` in place when every lost module was optional; returns
  // true when the deployment must be torn down instead.
  bool degrade_or_flag_teardown(const std::string& device_id, Deployment& dep);
  // Migration: fetch the old server's final checkpoint before acking.
  void begin_handoff(const DeployRequest& req, const std::string& chain_id,
                     std::function<void(bool)> ack);
  void handle_state_request(Ipv4Addr src, Port sport, const StateRequest& sr);
  void handle_state_transfer(const StateTransfer& xfer);
  void cancel_handoff(const std::string& device_id);

  Host* host_;
  PvnStore* store_;
  MboxHost* mbox_host_;
  Controller* controller_;
  Ledger* ledger_;
  ServerConfig cfg_;
  std::vector<StandbyPool> pools_;  // standby_host + extra_standbys
  std::map<std::string, Deployment> deployments_;  // by device id
  std::map<std::string, Bytes> pending_;  // in-flight deploys, encoded request
  std::map<std::string, PendingHandoff> pending_handoffs_;  // by device id
  std::uint64_t discoveries_ = 0;
  std::uint64_t deploy_count_ = 0;
  std::uint64_t nacks_ = 0;
  std::uint64_t duplicates_ = 0;
  std::uint64_t renews_ = 0;
  std::uint64_t leases_expired_ = 0;
  std::uint64_t degraded_ = 0;
  std::uint64_t chains_lost_ = 0;
  std::uint64_t standbys_ready_ = 0;
  std::uint64_t standby_promotions_ = 0;
  std::uint64_t standbys_lost_ = 0;
  std::uint64_t checkpoints_streamed_ = 0;
  std::uint64_t checkpoint_bytes_ = 0;
  std::uint64_t state_requests_ = 0;
  std::uint64_t handoffs_completed_ = 0;
  std::uint64_t handoff_timeouts_ = 0;
  std::uint64_t sheds_ = 0;
  std::uint64_t sweep_ticks_ = 0;
  std::uint64_t max_swept_per_tick_ = 0;
  std::uint64_t bad_state_acks_ = 0;
  std::uint64_t standbys_demoted_ = 0;
  std::uint64_t standbys_remirrored_ = 0;
  std::uint32_t state_seq_ = 0;  // StateRequest sequence numbers
  std::uint64_t chain_seq_ = 0;
  EventId sweep_timer_ = kInvalidEventId;
  std::string skip_module_;
  bool drop_deploys_ = false;
  // Telemetry: aggregate server-side control-plane counters.
  telemetry::Counter* m_discoveries_ = nullptr;
  telemetry::Counter* m_offers_sent_ = nullptr;
  telemetry::Counter* m_deploys_ = nullptr;
  telemetry::Counter* m_nacks_ = nullptr;
  telemetry::Counter* m_duplicate_deploys_ = nullptr;
  telemetry::Counter* m_leases_renewed_ = nullptr;
  telemetry::Counter* m_leases_expired_ = nullptr;
  telemetry::Counter* m_degraded_ = nullptr;
  telemetry::Counter* m_chains_lost_ = nullptr;
  telemetry::Counter* m_standbys_ready_ = nullptr;
  telemetry::Counter* m_standby_promotions_ = nullptr;
  telemetry::Counter* m_standbys_lost_ = nullptr;
  telemetry::Counter* m_checkpoints_streamed_ = nullptr;
  telemetry::Counter* m_checkpoint_bytes_ = nullptr;
  telemetry::Counter* m_state_requests_ = nullptr;
  telemetry::Counter* m_handoffs_completed_ = nullptr;
  telemetry::Counter* m_handoff_timeouts_ = nullptr;
  telemetry::Counter* m_sheds_ = nullptr;
  telemetry::Counter* m_bad_state_acks_ = nullptr;
  telemetry::Counter* m_standbys_demoted_ = nullptr;
  telemetry::Counter* m_standbys_remirrored_ = nullptr;
  std::unique_ptr<class HttpClient> http_;  // for pvnc:// URI resolution
};

}  // namespace pvn
