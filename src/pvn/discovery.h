// PVN Discovery and Deployment Protocol (paper §3.1), over UDP port 3030.
//
//   device                         network
//     | -- DiscoveryMessage  -->     |   (direct, or anycast flooding)
//     | <-- Offer ------------       |   (subset of modules, price, expiry)
//     | -- DeployRequest ---->       |   (PVNC + payment)
//     | <-- DeployAck --------       |   (chain id, lease, DHCP refresh)
//     | <-- DeployNack -------       |   (failure reason)
//     | -- LeaseRenew ------->       |   (periodic, keeps the chain alive)
//     | <-- LeaseAck ---------       |   (extends / rejects the lease)
//
// All datagrams may be lost: clients retransmit with backoff, and the server
// treats a (device_id, seq) pair as idempotent, so duplicates re-ack rather
// than re-deploy. Deployments are leases — a server configured with a lease
// duration expires chains whose owner stops renewing and reclaims their
// middlebox memory.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pvn/pvnc.h"

namespace pvn {

constexpr Port kPvnPort = 3030;

enum class PvnMsgType : std::uint8_t {
  kDiscovery = 1,
  kOffer = 2,
  kDeployRequest = 3,
  kDeployAck = 4,
  kDeployNack = 5,
  kTeardown = 6,
  kTeardownAck = 7,
  kLeaseRenew = 8,
  kLeaseAck = 9,
  // Survivability (state checkpoint exchange): a server asks a peer for a
  // device's final chain checkpoint during live migration, and checkpoints
  // stream to warm standbys / migration targets as kStateTransfer.
  kStateRequest = 10,
  kStateTransfer = 11,
  // Robustness: a standby acknowledges each applied checkpoint with the
  // digest of what it applied, so the server can cross-check a Byzantine
  // standby that drops or corrupts state while claiming to hold it.
  kStateAck = 12,
};

// Why a deployment request was refused. kBusy carries a retry-after hint:
// the server is shedding load, not rejecting the request on its merits, so
// the client should back off and retry instead of failing over.
enum class NackCode : std::uint8_t {
  kUnspecified = 0,
  kBusy = 1,          // admission control shed; honor retry_after
  kOutOfMemory = 2,   // middlebox pool cannot hold the chain
  kPolicy = 3,        // a module is not allowed on this network
  kPayment = 4,       // offered payment below the quoted price
  kInvalidPvnc = 5,   // the PVNC (or its URI) failed validation
  kUnavailable = 6,   // mbox host crashed / no dataplane
};
const char* to_string(NackCode code);

struct DiscoveryMessage {
  std::uint32_t seq = 0;  // incremented per discovery attempt (§3.1)
  std::string device_id;
  std::vector<std::string> standards;  // e.g. {"openflow-lite", "mbox-v1"}
  std::vector<std::string> modules;    // requested module names
  std::int64_t est_memory_bytes = 0;

  Bytes encode() const;
  static std::optional<DiscoveryMessage> decode(const Bytes& raw);
};

struct Offer {
  std::uint32_t seq = 0;              // echoes the DM seq
  Ipv4Addr deployment_server;
  std::vector<std::string> standards;
  std::vector<std::string> offered_modules;  // may be a subset
  double total_price = 0.0;
  SimTime expires_at = 0;
  // The network has a second mbox host and will place a warm-standby chain
  // (checkpoint-fed) next to every deployment it accepts.
  bool standby_capacity = false;
  // Lease the server would grant (0 = deploy-forever). Advertised so the
  // device can reject absurd terms before paying for a deployment.
  SimDuration lease_duration = 0;
  // Middlebox memory the server claims to have free. A host that lies here
  // (to attract deployments it cannot serve) is caught by vet_offer's
  // plausibility bound and, later, by deploy failures feeding reputation.
  std::int64_t capacity_bytes = 0;

  Bytes encode() const;
  static std::optional<Offer> decode(const Bytes& raw);
};

// Client-side sanity vetting of a decoded offer (untrusted-host defense):
// structural decode alone cannot reject an offer whose fields are
// well-formed but adversarial — a near-zero lease that forces renewal
// storms, a price no honest network would quote, a capacity claim no
// hardware could back. Offers failing a bound are dropped before
// negotiation and reported against the sender's reputation.
enum class OfferDefect : std::uint8_t {
  kNone = 0,
  kPriceNotFinite,        // NaN / inf / negative price
  kPriceAbsurd,           // above any plausible quote
  kExpired,               // expiry already in the past
  kExpiryTooFar,          // TTL beyond any honest offer lifetime
  kLeaseTooShort,         // nonzero lease shorter than a renewal can sustain
  kLeaseTooLong,          // lease longer than any honest network grants
  kCapacityImplausible,   // negative, or more memory than hardware allows
  kInsufficientCapacity,  // less free memory than the request needs
};
const char* to_string(OfferDefect defect);

struct OfferBounds {
  double max_price = 10'000.0;
  SimDuration min_lease = milliseconds(100);
  SimDuration max_lease = seconds(7 * 24 * 3600);
  SimDuration max_offer_ttl = seconds(3600);
  std::int64_t max_capacity_bytes = 1LL << 40;  // 1 TiB of mbox memory
  // When true, offers advertising less free capacity than the requested
  // chain needs are rejected client-side (kInsufficientCapacity) instead of
  // being discovered via a deploy NAK. Off by default: a legitimately full
  // host is not misbehaving, and tests/benches exercise the NAK path.
  bool require_capacity = false;
};

// Returns the first defect found, or kNone for a sane offer.
// `est_memory_bytes` is what the requesting device's chain needs.
OfferDefect vet_offer(const Offer& offer, std::int64_t est_memory_bytes,
                      const OfferBounds& bounds, SimTime now);

struct DeployRequest {
  std::uint32_t seq = 0;
  std::string device_id;
  Pvnc pvnc;
  // Alternative to an inline PVNC (§3.1: "provided to an access network as
  // a URI to a globally accessible PVNC object"): "pvnc://<ipv4>/<path>".
  // When set, the server fetches and decodes the object itself and deploys
  // the subset of it that its policy allows.
  std::string pvnc_uri;
  double payment = 0.0;
  // The client's hard constraints among the deployed modules. If one of
  // these is later lost to a middlebox failure the server must reject the
  // lease (the client falls back to tunneling) instead of degrading.
  std::vector<std::string> required_modules;
  // Live migration handoff: when handoff_server is set, the device carries
  // an active deployment (`handoff_chain_id`) on that server, and this
  // server should fetch its final state checkpoint (kStateRequest) before
  // acking, so stateful modules resume instead of cold-starting.
  Ipv4Addr handoff_server;
  std::string handoff_chain_id;

  Bytes encode() const;
  static std::optional<DeployRequest> decode(const Bytes& raw);
};

// Parses "pvnc://<ipv4>/<path>"; returns false on malformed input.
bool parse_pvnc_uri(const std::string& uri, Ipv4Addr& host, std::string& path);

struct DeployAck {
  std::uint32_t seq = 0;
  std::string chain_id;
  bool dhcp_refresh = true;
  // How long the deployment stays alive without a renew (0 = no lease: the
  // chain persists until an explicit teardown).
  SimDuration lease_duration = 0;
  // A warm-standby chain backs this deployment (crashes promote instead of
  // falling back to the device tunnel).
  bool standby = false;
  // The deployment resumed from a migration handoff checkpoint.
  bool state_restored = false;

  Bytes encode() const;
  static std::optional<DeployAck> decode(const Bytes& raw);
};

struct LeaseRenew {
  std::uint32_t seq = 0;
  std::string device_id;
  std::string chain_id;

  Bytes encode() const;
  static std::optional<LeaseRenew> decode(const Bytes& raw);
};

struct LeaseAck {
  std::uint32_t seq = 0;
  bool ok = false;
  SimDuration lease_duration = 0;
  // Modules the server can no longer run (middlebox failure) but has
  // bypassed because the client marked them optional.
  std::vector<std::string> degraded_modules;
  std::string reason;  // set when !ok

  Bytes encode() const;
  static std::optional<LeaseAck> decode(const Bytes& raw);
};

struct DeployNack {
  std::uint32_t seq = 0;
  std::string reason;
  NackCode code = NackCode::kUnspecified;
  // kBusy / kOutOfMemory: how long the client should wait before retrying
  // this server. 0 = no hint (fail over immediately).
  SimDuration retry_after = 0;

  Bytes encode() const;
  static std::optional<DeployNack> decode(const Bytes& raw);
};

struct Teardown {
  std::string device_id;

  Bytes encode() const;
  static std::optional<Teardown> decode(const Bytes& raw);
};

// Asks the server holding `chain_id` for `device_id` to reply with that
// chain's final checkpoint (live migration, new server -> old server).
struct StateRequest {
  std::uint32_t seq = 0;
  std::string device_id;
  std::string chain_id;

  Bytes encode() const;
  static std::optional<StateRequest> decode(const Bytes& raw);
};

// Carries one digest-protected ChainCheckpoint (mbox/checkpoint.h): either
// a periodic incremental toward a warm standby, or the final full snapshot
// answering a StateRequest. `checkpoint` is opaque here; receivers validate
// it with ChainCheckpoint::decode, which rejects any corruption outright.
struct StateTransfer {
  std::uint32_t seq = 0;
  std::string device_id;
  std::string chain_id;
  bool ok = false;       // false: the sender had no state to hand over
  Bytes checkpoint;

  Bytes encode() const;
  static std::optional<StateTransfer> decode(const Bytes& raw);
};

// A standby's acknowledgment of one applied kStateTransfer. `digest` is the
// digest of the checkpoint bytes the standby actually applied; the server
// cross-checks it against what it sent, so a Byzantine standby that drops
// or rewrites state while claiming to hold it is detected and demoted.
struct StateAck {
  std::uint32_t seq = 0;
  std::string device_id;
  std::string chain_id;
  bool applied = false;
  Bytes digest;

  Bytes encode() const;
  static std::optional<StateAck> decode(const Bytes& raw);
};

// Wraps/unwraps a typed message for the UDP payload.
Bytes wrap(PvnMsgType type, const Bytes& body);
std::optional<std::pair<PvnMsgType, Bytes>> unwrap(const Bytes& payload);

}  // namespace pvn
