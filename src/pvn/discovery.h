// PVN Discovery and Deployment Protocol (paper §3.1), over UDP port 3030.
//
//   device                         network
//     | -- DiscoveryMessage  -->     |   (direct, or anycast flooding)
//     | <-- Offer ------------       |   (subset of modules, price, expiry)
//     | -- DeployRequest ---->       |   (PVNC + payment)
//     | <-- DeployAck --------       |   (chain id, lease, DHCP refresh)
//     | <-- DeployNack -------       |   (failure reason)
//     | -- LeaseRenew ------->       |   (periodic, keeps the chain alive)
//     | <-- LeaseAck ---------       |   (extends / rejects the lease)
//
// All datagrams may be lost: clients retransmit with backoff, and the server
// treats a (device_id, seq) pair as idempotent, so duplicates re-ack rather
// than re-deploy. Deployments are leases — a server configured with a lease
// duration expires chains whose owner stops renewing and reclaims their
// middlebox memory.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "pvn/pvnc.h"

namespace pvn {

constexpr Port kPvnPort = 3030;

enum class PvnMsgType : std::uint8_t {
  kDiscovery = 1,
  kOffer = 2,
  kDeployRequest = 3,
  kDeployAck = 4,
  kDeployNack = 5,
  kTeardown = 6,
  kTeardownAck = 7,
  kLeaseRenew = 8,
  kLeaseAck = 9,
  // Survivability (state checkpoint exchange): a server asks a peer for a
  // device's final chain checkpoint during live migration, and checkpoints
  // stream to warm standbys / migration targets as kStateTransfer.
  kStateRequest = 10,
  kStateTransfer = 11,
};

struct DiscoveryMessage {
  std::uint32_t seq = 0;  // incremented per discovery attempt (§3.1)
  std::string device_id;
  std::vector<std::string> standards;  // e.g. {"openflow-lite", "mbox-v1"}
  std::vector<std::string> modules;    // requested module names
  std::int64_t est_memory_bytes = 0;

  Bytes encode() const;
  static std::optional<DiscoveryMessage> decode(const Bytes& raw);
};

struct Offer {
  std::uint32_t seq = 0;              // echoes the DM seq
  Ipv4Addr deployment_server;
  std::vector<std::string> standards;
  std::vector<std::string> offered_modules;  // may be a subset
  double total_price = 0.0;
  SimTime expires_at = 0;
  // The network has a second mbox host and will place a warm-standby chain
  // (checkpoint-fed) next to every deployment it accepts.
  bool standby_capacity = false;

  Bytes encode() const;
  static std::optional<Offer> decode(const Bytes& raw);
};

struct DeployRequest {
  std::uint32_t seq = 0;
  std::string device_id;
  Pvnc pvnc;
  // Alternative to an inline PVNC (§3.1: "provided to an access network as
  // a URI to a globally accessible PVNC object"): "pvnc://<ipv4>/<path>".
  // When set, the server fetches and decodes the object itself and deploys
  // the subset of it that its policy allows.
  std::string pvnc_uri;
  double payment = 0.0;
  // The client's hard constraints among the deployed modules. If one of
  // these is later lost to a middlebox failure the server must reject the
  // lease (the client falls back to tunneling) instead of degrading.
  std::vector<std::string> required_modules;
  // Live migration handoff: when handoff_server is set, the device carries
  // an active deployment (`handoff_chain_id`) on that server, and this
  // server should fetch its final state checkpoint (kStateRequest) before
  // acking, so stateful modules resume instead of cold-starting.
  Ipv4Addr handoff_server;
  std::string handoff_chain_id;

  Bytes encode() const;
  static std::optional<DeployRequest> decode(const Bytes& raw);
};

// Parses "pvnc://<ipv4>/<path>"; returns false on malformed input.
bool parse_pvnc_uri(const std::string& uri, Ipv4Addr& host, std::string& path);

struct DeployAck {
  std::uint32_t seq = 0;
  std::string chain_id;
  bool dhcp_refresh = true;
  // How long the deployment stays alive without a renew (0 = no lease: the
  // chain persists until an explicit teardown).
  SimDuration lease_duration = 0;
  // A warm-standby chain backs this deployment (crashes promote instead of
  // falling back to the device tunnel).
  bool standby = false;
  // The deployment resumed from a migration handoff checkpoint.
  bool state_restored = false;

  Bytes encode() const;
  static std::optional<DeployAck> decode(const Bytes& raw);
};

struct LeaseRenew {
  std::uint32_t seq = 0;
  std::string device_id;
  std::string chain_id;

  Bytes encode() const;
  static std::optional<LeaseRenew> decode(const Bytes& raw);
};

struct LeaseAck {
  std::uint32_t seq = 0;
  bool ok = false;
  SimDuration lease_duration = 0;
  // Modules the server can no longer run (middlebox failure) but has
  // bypassed because the client marked them optional.
  std::vector<std::string> degraded_modules;
  std::string reason;  // set when !ok

  Bytes encode() const;
  static std::optional<LeaseAck> decode(const Bytes& raw);
};

struct DeployNack {
  std::uint32_t seq = 0;
  std::string reason;

  Bytes encode() const;
  static std::optional<DeployNack> decode(const Bytes& raw);
};

struct Teardown {
  std::string device_id;

  Bytes encode() const;
  static std::optional<Teardown> decode(const Bytes& raw);
};

// Asks the server holding `chain_id` for `device_id` to reply with that
// chain's final checkpoint (live migration, new server -> old server).
struct StateRequest {
  std::uint32_t seq = 0;
  std::string device_id;
  std::string chain_id;

  Bytes encode() const;
  static std::optional<StateRequest> decode(const Bytes& raw);
};

// Carries one digest-protected ChainCheckpoint (mbox/checkpoint.h): either
// a periodic incremental toward a warm standby, or the final full snapshot
// answering a StateRequest. `checkpoint` is opaque here; receivers validate
// it with ChainCheckpoint::decode, which rejects any corruption outright.
struct StateTransfer {
  std::uint32_t seq = 0;
  std::string device_id;
  std::string chain_id;
  bool ok = false;       // false: the sender had no state to hand over
  Bytes checkpoint;

  Bytes encode() const;
  static std::optional<StateTransfer> decode(const Bytes& raw);
};

// Wraps/unwraps a typed message for the UDP payload.
Bytes wrap(PvnMsgType type, const Bytes& body);
std::optional<std::pair<PvnMsgType, Bytes>> unwrap(const Bytes& payload);

}  // namespace pvn
