// The device-side PVN agent (paper §3.1): discovers PVN support, collects
// offers, negotiates per the user's constraints, and deploys the PVNC.
//
// Control-plane resilience (§3.3 "Coping with unavailability"):
//   - Discovery is retried with exponential backoff when a round yields no
//     offers (lossy access links); each round uses a fresh sequence number.
//   - The deployment request is retransmitted with backoff + jitter until
//     acked, nacked, attempts are exhausted, or the overall deploy_timeout
//     deadline passes. Retransmissions reuse the sequence number so the
//     server can deduplicate.
//   - In session mode (start_session) the client renews its deployment
//     lease periodically; when the lease is lost — renewals unanswered or
//     refused — it fails over to a device VPN tunnel (tunnel/vpn.h
//     DeviceTunnel) and keeps rediscovering until the PVN comes back.
//
// Untrusted-host defenses (robustness):
//   - Every collected offer is vetted against sanity bounds (vet_offer);
//     bogus offers are dropped before negotiation and reported against the
//     sender on the shared HostScoreboard (when configured).
//   - Offers from quarantined hosts are excluded from selection, so a host
//     that misbehaved recently cannot win the auction again until its
//     reputation rehabilitates.
//   - A per-server circuit breaker (opt-in) stops hammering a host that
//     keeps failing deploys; kBusy NAKs honor the server's retry-after hint
//     instead of retrying on the client's own schedule.
#pragma once

#include <functional>
#include <map>

#include "audit/reputation.h"
#include "proto/host.h"
#include "pvn/negotiation.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/rng.h"

namespace pvn {

class DeviceTunnel;

struct DeployOutcome {
  bool ok = false;
  std::string chain_id;
  std::string failure;
  double paid = 0.0;
  double utility = 0.0;
  // Protocol telemetry (experiment E8).
  int messages_sent = 0;
  int messages_received = 0;
  int offers_received = 0;
  SimDuration elapsed = 0;
  std::vector<std::string> deployed_modules;
  // Resilience telemetry (experiment E16).
  int discovery_rounds = 0;    // discovery messages sent
  int deploy_attempts = 0;     // deploy request transmissions
  SimDuration lease_duration = 0;  // 0 = server granted no lease
  // Robustness telemetry: the typed refusal when the failure was a NACK,
  // the server's retry-after hint (kBusy load shedding), and how many
  // collected offers were dropped by sanity vetting this cycle.
  NackCode nack_code = NackCode::kUnspecified;
  SimDuration retry_after = 0;
  int offers_vetted_out = 0;
};

// Retransmission parameters. Delays grow by `backoff` per attempt and are
// jittered uniformly in [1-jitter, 1+jitter] to avoid lockstep retries.
struct RetryPolicy {
  int max_discovery_rounds = 3;
  int max_deploy_attempts = 3;
  SimDuration deploy_rto = milliseconds(400);
  double backoff = 2.0;
  double jitter = 0.2;
};

// Session-mode (lease + failover) parameters.
struct SessionConfig {
  int renew_divisor = 3;        // renew every lease_duration / renew_divisor
  // Renewal periods are jittered uniformly in [1-j, 1+j]. Without this a
  // fleet of clients deployed in the same instant renews in lockstep
  // forever, hammering the server with a synchronized burst each period.
  double renew_jitter = 0.1;
  int renew_miss_limit = 2;     // unanswered renewals before failover
  SimDuration fallback_retry = seconds(5);   // first rediscovery delay
  double fallback_backoff = 1.5;
  SimDuration fallback_retry_max = seconds(40);
};

struct ClientConfig {
  std::vector<std::string> standards = {"openflow-lite", "mbox-v1"};
  SimDuration offer_wait = milliseconds(250);  // collect offers this long
  SimDuration deploy_timeout = seconds(5);     // overall deploy deadline
  Constraints constraints;
  // When set, the deployment request carries this cloud-storage URI
  // ("pvnc://<ip>/<path>") instead of the inline PVNC object (§3.1); the
  // provider fetches and deploys the subset its policy allows.
  std::string pvnc_uri;
  RetryPolicy retry;
  SessionConfig session;

  // --- untrusted-host defenses ----------------------------------------
  // Sanity bounds every collected offer must pass before negotiation.
  // Defaults are generous; honest servers in this repo stay well inside.
  OfferBounds offer_bounds;
  bool vet_offers = true;
  // Shared reputation over deployment servers (keyed by the server address
  // string). Optional: when set, bogus offers and misbehavior are reported
  // here, and offers from quarantined hosts are excluded from selection.
  // Must outlive the client.
  HostScoreboard* scoreboard = nullptr;
  // Per-server circuit breaker on deploy failures (NAKs, timeouts). Opt-in
  // via use_breaker so the default client behaves exactly as before.
  bool use_breaker = false;
  CircuitBreakerConfig breaker;
  // Consecutive kBusy NAKs from one server before it is reported to the
  // scoreboard as a NAK flood.
  int nak_flood_streak = 3;
  // Additional deployment servers to probe each discovery round (competing
  // access networks); their offers join the same auction.
  std::vector<Ipv4Addr> extra_servers;
};

enum class SessionState { kIdle, kDiscovering, kDeploying, kActive, kFallback };
const char* to_string(SessionState s);

class PvnClient {
 public:
  using DoneCallback = std::function<void(const DeployOutcome&)>;
  using StateCallback = std::function<void(SessionState)>;

  PvnClient(Host& host, Pvnc pvnc, ClientConfig cfg = {});
  ~PvnClient();

  PvnClient(const PvnClient&) = delete;
  PvnClient& operator=(const PvnClient&) = delete;

  // Runs discovery -> negotiation -> deployment against `server` (a known
  // deployment server address from DHCP, or kPvnAnycast for flooding).
  void discover_and_deploy(Ipv4Addr server, DoneCallback done);

  // Sends a teardown for this device's deployment.
  void teardown(Ipv4Addr server);

  // --- resilient session mode -------------------------------------------
  // Deploys and then keeps the deployment alive: renews the lease, fails
  // over to `set_fallback`'s tunnel when the PVN is lost, and recovers
  // automatically. `done` (optional) fires after every deploy attempt
  // cycle, successful or not.
  void start_session(Ipv4Addr server, DoneCallback done = nullptr);
  void stop_session();

  // Live migration (requires an active session): deploys against
  // `new_server` while the old session keeps serving traffic, asking the
  // new server to pull the old chain's state (kStateRequest handoff). On
  // success the client drains in-flight packets for `drain` before tearing
  // the old deployment down; on failure it simply stays on the old session
  // (no fallback). `done` fires with the new deployment's outcome.
  void migrate(Ipv4Addr new_server, SimDuration drain,
               DoneCallback done = nullptr);
  bool migrating() const { return migrating_; }

  // Tunnel enabled while the session is in fallback. Must outlive the
  // session. Optional: without it the client still rediscovers, it just
  // has no data-plane escape hatch in the meantime.
  void set_fallback(DeviceTunnel* tunnel) { fallback_ = tunnel; }
  void set_state_callback(StateCallback cb) { on_state_ = std::move(cb); }

  SessionState state() const { return state_; }
  const std::string& chain_id() const { return chain_id_; }
  const std::vector<std::string>& degraded_modules() const {
    return degraded_modules_;
  }

  const Pvnc& pvnc() const { return pvnc_; }

  // Resilience telemetry.
  std::uint64_t retransmissions() const { return retransmissions_; }
  std::uint64_t failovers() const { return failovers_; }
  std::uint64_t recoveries() const { return recoveries_; }
  std::uint64_t renews_sent() const { return renews_sent_; }
  std::uint64_t renews_acked() const { return renews_acked_; }
  std::uint64_t migrations() const { return migrations_; }
  // Robustness telemetry.
  std::uint64_t offers_rejected() const { return offers_rejected_; }
  std::uint64_t offers_quarantined() const { return offers_quarantined_; }
  std::uint64_t busy_nacks() const { return busy_nacks_; }
  // The breaker guarding `server` (address string); nullptr when the
  // client has never attempted that server or breakers are disabled.
  const CircuitBreaker* breaker(const std::string& server) const;

 private:
  void on_packet(const Bytes& payload);
  void start_discovery_round();
  void on_offers_collected();
  void send_deploy_request();
  void finish(DeployOutcome outcome);
  void fail(const std::string& reason);

  // Session internals.
  void set_state(SessionState s);
  void session_cycle();
  void on_session_outcome(const DeployOutcome& outcome);
  void enter_active(const DeployOutcome& outcome);
  void enter_fallback();
  void send_renew();
  void on_lease_ack(const LeaseAck& ack);

  SimDuration jittered(SimDuration base, int attempt) const;
  SimDuration renew_delay() const;
  void cancel_timer(EventId& id);

  // Untrusted-host defenses.
  bool accept_offer(const Offer& offer);      // vet + report; false = drop
  void filter_distrusted_offers();            // quarantine + breaker gate
  CircuitBreaker& breaker_for(const std::string& server);
  void note_breaker_transition(const std::string& server, BreakerState before,
                               const CircuitBreaker& b);
  // Scores the deploy result against the chosen server's breaker/reputation.
  void account_deploy_result(const DeployOutcome& outcome);

  Host* host_;
  Pvnc pvnc_;
  ClientConfig cfg_;
  Port local_port_ = 3031;
  mutable Rng rng_;

  // One discovery/deploy cycle.
  std::uint32_t seq_ = 0;
  bool in_progress_ = false;
  SimTime started_ = 0;
  Ipv4Addr server_;
  std::vector<Offer> offers_;
  int discovery_round_ = 0;
  int deploy_attempt_ = 0;
  Offer chosen_offer_;
  Bytes deploy_bytes_;  // encoded request, reused verbatim on retransmit
  DeployOutcome outcome_;
  DoneCallback done_;
  EventId collect_timer_ = kInvalidEventId;
  EventId rto_timer_ = kInvalidEventId;
  EventId deadline_timer_ = kInvalidEventId;
  bool awaiting_ack_ = false;

  // Session state.
  bool session_ = false;
  bool in_fallback_ = false;  // sticky across rediscovery attempts
  SessionState state_ = SessionState::kIdle;
  StateCallback on_state_;
  DoneCallback session_done_;
  DeviceTunnel* fallback_ = nullptr;
  std::string chain_id_;
  SimDuration lease_ = 0;
  std::uint32_t renew_seq_ = 0;
  int renew_misses_ = 0;
  SimDuration fallback_delay_ = 0;
  std::vector<std::string> degraded_modules_;
  EventId renew_timer_ = kInvalidEventId;
  EventId fallback_timer_ = kInvalidEventId;

  // Migration state. `active_server_` is where the current lease lives:
  // during a migration `server_` already points at the new network while
  // renewals must keep flowing to the old one.
  bool migrating_ = false;
  Ipv4Addr active_server_;
  Ipv4Addr migrate_from_server_;
  std::string migrate_from_chain_;
  SimDuration migrate_drain_ = 0;
  EventId drain_timer_ = kInvalidEventId;

  std::uint64_t retransmissions_ = 0;
  std::uint64_t failovers_ = 0;
  std::uint64_t recoveries_ = 0;
  std::uint64_t renews_sent_ = 0;
  std::uint64_t renews_acked_ = 0;
  std::uint64_t migrations_ = 0;

  // Untrusted-host defense state.
  std::uint64_t offers_rejected_ = 0;     // failed vet_offer
  std::uint64_t offers_quarantined_ = 0;  // sender quarantined / breaker open
  std::uint64_t busy_nacks_ = 0;
  std::map<std::string, CircuitBreaker> breakers_;  // by server address
  std::map<std::string, int> busy_streaks_;         // consecutive kBusy NAKs
  SimDuration pending_retry_after_ = 0;  // server's hint for the next retry

  // Telemetry: aggregate control-plane counters plus the spans currently
  // open for this client's session track (session id = device id).
  telemetry::Counter* m_discovery_rounds_ = nullptr;
  telemetry::Counter* m_offers_received_ = nullptr;
  telemetry::Counter* m_deploys_ok_ = nullptr;
  telemetry::Counter* m_deploys_failed_ = nullptr;
  telemetry::Counter* m_retransmissions_ = nullptr;
  telemetry::Counter* m_offer_expiries_ = nullptr;
  telemetry::Counter* m_failovers_ = nullptr;
  telemetry::Counter* m_recoveries_ = nullptr;
  telemetry::Counter* m_renews_sent_ = nullptr;
  telemetry::Counter* m_renews_acked_ = nullptr;
  telemetry::Counter* m_migrations_ = nullptr;
  telemetry::Span cycle_span_;  // discover_and_deploy -> finish
  telemetry::Span phase_span_;  // current phase: discovery or deploy
  telemetry::Span lease_span_;  // active lease: enter_active -> loss/stop
};

}  // namespace pvn
