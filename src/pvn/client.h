// The device-side PVN agent (paper §3.1): discovers PVN support, collects
// offers, negotiates per the user's constraints, and deploys the PVNC.
#pragma once

#include <functional>

#include "proto/host.h"
#include "pvn/negotiation.h"

namespace pvn {

struct DeployOutcome {
  bool ok = false;
  std::string chain_id;
  std::string failure;
  double paid = 0.0;
  double utility = 0.0;
  // Protocol telemetry (experiment E8).
  int messages_sent = 0;
  int messages_received = 0;
  int offers_received = 0;
  SimDuration elapsed = 0;
  std::vector<std::string> deployed_modules;
};

struct ClientConfig {
  std::vector<std::string> standards = {"openflow-lite", "mbox-v1"};
  SimDuration offer_wait = milliseconds(250);  // collect offers this long
  SimDuration deploy_timeout = seconds(5);
  Constraints constraints;
  // When set, the deployment request carries this cloud-storage URI
  // ("pvnc://<ip>/<path>") instead of the inline PVNC object (§3.1); the
  // provider fetches and deploys the subset its policy allows.
  std::string pvnc_uri;
};

class PvnClient {
 public:
  using DoneCallback = std::function<void(const DeployOutcome&)>;

  PvnClient(Host& host, Pvnc pvnc, ClientConfig cfg = {});

  // Runs discovery -> negotiation -> deployment against `server` (a known
  // deployment server address from DHCP, or kPvnAnycast for flooding).
  void discover_and_deploy(Ipv4Addr server, DoneCallback done);

  // Sends a teardown for this device's deployment.
  void teardown(Ipv4Addr server);

  const Pvnc& pvnc() const { return pvnc_; }

 private:
  void on_packet(const Bytes& payload);
  void on_offers_collected();
  void finish(DeployOutcome outcome);

  Host* host_;
  Pvnc pvnc_;
  ClientConfig cfg_;
  Port local_port_ = 3031;
  std::uint32_t seq_ = 0;
  bool in_progress_ = false;
  SimTime started_ = 0;
  Ipv4Addr server_;
  std::vector<Offer> offers_;
  DeployOutcome outcome_;
  DoneCallback done_;
  EventId timer_ = kInvalidEventId;
  bool awaiting_ack_ = false;
};

}  // namespace pvn
