#include "pvn/pvnc.h"

#include <algorithm>

#include "mbox/registry.h"

namespace pvn {
namespace {

void encode_match(ByteWriter& w, const FlowMatch& m) {
  auto opt_u32 = [&w](const std::optional<Prefix>& p) {
    w.u8(p.has_value() ? 1 : 0);
    if (p) {
      w.u32(p->addr.v);
      w.u8(static_cast<std::uint8_t>(p->len));
    }
  };
  w.u8(m.in_port.has_value() ? 1 : 0);
  if (m.in_port) w.u32(static_cast<std::uint32_t>(*m.in_port));
  opt_u32(m.src);
  opt_u32(m.dst);
  w.u8(m.proto.has_value() ? 1 : 0);
  if (m.proto) w.u8(static_cast<std::uint8_t>(*m.proto));
  w.u8(m.src_port.has_value() ? 1 : 0);
  if (m.src_port) w.u16(*m.src_port);
  w.u8(m.dst_port.has_value() ? 1 : 0);
  if (m.dst_port) w.u16(*m.dst_port);
  w.u8(m.tos.has_value() ? 1 : 0);
  if (m.tos) w.u8(*m.tos);
}

FlowMatch decode_match(ByteReader& r) {
  FlowMatch m;
  auto opt_prefix = [&r]() -> std::optional<Prefix> {
    if (r.u8() == 0) return std::nullopt;
    Prefix p;
    p.addr = Ipv4Addr(r.u32());
    p.len = r.u8();
    return p;
  };
  if (r.u8() != 0) m.in_port = static_cast<int>(r.u32());
  m.src = opt_prefix();
  m.dst = opt_prefix();
  if (r.u8() != 0) m.proto = static_cast<IpProto>(r.u8());
  if (r.u8() != 0) m.src_port = r.u16();
  if (r.u8() != 0) m.dst_port = r.u16();
  if (r.u8() != 0) m.tos = r.u8();
  return m;
}

}  // namespace

std::vector<std::string> Pvnc::module_names() const {
  std::vector<std::string> names;
  names.reserve(chain.size());
  for (const PvncModule& m : chain) names.push_back(m.store_name);
  return names;
}

std::int64_t Pvnc::est_memory_bytes() const {
  return static_cast<std::int64_t>(chain.size()) * 6 * 1024 * 1024;
}

Bytes Pvnc::encode() const {
  ByteWriter w;
  w.str(name);
  w.u16(static_cast<std::uint16_t>(chain.size()));
  for (const PvncModule& m : chain) {
    w.str(m.store_name);
    w.u16(static_cast<std::uint16_t>(m.params.size()));
    for (const auto& [k, v] : m.params) {
      w.str(k);
      w.str(v);
    }
  }
  w.u16(static_cast<std::uint16_t>(policies.size()));
  for (const PvncPolicy& p : policies) {
    w.u8(static_cast<std::uint8_t>(p.kind));
    encode_match(w, p.match);
    w.i64(p.rate.bits_per_second);
    w.u8(p.tos);
    w.u32(p.gateway.v);
    w.u32(static_cast<std::uint32_t>(p.priority));
  }
  return std::move(w).take();
}

std::optional<Pvnc> Pvnc::decode(const Bytes& raw) {
  ByteReader r(raw);
  Pvnc pvnc;
  pvnc.name = r.str();
  const std::uint16_t nmods = r.u16();
  for (std::uint16_t i = 0; i < nmods && r.ok(); ++i) {
    PvncModule m;
    m.store_name = r.str();
    const std::uint16_t nparams = r.u16();
    for (std::uint16_t j = 0; j < nparams && r.ok(); ++j) {
      const std::string k = r.str();
      m.params[k] = r.str();
    }
    pvnc.chain.push_back(std::move(m));
  }
  const std::uint16_t npol = r.u16();
  for (std::uint16_t i = 0; i < npol && r.ok(); ++i) {
    PvncPolicy p;
    const std::uint8_t kind = r.u8();
    if (kind > static_cast<std::uint8_t>(PvncPolicy::Kind::kTunnel)) {
      return std::nullopt;
    }
    p.kind = static_cast<PvncPolicy::Kind>(kind);
    p.match = decode_match(r);
    p.rate = Rate{r.i64()};
    p.tos = r.u8();
    p.gateway = Ipv4Addr(r.u32());
    p.priority = static_cast<int>(r.u32());
    pvnc.policies.push_back(p);
  }
  if (!r.ok()) return std::nullopt;
  return pvnc;
}

std::vector<std::string> validate_pvnc(const Pvnc& pvnc,
                                       const PvnStore* store) {
  std::vector<std::string> problems;
  if (pvnc.name.empty()) problems.push_back("pvnc has no name");
  if (store != nullptr) {
    for (const PvncModule& m : pvnc.chain) {
      if (!store->has(m.store_name)) {
        problems.push_back("unknown module: " + m.store_name);
      }
    }
  }
  // Duplicate modules are almost certainly a mistake.
  std::vector<std::string> names = pvnc.module_names();
  std::sort(names.begin(), names.end());
  for (std::size_t i = 1; i < names.size(); ++i) {
    if (names[i] == names[i - 1]) {
      problems.push_back("duplicate module: " + names[i]);
    }
  }
  // Conflicting policies: identical matches with different kinds.
  for (std::size_t i = 0; i < pvnc.policies.size(); ++i) {
    for (std::size_t j = i + 1; j < pvnc.policies.size(); ++j) {
      const PvncPolicy& a = pvnc.policies[i];
      const PvncPolicy& b = pvnc.policies[j];
      if (a.match == b.match && a.priority == b.priority && a.kind != b.kind) {
        problems.push_back("conflicting policies at priority " +
                           std::to_string(a.priority) + " on match " +
                           a.match.to_string());
      }
    }
  }
  // Rate-limit policies need a positive rate.
  for (const PvncPolicy& p : pvnc.policies) {
    if (p.kind == PvncPolicy::Kind::kRateLimit &&
        p.rate.bits_per_second <= 0) {
      problems.push_back("rate-limit policy with non-positive rate");
    }
    if (p.kind == PvncPolicy::Kind::kTunnel && p.gateway.is_unspecified()) {
      problems.push_back("tunnel policy with no gateway");
    }
  }
  return problems;
}

Pvnc restrict_to_modules(const Pvnc& pvnc,
                         const std::vector<std::string>& allowed) {
  Pvnc out = pvnc;
  out.chain.clear();
  for (const PvncModule& m : pvnc.chain) {
    if (std::find(allowed.begin(), allowed.end(), m.store_name) !=
        allowed.end()) {
      out.chain.push_back(m);
    }
  }
  return out;
}

}  // namespace pvn
