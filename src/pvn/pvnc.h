// PVNC — Personal Virtual Network Configuration (paper §3.1).
//
// A PVNC names the middlebox chain the user wants interposed on their
// traffic and the per-flow policies that apply to it. Users author PVNCs in
// a small text format (pvnc_parser.h); the compiler (compiler.h) lowers a
// PVNC to SDN flow rules + middlebox instantiations for a concrete
// deployment point.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sdn/match.h"
#include "util/units.h"

namespace pvn {

class PvnStore;

struct PvncModule {
  std::string store_name;  // module name in the PVN Store
  std::map<std::string, std::string> params;

  bool operator==(const PvncModule&) const = default;
};

struct PvncPolicy {
  enum class Kind {
    kDrop,       // drop matching traffic
    kRateLimit,  // police matching traffic to `rate`
    kMark,       // set DSCP on matching traffic
    kTunnel,     // encapsulate matching traffic toward `gateway` (Fig. 1c)
  };

  Kind kind = Kind::kDrop;
  FlowMatch match;
  Rate rate;            // kRateLimit
  std::uint8_t tos = 0; // kMark
  Ipv4Addr gateway;     // kTunnel
  int priority = 100;

  bool operator==(const PvncPolicy&) const = default;
};

struct Pvnc {
  std::string name;  // e.g. "alice-phone"
  std::vector<PvncModule> chain;      // ordered middlebox chain
  std::vector<PvncPolicy> policies;

  std::vector<std::string> module_names() const;
  // Resource estimate carried in discovery messages (paper: "an estimate of
  // the network and computational resources requested").
  std::int64_t est_memory_bytes() const;

  // Serialization for carrying PVNCs in deployment requests / cloud URIs.
  Bytes encode() const;
  static std::optional<Pvnc> decode(const Bytes& raw);

  bool operator==(const Pvnc&) const = default;
};

// Structural validation independent of any deployment target.
// Returns an empty vector when valid; otherwise human-readable problems.
std::vector<std::string> validate_pvnc(const Pvnc& pvnc, const PvnStore* store);

// Returns a copy of `pvnc` restricted to the modules in `allowed` —
// the "subset of the original configuration" flows in discovery (§3.1).
Pvnc restrict_to_modules(const Pvnc& pvnc,
                         const std::vector<std::string>& allowed);

}  // namespace pvn
