#include "pvn/negotiation.h"

#include <algorithm>

namespace pvn {

NegotiationResult evaluate_offer(const Offer& offer,
                                 const std::vector<std::string>& requested,
                                 const Constraints& constraints, SimTime now) {
  NegotiationResult result;

  if (offer.expires_at != 0 && now > offer.expires_at) {
    result.reason = "offer expired";
    return result;
  }
  if (offer.total_price > constraints.max_price) {
    result.reason = "price " + std::to_string(offer.total_price) +
                    " exceeds budget " + std::to_string(constraints.max_price);
    return result;
  }

  // Hard constraints: every required module must be offered.
  for (const std::string& required : constraints.required_modules) {
    if (std::find(offer.offered_modules.begin(), offer.offered_modules.end(),
                  required) == offer.offered_modules.end()) {
      result.reason = "required module not offered: " + required;
      return result;
    }
  }

  // Policies-only PVNCs request no modules: any standards-compatible offer
  // is acceptable as-is.
  if (requested.empty()) {
    result.action = NegotiationAction::kAccept;
    result.reason = "policies-only configuration";
    return result;
  }

  // Utility over the offered intersection with the request.
  double utility = 0.0;
  std::vector<std::string> accepted;
  for (const std::string& module : requested) {
    if (std::find(offer.offered_modules.begin(), offer.offered_modules.end(),
                  module) == offer.offered_modules.end()) {
      continue;
    }
    accepted.push_back(module);
    const auto it = constraints.module_utility.find(module);
    utility += it == constraints.module_utility.end() ? 1.0 : it->second;
  }
  if (accepted.empty()) {
    result.reason = "no requested modules offered";
    return result;
  }

  result.utility = utility;
  result.accept_modules = std::move(accepted);
  result.action = result.accept_modules.size() == requested.size()
                      ? NegotiationAction::kAccept
                      : NegotiationAction::kCounterSubset;
  result.reason = result.action == NegotiationAction::kAccept
                      ? "full request offered"
                      : "partial offer: deploying subset";
  return result;
}

int pick_best_offer(const std::vector<Offer>& offers,
                    const std::vector<std::string>& requested,
                    const Constraints& constraints, SimTime now) {
  int best = -1;
  double best_utility = -1.0;
  double best_price = 0.0;
  for (std::size_t i = 0; i < offers.size(); ++i) {
    const NegotiationResult r =
        evaluate_offer(offers[i], requested, constraints, now);
    if (r.action == NegotiationAction::kReject) continue;
    if (r.utility > best_utility ||
        (r.utility == best_utility && offers[i].total_price < best_price)) {
      best = static_cast<int>(i);
      best_utility = r.utility;
      best_price = offers[i].total_price;
    }
  }
  return best;
}

}  // namespace pvn
