// Billing ledger and dispute records (paper §3.1: offers carry "a cost per
// VNC module"; §3.3: audit evidence feeds "billing disputes").
#pragma once

#include <map>
#include <string>
#include <vector>

#include "util/time.h"

namespace pvn {

struct LedgerEntry {
  SimTime at = 0;
  std::string payer;
  std::string payee;
  double amount = 0.0;
  std::string memo;
};

struct Dispute {
  SimTime at = 0;
  std::string claimant;
  std::string respondent;
  double amount = 0.0;
  std::string evidence;  // e.g. an audit violation summary
  bool refunded = false;
};

class Ledger {
 public:
  void charge(SimTime at, const std::string& payer, const std::string& payee,
              double amount, const std::string& memo);

  // Files a dispute; if granted, a refund entry is appended.
  std::size_t file_dispute(SimTime at, const std::string& claimant,
                           const std::string& respondent, double amount,
                           const std::string& evidence);
  bool grant_refund(std::size_t dispute_index);

  double balance(const std::string& party) const;
  const std::vector<LedgerEntry>& entries() const { return entries_; }
  const std::vector<Dispute>& disputes() const { return disputes_; }

 private:
  std::vector<LedgerEntry> entries_;
  std::vector<Dispute> disputes_;
};

}  // namespace pvn
