#include "pvn/discovery.h"

#include <cmath>

namespace pvn {
namespace {

void encode_strings(ByteWriter& w, const std::vector<std::string>& v) {
  w.u16(static_cast<std::uint16_t>(v.size()));
  for (const std::string& s : v) w.str(s);
}

std::vector<std::string> decode_strings(ByteReader& r) {
  std::vector<std::string> out;
  const std::uint16_t n = r.u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    // Bail as soon as the reader overruns: a corrupted count would otherwise
    // spin through up to 64Ki failed reads per list.
    if (!r.ok()) break;
    out.push_back(r.str());
  }
  return out;
}

}  // namespace

const char* to_string(NackCode code) {
  switch (code) {
    case NackCode::kUnspecified: return "unspecified";
    case NackCode::kBusy: return "busy";
    case NackCode::kOutOfMemory: return "out-of-memory";
    case NackCode::kPolicy: return "policy";
    case NackCode::kPayment: return "payment";
    case NackCode::kInvalidPvnc: return "invalid-pvnc";
    case NackCode::kUnavailable: return "unavailable";
  }
  return "?";
}

const char* to_string(OfferDefect defect) {
  switch (defect) {
    case OfferDefect::kNone: return "none";
    case OfferDefect::kPriceNotFinite: return "price-not-finite";
    case OfferDefect::kPriceAbsurd: return "price-absurd";
    case OfferDefect::kExpired: return "expired";
    case OfferDefect::kExpiryTooFar: return "expiry-too-far";
    case OfferDefect::kLeaseTooShort: return "lease-too-short";
    case OfferDefect::kLeaseTooLong: return "lease-too-long";
    case OfferDefect::kCapacityImplausible: return "capacity-implausible";
    case OfferDefect::kInsufficientCapacity: return "insufficient-capacity";
  }
  return "?";
}

OfferDefect vet_offer(const Offer& offer, std::int64_t est_memory_bytes,
                      const OfferBounds& bounds, SimTime now) {
  if (!std::isfinite(offer.total_price) || offer.total_price < 0.0) {
    return OfferDefect::kPriceNotFinite;
  }
  if (offer.total_price > bounds.max_price) return OfferDefect::kPriceAbsurd;
  if (offer.expires_at != 0) {
    if (offer.expires_at <= now) return OfferDefect::kExpired;
    if (offer.expires_at - now > bounds.max_offer_ttl) {
      return OfferDefect::kExpiryTooFar;
    }
  }
  if (offer.lease_duration != 0) {
    if (offer.lease_duration < bounds.min_lease) {
      return OfferDefect::kLeaseTooShort;
    }
    if (offer.lease_duration > bounds.max_lease) {
      return OfferDefect::kLeaseTooLong;
    }
  }
  if (offer.capacity_bytes < 0 ||
      offer.capacity_bytes > bounds.max_capacity_bytes) {
    return OfferDefect::kCapacityImplausible;
  }
  if (bounds.require_capacity && offer.capacity_bytes < est_memory_bytes) {
    return OfferDefect::kInsufficientCapacity;
  }
  return OfferDefect::kNone;
}

Bytes wrap(PvnMsgType type, const Bytes& body) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(type));
  w.blob(body);
  return std::move(w).take();
}

std::optional<std::pair<PvnMsgType, Bytes>> unwrap(const Bytes& payload) {
  ByteReader r(payload);
  const auto type = static_cast<PvnMsgType>(r.u8());
  Bytes body = r.blob();
  if (!r.ok()) return std::nullopt;
  return std::make_pair(type, std::move(body));
}

Bytes DiscoveryMessage::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.str(device_id);
  encode_strings(w, standards);
  encode_strings(w, modules);
  w.i64(est_memory_bytes);
  return std::move(w).take();
}

std::optional<DiscoveryMessage> DiscoveryMessage::decode(const Bytes& raw) {
  ByteReader r(raw);
  DiscoveryMessage m;
  m.seq = r.u32();
  m.device_id = r.str();
  m.standards = decode_strings(r);
  m.modules = decode_strings(r);
  m.est_memory_bytes = r.i64();
  if (!r.exhausted()) return std::nullopt;
  return m;
}

Bytes Offer::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.u32(deployment_server.v);
  encode_strings(w, standards);
  encode_strings(w, offered_modules);
  w.f64(total_price);
  w.i64(expires_at);
  w.u8(standby_capacity ? 1 : 0);
  w.i64(lease_duration);
  w.i64(capacity_bytes);
  return std::move(w).take();
}

std::optional<Offer> Offer::decode(const Bytes& raw) {
  ByteReader r(raw);
  Offer o;
  o.seq = r.u32();
  o.deployment_server = Ipv4Addr(r.u32());
  o.standards = decode_strings(r);
  o.offered_modules = decode_strings(r);
  o.total_price = r.f64();
  o.expires_at = r.i64();
  o.standby_capacity = r.u8() != 0;
  o.lease_duration = r.i64();
  o.capacity_bytes = r.i64();
  if (!r.exhausted()) return std::nullopt;
  // Structural hardening: field values no honest encoder produces are
  // rejected here; subtler adversarial-but-well-formed values are left to
  // vet_offer so the client can attribute them to the sender.
  if (!std::isfinite(o.total_price)) return std::nullopt;
  if (o.expires_at < 0 || o.lease_duration < 0) return std::nullopt;
  return o;
}

Bytes DeployRequest::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.str(device_id);
  w.blob(pvnc.encode());
  w.str(pvnc_uri);
  w.f64(payment);
  encode_strings(w, required_modules);
  w.u32(handoff_server.v);
  w.str(handoff_chain_id);
  return std::move(w).take();
}

std::optional<DeployRequest> DeployRequest::decode(const Bytes& raw) {
  ByteReader r(raw);
  DeployRequest m;
  m.seq = r.u32();
  m.device_id = r.str();
  const Bytes pvnc_raw = r.blob();
  if (!r.ok()) return std::nullopt;  // don't hand a bogus blob to Pvnc
  const auto pvnc = Pvnc::decode(pvnc_raw);
  if (!pvnc) return std::nullopt;
  m.pvnc = *pvnc;
  m.pvnc_uri = r.str();
  m.payment = r.f64();
  m.required_modules = decode_strings(r);
  m.handoff_server = Ipv4Addr(r.u32());
  m.handoff_chain_id = r.str();
  if (!r.exhausted()) return std::nullopt;
  return m;
}

bool parse_pvnc_uri(const std::string& uri, Ipv4Addr& host,
                    std::string& path) {
  constexpr const char* kScheme = "pvnc://";
  if (uri.rfind(kScheme, 0) != 0) return false;
  const std::string rest = uri.substr(7);
  const auto slash = rest.find('/');
  if (slash == std::string::npos) return false;
  const auto addr = Ipv4Addr::parse(rest.substr(0, slash));
  if (!addr) return false;
  host = *addr;
  path = rest.substr(slash);
  return !path.empty();
}

Bytes DeployAck::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.str(chain_id);
  w.u8(dhcp_refresh ? 1 : 0);
  w.i64(lease_duration);
  w.u8(standby ? 1 : 0);
  w.u8(state_restored ? 1 : 0);
  return std::move(w).take();
}

std::optional<DeployAck> DeployAck::decode(const Bytes& raw) {
  ByteReader r(raw);
  DeployAck m;
  m.seq = r.u32();
  m.chain_id = r.str();
  m.dhcp_refresh = r.u8() != 0;
  m.lease_duration = r.i64();
  m.standby = r.u8() != 0;
  m.state_restored = r.u8() != 0;
  if (!r.exhausted() || m.lease_duration < 0) return std::nullopt;
  return m;
}

Bytes LeaseRenew::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.str(device_id);
  w.str(chain_id);
  return std::move(w).take();
}

std::optional<LeaseRenew> LeaseRenew::decode(const Bytes& raw) {
  ByteReader r(raw);
  LeaseRenew m;
  m.seq = r.u32();
  m.device_id = r.str();
  m.chain_id = r.str();
  if (!r.exhausted()) return std::nullopt;
  return m;
}

Bytes LeaseAck::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.u8(ok ? 1 : 0);
  w.i64(lease_duration);
  encode_strings(w, degraded_modules);
  w.str(reason);
  return std::move(w).take();
}

std::optional<LeaseAck> LeaseAck::decode(const Bytes& raw) {
  ByteReader r(raw);
  LeaseAck m;
  m.seq = r.u32();
  m.ok = r.u8() != 0;
  m.lease_duration = r.i64();
  m.degraded_modules = decode_strings(r);
  m.reason = r.str();
  if (!r.exhausted() || m.lease_duration < 0) return std::nullopt;
  return m;
}

Bytes DeployNack::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.str(reason);
  w.u8(static_cast<std::uint8_t>(code));
  w.i64(retry_after);
  return std::move(w).take();
}

std::optional<DeployNack> DeployNack::decode(const Bytes& raw) {
  ByteReader r(raw);
  DeployNack m;
  m.seq = r.u32();
  m.reason = r.str();
  const std::uint8_t code = r.u8();
  m.retry_after = r.i64();
  if (!r.exhausted()) return std::nullopt;
  if (code > static_cast<std::uint8_t>(NackCode::kUnavailable)) {
    return std::nullopt;
  }
  m.code = static_cast<NackCode>(code);
  if (m.retry_after < 0) return std::nullopt;
  return m;
}

Bytes Teardown::encode() const {
  ByteWriter w;
  w.str(device_id);
  return std::move(w).take();
}

std::optional<Teardown> Teardown::decode(const Bytes& raw) {
  ByteReader r(raw);
  Teardown m;
  m.device_id = r.str();
  if (!r.exhausted()) return std::nullopt;
  return m;
}

Bytes StateRequest::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.str(device_id);
  w.str(chain_id);
  return std::move(w).take();
}

std::optional<StateRequest> StateRequest::decode(const Bytes& raw) {
  ByteReader r(raw);
  StateRequest m;
  m.seq = r.u32();
  m.device_id = r.str();
  m.chain_id = r.str();
  if (!r.exhausted()) return std::nullopt;
  return m;
}

Bytes StateTransfer::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.str(device_id);
  w.str(chain_id);
  w.u8(ok ? 1 : 0);
  w.blob(checkpoint);
  return std::move(w).take();
}

std::optional<StateTransfer> StateTransfer::decode(const Bytes& raw) {
  ByteReader r(raw);
  StateTransfer m;
  m.seq = r.u32();
  m.device_id = r.str();
  m.chain_id = r.str();
  m.ok = r.u8() != 0;
  m.checkpoint = r.blob();
  if (!r.exhausted()) return std::nullopt;
  return m;
}

Bytes StateAck::encode() const {
  ByteWriter w;
  w.u32(seq);
  w.str(device_id);
  w.str(chain_id);
  w.u8(applied ? 1 : 0);
  w.blob(digest);
  return std::move(w).take();
}

std::optional<StateAck> StateAck::decode(const Bytes& raw) {
  ByteReader r(raw);
  StateAck m;
  m.seq = r.u32();
  m.device_id = r.str();
  m.chain_id = r.str();
  m.applied = r.u8() != 0;
  m.digest = r.blob();
  if (!r.exhausted()) return std::nullopt;
  return m;
}

}  // namespace pvn
