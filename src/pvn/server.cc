#include "pvn/server.h"

#include <algorithm>

#include "mbox/checkpoint.h"
#include "proto/http.h"
#include "pvn/standby.h"

namespace pvn {

DeploymentServer::DeploymentServer(Host& host, PvnStore& store,
                                   MboxHost& mbox_host, Controller& controller,
                                   Ledger& ledger, ServerConfig cfg)
    : host_(&host),
      store_(&store),
      mbox_host_(&mbox_host),
      controller_(&controller),
      ledger_(&ledger),
      cfg_(std::move(cfg)) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_discoveries_ = &reg.counter("pvn.server.discoveries");
  m_offers_sent_ = &reg.counter("pvn.server.offers_sent");
  m_deploys_ = &reg.counter("pvn.server.deploys");
  m_nacks_ = &reg.counter("pvn.server.nacks");
  m_duplicate_deploys_ = &reg.counter("pvn.server.duplicate_deploys");
  m_leases_renewed_ = &reg.counter("pvn.server.leases_renewed");
  m_leases_expired_ = &reg.counter("pvn.server.leases_expired");
  m_degraded_ = &reg.counter("pvn.server.degraded");
  m_chains_lost_ = &reg.counter("pvn.server.chains_lost");
  m_standbys_ready_ = &reg.counter("pvn.server.standbys_ready");
  m_standby_promotions_ = &reg.counter("pvn.server.standby_promotions");
  m_standbys_lost_ = &reg.counter("pvn.server.standbys_lost");
  m_checkpoints_streamed_ = &reg.counter("pvn.server.checkpoints_streamed");
  m_checkpoint_bytes_ = &reg.counter("pvn.server.checkpoint_bytes");
  m_state_requests_ = &reg.counter("pvn.server.state_requests");
  m_handoffs_completed_ = &reg.counter("pvn.server.handoffs_completed");
  m_handoff_timeouts_ = &reg.counter("pvn.server.handoff_timeouts");
  m_sheds_ = &reg.counter("pvn.server.deploys_shed");
  m_bad_state_acks_ = &reg.counter("pvn.server.bad_state_acks");
  m_standbys_demoted_ = &reg.counter("pvn.server.standbys_demoted");
  m_standbys_remirrored_ = &reg.counter("pvn.server.standbys_remirrored");
  telemetry::SpanRecorder::global().set_clock(&host_->sim());
  host_->bind_udp(kPvnPort, [this](Ipv4Addr src, Port sport, Port,
                                   const Bytes& payload) {
    on_packet(src, sport, payload);
  });
  mbox_host_->set_crash_listener([this] { on_mbox_crash(); });
  // The legacy single-standby config is pool 0; extra pools follow.
  if (cfg_.standby_host != nullptr) {
    pools_.push_back({cfg_.standby_host, cfg_.standby_addr, false, 0});
  }
  for (const StandbyPoolConfig& pc : cfg_.extra_standbys) {
    if (pc.host != nullptr) pools_.push_back({pc.host, pc.addr, false, 0});
  }
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    pools_[i].host->set_crash_listener(
        [this, i] { on_standby_crash(static_cast<int>(i)); });
  }
}

DeploymentServer::~DeploymentServer() {
  if (sweep_timer_ != kInvalidEventId) host_->sim().cancel(sweep_timer_);
  for (auto& [device_id, dep] : deployments_) {
    if (dep.ckpt_timer != kInvalidEventId) host_->sim().cancel(dep.ckpt_timer);
  }
  for (auto& [device_id, ph] : pending_handoffs_) {
    if (ph.timer != kInvalidEventId) host_->sim().cancel(ph.timer);
  }
  mbox_host_->set_crash_listener(nullptr);
  for (StandbyPool& pool : pools_) pool.host->set_crash_listener(nullptr);
  host_->unbind_udp(kPvnPort);
}

void DeploymentServer::on_packet(Ipv4Addr src, Port sport,
                                 const Bytes& payload) {
  const auto msg = unwrap(payload);
  if (!msg) return;
  switch (msg->first) {
    case PvnMsgType::kDiscovery: {
      if (const auto dm = DiscoveryMessage::decode(msg->second)) {
        handle_discovery(src, sport, *dm);
      }
      break;
    }
    case PvnMsgType::kDeployRequest: {
      if (auto req = DeployRequest::decode(msg->second)) {
        resolve_and_deploy(src, sport, std::move(*req));
      }
      break;
    }
    case PvnMsgType::kTeardown: {
      if (const auto td = Teardown::decode(msg->second)) {
        handle_teardown(src, sport, *td);
      }
      break;
    }
    case PvnMsgType::kLeaseRenew: {
      if (const auto renew = LeaseRenew::decode(msg->second)) {
        handle_renew(src, sport, *renew);
      }
      break;
    }
    case PvnMsgType::kStateRequest: {
      if (const auto sr = StateRequest::decode(msg->second)) {
        handle_state_request(src, sport, *sr);
      }
      break;
    }
    case PvnMsgType::kStateTransfer: {
      if (const auto xfer = StateTransfer::decode(msg->second)) {
        handle_state_transfer(*xfer);
      }
      break;
    }
    case PvnMsgType::kStateAck: {
      if (const auto sa = StateAck::decode(msg->second)) {
        handle_state_ack(*sa);
      }
      break;
    }
    default:
      break;
  }
}

void DeploymentServer::handle_discovery(Ipv4Addr src, Port sport,
                                        const DiscoveryMessage& dm) {
  ++discoveries_;
  m_discoveries_->inc();
  // Standards must intersect.
  bool standards_ok = false;
  for (const std::string& s : dm.standards) {
    if (std::find(cfg_.standards.begin(), cfg_.standards.end(), s) !=
        cfg_.standards.end()) {
      standards_ok = true;
      break;
    }
  }
  if (!standards_ok) return;  // unsupported devices get silence

  Offer offer;
  offer.seq = dm.seq;
  offer.deployment_server = host_->addr();
  offer.standards = cfg_.standards;
  for (const std::string& module : dm.modules) {
    if (!store_->has(module)) continue;
    if (!cfg_.allowed_modules.empty() &&
        !cfg_.allowed_modules.contains(module)) {
      continue;
    }
    offer.offered_modules.push_back(module);
  }
  offer.total_price =
      store_->price_of(offer.offered_modules) * cfg_.price_multiplier;
  offer.expires_at = host_->sim().now() + cfg_.offer_ttl;
  offer.standby_capacity = standby_available();
  // Advertise terms up front so the device can vet them before paying.
  offer.lease_duration = cfg_.lease_duration;
  offer.capacity_bytes =
      std::max<std::int64_t>(0, mbox_host_->memory_budget() -
                                    mbox_host_->memory_in_use());
  m_offers_sent_->inc();
  host_->send_udp(src, kPvnPort, sport,
                  wrap(PvnMsgType::kOffer, offer.encode()));
}

void DeploymentServer::nack(Ipv4Addr dst, Port dport, std::uint32_t seq,
                            const std::string& reason, NackCode code,
                            SimDuration retry_after) {
  ++nacks_;
  m_nacks_->inc();
  telemetry::MetricsRegistry::global()
      .counter("pvn.server.nacks_by_code", to_string(code))
      .inc();
  DeployNack nack_msg;
  nack_msg.seq = seq;
  nack_msg.reason = reason;
  nack_msg.code = code;
  nack_msg.retry_after = retry_after;
  host_->send_udp(dst, kPvnPort, dport,
                  wrap(PvnMsgType::kDeployNack, nack_msg.encode()));
}

void DeploymentServer::resolve_and_deploy(Ipv4Addr src, Port sport,
                                          DeployRequest req) {
  if (req.pvnc_uri.empty()) {
    handle_deploy(src, sport, req);
    return;
  }
  Ipv4Addr storage;
  std::string path;
  if (!parse_pvnc_uri(req.pvnc_uri, storage, path)) {
    nack(src, sport, req.seq, "malformed pvnc uri", NackCode::kInvalidPvnc);
    return;
  }
  if (http_ == nullptr) http_ = std::make_unique<HttpClient>(*host_);
  http_->fetch(storage, 80, path,
               [this, src, sport, req = std::move(req)](
                   const HttpResponse& resp, const FetchTiming& t) mutable {
                 if (!t.ok) {
                   nack(src, sport, req.seq, "pvnc uri unreachable",
                        NackCode::kUnavailable);
                   return;
                 }
                 const auto fetched = Pvnc::decode(resp.body);
                 if (!fetched) {
                   nack(src, sport, req.seq, "pvnc uri object malformed",
                        NackCode::kInvalidPvnc);
                   return;
                 }
                 req.pvnc = *fetched;
                 // URI-mode deployments accept the provider's allowed
                 // subset implicitly (the device never saw the offer
                 // against this object's full module list).
                 if (!cfg_.allowed_modules.empty()) {
                   std::vector<std::string> allowed(
                       cfg_.allowed_modules.begin(),
                       cfg_.allowed_modules.end());
                   req.pvnc = restrict_to_modules(req.pvnc, allowed);
                 }
                 req.pvnc_uri.clear();
                 handle_deploy(src, sport, req);
               });
}

void DeploymentServer::handle_deploy(Ipv4Addr src, Port sport,
                                     const DeployRequest& req) {
  if (drop_deploys_) return;  // failure injection: silent server
  // Idempotence: a retransmission of an acked request gets the cached ack
  // (the first ack may have been lost); one still in flight is dropped.
  // Retransmissions are byte-identical (the client re-sends the encoded
  // request verbatim), which distinguishes them from a fresh client session
  // that happens to reuse a sequence number with a different PVNC.
  const Bytes req_bytes = req.encode();
  if (const auto it = deployments_.find(req.device_id);
      it != deployments_.end() && it->second.seq == req.seq &&
      it->second.request_bytes == req_bytes &&
      !it->second.ack_bytes.empty()) {
    ++duplicates_;
    m_duplicate_deploys_->inc();
    host_->send_udp(src, kPvnPort, sport, it->second.ack_bytes);
    return;
  }
  if (const auto p = pending_.find(req.device_id);
      p != pending_.end() && p->second == req_bytes) {
    ++duplicates_;
    m_duplicate_deploys_->inc();
    return;  // the in-flight deployment will answer
  }
  // Admission control (load shedding): a bounded in-flight queue. Excess
  // requests get an explicit kBusy NAK with a retry-after hint — the flash
  // crowd backs off instead of retransmitting into silence.
  if (cfg_.max_pending_deploys > 0 &&
      pending_.size() >= cfg_.max_pending_deploys &&
      !pending_.contains(req.device_id)) {
    ++sheds_;
    m_sheds_->inc();
    telemetry::SpanRecorder::global().instant("deploy_shed", "pvn",
                                              req.device_id);
    nack(src, sport, req.seq, "server busy", NackCode::kBusy,
         cfg_.busy_retry_after);
    return;
  }
  // Validate against the store.
  const std::vector<std::string> problems = validate_pvnc(req.pvnc, store_);
  if (!problems.empty()) {
    nack(src, sport, req.seq, "invalid pvnc: " + problems.front(),
         NackCode::kInvalidPvnc);
    return;
  }
  // Policy check: every module must be allowed here.
  for (const std::string& module : req.pvnc.module_names()) {
    if (!cfg_.allowed_modules.empty() &&
        !cfg_.allowed_modules.contains(module)) {
      nack(src, sport, req.seq, "module not allowed: " + module,
           NackCode::kPolicy);
      return;
    }
  }
  // Payment check.
  const double price =
      store_->price_of(req.pvnc.module_names()) * cfg_.price_multiplier;
  if (req.payment + 1e-9 < price) {
    nack(src, sport, req.seq, "insufficient payment", NackCode::kPayment);
    return;
  }
  if (mbox_host_->crashed()) {
    nack(src, sport, req.seq, "middlebox host unavailable",
         NackCode::kUnavailable);
    return;
  }
  // Memory admission control, priced at the host's actual per-instance cost
  // (the PVNC's own estimate assumes the default 6 MiB and can undershoot a
  // host configured with heavier instances, which used to let a deploy past
  // admission only to fail — and leak — mid-instantiation).
  const std::int64_t chain_cost =
      static_cast<std::int64_t>(req.pvnc.chain.size()) *
      mbox_host_->config().memory_per_instance;
  if (mbox_host_->memory_in_use() + chain_cost >
      mbox_host_->memory_budget()) {
    nack(src, sport, req.seq, "out of middlebox memory",
         NackCode::kOutOfMemory, cfg_.busy_retry_after);
    return;
  }
  // Tear down any previous deployment for this device.
  teardown_device(req.device_id);

  // Spans the instantiate -> compile -> program-switch -> ack pipeline on
  // the server's side of the session track. shared_ptr: the continuations
  // live in copyable std::functions, and Span is move-only.
  auto deploy_span = std::make_shared<telemetry::Span>(
      telemetry::SpanRecorder::global().start("server_deploy", "pvn",
                                              req.device_id));

  const std::string chain_id =
      "chain:" + req.device_id + ":" + std::to_string(chain_seq_++);
  const std::string cookie = "pvn:" + req.device_id;

  auto deployment = std::make_shared<Deployment>();
  deployment->cookie = cookie;
  deployment->chain_id = chain_id;
  deployment->paid = price;
  deployment->seq = req.seq;
  deployment->mbox_generation = mbox_host_->crashes();
  deployment->module_names = req.pvnc.module_names();
  deployment->required_modules = req.required_modules;
  deployment->request_bytes = req_bytes;
  deployment->pvnc = req.pvnc;

  pending_[req.device_id] = req_bytes;

  // Instantiate the chain's modules (each charges instantiation delay).
  auto remaining = std::make_shared<int>(0);
  auto failed = std::make_shared<bool>(false);
  Chain& chain = mbox_host_->create_chain(chain_id);

  const auto finish = [this, src, sport, req, deployment, chain_id, cookie,
                       price, deploy_span, &chain]() {
    // Program the switch.
    telemetry::Span compile_span = telemetry::SpanRecorder::global().start(
        "compile", "pvn", req.device_id);
    DeploymentContext ctx;
    ctx.device = src;
    ctx.client_port = cfg_.client_port_for ? cfg_.client_port_for(src)
                                           : cfg_.switch_client_port;
    ctx.wan_port = cfg_.switch_wan_port;
    ctx.chain_id = chain_id;
    ctx.cookie = cookie;
    ctx.control = host_->addr();
    ctx.control_port = cfg_.switch_control_port;
    const CompiledPvnc compiled = compile_pvnc(req.pvnc, ctx);
    compile_span.finish();

    SdnSwitch* sw = controller_->switch_by_name(cfg_.switch_name);
    if (sw == nullptr) {
      if (deployment->mbox_generation == mbox_host_->crashes()) {
        for (Middlebox* m : deployment->instances) mbox_host_->destroy(m);
        mbox_host_->destroy_chain(deployment->chain_id);
      }
      pending_.erase(req.device_id);
      nack(src, sport, req.seq, "no dataplane", NackCode::kUnavailable);
      deploy_span->finish();
      return;
    }
    sw->register_processor(chain_id, &chain);
    for (const MeterSpec& meter : compiled.meters) {
      controller_->add_meter(cfg_.switch_name, meter.id, meter.rate,
                             meter.burst_bytes);
    }
    const auto ack_deployment = [this, src, sport, req, deployment, price,
                                 deploy_span](bool state_restored) {
      if (cfg_.lease_duration > 0) {
        deployment->expires_at = host_->sim().now() + cfg_.lease_duration;
      }
      DeployAck ack;
      ack.seq = req.seq;
      ack.chain_id = deployment->chain_id;
      ack.lease_duration = cfg_.lease_duration;
      ack.standby = standby_available();
      ack.state_restored = state_restored;
      deployment->ack_bytes = wrap(PvnMsgType::kDeployAck, ack.encode());
      deployments_[req.device_id] = *deployment;
      pending_.erase(req.device_id);
      ++deploy_count_;
      m_deploys_->inc();
      if (price > 0.0) {
        ledger_->charge(host_->sim().now(), req.device_id, cfg_.network_name,
                        price, "pvn deployment " + deployment->chain_id);
      }
      host_->send_udp(src, kPvnPort, sport, deployment->ack_bytes);
      deploy_span->finish();
      arm_sweep();
      setup_standby(req.device_id);
    };
    // Once the dataplane is programmed: a migrating device (handoff_server
    // set) first pulls its session state from the old server; everyone else
    // is acked immediately with a cold chain.
    const auto after_rules = [this, req, chain_id, ack_deployment] {
      if (req.handoff_server.is_unspecified()) {
        ack_deployment(false);
      } else {
        begin_handoff(req, chain_id, ack_deployment);
      }
    };
    auto pending = std::make_shared<int>(static_cast<int>(compiled.rules.size()));
    for (const auto& [table, rule] : compiled.rules) {
      controller_->install_rule(cfg_.switch_name, table, rule,
                                [pending, after_rules](bool ok) {
                                  (void)ok;
                                  if (--*pending > 0) return;
                                  after_rules();  // all rules in
                                });
    }
    if (compiled.rules.empty()) after_rules();
  };

  // Make every instance before dispatching any: a store miss mid-chain must
  // not strand instantiations already in flight.
  std::vector<std::unique_ptr<Middlebox>> to_instantiate;
  for (const PvncModule& module : req.pvnc.chain) {
    if (module.store_name == skip_module_) continue;  // dishonest ISP model
    std::unique_ptr<Middlebox> instance =
        store_->make(module.store_name, module.params);
    if (instance == nullptr) {
      mbox_host_->destroy_chain(chain_id);
      pending_.erase(req.device_id);
      nack(src, sport, req.seq, "cannot instantiate " + module.store_name,
           NackCode::kInvalidPvnc);
      deploy_span->finish();
      return;
    }
    to_instantiate.push_back(std::move(instance));
  }
  *remaining = static_cast<int>(to_instantiate.size());
  if (to_instantiate.empty()) {
    finish();
    return;
  }
  const int generation = mbox_host_->crashes();
  for (std::unique_ptr<Middlebox>& instance : to_instantiate) {
    mbox_host_->instantiate(
        std::move(instance),
        [this, remaining, failed, deployment, finish, src, sport, req,
         deploy_span, generation](Middlebox* mbox) {
          const bool live = generation == mbox_host_->crashes();
          if (mbox == nullptr) {
            if (!*failed) {
              *failed = true;
              pending_.erase(req.device_id);
              nack(src, sport, req.seq,
                   mbox_host_->crashed() ? "middlebox host unavailable"
                                         : "out of middlebox memory",
                   mbox_host_->crashed() ? NackCode::kUnavailable
                                         : NackCode::kOutOfMemory,
                   mbox_host_->crashed() ? SimDuration{0}
                                         : cfg_.busy_retry_after);
              deploy_span->finish();
            }
          } else if (*failed) {
            // A sibling already failed the deploy; releasing this instance
            // here (instead of dropping the pointer) is what keeps a
            // rejected deploy from permanently leaking middlebox memory.
            if (live) mbox_host_->destroy(mbox);
          } else {
            deployment->instances.push_back(mbox);
          }
          if (--*remaining > 0) return;
          if (*failed) {
            // Reclaim the partial chain once the last sibling reports in.
            if (live) {
              for (Middlebox* m : deployment->instances) {
                mbox_host_->destroy(m);
              }
              mbox_host_->destroy_chain(deployment->chain_id);
            }
            return;
          }
          // Preserve chain order: instances may be appended out of
          // order only if instantiation delays differ; they do not.
          Chain* chain = mbox_host_->chain(deployment->chain_id);
          for (Middlebox* m : deployment->instances) chain->append(m);
          finish();
        });
  }
}

void DeploymentServer::teardown_device(const std::string& device_id) {
  cancel_handoff(device_id);
  const auto it = deployments_.find(device_id);
  if (it == deployments_.end()) return;
  Deployment& dep = it->second;
  if (dep.ckpt_timer != kInvalidEventId) {
    host_->sim().cancel(dep.ckpt_timer);
    dep.ckpt_timer = kInvalidEventId;
  }
  controller_->remove_by_cookie(dep.cookie);
  if (SdnSwitch* sw = controller_->switch_by_name(cfg_.switch_name)) {
    sw->unregister_processor(dep.chain_id);
  }
  // A MboxHost crash already destroyed older-generation chains/instances;
  // destroying them again would touch freed memory.
  if (dep.mbox_generation == mbox_host_->crashes()) {
    for (Middlebox* m : dep.instances) mbox_host_->destroy(m);
    mbox_host_->destroy_chain(dep.chain_id);
  }
  if (dep.standby_pool >= 0 &&
      dep.standby_pool < static_cast<int>(pools_.size())) {
    MboxHost* standby = pools_[dep.standby_pool].host;
    if (dep.standby_generation == standby->crashes()) {
      for (Middlebox* m : dep.standby_instances) standby->destroy(m);
      standby->destroy_chain(dep.chain_id);
    }
  }
  deployments_.erase(it);
}

void DeploymentServer::handle_teardown(Ipv4Addr src, Port sport,
                                       const Teardown& td) {
  teardown_device(td.device_id);
  if (sport != 0) {
    host_->send_udp(src, kPvnPort, sport,
                    wrap(PvnMsgType::kTeardownAck, Bytes{}));
  }
}

void DeploymentServer::handle_renew(Ipv4Addr src, Port sport,
                                    const LeaseRenew& renew) {
  LeaseAck ack;
  ack.seq = renew.seq;
  const auto it = deployments_.find(renew.device_id);
  if (it == deployments_.end() || it->second.chain_id != renew.chain_id) {
    ack.ok = false;
    ack.reason = "no such deployment";
  } else {
    Deployment& dep = it->second;
    ack.ok = true;
    ack.lease_duration = cfg_.lease_duration;
    if (cfg_.lease_duration > 0) {
      dep.expires_at = host_->sim().now() + cfg_.lease_duration;
    }
    if (dep.degraded) ack.degraded_modules = dep.module_names;
    ++renews_;
    m_leases_renewed_->inc();
  }
  host_->send_udp(src, kPvnPort, sport,
                  wrap(PvnMsgType::kLeaseAck, ack.encode()));
}

void DeploymentServer::on_mbox_crash() {
  // Runs synchronously from MboxHost::crash(): the chains are gone, so
  // first unhook their (now dangling) processors from the dataplane.
  SdnSwitch* sw = controller_->switch_by_name(cfg_.switch_name);
  std::vector<std::string> to_teardown;
  for (auto& [device_id, dep] : deployments_) {
    if (dep.mbox_generation == mbox_host_->crashes()) continue;  // unaffected
    if (dep.promoted) continue;  // already running on the standby host
    if (sw != nullptr) sw->unregister_processor(dep.chain_id);
    // Warm standby first: promote it through the controller so the client
    // sees one control-RTT of elevated latency instead of losing the chain.
    MboxHost* standby_mbox =
        dep.standby_pool >= 0 ? pools_[dep.standby_pool].host : nullptr;
    if (dep.standby_ready && standby_mbox != nullptr &&
        dep.standby_generation == standby_mbox->crashes()) {
      if (Chain* standby = standby_mbox->chain(dep.chain_id)) {
        dep.promoted = true;
        if (dep.ckpt_timer != kInvalidEventId) {
          host_->sim().cancel(dep.ckpt_timer);
          dep.ckpt_timer = kInvalidEventId;
        }
        controller_->promote_chain(cfg_.switch_name, dep.chain_id, standby);
        ++standby_promotions_;
        m_standby_promotions_->inc();
        telemetry::SpanRecorder::global().instant("standby_promoted", "pvn",
                                                  device_id);
        continue;
      }
    }
    if (degrade_or_flag_teardown(device_id, dep)) {
      to_teardown.push_back(device_id);
    }
  }
  for (const std::string& device_id : to_teardown) {
    ++chains_lost_;
    m_chains_lost_->inc();
    telemetry::SpanRecorder::global().instant("chain_lost", "pvn", device_id);
    teardown_device(device_id);
  }
}

bool DeploymentServer::degrade_or_flag_teardown(const std::string& device_id,
                                                Deployment& dep) {
  // Can the deployment limp along without its chain? Only if no module
  // the client marked as required just died.
  bool required_lost = false;
  for (const std::string& module : dep.required_modules) {
    if (std::find(dep.module_names.begin(), dep.module_names.end(), module) !=
        dep.module_names.end()) {
      required_lost = true;
      break;
    }
  }
  if (required_lost || dep.degraded) return true;
  // Graceful degradation: strip only the chain-divert rules so traffic
  // flows past the dead chain; policies (drop/rate/mark) stay.
  dep.degraded = true;
  controller_->bypass_chain(dep.cookie, dep.chain_id);
  ++degraded_;
  m_degraded_->inc();
  telemetry::SpanRecorder::global().instant("chain_degraded", "pvn",
                                            device_id);
  return false;
}

void DeploymentServer::arm_sweep() {
  if (cfg_.lease_duration <= 0 || sweep_timer_ != kInvalidEventId) return;
  if (deployments_.empty()) return;
  // Sweep granularity of lease/4 bounds how stale an expired deployment
  // can linger at one quarter-lease.
  sweep_timer_ = host_->sim().schedule_after(cfg_.lease_duration / 4, SimCategory::kPvnControl, [this] {
    sweep_timer_ = kInvalidEventId;
    sweep();
  });
}

void DeploymentServer::sweep() {
  const SimTime now = host_->sim().now();
  ++sweep_ticks_;
  std::vector<std::string> expired;
  bool backlog = false;
  for (const auto& [device_id, dep] : deployments_) {
    if (dep.expires_at == 0 || now < dep.expires_at) continue;
    // Amortization: a mass expiry (thousands of leases lapsing in the same
    // tick) is drained in bounded batches so one sweep cannot monopolize
    // the event loop; the remainder reschedules at the drain interval.
    if (cfg_.max_expiries_per_sweep > 0 &&
        expired.size() >= cfg_.max_expiries_per_sweep) {
      backlog = true;
      break;
    }
    expired.push_back(device_id);
  }
  max_swept_per_tick_ = std::max<std::uint64_t>(max_swept_per_tick_,
                                                expired.size());
  for (const std::string& device_id : expired) {
    ++leases_expired_;
    m_leases_expired_->inc();
    telemetry::SpanRecorder::global().instant("lease_expired", "pvn",
                                              device_id);
    teardown_device(device_id);
  }
  if (backlog && sweep_timer_ == kInvalidEventId) {
    sweep_timer_ = host_->sim().schedule_after(
        cfg_.sweep_drain_interval > 0 ? cfg_.sweep_drain_interval
                                      : milliseconds(10),
        SimCategory::kPvnControl, [this] {
          sweep_timer_ = kInvalidEventId;
          sweep();
        });
    return;
  }
  arm_sweep();
}

// --- survivability ---------------------------------------------------------

int DeploymentServer::pick_standby_pool() const {
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (pools_[i].byzantine || pools_[i].host->crashed()) continue;
    return static_cast<int>(i);
  }
  return -1;
}

void DeploymentServer::setup_standby(const std::string& device_id) {
  const int pool = pick_standby_pool();
  if (pool < 0) return;
  MboxHost* standby = pools_[pool].host;
  const auto it = deployments_.find(device_id);
  if (it == deployments_.end()) return;
  Deployment& dep = it->second;
  dep.standby_pool = pool;
  dep.standby_generation = standby->crashes();
  const std::string chain_id = dep.chain_id;

  std::vector<std::unique_ptr<Middlebox>> instances;
  for (const PvncModule& module : dep.pvnc.chain) {
    if (module.store_name == skip_module_) continue;  // mirror the primary
    std::unique_ptr<Middlebox> instance =
        store_->make(module.store_name, module.params);
    if (instance == nullptr) return;  // store changed under us; no spare
    instances.push_back(std::move(instance));
  }
  standby->create_chain(chain_id);
  if (instances.empty()) {
    dep.standby_ready = true;
    ++standbys_ready_;
    m_standbys_ready_->inc();
    arm_checkpoint(device_id);
    return;
  }
  auto remaining = std::make_shared<int>(static_cast<int>(instances.size()));
  auto failed = std::make_shared<bool>(false);
  auto acc = std::make_shared<std::vector<Middlebox*>>();
  const int generation = standby->crashes();
  for (std::unique_ptr<Middlebox>& instance : instances) {
    standby->instantiate(
        std::move(instance),
        [this, device_id, chain_id, remaining, failed, acc, generation,
         standby, pool](Middlebox* mbox) {
          if (mbox == nullptr) {
            *failed = true;  // standby pool crashed or out of memory
          } else {
            acc->push_back(mbox);
          }
          if (--*remaining > 0) return;
          if (generation != standby->crashes()) return;  // crash freed them
          const auto dit = deployments_.find(device_id);
          if (*failed || dit == deployments_.end() ||
              dit->second.chain_id != chain_id ||
              dit->second.standby_pool != pool) {
            // Deployment vanished meanwhile (teardown / redeploy) or the
            // mirror is partial: release the spare capacity.
            for (Middlebox* m : *acc) standby->destroy(m);
            standby->destroy_chain(chain_id);
            return;
          }
          Chain* chain = standby->chain(chain_id);
          for (Middlebox* m : *acc) chain->append(m);
          dit->second.standby_instances = *acc;
          dit->second.standby_ready = true;
          ++standbys_ready_;
          m_standbys_ready_->inc();
          telemetry::SpanRecorder::global().instant("standby_ready", "pvn",
                                                    device_id);
          arm_checkpoint(device_id);
        });
  }
}

void DeploymentServer::arm_checkpoint(const std::string& device_id) {
  if (cfg_.checkpoint_interval <= 0) return;  // cold standby
  const auto it = deployments_.find(device_id);
  if (it == deployments_.end() || it->second.ckpt_timer != kInvalidEventId) {
    return;
  }
  it->second.ckpt_timer = host_->sim().schedule_after(
      cfg_.checkpoint_interval, SimCategory::kPvnControl, [this, device_id] {
        const auto dit = deployments_.find(device_id);
        if (dit == deployments_.end()) return;
        dit->second.ckpt_timer = kInvalidEventId;
        stream_checkpoint(device_id);
      });
}

void DeploymentServer::stream_checkpoint(const std::string& device_id) {
  const auto it = deployments_.find(device_id);
  if (it == deployments_.end()) return;
  Deployment& dep = it->second;
  if (dep.promoted || !dep.standby_ready || dep.degraded) return;
  if (dep.mbox_generation != mbox_host_->crashes()) return;  // primary gone
  if (dep.standby_pool < 0) return;
  Chain* chain = mbox_host_->chain(dep.chain_id);
  if (chain == nullptr) return;
  const ChainCheckpoint ckpt = capture_chain(*chain, ++dep.ckpt_seq,
                                             host_->sim().now(),
                                             &dep.ckpt_digests);
  StateTransfer xfer;
  xfer.seq = static_cast<std::uint32_t>(ckpt.seq);
  xfer.device_id = device_id;
  xfer.chain_id = dep.chain_id;
  xfer.ok = true;
  xfer.checkpoint = ckpt.encode();
  // Remember what went out so the standby's kStateAck can be cross-checked.
  dep.last_sent_seq = xfer.seq;
  dep.last_sent_digest = digest_of(xfer.checkpoint);
  ++checkpoints_streamed_;
  m_checkpoints_streamed_->inc();
  checkpoint_bytes_ += xfer.checkpoint.size();
  m_checkpoint_bytes_->inc(xfer.checkpoint.size());
  host_->send_udp(pools_[dep.standby_pool].addr, kPvnPort, kPvnStandbyPort,
                  wrap(PvnMsgType::kStateTransfer, xfer.encode()));
  arm_checkpoint(device_id);
}

void DeploymentServer::on_standby_crash(int pool) {
  // Runs synchronously from the standby MboxHost's crash().
  MboxHost* standby = pools_[pool].host;
  SdnSwitch* sw = controller_->switch_by_name(cfg_.switch_name);
  std::vector<std::string> to_teardown;
  std::vector<std::string> to_remirror;
  for (auto& [device_id, dep] : deployments_) {
    if (dep.standby_pool != pool) continue;
    if (dep.standby_instances.empty() && !dep.standby_ready) continue;
    if (dep.standby_generation == standby->crashes()) continue;
    if (dep.ckpt_timer != kInvalidEventId) {
      host_->sim().cancel(dep.ckpt_timer);
      dep.ckpt_timer = kInvalidEventId;
    }
    dep.standby_ready = false;
    dep.standby_instances.clear();
    dep.standby_pool = -1;
    ++standbys_lost_;
    m_standbys_lost_->inc();
    if (!dep.promoted) {
      // Primary still serving: just lost the spare. Re-mirror onto another
      // healthy pool when one exists.
      to_remirror.push_back(device_id);
      continue;
    }
    // The live (promoted) chain died with the standby host.
    if (sw != nullptr) sw->unregister_processor(dep.chain_id);
    if (degrade_or_flag_teardown(device_id, dep)) {
      to_teardown.push_back(device_id);
    }
  }
  for (const std::string& device_id : to_teardown) {
    ++chains_lost_;
    m_chains_lost_->inc();
    telemetry::SpanRecorder::global().instant("chain_lost", "pvn", device_id);
    teardown_device(device_id);
  }
  for (const std::string& device_id : to_remirror) {
    setup_standby(device_id);
  }
}

void DeploymentServer::begin_handoff(const DeployRequest& req,
                                     const std::string& chain_id,
                                     std::function<void(bool)> ack) {
  cancel_handoff(req.device_id);  // a newer deploy supersedes a stale pull
  const std::string device_id = req.device_id;
  PendingHandoff ph;
  ph.chain_id = chain_id;
  ph.seq = ++state_seq_;
  ph.ack = std::move(ack);
  ph.timer = host_->sim().schedule_after(
      cfg_.handoff_timeout, SimCategory::kPvnControl, [this, device_id] {
        const auto it = pending_handoffs_.find(device_id);
        if (it == pending_handoffs_.end()) return;
        auto ack_fn = std::move(it->second.ack);
        it->second.timer = kInvalidEventId;
        pending_handoffs_.erase(it);
        ++handoff_timeouts_;
        m_handoff_timeouts_->inc();
        telemetry::SpanRecorder::global().instant("handoff_timeout", "pvn",
                                                  device_id);
        ack_fn(false);  // old server unreachable: ack with a cold chain
      });
  StateRequest sr;
  sr.seq = ph.seq;
  sr.device_id = req.device_id;
  sr.chain_id = req.handoff_chain_id;
  pending_handoffs_[device_id] = std::move(ph);
  telemetry::SpanRecorder::global().instant("handoff_begin", "pvn",
                                            device_id);
  host_->send_udp(req.handoff_server, kPvnPort, kPvnPort,
                  wrap(PvnMsgType::kStateRequest, sr.encode()));
}

void DeploymentServer::handle_state_request(Ipv4Addr src, Port sport,
                                            const StateRequest& sr) {
  StateTransfer xfer;
  xfer.seq = sr.seq;
  xfer.device_id = sr.device_id;
  xfer.chain_id = sr.chain_id;
  const auto it = deployments_.find(sr.device_id);
  if (it != deployments_.end() && it->second.chain_id == sr.chain_id) {
    Deployment& dep = it->second;
    // The authoritative chain: the standby if traffic was promoted there,
    // otherwise the primary (unless it died or was bypassed).
    Chain* chain = nullptr;
    if (dep.promoted && dep.standby_pool >= 0 &&
        dep.standby_generation == pools_[dep.standby_pool].host->crashes()) {
      chain = pools_[dep.standby_pool].host->chain(dep.chain_id);
    } else if (!dep.promoted && !dep.degraded &&
               dep.mbox_generation == mbox_host_->crashes()) {
      chain = mbox_host_->chain(dep.chain_id);
    }
    if (chain != nullptr) {
      const ChainCheckpoint ckpt =
          capture_chain(*chain, ++dep.ckpt_seq, host_->sim().now());
      xfer.ok = true;
      xfer.checkpoint = ckpt.encode();
      ++state_requests_;
      m_state_requests_->inc();
      telemetry::SpanRecorder::global().instant("state_transfer_out", "pvn",
                                                sr.device_id);
    }
  }
  host_->send_udp(src, kPvnPort, sport,
                  wrap(PvnMsgType::kStateTransfer, xfer.encode()));
}

void DeploymentServer::handle_state_transfer(const StateTransfer& xfer) {
  const auto it = pending_handoffs_.find(xfer.device_id);
  if (it == pending_handoffs_.end() || it->second.seq != xfer.seq) return;
  PendingHandoff ph = std::move(it->second);
  pending_handoffs_.erase(it);
  if (ph.timer != kInvalidEventId) host_->sim().cancel(ph.timer);
  bool restored = false;
  if (xfer.ok) {
    // Restore matches modules by name, so the old chain's snapshot applies
    // to the freshly deployed chain even though the chain ids differ. A
    // corrupted checkpoint decodes to nullopt: the new chain stays cold.
    if (const auto ckpt = ChainCheckpoint::decode(xfer.checkpoint)) {
      if (Chain* chain = mbox_host_->chain(ph.chain_id)) {
        restored = restore_chain(*chain, *ckpt) > 0;
      }
    }
  }
  if (restored) {
    ++handoffs_completed_;
    m_handoffs_completed_->inc();
    telemetry::SpanRecorder::global().instant("handoff_complete", "pvn",
                                              xfer.device_id);
  }
  ph.ack(restored);
}

void DeploymentServer::handle_state_ack(const StateAck& sa) {
  if (cfg_.byzantine_ack_threshold <= 0) return;  // cross-check disabled
  const auto it = deployments_.find(sa.device_id);
  if (it == deployments_.end()) return;
  Deployment& dep = it->second;
  if (dep.chain_id != sa.chain_id || dep.standby_pool < 0) return;
  if (sa.seq != dep.last_sent_seq) return;  // stale or reordered ack
  StandbyPool& pool = pools_[dep.standby_pool];
  const auto digest = Digest::from_bytes(sa.digest);
  if (sa.applied && digest && *digest == dep.last_sent_digest) {
    pool.bad_acks = 0;  // consistent: the standby holds what was sent
    return;
  }
  // The standby claims a state it cannot prove (or none at all). One bad
  // ack could be a duplicated datagram's replay rejection; a run of them
  // with no consistent ack in between is a lying or broken standby.
  ++bad_state_acks_;
  m_bad_state_acks_->inc();
  if (++pool.bad_acks >= cfg_.byzantine_ack_threshold) {
    demote_pool(dep.standby_pool, "state acks contradict streamed state");
  }
}

void DeploymentServer::demote_pool(int pool, const std::string& why) {
  StandbyPool& p = pools_[pool];
  if (p.byzantine) return;
  p.byzantine = true;
  ++standbys_demoted_;
  m_standbys_demoted_->inc();
  telemetry::SpanRecorder::global().instant("standby_demoted", "pvn", why);
  std::vector<std::string> to_remirror;
  for (auto& [device_id, dep] : deployments_) {
    if (dep.standby_pool != pool) continue;
    // A promoted deployment is live on this pool's chain; killing it now
    // would turn a detection into an outage. It keeps serving (degraded
    // trust) until the session ends.
    if (dep.promoted) continue;
    if (dep.ckpt_timer != kInvalidEventId) {
      host_->sim().cancel(dep.ckpt_timer);
      dep.ckpt_timer = kInvalidEventId;
    }
    if (dep.standby_generation == p.host->crashes()) {
      for (Middlebox* m : dep.standby_instances) p.host->destroy(m);
      p.host->destroy_chain(dep.chain_id);
    }
    dep.standby_instances.clear();
    dep.standby_ready = false;
    dep.standby_pool = -1;
    to_remirror.push_back(device_id);
  }
  // Re-mirror the stranded deployments onto the next healthy pool. The
  // active sessions never notice: their primaries keep serving throughout.
  for (const std::string& device_id : to_remirror) {
    setup_standby(device_id);
    const auto dit = deployments_.find(device_id);
    if (dit != deployments_.end() && dit->second.standby_pool >= 0) {
      ++standbys_remirrored_;
      m_standbys_remirrored_->inc();
      telemetry::SpanRecorder::global().instant("standby_remirrored", "pvn",
                                                device_id);
    }
  }
}

void DeploymentServer::cancel_handoff(const std::string& device_id) {
  const auto it = pending_handoffs_.find(device_id);
  if (it == pending_handoffs_.end()) return;
  if (it->second.timer != kInvalidEventId) {
    host_->sim().cancel(it->second.timer);
  }
  pending_handoffs_.erase(it);
}

}  // namespace pvn
