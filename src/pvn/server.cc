#include "pvn/server.h"

#include <algorithm>

#include "proto/http.h"

namespace pvn {

DeploymentServer::DeploymentServer(Host& host, PvnStore& store,
                                   MboxHost& mbox_host, Controller& controller,
                                   Ledger& ledger, ServerConfig cfg)
    : host_(&host),
      store_(&store),
      mbox_host_(&mbox_host),
      controller_(&controller),
      ledger_(&ledger),
      cfg_(std::move(cfg)) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_discoveries_ = &reg.counter("pvn.server.discoveries");
  m_offers_sent_ = &reg.counter("pvn.server.offers_sent");
  m_deploys_ = &reg.counter("pvn.server.deploys");
  m_nacks_ = &reg.counter("pvn.server.nacks");
  m_duplicate_deploys_ = &reg.counter("pvn.server.duplicate_deploys");
  m_leases_renewed_ = &reg.counter("pvn.server.leases_renewed");
  m_leases_expired_ = &reg.counter("pvn.server.leases_expired");
  m_degraded_ = &reg.counter("pvn.server.degraded");
  m_chains_lost_ = &reg.counter("pvn.server.chains_lost");
  telemetry::SpanRecorder::global().set_clock(&host_->sim());
  host_->bind_udp(kPvnPort, [this](Ipv4Addr src, Port sport, Port,
                                   const Bytes& payload) {
    on_packet(src, sport, payload);
  });
  mbox_host_->set_crash_listener([this] { on_mbox_crash(); });
}

DeploymentServer::~DeploymentServer() {
  if (sweep_timer_ != kInvalidEventId) host_->sim().cancel(sweep_timer_);
  mbox_host_->set_crash_listener(nullptr);
  host_->unbind_udp(kPvnPort);
}

void DeploymentServer::on_packet(Ipv4Addr src, Port sport,
                                 const Bytes& payload) {
  const auto msg = unwrap(payload);
  if (!msg) return;
  switch (msg->first) {
    case PvnMsgType::kDiscovery: {
      if (const auto dm = DiscoveryMessage::decode(msg->second)) {
        handle_discovery(src, sport, *dm);
      }
      break;
    }
    case PvnMsgType::kDeployRequest: {
      if (auto req = DeployRequest::decode(msg->second)) {
        resolve_and_deploy(src, sport, std::move(*req));
      }
      break;
    }
    case PvnMsgType::kTeardown: {
      if (const auto td = Teardown::decode(msg->second)) {
        handle_teardown(src, sport, *td);
      }
      break;
    }
    case PvnMsgType::kLeaseRenew: {
      if (const auto renew = LeaseRenew::decode(msg->second)) {
        handle_renew(src, sport, *renew);
      }
      break;
    }
    default:
      break;
  }
}

void DeploymentServer::handle_discovery(Ipv4Addr src, Port sport,
                                        const DiscoveryMessage& dm) {
  ++discoveries_;
  m_discoveries_->inc();
  // Standards must intersect.
  bool standards_ok = false;
  for (const std::string& s : dm.standards) {
    if (std::find(cfg_.standards.begin(), cfg_.standards.end(), s) !=
        cfg_.standards.end()) {
      standards_ok = true;
      break;
    }
  }
  if (!standards_ok) return;  // unsupported devices get silence

  Offer offer;
  offer.seq = dm.seq;
  offer.deployment_server = host_->addr();
  offer.standards = cfg_.standards;
  for (const std::string& module : dm.modules) {
    if (!store_->has(module)) continue;
    if (!cfg_.allowed_modules.empty() &&
        !cfg_.allowed_modules.contains(module)) {
      continue;
    }
    offer.offered_modules.push_back(module);
  }
  offer.total_price =
      store_->price_of(offer.offered_modules) * cfg_.price_multiplier;
  offer.expires_at = host_->sim().now() + cfg_.offer_ttl;
  m_offers_sent_->inc();
  host_->send_udp(src, kPvnPort, sport,
                  wrap(PvnMsgType::kOffer, offer.encode()));
}

void DeploymentServer::nack(Ipv4Addr dst, Port dport, std::uint32_t seq,
                            const std::string& reason) {
  ++nacks_;
  m_nacks_->inc();
  DeployNack nack_msg;
  nack_msg.seq = seq;
  nack_msg.reason = reason;
  host_->send_udp(dst, kPvnPort, dport,
                  wrap(PvnMsgType::kDeployNack, nack_msg.encode()));
}

void DeploymentServer::resolve_and_deploy(Ipv4Addr src, Port sport,
                                          DeployRequest req) {
  if (req.pvnc_uri.empty()) {
    handle_deploy(src, sport, req);
    return;
  }
  Ipv4Addr storage;
  std::string path;
  if (!parse_pvnc_uri(req.pvnc_uri, storage, path)) {
    nack(src, sport, req.seq, "malformed pvnc uri");
    return;
  }
  if (http_ == nullptr) http_ = std::make_unique<HttpClient>(*host_);
  http_->fetch(storage, 80, path,
               [this, src, sport, req = std::move(req)](
                   const HttpResponse& resp, const FetchTiming& t) mutable {
                 if (!t.ok) {
                   nack(src, sport, req.seq, "pvnc uri unreachable");
                   return;
                 }
                 const auto fetched = Pvnc::decode(resp.body);
                 if (!fetched) {
                   nack(src, sport, req.seq, "pvnc uri object malformed");
                   return;
                 }
                 req.pvnc = *fetched;
                 // URI-mode deployments accept the provider's allowed
                 // subset implicitly (the device never saw the offer
                 // against this object's full module list).
                 if (!cfg_.allowed_modules.empty()) {
                   std::vector<std::string> allowed(
                       cfg_.allowed_modules.begin(),
                       cfg_.allowed_modules.end());
                   req.pvnc = restrict_to_modules(req.pvnc, allowed);
                 }
                 req.pvnc_uri.clear();
                 handle_deploy(src, sport, req);
               });
}

void DeploymentServer::handle_deploy(Ipv4Addr src, Port sport,
                                     const DeployRequest& req) {
  if (drop_deploys_) return;  // failure injection: silent server
  // Idempotence: a retransmission of an acked request gets the cached ack
  // (the first ack may have been lost); one still in flight is dropped.
  // Retransmissions are byte-identical (the client re-sends the encoded
  // request verbatim), which distinguishes them from a fresh client session
  // that happens to reuse a sequence number with a different PVNC.
  const Bytes req_bytes = req.encode();
  if (const auto it = deployments_.find(req.device_id);
      it != deployments_.end() && it->second.seq == req.seq &&
      it->second.request_bytes == req_bytes &&
      !it->second.ack_bytes.empty()) {
    ++duplicates_;
    m_duplicate_deploys_->inc();
    host_->send_udp(src, kPvnPort, sport, it->second.ack_bytes);
    return;
  }
  if (const auto p = pending_.find(req.device_id);
      p != pending_.end() && p->second == req_bytes) {
    ++duplicates_;
    m_duplicate_deploys_->inc();
    return;  // the in-flight deployment will answer
  }
  // Validate against the store.
  const std::vector<std::string> problems = validate_pvnc(req.pvnc, store_);
  if (!problems.empty()) {
    nack(src, sport, req.seq, "invalid pvnc: " + problems.front());
    return;
  }
  // Policy check: every module must be allowed here.
  for (const std::string& module : req.pvnc.module_names()) {
    if (!cfg_.allowed_modules.empty() &&
        !cfg_.allowed_modules.contains(module)) {
      nack(src, sport, req.seq, "module not allowed: " + module);
      return;
    }
  }
  // Payment check.
  const double price =
      store_->price_of(req.pvnc.module_names()) * cfg_.price_multiplier;
  if (req.payment + 1e-9 < price) {
    nack(src, sport, req.seq, "insufficient payment");
    return;
  }
  if (mbox_host_->crashed()) {
    nack(src, sport, req.seq, "middlebox host unavailable");
    return;
  }
  // Memory admission control.
  if (mbox_host_->memory_in_use() + req.pvnc.est_memory_bytes() >
      mbox_host_->memory_budget()) {
    nack(src, sport, req.seq, "out of middlebox memory");
    return;
  }
  // Tear down any previous deployment for this device.
  teardown_device(req.device_id);

  // Spans the instantiate -> compile -> program-switch -> ack pipeline on
  // the server's side of the session track. shared_ptr: the continuations
  // live in copyable std::functions, and Span is move-only.
  auto deploy_span = std::make_shared<telemetry::Span>(
      telemetry::SpanRecorder::global().start("server_deploy", "pvn",
                                              req.device_id));

  const std::string chain_id =
      "chain:" + req.device_id + ":" + std::to_string(chain_seq_++);
  const std::string cookie = "pvn:" + req.device_id;

  auto deployment = std::make_shared<Deployment>();
  deployment->cookie = cookie;
  deployment->chain_id = chain_id;
  deployment->paid = price;
  deployment->seq = req.seq;
  deployment->mbox_generation = mbox_host_->crashes();
  deployment->module_names = req.pvnc.module_names();
  deployment->required_modules = req.required_modules;
  deployment->request_bytes = req_bytes;

  pending_[req.device_id] = req_bytes;

  // Instantiate the chain's modules (each charges instantiation delay).
  auto remaining = std::make_shared<int>(0);
  auto failed = std::make_shared<bool>(false);
  Chain& chain = mbox_host_->create_chain(chain_id);

  const auto finish = [this, src, sport, req, deployment, chain_id, cookie,
                       price, deploy_span, &chain]() {
    // Program the switch.
    telemetry::Span compile_span = telemetry::SpanRecorder::global().start(
        "compile", "pvn", req.device_id);
    DeploymentContext ctx;
    ctx.device = src;
    ctx.client_port = cfg_.client_port_for ? cfg_.client_port_for(src)
                                           : cfg_.switch_client_port;
    ctx.wan_port = cfg_.switch_wan_port;
    ctx.chain_id = chain_id;
    ctx.cookie = cookie;
    ctx.control = host_->addr();
    ctx.control_port = cfg_.switch_control_port;
    const CompiledPvnc compiled = compile_pvnc(req.pvnc, ctx);
    compile_span.finish();

    SdnSwitch* sw = controller_->switch_by_name(cfg_.switch_name);
    if (sw == nullptr) {
      pending_.erase(req.device_id);
      nack(src, sport, req.seq, "no dataplane");
      deploy_span->finish();
      return;
    }
    sw->register_processor(chain_id, &chain);
    for (const MeterSpec& meter : compiled.meters) {
      controller_->add_meter(cfg_.switch_name, meter.id, meter.rate,
                             meter.burst_bytes);
    }
    const auto ack_deployment = [this, src, sport, req, deployment, price,
                                 deploy_span] {
      if (cfg_.lease_duration > 0) {
        deployment->expires_at = host_->sim().now() + cfg_.lease_duration;
      }
      DeployAck ack;
      ack.seq = req.seq;
      ack.chain_id = deployment->chain_id;
      ack.lease_duration = cfg_.lease_duration;
      deployment->ack_bytes = wrap(PvnMsgType::kDeployAck, ack.encode());
      deployments_[req.device_id] = *deployment;
      pending_.erase(req.device_id);
      ++deploy_count_;
      m_deploys_->inc();
      if (price > 0.0) {
        ledger_->charge(host_->sim().now(), req.device_id, cfg_.network_name,
                        price, "pvn deployment " + deployment->chain_id);
      }
      host_->send_udp(src, kPvnPort, sport, deployment->ack_bytes);
      deploy_span->finish();
      arm_sweep();
    };
    auto pending = std::make_shared<int>(static_cast<int>(compiled.rules.size()));
    for (const auto& [table, rule] : compiled.rules) {
      controller_->install_rule(cfg_.switch_name, table, rule,
                                [pending, ack_deployment](bool ok) {
                                  (void)ok;
                                  if (--*pending > 0) return;
                                  ack_deployment();  // all rules in
                                });
    }
    if (compiled.rules.empty()) ack_deployment();
  };

  std::vector<PvncModule> to_instantiate;
  for (const PvncModule& module : req.pvnc.chain) {
    if (module.store_name == skip_module_) continue;  // dishonest ISP model
    to_instantiate.push_back(module);
  }
  *remaining = static_cast<int>(to_instantiate.size());
  if (to_instantiate.empty()) {
    finish();
    return;
  }
  for (const PvncModule& module : to_instantiate) {
    std::unique_ptr<Middlebox> instance =
        store_->make(module.store_name, module.params);
    if (instance == nullptr) {
      pending_.erase(req.device_id);
      nack(src, sport, req.seq, "cannot instantiate " + module.store_name);
      deploy_span->finish();
      return;
    }
    mbox_host_->instantiate(
        std::move(instance),
        [this, remaining, failed, deployment, finish, src, sport, req,
         deploy_span](Middlebox* mbox) {
          if (*failed) return;
          if (mbox == nullptr) {
            *failed = true;
            pending_.erase(req.device_id);
            nack(src, sport, req.seq,
                 mbox_host_->crashed() ? "middlebox host unavailable"
                                       : "out of middlebox memory");
            deploy_span->finish();
            return;
          }
          deployment->instances.push_back(mbox);
          if (--*remaining == 0) {
            // Preserve chain order: instances may be appended out of
            // order only if instantiation delays differ; they do not.
            Chain* chain = mbox_host_->chain(deployment->chain_id);
            for (Middlebox* m : deployment->instances) chain->append(m);
            finish();
          }
        });
  }
}

void DeploymentServer::teardown_device(const std::string& device_id) {
  const auto it = deployments_.find(device_id);
  if (it == deployments_.end()) return;
  const Deployment& dep = it->second;
  controller_->remove_by_cookie(dep.cookie);
  if (SdnSwitch* sw = controller_->switch_by_name(cfg_.switch_name)) {
    sw->unregister_processor(dep.chain_id);
  }
  // A MboxHost crash already destroyed older-generation chains/instances;
  // destroying them again would touch freed memory.
  if (dep.mbox_generation == mbox_host_->crashes()) {
    for (Middlebox* m : dep.instances) mbox_host_->destroy(m);
    mbox_host_->destroy_chain(dep.chain_id);
  }
  deployments_.erase(it);
}

void DeploymentServer::handle_teardown(Ipv4Addr src, Port sport,
                                       const Teardown& td) {
  teardown_device(td.device_id);
  if (sport != 0) {
    host_->send_udp(src, kPvnPort, sport,
                    wrap(PvnMsgType::kTeardownAck, Bytes{}));
  }
}

void DeploymentServer::handle_renew(Ipv4Addr src, Port sport,
                                    const LeaseRenew& renew) {
  LeaseAck ack;
  ack.seq = renew.seq;
  const auto it = deployments_.find(renew.device_id);
  if (it == deployments_.end() || it->second.chain_id != renew.chain_id) {
    ack.ok = false;
    ack.reason = "no such deployment";
  } else {
    Deployment& dep = it->second;
    ack.ok = true;
    ack.lease_duration = cfg_.lease_duration;
    if (cfg_.lease_duration > 0) {
      dep.expires_at = host_->sim().now() + cfg_.lease_duration;
    }
    if (dep.degraded) ack.degraded_modules = dep.module_names;
    ++renews_;
    m_leases_renewed_->inc();
  }
  host_->send_udp(src, kPvnPort, sport,
                  wrap(PvnMsgType::kLeaseAck, ack.encode()));
}

void DeploymentServer::on_mbox_crash() {
  // Runs synchronously from MboxHost::crash(): the chains are gone, so
  // first unhook their (now dangling) processors from the dataplane.
  SdnSwitch* sw = controller_->switch_by_name(cfg_.switch_name);
  std::vector<std::string> to_teardown;
  for (auto& [device_id, dep] : deployments_) {
    if (dep.mbox_generation == mbox_host_->crashes()) continue;  // unaffected
    if (sw != nullptr) sw->unregister_processor(dep.chain_id);
    // Can the deployment limp along without its chain? Only if no module
    // the client marked as required just died.
    bool required_lost = false;
    for (const std::string& module : dep.required_modules) {
      if (std::find(dep.module_names.begin(), dep.module_names.end(),
                    module) != dep.module_names.end()) {
        required_lost = true;
        break;
      }
    }
    if (required_lost || dep.degraded) {
      to_teardown.push_back(device_id);
    } else {
      // Graceful degradation: strip only the chain-divert rules so traffic
      // flows past the dead chain; policies (drop/rate/mark) stay.
      dep.degraded = true;
      controller_->bypass_chain(dep.cookie, dep.chain_id);
      ++degraded_;
      m_degraded_->inc();
      telemetry::SpanRecorder::global().instant("chain_degraded", "pvn",
                                                device_id);
    }
  }
  for (const std::string& device_id : to_teardown) {
    ++chains_lost_;
    m_chains_lost_->inc();
    telemetry::SpanRecorder::global().instant("chain_lost", "pvn", device_id);
    teardown_device(device_id);
  }
}

void DeploymentServer::arm_sweep() {
  if (cfg_.lease_duration <= 0 || sweep_timer_ != kInvalidEventId) return;
  if (deployments_.empty()) return;
  // Sweep granularity of lease/4 bounds how stale an expired deployment
  // can linger at one quarter-lease.
  sweep_timer_ = host_->sim().schedule_after(cfg_.lease_duration / 4, SimCategory::kPvnControl, [this] {
    sweep_timer_ = kInvalidEventId;
    sweep();
  });
}

void DeploymentServer::sweep() {
  const SimTime now = host_->sim().now();
  std::vector<std::string> expired;
  for (const auto& [device_id, dep] : deployments_) {
    if (dep.expires_at != 0 && now >= dep.expires_at) {
      expired.push_back(device_id);
    }
  }
  for (const std::string& device_id : expired) {
    ++leases_expired_;
    m_leases_expired_->inc();
    telemetry::SpanRecorder::global().instant("lease_expired", "pvn",
                                              device_id);
    teardown_device(device_id);
  }
  arm_sweep();
}

}  // namespace pvn
