#include "pvn/server.h"

#include <algorithm>

#include "proto/http.h"

namespace pvn {

DeploymentServer::DeploymentServer(Host& host, PvnStore& store,
                                   MboxHost& mbox_host, Controller& controller,
                                   Ledger& ledger, ServerConfig cfg)
    : host_(&host),
      store_(&store),
      mbox_host_(&mbox_host),
      controller_(&controller),
      ledger_(&ledger),
      cfg_(std::move(cfg)) {
  host_->bind_udp(kPvnPort, [this](Ipv4Addr src, Port sport, Port,
                                   const Bytes& payload) {
    on_packet(src, sport, payload);
  });
}

DeploymentServer::~DeploymentServer() { host_->unbind_udp(kPvnPort); }

void DeploymentServer::on_packet(Ipv4Addr src, Port sport,
                                 const Bytes& payload) {
  const auto msg = unwrap(payload);
  if (!msg) return;
  switch (msg->first) {
    case PvnMsgType::kDiscovery: {
      if (const auto dm = DiscoveryMessage::decode(msg->second)) {
        handle_discovery(src, sport, *dm);
      }
      break;
    }
    case PvnMsgType::kDeployRequest: {
      if (auto req = DeployRequest::decode(msg->second)) {
        resolve_and_deploy(src, sport, std::move(*req));
      }
      break;
    }
    case PvnMsgType::kTeardown: {
      if (const auto td = Teardown::decode(msg->second)) {
        handle_teardown(src, sport, *td);
      }
      break;
    }
    default:
      break;
  }
}

void DeploymentServer::handle_discovery(Ipv4Addr src, Port sport,
                                        const DiscoveryMessage& dm) {
  ++discoveries_;
  // Standards must intersect.
  bool standards_ok = false;
  for (const std::string& s : dm.standards) {
    if (std::find(cfg_.standards.begin(), cfg_.standards.end(), s) !=
        cfg_.standards.end()) {
      standards_ok = true;
      break;
    }
  }
  if (!standards_ok) return;  // unsupported devices get silence

  Offer offer;
  offer.seq = dm.seq;
  offer.deployment_server = host_->addr();
  offer.standards = cfg_.standards;
  for (const std::string& module : dm.modules) {
    if (!store_->has(module)) continue;
    if (!cfg_.allowed_modules.empty() &&
        !cfg_.allowed_modules.contains(module)) {
      continue;
    }
    offer.offered_modules.push_back(module);
  }
  offer.total_price =
      store_->price_of(offer.offered_modules) * cfg_.price_multiplier;
  offer.expires_at = host_->sim().now() + cfg_.offer_ttl;
  host_->send_udp(src, kPvnPort, sport,
                  wrap(PvnMsgType::kOffer, offer.encode()));
}

void DeploymentServer::nack(Ipv4Addr dst, Port dport, std::uint32_t seq,
                            const std::string& reason) {
  ++nacks_;
  DeployNack nack_msg;
  nack_msg.seq = seq;
  nack_msg.reason = reason;
  host_->send_udp(dst, kPvnPort, dport,
                  wrap(PvnMsgType::kDeployNack, nack_msg.encode()));
}

void DeploymentServer::resolve_and_deploy(Ipv4Addr src, Port sport,
                                          DeployRequest req) {
  if (req.pvnc_uri.empty()) {
    handle_deploy(src, sport, req);
    return;
  }
  Ipv4Addr storage;
  std::string path;
  if (!parse_pvnc_uri(req.pvnc_uri, storage, path)) {
    nack(src, sport, req.seq, "malformed pvnc uri");
    return;
  }
  if (http_ == nullptr) http_ = std::make_unique<HttpClient>(*host_);
  http_->fetch(storage, 80, path,
               [this, src, sport, req = std::move(req)](
                   const HttpResponse& resp, const FetchTiming& t) mutable {
                 if (!t.ok) {
                   nack(src, sport, req.seq, "pvnc uri unreachable");
                   return;
                 }
                 const auto fetched = Pvnc::decode(resp.body);
                 if (!fetched) {
                   nack(src, sport, req.seq, "pvnc uri object malformed");
                   return;
                 }
                 req.pvnc = *fetched;
                 // URI-mode deployments accept the provider's allowed
                 // subset implicitly (the device never saw the offer
                 // against this object's full module list).
                 if (!cfg_.allowed_modules.empty()) {
                   std::vector<std::string> allowed(
                       cfg_.allowed_modules.begin(),
                       cfg_.allowed_modules.end());
                   req.pvnc = restrict_to_modules(req.pvnc, allowed);
                 }
                 req.pvnc_uri.clear();
                 handle_deploy(src, sport, req);
               });
}

void DeploymentServer::handle_deploy(Ipv4Addr src, Port sport,
                                     const DeployRequest& req) {
  if (drop_deploys_) return;  // failure injection: silent server
  // Validate against the store.
  const std::vector<std::string> problems = validate_pvnc(req.pvnc, store_);
  if (!problems.empty()) {
    nack(src, sport, req.seq, "invalid pvnc: " + problems.front());
    return;
  }
  // Policy check: every module must be allowed here.
  for (const std::string& module : req.pvnc.module_names()) {
    if (!cfg_.allowed_modules.empty() &&
        !cfg_.allowed_modules.contains(module)) {
      nack(src, sport, req.seq, "module not allowed: " + module);
      return;
    }
  }
  // Payment check.
  const double price =
      store_->price_of(req.pvnc.module_names()) * cfg_.price_multiplier;
  if (req.payment + 1e-9 < price) {
    nack(src, sport, req.seq, "insufficient payment");
    return;
  }
  // Memory admission control.
  if (mbox_host_->memory_in_use() + req.pvnc.est_memory_bytes() >
      mbox_host_->memory_budget()) {
    nack(src, sport, req.seq, "out of middlebox memory");
    return;
  }
  // Tear down any previous deployment for this device.
  if (deployments_.contains(req.device_id)) {
    Teardown td;
    td.device_id = req.device_id;
    handle_teardown(src, 0, td);
  }

  const std::string chain_id =
      "chain:" + req.device_id + ":" + std::to_string(chain_seq_++);
  const std::string cookie = "pvn:" + req.device_id;

  auto deployment = std::make_shared<Deployment>();
  deployment->cookie = cookie;
  deployment->chain_id = chain_id;
  deployment->paid = price;

  // Instantiate the chain's modules (each charges instantiation delay).
  auto remaining = std::make_shared<int>(0);
  auto failed = std::make_shared<bool>(false);
  Chain& chain = mbox_host_->create_chain(chain_id);

  const auto finish = [this, src, sport, req, deployment, chain_id, cookie,
                       price, &chain]() {
    // Program the switch.
    DeploymentContext ctx;
    ctx.device = src;
    ctx.client_port = cfg_.client_port_for ? cfg_.client_port_for(src)
                                           : cfg_.switch_client_port;
    ctx.wan_port = cfg_.switch_wan_port;
    ctx.chain_id = chain_id;
    ctx.cookie = cookie;
    ctx.control = host_->addr();
    ctx.control_port = cfg_.switch_control_port;
    const CompiledPvnc compiled = compile_pvnc(req.pvnc, ctx);

    SdnSwitch* sw = controller_->switch_by_name(cfg_.switch_name);
    if (sw == nullptr) {
      nack(src, sport, req.seq, "no dataplane");
      return;
    }
    sw->register_processor(chain_id, &chain);
    for (const MeterSpec& meter : compiled.meters) {
      controller_->add_meter(cfg_.switch_name, meter.id, meter.rate,
                             meter.burst_bytes);
    }
    auto pending = std::make_shared<int>(static_cast<int>(compiled.rules.size()));
    for (const auto& [table, rule] : compiled.rules) {
      controller_->install_rule(
          cfg_.switch_name, table, rule,
          [this, pending, src, sport, req, deployment, price](bool ok) {
            (void)ok;
            if (--*pending > 0) return;
            // All rules in: acknowledge and bill.
            deployments_[req.device_id] = *deployment;
            ++deploy_count_;
            ledger_->charge(host_->sim().now(), req.device_id,
                            cfg_.network_name, price,
                            "pvn deployment " + deployment->chain_id);
            DeployAck ack;
            ack.seq = req.seq;
            ack.chain_id = deployment->chain_id;
            host_->send_udp(src, kPvnPort, sport,
                            wrap(PvnMsgType::kDeployAck, ack.encode()));
          });
    }
    if (compiled.rules.empty()) {
      deployments_[req.device_id] = *deployment;
      ++deploy_count_;
      DeployAck ack;
      ack.seq = req.seq;
      ack.chain_id = deployment->chain_id;
      host_->send_udp(src, kPvnPort, sport,
                      wrap(PvnMsgType::kDeployAck, ack.encode()));
    }
  };

  std::vector<PvncModule> to_instantiate;
  for (const PvncModule& module : req.pvnc.chain) {
    if (module.store_name == skip_module_) continue;  // dishonest ISP model
    to_instantiate.push_back(module);
  }
  *remaining = static_cast<int>(to_instantiate.size());
  if (to_instantiate.empty()) {
    finish();
    return;
  }
  for (const PvncModule& module : to_instantiate) {
    std::unique_ptr<Middlebox> instance =
        store_->make(module.store_name, module.params);
    if (instance == nullptr) {
      nack(src, sport, req.seq, "cannot instantiate " + module.store_name);
      return;
    }
    mbox_host_->instantiate(
        std::move(instance),
        [this, remaining, failed, deployment, finish, src, sport,
         req](Middlebox* mbox) {
          if (*failed) return;
          if (mbox == nullptr) {
            *failed = true;
            nack(src, sport, req.seq, "out of middlebox memory");
            return;
          }
          deployment->instances.push_back(mbox);
          if (--*remaining == 0) {
            // Preserve chain order: instances may be appended out of
            // order only if instantiation delays differ; they do not.
            Chain* chain = mbox_host_->chain(deployment->chain_id);
            for (Middlebox* m : deployment->instances) chain->append(m);
            finish();
          }
        });
  }
}

void DeploymentServer::handle_teardown(Ipv4Addr src, Port sport,
                                       const Teardown& td) {
  const auto it = deployments_.find(td.device_id);
  if (it != deployments_.end()) {
    const Deployment& dep = it->second;
    controller_->remove_by_cookie(dep.cookie);
    if (SdnSwitch* sw = controller_->switch_by_name(cfg_.switch_name)) {
      sw->unregister_processor(dep.chain_id);
    }
    for (Middlebox* m : dep.instances) mbox_host_->destroy(m);
    mbox_host_->destroy_chain(dep.chain_id);
    deployments_.erase(it);
  }
  if (sport != 0) {
    host_->send_udp(src, kPvnPort, sport,
                    wrap(PvnMsgType::kTeardownAck, Bytes{}));
  }
}

}  // namespace pvn
