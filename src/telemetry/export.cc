#include "telemetry/export.h"

#include <algorithm>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <filesystem>
#include <map>

namespace pvn::telemetry {
namespace {

std::string sanitize(std::string_view name) {
  std::string out(name);
  for (char& c : out) {
    if (c == '.' || c == '-') c = '_';
  }
  return out;
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void append(std::string& out, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

void append(std::string& out, const char* fmt, ...) {
  char buf[512];
  va_list ap;
  va_start(ap, fmt);
  const int n = std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (n > 0) out.append(buf, std::min<std::size_t>(static_cast<std::size_t>(n),
                                                   sizeof(buf) - 1));
}

}  // namespace

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  std::string last_typed;
  for (const MetricSample& s : snap.samples) {
    const std::string name = sanitize(s.name);
    if (name != last_typed) {
      const char* type = s.kind == MetricKind::kCounter   ? "counter"
                         : s.kind == MetricKind::kGauge   ? "gauge"
                                                          : "histogram";
      append(out, "# TYPE %s %s\n", name.c_str(), type);
      last_typed = name;
    }
    const std::string inst =
        s.instance.empty() ? ""
                           : "instance=\"" + json_escape(s.instance) + "\"";
    switch (s.kind) {
      case MetricKind::kCounter:
        if (inst.empty()) {
          append(out, "%s %" PRIu64 "\n", name.c_str(), s.counter_value);
        } else {
          append(out, "%s{%s} %" PRIu64 "\n", name.c_str(), inst.c_str(),
                 s.counter_value);
        }
        break;
      case MetricKind::kGauge:
        if (inst.empty()) {
          append(out, "%s %" PRId64 "\n", name.c_str(), s.gauge_value);
        } else {
          append(out, "%s{%s} %" PRId64 "\n", name.c_str(), inst.c_str(),
                 s.gauge_value);
        }
        break;
      case MetricKind::kHistogram: {
        // Prometheus buckets are cumulative.
        std::uint64_t cumulative = 0;
        const std::string sep = inst.empty() ? "" : inst + ",";
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          cumulative += s.bucket_counts[i];
          if (i < s.bounds.size()) {
            append(out, "%s_bucket{%sle=\"%" PRIu64 "\"} %" PRIu64 "\n",
                   name.c_str(), sep.c_str(), s.bounds[i], cumulative);
          } else {
            append(out, "%s_bucket{%sle=\"+Inf\"} %" PRIu64 "\n",
                   name.c_str(), sep.c_str(), cumulative);
          }
        }
        if (inst.empty()) {
          append(out, "%s_sum %" PRIu64 "\n", name.c_str(), s.hist_sum);
          append(out, "%s_count %" PRIu64 "\n", name.c_str(), s.hist_count);
        } else {
          append(out, "%s_sum{%s} %" PRIu64 "\n", name.c_str(), inst.c_str(),
                 s.hist_sum);
          append(out, "%s_count{%s} %" PRIu64 "\n", name.c_str(), inst.c_str(),
                 s.hist_count);
        }
        break;
      }
    }
  }
  return out;
}

std::string metrics_json(const MetricsSnapshot& snap) {
  std::string out = "{\n  \"metrics\": [\n";
  for (std::size_t idx = 0; idx < snap.samples.size(); ++idx) {
    const MetricSample& s = snap.samples[idx];
    append(out, "    {\"name\": \"%s\", \"instance\": \"%s\", ",
           json_escape(s.name).c_str(), json_escape(s.instance).c_str());
    switch (s.kind) {
      case MetricKind::kCounter:
        append(out, "\"kind\": \"counter\", \"value\": %" PRIu64 "}",
               s.counter_value);
        break;
      case MetricKind::kGauge:
        append(out, "\"kind\": \"gauge\", \"value\": %" PRId64 "}",
               s.gauge_value);
        break;
      case MetricKind::kHistogram: {
        out += "\"kind\": \"histogram\", \"bounds\": [";
        for (std::size_t i = 0; i < s.bounds.size(); ++i) {
          append(out, "%s%" PRIu64, i ? ", " : "", s.bounds[i]);
        }
        out += "], \"counts\": [";
        for (std::size_t i = 0; i < s.bucket_counts.size(); ++i) {
          append(out, "%s%" PRIu64, i ? ", " : "", s.bucket_counts[i]);
        }
        append(out, "], \"sum\": %" PRIu64 ", \"count\": %" PRIu64 "}",
               s.hist_sum, s.hist_count);
        break;
      }
    }
    out += idx + 1 < snap.samples.size() ? ",\n" : "\n";
  }
  out += "  ]\n}\n";
  return out;
}

std::string trace_events_json(const std::vector<SpanRecord>& records,
                              SimTime now) {
  // One trace track (tid) per session id, in first-seen order.
  std::map<std::string, int> tids;
  const auto tid_of = [&tids](const std::string& session) {
    const auto it = tids.find(session);
    if (it != tids.end()) return it->second;
    const int tid = static_cast<int>(tids.size()) + 1;
    tids[session] = tid;
    return tid;
  };

  std::string out = "{\"traceEvents\": [\n";
  bool first = true;
  for (const SpanRecord& r : records) {
    const int tid = tid_of(r.session);
    const double ts_us = static_cast<double>(r.start) / 1000.0;
    if (!first) out += ",\n";
    first = false;
    if (r.end == r.start) {
      append(out,
             "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"i\", "
             "\"ts\": %.3f, \"pid\": 1, \"tid\": %d, \"s\": \"t\"}",
             json_escape(r.name).c_str(), json_escape(r.category).c_str(),
             ts_us, tid);
    } else {
      const SimTime end = r.end < 0 ? std::max(now, r.start) : r.end;
      const double dur_us = static_cast<double>(end - r.start) / 1000.0;
      append(out,
             "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"X\", "
             "\"ts\": %.3f, \"dur\": %.3f, \"pid\": 1, \"tid\": %d, "
             "\"args\": {\"depth\": %d}}",
             json_escape(r.name).c_str(), json_escape(r.category).c_str(),
             ts_us, dur_us, tid, r.depth);
    }
  }
  // Name each track after its session id so the viewer shows device ids.
  for (const auto& [session, tid] : tids) {
    if (!first) out += ",\n";
    first = false;
    append(out,
           "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
           "\"tid\": %d, \"args\": {\"name\": \"%s\"}}",
           tid, json_escape(session.empty() ? "global" : session).c_str());
  }
  out += "\n], \"displayTimeUnit\": \"ms\"}\n";
  return out;
}

std::string profile_json(const SimProfile& profile) {
  std::string out = "{\n  \"categories\": [\n";
  for (std::size_t i = 0; i < kSimCategoryCount; ++i) {
    const SimProfile::Entry& e = profile.by_category[i];
    append(out,
           "    {\"category\": \"%s\", \"events\": %" PRIu64
           ", \"wall_ns\": %" PRIu64 "}%s\n",
           to_string(static_cast<SimCategory>(i)), e.events, e.wall_ns,
           i + 1 < kSimCategoryCount ? "," : "");
  }
  append(out,
         "  ],\n  \"total_events\": %" PRIu64 ",\n  \"total_wall_ns\": %" PRIu64
         "\n}\n",
         profile.total_events(), profile.total_wall_ns());
  return out;
}

namespace {

bool write_file(const std::filesystem::path& path, const std::string& body) {
  std::FILE* f = std::fopen(path.string().c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "telemetry: cannot write %s\n", path.string().c_str());
    return false;
  }
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  std::fclose(f);
  return ok;
}

}  // namespace

bool export_telemetry(const std::string& dir, const MetricsRegistry& registry,
                      const SpanRecorder& spans, const SimProfile* profile) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    std::fprintf(stderr, "telemetry: cannot create %s: %s\n", dir.c_str(),
                 ec.message().c_str());
    return false;
  }
  const std::filesystem::path base(dir);
  const MetricsSnapshot snap = registry.snapshot();
  bool ok = write_file(base / "metrics.prom", prometheus_text(snap));
  ok = write_file(base / "metrics.json", metrics_json(snap)) && ok;
  ok = write_file(base / "trace_events.json", trace_events_json(spans)) && ok;
  if (profile != nullptr) {
    ok = write_file(base / "profile.json", profile_json(*profile)) && ok;
  }
  return ok;
}

}  // namespace pvn::telemetry
