// Telemetry exporters: Prometheus-style text, JSON snapshots, and Chrome
// trace_event JSON (load in chrome://tracing or https://ui.perfetto.dev).
//
// All writers render to std::string so tests can golden-file them;
// export_telemetry() is the convenience wrapper benches use for
// --telemetry-out=<dir>.
#pragma once

#include <string>

#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "util/sim.h"

namespace pvn::telemetry {

// Prometheus text exposition format. Dots in metric names become
// underscores; instances render as an {instance="..."} label; histograms
// expand to cumulative _bucket{le=...} series plus _sum and _count.
std::string prometheus_text(const MetricsSnapshot& snap);

// The same snapshot as a JSON object: {"metrics": [...]}.
std::string metrics_json(const MetricsSnapshot& snap);

// Spans as Chrome trace_event JSON: one complete ("ph":"X") event per
// finished span, instants as "ph":"i", one track (tid) per session id.
// Open spans are closed at `now` so a mid-run export still renders.
std::string trace_events_json(const std::vector<SpanRecord>& records,
                              SimTime now);
inline std::string trace_events_json(const SpanRecorder& rec) {
  // last_time(), not now(): exports often run after the simulator that
  // served as the recorder's clock has been destroyed.
  return trace_events_json(rec.records(), rec.last_time());
}

// The simulator profile (events + wall time per callback category) as JSON.
std::string profile_json(const SimProfile& profile);

// Writes metrics.prom, metrics.json, and trace_events.json (plus
// profile.json when `profile` is given) under `dir`, creating it if needed.
// Returns false (after perror-style stderr output) if anything fails.
bool export_telemetry(const std::string& dir,
                      const MetricsRegistry& registry,
                      const SpanRecorder& spans,
                      const SimProfile* profile = nullptr);
inline bool export_telemetry(const std::string& dir) {
  return export_telemetry(dir, MetricsRegistry::global(),
                          SpanRecorder::global());
}

}  // namespace pvn::telemetry
