// Control-plane span tracing.
//
// A Span is an RAII handle over a [start, end] interval in simulated time,
// keyed by a PVN session id (the device id of the PVNC being deployed).
// The control plane opens spans for discovery -> negotiation -> compile ->
// deploy -> lease lifecycle; point events (retransmissions, failovers,
// injected faults) are recorded as zero-duration instants.
//
// Records land in a fixed-capacity ring buffer (old records are overwritten,
// never reallocated), and telemetry/export.h renders them as Chrome
// trace_event JSON — load the file in chrome://tracing or Perfetto, one
// track per session id.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/sim.h"
#include "util/time.h"

namespace pvn::telemetry {

struct SpanRecord {
  std::uint64_t seq = 0;  // monotonically increasing record number
  std::string name;       // e.g. "deploy"
  std::string category;   // taxonomy: "pvn", "fault", ...
  std::string session;    // PVN session id (device id); "" = global
  SimTime start = 0;
  SimTime end = -1;       // -1 while the span is open
  int depth = 0;          // nesting depth within the session at start time
};

class Span;

class SpanRecorder {
 public:
  explicit SpanRecorder(std::size_t capacity = 4096);
  SpanRecorder(const SpanRecorder&) = delete;
  SpanRecorder& operator=(const SpanRecorder&) = delete;

  // The process-wide recorder the control plane writes to.
  static SpanRecorder& global();

  // Spans are stamped from this clock. Components call this on construction
  // (idempotent); the last caller wins, which is what single-Network runs
  // want. Without a clock, records are stamped at t=0. The clock is only
  // dereferenced while recording, so it must outlive the spans it stamps —
  // after the simulator is gone, exporters read last_time() instead.
  void set_clock(const Simulator* sim) { clock_ = sim; }
  SimTime now() const { return clock_ != nullptr ? clock_->now() : 0; }
  // Newest timestamp ever recorded. Safe after the clock's Simulator has
  // been destroyed (the export-at-exit case), unlike now().
  SimTime last_time() const { return last_time_; }

  // Opens a span; it closes when the returned handle is destroyed (or
  // finish()ed). The handle stays valid even after the ring wraps past the
  // record — the late finish is simply dropped.
  Span start(std::string_view name, std::string_view category,
             std::string_view session);

  // Records a zero-duration point event.
  void instant(std::string_view name, std::string_view category,
               std::string_view session);

  // Records in ring order, oldest first. At most capacity() entries.
  std::vector<SpanRecord> records() const;
  std::size_t capacity() const { return ring_.size(); }
  std::uint64_t total_recorded() const { return next_seq_; }
  void clear();

 private:
  friend class Span;
  SpanRecord& claim(std::string_view name, std::string_view category,
                    std::string_view session);
  void finish_span(std::uint64_t seq);

  const Simulator* clock_ = nullptr;
  SimTime last_time_ = 0;
  std::vector<SpanRecord> ring_;
  std::uint64_t next_seq_ = 0;  // == records ever claimed
  // Open-span count per session, for depth stamping. Sessions are few (one
  // per device) so a small vector beats a map for the hot path.
  std::vector<std::pair<std::string, int>> open_by_session_;
  int& open_count(std::string_view session);
};

// Move-only RAII handle; default-constructed Spans are inert, so members
// can be declared up front and assigned when the phase actually begins.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { move_from(other); }
  Span& operator=(Span&& other) noexcept {
    if (this != &other) {
      finish();
      move_from(other);
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { finish(); }

  bool active() const { return rec_ != nullptr; }

  // Closes the span at the recorder's current time. Idempotent.
  void finish() {
    if (rec_ != nullptr) {
      rec_->finish_span(seq_);
      rec_ = nullptr;
    }
  }

 private:
  friend class SpanRecorder;
  Span(SpanRecorder* rec, std::uint64_t seq) : rec_(rec), seq_(seq) {}
  void move_from(Span& other) {
    rec_ = other.rec_;
    seq_ = other.seq_;
    other.rec_ = nullptr;
  }

  SpanRecorder* rec_ = nullptr;
  std::uint64_t seq_ = 0;
};

}  // namespace pvn::telemetry
