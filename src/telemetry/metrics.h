// MetricsRegistry: named counters, gauges, and fixed-bucket histograms.
//
// Design (DESIGN.md "Observability"):
//   * Registration happens once per (name, instance) — cold path, allocates.
//     The returned reference points at a plain std::uint64_t cell that stays
//     valid for the registry's lifetime, so the hot path is a single inlined
//     increment with no locks, hashing, or branches.
//   * The whole simulator is single-threaded by construction (util/sim.h),
//     so "lock-free" here means literally lock-free: plain integer cells.
//   * snapshot() copies every cell into a value type the exporters
//     (telemetry/export.h) render as Prometheus text or JSON.
//   * Compiling with -DPVN_TELEMETRY_DISABLED (CMake: -DPVN_TELEMETRY=OFF)
//     turns every mutation into an empty inline function the optimizer
//     deletes — the instrumented call sites cost exactly nothing.
//
// Naming scheme: dotted `layer.component.name`, e.g.
// `sdn.flow_table.hits`. Per-entity metrics add an `instance` label
// (rendered as {instance="..."} in Prometheus text), e.g. one counter per
// link direction.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace pvn::telemetry {

#ifdef PVN_TELEMETRY_DISABLED
inline constexpr bool kCompiledIn = false;
#else
inline constexpr bool kCompiledIn = true;
#endif

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::uint64_t n = 1) {
#ifndef PVN_TELEMETRY_DISABLED
    v_ += n;
#else
    (void)n;
#endif
  }
  std::uint64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::uint64_t v_ = 0;
};

// Point-in-time value that can move both ways (queue depth, memory in use).
class Gauge {
 public:
  void set(std::int64_t v) {
#ifndef PVN_TELEMETRY_DISABLED
    v_ = v;
#else
    (void)v;
#endif
  }
  void add(std::int64_t d) {
#ifndef PVN_TELEMETRY_DISABLED
    v_ += d;
#else
    (void)d;
#endif
  }
  std::int64_t value() const { return v_; }
  void reset() { v_ = 0; }

 private:
  std::int64_t v_ = 0;
};

// Fixed-bucket histogram. `bounds` are inclusive upper bounds in ascending
// order; an implicit +inf bucket catches the overflow. observe(v) lands in
// the first bucket with v <= bound. Values are plain uint64 (the repo's
// latency histograms observe SimDuration nanoseconds).
class Histogram {
 public:
  explicit Histogram(std::vector<std::uint64_t> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {}

  void observe(std::uint64_t v) {
#ifndef PVN_TELEMETRY_DISABLED
    std::size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    sum_ += v;
#else
    (void)v;
#endif
  }

  const std::vector<std::uint64_t>& bounds() const { return bounds_; }
  // counts()[i] counts observations <= bounds()[i]; counts().back() is +inf.
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const {
    std::uint64_t n = 0;
    for (const std::uint64_t c : counts_) n += c;
    return n;
  }
  std::uint64_t sum() const { return sum_; }
  void reset() {
    for (std::uint64_t& c : counts_) c = 0;
    sum_ = 0;
  }

 private:
  std::vector<std::uint64_t> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t sum_ = 0;
};

// Exponential latency buckets for SimDuration observations:
// 1us, 10us, 100us, 1ms, 10ms, 100ms, 1s (in nanoseconds).
std::vector<std::uint64_t> latency_bounds_ns();

enum class MetricKind { kCounter, kGauge, kHistogram };

// One metric's value, copied out of the live cells by snapshot().
struct MetricSample {
  std::string name;
  std::string instance;  // "" = no instance label
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t counter_value = 0;
  std::int64_t gauge_value = 0;
  std::vector<std::uint64_t> bounds;
  std::vector<std::uint64_t> bucket_counts;
  std::uint64_t hist_count = 0;
  std::uint64_t hist_sum = 0;
};

struct MetricsSnapshot {
  std::vector<MetricSample> samples;  // sorted by (name, instance)

  const MetricSample* find(std::string_view name,
                           std::string_view instance = "") const;
  // Sum of counter values across all instances sharing `name`.
  std::uint64_t counter_total(std::string_view name) const;
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // The process-wide registry every instrumented component writes to.
  static MetricsRegistry& global();

  // Idempotent: the same (name, instance) always returns the same cell.
  Counter& counter(std::string_view name, std::string_view instance = "");
  Gauge& gauge(std::string_view name, std::string_view instance = "");
  // A histogram's bounds are fixed by the first registration; later calls
  // with the same key return the existing histogram regardless of bounds.
  Histogram& histogram(std::string_view name, std::string_view instance,
                       std::vector<std::uint64_t> bounds);
  Histogram& histogram(std::string_view name,
                       std::vector<std::uint64_t> bounds) {
    return histogram(name, "", std::move(bounds));
  }

  MetricsSnapshot snapshot() const;
  // Zeroes every value; registrations (and handed-out references) survive.
  void reset();
  std::size_t size() const { return index_.size(); }

 private:
  struct Entry {
    std::string name;
    std::string instance;
    MetricKind kind;
    Counter counter;
    Gauge gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& entry_for(std::string_view name, std::string_view instance,
                   MetricKind kind);

  // deque: stable addresses for handed-out cell references.
  std::deque<Entry> entries_;
  std::map<std::pair<std::string, std::string>, Entry*> index_;
};

}  // namespace pvn::telemetry
