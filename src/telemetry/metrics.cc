#include "telemetry/metrics.h"

#include <algorithm>

namespace pvn::telemetry {

std::vector<std::uint64_t> latency_bounds_ns() {
  return {1'000,          10'000,        100'000,       1'000'000,
          10'000'000,     100'000'000,   1'000'000'000};
}

const MetricSample* MetricsSnapshot::find(std::string_view name,
                                          std::string_view instance) const {
  for (const MetricSample& s : samples) {
    if (s.name == name && s.instance == instance) return &s;
  }
  return nullptr;
}

std::uint64_t MetricsSnapshot::counter_total(std::string_view name) const {
  std::uint64_t total = 0;
  for (const MetricSample& s : samples) {
    if (s.name == name && s.kind == MetricKind::kCounter) {
      total += s.counter_value;
    }
  }
  return total;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

MetricsRegistry::Entry& MetricsRegistry::entry_for(std::string_view name,
                                                   std::string_view instance,
                                                   MetricKind kind) {
  const auto key = std::make_pair(std::string(name), std::string(instance));
  const auto it = index_.find(key);
  if (it != index_.end()) return *it->second;
  Entry& e = entries_.emplace_back();
  e.name = key.first;
  e.instance = key.second;
  e.kind = kind;
  index_[key] = &e;
  return e;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view instance) {
  return entry_for(name, instance, MetricKind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name,
                              std::string_view instance) {
  return entry_for(name, instance, MetricKind::kGauge).gauge;
}

Histogram& MetricsRegistry::histogram(std::string_view name,
                                      std::string_view instance,
                                      std::vector<std::uint64_t> bounds) {
  Entry& e = entry_for(name, instance, MetricKind::kHistogram);
  if (e.histogram == nullptr) {
    e.histogram = std::make_unique<Histogram>(std::move(bounds));
  }
  return *e.histogram;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  snap.samples.reserve(index_.size());
  // index_ is an ordered map keyed on (name, instance): deterministic order.
  for (const auto& [key, entry] : index_) {
    MetricSample s;
    s.name = entry->name;
    s.instance = entry->instance;
    s.kind = entry->kind;
    switch (entry->kind) {
      case MetricKind::kCounter:
        s.counter_value = entry->counter.value();
        break;
      case MetricKind::kGauge:
        s.gauge_value = entry->gauge.value();
        break;
      case MetricKind::kHistogram:
        s.bounds = entry->histogram->bounds();
        s.bucket_counts = entry->histogram->counts();
        s.hist_count = entry->histogram->count();
        s.hist_sum = entry->histogram->sum();
        break;
    }
    snap.samples.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::reset() {
  for (Entry& e : entries_) {
    e.counter.reset();
    e.gauge.reset();
    if (e.histogram != nullptr) e.histogram->reset();
  }
}

}  // namespace pvn::telemetry
