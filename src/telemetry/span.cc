#include "telemetry/span.h"

#include <algorithm>

namespace pvn::telemetry {

SpanRecorder::SpanRecorder(std::size_t capacity)
    : ring_(capacity == 0 ? 1 : capacity) {}

SpanRecorder& SpanRecorder::global() {
  static SpanRecorder recorder;
  return recorder;
}

int& SpanRecorder::open_count(std::string_view session) {
  for (auto& [name, count] : open_by_session_) {
    if (name == session) return count;
  }
  open_by_session_.emplace_back(std::string(session), 0);
  return open_by_session_.back().second;
}

SpanRecord& SpanRecorder::claim(std::string_view name,
                                std::string_view category,
                                std::string_view session) {
  SpanRecord& r = ring_[next_seq_ % ring_.size()];
  r.seq = next_seq_++;
  r.name.assign(name);
  r.category.assign(category);
  r.session.assign(session);
  r.start = now();
  r.end = -1;
  last_time_ = std::max(last_time_, r.start);
  return r;
}

Span SpanRecorder::start(std::string_view name, std::string_view category,
                         std::string_view session) {
  SpanRecord& r = claim(name, category, session);
  int& open = open_count(session);
  r.depth = open++;
  return Span(this, r.seq);
}

void SpanRecorder::instant(std::string_view name, std::string_view category,
                           std::string_view session) {
  SpanRecord& r = claim(name, category, session);
  r.depth = open_count(session);
  r.end = r.start;
}

void SpanRecorder::finish_span(std::uint64_t seq) {
  SpanRecord& r = ring_[seq % ring_.size()];
  if (r.seq != seq) return;  // the ring wrapped past this span: drop it
  if (r.end < 0) r.end = std::max(r.start, now());
  last_time_ = std::max(last_time_, r.end);
  int& open = open_count(r.session);
  if (open > 0) --open;
}

std::vector<SpanRecord> SpanRecorder::records() const {
  std::vector<SpanRecord> out;
  const std::uint64_t count =
      std::min<std::uint64_t>(next_seq_, ring_.size());
  out.reserve(count);
  const std::uint64_t first = next_seq_ - count;
  for (std::uint64_t seq = first; seq < next_seq_; ++seq) {
    out.push_back(ring_[seq % ring_.size()]);
  }
  return out;
}

void SpanRecorder::clear() {
  for (SpanRecord& r : ring_) r = SpanRecord{};
  next_seq_ = 0;
  last_time_ = 0;
  open_by_session_.clear();
}

}  // namespace pvn::telemetry
