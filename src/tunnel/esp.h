// ESP-lite encapsulation: packet-in-packet with an HMAC tag.
//
// Used for (a) the VPN fallback when an access network offers no PVN support
// (paper §3.3 "Coping with unavailability") and (b) selective redirection of
// sensitive flows to a trusted cloud enclave (Fig. 1c).
#pragma once

#include <optional>

#include "netsim/packet.h"
#include "util/digest.h"

namespace pvn {

struct EspHeader {
  std::uint32_t spi = 0;   // security association id
  std::uint32_t seq = 0;
};

// Wraps `inner` (its IP header + L4) for transport to `gateway`.
// The whole inner packet is MAC'd with `key`.
Packet esp_encap(const Packet& inner, Ipv4Addr outer_src, Ipv4Addr gateway,
                 const Bytes& key, std::uint32_t spi, std::uint32_t seq);

// Unwraps; returns nullopt if the MAC fails or the buffer is malformed.
std::optional<Packet> esp_decap(const Packet& outer, const Bytes& key);

// Reads just the SPI (to select the SA/key) without authenticating.
std::optional<std::uint32_t> esp_peek_spi(const Packet& outer);

}  // namespace pvn
