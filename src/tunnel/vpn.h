// VPN tunnel endpoints.
//
//   TunnelIngress — a bump-in-the-wire node on the client's path that
//     encapsulates matching traffic toward a remote VpnGateway. Also usable
//     as the SdnSwitch's ActTunnel encapsulator.
//   VpnGateway — terminates tunnels in a remote/cloud network: decapsulates,
//     source-NATs the inner packet so replies return to the gateway, and
//     re-encapsulates replies back to the client.
//   DeviceTunnel — a host-resident tunnel endpoint the PVN client enables as
//     a fallback when the network's PVN fails (§3.3): hooks into Host's
//     outbound/ESP paths instead of sitting on the wire.
#pragma once

#include <functional>
#include <map>

#include "netsim/network.h"
#include "netsim/node.h"
#include "proto/host.h"
#include "proto/l4.h"
#include "sdn/switch.h"
#include "telemetry/metrics.h"
#include "tunnel/esp.h"

namespace pvn {

// Predicate selecting which packets get tunneled (selective redirection,
// Fig. 1c). Default: everything.
using TunnelSelector = std::function<bool(const Packet&)>;

class TunnelIngress : public Node {
 public:
  // Port 0 faces the client side, port 1 faces the WAN.
  TunnelIngress(Network& net, std::string name, Ipv4Addr self,
                Ipv4Addr gateway, Bytes key);

  void set_selector(TunnelSelector selector) { selector_ = std::move(selector); }

  void handle_packet(Packet pkt, int in_port) override;

  std::uint64_t tunneled() const { return tunneled_; }
  std::uint64_t bypassed() const { return bypassed_; }

 private:
  Ipv4Addr self_;
  Ipv4Addr gateway_;
  Bytes key_;
  std::uint32_t seq_ = 0;
  TunnelSelector selector_;
  std::uint64_t tunneled_ = 0;
  std::uint64_t bypassed_ = 0;
  telemetry::Counter* m_tunneled_ = nullptr;
  telemetry::Counter* m_bypassed_ = nullptr;
};

// Switch-side tunnel termination: a PacketProcessor that decapsulates
// returning ESP traffic (from a VpnGateway) back into the inner packet so
// the dataplane can forward it to the device. Registered on the SdnSwitch
// and targeted by an infrastructure rule matching proto=esp.
class EspDecapProcessor : public PacketProcessor {
 public:
  explicit EspDecapProcessor(Bytes key) : key_(std::move(key)) {}

  std::vector<Packet> process(Packet pkt, SimTime now,
                              SimDuration& delay) override {
    (void)now;
    delay = 0;
    std::vector<Packet> out;
    if (auto inner = esp_decap(pkt, key_)) {
      out.push_back(std::move(*inner));
    } else {
      ++auth_failures_;
    }
    return out;
  }

  std::uint64_t auth_failures() const { return auth_failures_; }

 private:
  Bytes key_;
  std::uint64_t auth_failures_ = 0;
};

// Host-resident fallback tunnel. Installed once on a Host; while active,
// outbound packets matching the selector are ESP-encapsulated toward a
// VpnGateway and returning ESP is decapsulated back into the receive path.
// Control traffic (PVN discovery/deploy on kPvnPort, DHCP) always bypasses
// the tunnel so the client can renegotiate with the local network while the
// fallback carries data traffic.
class DeviceTunnel {
 public:
  DeviceTunnel(Host& host, Ipv4Addr gateway, Bytes key);
  ~DeviceTunnel();

  DeviceTunnel(const DeviceTunnel&) = delete;
  DeviceTunnel& operator=(const DeviceTunnel&) = delete;

  void enable();
  void disable();
  bool active() const { return active_; }

  // Restricts which packets get tunneled while active (selective
  // redirection); control-port traffic bypasses regardless.
  void set_selector(TunnelSelector selector) { selector_ = std::move(selector); }

  std::uint64_t tunneled() const { return tunneled_; }
  std::uint64_t bypassed() const { return bypassed_; }
  std::uint64_t decapsulated() const { return decap_; }
  std::uint64_t auth_failures() const { return auth_fail_; }

 private:
  bool is_control(const Packet& pkt) const;

  Host* host_;
  Ipv4Addr gateway_;
  Bytes key_;
  bool active_ = false;
  std::uint32_t seq_ = 0;
  TunnelSelector selector_;
  std::uint64_t tunneled_ = 0;
  std::uint64_t bypassed_ = 0;
  std::uint64_t decap_ = 0;
  std::uint64_t auth_fail_ = 0;
  telemetry::Counter* m_tunneled_ = nullptr;
  telemetry::Counter* m_bypassed_ = nullptr;
  telemetry::Counter* m_decap_ = nullptr;
  telemetry::Counter* m_auth_fail_ = nullptr;
};

class VpnGateway : public Node {
 public:
  // Port 0 faces the Internet (both tunnel ingress and servers reach it
  // through this port in our topologies).
  VpnGateway(Network& net, std::string name, Ipv4Addr addr, Bytes key);

  void handle_packet(Packet pkt, int in_port) override;

  std::uint64_t decapsulated() const { return decap_; }
  std::uint64_t reencapsulated() const { return reencap_; }
  std::uint64_t auth_failures() const { return auth_fail_; }

 private:
  struct NatKey {
    Ipv4Addr remote;
    Port remote_port = 0;
    Port local_port = 0;
    std::uint8_t proto = 0;
    auto operator<=>(const NatKey&) const = default;
  };

  Ipv4Addr addr_;
  Bytes key_;
  std::map<NatKey, Ipv4Addr> nat_;          // reply -> original client addr
  std::map<Ipv4Addr, Ipv4Addr> client_via_; // client addr -> tunnel outer src
  std::uint32_t seq_ = 0;
  std::uint64_t decap_ = 0;
  std::uint64_t reencap_ = 0;
  std::uint64_t auth_fail_ = 0;
  telemetry::Counter* m_decap_ = nullptr;
  telemetry::Counter* m_reencap_ = nullptr;
  telemetry::Counter* m_auth_fail_ = nullptr;
};

}  // namespace pvn
