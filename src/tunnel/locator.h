// Remote-PVN locator (paper §3.3 "Coping with unavailability"): probes
// candidate PVN-supporting networks with UDP echoes and ranks them by
// measured RTT so the device can tunnel to the cheapest one.
#pragma once

#include <functional>
#include <vector>

#include "proto/host.h"

namespace pvn {

constexpr Port kEchoPort = 7;

// Binds a UDP echo responder on a host (candidate networks run this).
void install_echo_responder(Host& host);

struct ProbeResult {
  Ipv4Addr candidate;
  bool reachable = false;
  SimDuration rtt = 0;
};

class RemotePvnLocator {
 public:
  explicit RemotePvnLocator(Host& host);

  using Callback = std::function<void(const std::vector<ProbeResult>&)>;

  // Probes every candidate (N echoes each, keeping the minimum RTT) and
  // reports results sorted by RTT, unreachable last.
  void probe(const std::vector<Ipv4Addr>& candidates, Callback cb,
             int echoes_per_candidate = 3,
             SimDuration timeout = milliseconds(800));

  // Convenience: the best (lowest-RTT reachable) candidate, if any.
  static const ProbeResult* best(const std::vector<ProbeResult>& results);

 private:
  void on_echo(Ipv4Addr src, const Bytes& payload);
  void finish();

  Host* host_;
  Port local_port_ = 7070;
  std::vector<ProbeResult> results_;
  std::map<std::uint64_t, std::pair<std::size_t, SimTime>> outstanding_;
  int pending_ = 0;
  Callback cb_;
  EventId timer_ = kInvalidEventId;
  std::uint64_t next_token_ = 1;
};

}  // namespace pvn
