#include "tunnel/esp.h"

namespace pvn {

Packet esp_encap(const Packet& inner, Ipv4Addr outer_src, Ipv4Addr gateway,
                 const Bytes& key, std::uint32_t spi, std::uint32_t seq) {
  ByteWriter inner_bytes;
  inner.ip.encode(inner_bytes);
  inner_bytes.raw(inner.l4);

  const Digest mac = hmac(key, inner_bytes.bytes());

  ByteWriter w;
  w.u32(spi);
  w.u32(seq);
  w.blob(inner_bytes.bytes());
  w.raw(mac.to_bytes());

  Packet outer;
  outer.id = inner.id;  // preserve identity for tracing
  outer.ip.src = outer_src;
  outer.ip.dst = gateway;
  outer.ip.proto = IpProto::kEsp;
  outer.ip.tos = 0;  // tunnels hide the inner class (tunneled traffic may be
                     // subject to different ISP policies — §3.2)
  outer.l4 = std::move(w).take();
  outer.created_at = inner.created_at;
  outer.hop_trace = inner.hop_trace;
  return outer;
}

std::optional<Packet> esp_decap(const Packet& outer, const Bytes& key) {
  if (outer.ip.proto != IpProto::kEsp) return std::nullopt;
  ByteReader r(outer.l4);
  r.u32();  // spi
  r.u32();  // seq
  const Bytes inner_bytes = r.blob();
  const Bytes mac_bytes = r.raw(32);
  if (!r.ok()) return std::nullopt;
  const auto mac = Digest::from_bytes(mac_bytes);
  if (!mac || hmac(key, inner_bytes) != *mac) return std::nullopt;

  ByteReader ir(inner_bytes);
  Packet inner;
  inner.id = outer.id;
  inner.ip = IpHeader::decode(ir);
  inner.l4 = ir.raw(ir.remaining());
  if (!ir.ok()) return std::nullopt;
  inner.created_at = outer.created_at;
  inner.hop_trace = outer.hop_trace;
  return inner;
}

std::optional<std::uint32_t> esp_peek_spi(const Packet& outer) {
  if (outer.ip.proto != IpProto::kEsp || outer.l4.size() < 4) {
    return std::nullopt;
  }
  ByteReader r(outer.l4);
  return r.u32();
}

}  // namespace pvn
