#include "tunnel/locator.h"

#include <algorithm>

namespace pvn {

void install_echo_responder(Host& host) {
  Host* h = &host;
  host.bind_udp(kEchoPort, [h](Ipv4Addr src, Port sport, Port,
                               const Bytes& payload) {
    h->send_udp(src, kEchoPort, sport, payload);
  });
}

RemotePvnLocator::RemotePvnLocator(Host& host) : host_(&host) {
  host_->bind_udp(local_port_, [this](Ipv4Addr src, Port, Port,
                                      const Bytes& payload) {
    on_echo(src, payload);
  });
}

void RemotePvnLocator::probe(const std::vector<Ipv4Addr>& candidates,
                             Callback cb, int echoes_per_candidate,
                             SimDuration timeout) {
  results_.clear();
  outstanding_.clear();
  cb_ = std::move(cb);
  pending_ = 0;

  for (std::size_t i = 0; i < candidates.size(); ++i) {
    ProbeResult r;
    r.candidate = candidates[i];
    results_.push_back(r);
    for (int e = 0; e < echoes_per_candidate; ++e) {
      const std::uint64_t token = next_token_++;
      outstanding_[token] = {i, host_->sim().now()};
      ++pending_;
      ByteWriter w;
      w.u64(token);
      host_->send_udp(candidates[i], local_port_, kEchoPort,
                      std::move(w).take());
    }
  }
  timer_ = host_->sim().schedule_after(timeout, SimCategory::kTunnel, [this] {
    timer_ = kInvalidEventId;
    finish();
  });
}

void RemotePvnLocator::on_echo(Ipv4Addr src, const Bytes& payload) {
  (void)src;
  ByteReader r(payload);
  const std::uint64_t token = r.u64();
  const auto it = outstanding_.find(token);
  if (it == outstanding_.end()) return;
  const auto [index, sent_at] = it->second;
  outstanding_.erase(it);
  ProbeResult& result = results_[index];
  const SimDuration rtt = host_->sim().now() - sent_at;
  if (!result.reachable || rtt < result.rtt) {
    result.reachable = true;
    result.rtt = rtt;
  }
  if (--pending_ == 0) finish();
}

void RemotePvnLocator::finish() {
  if (!cb_) return;
  if (timer_ != kInvalidEventId) {
    host_->sim().cancel(timer_);
    timer_ = kInvalidEventId;
  }
  std::stable_sort(results_.begin(), results_.end(),
                   [](const ProbeResult& a, const ProbeResult& b) {
                     if (a.reachable != b.reachable) return a.reachable;
                     return a.rtt < b.rtt;
                   });
  Callback cb = std::move(cb_);
  cb_ = nullptr;
  cb(results_);
}

const ProbeResult* RemotePvnLocator::best(
    const std::vector<ProbeResult>& results) {
  for (const ProbeResult& r : results) {
    if (r.reachable) return &r;
  }
  return nullptr;
}

}  // namespace pvn
