#include "tunnel/vpn.h"

namespace pvn {

TunnelIngress::TunnelIngress(Network& net, std::string name, Ipv4Addr self,
                             Ipv4Addr gateway, Bytes key)
    : Node(net, std::move(name)),
      self_(self),
      gateway_(gateway),
      key_(std::move(key)),
      selector_([](const Packet&) { return true; }) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_tunneled_ = &reg.counter("tunnel.ingress.tunneled", this->name());
  m_bypassed_ = &reg.counter("tunnel.ingress.bypassed", this->name());
}

void TunnelIngress::handle_packet(Packet pkt, int in_port) {
  if (in_port == 0) {
    // Client -> WAN.
    if (selector_(pkt)) {
      ++tunneled_;
      m_tunneled_->inc();
      Packet outer = esp_encap(pkt, self_, gateway_, key_, /*spi=*/1, ++seq_);
      send(1, std::move(outer));
    } else {
      ++bypassed_;
      m_bypassed_->inc();
      send(1, std::move(pkt));
    }
    return;
  }
  // WAN -> client.
  if (pkt.ip.proto == IpProto::kEsp && pkt.ip.dst == self_) {
    if (auto inner = esp_decap(pkt, key_)) {
      send(0, std::move(*inner));
    }
    return;
  }
  send(0, std::move(pkt));
}

namespace {

// Ports whose traffic must reach the local network directly even while the
// fallback tunnel is active: PVN discovery/deploy (pvn/discovery.h kPvnPort;
// duplicated here so tunnel/ stays below pvn/ in the layering) and DHCP.
constexpr Port kControlPorts[] = {3030, 67, 68};

bool is_control_port(Port p) {
  for (const Port c : kControlPorts) {
    if (p == c) return true;
  }
  return false;
}

}  // namespace

DeviceTunnel::DeviceTunnel(Host& host, Ipv4Addr gateway, Bytes key)
    : host_(&host),
      gateway_(gateway),
      key_(std::move(key)),
      selector_([](const Packet&) { return true; }) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_tunneled_ = &reg.counter("tunnel.device.tunneled");
  m_bypassed_ = &reg.counter("tunnel.device.bypassed");
  m_decap_ = &reg.counter("tunnel.device.decapsulated");
  m_auth_fail_ = &reg.counter("tunnel.device.auth_failures");
  host_->set_esp_handler([this](const Packet& outer) -> std::optional<Packet> {
    if (!active_ || outer.ip.src != gateway_) return std::nullopt;
    auto inner = esp_decap(outer, key_);
    if (!inner) {
      ++auth_fail_;
      m_auth_fail_->inc();
      return std::nullopt;
    }
    ++decap_;
    m_decap_->inc();
    return inner;
  });
  host_->set_outbound_transform([this](Packet pkt) {
    if (!active_ || pkt.ip.proto == IpProto::kEsp || is_control(pkt) ||
        !selector_(pkt)) {
      if (active_) {
        ++bypassed_;
        m_bypassed_->inc();
      }
      return pkt;
    }
    ++tunneled_;
    m_tunneled_->inc();
    return esp_encap(pkt, host_->addr(), gateway_, key_, /*spi=*/1, ++seq_);
  });
}

DeviceTunnel::~DeviceTunnel() {
  host_->set_outbound_transform(nullptr);
  host_->set_esp_handler(nullptr);
}

void DeviceTunnel::enable() { active_ = true; }

void DeviceTunnel::disable() { active_ = false; }

bool DeviceTunnel::is_control(const Packet& pkt) const {
  if (pkt.ip.proto != IpProto::kUdp) return false;
  Port sport = 0, dport = 0;
  peek_ports(static_cast<std::uint8_t>(pkt.ip.proto), pkt.l4, sport, dport);
  return is_control_port(sport) || is_control_port(dport);
}

VpnGateway::VpnGateway(Network& net, std::string name, Ipv4Addr addr,
                       Bytes key)
    : Node(net, std::move(name)), addr_(addr), key_(std::move(key)) {
  auto& reg = telemetry::MetricsRegistry::global();
  m_decap_ = &reg.counter("tunnel.gateway.decapsulated", this->name());
  m_reencap_ = &reg.counter("tunnel.gateway.reencapsulated", this->name());
  m_auth_fail_ = &reg.counter("tunnel.gateway.auth_failures", this->name());
}

void VpnGateway::handle_packet(Packet pkt, int in_port) {
  (void)in_port;
  if (pkt.ip.proto == IpProto::kEsp && pkt.ip.dst == addr_) {
    auto inner = esp_decap(pkt, key_);
    if (!inner) {
      ++auth_fail_;
      m_auth_fail_->inc();
      return;
    }
    ++decap_;
    m_decap_->inc();
    // Source-NAT so replies come back to this gateway.
    Port sport = 0, dport = 0;
    peek_ports(static_cast<std::uint8_t>(inner->ip.proto), inner->l4, sport,
               dport);
    nat_[NatKey{inner->ip.dst, dport, sport,
                static_cast<std::uint8_t>(inner->ip.proto)}] = inner->ip.src;
    client_via_[inner->ip.src] = pkt.ip.src;
    inner->ip.src = addr_;
    send(0, std::move(*inner));
    return;
  }

  if (pkt.ip.dst == addr_) {
    // A reply to a NAT'd flow: map back and re-encapsulate to the client.
    Port sport = 0, dport = 0;
    peek_ports(static_cast<std::uint8_t>(pkt.ip.proto), pkt.l4, sport, dport);
    const auto it = nat_.find(NatKey{pkt.ip.src, sport, dport,
                                     static_cast<std::uint8_t>(pkt.ip.proto)});
    if (it == nat_.end()) return;
    const Ipv4Addr client = it->second;
    Packet inner = pkt;
    inner.ip.dst = client;
    const auto via = client_via_.find(client);
    if (via == client_via_.end()) return;
    ++reencap_;
    m_reencap_->inc();
    Packet outer = esp_encap(inner, addr_, via->second, key_, /*spi=*/1, ++seq_);
    send(0, std::move(outer));
    return;
  }
}

}  // namespace pvn
