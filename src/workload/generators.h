// Workload generators for the experiments: HTTP download load, video
// streaming (classifiable by DPI), and PII-bearing app telemetry.
#pragma once

#include <functional>

#include "proto/http.h"

namespace pvn {

struct LoadStats {
  std::vector<FetchTiming> timings;

  int ok_count() const;
  SimDuration mean_total() const;
  SimDuration p95_total() const;
  std::uint64_t total_bytes() const;
};

// Sequential HTTP fetches with think time; reports all timings when done.
class HttpLoadGen {
 public:
  explicit HttpLoadGen(Host& client);

  using Callback = std::function<void(const LoadStats&)>;
  void run(Ipv4Addr server, Port port, const std::string& path, int count,
           SimDuration think_time, Callback done);

 private:
  void next();

  Host* client_;
  HttpClient http_;
  Ipv4Addr server_;
  Port port_ = 80;
  std::string path_;
  int remaining_ = 0;
  SimDuration think_ = 0;
  LoadStats stats_;
  Callback done_;
};

// Sequential segment fetches modelling a video stream. A segment covers
// `segment_seconds` of playback; fetching slower than that is a rebuffer.
struct VideoStats {
  int segments = 0;
  int rebuffers = 0;
  double mean_segment_mbps = 0;
  std::uint64_t bytes = 0;
};

class VideoStreamer {
 public:
  explicit VideoStreamer(Host& client);

  using Callback = std::function<void(const VideoStats&)>;
  void run(Ipv4Addr server, Port port, int segments,
           std::size_t segment_bytes, SimDuration segment_seconds,
           Callback done);

 private:
  void next();

  Host* client_;
  HttpClient http_;
  Ipv4Addr server_;
  Port port_ = 80;
  int total_ = 0;
  int fetched_ = 0;
  std::size_t segment_bytes_ = 0;
  SimDuration segment_duration_ = 0;
  double mbps_sum_ = 0;
  VideoStats stats_;
  Callback done_;
};

// Registers a handler that serves /video/seg-N with Content-Type video/mp4
// (so DPI classifiers recognise it) and /bytes/N as usual.
void install_video_server(HttpServer& server, std::size_t segment_bytes);

// Periodically POSTs telemetry that embeds the given PII strings to a
// collection endpoint (models leaky apps/trackers, §2.3).
class TelemetryEmitter {
 public:
  TelemetryEmitter(Host& client, Ipv4Addr collector, Port port,
                   std::vector<std::string> pii_values);

  // Emits `count` reports, one per `interval`.
  void start(int count, SimDuration interval);

  int sent() const { return sent_; }

 private:
  void emit();

  Host* client_;
  HttpClient http_;
  Ipv4Addr collector_;
  Port port_;
  std::vector<std::string> pii_;
  int remaining_ = 0;
  int sent_ = 0;
  SimDuration interval_ = 0;
};

}  // namespace pvn
