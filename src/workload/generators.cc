#include "workload/generators.h"

#include <algorithm>

namespace pvn {

int LoadStats::ok_count() const {
  int n = 0;
  for (const FetchTiming& t : timings) n += t.ok ? 1 : 0;
  return n;
}

SimDuration LoadStats::mean_total() const {
  if (timings.empty()) return 0;
  SimDuration sum = 0;
  for (const FetchTiming& t : timings) sum += t.total();
  return sum / static_cast<SimDuration>(timings.size());
}

SimDuration LoadStats::p95_total() const {
  if (timings.empty()) return 0;
  std::vector<SimDuration> totals;
  totals.reserve(timings.size());
  for (const FetchTiming& t : timings) totals.push_back(t.total());
  std::sort(totals.begin(), totals.end());
  const std::size_t idx =
      std::min(totals.size() - 1, (totals.size() * 95) / 100);
  return totals[idx];
}

std::uint64_t LoadStats::total_bytes() const {
  std::uint64_t sum = 0;
  for (const FetchTiming& t : timings) sum += t.body_bytes;
  return sum;
}

HttpLoadGen::HttpLoadGen(Host& client) : client_(&client), http_(client) {}

void HttpLoadGen::run(Ipv4Addr server, Port port, const std::string& path,
                      int count, SimDuration think_time, Callback done) {
  server_ = server;
  port_ = port;
  path_ = path;
  remaining_ = count;
  think_ = think_time;
  stats_ = LoadStats{};
  done_ = std::move(done);
  next();
}

void HttpLoadGen::next() {
  if (remaining_ == 0) {
    if (done_) done_(stats_);
    return;
  }
  --remaining_;
  http_.fetch(server_, port_, path_,
              [this](const HttpResponse&, const FetchTiming& timing) {
                stats_.timings.push_back(timing);
                client_->sim().schedule_after(think_, SimCategory::kWorkload, [this] { next(); });
              });
}

VideoStreamer::VideoStreamer(Host& client) : client_(&client), http_(client) {}

void VideoStreamer::run(Ipv4Addr server, Port port, int segments,
                        std::size_t segment_bytes, SimDuration segment_seconds,
                        Callback done) {
  server_ = server;
  port_ = port;
  total_ = segments;
  fetched_ = 0;
  segment_bytes_ = segment_bytes;
  segment_duration_ = segment_seconds;
  mbps_sum_ = 0;
  stats_ = VideoStats{};
  done_ = std::move(done);
  next();
}

void VideoStreamer::next() {
  if (fetched_ == total_) {
    stats_.segments = total_;
    stats_.mean_segment_mbps = total_ > 0 ? mbps_sum_ / total_ : 0;
    if (done_) done_(stats_);
    return;
  }
  const std::string path = "/video/seg-" + std::to_string(fetched_);
  ++fetched_;
  http_.fetch(server_, port_, path,
              [this](const HttpResponse&, const FetchTiming& timing) {
                stats_.bytes += timing.body_bytes;
                if (timing.total() > segment_duration_) ++stats_.rebuffers;
                if (timing.total() > 0) {
                  mbps_sum_ += static_cast<double>(timing.body_bytes) * 8.0 /
                               to_seconds(timing.total()) / 1e6;
                }
                next();
              });
}

void install_video_server(HttpServer& server, std::size_t segment_bytes) {
  server.set_handler([segment_bytes](const HttpRequest& req) {
    if (req.path.rfind("/video/", 0) == 0) {
      HttpResponse resp;
      resp.body.resize(segment_bytes);
      for (std::size_t i = 0; i < segment_bytes; ++i) {
        resp.body[i] = static_cast<std::uint8_t>('v' + (i % 17));
      }
      resp.set_header("Content-Type", "video/mp4");
      return resp;
    }
    return synthesize_response(req);
  });
}

TelemetryEmitter::TelemetryEmitter(Host& client, Ipv4Addr collector, Port port,
                                   std::vector<std::string> pii_values)
    : client_(&client),
      http_(client),
      collector_(collector),
      port_(port),
      pii_(std::move(pii_values)) {}

void TelemetryEmitter::start(int count, SimDuration interval) {
  remaining_ = count;
  interval_ = interval;
  emit();
}

void TelemetryEmitter::emit() {
  if (remaining_ == 0) return;
  --remaining_;
  std::string body = "event=heartbeat";
  for (const std::string& pii : pii_) body += "&" + pii;
  http_.fetch(collector_, port_, "/collect",
              [this](const HttpResponse&, const FetchTiming&) { ++sent_; },
              {{"Content-Type", "application/x-www-form-urlencoded"}},
              to_bytes(body), "POST");
  client_->sim().schedule_after(interval_, SimCategory::kWorkload, [this] { emit(); });
}

}  // namespace pvn
