// Bounds-checked binary serialization.
//
// Every wire format in the repository (IP/TCP/UDP headers, DNS and TLS
// messages, PVN discovery messages, ESP tunnel frames) is encoded with
// ByteWriter and decoded with ByteReader. Integers are big-endian (network
// byte order). Decoding never throws: a reader that runs past the end of its
// buffer latches an error flag that callers must check via ok().
#pragma once

#include <cstdint>
#include <cstring>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace pvn {

using Bytes = std::vector<std::uint8_t>;

// A copy-on-write byte buffer: copies share one immutable backing Bytes via a
// shared_ptr; mutation detaches (clones) only when the buffer is shared.
// Packet payloads use this so that fan-out points on the dataplane (links,
// switch pipelines, taps, middlebox chains, retransmission buffers) copy a
// pointer instead of the payload. Read access converts implicitly to
// `const Bytes&`, so codecs and matchers taking const refs work unchanged.
class SharedBytes {
 public:
  SharedBytes() = default;
  SharedBytes(Bytes b)  // NOLINT(google-explicit-constructor)
      : rep_(b.empty() ? nullptr : std::make_shared<Bytes>(std::move(b))) {}

  operator const Bytes&() const {  // NOLINT(google-explicit-constructor)
    return get();
  }
  const Bytes& get() const { return rep_ ? *rep_ : empty_bytes(); }

  std::size_t size() const { return rep_ ? rep_->size() : 0; }
  bool empty() const { return size() == 0; }
  const std::uint8_t* data() const { return rep_ ? rep_->data() : nullptr; }
  Bytes::const_iterator begin() const { return get().begin(); }
  Bytes::const_iterator end() const { return get().end(); }

  std::uint8_t operator[](std::size_t i) const { return (*rep_)[i]; }
  // Mutable element access detaches from sharers first (copy-on-write).
  std::uint8_t& operator[](std::size_t i) { return mutate()[i]; }

  // Unique, mutable view of the buffer; clones iff currently shared.
  Bytes& mutate() {
    if (!rep_) {
      rep_ = std::make_shared<Bytes>();
    } else if (rep_.use_count() > 1) {
      rep_ = std::make_shared<Bytes>(*rep_);
    }
    return *rep_;
  }

  long use_count() const { return rep_.use_count(); }

  friend bool operator==(const SharedBytes& a, const SharedBytes& b) {
    return a.rep_ == b.rep_ || a.get() == b.get();
  }
  friend bool operator==(const SharedBytes& a, const Bytes& b) {
    return a.get() == b;
  }
  friend bool operator==(const Bytes& a, const SharedBytes& b) {
    return a == b.get();
  }

 private:
  static const Bytes& empty_bytes() {
    static const Bytes kEmpty;
    return kEmpty;
  }

  std::shared_ptr<Bytes> rep_;
};

class ByteWriter {
 public:
  ByteWriter() = default;

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void f64(double v);
  void raw(std::span<const std::uint8_t> data);
  void raw(const Bytes& data) { raw(std::span<const std::uint8_t>(data)); }
  void raw(const SharedBytes& data) { raw(data.get()); }

  // Length-prefixed (u32) byte string.
  void blob(std::span<const std::uint8_t> data);
  void blob(const Bytes& data) { blob(std::span<const std::uint8_t>(data)); }

  // Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);

  const Bytes& bytes() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}
  explicit ByteReader(const Bytes& data)
      : data_(std::span<const std::uint8_t>(data)) {}
  explicit ByteReader(const SharedBytes& data) : ByteReader(data.get()) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  double f64();
  Bytes raw(std::size_t n);
  Bytes blob();
  std::string str();

  // True iff no read has overrun the buffer so far.
  bool ok() const { return ok_; }
  // True iff the whole buffer was consumed and no read overran.
  bool exhausted() const { return ok_ && pos_ == data_.size(); }
  std::size_t remaining() const { return ok_ ? data_.size() - pos_ : 0; }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Convenience: bytes of a string literal / string.
Bytes to_bytes(std::string_view s);
std::string to_string(const Bytes& b);

}  // namespace pvn
