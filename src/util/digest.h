// Structural cryptography for the simulation.
//
// The PVN design relies on hashes (content digests, path proofs), MACs
// (per-hop proofs, attestation quotes), and signatures (certificates,
// attestations). This module provides *structural* stand-ins: collision
// behaviour and API shape match real primitives closely enough to exercise
// every protocol code path, but none of this is production cryptography
// (see DESIGN.md §2 — the paper's claims are about protocol architecture,
// not cipher strength).
//
// Signatures are simulated asymmetric crypto: a KeyPair holds a secret seed
// and a public id derived from it; verification goes through a KeyRegistry
// that models the PKI's trusted key distribution.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/bytes.h"

namespace pvn {

// 256-bit digest (4 x 64-bit lanes of iterated FNV-1a with lane mixing).
struct Digest {
  std::array<std::uint64_t, 4> lanes = {};

  bool operator==(const Digest&) const = default;
  std::string hex() const;
  Bytes to_bytes() const;
  static std::optional<Digest> from_bytes(const Bytes& b);
};

// Hashes an arbitrary byte string.
Digest digest_of(std::span<const std::uint8_t> data);
Digest digest_of(const Bytes& data);
Digest digest_of(std::string_view data);

// Keyed MAC: digest over key-prefixed and key-suffixed data (HMAC-shaped).
Digest hmac(const Bytes& key, std::span<const std::uint8_t> data);
Digest hmac(const Bytes& key, const Bytes& data);

// --- Simulated asymmetric signatures ---------------------------------------

// Public identity: an opaque 64-bit id derived from the secret seed.
struct PublicKey {
  std::uint64_t id = 0;
  bool operator==(const PublicKey&) const = default;
};

struct Signature {
  Digest mac;
  std::uint64_t signer = 0;  // public key id that produced this signature
  bool operator==(const Signature&) const = default;
};

class KeyPair {
 public:
  // Derives a keypair deterministically from a seed (e.g. an Rng draw).
  explicit KeyPair(std::uint64_t seed);

  const PublicKey& public_key() const { return public_; }
  Signature sign(std::span<const std::uint8_t> data) const;
  Signature sign(const Bytes& data) const { return sign(std::span<const std::uint8_t>(data)); }

 private:
  friend class KeyRegistry;
  Bytes secret_;
  PublicKey public_;
};

// Trusted key directory: models PKI distribution of public keys. Verifiers
// hold a registry of keys they trust; verification fails for unknown keys.
class KeyRegistry {
 public:
  void trust(const KeyPair& kp);
  void revoke(const PublicKey& pk);
  bool trusts(const PublicKey& pk) const;
  bool verify(const PublicKey& pk, std::span<const std::uint8_t> data,
              const Signature& sig) const;
  bool verify(const PublicKey& pk, const Bytes& data, const Signature& sig) const {
    return verify(pk, std::span<const std::uint8_t>(data), sig);
  }

 private:
  std::unordered_map<std::uint64_t, Bytes> secrets_;  // public id -> secret
};

}  // namespace pvn
