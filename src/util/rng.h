// Deterministic pseudo-random number generation (xoshiro256** + splitmix64).
//
// Every stochastic element of the simulation (link loss, payload generation,
// workload inter-arrivals) draws from an explicitly-seeded Rng so that runs
// are reproducible and experiments can sweep seeds.
#pragma once

#include <cmath>
#include <cstdint>
#include <limits>

namespace pvn {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    if (hi <= lo) return lo;
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(next_below(span));
  }

  // Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  bool bernoulli(double p) {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
  }

  // Exponential with the given mean (> 0).
  double exponential(double mean) {
    double u = uniform();
    if (u <= 0.0) u = std::numeric_limits<double>::min();
    return -mean * std::log(u);
  }

  // Fork a statistically independent child stream (for per-component RNGs).
  Rng fork() { return Rng(next_u64() ^ 0xD1B54A32D192ED03ull); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4] = {};
};

}  // namespace pvn
