#include "util/sim.h"

#include <algorithm>
#include <chrono>

namespace pvn {

const char* to_string(SimCategory c) {
  switch (c) {
    case SimCategory::kOther: return "other";
    case SimCategory::kLink: return "link";
    case SimCategory::kSwitch: return "switch";
    case SimCategory::kMbox: return "mbox";
    case SimCategory::kPvnControl: return "pvn-control";
    case SimCategory::kTunnel: return "tunnel";
    case SimCategory::kProto: return "proto";
    case SimCategory::kFault: return "fault";
    case SimCategory::kWorkload: return "workload";
  }
  return "?";
}

namespace {

constexpr EventId make_event_id(std::uint32_t slot, std::uint32_t gen) {
  return (static_cast<EventId>(gen) << 32) | slot;
}
constexpr std::uint32_t event_slot(EventId id) {
  return static_cast<std::uint32_t>(id & 0xFFFFFFFFu);
}
constexpr std::uint32_t event_gen(EventId id) {
  return static_cast<std::uint32_t>(id >> 32);
}

// Min-heap on (when, seq): std::push_heap/pop_heap build a max-heap, so the
// comparator orders later events first.
struct HeapLater {
  template <typename E>
  bool operator()(const E& a, const E& b) const {
    if (a.when != b.when) return a.when > b.when;
    return a.seq > b.seq;
  }
};

}  // namespace

EventId Simulator::schedule_fn(SimTime when, EventFn fn, SimCategory cat) {
  if (when < now_) when = now_;
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
  }
  Slot& s = slots_[slot];
  s.fn = std::move(fn);
  s.armed = true;
  s.cat = cat;
  heap_.push_back(HeapEntry{when, next_seq_++, slot, s.gen});
  std::push_heap(heap_.begin(), heap_.end(), HeapLater{});
  ++live_;
  return make_event_id(slot, s.gen);
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  const std::uint32_t slot = event_slot(id);
  if (slot >= slots_.size()) return;
  Slot& s = slots_[slot];
  if (!s.armed || s.gen != event_gen(id)) return;  // already fired/cancelled
  s.armed = false;
  s.fn.reset();  // release captures now; the heap entry is reclaimed on pop
  --live_;
}

bool Simulator::pop_one_until(SimTime deadline, SimTime& when_out,
                              EventFn& fn_out, SimCategory& cat_out) {
  while (!heap_.empty() && heap_.front().when <= deadline) {
    const HeapEntry top = heap_.front();
    std::pop_heap(heap_.begin(), heap_.end(), HeapLater{});
    heap_.pop_back();
    Slot& s = slots_[top.slot];
    const bool fire = s.armed && s.gen == top.gen;
    // Retire the slot: bump the generation so outstanding EventIds go stale,
    // then recycle it.
    ++s.gen;
    s.armed = false;
    if (fire) {
      fn_out = std::move(s.fn);
      cat_out = s.cat;
    }
    s.fn.reset();
    free_slots_.push_back(top.slot);
    if (fire) {
      --live_;
      when_out = top.when;
      return true;
    }
  }
  return false;
}

void Simulator::dispatch(EventFn& fn, SimCategory cat) {
  SimProfile::Entry& entry = profile_[cat];
  ++entry.events;
  if (profiling_) {
    // Wall-clock attribution is opt-in: the two clock reads dominate the
    // cost of a small event, so benches enable it only when asked.
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    entry.wall_ns += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
  } else {
    fn();
  }
}

bool Simulator::step() {
  SimTime when;
  EventFn fn;
  SimCategory cat = SimCategory::kOther;
  if (!pop_one_until(std::numeric_limits<SimTime>::max(), when, fn, cat)) {
    return false;
  }
  now_ = when;
  dispatch(fn, cat);
  return true;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t executed = 0;
  SimTime when;
  EventFn fn;
  SimCategory cat = SimCategory::kOther;
  while (pop_one_until(deadline, when, fn, cat)) {
    now_ = when;
    dispatch(fn, cat);
    fn.reset();
    ++executed;
  }
  if (now_ < deadline && heap_.empty()) now_ = deadline;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace pvn
