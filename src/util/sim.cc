#include "util/sim.h"

namespace pvn {

EventId Simulator::schedule_at(SimTime when, std::function<void()> fn) {
  if (when < now_) when = now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id, std::move(fn)});
  return id;
}

void Simulator::cancel(EventId id) {
  if (id == kInvalidEventId) return;
  if (cancelled_.insert(id).second) ++cancelled_live_;
}

bool Simulator::pop_one(Event& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; move out via const_cast on the handle,
    // which is safe because we pop immediately after.
    Event& top = const_cast<Event&>(queue_.top());
    Event ev = std::move(top);
    queue_.pop();
    auto it = cancelled_.find(ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      --cancelled_live_;
      continue;
    }
    out = std::move(ev);
    return true;
  }
  return false;
}

bool Simulator::step() {
  Event ev;
  if (!pop_one(ev)) return false;
  now_ = ev.when;
  ev.fn();
  return true;
}

std::size_t Simulator::run_until(SimTime deadline) {
  std::size_t executed = 0;
  Event ev;
  while (!queue_.empty()) {
    if (queue_.top().when > deadline) break;
    if (!pop_one(ev)) break;
    if (ev.when > deadline) {
      // Re-queue: pop_one consumed a live event past the deadline.
      queue_.push(std::move(ev));
      break;
    }
    now_ = ev.when;
    ev.fn();
    ++executed;
  }
  if (now_ < deadline && queue_.empty()) now_ = deadline;
  return executed;
}

std::size_t Simulator::run() {
  std::size_t executed = 0;
  while (step()) ++executed;
  return executed;
}

}  // namespace pvn
