// Small hashing utilities shared by the hot-path containers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

namespace pvn {

// Heterogeneous (transparent) hash/equal for unordered containers keyed by
// std::string: enables allocation-free lookups with string_view / char*.
struct StringHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const noexcept {
    return std::hash<std::string_view>{}(s);
  }
};
struct StringEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const noexcept {
    return a == b;
  }
};

// splitmix64 finalizer: cheap, well-distributed 64-bit mixer.
constexpr std::uint64_t mix_u64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

constexpr std::uint64_t hash_combine_u64(std::uint64_t seed, std::uint64_t v) {
  return mix_u64(seed ^ (v + 0x9E3779B97F4A7C15ull + (seed << 6)));
}

}  // namespace pvn
