#include "util/digest.h"

#include <cstdio>

namespace pvn {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ull;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;

std::uint64_t mix(std::uint64_t z) {
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

}  // namespace

std::string Digest::hex() const {
  char buf[2 * 4 * 16 + 1];
  char* p = buf;
  for (std::uint64_t lane : lanes) {
    std::snprintf(p, 17, "%016llx", static_cast<unsigned long long>(lane));
    p += 16;
  }
  return std::string(buf, 64);
}

Bytes Digest::to_bytes() const {
  ByteWriter w;
  for (std::uint64_t lane : lanes) w.u64(lane);
  return std::move(w).take();
}

std::optional<Digest> Digest::from_bytes(const Bytes& b) {
  ByteReader r(b);
  Digest d;
  for (auto& lane : d.lanes) lane = r.u64();
  if (!r.exhausted()) return std::nullopt;
  return d;
}

Digest digest_of(std::span<const std::uint8_t> data) {
  Digest d;
  for (std::size_t lane = 0; lane < d.lanes.size(); ++lane) {
    std::uint64_t h = kFnvOffset + 0x9E3779B97F4A7C15ull * lane;
    for (std::uint8_t byte : data) {
      h ^= byte;
      h *= kFnvPrime;
    }
    d.lanes[lane] = mix(h + lane);
  }
  // Cross-lane avalanche so lanes are not trivially correlated.
  for (std::size_t i = 0; i < d.lanes.size(); ++i) {
    d.lanes[i] = mix(d.lanes[i] ^ d.lanes[(i + 1) % d.lanes.size()]);
  }
  return d;
}

Digest digest_of(const Bytes& data) {
  return digest_of(std::span<const std::uint8_t>(data));
}

Digest digest_of(std::string_view data) {
  return digest_of(std::span<const std::uint8_t>(
      reinterpret_cast<const std::uint8_t*>(data.data()), data.size()));
}

Digest hmac(const Bytes& key, std::span<const std::uint8_t> data) {
  ByteWriter w;
  w.blob(key);
  w.raw(data);
  w.blob(key);
  return digest_of(w.bytes());
}

Digest hmac(const Bytes& key, const Bytes& data) {
  return hmac(key, std::span<const std::uint8_t>(data));
}

KeyPair::KeyPair(std::uint64_t seed) {
  ByteWriter w;
  w.u64(seed);
  w.str("pvn-keypair-secret");
  secret_ = digest_of(w.bytes()).to_bytes();
  public_.id = mix(seed ^ 0xA5A5A5A55A5A5A5Aull);
}

Signature KeyPair::sign(std::span<const std::uint8_t> data) const {
  return Signature{hmac(secret_, data), public_.id};
}

void KeyRegistry::trust(const KeyPair& kp) {
  secrets_[kp.public_.id] = kp.secret_;
}

void KeyRegistry::revoke(const PublicKey& pk) { secrets_.erase(pk.id); }

bool KeyRegistry::trusts(const PublicKey& pk) const {
  return secrets_.contains(pk.id);
}

bool KeyRegistry::verify(const PublicKey& pk, std::span<const std::uint8_t> data,
                         const Signature& sig) const {
  const auto it = secrets_.find(pk.id);
  if (it == secrets_.end()) return false;
  if (sig.signer != pk.id) return false;
  return hmac(it->second, data) == sig.mac;
}

}  // namespace pvn
