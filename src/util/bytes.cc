#include "util/bytes.h"

namespace pvn {

void ByteWriter::u16(std::uint16_t v) {
  u8(static_cast<std::uint8_t>(v >> 8));
  u8(static_cast<std::uint8_t>(v));
}

void ByteWriter::u32(std::uint32_t v) {
  u16(static_cast<std::uint16_t>(v >> 16));
  u16(static_cast<std::uint16_t>(v));
}

void ByteWriter::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void ByteWriter::raw(std::span<const std::uint8_t> data) {
  buf_.insert(buf_.end(), data.begin(), data.end());
}

void ByteWriter::blob(std::span<const std::uint8_t> data) {
  u32(static_cast<std::uint32_t>(data.size()));
  raw(data);
}

void ByteWriter::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool ByteReader::take(std::size_t n, const std::uint8_t** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::uint8_t* p = nullptr;
  if (!take(1, &p)) return 0;
  return p[0];
}

std::uint16_t ByteReader::u16() {
  const std::uint8_t* p = nullptr;
  if (!take(2, &p)) return 0;
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

std::uint32_t ByteReader::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t ByteReader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return ok_ ? v : 0.0;
}

Bytes ByteReader::raw(std::size_t n) {
  const std::uint8_t* p = nullptr;
  if (!take(n, &p)) return {};
  return Bytes(p, p + n);
}

Bytes ByteReader::blob() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  const std::uint8_t* p = nullptr;
  if (!take(n, &p)) return {};
  return std::string(reinterpret_cast<const char*>(p), n);
}

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

}  // namespace pvn
