// Minimal leveled logger.
//
// Components log with a tag; the global level gates output. Tests run at
// kWarn to keep ctest output clean; examples raise the level to narrate.
#pragma once

#include <cstdio>
#include <string>
#include <string_view>

#include "util/time.h"

namespace pvn {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_line(LogLevel level, std::string_view tag, std::string_view msg,
              SimTime now);

// printf-style logging helper bound to a component tag and a clock source.
class Logger {
 public:
  Logger(std::string tag, const SimTime* clock = nullptr)
      : tag_(std::move(tag)), clock_(clock) {}

  template <typename... Args>
  void log(LogLevel level, const char* fmt, Args... args) const {
    if (level < log_level()) return;
    char buf[512];
    std::snprintf(buf, sizeof(buf), fmt, args...);
    log_line(level, tag_, buf, clock_ ? *clock_ : -1);
  }

  template <typename... Args>
  void trace(const char* fmt, Args... args) const {
    log(LogLevel::kTrace, fmt, args...);
  }
  template <typename... Args>
  void debug(const char* fmt, Args... args) const {
    log(LogLevel::kDebug, fmt, args...);
  }
  template <typename... Args>
  void info(const char* fmt, Args... args) const {
    log(LogLevel::kInfo, fmt, args...);
  }
  template <typename... Args>
  void warn(const char* fmt, Args... args) const {
    log(LogLevel::kWarn, fmt, args...);
  }
  template <typename... Args>
  void error(const char* fmt, Args... args) const {
    log(LogLevel::kError, fmt, args...);
  }

 private:
  std::string tag_;
  const SimTime* clock_;
};

}  // namespace pvn
