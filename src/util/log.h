// Minimal leveled logger.
//
// Components log with a tag; the global level gates output. Tests run at
// kWarn to keep ctest output clean; examples raise the level to narrate.
//
// Hardening: every formatting entry point carries the printf format
// attribute, so format-string/argument mismatches (including passing a
// std::string to %s) are compile errors under -Wall, and messages that
// overflow the internal buffer are truncated with a trailing "…" instead of
// relying on callers to size things right.
#pragma once

#include <cstdarg>
#include <cstdio>
#include <string>
#include <string_view>

#include "util/time.h"

#if defined(__GNUC__) || defined(__clang__)
#define PVN_PRINTF(fmt_idx, args_idx) \
  __attribute__((format(printf, fmt_idx, args_idx)))
#else
#define PVN_PRINTF(fmt_idx, args_idx)
#endif

namespace pvn {

enum class LogLevel { kTrace, kDebug, kInfo, kWarn, kError, kOff };

LogLevel log_level();
void set_log_level(LogLevel level);

void log_line(LogLevel level, std::string_view tag, std::string_view msg,
              SimTime now);

// Formats into buf (always NUL-terminated, never overflowing `size`). When
// the message does not fit, the tail is replaced with a UTF-8 ellipsis.
// Returns the number of bytes written (excluding the NUL). Exposed for the
// truncation tests in tests/util_test.cc.
std::size_t format_log_message(char* buf, std::size_t size, const char* fmt,
                               std::va_list ap);

// printf-style logging helper bound to a component tag and a clock source.
class Logger {
 public:
  Logger(std::string tag, const SimTime* clock = nullptr)
      : tag_(std::move(tag)), clock_(clock) {}

  // Format indices count the implicit `this` as argument 1.
  void log(LogLevel level, const char* fmt, ...) const PVN_PRINTF(3, 4);
  void trace(const char* fmt, ...) const PVN_PRINTF(2, 3);
  void debug(const char* fmt, ...) const PVN_PRINTF(2, 3);
  void info(const char* fmt, ...) const PVN_PRINTF(2, 3);
  void warn(const char* fmt, ...) const PVN_PRINTF(2, 3);
  void error(const char* fmt, ...) const PVN_PRINTF(2, 3);

 private:
  void vlog(LogLevel level, const char* fmt, std::va_list ap) const;

  std::string tag_;
  const SimTime* clock_;
};

}  // namespace pvn
