#include "util/log.h"

namespace pvn {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

void log_line(LogLevel level, std::string_view tag, std::string_view msg,
              SimTime now) {
  if (level < g_level) return;
  if (now >= 0) {
    std::fprintf(stderr, "[%s %10s %-12.*s] %.*s\n", level_name(level),
                 format_duration(now).c_str(), static_cast<int>(tag.size()),
                 tag.data(), static_cast<int>(msg.size()), msg.data());
  } else {
    std::fprintf(stderr, "[%s %-12.*s] %.*s\n", level_name(level),
                 static_cast<int>(tag.size()), tag.data(),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace pvn
