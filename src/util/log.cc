#include "util/log.h"

#include <cstring>

namespace pvn {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

std::size_t format_log_message(char* buf, std::size_t size, const char* fmt,
                               std::va_list ap) {
  if (size == 0) return 0;
  const int n = std::vsnprintf(buf, size, fmt, ap);
  if (n < 0) {  // encoding error: emit nothing rather than garbage
    buf[0] = '\0';
    return 0;
  }
  if (static_cast<std::size_t>(n) < size) return static_cast<std::size_t>(n);
  // vsnprintf already truncated safely; make the truncation visible by
  // ending with "…" (3-byte UTF-8 sequence) instead of a mid-word cut.
  static constexpr char kEllipsis[] = "\xE2\x80\xA6";
  if (size > sizeof(kEllipsis)) {
    std::memcpy(buf + size - sizeof(kEllipsis), kEllipsis, sizeof(kEllipsis));
  }
  return size - 1;
}

void Logger::vlog(LogLevel level, const char* fmt, std::va_list ap) const {
  char buf[512];
  const std::size_t len = format_log_message(buf, sizeof(buf), fmt, ap);
  log_line(level, tag_, std::string_view(buf, len), clock_ ? *clock_ : -1);
}

void Logger::log(LogLevel level, const char* fmt, ...) const {
  if (level < g_level) return;
  std::va_list ap;
  va_start(ap, fmt);
  vlog(level, fmt, ap);
  va_end(ap);
}

#define PVN_DEFINE_LEVEL(method, level)                  \
  void Logger::method(const char* fmt, ...) const {      \
    if (LogLevel::level < g_level) return;               \
    std::va_list ap;                                     \
    va_start(ap, fmt);                                   \
    vlog(LogLevel::level, fmt, ap);                      \
    va_end(ap);                                          \
  }

PVN_DEFINE_LEVEL(trace, kTrace)
PVN_DEFINE_LEVEL(debug, kDebug)
PVN_DEFINE_LEVEL(info, kInfo)
PVN_DEFINE_LEVEL(warn, kWarn)
PVN_DEFINE_LEVEL(error, kError)

#undef PVN_DEFINE_LEVEL

void log_line(LogLevel level, std::string_view tag, std::string_view msg,
              SimTime now) {
  if (level < g_level) return;
  if (now >= 0) {
    std::fprintf(stderr, "[%s %10s %-12.*s] %.*s\n", level_name(level),
                 format_duration(now).c_str(), static_cast<int>(tag.size()),
                 tag.data(), static_cast<int>(msg.size()), msg.data());
  } else {
    std::fprintf(stderr, "[%s %-12.*s] %.*s\n", level_name(level),
                 static_cast<int>(tag.size()), tag.data(),
                 static_cast<int>(msg.size()), msg.data());
  }
}

}  // namespace pvn
