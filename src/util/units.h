// Value types for data rates and sizes.
#pragma once

#include <cstdint>

#include "util/time.h"

namespace pvn {

// A data rate in bits per second.
struct Rate {
  std::int64_t bits_per_second = 0;

  static constexpr Rate bps(std::int64_t v) { return Rate{v}; }
  static constexpr Rate kbps(std::int64_t v) { return Rate{v * 1000}; }
  static constexpr Rate mbps(std::int64_t v) { return Rate{v * 1000 * 1000}; }
  static constexpr Rate gbps(std::int64_t v) {
    return Rate{v * 1000 * 1000 * 1000};
  }

  constexpr double mbps_value() const {
    return static_cast<double>(bits_per_second) / 1e6;
  }

  // Time to serialize `bytes` onto a link of this rate.
  constexpr SimDuration transmit_time(std::int64_t bytes) const {
    if (bits_per_second <= 0) return 0;
    // bytes*8 bits / (bits/s) seconds, computed in ns without overflow for
    // realistic packet sizes (< 2^41 bytes at >= 1 bps).
    return static_cast<SimDuration>(
        (static_cast<__int128>(bytes) * 8 * kSecond) / bits_per_second);
  }

  constexpr bool operator==(const Rate&) const = default;
  constexpr auto operator<=>(const Rate&) const = default;
};

constexpr std::int64_t kKiB = 1024;
constexpr std::int64_t kMiB = 1024 * kKiB;
constexpr std::int64_t kGiB = 1024 * kMiB;

}  // namespace pvn
