// Simulated time: a signed 64-bit count of nanoseconds since simulation start.
//
// All latency, bandwidth, and timer arithmetic in the repository is expressed
// in SimTime / SimDuration so that every run is bit-for-bit deterministic and
// independent of wall-clock speed.
#pragma once

#include <cstdint>
#include <string>

namespace pvn {

// A duration in simulated nanoseconds.
using SimDuration = std::int64_t;

// An absolute simulated timestamp (nanoseconds since simulation start).
using SimTime = std::int64_t;

constexpr SimDuration kNanosecond = 1;
constexpr SimDuration kMicrosecond = 1000 * kNanosecond;
constexpr SimDuration kMillisecond = 1000 * kMicrosecond;
constexpr SimDuration kSecond = 1000 * kMillisecond;

constexpr SimDuration nanoseconds(std::int64_t n) { return n * kNanosecond; }
constexpr SimDuration microseconds(std::int64_t n) { return n * kMicrosecond; }
constexpr SimDuration milliseconds(std::int64_t n) { return n * kMillisecond; }
constexpr SimDuration seconds(std::int64_t n) { return n * kSecond; }

constexpr double to_seconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kSecond);
}
constexpr double to_milliseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMillisecond);
}
constexpr double to_microseconds(SimDuration d) {
  return static_cast<double>(d) / static_cast<double>(kMicrosecond);
}

// Renders a duration with an adaptive unit, e.g. "12.5ms" or "450us".
inline std::string format_duration(SimDuration d) {
  char buf[64];
  if (d >= kSecond) {
    std::snprintf(buf, sizeof(buf), "%.3fs", to_seconds(d));
  } else if (d >= kMillisecond) {
    std::snprintf(buf, sizeof(buf), "%.3fms", to_milliseconds(d));
  } else if (d >= kMicrosecond) {
    std::snprintf(buf, sizeof(buf), "%.3fus", to_microseconds(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace pvn
