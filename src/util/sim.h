// Discrete-event simulation kernel.
//
// A Simulator owns the virtual clock and a binary-heap event queue. Every
// component in the repository (links, TCP endpoints, middlebox hosts,
// protocol state machines) schedules work through one shared Simulator, which
// makes whole-network runs single-threaded and deterministic.
//
// Hot-path design (see DESIGN.md "Hot paths and performance model"):
//   * Callbacks are stored in EventFn, a move-only callable with a 120-byte
//     inline buffer, so capture-light lambdas (including ones carrying a
//     whole Packet) never touch the heap per event.
//   * Events live in generation-tagged slots; the heap holds (when, seq,
//     slot, gen) entries only. cancel() is O(1): it disarms the slot and
//     frees the callback immediately, so cancelled state never accumulates
//     across long runs (the heap entry is reclaimed lazily on pop).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/time.h"

namespace pvn {

// Handle used to cancel a scheduled event. Encodes (generation << 32 | slot);
// stale handles (already fired or cancelled) are recognized by a generation
// mismatch and ignored.
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

// Callback category for the simulator profiler. Scheduling call sites tag
// their events (defaulting to kOther); the run loop attributes event counts
// (always) and wall-clock time (when profiling is enabled) per category, so
// benches can report where simulated *and* real time goes.
enum class SimCategory : std::uint8_t {
  kOther = 0,
  kLink,        // per-hop delivery / queue drain (netsim/link.cc)
  kSwitch,      // SDN pipeline latency (sdn/switch.cc)
  kMbox,        // chain continuations, instantiation (mbox/)
  kPvnControl,  // discovery/deploy/lease timers (pvn/)
  kTunnel,      // tunnel endpoints (tunnel/)
  kProto,       // protocol timers (proto/)
  kFault,       // injected faults (netsim/faults.cc)
  kWorkload,    // traffic generators (workload/)
};
constexpr std::size_t kSimCategoryCount =
    static_cast<std::size_t>(SimCategory::kWorkload) + 1;
const char* to_string(SimCategory c);

// Per-category event counts and wall-clock attribution. Event counts are
// always maintained (one array increment per event); wall_ns is only
// populated while profiling is enabled (two steady_clock reads per event).
struct SimProfile {
  struct Entry {
    std::uint64_t events = 0;
    std::uint64_t wall_ns = 0;
  };
  Entry by_category[kSimCategoryCount];

  Entry& operator[](SimCategory c) {
    return by_category[static_cast<std::size_t>(c)];
  }
  const Entry& operator[](SimCategory c) const {
    return by_category[static_cast<std::size_t>(c)];
  }
  std::uint64_t total_events() const {
    std::uint64_t n = 0;
    for (const Entry& e : by_category) n += e.events;
    return n;
  }
  std::uint64_t total_wall_ns() const {
    std::uint64_t n = 0;
    for (const Entry& e : by_category) n += e.wall_ns;
    return n;
  }
};

// Move-only type-erased void() callable with a small-buffer-optimized store.
// Callables up to kInlineSize bytes (and max_align_t alignment) are stored
// inline; larger ones fall back to a heap allocation.
class EventFn {
 public:
  static constexpr std::size_t kInlineSize = 120;

  EventFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, EventFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  EventFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using D = std::decay_t<F>;
    if constexpr (sizeof(D) <= kInlineSize &&
                  alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(fn));
      ops_ = &kInlineOps<D>;
    } else {
      heap_ = new D(std::forward<F>(fn));
      ops_ = &kHeapOps<D>;
    }
  }

  EventFn(EventFn&& other) noexcept { move_from(other); }
  EventFn& operator=(EventFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  EventFn(const EventFn&) = delete;
  EventFn& operator=(const EventFn&) = delete;
  ~EventFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }
  bool inlined() const { return ops_ != nullptr && heap_ == nullptr; }

  void operator()() { ops_->invoke(target()); }

  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(target());
      ops_ = nullptr;
      heap_ = nullptr;
    }
  }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-constructs the callable into `dst` and destroys the source
    // (inline storage only; heap callables move by pointer steal).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename D>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) D(std::move(*static_cast<D*>(src)));
        static_cast<D*>(src)->~D();
      },
      [](void* p) { static_cast<D*>(p)->~D(); },
  };
  template <typename D>
  static constexpr Ops kHeapOps{
      [](void* p) { (*static_cast<D*>(p))(); },
      nullptr,
      [](void* p) { delete static_cast<D*>(p); },
  };

  void* target() { return heap_ != nullptr ? heap_ : static_cast<void*>(buf_); }

  void move_from(EventFn& other) noexcept {
    ops_ = other.ops_;
    heap_ = other.heap_;
    if (ops_ != nullptr && other.heap_ == nullptr) {
      ops_->relocate(buf_, other.buf_);
    }
    other.ops_ = nullptr;
    other.heap_ = nullptr;
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  void* heap_ = nullptr;
  const Ops* ops_ = nullptr;
};

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (clamped to now()).
  template <typename F>
  EventId schedule_at(SimTime when, F&& fn) {
    return schedule_fn(when, EventFn(std::forward<F>(fn)), SimCategory::kOther);
  }
  template <typename F>
  EventId schedule_at(SimTime when, SimCategory cat, F&& fn) {
    return schedule_fn(when, EventFn(std::forward<F>(fn)), cat);
  }

  // Schedules `fn` to run `delay` nanoseconds from now.
  template <typename F>
  EventId schedule_after(SimDuration delay, F&& fn) {
    return schedule_fn(now_ + (delay < 0 ? 0 : delay),
                       EventFn(std::forward<F>(fn)), SimCategory::kOther);
  }
  template <typename F>
  EventId schedule_after(SimDuration delay, SimCategory cat, F&& fn) {
    return schedule_fn(now_ + (delay < 0 ? 0 : delay),
                       EventFn(std::forward<F>(fn)), cat);
  }

  // Cancels a pending event in O(1). Safe to call with kInvalidEventId or an
  // already-fired/cancelled event id (both are no-ops).
  void cancel(EventId id);

  // Runs events until the queue drains or the clock would pass `deadline`.
  // Returns the number of events executed.
  std::size_t run_until(SimTime deadline);

  // Runs until the event queue is empty.
  std::size_t run();

  // Executes at most one event; returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return live_; }

  // --- profiler (see SimProfile above) -----------------------------------
  // Per-category event counts are always collected; wall-clock attribution
  // (two steady_clock reads per event) only while enabled.
  void enable_profiling(bool on) { profiling_ = on; }
  bool profiling_enabled() const { return profiling_; }
  const SimProfile& profile() const { return profile_; }
  void reset_profile() { profile_ = SimProfile{}; }

 private:
  // Heap entries are 24 bytes; the callback lives in its slot until fired or
  // cancelled. `gen` detects stale entries after a slot is recycled.
  struct HeapEntry {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    std::uint32_t slot;
    std::uint32_t gen;
  };
  struct Slot {
    std::uint32_t gen = 1;
    bool armed = false;
    SimCategory cat = SimCategory::kOther;
    EventFn fn;
  };

  EventId schedule_fn(SimTime when, EventFn fn, SimCategory cat);
  // Pops the earliest live event with when <= deadline (reclaiming any
  // cancelled entries it passes). Returns false if there is none.
  bool pop_one_until(SimTime deadline, SimTime& when_out, EventFn& fn_out,
                     SimCategory& cat_out);
  // Runs a popped event, charging the profiler.
  void dispatch(EventFn& fn, SimCategory cat);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::vector<HeapEntry> heap_;  // binary min-heap on (when, seq)
  std::vector<Slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::size_t live_ = 0;
  bool profiling_ = false;
  SimProfile profile_;
};

}  // namespace pvn
