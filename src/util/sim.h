// Discrete-event simulation kernel.
//
// A Simulator owns the virtual clock and a priority queue of scheduled
// callbacks. Every component in the repository (links, TCP endpoints,
// middlebox hosts, protocol state machines) schedules work through one shared
// Simulator, which makes whole-network runs single-threaded and deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "util/time.h"

namespace pvn {

// Handle used to cancel a scheduled event. Cancellation is lazy: the event
// stays in the queue but its callback is not invoked.
using EventId = std::uint64_t;
constexpr EventId kInvalidEventId = 0;

class Simulator {
 public:
  Simulator() = default;
  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  SimTime now() const { return now_; }

  // Schedules `fn` to run at absolute time `when` (clamped to now()).
  EventId schedule_at(SimTime when, std::function<void()> fn);

  // Schedules `fn` to run `delay` nanoseconds from now.
  EventId schedule_after(SimDuration delay, std::function<void()> fn) {
    return schedule_at(now_ + (delay < 0 ? 0 : delay), std::move(fn));
  }

  // Cancels a pending event. Safe to call with kInvalidEventId or an
  // already-fired event id (both are no-ops).
  void cancel(EventId id);

  // Runs events until the queue drains or the clock would pass `deadline`.
  // Returns the number of events executed.
  std::size_t run_until(SimTime deadline);

  // Runs until the event queue is empty.
  std::size_t run();

  // Executes at most one event; returns false if the queue is empty.
  bool step();

  std::size_t pending_events() const { return queue_.size() - cancelled_live_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;  // tie-break: FIFO among same-time events
    EventId id;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  bool pop_one(Event& out);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 1;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  std::unordered_set<EventId> cancelled_;
  std::size_t cancelled_live_ = 0;
};

}  // namespace pvn
