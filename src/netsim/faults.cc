#include "netsim/faults.h"

#include "netsim/node.h"
#include "telemetry/metrics.h"

namespace pvn {

std::string FaultInjector::link_name(const Link& link) {
  return link.end_a().name() + "<->" + link.end_b().name();
}

void FaultInjector::record(const std::string& kind,
                           const std::string& target) {
  events_.push_back(FaultEvent{net_->sim().now(), kind, target});
  telemetry::MetricsRegistry::global()
      .counter("netsim.faults.events", kind)
      .inc();
}

void FaultInjector::fail_link(Link& link) {
  if (!link.is_up()) return;
  link.set_up(false);
  record("link-down", link_name(link));
}

void FaultInjector::restore_link(Link& link) {
  if (link.is_up()) return;
  link.set_up(true);
  record("link-up", link_name(link));
}

void FaultInjector::crash_node(Node& node) {
  if (!node.is_up()) return;
  node.set_up(false);
  record("node-crash", node.name());
}

void FaultInjector::restore_node(Node& node) {
  if (node.is_up()) return;
  node.set_up(true);
  record("node-restart", node.name());
}

void FaultInjector::link_flap(Link& link, SimTime at, SimDuration down_for) {
  net_->sim().schedule_at(at, SimCategory::kFault, [this, &link] { fail_link(link); });
  net_->sim().schedule_at(at + down_for, SimCategory::kFault,
                          [this, &link] { restore_link(link); });
}

void FaultInjector::loss_burst(Link& link, SimTime at, SimDuration duration,
                               double loss) {
  net_->sim().schedule_at(at, SimCategory::kFault, [this, &link, duration, loss] {
    const double previous = link.params().loss;
    link.set_loss(loss);
    record("loss-burst", link_name(link));
    // Scheduled from inside the burst so the restore returns the link to its
    // pre-burst baseline rather than assuming a lossless baseline.
    net_->sim().schedule_after(duration, SimCategory::kFault, [this, &link, previous] {
      link.set_loss(previous);
      record("loss-end", link_name(link));
    });
  });
}

void FaultInjector::node_crash(Node& node, SimTime at, SimDuration down_for) {
  net_->sim().schedule_at(at, SimCategory::kFault, [this, &node] { crash_node(node); });
  if (down_for > 0) {
    net_->sim().schedule_at(at + down_for, SimCategory::kFault,
                            [this, &node] { restore_node(node); });
  }
}

void FaultInjector::partition(std::vector<Link*> links, SimTime at,
                              SimDuration duration) {
  net_->sim().schedule_at(at, SimCategory::kFault, [this, links] {
    for (Link* link : links) fail_link(*link);
  });
  net_->sim().schedule_at(at + duration, SimCategory::kFault, [this, links] {
    for (Link* link : links) restore_link(*link);
  });
}

void FaultInjector::crash_and_restart(Node& node, SimDuration downtime) {
  crash_node(node);
  net_->sim().schedule_after(downtime, SimCategory::kFault,
                             [this, &node] { restore_node(node); });
}

void FaultInjector::crash_and_restart(const std::string& target,
                                      SimDuration downtime,
                                      std::function<void()> crash,
                                      std::function<void()> restart) {
  crash();
  record("node-crash", target);
  net_->sim().schedule_after(downtime, SimCategory::kFault,
                             [this, target, restart = std::move(restart)] {
                               restart();
                               record("node-restart", target);
                             });
}

void FaultInjector::random_flaps(Link& link, SimTime from, SimTime until,
                                 SimDuration mean_up, SimDuration mean_down) {
  net_->sim().schedule_at(from, SimCategory::kFault, [this, &link, until, mean_up, mean_down] {
    flap_once(&link, until, mean_up, mean_down, /*currently_up=*/true);
  });
}

void FaultInjector::flap_once(Link* link, SimTime until, SimDuration mean_up,
                              SimDuration mean_down, bool currently_up) {
  if (net_->sim().now() >= until) {
    restore_link(*link);  // never leave the link down past the window
    return;
  }
  const double mean =
      static_cast<double>(currently_up ? mean_up : mean_down);
  const auto hold = static_cast<SimDuration>(rng_.exponential(mean));
  net_->sim().schedule_after(hold, SimCategory::kFault, [this, link, until, mean_up, mean_down,
                                    currently_up] {
    if (currently_up) {
      fail_link(*link);
    } else {
      restore_link(*link);
    }
    flap_once(link, until, mean_up, mean_down, !currently_up);
  });
}

}  // namespace pvn
