#include "netsim/addr.h"

#include <charconv>
#include <cstdio>

namespace pvn {

std::optional<Ipv4Addr> Ipv4Addr::parse(std::string_view s) {
  std::uint32_t out = 0;
  int octets = 0;
  const char* p = s.data();
  const char* end = s.data() + s.size();
  while (octets < 4) {
    unsigned value = 0;
    auto [next, ec] = std::from_chars(p, end, value);
    if (ec != std::errc() || value > 255) return std::nullopt;
    out = (out << 8) | value;
    ++octets;
    p = next;
    if (octets < 4) {
      if (p == end || *p != '.') return std::nullopt;
      ++p;
    }
  }
  if (p != end) return std::nullopt;
  return Ipv4Addr(out);
}

std::string Ipv4Addr::to_string() const {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%u.%u.%u.%u", (v >> 24) & 0xFF,
                (v >> 16) & 0xFF, (v >> 8) & 0xFF, v & 0xFF);
  return buf;
}

std::optional<Prefix> Prefix::parse(std::string_view cidr) {
  const auto slash = cidr.find('/');
  if (slash == std::string_view::npos) {
    auto addr = Ipv4Addr::parse(cidr);
    if (!addr) return std::nullopt;
    return Prefix{*addr, 32};
  }
  auto addr = Ipv4Addr::parse(cidr.substr(0, slash));
  if (!addr) return std::nullopt;
  int len = 0;
  const auto rest = cidr.substr(slash + 1);
  auto [next, ec] =
      std::from_chars(rest.data(), rest.data() + rest.size(), len);
  if (ec != std::errc() || next != rest.data() + rest.size() || len < 0 ||
      len > 32) {
    return std::nullopt;
  }
  return Prefix{*addr, len};
}

bool Prefix::contains(Ipv4Addr ip) const {
  if (len <= 0) return true;
  const std::uint32_t mask =
      len >= 32 ? 0xFFFFFFFFu : ~((1u << (32 - len)) - 1);
  return (ip.v & mask) == (addr.v & mask);
}

std::string Prefix::to_string() const {
  return addr.to_string() + "/" + std::to_string(len);
}

}  // namespace pvn
