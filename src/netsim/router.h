// Classic longest-prefix-match IP router.
//
// Used for the non-SDN parts of topologies (wide-area paths, cloud
// backbones). The access-network dataplane that PVNs program is the SDN
// Switch in src/sdn; Router is the dumb substrate around it.
#pragma once

#include <vector>

#include "netsim/network.h"
#include "netsim/node.h"

namespace pvn {

class Router : public Node {
 public:
  Router(Network& net, std::string name);

  // Adds a route: packets matching `prefix` leave via `port`.
  void add_route(Prefix prefix, int port);
  bool remove_route(const Prefix& prefix);

  // Limited anycast flooding (paper §3.1: discovery "can span multiple
  // providers using limited flooding, e.g., via special anycast
  // addresses"). Packets addressed to kPvnAnycast are replicated out every
  // registered anycast port except the one they arrived on; TTL bounds the
  // flood radius.
  void add_anycast_port(int port);

  // Longest-prefix match; returns -1 if no route.
  int route_for(Ipv4Addr dst) const;

  void handle_packet(Packet pkt, int in_port) override;

  std::uint64_t no_route_drops() const { return no_route_drops_; }
  std::uint64_t ttl_drops() const { return ttl_drops_; }

 private:
  struct Entry {
    Prefix prefix;
    int port;
  };
  std::vector<Entry> routes_;
  std::vector<int> anycast_ports_;
  std::uint64_t no_route_drops_ = 0;
  std::uint64_t ttl_drops_ = 0;
};

}  // namespace pvn
