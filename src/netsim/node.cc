#include "netsim/node.h"

#include "netsim/link.h"
#include "netsim/network.h"

namespace pvn {

Node::Node(Network& net, std::string name)
    : net_(&net), name_(std::move(name)), log_(name_) {}

Simulator& Node::sim() { return net_->sim(); }

Link* Node::port_link(int port) const {
  if (port < 0 || port >= static_cast<int>(ports_.size())) return nullptr;
  return ports_[static_cast<std::size_t>(port)];
}

void Node::send(int port, Packet pkt) {
  if (!up_) {
    ++down_drops_;
    return;
  }
  Link* link = port_link(port);
  if (link == nullptr) {
    ++unwired_drops_;
    return;
  }
  pkt.hop_trace.record(net_->names(), name_id_);
  link->transmit(*this, std::move(pkt));
}

int Node::attach_link(Link* link) {
  ports_.push_back(link);
  return static_cast<int>(ports_.size()) - 1;
}

}  // namespace pvn
