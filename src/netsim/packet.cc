#include "netsim/packet.h"

#include "util/digest.h"

namespace pvn {

const char* to_string(IpProto proto) {
  switch (proto) {
    case IpProto::kIcmp: return "icmp";
    case IpProto::kTcp: return "tcp";
    case IpProto::kUdp: return "udp";
    case IpProto::kEsp: return "esp";
  }
  return "?";
}

void IpHeader::encode(ByteWriter& w) const {
  w.u32(src.v);
  w.u32(dst.v);
  w.u8(static_cast<std::uint8_t>(proto));
  w.u8(ttl);
  w.u8(tos);
  // Pad to the nominal 20-byte IPv4 header size.
  for (int i = 0; i < 9; ++i) w.u8(0);
}

IpHeader IpHeader::decode(ByteReader& r) {
  IpHeader h;
  h.src = Ipv4Addr(r.u32());
  h.dst = Ipv4Addr(r.u32());
  h.proto = static_cast<IpProto>(r.u8());
  h.ttl = r.u8();
  h.tos = r.u8();
  r.raw(9);
  return h;
}

std::vector<std::string> HopTrace::strings() const {
  std::vector<std::string> out;
  out.reserve(ids.size());
  for (const std::uint32_t id : ids) out.push_back(names->name_of(id));
  return out;
}

std::uint64_t Packet::flow_hash() const {
  ByteWriter w;
  w.u32(ip.src.v);
  w.u32(ip.dst.v);
  w.u8(static_cast<std::uint8_t>(ip.proto));
  const std::size_t n = l4.size() < 8 ? l4.size() : 8;
  w.raw(std::span<const std::uint8_t>(l4.data(), n));
  return digest_of(w.bytes()).lanes[0];
}

}  // namespace pvn
