// The unit of transmission in the simulator.
//
// A Packet carries an IPv4-lite header plus an opaque serialized L4 payload
// (TCP segment, UDP datagram, or ESP tunnel frame — see src/proto and
// src/tunnel for the codecs). The payload is a copy-on-write SharedBytes:
// copying a Packet at dataplane fan-out points (links, taps, switch
// pipelines, middlebox chains, retransmission buffers) shares the buffer and
// only an actual in-place mutation clones it. Simulation-only
// instrumentation (creation time, traversed-node trace) rides along
// out-of-band; it is *not* visible to protocol logic and exists so tests and
// the auditor benches can compare detector output against ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/addr.h"
#include "netsim/names.h"
#include "util/bytes.h"
#include "util/time.h"

namespace pvn {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kEsp = 50,
};

const char* to_string(IpProto proto);

struct IpHeader {
  Ipv4Addr src;
  Ipv4Addr dst;
  IpProto proto = IpProto::kUdp;
  std::uint8_t ttl = 64;
  std::uint8_t tos = 0;  // DSCP-style class; meters/classifiers may set it

  static constexpr std::size_t kWireSize = 20;

  void encode(ByteWriter& w) const;
  static IpHeader decode(ByteReader& r);
  bool operator==(const IpHeader&) const = default;
};

// Ground-truth record of the nodes a packet traversed. Hops are interned
// 32-bit ids against the owning Network's NameTable; the strings themselves
// are materialized only on demand (strings()), so the per-hop cost on the
// forwarding path is a single integer append.
struct HopTrace {
  std::vector<std::uint32_t> ids;
  const NameTable* names = nullptr;  // table the ids were interned against

  // Appends a hop, binding the trace to `table` on first use.
  void record(const NameTable& table, std::uint32_t id) {
    if (names == nullptr) names = &table;
    ids.push_back(id);
  }

  std::size_t size() const { return ids.size(); }
  bool empty() const { return ids.empty(); }
  void clear() { ids.clear(); }

  // Materializes the traversed node names, in order.
  std::vector<std::string> strings() const;

  bool operator==(const HopTrace& other) const { return ids == other.ids; }
};

struct Packet {
  std::uint64_t id = 0;  // unique per Network, assigned at creation
  IpHeader ip;
  SharedBytes l4;  // serialized transport segment (header + payload), CoW

  // --- simulation instrumentation (not on the wire) ---
  SimTime created_at = 0;
  HopTrace hop_trace;  // node ids traversed (ground truth)

  std::size_t size() const { return IpHeader::kWireSize + l4.size(); }

  // Stable 5-tuple-ish hash used by ECMP-style choices and flow counters.
  // L4 ports are not parsed here; uses src/dst/proto plus a prefix of l4.
  std::uint64_t flow_hash() const;
};

}  // namespace pvn
