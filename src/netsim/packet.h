// The unit of transmission in the simulator.
//
// A Packet carries an IPv4-lite header plus an opaque serialized L4 payload
// (TCP segment, UDP datagram, or ESP tunnel frame — see src/proto and
// src/tunnel for the codecs). Simulation-only instrumentation (creation time,
// traversed-node trace) rides along out-of-band; it is *not* visible to
// protocol logic and exists so tests and the auditor benches can compare
// detector output against ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/addr.h"
#include "util/bytes.h"
#include "util/time.h"

namespace pvn {

enum class IpProto : std::uint8_t {
  kIcmp = 1,
  kTcp = 6,
  kUdp = 17,
  kEsp = 50,
};

const char* to_string(IpProto proto);

struct IpHeader {
  Ipv4Addr src;
  Ipv4Addr dst;
  IpProto proto = IpProto::kUdp;
  std::uint8_t ttl = 64;
  std::uint8_t tos = 0;  // DSCP-style class; meters/classifiers may set it

  static constexpr std::size_t kWireSize = 20;

  void encode(ByteWriter& w) const;
  static IpHeader decode(ByteReader& r);
  bool operator==(const IpHeader&) const = default;
};

struct Packet {
  std::uint64_t id = 0;  // unique per Network, assigned at creation
  IpHeader ip;
  Bytes l4;  // serialized transport segment (header + payload)

  // --- simulation instrumentation (not on the wire) ---
  SimTime created_at = 0;
  std::vector<std::string> hop_trace;  // node names traversed (ground truth)

  std::size_t size() const { return IpHeader::kWireSize + l4.size(); }

  // Stable 5-tuple-ish hash used by ECMP-style choices and flow counters.
  // L4 ports are not parsed here; uses src/dst/proto plus a prefix of l4.
  std::uint64_t flow_hash() const;
};

}  // namespace pvn
