// Deterministic fault injection for the simulator.
//
// A FaultInjector schedules substrate failures — link up/down flaps, loss
// bursts, partitions (a set of links down at once), and node crash/restart —
// through the shared Simulator, so a seeded run replays the exact same fault
// sequence every time. Random flap processes draw from an Rng forked off the
// Network's root stream, keeping them reproducible and independent of other
// stochastic elements (link loss, workloads).
//
// The control-plane resilience machinery (pvn/client.h retransmission and
// lease renewal, pvn/server.h lease expiry and chain health) is tested and
// benchmarked against faults injected here.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "netsim/network.h"

namespace pvn {

// One injected state transition, recorded for test assertions and for the
// resilience bench's timeline output.
struct FaultEvent {
  SimTime at = 0;
  std::string kind;    // "link-down", "link-up", "loss-burst", "loss-end",
                       // "node-crash", "node-restart"
  std::string target;  // node name, or "a<->b" for a link
};

class FaultInjector {
 public:
  explicit FaultInjector(Network& net)
      : net_(&net), rng_(net.rng().fork()) {}

  // --- immediate primitives (also usable directly from tests) ---
  void fail_link(Link& link);
  void restore_link(Link& link);
  void crash_node(Node& node);
  void restore_node(Node& node);

  // --- scheduled, deterministic faults ---
  // Takes the link down at `at` and restores it `down_for` later.
  void link_flap(Link& link, SimTime at, SimDuration down_for);
  // Raises the link's loss rate to `loss` for [at, at + duration), then
  // restores the previous rate.
  void loss_burst(Link& link, SimTime at, SimDuration duration, double loss);
  // Crashes the node at `at`; restores it `down_for` later (0 = stays down).
  void node_crash(Node& node, SimTime at, SimDuration down_for);
  // Takes every listed link down for [at, at + duration): a partition
  // separating whatever the links connect.
  void partition(std::vector<Link*> links, SimTime at, SimDuration duration);

  // Crashes `node` now and restarts it `downtime` later — the transient
  // flavour of crash_node/restore_node, so recovery paths (not just
  // failover paths) are exercisable from one call.
  void crash_and_restart(Node& node, SimDuration downtime);
  // Same fault for components that are not netsim Nodes (e.g. an MboxHost
  // compute pool): `crash` runs now, `restart` runs `downtime` later, and
  // both transitions are recorded against `target`.
  void crash_and_restart(const std::string& target, SimDuration downtime,
                         std::function<void()> crash,
                         std::function<void()> restart);

  // A random flap process on one link: alternating exponentially-distributed
  // up/down holding times, starting up at `from`, stopping after `until`.
  // Driven entirely by this injector's forked RNG — reproducible per seed.
  void random_flaps(Link& link, SimTime from, SimTime until,
                    SimDuration mean_up, SimDuration mean_down);

  const std::vector<FaultEvent>& events() const { return events_; }
  std::size_t injected() const { return events_.size(); }

 private:
  static std::string link_name(const Link& link);
  void record(const std::string& kind, const std::string& target);
  void flap_once(Link* link, SimTime until, SimDuration mean_up,
                 SimDuration mean_down, bool currently_up);

  Network* net_;
  Rng rng_;
  std::vector<FaultEvent> events_;
};

}  // namespace pvn
