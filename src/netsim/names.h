// Per-Network string interning for hot-path instrumentation.
//
// Node names appear in every packet's hop trace; interning them to dense
// 32-bit ids keeps the per-hop cost at one integer push_back instead of a
// std::string construction. Strings are materialized only when tests or
// auditor tooling ask (HopTrace::strings()).
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/hash.h"

namespace pvn {

class NameTable {
 public:
  // Returns the id for `name`, interning it on first sight. Ids are dense,
  // starting at 0, and stable for the table's lifetime.
  std::uint32_t intern(std::string_view name) {
    const auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const auto id = static_cast<std::uint32_t>(names_.size());
    names_.emplace_back(name);
    ids_.emplace(names_.back(), id);
    return id;
  }

  const std::string& name_of(std::uint32_t id) const {
    assert(id < names_.size());
    return names_[id];
  }

  std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, std::uint32_t, StringHash, StringEq> ids_;
};

}  // namespace pvn
