#include "netsim/link.h"

#include <cassert>

#include "netsim/network.h"
#include "netsim/node.h"

namespace pvn {

Link::Link(Network& net, Node& a, Node& b, LinkParams params)
    : net_(&net),
      a_(&a),
      b_(&b),
      port_a_(a.attach_link(this)),
      port_b_(b.attach_link(this)),
      params_(params),
      rng_(net.rng().fork()) {
  ab_.to = b_;
  ab_.to_port = port_b_;
  ba_.to = a_;
  ba_.to_port = port_a_;
  register_metrics(ab_, a.name() + "->" + b.name());
  register_metrics(ba_, b.name() + "->" + a.name());
}

void Link::register_metrics(Direction& dir, const std::string& instance) {
  auto& reg = telemetry::MetricsRegistry::global();
  dir.m_delivered_packets =
      &reg.counter("netsim.link.delivered_packets", instance);
  dir.m_delivered_bytes = &reg.counter("netsim.link.delivered_bytes", instance);
  dir.m_dropped_packets = &reg.counter("netsim.link.dropped_packets", instance);
  dir.m_dropped_bytes = &reg.counter("netsim.link.dropped_bytes", instance);
  dir.m_queued_bytes = &reg.gauge("netsim.link.queued_bytes", instance);
}

Node& Link::peer_of(const Node& n) const {
  return &n == a_ ? *b_ : *a_;
}

int Link::port_at(const Node& n) const {
  return &n == a_ ? port_a_ : port_b_;
}

Link::Direction& Link::direction_from(const Node& from) {
  assert(&from == a_ || &from == b_);
  return &from == a_ ? ab_ : ba_;
}

const LinkStats& Link::stats_from(const Node& n) const {
  return &n == a_ ? ab_.stats : ba_.stats;
}

void Link::transmit(const Node& from, Packet pkt) {
  Direction& dir = direction_from(from);
  if (!up_) {
    ++dir.stats.down_drops;
    dir.m_dropped_packets->inc();
    dir.m_dropped_bytes->inc(pkt.size());
    return;
  }
  const std::int64_t sz = static_cast<std::int64_t>(pkt.size());

  // DropTail: the queue models bytes waiting for the serializer. If the
  // link is idle the packet starts serializing immediately and does not
  // count against the queue bound.
  Simulator& sim = net_->sim();
  const SimTime now = sim.now();
  if (dir.busy_until > now) {
    if (dir.queued_bytes + sz > params_.queue_bytes) {
      ++dir.stats.queue_drops;
      dir.m_dropped_packets->inc();
      dir.m_dropped_bytes->inc(pkt.size());
      return;
    }
    dir.queued_bytes += sz;
    dir.m_queued_bytes->set(dir.queued_bytes);
  }
  start_transmit(dir, std::move(pkt));
}

void Link::start_transmit(Direction& dir, Packet pkt) {
  Simulator& sim = net_->sim();
  const SimTime now = sim.now();
  const SimTime start = dir.busy_until > now ? dir.busy_until : now;
  const SimDuration serialize = params_.rate.transmit_time(
      static_cast<std::int64_t>(pkt.size()));
  dir.busy_until = start + serialize;
  const SimTime arrive = dir.busy_until + params_.latency;

  ++dir.stats.tx_packets;
  dir.stats.tx_bytes += pkt.size();

  const std::int64_t sz = static_cast<std::int64_t>(pkt.size());
  const bool lost = rng_.bernoulli(params_.loss);
  if (lost) {
    ++dir.stats.loss_drops;
    dir.m_dropped_packets->inc();
    dir.m_dropped_bytes->inc(pkt.size());
  }

  Direction* dptr = &dir;
  Node* from = (dptr == &ab_) ? a_ : b_;
  if (start > now) {
    // Queue occupancy drops once the packet has fully serialized.
    sim.schedule_at(dir.busy_until, SimCategory::kLink, [dptr, sz] {
      dptr->queued_bytes -= sz;
      dptr->m_queued_bytes->set(dptr->queued_bytes);
    });
  }
  auto deliver = [this, dptr, pkt = std::move(pkt), lost, from]() mutable {
    if (lost) return;
    if (!dptr->to->is_up()) {
      ++dptr->stats.down_drops;
      ++dptr->to->down_drops_;
      dptr->m_dropped_packets->inc();
      dptr->m_dropped_bytes->inc(pkt.size());
      return;
    }
    ++dptr->stats.delivered_packets;
    dptr->m_delivered_packets->inc();
    dptr->m_delivered_bytes->inc(pkt.size());
    for (const Tap& tap : taps_) tap(pkt, *from, *dptr->to);
    dptr->to->handle_packet(std::move(pkt), dptr->to_port);
  };
  // The per-hop delivery callback is the hottest event in the simulator; it
  // must fit EventFn's inline buffer so delivery never heap-allocates.
  static_assert(sizeof(deliver) <= EventFn::kInlineSize);
  sim.schedule_at(arrive, SimCategory::kLink, std::move(deliver));
}

}  // namespace pvn
