// IPv4-lite addressing: 32-bit addresses and CIDR prefixes.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace pvn {

struct Ipv4Addr {
  std::uint32_t v = 0;

  constexpr Ipv4Addr() = default;
  constexpr explicit Ipv4Addr(std::uint32_t raw) : v(raw) {}
  constexpr Ipv4Addr(std::uint8_t a, std::uint8_t b, std::uint8_t c,
                     std::uint8_t d)
      : v((std::uint32_t(a) << 24) | (std::uint32_t(b) << 16) |
          (std::uint32_t(c) << 8) | std::uint32_t(d)) {}

  static std::optional<Ipv4Addr> parse(std::string_view s);
  std::string to_string() const;

  constexpr bool is_unspecified() const { return v == 0; }

  constexpr bool operator==(const Ipv4Addr&) const = default;
  constexpr auto operator<=>(const Ipv4Addr&) const = default;
};

// The well-known anycast address PVN discovery messages flood to when the
// immediate access network does not answer (paper §3.1: "special anycast
// addresses").
constexpr Ipv4Addr kPvnAnycast{255, 0, 0, 53};

struct Prefix {
  Ipv4Addr addr;
  int len = 32;  // 0..32

  static std::optional<Prefix> parse(std::string_view cidr);
  bool contains(Ipv4Addr ip) const;
  std::string to_string() const;

  bool operator==(const Prefix&) const = default;
};

}  // namespace pvn

template <>
struct std::hash<pvn::Ipv4Addr> {
  std::size_t operator()(const pvn::Ipv4Addr& a) const noexcept {
    return std::hash<std::uint32_t>{}(a.v);
  }
};
