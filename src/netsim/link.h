// Full-duplex point-to-point link with bandwidth, propagation delay, random
// loss, and a DropTail byte-bounded queue per direction.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "netsim/packet.h"
#include "telemetry/metrics.h"
#include "util/rng.h"
#include "util/units.h"

namespace pvn {

class Node;
class Network;

struct LinkParams {
  Rate rate = Rate::mbps(100);
  SimDuration latency = milliseconds(1);
  double loss = 0.0;              // independent per-packet drop probability
  std::int64_t queue_bytes = 256 * 1024;  // per-direction DropTail capacity
};

struct LinkStats {
  std::uint64_t tx_packets = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t delivered_packets = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t loss_drops = 0;
  std::uint64_t down_drops = 0;  // link down, or destination node crashed
};

class Link {
 public:
  // Observes every packet the link delivers (after loss), per direction.
  // Used by trace collectors and by on-path attackers in audit tests.
  using Tap = std::function<void(const Packet&, const Node& from, const Node& to)>;

  Link(Network& net, Node& a, Node& b, LinkParams params);

  const LinkParams& params() const { return params_; }
  // Runtime reconfiguration (e.g. degrading a link mid-experiment).
  void set_loss(double loss) { params_.loss = loss; }
  void set_latency(SimDuration latency) { params_.latency = latency; }

  // Administrative state (netsim/faults.h). While down, new transmissions
  // are dropped; packets already serialized onto the wire still arrive.
  bool is_up() const { return up_; }
  void set_up(bool up) { up_ = up; }

  Node& peer_of(const Node& n) const;
  int port_at(const Node& n) const;
  Node& end_a() const { return *a_; }
  Node& end_b() const { return *b_; }

  // Called by Node::send. Direction is inferred from `from`.
  void transmit(const Node& from, Packet pkt);

  const LinkStats& stats_from(const Node& n) const;

  // Taps chain: every registered tap observes every delivered packet, in
  // registration order. A trace collector and a fault-injector/attacker
  // observer can therefore share a link.
  void add_tap(Tap tap) { taps_.push_back(std::move(tap)); }
  // Replaces ALL taps with `tap` (legacy single-observer semantics).
  void set_tap(Tap tap) {
    taps_.clear();
    taps_.push_back(std::move(tap));
  }
  void clear_taps() { taps_.clear(); }
  std::size_t tap_count() const { return taps_.size(); }

 private:
  struct Direction {
    Node* to = nullptr;
    int to_port = 0;
    SimTime busy_until = 0;
    std::int64_t queued_bytes = 0;
    LinkStats stats;
    // Telemetry cells (telemetry/metrics.h), registered once per direction
    // under instance "<from>-><to>"; raw pointer increments on the hot path.
    telemetry::Counter* m_delivered_packets = nullptr;
    telemetry::Counter* m_delivered_bytes = nullptr;
    telemetry::Counter* m_dropped_packets = nullptr;
    telemetry::Counter* m_dropped_bytes = nullptr;
    telemetry::Gauge* m_queued_bytes = nullptr;
  };

  Direction& direction_from(const Node& from);
  void start_transmit(Direction& dir, Packet pkt);
  void register_metrics(Direction& dir, const std::string& instance);

  Network* net_;
  Node* a_;
  Node* b_;
  int port_a_;
  int port_b_;
  LinkParams params_;
  bool up_ = true;
  Direction ab_;  // a_ -> b_
  Direction ba_;  // b_ -> a_
  Rng rng_;
  std::vector<Tap> taps_;
};

}  // namespace pvn
