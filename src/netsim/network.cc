#include "netsim/network.h"

#include <stdexcept>

namespace pvn {

Network::Network(std::uint64_t seed) : rng_(seed) {}

void Network::register_node(std::unique_ptr<Node> node) {
  const auto [it, inserted] = by_name_.emplace(node->name(), node.get());
  if (!inserted) {
    throw std::invalid_argument("duplicate node name: " + node->name());
  }
  node->name_id_ = names_.intern(node->name());
  nodes_.push_back(std::move(node));
}

Node* Network::find_node(std::string_view name) {
  const auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : it->second;
}

Link& Network::connect(Node& a, Node& b, LinkParams params) {
  links_.push_back(std::make_unique<Link>(*this, a, b, params));
  return *links_.back();
}

Packet Network::make_packet(Ipv4Addr src, Ipv4Addr dst, IpProto proto,
                            Bytes l4) {
  Packet pkt;
  pkt.id = next_packet_id();
  pkt.ip.src = src;
  pkt.ip.dst = dst;
  pkt.ip.proto = proto;
  pkt.l4 = std::move(l4);
  pkt.created_at = sim_.now();
  return pkt;
}

}  // namespace pvn
