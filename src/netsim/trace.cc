#include "netsim/trace.h"

#include "netsim/node.h"

namespace pvn {

void TraceCollector::attach(Link& link) {
  // add_tap (not set_tap): attaching a collector must not evict other
  // observers already on the link, e.g. a fault-injector or attacker tap.
  link.add_tap([this](const Packet& pkt, const Node& from, const Node& to) {
    records_.push_back(TraceRecord{sim_->now(), pkt.id, from.name(), to.name(),
                                   pkt.ip.src, pkt.ip.dst, pkt.ip.proto,
                                   pkt.size()});
  });
}

std::uint64_t TraceCollector::bytes_from_to(const std::string& from,
                                            const std::string& to) const {
  std::uint64_t total = 0;
  for (const TraceRecord& r : records_) {
    if (r.from == from && r.to == to) total += r.size;
  }
  return total;
}

std::size_t TraceCollector::count_packets(IpProto proto) const {
  std::size_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.proto == proto) ++n;
  }
  return n;
}

double TraceCollector::mean_throughput_bps(const std::string& from,
                                           const std::string& to) const {
  SimTime first = -1;
  SimTime last = -1;
  std::uint64_t bytes = 0;
  for (const TraceRecord& r : records_) {
    if (r.from != from || r.to != to) continue;
    if (first < 0) first = r.at;
    last = r.at;
    bytes += r.size;
  }
  if (first < 0 || last <= first) return 0.0;
  return static_cast<double>(bytes) * 8.0 / to_seconds(last - first);
}

}  // namespace pvn
