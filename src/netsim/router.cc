#include "netsim/router.h"

#include <algorithm>

namespace pvn {

Router::Router(Network& net, std::string name) : Node(net, std::move(name)) {}

void Router::add_route(Prefix prefix, int port) {
  routes_.push_back(Entry{prefix, port});
  // Keep longest prefixes first so route_for can take the first hit.
  std::stable_sort(routes_.begin(), routes_.end(),
                   [](const Entry& a, const Entry& b) {
                     return a.prefix.len > b.prefix.len;
                   });
}

bool Router::remove_route(const Prefix& prefix) {
  const auto it = std::find_if(
      routes_.begin(), routes_.end(),
      [&](const Entry& e) { return e.prefix == prefix; });
  if (it == routes_.end()) return false;
  routes_.erase(it);
  return true;
}

int Router::route_for(Ipv4Addr dst) const {
  for (const Entry& e : routes_) {
    if (e.prefix.contains(dst)) return e.port;
  }
  return -1;
}

void Router::add_anycast_port(int port) { anycast_ports_.push_back(port); }

void Router::handle_packet(Packet pkt, int in_port) {
  if (pkt.ip.ttl == 0) {
    ++ttl_drops_;
    return;
  }
  pkt.ip.ttl -= 1;
  if (pkt.ip.dst == kPvnAnycast) {
    for (const int port : anycast_ports_) {
      if (port == in_port) continue;
      send(port, pkt);  // replicate the flood
    }
    return;
  }
  const int out = route_for(pkt.ip.dst);
  if (out < 0) {
    ++no_route_drops_;
    return;
  }
  send(out, std::move(pkt));
}

}  // namespace pvn
