// Base class for everything attached to the simulated network.
//
// A Node owns a set of numbered ports; the Network wires ports to Links.
// Subclasses (hosts, routers, SDN switches, middlebox hosts, VPN gateways)
// implement handle_packet() and transmit with send().
#pragma once

#include <string>
#include <vector>

#include "netsim/packet.h"
#include "util/log.h"
#include "util/sim.h"

namespace pvn {

class Link;
class Network;

class Node {
 public:
  Node(Network& net, std::string name);
  virtual ~Node() = default;
  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // Invoked by a Link when a packet arrives on `in_port`.
  virtual void handle_packet(Packet pkt, int in_port) = 0;

  const std::string& name() const { return name_; }
  // Interned id of name() in network().names(); assigned at registration.
  std::uint32_t name_id() const { return name_id_; }
  Network& network() { return *net_; }
  Simulator& sim();

  // Crash/restart state (driven by netsim/faults.h). A down node neither
  // sends nor receives: Links drop deliveries to it and send() discards.
  bool is_up() const { return up_; }
  void set_up(bool up) { up_ = up; }
  std::uint64_t dropped_while_down() const { return down_drops_; }

  int port_count() const { return static_cast<int>(ports_.size()); }
  // The link attached to `port`, or nullptr if the port is unwired.
  Link* port_link(int port) const;

  // Queues `pkt` for transmission on `port`. Appends this node to the
  // packet's hop trace. Packets sent to unwired ports are counted and
  // dropped.
  void send(int port, Packet pkt);

  std::uint64_t dropped_on_unwired_port() const { return unwired_drops_; }

 protected:
  Logger& log() { return log_; }

 private:
  friend class Network;
  friend class Link;
  int attach_link(Link* link);  // returns the new port number

  Network* net_;
  std::string name_;
  std::uint32_t name_id_ = 0;
  std::vector<Link*> ports_;
  bool up_ = true;
  std::uint64_t unwired_drops_ = 0;
  std::uint64_t down_drops_ = 0;
  Logger log_;
};

}  // namespace pvn
