// Owner of the whole simulated topology: the Simulator, all Nodes, all Links.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netsim/link.h"
#include "netsim/names.h"
#include "netsim/node.h"
#include "util/hash.h"
#include "util/rng.h"
#include "util/sim.h"

namespace pvn {

class Network {
 public:
  explicit Network(std::uint64_t seed = 1);

  Simulator& sim() { return sim_; }
  Rng& rng() { return rng_; }

  // Interned node names (hop traces store ids against this table).
  NameTable& names() { return names_; }
  const NameTable& names() const { return names_; }

  // Constructs a node of type T (which must take (Network&, ...) ) and takes
  // ownership. Node names must be unique.
  template <typename T, typename... Args>
  T& add_node(Args&&... args) {
    auto node = std::make_unique<T>(*this, std::forward<Args>(args)...);
    T& ref = *node;
    register_node(std::move(node));
    return ref;
  }

  Node* find_node(std::string_view name);

  // Wires a new full-duplex link between two nodes; both get a new port.
  Link& connect(Node& a, Node& b, LinkParams params = {});

  std::uint64_t next_packet_id() { return next_packet_id_++; }

  // Builds a packet stamped with the current time and a fresh id.
  Packet make_packet(Ipv4Addr src, Ipv4Addr dst, IpProto proto, Bytes l4);

  const std::vector<std::unique_ptr<Link>>& links() const { return links_; }

 private:
  void register_node(std::unique_ptr<Node> node);

  Simulator sim_;
  Rng rng_;
  NameTable names_;
  std::vector<std::unique_ptr<Node>> nodes_;
  // Transparent hash/equal: find_node(string_view) never allocates.
  std::unordered_map<std::string, Node*, StringHash, StringEq> by_name_;
  std::vector<std::unique_ptr<Link>> links_;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace pvn
