// Packet trace collection for tests, benches, and the auditor's ground truth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netsim/link.h"
#include "netsim/packet.h"
#include "util/sim.h"
#include "util/time.h"

namespace pvn {

struct TraceRecord {
  SimTime at = 0;
  std::uint64_t packet_id = 0;
  std::string from;
  std::string to;
  Ipv4Addr src;
  Ipv4Addr dst;
  IpProto proto = IpProto::kUdp;
  std::size_t size = 0;
};

// Attaches to one or more Links and records every delivered packet.
class TraceCollector {
 public:
  explicit TraceCollector(Simulator& sim) : sim_(&sim) {}

  // Installs this collector as the link's tap (replacing any existing tap).
  void attach(Link& link);

  const std::vector<TraceRecord>& records() const { return records_; }
  void clear() { records_.clear(); }

  // Total delivered bytes between two node names (either direction filter).
  std::uint64_t bytes_from_to(const std::string& from,
                              const std::string& to) const;
  std::size_t count_packets(IpProto proto) const;

  // Mean observed throughput of packets matching (from,to), bits/second,
  // over the records' time span. Returns 0 with fewer than 2 records.
  double mean_throughput_bps(const std::string& from,
                             const std::string& to) const;

 private:
  Simulator* sim_;
  std::vector<TraceRecord> records_;
};

}  // namespace pvn
