file(REMOVE_RECURSE
  "CMakeFiles/audit_tunnel_test.dir/audit_tunnel_test.cc.o"
  "CMakeFiles/audit_tunnel_test.dir/audit_tunnel_test.cc.o.d"
  "audit_tunnel_test"
  "audit_tunnel_test.pdb"
  "audit_tunnel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/audit_tunnel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
