
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/audit_tunnel_test.cc" "tests/CMakeFiles/audit_tunnel_test.dir/audit_tunnel_test.cc.o" "gcc" "tests/CMakeFiles/audit_tunnel_test.dir/audit_tunnel_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/testbed/CMakeFiles/pvn_testbed.dir/DependInfo.cmake"
  "/root/repo/build/src/pvn/CMakeFiles/pvn_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mbox/CMakeFiles/pvn_mbox.dir/DependInfo.cmake"
  "/root/repo/build/src/audit/CMakeFiles/pvn_audit.dir/DependInfo.cmake"
  "/root/repo/build/src/tunnel/CMakeFiles/pvn_tunnel.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/pvn_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/pvn_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/pvn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pvn_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pvn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
