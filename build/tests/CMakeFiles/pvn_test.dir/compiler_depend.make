# Empty compiler generated dependencies file for pvn_test.
# This may be replaced when dependencies are built.
