file(REMOVE_RECURSE
  "CMakeFiles/pvn_test.dir/pvn_test.cc.o"
  "CMakeFiles/pvn_test.dir/pvn_test.cc.o.d"
  "pvn_test"
  "pvn_test.pdb"
  "pvn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
