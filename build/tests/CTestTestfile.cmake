# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/tcp_test[1]_include.cmake")
include("/root/repo/build/tests/proto_test[1]_include.cmake")
include("/root/repo/build/tests/sdn_test[1]_include.cmake")
include("/root/repo/build/tests/mbox_test[1]_include.cmake")
include("/root/repo/build/tests/pvn_test[1]_include.cmake")
include("/root/repo/build/tests/audit_tunnel_test[1]_include.cmake")
include("/root/repo/build/tests/e2e_test[1]_include.cmake")
include("/root/repo/build/tests/workload_test[1]_include.cmake")
include("/root/repo/build/tests/codec_property_test[1]_include.cmake")
include("/root/repo/build/tests/isolation_test[1]_include.cmake")
