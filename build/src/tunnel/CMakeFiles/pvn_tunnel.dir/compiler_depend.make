# Empty compiler generated dependencies file for pvn_tunnel.
# This may be replaced when dependencies are built.
