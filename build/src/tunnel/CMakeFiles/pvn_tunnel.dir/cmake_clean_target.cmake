file(REMOVE_RECURSE
  "libpvn_tunnel.a"
)
