file(REMOVE_RECURSE
  "CMakeFiles/pvn_tunnel.dir/esp.cc.o"
  "CMakeFiles/pvn_tunnel.dir/esp.cc.o.d"
  "CMakeFiles/pvn_tunnel.dir/locator.cc.o"
  "CMakeFiles/pvn_tunnel.dir/locator.cc.o.d"
  "CMakeFiles/pvn_tunnel.dir/vpn.cc.o"
  "CMakeFiles/pvn_tunnel.dir/vpn.cc.o.d"
  "libpvn_tunnel.a"
  "libpvn_tunnel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_tunnel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
