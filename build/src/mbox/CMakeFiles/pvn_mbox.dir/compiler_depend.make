# Empty compiler generated dependencies file for pvn_mbox.
# This may be replaced when dependencies are built.
