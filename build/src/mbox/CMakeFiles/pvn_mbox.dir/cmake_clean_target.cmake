file(REMOVE_RECURSE
  "libpvn_mbox.a"
)
