file(REMOVE_RECURSE
  "CMakeFiles/pvn_mbox.dir/host.cc.o"
  "CMakeFiles/pvn_mbox.dir/host.cc.o.d"
  "CMakeFiles/pvn_mbox.dir/inline_modules.cc.o"
  "CMakeFiles/pvn_mbox.dir/inline_modules.cc.o.d"
  "CMakeFiles/pvn_mbox.dir/proxies.cc.o"
  "CMakeFiles/pvn_mbox.dir/proxies.cc.o.d"
  "CMakeFiles/pvn_mbox.dir/registry.cc.o"
  "CMakeFiles/pvn_mbox.dir/registry.cc.o.d"
  "libpvn_mbox.a"
  "libpvn_mbox.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_mbox.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
