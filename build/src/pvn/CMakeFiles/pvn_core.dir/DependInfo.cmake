
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/pvn/billing.cc" "src/pvn/CMakeFiles/pvn_core.dir/billing.cc.o" "gcc" "src/pvn/CMakeFiles/pvn_core.dir/billing.cc.o.d"
  "/root/repo/src/pvn/client.cc" "src/pvn/CMakeFiles/pvn_core.dir/client.cc.o" "gcc" "src/pvn/CMakeFiles/pvn_core.dir/client.cc.o.d"
  "/root/repo/src/pvn/compiler.cc" "src/pvn/CMakeFiles/pvn_core.dir/compiler.cc.o" "gcc" "src/pvn/CMakeFiles/pvn_core.dir/compiler.cc.o.d"
  "/root/repo/src/pvn/discovery.cc" "src/pvn/CMakeFiles/pvn_core.dir/discovery.cc.o" "gcc" "src/pvn/CMakeFiles/pvn_core.dir/discovery.cc.o.d"
  "/root/repo/src/pvn/negotiation.cc" "src/pvn/CMakeFiles/pvn_core.dir/negotiation.cc.o" "gcc" "src/pvn/CMakeFiles/pvn_core.dir/negotiation.cc.o.d"
  "/root/repo/src/pvn/pvnc.cc" "src/pvn/CMakeFiles/pvn_core.dir/pvnc.cc.o" "gcc" "src/pvn/CMakeFiles/pvn_core.dir/pvnc.cc.o.d"
  "/root/repo/src/pvn/pvnc_parser.cc" "src/pvn/CMakeFiles/pvn_core.dir/pvnc_parser.cc.o" "gcc" "src/pvn/CMakeFiles/pvn_core.dir/pvnc_parser.cc.o.d"
  "/root/repo/src/pvn/server.cc" "src/pvn/CMakeFiles/pvn_core.dir/server.cc.o" "gcc" "src/pvn/CMakeFiles/pvn_core.dir/server.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mbox/CMakeFiles/pvn_mbox.dir/DependInfo.cmake"
  "/root/repo/build/src/sdn/CMakeFiles/pvn_sdn.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/pvn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pvn_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pvn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
