# Empty dependencies file for pvn_core.
# This may be replaced when dependencies are built.
