file(REMOVE_RECURSE
  "libpvn_core.a"
)
