file(REMOVE_RECURSE
  "CMakeFiles/pvn_core.dir/billing.cc.o"
  "CMakeFiles/pvn_core.dir/billing.cc.o.d"
  "CMakeFiles/pvn_core.dir/client.cc.o"
  "CMakeFiles/pvn_core.dir/client.cc.o.d"
  "CMakeFiles/pvn_core.dir/compiler.cc.o"
  "CMakeFiles/pvn_core.dir/compiler.cc.o.d"
  "CMakeFiles/pvn_core.dir/discovery.cc.o"
  "CMakeFiles/pvn_core.dir/discovery.cc.o.d"
  "CMakeFiles/pvn_core.dir/negotiation.cc.o"
  "CMakeFiles/pvn_core.dir/negotiation.cc.o.d"
  "CMakeFiles/pvn_core.dir/pvnc.cc.o"
  "CMakeFiles/pvn_core.dir/pvnc.cc.o.d"
  "CMakeFiles/pvn_core.dir/pvnc_parser.cc.o"
  "CMakeFiles/pvn_core.dir/pvnc_parser.cc.o.d"
  "CMakeFiles/pvn_core.dir/server.cc.o"
  "CMakeFiles/pvn_core.dir/server.cc.o.d"
  "libpvn_core.a"
  "libpvn_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
