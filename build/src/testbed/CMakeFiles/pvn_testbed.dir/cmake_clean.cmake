file(REMOVE_RECURSE
  "CMakeFiles/pvn_testbed.dir/testbed.cc.o"
  "CMakeFiles/pvn_testbed.dir/testbed.cc.o.d"
  "libpvn_testbed.a"
  "libpvn_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
