# Empty compiler generated dependencies file for pvn_testbed.
# This may be replaced when dependencies are built.
