file(REMOVE_RECURSE
  "libpvn_testbed.a"
)
