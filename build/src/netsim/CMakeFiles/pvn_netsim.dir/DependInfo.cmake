
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netsim/addr.cc" "src/netsim/CMakeFiles/pvn_netsim.dir/addr.cc.o" "gcc" "src/netsim/CMakeFiles/pvn_netsim.dir/addr.cc.o.d"
  "/root/repo/src/netsim/link.cc" "src/netsim/CMakeFiles/pvn_netsim.dir/link.cc.o" "gcc" "src/netsim/CMakeFiles/pvn_netsim.dir/link.cc.o.d"
  "/root/repo/src/netsim/network.cc" "src/netsim/CMakeFiles/pvn_netsim.dir/network.cc.o" "gcc" "src/netsim/CMakeFiles/pvn_netsim.dir/network.cc.o.d"
  "/root/repo/src/netsim/node.cc" "src/netsim/CMakeFiles/pvn_netsim.dir/node.cc.o" "gcc" "src/netsim/CMakeFiles/pvn_netsim.dir/node.cc.o.d"
  "/root/repo/src/netsim/packet.cc" "src/netsim/CMakeFiles/pvn_netsim.dir/packet.cc.o" "gcc" "src/netsim/CMakeFiles/pvn_netsim.dir/packet.cc.o.d"
  "/root/repo/src/netsim/router.cc" "src/netsim/CMakeFiles/pvn_netsim.dir/router.cc.o" "gcc" "src/netsim/CMakeFiles/pvn_netsim.dir/router.cc.o.d"
  "/root/repo/src/netsim/trace.cc" "src/netsim/CMakeFiles/pvn_netsim.dir/trace.cc.o" "gcc" "src/netsim/CMakeFiles/pvn_netsim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/pvn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
