# Empty dependencies file for pvn_netsim.
# This may be replaced when dependencies are built.
