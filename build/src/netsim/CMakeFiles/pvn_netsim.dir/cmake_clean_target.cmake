file(REMOVE_RECURSE
  "libpvn_netsim.a"
)
