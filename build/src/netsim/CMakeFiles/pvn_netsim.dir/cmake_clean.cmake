file(REMOVE_RECURSE
  "CMakeFiles/pvn_netsim.dir/addr.cc.o"
  "CMakeFiles/pvn_netsim.dir/addr.cc.o.d"
  "CMakeFiles/pvn_netsim.dir/link.cc.o"
  "CMakeFiles/pvn_netsim.dir/link.cc.o.d"
  "CMakeFiles/pvn_netsim.dir/network.cc.o"
  "CMakeFiles/pvn_netsim.dir/network.cc.o.d"
  "CMakeFiles/pvn_netsim.dir/node.cc.o"
  "CMakeFiles/pvn_netsim.dir/node.cc.o.d"
  "CMakeFiles/pvn_netsim.dir/packet.cc.o"
  "CMakeFiles/pvn_netsim.dir/packet.cc.o.d"
  "CMakeFiles/pvn_netsim.dir/router.cc.o"
  "CMakeFiles/pvn_netsim.dir/router.cc.o.d"
  "CMakeFiles/pvn_netsim.dir/trace.cc.o"
  "CMakeFiles/pvn_netsim.dir/trace.cc.o.d"
  "libpvn_netsim.a"
  "libpvn_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
