file(REMOVE_RECURSE
  "CMakeFiles/pvn_workload.dir/generators.cc.o"
  "CMakeFiles/pvn_workload.dir/generators.cc.o.d"
  "libpvn_workload.a"
  "libpvn_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
