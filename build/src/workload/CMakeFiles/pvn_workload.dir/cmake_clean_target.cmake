file(REMOVE_RECURSE
  "libpvn_workload.a"
)
