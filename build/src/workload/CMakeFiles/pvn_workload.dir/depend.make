# Empty dependencies file for pvn_workload.
# This may be replaced when dependencies are built.
