# Empty dependencies file for pvn_sdn.
# This may be replaced when dependencies are built.
