file(REMOVE_RECURSE
  "libpvn_sdn.a"
)
