file(REMOVE_RECURSE
  "CMakeFiles/pvn_sdn.dir/controller.cc.o"
  "CMakeFiles/pvn_sdn.dir/controller.cc.o.d"
  "CMakeFiles/pvn_sdn.dir/flow_table.cc.o"
  "CMakeFiles/pvn_sdn.dir/flow_table.cc.o.d"
  "CMakeFiles/pvn_sdn.dir/match.cc.o"
  "CMakeFiles/pvn_sdn.dir/match.cc.o.d"
  "CMakeFiles/pvn_sdn.dir/meter.cc.o"
  "CMakeFiles/pvn_sdn.dir/meter.cc.o.d"
  "CMakeFiles/pvn_sdn.dir/switch.cc.o"
  "CMakeFiles/pvn_sdn.dir/switch.cc.o.d"
  "libpvn_sdn.a"
  "libpvn_sdn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_sdn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
