file(REMOVE_RECURSE
  "libpvn_proto.a"
)
