file(REMOVE_RECURSE
  "CMakeFiles/pvn_proto.dir/dhcp.cc.o"
  "CMakeFiles/pvn_proto.dir/dhcp.cc.o.d"
  "CMakeFiles/pvn_proto.dir/dns.cc.o"
  "CMakeFiles/pvn_proto.dir/dns.cc.o.d"
  "CMakeFiles/pvn_proto.dir/host.cc.o"
  "CMakeFiles/pvn_proto.dir/host.cc.o.d"
  "CMakeFiles/pvn_proto.dir/http.cc.o"
  "CMakeFiles/pvn_proto.dir/http.cc.o.d"
  "CMakeFiles/pvn_proto.dir/l4.cc.o"
  "CMakeFiles/pvn_proto.dir/l4.cc.o.d"
  "CMakeFiles/pvn_proto.dir/tcp.cc.o"
  "CMakeFiles/pvn_proto.dir/tcp.cc.o.d"
  "CMakeFiles/pvn_proto.dir/tls.cc.o"
  "CMakeFiles/pvn_proto.dir/tls.cc.o.d"
  "libpvn_proto.a"
  "libpvn_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
