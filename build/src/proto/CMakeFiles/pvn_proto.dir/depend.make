# Empty dependencies file for pvn_proto.
# This may be replaced when dependencies are built.
