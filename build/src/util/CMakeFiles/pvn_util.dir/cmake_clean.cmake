file(REMOVE_RECURSE
  "CMakeFiles/pvn_util.dir/bytes.cc.o"
  "CMakeFiles/pvn_util.dir/bytes.cc.o.d"
  "CMakeFiles/pvn_util.dir/digest.cc.o"
  "CMakeFiles/pvn_util.dir/digest.cc.o.d"
  "CMakeFiles/pvn_util.dir/log.cc.o"
  "CMakeFiles/pvn_util.dir/log.cc.o.d"
  "CMakeFiles/pvn_util.dir/sim.cc.o"
  "CMakeFiles/pvn_util.dir/sim.cc.o.d"
  "libpvn_util.a"
  "libpvn_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
