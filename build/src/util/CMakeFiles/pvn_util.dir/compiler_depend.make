# Empty compiler generated dependencies file for pvn_util.
# This may be replaced when dependencies are built.
