file(REMOVE_RECURSE
  "libpvn_util.a"
)
