# Empty dependencies file for pvn_audit.
# This may be replaced when dependencies are built.
