file(REMOVE_RECURSE
  "CMakeFiles/pvn_audit.dir/attestation.cc.o"
  "CMakeFiles/pvn_audit.dir/attestation.cc.o.d"
  "CMakeFiles/pvn_audit.dir/measurements.cc.o"
  "CMakeFiles/pvn_audit.dir/measurements.cc.o.d"
  "CMakeFiles/pvn_audit.dir/path_proof.cc.o"
  "CMakeFiles/pvn_audit.dir/path_proof.cc.o.d"
  "CMakeFiles/pvn_audit.dir/reputation.cc.o"
  "CMakeFiles/pvn_audit.dir/reputation.cc.o.d"
  "libpvn_audit.a"
  "libpvn_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
