# Empty compiler generated dependencies file for pvn_audit.
# This may be replaced when dependencies are built.
