
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/audit/attestation.cc" "src/audit/CMakeFiles/pvn_audit.dir/attestation.cc.o" "gcc" "src/audit/CMakeFiles/pvn_audit.dir/attestation.cc.o.d"
  "/root/repo/src/audit/measurements.cc" "src/audit/CMakeFiles/pvn_audit.dir/measurements.cc.o" "gcc" "src/audit/CMakeFiles/pvn_audit.dir/measurements.cc.o.d"
  "/root/repo/src/audit/path_proof.cc" "src/audit/CMakeFiles/pvn_audit.dir/path_proof.cc.o" "gcc" "src/audit/CMakeFiles/pvn_audit.dir/path_proof.cc.o.d"
  "/root/repo/src/audit/reputation.cc" "src/audit/CMakeFiles/pvn_audit.dir/reputation.cc.o" "gcc" "src/audit/CMakeFiles/pvn_audit.dir/reputation.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/proto/CMakeFiles/pvn_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/pvn_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/pvn_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
