file(REMOVE_RECURSE
  "libpvn_audit.a"
)
