file(REMOVE_RECURSE
  "CMakeFiles/pvn_store.dir/pvn_store.cpp.o"
  "CMakeFiles/pvn_store.dir/pvn_store.cpp.o.d"
  "pvn_store"
  "pvn_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pvn_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
