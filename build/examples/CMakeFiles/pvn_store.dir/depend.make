# Empty dependencies file for pvn_store.
# This may be replaced when dependencies are built.
