file(REMOVE_RECURSE
  "CMakeFiles/secure_roaming.dir/secure_roaming.cpp.o"
  "CMakeFiles/secure_roaming.dir/secure_roaming.cpp.o.d"
  "secure_roaming"
  "secure_roaming.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_roaming.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
