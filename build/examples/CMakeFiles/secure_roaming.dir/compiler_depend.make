# Empty compiler generated dependencies file for secure_roaming.
# This may be replaced when dependencies are built.
