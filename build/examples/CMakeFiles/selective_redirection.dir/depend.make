# Empty dependencies file for selective_redirection.
# This may be replaced when dependencies are built.
