file(REMOVE_RECURSE
  "CMakeFiles/selective_redirection.dir/selective_redirection.cpp.o"
  "CMakeFiles/selective_redirection.dir/selective_redirection.cpp.o.d"
  "selective_redirection"
  "selective_redirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selective_redirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
