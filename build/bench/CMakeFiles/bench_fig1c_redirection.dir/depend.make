# Empty dependencies file for bench_fig1c_redirection.
# This may be replaced when dependencies are built.
