file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1c_redirection.dir/bench_fig1c_redirection.cpp.o"
  "CMakeFiles/bench_fig1c_redirection.dir/bench_fig1c_redirection.cpp.o.d"
  "bench_fig1c_redirection"
  "bench_fig1c_redirection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1c_redirection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
