# Empty dependencies file for bench_e4_scalability.
# This may be replaced when dependencies are built.
