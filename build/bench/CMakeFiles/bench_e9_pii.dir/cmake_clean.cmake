file(REMOVE_RECURSE
  "CMakeFiles/bench_e9_pii.dir/bench_e9_pii.cpp.o"
  "CMakeFiles/bench_e9_pii.dir/bench_e9_pii.cpp.o.d"
  "bench_e9_pii"
  "bench_e9_pii.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e9_pii.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
