file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_split_tcp.dir/bench_e6_split_tcp.cpp.o"
  "CMakeFiles/bench_e6_split_tcp.dir/bench_e6_split_tcp.cpp.o.d"
  "bench_e6_split_tcp"
  "bench_e6_split_tcp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_split_tcp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
