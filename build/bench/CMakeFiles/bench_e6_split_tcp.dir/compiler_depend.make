# Empty compiler generated dependencies file for bench_e6_split_tcp.
# This may be replaced when dependencies are built.
