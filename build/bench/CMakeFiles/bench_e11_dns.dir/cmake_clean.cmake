file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_dns.dir/bench_e11_dns.cpp.o"
  "CMakeFiles/bench_e11_dns.dir/bench_e11_dns.cpp.o.d"
  "bench_e11_dns"
  "bench_e11_dns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_dns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
