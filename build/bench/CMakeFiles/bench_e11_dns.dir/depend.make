# Empty dependencies file for bench_e11_dns.
# This may be replaced when dependencies are built.
