# Empty dependencies file for bench_fig1b_deployment.
# This may be replaced when dependencies are built.
