file(REMOVE_RECURSE
  "CMakeFiles/bench_e15_dataplane.dir/bench_e15_dataplane.cpp.o"
  "CMakeFiles/bench_e15_dataplane.dir/bench_e15_dataplane.cpp.o.d"
  "bench_e15_dataplane"
  "bench_e15_dataplane.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e15_dataplane.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
