# Empty dependencies file for bench_e15_dataplane.
# This may be replaced when dependencies are built.
