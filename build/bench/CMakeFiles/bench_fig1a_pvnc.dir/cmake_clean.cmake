file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1a_pvnc.dir/bench_fig1a_pvnc.cpp.o"
  "CMakeFiles/bench_fig1a_pvnc.dir/bench_fig1a_pvnc.cpp.o.d"
  "bench_fig1a_pvnc"
  "bench_fig1a_pvnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1a_pvnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
