file(REMOVE_RECURSE
  "CMakeFiles/bench_e10_tls.dir/bench_e10_tls.cpp.o"
  "CMakeFiles/bench_e10_tls.dir/bench_e10_tls.cpp.o.d"
  "bench_e10_tls"
  "bench_e10_tls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_tls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
