# Empty dependencies file for bench_e5_tunnel_overhead.
# This may be replaced when dependencies are built.
