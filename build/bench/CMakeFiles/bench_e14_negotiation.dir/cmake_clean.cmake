file(REMOVE_RECURSE
  "CMakeFiles/bench_e14_negotiation.dir/bench_e14_negotiation.cpp.o"
  "CMakeFiles/bench_e14_negotiation.dir/bench_e14_negotiation.cpp.o.d"
  "bench_e14_negotiation"
  "bench_e14_negotiation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e14_negotiation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
