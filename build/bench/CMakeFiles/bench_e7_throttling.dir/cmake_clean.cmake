file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_throttling.dir/bench_e7_throttling.cpp.o"
  "CMakeFiles/bench_e7_throttling.dir/bench_e7_throttling.cpp.o.d"
  "bench_e7_throttling"
  "bench_e7_throttling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_throttling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
