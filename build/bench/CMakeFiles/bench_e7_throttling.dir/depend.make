# Empty dependencies file for bench_e7_throttling.
# This may be replaced when dependencies are built.
