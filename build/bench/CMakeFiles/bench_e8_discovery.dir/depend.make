# Empty dependencies file for bench_e8_discovery.
# This may be replaced when dependencies are built.
