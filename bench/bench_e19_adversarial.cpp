// E19 — Adversarial robustness: overload storms and untrusted hosts.
//
// The paper's deployment story (§3.1, §3.3) assumes access networks that may
// be overloaded, mispriced, or actively hostile, and devices that must keep
// working anyway. This bench measures the adversarial-hardening layer at
// population scale:
//
//   1. Flash-crowd deploy storm: a fleet of clients deploys at once against
//      one server. With admission control the server sheds the excess with
//      explicit kBusy NAKs (+ retry-after) and the pending queue stays
//      bounded; the fleet still converges to fully active with nobody
//      stranded.
//   2. Mass lease expiry: every lease in a population expires in the same
//      instant. The amortized sweep drains the backlog in bounded batches
//      instead of stalling the event loop on one giant tick, and reclaims
//      all middlebox memory.
//   3. Malicious host in the auction: a rogue server undercuts every honest
//      offer. A defended fleet (offer vetting + shared reputation) never
//      deploys on it and quarantines it; an undefended fleet hands its
//      deployments to the attacker.
//   4. Byzantine standby: a standby that lies about applied checkpoints is
//      detected by digest cross-check, demoted, and re-mirrored onto a
//      healthy pool — and the deployment still survives a primary crash.
//
// Writes BENCH_adversarial.json (override with PVN_BENCH_JSON) and prints a
// trailing JSON: line; PVN_BENCH_QUICK=1 / --quick shrinks the population.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "testbed/population.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

std::string json_bool(bool b) { return b ? "true" : "false"; }

// --- Scenario 1: flash-crowd deploy storm ------------------------------------

struct StormResult {
  bool defended = false;  // admission control on
  int clients = 0;
  int active = 0;
  int stranded = 0;  // not active at the horizon
  double time_to_all_active_s = -1.0;
  std::uint64_t sheds = 0;
  std::uint64_t busy_nacks = 0;  // fleet-side kBusy count
  std::size_t max_pending_observed = 0;
};

StormResult run_storm(int clients, std::size_t max_pending,
                      std::uint64_t seed) {
  PopulationConfig cfg;
  cfg.clients = clients;
  cfg.seed = seed;
  cfg.lease_duration = seconds(30);
  cfg.max_pending_deploys = max_pending;
  PopulationTestbed tb(cfg);

  ClientConfig base;
  // Shed clients should come back quickly — the bench measures how fast the
  // fleet converges, not how patient the default backoff is.
  base.session.fallback_retry = seconds(1);
  tb.make_agents(base);
  // The whole fleet wakes up inside one offer-collection window: the server
  // sees the deploy burst as a single undifferentiated spike.
  for (auto& agent : tb.agents) {
    agent->start_session(tb.addrs.control_a);
  }

  const SimTime horizon = seconds(30);
  SimTime all_active_at = 0;
  std::size_t max_pending_seen = 0;
  for (SimTime t = 0; t < horizon; t += milliseconds(25)) {
    tb.net.sim().schedule_at(t, [&] {
      max_pending_seen =
          std::max(max_pending_seen, tb.a.server->pending_deploys());
      if (all_active_at == 0 && tb.active_agents() == cfg.clients) {
        all_active_at = tb.net.sim().now();
      }
    });
  }
  tb.net.sim().run_until(horizon);

  StormResult r;
  r.defended = max_pending > 0;
  r.clients = cfg.clients;
  r.active = tb.active_agents();
  r.stranded = cfg.clients - r.active;
  if (all_active_at > 0) r.time_to_all_active_s = to_seconds(all_active_at);
  r.sheds = tb.a.server->deploys_shed();
  for (const auto& agent : tb.agents) r.busy_nacks += agent->busy_nacks();
  r.max_pending_observed = max_pending_seen;
  return r;
}

// --- Scenario 2: mass lease expiry -------------------------------------------

struct ExpiryResult {
  bool defended = false;  // bounded sweep batches
  int clients = 0;
  std::uint64_t expired = 0;
  std::uint64_t sweep_ticks = 0;
  std::uint64_t max_swept_per_tick = 0;
  std::int64_t memory_left = 0;
};

ExpiryResult run_mass_expiry(int clients, std::size_t max_per_sweep,
                             std::uint64_t seed) {
  PopulationConfig cfg;
  cfg.clients = clients;
  cfg.seed = seed;
  cfg.lease_duration = seconds(1);
  cfg.max_expiries_per_sweep = max_per_sweep;
  PopulationTestbed tb(cfg);

  // One-shot deploys, nobody renews: every lease in the population expires
  // in the same window and arrives at the sweeper as one backlog.
  tb.make_agents();
  for (auto& agent : tb.agents) {
    agent->discover_and_deploy(tb.addrs.control_a, [](const DeployOutcome&) {});
  }
  tb.net.sim().run_until(seconds(8));

  ExpiryResult r;
  r.defended = max_per_sweep > 0;
  r.clients = clients;
  r.expired = tb.a.server->leases_expired();
  r.sweep_ticks = tb.a.server->sweep_ticks();
  r.max_swept_per_tick = tb.a.server->max_swept_per_tick();
  r.memory_left = tb.a.mbox->memory_in_use();
  return r;
}

// --- Scenario 3: malicious host in the auction -------------------------------

struct RogueResult {
  bool defended = false;  // vetting + shared reputation on
  int clients = 0;
  int active_honest = 0;       // sessions active on an honest network
  std::uint64_t victims = 0;   // deployments acked by the rogue
  std::uint64_t offers_rejected = 0;
  bool rogue_quarantined = false;
};

RogueResult run_rogue_auction(int clients, bool defended, std::uint64_t seed) {
  PopulationConfig cfg;
  cfg.clients = clients;
  cfg.seed = seed;
  cfg.lease_duration = seconds(30);
  cfg.rogue = true;
  cfg.rogue_mode = RogueMode::kBogusOffers;
  PopulationTestbed tb(cfg);

  ClientConfig base;
  base.extra_servers = {tb.addrs.rogue};  // the rogue joins every auction
  base.vet_offers = defended;
  tb.make_agents(base, /*shared_scoreboard=*/defended);
  for (auto& agent : tb.agents) {
    agent->start_session(tb.addrs.control_a);
  }
  tb.net.sim().run_until(seconds(5));

  RogueResult r;
  r.defended = defended;
  r.clients = clients;
  r.active_honest = 0;
  for (const auto& agent : tb.agents) {
    const bool on_rogue =
        agent->chain_id().rfind("rogue:", 0) == 0;
    if (agent->state() == SessionState::kActive && !on_rogue) {
      ++r.active_honest;
    }
    r.offers_rejected += agent->offers_rejected();
  }
  r.victims = tb.rogue->fake_acks();
  r.rogue_quarantined =
      defended && tb.scoreboard.quarantined("10.0.2.5", tb.net.sim().now());
  return r;
}

// --- Scenario 4: Byzantine standby -------------------------------------------

struct ByzantineResult {
  std::uint64_t bad_state_acks = 0;
  std::uint64_t demoted = 0;
  std::uint64_t remirrored = 0;
  std::uint64_t promotions = 0;
  bool survived_crash = false;  // active session after primary crash
  std::uint64_t chains_lost = 0;
};

ByzantineResult run_byzantine_standby(std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.standby = true;
  cfg.extra_standby_pools = 1;
  cfg.lease_duration = seconds(2);
  cfg.checkpoint_interval = milliseconds(100);
  cfg.seed = seed;
  Testbed tb(cfg);
  // The first-choice standby lies: it acks every checkpoint with the digest
  // of garbage it never applied.
  tb.standby_agent->set_byzantine(true);

  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"classifier", {}});

  ClientConfig ccfg;
  ccfg.constraints.required_modules = {"tls-validator"};
  PvnClient agent(*tb.client, pvnc, ccfg);
  agent.set_fallback(tb.device_tunnel.get());
  agent.start_session(tb.addrs.control);

  // Give the digest cross-check time to catch the liar and re-mirror, then
  // kill the primary: the promotion must come from the healthy pool.
  tb.net.sim().schedule_at(seconds(3), [&] { tb.mbox_host->crash(); });
  tb.net.sim().run_until(seconds(8));

  ByzantineResult r;
  r.bad_state_acks = tb.server->bad_state_acks();
  r.demoted = tb.server->standbys_demoted();
  r.remirrored = tb.server->standbys_remirrored();
  r.promotions = tb.server->standby_promotions();
  r.survived_crash = agent.state() == SessionState::kActive &&
                     tb.server->deployments_active() == 1;
  r.chains_lost = tb.server->chains_lost();
  return r;
}

// --- output helpers ----------------------------------------------------------

void storm_json(FILE* f, const StormResult& r, const char* indent) {
  std::fprintf(f,
               "%s{\"defended\": %s, \"clients\": %d, \"active\": %d, "
               "\"stranded\": %d, \"time_to_all_active_s\": %.3f, "
               "\"sheds\": %llu, \"busy_nacks\": %llu, "
               "\"max_pending_observed\": %llu}",
               indent, json_bool(r.defended).c_str(), r.clients, r.active,
               r.stranded, r.time_to_all_active_s,
               static_cast<unsigned long long>(r.sheds),
               static_cast<unsigned long long>(r.busy_nacks),
               static_cast<unsigned long long>(r.max_pending_observed));
}

void rogue_json(FILE* f, const RogueResult& r, const char* indent) {
  std::fprintf(f,
               "%s{\"defended\": %s, \"clients\": %d, \"active_honest\": %d, "
               "\"victims\": %llu, \"offers_rejected\": %llu, "
               "\"rogue_quarantined\": %s}",
               indent, json_bool(r.defended).c_str(), r.clients,
               r.active_honest, static_cast<unsigned long long>(r.victims),
               static_cast<unsigned long long>(r.offers_rejected),
               json_bool(r.rogue_quarantined).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bool quick = false;
  const char* env_quick = std::getenv("PVN_BENCH_QUICK");
  if (env_quick != nullptr && std::strcmp(env_quick, "0") != 0) quick = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::title("E19 adversarial robustness: storms + untrusted hosts",
               "admission control sheds flash crowds without stranding "
               "anyone, mass expiry drains in bounded batches, offer vetting "
               "+ shared reputation defeat a rogue auction host, and a "
               "Byzantine standby is demoted without losing the deployment");

  const std::uint64_t seed = 1;
  const int storm_clients = quick ? 12 : 32;
  const std::size_t storm_cap = 4;
  const int expiry_clients = quick ? 24 : 60;
  const std::size_t expiry_cap = 8;
  const int rogue_clients = quick ? 4 : 8;

  // --- 1. flash-crowd deploy storm ---------------------------------------
  bench::header({"admission", "clients", "active", "time-to-active s",
                 "sheds", "max pending"});
  const StormResult storm_def = run_storm(storm_clients, storm_cap, seed);
  const StormResult storm_undef = run_storm(storm_clients, 0, seed);
  for (const StormResult& r : {storm_def, storm_undef}) {
    bench::row(r.defended ? "bounded queue" : "unbounded", r.clients, r.active,
               r.time_to_all_active_s, static_cast<std::uint64_t>(r.sheds),
               static_cast<std::uint64_t>(r.max_pending_observed));
  }

  // Determinism gate: the same seed replays the exact same storm.
  const StormResult storm_replay = run_storm(storm_clients, storm_cap, seed);
  const bool deterministic =
      storm_replay.active == storm_def.active &&
      storm_replay.time_to_all_active_s == storm_def.time_to_all_active_s &&
      storm_replay.sheds == storm_def.sheds &&
      storm_replay.busy_nacks == storm_def.busy_nacks;

  // --- 2. mass lease expiry ----------------------------------------------
  std::printf("\n");
  bench::header({"sweep", "clients", "expired", "sweep ticks",
                 "max batch", "mem left"});
  const ExpiryResult exp_def = run_mass_expiry(expiry_clients, expiry_cap, seed);
  const ExpiryResult exp_undef = run_mass_expiry(expiry_clients, 0, seed);
  for (const ExpiryResult& r : {exp_def, exp_undef}) {
    bench::row(r.defended ? "bounded batches" : "unbounded", r.clients,
               static_cast<std::uint64_t>(r.expired),
               static_cast<std::uint64_t>(r.sweep_ticks),
               static_cast<std::uint64_t>(r.max_swept_per_tick),
               static_cast<std::uint64_t>(r.memory_left));
  }

  // --- 3. malicious host in the auction ----------------------------------
  std::printf("\n");
  bench::header({"fleet", "clients", "active honest", "victims",
                 "vetted out", "quarantined"});
  const RogueResult rog_def = run_rogue_auction(rogue_clients, true, seed);
  const RogueResult rog_undef = run_rogue_auction(rogue_clients, false, seed);
  for (const RogueResult& r : {rog_def, rog_undef}) {
    bench::row(r.defended ? "defended" : "undefended", r.clients,
               r.active_honest, static_cast<std::uint64_t>(r.victims),
               static_cast<std::uint64_t>(r.offers_rejected),
               r.rogue_quarantined ? "yes" : "no");
  }

  // --- 4. Byzantine standby ----------------------------------------------
  std::printf("\n");
  bench::header({"metric", "value"});
  const ByzantineResult byz = run_byzantine_standby(seed);
  bench::row("bad state acks", static_cast<std::uint64_t>(byz.bad_state_acks));
  bench::row("standbys demoted", static_cast<std::uint64_t>(byz.demoted));
  bench::row("re-mirrored", static_cast<std::uint64_t>(byz.remirrored));
  bench::row("promotions", static_cast<std::uint64_t>(byz.promotions));
  bench::row("survived crash", byz.survived_crash ? "yes" : "NO");
  bench::row("chains lost", static_cast<std::uint64_t>(byz.chains_lost));

  // --- acceptance gates ----------------------------------------------------
  // Admission control must shed visibly, bound the queue, and still get the
  // whole fleet active.
  const bool storm_ok = storm_def.stranded == 0 && storm_def.sheds > 0 &&
                        storm_def.busy_nacks > 0 &&
                        storm_def.max_pending_observed <= storm_cap &&
                        storm_def.time_to_all_active_s > 0.0;
  const bool expiry_ok =
      exp_def.expired == static_cast<std::uint64_t>(exp_def.clients) &&
      exp_def.max_swept_per_tick <= expiry_cap &&
      exp_def.sweep_ticks >= exp_def.expired / expiry_cap &&
      exp_def.memory_left == 0;
  // The defended fleet never touches the rogue; the undefended fleet proves
  // the attack is real by actually falling for it.
  const bool rogue_ok = rog_def.victims == 0 &&
                        rog_def.active_honest == rog_def.clients &&
                        rog_def.rogue_quarantined && rog_undef.victims > 0;
  const bool byz_ok = byz.bad_state_acks >= 3 && byz.demoted == 1 &&
                      byz.remirrored >= 1 && byz.promotions == 1 &&
                      byz.survived_crash && byz.chains_lost == 0;

  const char* json_path = std::getenv("PVN_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_adversarial.json";
  FILE* f = std::fopen(json_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"e19_adversarial\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", json_bool(quick).c_str());
    std::fprintf(f, "  \"storm\": [\n");
    storm_json(f, storm_def, "    ");
    std::fprintf(f, ",\n");
    storm_json(f, storm_undef, "    ");
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f,
                 "  \"mass_expiry\": {\"clients\": %d, \"expired\": %llu, "
                 "\"sweep_ticks\": %llu, \"max_swept_per_tick\": %llu, "
                 "\"cap\": %llu, \"memory_left\": %lld},\n",
                 exp_def.clients,
                 static_cast<unsigned long long>(exp_def.expired),
                 static_cast<unsigned long long>(exp_def.sweep_ticks),
                 static_cast<unsigned long long>(exp_def.max_swept_per_tick),
                 static_cast<unsigned long long>(expiry_cap),
                 static_cast<long long>(exp_def.memory_left));
    std::fprintf(f, "  \"rogue\": [\n");
    rogue_json(f, rog_def, "    ");
    std::fprintf(f, ",\n");
    rogue_json(f, rog_undef, "    ");
    std::fprintf(f, "\n  ],\n");
    std::fprintf(f,
                 "  \"byzantine\": {\"bad_state_acks\": %llu, \"demoted\": "
                 "%llu, \"remirrored\": %llu, \"promotions\": %llu, "
                 "\"survived_crash\": %s, \"chains_lost\": %llu},\n",
                 static_cast<unsigned long long>(byz.bad_state_acks),
                 static_cast<unsigned long long>(byz.demoted),
                 static_cast<unsigned long long>(byz.remirrored),
                 static_cast<unsigned long long>(byz.promotions),
                 json_bool(byz.survived_crash).c_str(),
                 static_cast<unsigned long long>(byz.chains_lost));
    std::fprintf(f, "  \"storm_ok\": %s,\n", json_bool(storm_ok).c_str());
    std::fprintf(f, "  \"expiry_ok\": %s,\n", json_bool(expiry_ok).c_str());
    std::fprintf(f, "  \"rogue_ok\": %s,\n", json_bool(rogue_ok).c_str());
    std::fprintf(f, "  \"byzantine_ok\": %s,\n", json_bool(byz_ok).c_str());
    std::fprintf(f, "  \"deterministic\": %s\n",
                 json_bool(deterministic).c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  std::printf("\nJSON: {\"experiment\":\"e19_adversarial\","
              "\"storm_time_to_active_s\":%.3f,\"storm_sheds\":%llu,"
              "\"expiry_max_batch\":%llu,\"rogue_victims_defended\":%llu,"
              "\"rogue_victims_undefended\":%llu,\"storm_ok\":%s,"
              "\"expiry_ok\":%s,\"rogue_ok\":%s,\"byzantine_ok\":%s,"
              "\"deterministic\":%s}\n",
              storm_def.time_to_all_active_s,
              static_cast<unsigned long long>(storm_def.sheds),
              static_cast<unsigned long long>(exp_def.max_swept_per_tick),
              static_cast<unsigned long long>(rog_def.victims),
              static_cast<unsigned long long>(rog_undef.victims),
              json_bool(storm_ok).c_str(), json_bool(expiry_ok).c_str(),
              json_bool(rogue_ok).c_str(), json_bool(byz_ok).c_str(),
              json_bool(deterministic).c_str());

  // Acceptance gates: fail loudly so CI catches a robustness regression.
  return (storm_ok && expiry_ok && rogue_ok && byz_ok && deterministic) ? 0
                                                                        : 1;
}
