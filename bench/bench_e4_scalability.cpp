// E4 — Scalability and overhead (paper §3.3, citing ClickOS [24]).
//
// Claim: middlebox instances can be "instantiated in 30 milliseconds, add
// only 45 microseconds of delay, and consume only 6 MB of memory", so a PVN
// per subscriber is feasible.
//
// Part 1 reproduces the three per-instance numbers from our runtime model.
// Part 2 scales subscribers 1 -> 1000 and reports deployment latency, switch
// rule count, and middlebox memory — the "serve potentially large numbers of
// subscribers" feasibility argument.
#include "common.h"
#include "mbox/inline_modules.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

void part1_instance_costs() {
  bench::title("E4.1 per-instance costs",
               "30 ms instantiation, 45 us per-packet delay, 6 MB memory [24]");
  Simulator sim;
  MboxHost host(sim);

  SimTime ready_at = -1;
  host.instantiate(
      std::make_unique<Classifier>(std::vector<Classifier::Rule>{}),
      [&](Middlebox* m) {
        if (m != nullptr) ready_at = sim.now();
      });
  sim.run();

  Chain& chain = host.create_chain("probe");
  SimDuration delay = 0;
  Network net;
  Packet pkt = net.make_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                               IpProto::kUdp, Bytes(100, 0));
  chain.process(std::move(pkt), 0, delay);

  bench::header({"metric", "measured", "paper"});
  bench::row("instantiation (ms)", to_milliseconds(ready_at), 30.0);
  bench::row("per-packet delay (us)", to_microseconds(delay), 45.0);
  bench::row("memory per instance (MB)",
             static_cast<double>(host.memory_in_use()) / (1024 * 1024), 6.0);
}

void part2_subscriber_scaling() {
  bench::title("E4.2 subscriber scaling",
               "PVN state must scale to large numbers of subscribers with "
               "negligible overhead");
  bench::header({"subscribers", "mean deploy (ms)", "switch rules",
                 "mbox memory (MB)", "mbox instances"});

  for (const int n : {1, 10, 100, 1000}) {
    TestbedConfig cfg;
    Testbed tb(cfg);
    // Generous memory so 1000 x 4 modules fit.
    // (Default budget is 4 GiB = ~680 instances of 6 MB; resize via a
    // bigger host for the large runs.)
    MboxHostConfig mcfg;
    mcfg.memory_budget = 64LL * 1024 * 1024 * 1024;
    auto big_host = std::make_unique<MboxHost>(tb.net.sim(), mcfg);
    ServerConfig scfg;
    scfg.switch_name = Testbed::kSwitchName;
    tb.server.reset();  // retire the default server first (unbinds the port)
    auto server = std::make_unique<DeploymentServer>(
        *tb.control, *tb.store, *big_host, *tb.controller, *tb.ledger, scfg);

    SimDuration total_elapsed = 0;
    int deployed = 0;
    for (int i = 0; i < n; ++i) {
      Pvnc pvnc = tb.standard_pvnc("device-" + std::to_string(i));
      const DeployOutcome out = tb.deploy(pvnc);
      if (out.ok) {
        ++deployed;
        total_elapsed += out.elapsed;
      }
    }
    bench::row(n,
               deployed > 0 ? to_milliseconds(total_elapsed / deployed) : 0.0,
               static_cast<std::uint64_t>(tb.access_sw->table(0).size() +
                                          tb.access_sw->table(1).size()),
               static_cast<double>(big_host->memory_in_use()) / (1024 * 1024),
               big_host->instances());
  }
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  part1_instance_costs();
  part2_subscriber_scaling();
  return 0;
}
