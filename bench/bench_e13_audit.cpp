// E13 — Auditing a dishonest provider (paper §3.1 "Auditor", §3.3).
//
// Claim: "trusted hardware/software stacks provide client-verifiable
// attestations that the specified configurations and middleboxes were
// installed and executed", and "active network measurements reliably
// identify policy violations ... used as evidence in billing disputes and
// to inform reputations."
//
// For each cheating strategy we report which auditor test catches it, the
// dispute outcome, and the provider's reputation after the audit round.
#include "audit/attestation.h"
#include "tunnel/locator.h"
#include "audit/reputation.h"
#include "common.h"
#include "mbox/inline_modules.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

struct AuditResult {
  bool attestation_caught = false;
  bool differentiation_caught = false;
  bool modification_caught = false;
  bool inflation_caught = false;
  bool caught() const {
    return attestation_caught || differentiation_caught ||
           modification_caught || inflation_caught;
  }
};

enum class Cheat {
  kHonest,
  kSkipModule,     // charges for tls-validator but never runs it
  kShapeVideo,     // covertly throttles the video class
  kModifyContent,  // injects/modifies HTTP payloads
  kInflatePath,    // routes traffic the long way round
};

AuditResult audit(Cheat cheat) {
  Testbed tb;
  AuditResult result;

  if (cheat == Cheat::kSkipModule) {
    tb.server->cheat_skip_module("tls-validator");
  }
  const Pvnc pvnc = tb.standard_pvnc();
  const DeployOutcome out = tb.deploy(pvnc);
  if (!out.ok) std::printf("deploy failed: %s\n", out.failure.c_str());

  // Baseline RTT measured right after deployment, before any path games.
  SimDuration base_rtt = 0;
  {
    install_echo_responder(*tb.web);
    RemotePvnLocator locator(*tb.client);
    locator.probe({tb.addrs.web}, [&](const std::vector<ProbeResult>& r) {
      if (!r.empty() && r[0].reachable) base_rtt = r[0].rtt;
    });
    tb.net.sim().run();
  }

  // Apply the runtime cheats after deployment.
  if (cheat == Cheat::kShapeVideo) {
    tb.access_sw->add_meter("covert", Rate::kbps(1500), 20000);
    FlowRule shape;
    shape.priority = 5000;  // the ISP controls its own switch
    shape.match.tos = 0x20;
    shape.cookie = "isp-cheat";
    shape.actions.push_back(ActMeter{"covert"});
    shape.actions.push_back(ActOutput{1});
    tb.access_sw->table(0).add(shape);
  }
  if (cheat == Cheat::kInflatePath) {
    tb.access_link->set_latency(milliseconds(120));  // 15x the honest 8 ms
  }

  // --- Test 1: attestation of the deployed chain ------------------------------
  {
    Attester enclave(4242);
    KeyRegistry device_trust;
    device_trust.trust(enclave.key());
    // What the provider *actually* deployed:
    std::vector<std::string> deployed;
    if (Chain* chain = tb.mbox_host->chain(out.chain_id)) {
      for (const Middlebox* m : chain->modules()) deployed.push_back(m->name());
    }
    const Digest actual = config_digest(deployed, {});
    const Digest expected = config_digest(pvnc.module_names(), {});
    const AttestationQuote quote = enclave.quote(7, actual, tb.net.sim().now());
    result.attestation_caught =
        verify_quote(quote, device_trust, enclave.key().public_key(), 7,
                     expected) != AttestationVerdict::kOk;
  }

  // --- Test 2: differentiation probe ------------------------------------------
  {
    RateProbe control(*tb.client, *tb.web, 9001);
    RateProbe marked(*tb.client, *tb.web, 9002);
    double c = 0, m = 0;
    control.run(Rate::mbps(10), seconds(2), 0, "application/octet",
                [&](const RateProbe::Result& r) { c = r.achieved_mbps; });
    tb.net.sim().run();
    marked.run(Rate::mbps(10), seconds(2), 0x20, "video/mp4",
               [&](const RateProbe::Result& r) { m = r.achieved_mbps; });
    tb.net.sim().run();
    result.differentiation_caught = judge_differentiation(c, m).differentiated;
  }

  // --- Test 3: content modification -------------------------------------------
  {
    if (cheat == Cheat::kModifyContent) {
      // ISP flips bytes in responses toward the client.
      static class Tamperer : public Middlebox {
       public:
        const std::string& name() const override { return name_; }
        Verdict process(Packet& pkt, MboxContext&) override {
          if (pkt.ip.proto == IpProto::kTcp &&
              pkt.l4.size() > TcpHeader::kWireSize + 60) {
            pkt.l4[TcpHeader::kWireSize + 55] ^= 0x2;
          }
          return Verdict::kForward;
        }
        std::string name_ = "tamperer";
      } tamperer;
      static Chain isp_chain("isp-tamper", 0);
      static bool appended = false;
      if (!appended) {
        isp_chain.append(&tamperer);
        appended = true;
      }
      tb.access_sw->register_processor("isp-tamper", &isp_chain);
      FlowRule divert;
      divert.priority = 4000;
      divert.match.dst = Prefix{tb.addrs.client, 32};
      divert.match.proto = IpProto::kTcp;
      divert.cookie = "isp-cheat";
      divert.actions.push_back(ActMbox{"isp-tamper"});
      divert.actions.push_back(ActOutput{0});
      tb.access_sw->table(0).add(divert);
    }
    // Learn the honest digest via the control-plane path... here we use the
    // out-of-band value (digest of the known body).
    HttpRequest probe_req;
    probe_req.path = "/bytes/8000";
    const Digest expected = digest_of(synthesize_response(probe_req).body);
    ContentCheck check(*tb.client);
    bool modified = false;
    check.run(tb.addrs.web, 80, "/bytes/8000", expected,
              [&](bool m, Digest) { modified = m; });
    tb.net.sim().run_until(tb.net.sim().now() + seconds(60));
    result.modification_caught = modified;
  }

  // --- Test 4: path inflation ----------------------------------------------------
  {
    RemotePvnLocator locator(*tb.client);
    SimDuration rtt = 0;
    locator.probe({tb.addrs.web}, [&](const std::vector<ProbeResult>& r) {
      if (!r.empty() && r[0].reachable) rtt = r[0].rtt;
    });
    tb.net.sim().run();
    result.inflation_caught = judge_path_inflation(rtt, base_rtt).inflated;
  }

  return result;
}

const char* yn(bool b) { return b ? "CAUGHT" : "-"; }

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E13 auditor vs cheating strategies",
               "attestation + active measurements catch every cheat; "
               "evidence feeds disputes and reputation (§3.1, §3.3)");
  bench::header({"ISP strategy", "attestation", "differentiation",
                 "content-mod", "path-inflation", "reputation"});

  ReputationSystem reputation(0.3);
  Ledger ledger;
  const struct {
    Cheat cheat;
    const char* name;
  } cases[] = {
      {Cheat::kHonest, "honest"},
      {Cheat::kSkipModule, "skip paid module"},
      {Cheat::kShapeVideo, "covert video shaping"},
      {Cheat::kModifyContent, "content injection"},
      {Cheat::kInflatePath, "path inflation"},
  };

  for (const auto& c : cases) {
    const AuditResult r = audit(c.cheat);
    const std::string provider = c.name;
    if (r.caught()) {
      reputation.report_violation(provider, 0.5);
      ledger.charge(0, "alice", provider, 1.0, "deployment");
      const std::size_t d =
          ledger.file_dispute(0, "alice", provider, 1.0, provider);
      ledger.grant_refund(d);
    } else {
      reputation.report_clean_audit(provider);
    }
    bench::row(c.name, yn(r.attestation_caught), yn(r.differentiation_caught),
               yn(r.modification_caught), yn(r.inflation_caught),
               reputation.score(provider));
  }
  std::printf("\nrefunds granted via disputes: %zu\n",
              ledger.disputes().size());
  return 0;
}
