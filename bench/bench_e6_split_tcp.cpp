// E6 — Split-TCP proxy benefit (paper §2.2, citing [11, 17, 44]).
//
// Claim: "splitting TCP connections should offer better client-perceived
// performance than direct connections if the proxy is on the same path ...
// [but] the impact of such proxies is mixed: devices with better link
// quality benefited most from proxying, and the rest could receive worse
// performance due to proxying overheads."
//
// We download 500 KB directly vs through a split-TCP proxy placed at the
// access/wide-area boundary, sweeping wide-area RTT and last-mile loss, and
// report both completion times and the speedup factor (>1 = proxy wins).
#include "common.h"
#include "mbox/proxies.h"
#include "netsim/router.h"
#include "proto/host.h"

using namespace pvn;

namespace {

struct PathParams {
  SimDuration lastmile_latency;
  double lastmile_loss;
  SimDuration wan_latency;
};

// client -(lastmile)- edge router -(wan)- server; proxy hangs off the edge.
SimDuration download(const PathParams& p, bool via_proxy,
                     std::uint64_t seed) {
  Network net(seed);
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& edge = net.add_node<Router>("edge");
  auto& server = net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
  auto& proxy = net.add_node<SplitTcpProxy>("proxy", Ipv4Addr(10, 0, 0, 10),
                                            server.addr(), Port{80},
                                            Port{8080});
  LinkParams lastmile;
  lastmile.rate = Rate::mbps(30);
  lastmile.latency = p.lastmile_latency;
  lastmile.loss = p.lastmile_loss;
  LinkParams wan;
  wan.rate = Rate::mbps(200);
  wan.latency = p.wan_latency;
  LinkParams proxy_link;
  proxy_link.rate = Rate::mbps(1000);
  proxy_link.latency = microseconds(200);

  net.connect(client, edge, lastmile);   // edge p0
  net.connect(edge, server, wan);        // edge p1
  net.connect(edge, proxy, proxy_link);  // edge p2
  edge.add_route(*Prefix::parse("10.0.0.2"), 0);
  edge.add_route(*Prefix::parse("10.0.0.10"), 2);
  edge.add_route(*Prefix::parse("0.0.0.0/0"), 1);

  HttpServer http_server(server);
  HttpClient http(client);
  SimDuration total = 0;
  const Ipv4Addr target = via_proxy ? proxy.addr() : server.addr();
  const Port port = via_proxy ? 8080 : 80;
  http.fetch(target, port, "/bytes/500000",
             [&](const HttpResponse&, const FetchTiming& t) {
               if (t.ok) total = t.total();
             });
  net.sim().run_until(seconds(600));
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E6 split-TCP proxy vs direct",
               "split connections win when RTT/loss dominate; overheads can "
               "make them a wash (or worse) on clean short paths");
  bench::header({"wan RTT (ms)", "lastmile loss", "direct (ms)", "proxy (ms)",
                 "speedup (x)"});
  const SimDuration wans[] = {milliseconds(10), milliseconds(40),
                              milliseconds(100), milliseconds(200)};
  const double losses[] = {0.0, 0.01, 0.03};

  for (const SimDuration wan : wans) {
    for (const double loss : losses) {
      PathParams p;
      p.lastmile_latency = milliseconds(8);
      p.lastmile_loss = loss;
      p.wan_latency = wan;
      // Average 3 seeds to tame loss randomness.
      double direct_ms = 0, proxy_ms = 0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        direct_ms += to_milliseconds(download(p, false, seed)) / 3.0;
        proxy_ms += to_milliseconds(download(p, true, seed)) / 3.0;
      }
      bench::row(to_milliseconds(2 * wan), loss, direct_ms, proxy_ms,
                 proxy_ms > 0 ? direct_ms / proxy_ms : 0.0);
    }
  }
  return 0;
}
