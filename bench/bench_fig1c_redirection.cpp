// Fig. 1c — Selective redirection: "a PVN can support selective redirection
// to cloud, home, or other execution environments depending on the needs of
// the configured services" — e.g. only the flows needing trusted TLS
// interception tunnel to the cloud; everything else stays in-network.
//
// Configurations compared on a mixed workload (port-80 web + port-443
// sensitive flows): all-in-network, selective tunnel (443 only), and
// full-tunnel VPN. Metric: per-class round-trip latency.
#include "common.h"
#include "netsim/router.h"
#include "proto/host.h"
#include "tunnel/vpn.h"

using namespace pvn;

namespace {

enum class Mode { kInNetwork, kSelective, kFullTunnel };

struct Latencies {
  SimDuration web = 0;
  SimDuration sensitive = 0;
};

Latencies measure(Mode mode) {
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& ingress = net.add_node<TunnelIngress>(
      "ingress", Ipv4Addr(10, 0, 0, 1), Ipv4Addr(203, 0, 113, 5),
      to_bytes("key"));
  auto& wan = net.add_node<Router>("wan");
  auto& gateway = net.add_node<VpnGateway>("gw", Ipv4Addr(203, 0, 113, 5),
                                           to_bytes("key"));
  auto& server = net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
  LinkParams access;
  access.latency = milliseconds(8);
  LinkParams core;
  core.latency = milliseconds(10);
  core.rate = Rate::mbps(1000);
  LinkParams cloud = core;
  cloud.latency = milliseconds(45);  // the cloud detour
  net.connect(client, ingress, access);
  net.connect(ingress, wan, core);
  net.connect(wan, gateway, cloud);
  net.connect(wan, server, core);
  wan.add_route(*Prefix::parse("10.0.0.0/24"), 0);
  wan.add_route(*Prefix::parse("203.0.113.5"), 1);
  wan.add_route(*Prefix::parse("0.0.0.0/0"), 2);

  switch (mode) {
    case Mode::kInNetwork:
      ingress.set_selector([](const Packet&) { return false; });
      break;
    case Mode::kSelective:
      ingress.set_selector([](const Packet& pkt) {
        Port sp = 0, dp = 0;
        if (!peek_ports(static_cast<std::uint8_t>(pkt.ip.proto), pkt.l4, sp,
                        dp)) {
          return false;
        }
        return dp == 443 || sp == 443;
      });
      break;
    case Mode::kFullTunnel:
      ingress.set_selector([](const Packet&) { return true; });
      break;
  }

  // UDP request/response echo per port to measure pure path RTT.
  server.bind_udp(80, [&server](Ipv4Addr src, Port sport, Port dport,
                                const Bytes& b) {
    server.send_udp(src, dport, sport, b);
  });
  server.bind_udp(443, [&server](Ipv4Addr src, Port sport, Port dport,
                                 const Bytes& b) {
    server.send_udp(src, dport, sport, b);
  });

  Latencies lat;
  SimTime sent80 = 0, sent443 = 0;
  client.bind_udp(7080, [&](Ipv4Addr, Port, Port, const Bytes&) {
    lat.web = client.sim().now() - sent80;
  });
  client.bind_udp(7443, [&](Ipv4Addr, Port, Port, const Bytes&) {
    lat.sensitive = client.sim().now() - sent443;
  });
  sent80 = net.sim().now();
  client.send_udp(server.addr(), 7080, 80, Bytes(64, 1));
  sent443 = net.sim().now();
  client.send_udp(server.addr(), 7443, 443, Bytes(64, 2));
  net.sim().run();
  return lat;
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("Fig1c selective redirection",
               "only flows needing the trusted environment pay the cloud "
               "detour; a full-tunnel VPN taxes everything");
  bench::header({"configuration", "web RTT (ms)", "sensitive RTT (ms)"});
  const Latencies in_network = measure(Mode::kInNetwork);
  bench::row("all in-network", to_milliseconds(in_network.web),
             to_milliseconds(in_network.sensitive));
  const Latencies selective = measure(Mode::kSelective);
  bench::row("selective tunnel (443)", to_milliseconds(selective.web),
             to_milliseconds(selective.sensitive));
  const Latencies full = measure(Mode::kFullTunnel);
  bench::row("full-tunnel VPN", to_milliseconds(full.web),
             to_milliseconds(full.sensitive));
  return 0;
}
