// Shared table-printing helpers for the experiment benches.
//
// Most experiments are simulation studies (run a scenario, report a table
// in the shape the paper argues), so each bench prints labelled rows;
// bench_e15_dataplane additionally uses google-benchmark for the
// microbenchmark-shaped measurements.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "telemetry/export.h"

namespace pvn::bench {

// Telemetry export destination: --telemetry-out=<dir> on the command line,
// or the PVN_TELEMETRY_OUT environment variable. Empty = disabled.
inline std::string telemetry_out_dir(int argc, char** argv) {
  constexpr const char kFlag[] = "--telemetry-out=";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kFlag, sizeof(kFlag) - 1) == 0) {
      return argv[i] + (sizeof(kFlag) - 1);
    }
  }
  const char* env = std::getenv("PVN_TELEMETRY_OUT");
  return env != nullptr ? env : "";
}

// RAII guard every bench constructs at the top of main(): when a telemetry
// output directory was requested, the destructor dumps the global metrics
// registry and span ring there (metrics.prom, metrics.json,
// trace_events.json — the latter loads in chrome://tracing / Perfetto).
class TelemetryScope {
 public:
  TelemetryScope(int argc, char** argv)
      : dir_(telemetry_out_dir(argc, argv)) {}
  ~TelemetryScope() {
    if (dir_.empty()) return;
    telemetry::export_telemetry(dir_);
    std::printf("telemetry written to %s\n", dir_.c_str());
  }
  TelemetryScope(const TelemetryScope&) = delete;
  TelemetryScope& operator=(const TelemetryScope&) = delete;

  const std::string& dir() const { return dir_; }
  bool enabled() const { return !dir_.empty(); }

 private:
  std::string dir_;
};

inline void title(const std::string& experiment, const std::string& claim) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

inline void header(const std::vector<std::string>& cols) {
  for (const std::string& c : cols) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-22s", "------");
  std::printf("\n");
}

inline void cell(const std::string& v) { std::printf("%-22s", v.c_str()); }
inline void cell(double v) { std::printf("%-22.3f", v); }
inline void cell(int v) { std::printf("%-22d", v); }
inline void cell(std::uint64_t v) {
  std::printf("%-22llu", static_cast<unsigned long long>(v));
}

template <typename... Ts>
void row(Ts... vs) {
  (cell(vs), ...);
  std::printf("\n");
}

}  // namespace pvn::bench
