// Shared table-printing helpers for the experiment benches.
//
// Most experiments are simulation studies (run a scenario, report a table
// in the shape the paper argues), so each bench prints labelled rows;
// bench_e15_dataplane additionally uses google-benchmark for the
// microbenchmark-shaped measurements.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace pvn::bench {

inline void title(const std::string& experiment, const std::string& claim) {
  std::printf("\n=== %s ===\n", experiment.c_str());
  std::printf("paper claim: %s\n\n", claim.c_str());
}

inline void header(const std::vector<std::string>& cols) {
  for (const std::string& c : cols) std::printf("%-22s", c.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < cols.size(); ++i) std::printf("%-22s", "------");
  std::printf("\n");
}

inline void cell(const std::string& v) { std::printf("%-22s", v.c_str()); }
inline void cell(double v) { std::printf("%-22.3f", v); }
inline void cell(int v) { std::printf("%-22d", v); }
inline void cell(std::uint64_t v) {
  std::printf("%-22llu", static_cast<unsigned long long>(v));
}

template <typename... Ts>
void row(Ts... vs) {
  (cell(vs), ...);
  std::printf("\n");
}

}  // namespace pvn::bench
