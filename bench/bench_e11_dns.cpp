// E11 — DNS validation (paper §4).
//
// Claim: "Even if the ISP does not support DNSSEC, a PVN DNSSEC module can
// provide secure DNS resolution on behalf of the user. Further, when
// accessing name entries that are not secured, the PVN can use a collection
// of open resolvers to ensure clients are not maliciously sent to invalid
// addresses."
//
// Attack: the access network's resolver forges bank.example. Defences:
// none, PVN dns-validator (DNSSEC-lite + pins), and client-side 3-resolver
// quorum. We report where the client ends up.
#include "common.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

const char* where(const DnsResult& r, Ipv4Addr truth, Ipv4Addr forged) {
  if (r.status == DnsResult::Status::kTimeout) return "blocked (no answer)";
  if (r.status == DnsResult::Status::kBogus) return "blocked (bogus sig)";
  if (r.status != DnsResult::Status::kOk) return "blocked";
  if (r.addr == truth) return "TRUE address";
  if (r.addr == forged) return "POISONED";
  return "other";
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E11 DNS forgery defences",
               "a forging resolver poisons unprotected clients; the PVN DNS "
               "module (signatures + pins) and resolver quorum both stop it");
  const Ipv4Addr truth(93, 184, 216, 34);
  const Ipv4Addr forged_addr(66, 6, 6, 6);
  bench::header({"defence", "signed name", "unsigned name"});

  // --- no defence: forged resolver wins on both ------------------------------
  {
    Testbed tb;
    tb.dns_server->add_record("bank.example", truth);  // signed (zone key)
    tb.dns_server->forge("bank.example", forged_addr);
    tb.dns_server->forge("shop.example", forged_addr);

    StubResolver stub(*tb.client, {tb.addrs.dns});  // no validation
    DnsResult signed_r, unsigned_r;
    stub.resolve("bank.example", [&](const DnsResult& r) { signed_r = r; });
    tb.net.sim().run();
    stub.resolve("shop.example", [&](const DnsResult& r) { unsigned_r = r; });
    tb.net.sim().run();
    bench::row("none", where(signed_r, truth, forged_addr),
               where(unsigned_r, truth, forged_addr));
  }

  // --- PVN dns-validator: drops forged answers in-network --------------------
  {
    Testbed tb;
    tb.dns_server->add_record("bank.example", truth);
    tb.dns_server->forge("bank.example", forged_addr);
    // Unsigned name pinned via the PVN store environment.
    // (web.example is pinned to the true web address in the testbed.)
    tb.dns_server->forge("web.example", forged_addr);

    Pvnc pvnc;
    pvnc.name = "alice-phone";
    pvnc.chain.push_back(PvncModule{"dns-validator", {{"mode", "block"}}});
    const DeployOutcome out = tb.deploy(pvnc);
    if (!out.ok) std::printf("deploy failed: %s\n", out.failure.c_str());

    StubResolver stub(*tb.client, {tb.addrs.dns});
    DnsResult signed_r, unsigned_r;
    stub.resolve("bank.example", [&](const DnsResult& r) { signed_r = r; },
                 1, seconds(1));
    tb.net.sim().run_until(tb.net.sim().now() + seconds(10));
    stub.resolve("web.example", [&](const DnsResult& r) { unsigned_r = r; },
                 1, seconds(1));
    tb.net.sim().run_until(tb.net.sim().now() + seconds(10));
    bench::row("PVN dns-validator", where(signed_r, truth, forged_addr),
               where(unsigned_r, truth, forged_addr));
  }

  // --- client-side quorum over 3 resolvers -----------------------------------
  {
    Testbed tb;
    // Two extra honest open resolvers reachable via the WAN.
    auto& open1 = tb.net.add_node<Host>("open1", Ipv4Addr(9, 9, 9, 9));
    auto& open2 = tb.net.add_node<Host>("open2", Ipv4Addr(1, 1, 1, 1));
    tb.net.connect(*tb.wan, open1, LinkParams{});
    tb.net.connect(*tb.wan, open2, LinkParams{});
    tb.wan->add_route(Prefix{open1.addr(), 32}, 7);
    tb.wan->add_route(Prefix{open2.addr(), 32}, 8);
    DnsServer open_dns1(open1);
    DnsServer open_dns2(open2);
    open_dns1.add_record("shop.example", truth);
    open_dns2.add_record("shop.example", truth);
    tb.dns_server->add_record("shop.example", truth);
    tb.dns_server->forge("shop.example", forged_addr);

    StubResolver stub(*tb.client,
                      {tb.addrs.dns, open1.addr(), open2.addr()});
    DnsResult quorum_r;
    stub.resolve("shop.example", [&](const DnsResult& r) { quorum_r = r; },
                 /*quorum=*/3);
    tb.net.sim().run();
    bench::row("3-resolver quorum", "n/a",
               where(quorum_r, truth, forged_addr));
  }
  return 0;
}
