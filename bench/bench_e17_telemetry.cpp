// E17 — Telemetry self-bench: the observability layer must not perturb the
// system it observes.
//
// Measures:
//   1. hot-path overhead: events/s through the simulator with the same
//      per-event work the instrumented link delivery path does, with and
//      without its telemetry mutations (acceptance: within 3%),
//   2. per-operation costs of the telemetry primitives (counter inc, gauge
//      set, histogram observe, span open/close, instant),
//   3. the simulator profiler's per-category attribution on a full
//      control-plane scenario (deploy -> mbox crash -> tunnel failover ->
//      recovery) that also populates every layer's metrics and the span
//      ring, which are then exported and cross-checked by the
//      TelemetryAuditor.
//
// Prints BENCH_telemetry.json (override with PVN_BENCH_JSON). When built
// with -DPVN_TELEMETRY=OFF the same scenario verifies the compile-time kill
// switch: every counter must read exactly zero.
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "audit/telemetry_check.h"
#include "common.h"
#include "proto/http.h"
#include "telemetry/export.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

double now_sec() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Runs `n` self-chaining simulator events, each performing `per_event`, and
// returns the measured events/s (best of one run; callers repeat).
template <typename Fn>
double run_ticks(std::uint64_t n, Fn&& per_event) {
  Simulator sim;
  std::uint64_t remaining = n;
  std::function<void()> tick = [&] {
    per_event();
    if (--remaining > 0) sim.schedule_after(1, SimCategory::kLink, tick);
  };
  sim.schedule_after(1, SimCategory::kLink, tick);
  const double t0 = now_sec();
  sim.run();
  const double t1 = now_sec();
  return static_cast<double>(n) / (t1 - t0);
}

struct OverheadResult {
  double base_events_per_sec = 0.0;
  double instrumented_events_per_sec = 0.0;
  double overhead_pct = 0.0;
};

OverheadResult measure_overhead(std::uint64_t n, int reps) {
  // The same shape of background work a delivery callback does, plus the
  // exact mutations the link hot path gained: two counter increments and a
  // gauge store against pre-registered cells.
  auto& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& pkts = reg.counter("bench.overhead.packets");
  telemetry::Counter& bytes = reg.counter("bench.overhead.bytes");
  telemetry::Gauge& queued = reg.gauge("bench.overhead.queued");

  std::uint64_t x = 0x9E3779B97F4A7C15ull;
  auto work = [&x] {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
  };
  OverheadResult r;
  for (int i = 0; i < reps; ++i) {
    r.base_events_per_sec =
        std::max(r.base_events_per_sec, run_ticks(n, work));
    r.instrumented_events_per_sec =
        std::max(r.instrumented_events_per_sec, run_ticks(n, [&] {
                   work();
                   pkts.inc();
                   bytes.inc(1500);
                   queued.set(static_cast<std::int64_t>(x & 0xFFFF));
                 }));
  }
  if (x == 0) std::printf("(unreachable)\n");  // keep `work` observable
  r.overhead_pct = 100.0 *
                   (r.base_events_per_sec - r.instrumented_events_per_sec) /
                   r.base_events_per_sec;
  return r;
}

struct OpCosts {
  double counter_inc_ns = 0.0;
  double gauge_set_ns = 0.0;
  double histogram_observe_ns = 0.0;
  double span_pair_ns = 0.0;
  double instant_ns = 0.0;
};

OpCosts measure_op_costs(std::uint64_t iters) {
  OpCosts c;
  auto& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& counter = reg.counter("bench.ops.counter");
  telemetry::Gauge& gauge = reg.gauge("bench.ops.gauge");
  telemetry::Histogram& hist =
      reg.histogram("bench.ops.hist", "", telemetry::latency_bounds_ns());

  double t0 = now_sec();
  for (std::uint64_t i = 0; i < iters; ++i) counter.inc();
  c.counter_inc_ns = (now_sec() - t0) * 1e9 / static_cast<double>(iters);

  t0 = now_sec();
  for (std::uint64_t i = 0; i < iters; ++i) {
    gauge.set(static_cast<std::int64_t>(i));
  }
  c.gauge_set_ns = (now_sec() - t0) * 1e9 / static_cast<double>(iters);

  t0 = now_sec();
  for (std::uint64_t i = 0; i < iters; ++i) hist.observe(i * 977);
  c.histogram_observe_ns = (now_sec() - t0) * 1e9 / static_cast<double>(iters);

  // Spans allocate strings per record; measure against a private recorder so
  // the global ring keeps the scenario's records.
  telemetry::SpanRecorder rec(1024);
  const std::uint64_t span_iters = std::max<std::uint64_t>(iters / 16, 1);
  t0 = now_sec();
  for (std::uint64_t i = 0; i < span_iters; ++i) {
    telemetry::Span s = rec.start("bench", "bench", "dev");
    s.finish();
  }
  c.span_pair_ns = (now_sec() - t0) * 1e9 / static_cast<double>(span_iters);

  t0 = now_sec();
  for (std::uint64_t i = 0; i < span_iters; ++i) {
    rec.instant("bench", "bench", "dev");
  }
  c.instant_ns = (now_sec() - t0) * 1e9 / static_cast<double>(span_iters);
  return c;
}

// The E16-style failover scenario: exercises links, the switch pipeline,
// the middlebox chain, the PVN control plane (with spans), the device
// tunnel, and the fault injector — every layer the exporters must cover.
SimProfile run_scenario() {
  TestbedConfig cfg;
  cfg.lease_duration = seconds(2);
  Testbed tb(cfg);
  tb.net.sim().enable_profiling(true);

  ClientConfig ccfg;
  ccfg.constraints.required_modules = {"tls-validator"};
  ccfg.session.fallback_retry = seconds(1);
  PvnClient agent(*tb.client, tb.standard_pvnc(), ccfg);
  agent.set_fallback(tb.device_tunnel.get());
  agent.start_session(tb.addrs.control);

  // Crash the middlebox host mid-session (covers fault + failover +
  // tunnel), restart it later (covers recovery + redeploy).
  tb.net.sim().schedule_at(seconds(3), SimCategory::kFault,
                           [&] { tb.mbox_host->crash(); });
  tb.net.sim().schedule_at(seconds(8), SimCategory::kFault,
                           [&] { tb.mbox_host->restart(); });
  tb.faults->link_flap(*tb.access_link, seconds(12), milliseconds(200));

  // HTTP fetches while the PVN is active (traffic through the chain) and
  // while on the fallback tunnel (traffic through the device tunnel).
  HttpClient http(*tb.client);
  const auto fetch = [&](SimTime at) {
    tb.net.sim().schedule_at(at, SimCategory::kWorkload, [&] {
      http.fetch(tb.addrs.web, 80, "/bytes/20000",
                 [](const HttpResponse&, const FetchTiming&) {});
    });
  };
  fetch(seconds(1));   // active: through the deployed chain
  fetch(seconds(4));   // fallback: through the device tunnel
  fetch(seconds(10));  // recovered: through the redeployed chain
  tb.net.sim().run_until(seconds(20));
  agent.stop_session();
  return tb.net.sim().profile();
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bool quick = false;
  const char* env_quick = std::getenv("PVN_BENCH_QUICK");
  if (env_quick != nullptr && std::strcmp(env_quick, "0") != 0) quick = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::title("E17 telemetry overhead + coverage",
               "the observability layer is cheap enough to leave on: "
               "instrumented event dispatch within 3% of uninstrumented, "
               "and one scenario populates metrics/spans in every layer");

  const std::uint64_t tick_n = quick ? 200'000 : 2'000'000;
  const int reps = quick ? 3 : 5;
  const OverheadResult oh = measure_overhead(tick_n, reps);
  const OpCosts ops = measure_op_costs(quick ? 1'000'000 : 10'000'000);

  bench::header({"metric", "value"});
  bench::row("events/s (base)", oh.base_events_per_sec);
  bench::row("events/s (instrumented)", oh.instrumented_events_per_sec);
  bench::row("overhead (%)", oh.overhead_pct);
  bench::row("counter inc (ns)", ops.counter_inc_ns);
  bench::row("gauge set (ns)", ops.gauge_set_ns);
  bench::row("histogram observe (ns)", ops.histogram_observe_ns);
  bench::row("span open+close (ns)", ops.span_pair_ns);
  bench::row("instant (ns)", ops.instant_ns);

  // Scenario: populate every layer, profile the event loop.
  const SimProfile profile = run_scenario();
  const telemetry::MetricsSnapshot snap =
      telemetry::MetricsRegistry::global().snapshot();

  const struct {
    const char* layer;
    const char* probe;  // a counter that must be nonzero when compiled in
  } kLayers[] = {
      {"netsim", "netsim.link.delivered_packets"},
      {"sdn", "sdn.switch.packets_in"},
      {"mbox", "mbox.chain.packets"},
      {"pvn", "pvn.client.discovery_rounds"},
      {"tunnel", "tunnel.device.tunneled"},
  };
  std::printf("\n");
  bench::header({"layer", "probe counter", "total"});
  bool all_layers = true;
  for (const auto& l : kLayers) {
    const std::uint64_t total = snap.counter_total(l.probe);
    bench::row(l.layer, l.probe, total);
    if (telemetry::kCompiledIn && total == 0) all_layers = false;
  }

  // Disabled build: the kill switch must make every cell read exactly zero.
  bool disabled_zero = true;
  if (!telemetry::kCompiledIn) {
    for (const telemetry::MetricSample& s : snap.samples) {
      if (s.counter_value != 0 || s.gauge_value != 0 || s.hist_count != 0) {
        disabled_zero = false;
      }
    }
  }

  // Auditor cross-check: the layers' accounts of the same run must agree.
  const TelemetryAuditor auditor;
  const std::vector<TelemetryFinding> findings =
      telemetry::kCompiledIn ? auditor.check_dataplane_consistency(snap)
                             : std::vector<TelemetryFinding>{};
  for (const TelemetryFinding& f : findings) {
    std::printf("AUDIT %s: %s\n", f.check.c_str(), f.detail.c_str());
  }

  std::printf("\nprofiler attribution:\n");
  bench::header({"category", "events", "wall ms"});
  for (std::size_t c = 0; c < kSimCategoryCount; ++c) {
    const auto& e = profile.by_category[c];
    if (e.events == 0) continue;
    bench::row(to_string(static_cast<SimCategory>(c)), e.events,
               static_cast<double>(e.wall_ns) / 1e6);
  }

  if (telemetry.enabled()) {
    telemetry::export_telemetry(telemetry.dir(),
                                telemetry::MetricsRegistry::global(),
                                telemetry::SpanRecorder::global(), &profile);
  }

  const bool within = oh.overhead_pct <= 3.0;
  const char* json_path = std::getenv("PVN_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_telemetry.json";
  FILE* f = std::fopen(json_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"e17_telemetry\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", json_bool(quick).c_str());
    std::fprintf(f, "  \"telemetry_compiled_in\": %s,\n",
                 json_bool(telemetry::kCompiledIn).c_str());
    std::fprintf(f, "  \"events_per_sec_uninstrumented\": %.0f,\n",
                 oh.base_events_per_sec);
    std::fprintf(f, "  \"events_per_sec_instrumented\": %.0f,\n",
                 oh.instrumented_events_per_sec);
    std::fprintf(f, "  \"overhead_pct\": %.3f,\n", oh.overhead_pct);
    std::fprintf(f, "  \"overhead_within_3pct\": %s,\n",
                 json_bool(within).c_str());
    std::fprintf(f, "  \"counter_inc_ns\": %.3f,\n", ops.counter_inc_ns);
    std::fprintf(f, "  \"gauge_set_ns\": %.3f,\n", ops.gauge_set_ns);
    std::fprintf(f, "  \"histogram_observe_ns\": %.3f,\n",
                 ops.histogram_observe_ns);
    std::fprintf(f, "  \"span_pair_ns\": %.3f,\n", ops.span_pair_ns);
    std::fprintf(f, "  \"instant_ns\": %.3f,\n", ops.instant_ns);
    std::fprintf(f, "  \"metrics_registered\": %zu,\n",
                 telemetry::MetricsRegistry::global().size());
    std::fprintf(f, "  \"spans_recorded\": %llu,\n",
                 static_cast<unsigned long long>(
                     telemetry::SpanRecorder::global().total_recorded()));
    std::fprintf(f, "  \"all_layers_covered\": %s,\n",
                 json_bool(all_layers).c_str());
    std::fprintf(f, "  \"audit_findings\": %zu,\n", findings.size());
    std::fprintf(f, "  \"disabled_counters_zero\": %s,\n",
                 telemetry::kCompiledIn ? "null"
                                        : json_bool(disabled_zero).c_str());
    std::fprintf(f, "  \"profile\": {");
    bool first = true;
    for (std::size_t c = 0; c < kSimCategoryCount; ++c) {
      const auto& e = profile.by_category[c];
      if (e.events == 0) continue;
      std::fprintf(f, "%s\n    \"%s\": {\"events\": %llu, \"wall_ns\": %llu}",
                   first ? "" : ",", to_string(static_cast<SimCategory>(c)),
                   static_cast<unsigned long long>(e.events),
                   static_cast<unsigned long long>(e.wall_ns));
      first = false;
    }
    std::fprintf(f, "\n  }\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n", json_path);
  }

  std::printf("\noverhead within 3%%: %s; layers covered: %s\n",
              within ? "yes" : "NO", all_layers ? "yes" : "NO");
  // Acceptance gates: fail loudly so CI catches a regression.
  return (within && all_layers && findings.empty()) ? 0 : 1;
}
