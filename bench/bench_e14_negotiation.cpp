// E14 — Automated negotiation of access policies (paper §3.3).
//
// Claim: "many network providers may support partial PVN configuration ...
// a set of soft and hard constraints can inform the decision of whether a
// user is willing to connect to a given access network, and under what
// conditions."
//
// We sweep the provider spectrum (fraction of the requested modules it
// allows, and its price multiplier) against a fixed user constraint set and
// report the negotiated outcome, achieved utility, and price paid.
#include "common.h"
#include "testbed/testbed.h"

using namespace pvn;

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E14 negotiation outcomes across provider policy spectrum",
               "hard/soft constraints drive accept / subset / walk-away");

  const std::vector<std::string> all = {"tls-validator", "dns-validator",
                                        "pii-detector", "tracker-blocker"};
  const struct {
    const char* name;
    std::set<std::string> allowed;
  } providers[] = {
      {"full support", {}},
      {"privacy only", {"pii-detector", "tracker-blocker"}},
      {"security only", {"tls-validator", "dns-validator"}},
      {"single module", {"pii-detector"}},
      {"nothing", {"classifier"}},  // offers none of the requested four
  };

  // User: PII protection is a hard requirement; utilities favour security.
  ClientConfig ccfg;
  ccfg.constraints.required_modules = {"pii-detector"};
  ccfg.constraints.module_utility = {{"tls-validator", 3.0},
                                     {"dns-validator", 2.0},
                                     {"pii-detector", 4.0},
                                     {"tracker-blocker", 1.0}};
  ccfg.constraints.max_price = 10.0;

  bench::header({"provider", "price mult", "outcome", "modules", "utility",
                 "paid"});
  for (const auto& provider : providers) {
    for (const double mult : {1.0, 3.0, 8.0}) {
      TestbedConfig cfg;
      cfg.allowed_modules = provider.allowed;
      cfg.price_multiplier = mult;
      Testbed tb(cfg);
      const DeployOutcome out = tb.deploy(tb.standard_pvnc(), ccfg);
      bench::row(provider.name, mult,
                 out.ok ? "deployed" : out.failure,
                 static_cast<int>(out.deployed_modules.size()), out.utility,
                 out.paid);
    }
  }
  return 0;
}
