// E10 — HTTPS/TLS enhancements (paper §4, citing [23]).
//
// Claim: "many apps and browsers do not properly check certificate validity,
// if at all — opening users to covert attacks from third parties that MITM
// TLS connections"; a PVN middlebox "can perform certificate validity checks
// beyond those provided by mobile OSes and apps, and reject connections."
//
// A population of clients connects to (a) the honest server and (b) a MITM
// that presents a forged chain. Client stacks: strict app, broken app [23],
// broken app behind a PVN TlsValidator. We report interception outcomes.
#include "common.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

struct TlsOutcome {
  bool established = false;
  bool intercepted = false;  // established against a forged chain
};

TlsOutcome connect_once(Testbed& tb, bool to_mitm, TlsClientPolicy policy,
                        bool with_pvn) {
  if (with_pvn) {
    Pvnc pvnc;
    pvnc.name = "alice-phone";
    pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
    const DeployOutcome out = tb.deploy(pvnc);
    if (!out.ok) std::printf("deploy failed: %s\n", out.failure.c_str());
  }

  // Honest server on web; MITM on malicious with a rogue chain for the same
  // name.
  const Certificate honest_leaf = tb.root_ca->issue(
      "web.example", tb.web_tls_key->public_key(), 0, seconds(100000));
  std::unique_ptr<TlsServer> honest_tls;
  tb.web->tcp_listen(443, [&](TcpConnection& conn) {
    honest_tls = std::make_unique<TlsServer>(
        conn, CertChain{honest_leaf, tb.root_ca->self_certificate()},
        *tb.web_tls_key);
  });

  CertificateAuthority rogue("RogueCA", 666);
  KeyPair mitm_key(667);
  const Certificate forged =
      rogue.issue("web.example", mitm_key.public_key(), 0, seconds(100000));
  std::unique_ptr<TlsServer> mitm_tls;
  tb.malicious->tcp_listen(443, [&](TcpConnection& conn) {
    mitm_tls = std::make_unique<TlsServer>(
        conn, CertChain{forged, rogue.self_certificate()}, mitm_key);
  });

  const Ipv4Addr target = to_mitm ? tb.addrs.malicious : tb.addrs.web;
  TcpConnection& conn = tb.client->tcp_connect(target, 443);
  TlsClient client(conn, "web.example", &tb.trust, policy, 99);
  tb.net.sim().run_until(tb.net.sim().now() + seconds(30));

  TlsOutcome out;
  out.established = client.info().established;
  out.intercepted = to_mitm && client.info().established;
  return out;
}

const char* verdict(const TlsOutcome& honest, const TlsOutcome& mitm) {
  if (!honest.established) return "broken (honest blocked!)";
  return mitm.intercepted ? "INTERCEPTED" : "protected";
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E10 TLS interception vs client stacks",
               "apps that skip validation get MITM'd; the PVN TlsValidator "
               "recovers protection without touching the app [23]");
  bench::header({"client stack", "honest conn", "MITM conn", "verdict"});

  {
    Testbed tb;
    const TlsOutcome honest = connect_once(tb, false, TlsClientPolicy::kStrict,
                                           false);
    Testbed tb2;
    const TlsOutcome mitm = connect_once(tb2, true, TlsClientPolicy::kStrict,
                                         false);
    bench::row("strict app", honest.established ? "ok" : "blocked",
               mitm.established ? "established" : "blocked",
               verdict(honest, mitm));
  }
  {
    Testbed tb;
    const TlsOutcome honest = connect_once(tb, false, TlsClientPolicy::kNone,
                                           false);
    Testbed tb2;
    const TlsOutcome mitm = connect_once(tb2, true, TlsClientPolicy::kNone,
                                         false);
    bench::row("broken app [23]", honest.established ? "ok" : "blocked",
               mitm.established ? "established" : "blocked",
               verdict(honest, mitm));
  }
  {
    Testbed tb;
    const TlsOutcome honest = connect_once(tb, false, TlsClientPolicy::kNone,
                                           true);
    Testbed tb2;
    const TlsOutcome mitm = connect_once(tb2, true, TlsClientPolicy::kNone,
                                         true);
    bench::row("broken app + PVN", honest.established ? "ok" : "blocked",
               mitm.established ? "established" : "blocked",
               verdict(honest, mitm));
  }
  return 0;
}
