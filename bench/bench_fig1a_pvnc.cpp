// Fig. 1a — The PVNC example: a classifier splits the device's traffic into
// web (text) and video/image classes, and each class gets its own treatment
// (the figure routes video through a transcoder/compressor and web through a
// TCP proxy).
//
// Part 1: deployed classifier + per-class rate policy — video flows are
// shaped to the user's chosen rate, web flows untouched.
// Part 2: the transcoder path — the same video fetched directly vs via the
// in-network TranscodingProxy: bytes crossing the access link shrink.
#include "common.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

void part1_per_class_policy() {
  bench::title("Fig1a.1 classifier + per-class policy",
               "one PVNC treats web and video classes differently");
  Testbed tb;

  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"classifier", {}});
  PvncPolicy video_rate;
  video_rate.kind = PvncPolicy::Kind::kRateLimit;
  video_rate.match.tos = 0x20;  // the classifier's video mark
  video_rate.rate = Rate::mbps(2);
  pvnc.policies.push_back(video_rate);
  const DeployOutcome out = tb.deploy(pvnc);
  if (!out.ok) std::printf("deploy failed: %s\n", out.failure.c_str());

  bench::header({"flow class", "bytes", "achieved Mbps", "policy applied"});
  // Video stream (classified -> 2 Mbps user policy).
  {
    VideoStreamer streamer(*tb.client);
    VideoStats stats;
    streamer.run(tb.addrs.video, 80, 8, 250 * 1000, seconds(1),
                 [&](const VideoStats& s) { stats = s; });
    tb.net.sim().run_until(tb.net.sim().now() + seconds(300));
    bench::row("video/mp4", stats.bytes, stats.mean_segment_mbps,
               "rate 2 Mbps");
  }
  // Web fetches (text class, unshaped).
  {
    HttpLoadGen gen(*tb.client);
    LoadStats stats;
    gen.run(tb.addrs.web, 80, "/bytes/250000", 8, milliseconds(10),
            [&](const LoadStats& s) { stats = s; });
    tb.net.sim().run_until(tb.net.sim().now() + seconds(300));
    const double mbps = stats.mean_total() > 0
                            ? 250000.0 * 8 / to_seconds(stats.mean_total()) / 1e6
                            : 0;
    bench::row("web (text)", stats.total_bytes(), mbps, "none");
  }
}

void part2_transcoder_path() {
  bench::title("Fig1a.2 video via in-network transcoder",
               "the transcoder box shrinks video before the access link");
  Testbed tb;
  // Transcoding proxy inside the access network, upstream = video server.
  auto& tc = tb.net.add_node<TranscodingProxy>(
      "transcoder", Ipv4Addr(10, 0, 0, 20), tb.addrs.video, Port{8080});
  tb.net.connect(*tb.access_sw, tc, LinkParams{});  // switch port 3
  FlowRule to_tc;
  to_tc.priority = 500;
  to_tc.match.dst = Prefix{tc.addr(), 32};
  to_tc.cookie = "infra";
  to_tc.actions.push_back(ActOutput{3});
  tb.access_sw->table(0).add(to_tc);

  bench::header({"path", "body bytes", "fetch (ms)", "transcoded"});
  HttpClient http(*tb.client);
  std::size_t direct_bytes = 0, tc_bytes = 0;
  SimDuration direct_ms = 0, tc_ms = 0;
  bool transcoded = false;
  http.fetch(tb.addrs.video, 80, "/video/seg-1",
             [&](const HttpResponse& r, const FetchTiming& t) {
               direct_bytes = r.body.size();
               direct_ms = t.total();
             });
  tb.net.sim().run();
  http.fetch(tc.addr(), 8080, "/video/seg-1",
             [&](const HttpResponse& r, const FetchTiming& t) {
               tc_bytes = r.body.size();
               tc_ms = t.total();
               transcoded = r.header("X-Transcoded") != nullptr;
             });
  tb.net.sim().run();
  bench::row("direct", static_cast<std::uint64_t>(direct_bytes),
             to_milliseconds(direct_ms), "no");
  bench::row("via transcoder", static_cast<std::uint64_t>(tc_bytes),
             to_milliseconds(tc_ms), transcoded ? "yes (40%)" : "no");
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  part1_per_class_policy();
  part2_transcoder_path();
  return 0;
}
