// E16 — Control-plane resilience under injected faults (paper §3.3).
//
// The paper's §3.3 argues a PVN must "cope with unavailability": lossy
// access links during the discovery handshake, middlebox hosts that crash
// mid-session, and devices that vanish holding deployed state. This bench
// measures the three resilience mechanisms end to end:
//
//   1. deploy success + cost under access-link loss (retransmission),
//   2. failover/recovery time and goodput when the MboxHost crashes
//      mid-session (lease refusal -> device VPN tunnel -> re-deploy),
//   3. reclamation lag for a crashed client's lease (memory returns).
//
// A machine-readable JSON summary is printed at the end for plotting.
#include <cstdio>

#include "common.h"
#include "proto/http.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

struct LossPoint {
  double loss = 0.0;
  int runs = 0;
  int succeeded = 0;
  double mean_messages = 0.0;
  double mean_elapsed_ms = 0.0;
};

LossPoint sweep_loss(double loss, int runs) {
  LossPoint point;
  point.loss = loss;
  point.runs = runs;
  double messages = 0.0;
  double elapsed_ms = 0.0;
  for (int run = 0; run < runs; ++run) {
    TestbedConfig cfg;
    cfg.access.loss = loss;
    cfg.seed = 100 + static_cast<std::uint64_t>(run);
    Testbed tb(cfg);
    ClientConfig ccfg;
    ccfg.retry.max_discovery_rounds = 8;
    ccfg.retry.max_deploy_attempts = 8;
    ccfg.retry.backoff = 1.5;  // all 8 attempts fit inside the deadline
    ccfg.deploy_timeout = seconds(30);
    const DeployOutcome out = tb.deploy(tb.standard_pvnc(), ccfg);
    if (!out.ok) continue;
    ++point.succeeded;
    messages += out.messages_sent + out.messages_received;
    elapsed_ms += to_milliseconds(out.elapsed);
  }
  if (point.succeeded > 0) {
    point.mean_messages = messages / point.succeeded;
    point.mean_elapsed_ms = elapsed_ms / point.succeeded;
  }
  return point;
}

struct FailoverResult {
  double failover_ms = 0.0;   // crash -> tunnel active
  double recovery_ms = 0.0;   // mbox restart -> PVN active again
  double fallback_goodput_kbps = 0.0;  // HTTP through the tunnel
  std::uint64_t tunneled = 0;
};

FailoverResult run_failover() {
  TestbedConfig cfg;
  cfg.lease_duration = seconds(2);
  Testbed tb(cfg);

  ClientConfig ccfg;
  ccfg.constraints.required_modules = {"tls-validator"};  // cannot degrade
  ccfg.session.fallback_retry = seconds(1);
  PvnClient agent(*tb.client, tb.standard_pvnc(), ccfg);
  agent.set_fallback(tb.device_tunnel.get());

  const SimTime crash_at = seconds(2);
  const SimTime restart_at = seconds(10);
  SimTime fallback_seen = 0;
  SimTime recovered_seen = 0;
  agent.set_state_callback([&](SessionState s) {
    const SimTime now = tb.net.sim().now();
    if (s == SessionState::kFallback && fallback_seen == 0) fallback_seen = now;
    if (s == SessionState::kActive && now > restart_at && recovered_seen == 0) {
      recovered_seen = now;
    }
  });
  agent.start_session(tb.addrs.control);

  tb.net.sim().schedule_at(crash_at, [&] { tb.mbox_host->crash(); });
  tb.net.sim().schedule_at(restart_at, [&] { tb.mbox_host->restart(); });

  // Goodput probe while on the tunnel: fetch 100 kB starting at 5 s, well
  // inside the fallback window.
  std::size_t fetched_bytes = 0;
  SimTime fetch_start = 0;
  SimTime fetch_end = 0;
  HttpClient http(*tb.client);
  tb.net.sim().schedule_at(seconds(5), [&] {
    fetch_start = tb.net.sim().now();
    http.fetch(tb.addrs.web, 80, "/bytes/100000",
               [&](const HttpResponse& resp, const FetchTiming& t) {
                 if (!t.ok) return;
                 fetched_bytes = resp.body.size();
                 fetch_end = tb.net.sim().now();
               });
  });
  tb.net.sim().run_until(seconds(30));

  FailoverResult r;
  if (fallback_seen > crash_at) {
    r.failover_ms = to_milliseconds(fallback_seen - crash_at);
  }
  if (recovered_seen > restart_at) {
    r.recovery_ms = to_milliseconds(recovered_seen - restart_at);
  }
  if (fetch_end > fetch_start && fetched_bytes > 0) {
    r.fallback_goodput_kbps = 8.0 * static_cast<double>(fetched_bytes) /
                              to_milliseconds(fetch_end - fetch_start);
  }
  r.tunneled = tb.device_tunnel->tunneled();
  return r;
}

struct ReclaimResult {
  double lease_s = 0.0;
  double reclaim_ms = 0.0;  // last renewal opportunity -> memory reclaimed
};

ReclaimResult run_reclaim(SimDuration lease) {
  TestbedConfig cfg;
  cfg.lease_duration = lease;
  Testbed tb(cfg);
  const std::int64_t memory_before = tb.mbox_host->memory_in_use();

  PvnClient agent(*tb.client, tb.standard_pvnc());
  SimTime deployed_at = 0;
  agent.discover_and_deploy(tb.addrs.control, [&](const DeployOutcome& out) {
    if (out.ok) deployed_at = tb.net.sim().now();
  });
  // The one-shot agent never renews: a crashed device. Poll memory on a
  // fine grid to timestamp the reclamation.
  SimTime reclaimed_at = 0;
  for (int ms = 0; ms < 60000; ms += 50) {
    tb.net.sim().schedule_at(milliseconds(ms), [&, memory_before] {
      if (reclaimed_at == 0 && deployed_at != 0 &&
          tb.mbox_host->memory_in_use() == memory_before) {
        reclaimed_at = tb.net.sim().now();
      }
    });
  }
  tb.net.sim().run_until(seconds(60));

  ReclaimResult r;
  r.lease_s = to_milliseconds(lease) / 1000.0;
  if (reclaimed_at > deployed_at && deployed_at != 0) {
    r.reclaim_ms = to_milliseconds(reclaimed_at - deployed_at);
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E16 control-plane resilience under faults",
               "retransmission rides out lossy links, leases reclaim "
               "crashed clients, and sessions fail over to the VPN tunnel "
               "and back (§3.3)");

  // --- 1. deploy vs. access loss ---------------------------------------
  bench::header({"access loss", "deploys ok", "mean msgs", "mean ms"});
  std::vector<LossPoint> losses;
  for (const double loss : {0.0, 0.1, 0.2, 0.3, 0.4}) {
    const LossPoint p = sweep_loss(loss, 6);
    losses.push_back(p);
    char ok[32];
    std::snprintf(ok, sizeof ok, "%d/%d", p.succeeded, p.runs);
    bench::row(p.loss, std::string(ok), p.mean_messages, p.mean_elapsed_ms);
  }

  // --- 2. mbox crash -> tunnel failover -> recovery ---------------------
  std::printf("\n");
  bench::header({"metric", "value"});
  const FailoverResult fo = run_failover();
  bench::row("failover (ms)", fo.failover_ms);
  bench::row("recovery (ms)", fo.recovery_ms);
  bench::row("tunnel goodput (kbps)", fo.fallback_goodput_kbps);
  bench::row("pkts tunneled", fo.tunneled);

  // --- 3. lease reclamation lag -----------------------------------------
  std::printf("\n");
  bench::header({"lease (s)", "reclaim lag (ms)"});
  std::vector<ReclaimResult> reclaims;
  for (const int lease_s : {1, 2, 5}) {
    const ReclaimResult r = run_reclaim(seconds(lease_s));
    reclaims.push_back(r);
    bench::row(r.lease_s, r.reclaim_ms);
  }

  // --- machine-readable summary -----------------------------------------
  std::printf("\nJSON: {\"experiment\":\"e16_resilience\",\"loss_sweep\":[");
  for (std::size_t i = 0; i < losses.size(); ++i) {
    const LossPoint& p = losses[i];
    std::printf("%s{\"loss\":%.2f,\"ok\":%d,\"runs\":%d,"
                "\"mean_messages\":%.1f,\"mean_ms\":%.1f}",
                i ? "," : "", p.loss, p.succeeded, p.runs, p.mean_messages,
                p.mean_elapsed_ms);
  }
  std::printf("],\"failover\":{\"failover_ms\":%.1f,\"recovery_ms\":%.1f,"
              "\"tunnel_goodput_kbps\":%.1f,\"tunneled\":%llu},",
              fo.failover_ms, fo.recovery_ms, fo.fallback_goodput_kbps,
              static_cast<unsigned long long>(fo.tunneled));
  std::printf("\"lease_reclaim\":[");
  for (std::size_t i = 0; i < reclaims.size(); ++i) {
    std::printf("%s{\"lease_s\":%.1f,\"reclaim_ms\":%.1f}", i ? "," : "",
                reclaims[i].lease_s, reclaims[i].reclaim_ms);
  }
  std::printf("]}\n");
  return 0;
}
