// A1 — Ablation: which TCP-lite mechanisms carry the E6 result?
//
// DESIGN.md commits to ablating load-bearing design choices. The split-TCP
// experiment's shape depends on loss recovery speed, so we ablate:
//   * SACK-based recovery vs head-of-line-only recovery
//   * initial window (IW10 vs IW2)
// on a lossy download, reporting completion time and retransmission counts.
#include "common.h"
#include "netsim/router.h"
#include "proto/host.h"

using namespace pvn;

namespace {

struct Variant {
  const char* name;
  bool sack;
  std::uint32_t iw;
};

struct Outcome {
  double ms = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t fast_rtx = 0;
};

Outcome download(const Variant& v, double loss, std::uint64_t seed) {
  Network net(seed);
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& router = net.add_node<Router>("router");
  auto& server = net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
  LinkParams access;
  access.rate = Rate::mbps(30);
  access.latency = milliseconds(20);
  access.loss = loss;
  LinkParams core;
  core.rate = Rate::mbps(200);
  core.latency = milliseconds(20);
  net.connect(client, router, access);
  net.connect(router, server, core);
  router.add_route(*Prefix::parse("10.0.0.0/8"), 0);
  router.add_route(*Prefix::parse("0.0.0.0/0"), 1);

  TcpConfig cfg;
  cfg.enable_sack = v.sack;
  cfg.initial_cwnd_segments = v.iw;

  // 400 KB transfer server -> client.
  TcpConnection* sender = nullptr;
  server.tcp_listen(80, [&](TcpConnection& conn) {
    sender = &conn;
    conn.on_connected = [&conn] {
      Bytes data(400 * 1000);
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::uint8_t>(i);
      }
      conn.send(data);
      conn.close();
    };
  }, cfg);

  std::size_t received = 0;
  SimTime done_at = 0;
  TcpConnection& conn = client.tcp_connect(server.addr(), 80, cfg);
  conn.on_data = [&](const Bytes& data) {
    received += data.size();
    if (received >= 400 * 1000) done_at = net.sim().now();
  };
  conn.on_eof = [&conn] { conn.close(); };
  net.sim().run_until(seconds(600));

  Outcome out;
  out.ms = done_at > 0 ? to_milliseconds(done_at) : -1;
  if (sender != nullptr) {
    out.timeouts = sender->stats().timeouts;
    out.fast_rtx = sender->stats().fast_retransmits;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("A1 TCP mechanism ablation",
               "SACK recovery and IW10 are the mechanisms behind the E6 "
               "shapes; disabling them degrades lossy-path completion times");
  const Variant variants[] = {
      {"SACK + IW10", true, 10},
      {"SACK + IW2", true, 2},
      {"no SACK + IW10", false, 10},
      {"no SACK + IW2", false, 2},
  };
  bench::header({"variant", "loss", "download (ms)", "timeouts", "fast rtx"});
  for (const double loss : {0.0, 0.02, 0.05}) {
    for (const Variant& v : variants) {
      double ms = 0;
      std::uint64_t to = 0, frtx = 0;
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        const Outcome o = download(v, loss, seed);
        ms += o.ms / 3.0;
        to += o.timeouts;
        frtx += o.fast_rtx;
      }
      bench::row(v.name, loss, ms, to, frtx);
    }
  }
  return 0;
}
