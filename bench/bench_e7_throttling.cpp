// E7 — Binge On-style throttling and per-flow opt-out (paper §2.2).
//
// Claim: T-Mobile's Binge On "zero-rates all participating video provider's
// traffic, but also throttles it to 1.5 Mbps (often leading to sub-HD
// quality)"; users "cannot decide to stream at high resolution ... there is
// one policy that applies to all of their video traffic." PVNs restore
// per-flow choice, and the auditor can detect the shaping.
//
// Scenarios: (a) no ISP policy, (b) ISP throttles video to 1.5 Mbps,
// (c) same ISP policy, but the user's PVN carries a higher-priority rate
// policy of 8 Mbps for their own video flows (the opt-out).
#include "audit/measurements.h"
#include "common.h"
#include "mbox/inline_modules.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

void install_isp_throttle(Testbed& tb, Chain& isp_chain,
                          Classifier& classifier) {
  isp_chain.append(&classifier);
  tb.access_sw->register_processor("isp-dpi", &isp_chain);
  tb.access_sw->add_meter("isp-video", Rate::kbps(1500), 40000);

  // ISP DPI: classify all traffic, then meter the video class. Runs at
  // priority 40 — *below* any PVN rules (priority >= 100).
  FlowRule classify_in;
  classify_in.priority = 40;
  classify_in.match.dst = Prefix{tb.addrs.client, 32};
  classify_in.cookie = "isp-policy";
  classify_in.actions.push_back(ActMbox{"isp-dpi"});
  classify_in.actions.push_back(ActGotoTable{1});
  tb.access_sw->table(0).add(classify_in);

  FlowRule meter_video;
  meter_video.priority = 50;
  meter_video.match.tos = 0x20;
  meter_video.match.dst = Prefix{tb.addrs.client, 32};
  meter_video.cookie = "isp-policy";
  meter_video.actions.push_back(ActMeter{"isp-video"});
  meter_video.actions.push_back(ActOutput{0});
  tb.access_sw->table(1).add(meter_video);

  FlowRule rest;
  rest.priority = 5;
  rest.match.dst = Prefix{tb.addrs.client, 32};
  rest.cookie = "isp-policy";
  rest.actions.push_back(ActOutput{0});
  tb.access_sw->table(1).add(rest);
}

struct Result {
  double mbps = 0;
  int rebuffers = 0;
};

Result stream(Testbed& tb) {
  VideoStreamer streamer(*tb.client);
  Result result;
  bool done = false;
  // 12 segments of 250 KB covering 1 s each: needs 2 Mbps to keep up.
  streamer.run(tb.addrs.video, 80, 12, 250 * 1000, seconds(1),
               [&](const VideoStats& s) {
                 result.mbps = s.mean_segment_mbps;
                 result.rebuffers = s.rebuffers;
                 done = true;
               });
  tb.net.sim().run_until(tb.net.sim().now() + seconds(300));
  (void)done;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E7 video throttling + PVN opt-out",
               "BingeOn throttles video to 1.5 Mbps for everyone; PVNs let "
               "each user choose, and audits detect the shaping [18]");
  bench::header({"scenario", "video Mbps", "rebuffers", "audit: shaped?"});

  // (a) neutral ISP.
  {
    Testbed tb;
    const Result r = stream(tb);
    bench::row("no ISP policy", r.mbps, r.rebuffers, "no");
  }
  // (b) ISP throttles video; user has no PVN.
  {
    Testbed tb;
    Chain isp_chain("isp-dpi", 0);
    Classifier classifier({{"Content-Type: video", 0x20}});
    install_isp_throttle(tb, isp_chain, classifier);
    const Result r = stream(tb);
    // Audit: marked vs control rate probes, run DOWNSTREAM (the throttle
    // polices traffic toward the client) from a cooperating server.
    RateProbe control(*tb.web, *tb.client, 9001);
    RateProbe marked(*tb.web, *tb.client, 9002);
    double c = 0, m = 0;
    control.run(Rate::mbps(10), seconds(2), 0, "application/octet",
                [&](const RateProbe::Result& pr) { c = pr.achieved_mbps; });
    tb.net.sim().run();
    marked.run(Rate::mbps(10), seconds(2), 0x20, "video/mp4",
               [&](const RateProbe::Result& pr) { m = pr.achieved_mbps; });
    tb.net.sim().run();
    const bool shaped = judge_differentiation(c, m).differentiated;
    bench::row("ISP throttle 1.5Mbps", r.mbps, r.rebuffers,
               shaped ? "yes" : "no");
  }
  // (c) ISP throttles, but the user's PVN opts their flows out.
  {
    Testbed tb;
    Chain isp_chain("isp-dpi", 0);
    Classifier classifier({{"Content-Type: video", 0x20}});
    install_isp_throttle(tb, isp_chain, classifier);

    Pvnc pvnc;
    pvnc.name = "alice-phone";
    PvncPolicy hd;
    hd.kind = PvncPolicy::Kind::kRateLimit;  // the user's own ceiling
    hd.rate = Rate::mbps(8);
    hd.priority = 200;  // outranks the ISP default policy
    pvnc.policies.push_back(hd);
    const DeployOutcome out = tb.deploy(pvnc);
    if (!out.ok) std::printf("deploy failed: %s\n", out.failure.c_str());
    const Result r = stream(tb);
    bench::row("PVN opt-out @8Mbps", r.mbps, r.rebuffers, "user-exempt");
  }
  return 0;
}
