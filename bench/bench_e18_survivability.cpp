// E18 — Survivability: warm-standby promotion and live PVN migration.
//
// The paper's mobility story ("the PVN follows the user", §3.2) only works
// if a deployed PVN survives infrastructure failure and network moves. This
// bench measures the two survivability mechanisms end to end:
//
//   1. Primary mbox crash with vs without a warm standby: client-visible
//      blackout (probe service gap), probes lost, and whether the session
//      survives without a failover. With a standby the SDN controller
//      re-points flow rules at the promoted chain within one control RTT;
//      without one the session rides the old lease-refusal -> VPN tunnel
//      path, orders of magnitude slower.
//   2. Live migration between access networks: the device re-attaches, the
//      new network pulls the old chain's state (kStateRequest handoff), and
//      the client drains in-flight packets before tearing the old session
//      down. Blackout must stay bounded by a small constant number of
//      in-flight probes, deterministically reproducible per seed.
//
// Writes BENCH_survivability.json (override with PVN_BENCH_JSON) and prints
// a trailing JSON: line; PVN_BENCH_QUICK=1 / --quick shrinks the sweep.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "common.h"
#include "mbox/inline_modules.h"
#include "testbed/roaming.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

Pvnc survivable_pvnc() {
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"classifier", {}});
  pvnc.chain.push_back(PvncModule{"tracker-blocker", {}});
  return pvnc;
}

Classifier* find_classifier(Chain* chain) {
  if (chain == nullptr) return nullptr;
  for (Middlebox* m : chain->modules()) {
    if (m->name() == "classifier") return dynamic_cast<Classifier*>(m);
  }
  return nullptr;
}

std::string json_bool(bool b) { return b ? "true" : "false"; }

// --- Scenario 1: primary crash, standby vs tunnel failover -------------------

struct CrashResult {
  bool standby = false;
  // Protection blackout: crash -> first probe that traverses a PVN
  // dataplane again (the promoted chain, or the fallback tunnel). The
  // network itself never blips — a torn-down deployment forwards traffic
  // unprotected — so this is the client-visible survivability metric.
  double blackout_ms = 0.0;
  double service_gap_ms = 0.0;  // crash -> first probe delivered at all
  int probes_sent = 0;
  int probes_lost = 0;
  std::uint64_t promotions = 0;
  std::uint64_t failovers = 0;
  std::uint64_t dropped_rule_delta = 0;
  std::uint64_t checkpoints_applied = 0;
  bool session_stayed_active = false;  // never left kActive after the crash
  bool state_continuous = false;       // promoted chain kept per-flow state
};

CrashResult run_crash(bool standby, std::uint64_t seed) {
  TestbedConfig cfg;
  cfg.standby = standby;
  cfg.lease_duration = seconds(2);
  cfg.checkpoint_interval = milliseconds(100);
  cfg.seed = seed;
  Testbed tb(cfg);

  ClientConfig ccfg;
  ccfg.constraints.required_modules = {"tls-validator"};  // cannot degrade
  ccfg.session.fallback_retry = seconds(1);
  PvnClient agent(*tb.client, survivable_pvnc(), ccfg);
  agent.set_fallback(tb.device_tunnel.get());
  const SimTime crash_at = seconds(4);
  bool left_active = false;
  agent.set_state_callback([&](SessionState s) {
    if (tb.net.sim().now() >= crash_at && s != SessionState::kActive) {
      left_active = true;
    }
  });
  agent.start_session(tb.addrs.control);

  // A 500 Hz probe stream through the deployed chain toward the web server:
  // fine-grained enough to resolve a one-control-RTT promotion.
  const SimTime probes_from = seconds(1);
  const SimTime probes_until = seconds(11);
  const SimTime horizon = seconds(12);
  int sent = 0;
  int received = 0;
  SimTime first_after_crash = 0;
  tb.web->bind_udp(8080, [&](Ipv4Addr, Port, Port, const Bytes&) {
    ++received;
    const SimTime now = tb.net.sim().now();
    if (now >= crash_at && first_after_crash == 0) first_after_crash = now;
  });
  for (SimTime t = probes_from; t < probes_until; t += milliseconds(2)) {
    tb.net.sim().schedule_at(t, [&] {
      ++sent;
      tb.client->send_udp(
          tb.addrs.web, static_cast<Port>(20000 + sent % 50), 8080,
          to_bytes("probe Content-Type: video #" + std::to_string(sent % 50)));
    });
  }

  // Record the primary chain's per-flow state and rule-drop count just
  // before the crash, then kill the mbox pool.
  std::uint64_t flows_at_crash = 0;
  std::uint64_t dropped_before = 0;
  tb.net.sim().schedule_at(crash_at - milliseconds(1), [&] {
    if (Classifier* c = find_classifier(tb.mbox_host->chain(agent.chain_id()))) {
      flows_at_crash = c->flows_classified();
    }
    dropped_before = tb.access_sw->stats().dropped_rule;
  });
  tb.net.sim().schedule_at(crash_at, [&] { tb.mbox_host->crash(); });

  // Protection blackout probe: on a 1 ms grid after the crash, note the
  // first instant a PVN dataplane has processed client traffic again —
  // the promoted standby chain, or the fallback tunnel.
  SimTime protected_at = 0;
  for (SimTime t = crash_at; t < horizon; t += milliseconds(1)) {
    tb.net.sim().schedule_at(t, [&] {
      if (protected_at != 0) return;
      if (standby) {
        Chain* promoted = tb.standby_mbox->chain(agent.chain_id());
        if (promoted != nullptr && promoted->packets() > 0) {
          protected_at = tb.net.sim().now();
        }
      } else if (tb.device_tunnel->tunneled() > 0) {
        protected_at = tb.net.sim().now();
      }
    });
  }
  tb.net.sim().run_until(horizon);

  CrashResult r;
  r.standby = standby;
  r.probes_sent = sent;
  r.probes_lost = sent - received;
  if (protected_at > 0) {
    r.blackout_ms = to_milliseconds(protected_at - crash_at);
  }
  if (first_after_crash > 0) {
    r.service_gap_ms = to_milliseconds(first_after_crash - crash_at);
  }
  r.promotions = tb.server->standby_promotions();
  r.failovers = agent.failovers();
  r.dropped_rule_delta = tb.access_sw->stats().dropped_rule - dropped_before;
  r.session_stayed_active = !left_active;
  if (standby) {
    r.checkpoints_applied = tb.standby_agent->checkpoints_applied();
    if (Classifier* c =
            find_classifier(tb.standby_mbox->chain(agent.chain_id()))) {
      r.state_continuous =
          flows_at_crash > 0 && c->flows_classified() >= flows_at_crash;
    }
  }
  return r;
}

// --- Scenario 2: live migration between access networks ----------------------

struct MigrationResult {
  int probes_sent = 0;
  int probes_lost = 0;
  double longest_gap_ms = 0.0;  // max inter-arrival gap around the move
  bool migrated = false;
  std::uint64_t handoffs = 0;
  std::uint64_t state_requests = 0;
  bool state_continuous = false;
  bool old_session_gone = false;
};

MigrationResult run_migration(std::uint64_t seed) {
  RoamingConfig cfg;
  cfg.seed = seed;
  RoamingTestbed tb(cfg);

  PvnClient agent(*tb.client, tb.roaming_pvnc());
  agent.start_session(tb.addrs.control_a);

  const SimTime move_at = seconds(2);
  const SimTime probes_from = seconds(1);
  const SimTime probes_until = seconds(7);
  const SimTime horizon = seconds(8);
  int sent = 0;
  int received = 0;
  SimTime last_arrival = 0;
  SimDuration longest_gap = 0;
  tb.web->bind_udp(8080, [&](Ipv4Addr, Port, Port, const Bytes&) {
    ++received;
    const SimTime now = tb.net.sim().now();
    // Observe the service gap around the move window.
    if (last_arrival > 0 && now >= move_at && now < move_at + seconds(3)) {
      longest_gap = std::max(longest_gap, now - last_arrival);
    }
    last_arrival = now;
  });
  for (SimTime t = probes_from; t < probes_until; t += milliseconds(10)) {
    tb.net.sim().schedule_at(t, [&] {
      ++sent;
      tb.client->send_udp(
          tb.addrs.web, static_cast<Port>(21000 + sent % 40), 8080,
          to_bytes("probe Content-Type: video #" + std::to_string(sent % 40)));
    });
  }

  std::uint64_t flows_before = 0;
  std::string old_chain_id;
  bool migrate_ok = false;
  tb.net.sim().schedule_at(move_at, [&] {
    old_chain_id = agent.chain_id();
    if (Classifier* c = find_classifier(tb.a.mbox->chain(old_chain_id))) {
      flows_before = c->flows_classified();
    }
    tb.re_attach();
    agent.migrate(tb.addrs.control_b, milliseconds(300),
                  [&](const DeployOutcome& o) { migrate_ok = o.ok; });
  });
  tb.net.sim().run_until(horizon);

  MigrationResult r;
  r.probes_sent = sent;
  r.probes_lost = sent - received;
  r.longest_gap_ms = to_milliseconds(longest_gap);
  r.migrated = migrate_ok && agent.migrations() == 1;
  r.handoffs = tb.b.server->handoffs_completed();
  r.state_requests = tb.a.server->state_requests_served();
  if (Classifier* c = find_classifier(tb.b.mbox->chain(agent.chain_id()))) {
    r.state_continuous =
        flows_before > 0 && c->flows_classified() >= flows_before;
  }
  r.old_session_gone = tb.a.server->deployments_active() == 0 &&
                       tb.a.mbox->chain(old_chain_id) == nullptr;
  return r;
}

void print_crash_row(const CrashResult& r) {
  bench::row(r.standby ? "warm standby" : "tunnel failover", r.blackout_ms,
             r.probes_lost, r.probes_sent,
             static_cast<std::uint64_t>(r.failovers),
             r.session_stayed_active ? "yes" : "NO");
}

void crash_json(FILE* f, const CrashResult& r, const char* indent) {
  std::fprintf(
      f,
      "%s{\"standby\": %s, \"blackout_ms\": %.3f, \"service_gap_ms\": %.3f, "
      "\"probes_sent\": %d, "
      "\"probes_lost\": %d, \"promotions\": %llu, \"failovers\": %llu, "
      "\"dropped_rule_delta\": %llu, \"checkpoints_applied\": %llu, "
      "\"session_stayed_active\": %s, \"state_continuous\": %s}",
      indent, json_bool(r.standby).c_str(), r.blackout_ms, r.service_gap_ms,
      r.probes_sent,
      r.probes_lost, static_cast<unsigned long long>(r.promotions),
      static_cast<unsigned long long>(r.failovers),
      static_cast<unsigned long long>(r.dropped_rule_delta),
      static_cast<unsigned long long>(r.checkpoints_applied),
      json_bool(r.session_stayed_active).c_str(),
      json_bool(r.state_continuous).c_str());
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bool quick = false;
  const char* env_quick = std::getenv("PVN_BENCH_QUICK");
  if (env_quick != nullptr && std::strcmp(env_quick, "0") != 0) quick = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  bench::title("E18 survivability: standby promotion + live migration",
               "a deployed PVN survives a middlebox host crash within one "
               "control RTT via a warm standby, and follows the user across "
               "access networks with a bounded in-flight blackout");

  // --- 1. crash recovery: warm standby vs tunnel failover ---------------
  const std::vector<std::uint64_t> seeds =
      quick ? std::vector<std::uint64_t>{1}
            : std::vector<std::uint64_t>{1, 2, 3};
  bench::header({"recovery path", "blackout ms", "lost", "sent", "failovers",
                 "session alive"});
  std::vector<CrashResult> with_standby;
  std::vector<CrashResult> without_standby;
  for (const std::uint64_t seed : seeds) {
    with_standby.push_back(run_crash(/*standby=*/true, seed));
    without_standby.push_back(run_crash(/*standby=*/false, seed));
    print_crash_row(with_standby.back());
    print_crash_row(without_standby.back());
  }

  // --- 2. live migration ------------------------------------------------
  std::printf("\n");
  bench::header({"metric", "value"});
  const MigrationResult mig = run_migration(seeds[0]);
  // Determinism gate: the same seed replays the exact same migration.
  const MigrationResult mig2 = run_migration(seeds[0]);
  const bool deterministic = mig.probes_sent == mig2.probes_sent &&
                             mig.probes_lost == mig2.probes_lost &&
                             mig.longest_gap_ms == mig2.longest_gap_ms &&
                             mig.handoffs == mig2.handoffs;
  bench::row("probes sent", mig.probes_sent);
  bench::row("probes lost", mig.probes_lost);
  bench::row("longest gap (ms)", mig.longest_gap_ms);
  bench::row("state handoffs", static_cast<std::uint64_t>(mig.handoffs));
  bench::row("state continuous", mig.state_continuous ? "yes" : "NO");
  bench::row("old session gone", mig.old_session_gone ? "yes" : "NO");
  bench::row("deterministic", deterministic ? "yes" : "NO");

  // --- acceptance gates --------------------------------------------------
  bool standby_ok = true;
  double worst_standby_blackout = 0.0;
  double best_failover_blackout = 1e18;
  for (const CrashResult& r : with_standby) {
    standby_ok = standby_ok && r.promotions == 1 && r.failovers == 0 &&
                 r.session_stayed_active && r.state_continuous &&
                 r.probes_lost <= 5;
    worst_standby_blackout = std::max(worst_standby_blackout, r.blackout_ms);
  }
  for (const CrashResult& r : without_standby) {
    best_failover_blackout = std::min(best_failover_blackout, r.blackout_ms);
  }
  // The standby path must beat the tunnel-failover path by a wide margin.
  const bool faster = worst_standby_blackout * 5 <= best_failover_blackout;
  // Migration blackout bounded: a handful of in-flight probes at 10 ms.
  const bool migration_ok = mig.migrated && mig.handoffs == 1 &&
                            mig.state_continuous && mig.old_session_gone &&
                            mig.probes_lost <= 5 &&
                            mig.longest_gap_ms <= 200.0;

  const char* json_path = std::getenv("PVN_BENCH_JSON");
  if (json_path == nullptr) json_path = "BENCH_survivability.json";
  FILE* f = std::fopen(json_path, "w");
  if (f != nullptr) {
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"bench\": \"e18_survivability\",\n");
    std::fprintf(f, "  \"quick\": %s,\n", json_bool(quick).c_str());
    std::fprintf(f, "  \"crash\": [\n");
    for (std::size_t i = 0; i < with_standby.size(); ++i) {
      crash_json(f, with_standby[i], "    ");
      std::fprintf(f, ",\n");
      crash_json(f, without_standby[i], "    ");
      std::fprintf(f, i + 1 < with_standby.size() ? ",\n" : "\n");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f,
                 "  \"migration\": {\"probes_sent\": %d, \"probes_lost\": %d, "
                 "\"longest_gap_ms\": %.3f, \"handoffs\": %llu, "
                 "\"state_requests\": %llu, \"state_continuous\": %s, "
                 "\"old_session_gone\": %s, \"deterministic\": %s},\n",
                 mig.probes_sent, mig.probes_lost, mig.longest_gap_ms,
                 static_cast<unsigned long long>(mig.handoffs),
                 static_cast<unsigned long long>(mig.state_requests),
                 json_bool(mig.state_continuous).c_str(),
                 json_bool(mig.old_session_gone).c_str(),
                 json_bool(deterministic).c_str());
    std::fprintf(f, "  \"standby_ok\": %s,\n", json_bool(standby_ok).c_str());
    std::fprintf(f, "  \"standby_faster_5x\": %s,\n", json_bool(faster).c_str());
    std::fprintf(f, "  \"migration_ok\": %s\n", json_bool(migration_ok).c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", json_path);
  }

  std::printf("\nJSON: {\"experiment\":\"e18_survivability\","
              "\"standby_blackout_ms\":%.3f,\"failover_blackout_ms\":%.3f,"
              "\"migration_gap_ms\":%.3f,\"migration_lost\":%d,"
              "\"standby_ok\":%s,\"migration_ok\":%s,\"deterministic\":%s}\n",
              worst_standby_blackout, best_failover_blackout,
              mig.longest_gap_ms, mig.probes_lost,
              json_bool(standby_ok).c_str(), json_bool(migration_ok).c_str(),
              json_bool(deterministic).c_str());

  // Acceptance gates: fail loudly so CI catches a survivability regression.
  return (standby_ok && faster && migration_ok && deterministic) ? 0 : 1;
}
