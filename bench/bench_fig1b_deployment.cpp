// Fig. 1b — Deployment: a PVN mixes in-network devices (solid boxes) with
// software middleboxes (dashed boxes) instantiated per-user.
//
// We measure what deployment costs as the software chain grows: handshake
// latency (instantiations run in parallel, so the 30 ms shows up once, not
// per module), rules installed, memory, and price — and compare reusing a
// pre-existing "physical" middlebox (no instantiation, no memory) for one
// function.
#include "common.h"
#include "mbox/inline_modules.h"
#include "testbed/testbed.h"

using namespace pvn;

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("Fig1b deployment cost vs chain composition",
               "software middleboxes instantiate in ~30 ms (parallel) and "
               "6 MB each; reusing existing in-network functions is free");

  const std::vector<std::vector<std::string>> chains = {
      {},
      {"pii-detector"},
      {"pii-detector", "tracker-blocker"},
      {"pii-detector", "tracker-blocker", "dns-validator"},
      {"pii-detector", "tracker-blocker", "dns-validator", "tls-validator"},
      {"pii-detector", "tracker-blocker", "dns-validator", "tls-validator",
       "malware-detector", "classifier"},
  };

  bench::header({"software modules", "deploy (ms)", "rules", "memory (MB)",
                 "price"});
  for (const auto& modules : chains) {
    Testbed tb;
    Pvnc pvnc;
    pvnc.name = "alice-phone";
    for (const std::string& m : modules) {
      pvnc.chain.push_back(PvncModule{m, {}});
    }
    const DeployOutcome out = tb.deploy(pvnc);
    std::uint64_t rules = 0;
    for (int t = 0; t < tb.access_sw->table_count(); ++t) {
      for (const FlowRule& r : tb.access_sw->table(t).rules()) {
        if (r.cookie != "infra") ++rules;
      }
    }
    bench::row(static_cast<int>(modules.size()),
               out.ok ? to_milliseconds(out.elapsed) : -1.0, rules,
               static_cast<double>(tb.mbox_host->memory_in_use()) /
                   (1024 * 1024),
               out.paid);
  }

  // Physical-middlebox reuse: the provider already runs a tracker-blocking
  // box, so it offers that module at no instantiation cost. Model: the
  // "physical" function costs no MboxHost memory because it is not
  // instantiated per user — the provider's chain references a shared
  // instance.
  std::printf("\n");
  bench::header({"variant", "deploy (ms)", "memory (MB)", "note"});
  {
    Testbed tb;
    Pvnc pvnc;
    pvnc.name = "alice-phone";
    pvnc.chain.push_back(PvncModule{"tracker-blocker", {}});
    const DeployOutcome out = tb.deploy(pvnc);
    bench::row("per-user software box",
               out.ok ? to_milliseconds(out.elapsed) : -1.0,
               static_cast<double>(tb.mbox_host->memory_in_use()) /
                   (1024 * 1024),
               "instantiated for this user");
  }
  {
    Testbed tb;
    // Shared physical instance, pre-registered; the PVN just points at it.
    TrackerBlocker shared({tb.addrs.tracker});
    Chain physical("physical-tb", 0);
    physical.append(&shared);
    tb.access_sw->register_processor("physical-tb", &physical);
    const SimTime t0 = tb.net.sim().now();
    FlowRule divert;
    divert.priority = 100;
    divert.match.src = Prefix{tb.addrs.client, 32};
    divert.cookie = "pvn:alice-phone";
    divert.actions.push_back(ActMbox{"physical-tb"});
    divert.actions.push_back(ActOutput{1});
    bool installed = false;
    tb.controller->install_rule(Testbed::kSwitchName, 0, divert,
                                [&](bool ok) { installed = ok; });
    tb.net.sim().run();
    bench::row("reused physical box",
               to_milliseconds(tb.net.sim().now() - t0),
               static_cast<double>(tb.mbox_host->memory_in_use()) /
                   (1024 * 1024),
               installed ? "shared in-network function" : "install failed");
  }
  return 0;
}
