// E9 — Detecting and blocking PII (paper §2.3 / §4, citing ReCon [30]).
//
// Claim: PII detection "can be efficiently deployed in carrier networks"
// whereas today's options either tunnel traffic to a remote network "at the
// cost of extra delay" or analyze on-device "at the cost of battery life and
// network performance."
//
// A telemetry workload emits N reports, K of which leak PII. We compare
// four deployments on blocked-leak recall, added fetch latency, and device
// CPU cost (modelled: on-device DPI charges 150 us of device CPU per packet
// and burns battery; in-network charges zero device CPU).
#include "common.h"
#include "mbox/inline_modules.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

constexpr int kReports = 40;
constexpr int kLeaky = 16;  // reports containing PII

struct PiiRun {
  int leaks_delivered = 0;   // leaky reports the tracker actually received
  int clean_delivered = 0;
  double mean_latency_ms = 0;
};

// Emits the workload; leaky reports carry "imei=..."; clean ones don't.
PiiRun run_workload(Testbed& tb, SimDuration extra_device_delay) {
  PiiRun result;
  auto http = std::make_unique<HttpClient>(*tb.client);
  int done = 0;
  double latency_sum = 0;

  // Count what the tracker actually receives, by inspecting its requests.
  auto leaks = std::make_shared<int>(0);
  auto clean = std::make_shared<int>(0);
  tb.tracker_http->set_handler([leaks, clean](const HttpRequest& req) {
    if (payload_contains(req.body, "imei=")) {
      ++*leaks;
    } else {
      ++*clean;
    }
    return synthesize_response(req);
  });

  for (int i = 0; i < kReports; ++i) {
    const bool leaky = i < kLeaky;
    std::string body = "event=heartbeat&n=" + std::to_string(i);
    if (leaky) body += "&imei=356938035643809&lat=42.3601";
    tb.net.sim().schedule_after(
        milliseconds(20) * i + extra_device_delay * i, [&, body] {
          http->fetch(tb.addrs.tracker, 80, "/collect",
                      [&](const HttpResponse&, const FetchTiming& t) {
                        ++done;
                        latency_sum += to_milliseconds(t.total());
                      },
                      {}, to_bytes(body), "POST");
        });
  }
  tb.net.sim().run_until(tb.net.sim().now() + seconds(120));
  result.leaks_delivered = *leaks;
  result.clean_delivered = *clean;
  result.mean_latency_ms = done > 0 ? latency_sum / done : 0;
  return result;
}

Pvnc pii_only_pvnc() {
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"pii-detector", {{"action", "block"}}});
  return pvnc;
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E9 PII leak blocking: where should the detector run?",
               "in-network PVNs block leaks without device cost or tunnel "
               "delay [30]");
  bench::header({"deployment", "leaks blocked", "clean delivered",
                 "mean latency (ms)", "device CPU (ms)"});

  // (a) No protection.
  {
    Testbed tb;
    const PiiRun r = run_workload(tb, 0);
    bench::row("none", kLeaky - r.leaks_delivered, r.clean_delivered,
               r.mean_latency_ms, 0.0);
  }
  // (b) On-device DPI: blocks everything but charges the device 150 us CPU
  // per report packet (and the battery that goes with it).
  {
    Testbed tb;
    // Model: device scans before sending; leaky reports are suppressed
    // locally, so only clean ones go out, each delayed by the scan.
    PiiRun r;
    auto clean = std::make_shared<int>(0);
    tb.tracker_http->set_handler([clean](const HttpRequest& req) {
      ++*clean;
      return synthesize_response(req);
    });
    HttpClient http(*tb.client);
    int done = 0;
    double latency_sum = 0;
    for (int i = kLeaky; i < kReports; ++i) {  // leaky ones never sent
      tb.net.sim().schedule_after(milliseconds(20) * i + microseconds(150) * i,
                                  [&, i] {
                                    (void)i;
                                    http.fetch(tb.addrs.tracker, 80, "/collect",
                                               [&](const HttpResponse&,
                                                   const FetchTiming& t) {
                                                 ++done;
                                                 latency_sum +=
                                                     to_milliseconds(t.total());
                                               },
                                               {}, to_bytes("event=heartbeat"),
                                               "POST");
                                  });
    }
    tb.net.sim().run_until(tb.net.sim().now() + seconds(120));
    r.clean_delivered = *clean;
    r.mean_latency_ms = done > 0 ? latency_sum / done : 0;
    bench::row("on-device DPI", kLeaky, r.clean_delivered, r.mean_latency_ms,
               to_milliseconds(microseconds(150) * kReports));
  }
  // (c) In-network PVN.
  {
    Testbed tb;
    const DeployOutcome out = tb.deploy(pii_only_pvnc());
    if (!out.ok) std::printf("deploy failed: %s\n", out.failure.c_str());
    const PiiRun r = run_workload(tb, 0);
    bench::row("in-network PVN", kLeaky - r.leaks_delivered,
               r.clean_delivered, r.mean_latency_ms, 0.0);
  }
  // (d) Cloud tunnel (ReCon-style): same detection, but every report pays
  // the tunnel detour. Model by adding the cloud RTT to the access link.
  {
    TestbedConfig cfg;
    cfg.access.latency = cfg.access.latency + milliseconds(40);
    Testbed tb(cfg);
    const DeployOutcome out = tb.deploy(pii_only_pvnc());
    if (!out.ok) std::printf("deploy failed: %s\n", out.failure.c_str());
    const PiiRun r = run_workload(tb, 0);
    bench::row("cloud tunnel (VPN)", kLeaky - r.leaks_delivered,
               r.clean_delivered, r.mean_latency_ms, 0.0);
  }
  return 0;
}
