// E15 — Dataplane viability microbenchmarks (google-benchmark + JSON).
//
// Claim (paper §3.3): PVN overhead must be "negligible relative to non-PVN
// connections" even with per-subscriber rules and chains. We measure the
// host-CPU cost of the mechanisms the per-packet path exercises: flow-table
// lookup vs table size (two-level hashed index vs the linear-scan baseline),
// middlebox chain traversal vs chain length, simulator event throughput,
// meter conformance, and the codec round-trips on the wire path.
//
// Besides the google-benchmark tables, the binary always emits a
// machine-readable BENCH_dataplane.json summary (override the path with
// PVN_BENCH_JSON) so the perf trajectory is recorded per commit. Quick mode
// (PVN_BENCH_QUICK=1 or --quick) shrinks iteration counts and skips the
// google-benchmark run — that is what the CI perf job uses.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common.h"
#include "mbox/host.h"
#include "mbox/inline_modules.h"
#include "sdn/flow_table.h"
#include "tunnel/esp.h"

using namespace pvn;

namespace {

// --- shared workload builders -------------------------------------------------

Packet make_udp_packet(Network& net, std::uint32_t salt = 0) {
  UdpHeader hdr;
  hdr.src_port = static_cast<Port>(40000 + salt % 1000);
  hdr.dst_port = 80;
  return net.make_packet(Ipv4Addr(10, 0, 0, 2 + (salt % 100)),
                         Ipv4Addr(93, 184, 216, 34), IpProto::kUdp,
                         serialize_udp(hdr, Bytes(1200, 0x5A)));
}

Ipv4Addr subscriber_dst(int i) {
  return Ipv4Addr(172, 16, static_cast<std::uint8_t>((i / 256) % 256),
                  static_cast<std::uint8_t>(i % 256));
}

// Installs `rules` per-subscriber exact-match rules plus a low-priority
// catch-all — the shape a PVN deployment compiles to (one /32 per device).
template <typename Table>
void fill_subscriber_rules(Table& table, int rules) {
  for (int i = 0; i < rules; ++i) {
    FlowRule rule;
    rule.priority = 100;
    rule.match.dst = Prefix{subscriber_dst(i), 32};
    rule.actions.push_back(ActOutput{1});
    table.add(rule);
  }
  FlowRule catchall;
  catchall.priority = 1;
  catchall.actions.push_back(ActOutput{1});
  table.add(catchall);
}

// Packets cycling over installed subscriber addresses (hash-path hits).
std::vector<Packet> subscriber_packets(Network& net, int rules,
                                       std::size_t count = 256) {
  std::vector<Packet> pool;
  pool.reserve(count);
  for (std::size_t p = 0; p < count; ++p) {
    Packet pkt = make_udp_packet(net, static_cast<std::uint32_t>(p));
    pkt.ip.dst = subscriber_dst(static_cast<int>(p * 97 % rules));
    pool.push_back(std::move(pkt));
  }
  return pool;
}

// The pre-index FlowTable: one sorted vector, linear scan per lookup. Kept
// here as the before/after baseline the JSON summary reports against.
class LinearFlowTable {
 public:
  void add(FlowRule rule) {
    const int prio = rule.priority;
    const int spec = rule.match.specificity();
    auto it = rules_.begin();
    for (; it != rules_.end(); ++it) {
      if (it->priority < prio) break;
      if (it->priority == prio && it->match.specificity() < spec) break;
    }
    rules_.insert(it, std::move(rule));
  }

  const FlowRule* lookup(const Packet& pkt, int in_port) const {
    for (const FlowRule& rule : rules_) {
      if (rule.match.matches(pkt, in_port)) {
        ++rule.hit_packets;
        rule.hit_bytes += pkt.size();
        return &rule;
      }
    }
    return nullptr;
  }

 private:
  std::vector<FlowRule> rules_;
};

// --- google-benchmark microbenches --------------------------------------------

void BM_FlowTableLookup(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  Network net;
  FlowTable table;
  fill_subscriber_rules(table, rules);
  const std::vector<Packet> pool = subscriber_packets(net, rules);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(pool[i++ % pool.size()], 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookup)->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(4096);

void BM_FlowTableLookupLinear(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  Network net;
  LinearFlowTable table;
  fill_subscriber_rules(table, rules);
  const std::vector<Packet> pool = subscriber_packets(net, rules);
  std::size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(pool[i++ % pool.size()], 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookupLinear)->Arg(1)->Arg(10)->Arg(100)->Arg(1000)->Arg(4096);

void BM_ChainTraversal(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  Simulator sim;
  MboxHost host(sim);
  Chain& chain = host.create_chain("bench");
  std::vector<std::unique_ptr<Middlebox>> modules;
  for (int i = 0; i < len; ++i) {
    modules.push_back(std::make_unique<PiiDetector>(
        std::vector<std::string>{"imei=", "password=", "lat="},
        PiiAction::kMonitor));
    chain.append(modules.back().get());
  }
  Network net;
  std::uint32_t salt = 0;
  for (auto _ : state) {
    SimDuration delay = 0;
    Packet pkt = make_udp_packet(net, salt++);
    benchmark::DoNotOptimize(chain.process(std::move(pkt), 0, delay));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainTraversal)->Arg(1)->Arg(2)->Arg(4)->Arg(5)->Arg(8);

void BM_SimEventThroughput(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    Simulator sim;
    struct Tick {
      Simulator* sim;
      int* remaining;
      void operator()() const {
        if (--*remaining > 0) sim->schedule_after(1, *this);
      }
    };
    int remaining = 10000;
    for (int i = 0; i < 64; ++i) sim.schedule_after(1, Tick{&sim, &remaining});
    state.ResumeTiming();
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimEventThroughput);

void BM_MeterConformance(benchmark::State& state) {
  Meter meter(Rate::mbps(100), 1 << 20);
  SimTime now = 0;
  for (auto _ : state) {
    now += 100;  // 100 ns between packets
    benchmark::DoNotOptimize(meter.conforms(1200, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeterConformance);

void BM_EspEncapDecap(benchmark::State& state) {
  Network net;
  const Bytes key = to_bytes("bench-key");
  const Packet inner = make_udp_packet(net);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    Packet outer = esp_encap(inner, Ipv4Addr(10, 0, 0, 1),
                             Ipv4Addr(203, 0, 113, 5), key, 1, ++seq);
    benchmark::DoNotOptimize(esp_decap(outer, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EspEncapDecap);

void BM_TcpHeaderCodec(benchmark::State& state) {
  TcpHeader hdr;
  hdr.src_port = 443;
  hdr.dst_port = 51234;
  hdr.seq = 123456;
  hdr.ack = 654321;
  hdr.flags = kTcpAck;
  hdr.sacks = {{1000, 2000}, {3000, 4000}};
  for (auto _ : state) {
    ByteWriter w;
    hdr.encode(w);
    ByteReader r(w.bytes());
    benchmark::DoNotOptimize(TcpHeader::decode(r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpHeaderCodec);

// --- JSON summary (the BENCH_dataplane.json perf trajectory) -------------------

double seconds_of(std::chrono::steady_clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

template <typename Body>
double rate_per_sec(std::size_t iters, Body&& body) {
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < iters; ++i) body(i);
  const auto t1 = std::chrono::steady_clock::now();
  const double secs = seconds_of(t1 - t0);
  return secs > 0 ? static_cast<double>(iters) / secs : 0.0;
}

struct FlowTableSample {
  int rules;
  double hashed_per_sec;
  double linear_per_sec;
  double speedup;
};

FlowTableSample measure_flow_table(int rules, bool quick) {
  Network net;
  FlowTable hashed;
  LinearFlowTable linear;
  fill_subscriber_rules(hashed, rules);
  fill_subscriber_rules(linear, rules);
  const std::vector<Packet> pool = subscriber_packets(net, rules);

  const std::size_t hashed_iters = quick ? 20000 : 400000;
  // The linear baseline is O(rules) per lookup; keep total work bounded.
  const std::size_t linear_iters =
      std::max<std::size_t>(quick ? 500 : 2000, (quick ? 400000u : 4000000u) /
                                                    static_cast<unsigned>(rules));

  FlowTableSample s;
  s.rules = rules;
  s.hashed_per_sec = rate_per_sec(hashed_iters, [&](std::size_t i) {
    benchmark::DoNotOptimize(hashed.lookup(pool[i % pool.size()], 0));
  });
  s.linear_per_sec = rate_per_sec(linear_iters, [&](std::size_t i) {
    benchmark::DoNotOptimize(linear.lookup(pool[i % pool.size()], 0));
  });
  s.speedup = s.linear_per_sec > 0 ? s.hashed_per_sec / s.linear_per_sec : 0.0;
  return s;
}

double measure_chain_packets_per_sec(int modules_count, bool quick) {
  Simulator sim;
  MboxHost host(sim);
  Chain& chain = host.create_chain("bench");
  std::vector<std::unique_ptr<Middlebox>> modules;
  for (int i = 0; i < modules_count; ++i) {
    modules.push_back(std::make_unique<PiiDetector>(
        std::vector<std::string>{"imei=", "password=", "lat="},
        PiiAction::kMonitor));
    chain.append(modules.back().get());
  }
  Network net;
  std::vector<Packet> pool;
  for (std::uint32_t p = 0; p < 64; ++p) pool.push_back(make_udp_packet(net, p));
  return rate_per_sec(quick ? 5000 : 100000, [&](std::size_t i) {
    SimDuration delay = 0;
    Packet pkt = pool[i % pool.size()];  // CoW copy: shares the payload
    benchmark::DoNotOptimize(chain.process(std::move(pkt), 0, delay));
  });
}

double measure_sim_events_per_sec(bool quick) {
  Simulator sim;
  struct Tick {
    Simulator* sim;
    long* remaining;
    void operator()() const {
      if (--*remaining > 0) sim->schedule_after(1, *this);
    }
  };
  long remaining = quick ? 100000 : 2000000;
  const long total = remaining;
  for (int i = 0; i < 64; ++i) sim.schedule_after(1, Tick{&sim, &remaining});
  const auto t0 = std::chrono::steady_clock::now();
  sim.run();
  const auto t1 = std::chrono::steady_clock::now();
  return static_cast<double>(total) / seconds_of(t1 - t0);
}

double measure_esp_roundtrips_per_sec(bool quick) {
  Network net;
  const Bytes key = to_bytes("bench-key");
  const Packet inner = make_udp_packet(net);
  return rate_per_sec(quick ? 2000 : 50000, [&](std::size_t i) {
    Packet outer = esp_encap(inner, Ipv4Addr(10, 0, 0, 1),
                             Ipv4Addr(203, 0, 113, 5), key, 1,
                             static_cast<std::uint32_t>(i + 1));
    benchmark::DoNotOptimize(esp_decap(outer, key));
  });
}

void write_json_summary(const char* path, bool quick) {
  const int kSizes[] = {16, 256, 1024, 4096};
  std::vector<FlowTableSample> samples;
  for (const int n : kSizes) samples.push_back(measure_flow_table(n, quick));
  const double chain5 = measure_chain_packets_per_sec(5, quick);
  const double events = measure_sim_events_per_sec(quick);
  const double esp = measure_esp_roundtrips_per_sec(quick);

  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"bench\": \"e15_dataplane\",\n");
  std::fprintf(f, "  \"quick\": %s,\n", quick ? "true" : "false");
  std::fprintf(f, "  \"flow_table\": [\n");
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const FlowTableSample& s = samples[i];
    std::fprintf(f,
                 "    {\"rules\": %d, \"hashed_lookups_per_sec\": %.0f, "
                 "\"linear_lookups_per_sec\": %.0f, \"speedup\": %.2f}%s\n",
                 s.rules, s.hashed_per_sec, s.linear_per_sec, s.speedup,
                 i + 1 < samples.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"chain5_packets_per_sec\": %.0f,\n", chain5);
  std::fprintf(f, "  \"sim_events_per_sec\": %.0f,\n", events);
  std::fprintf(f, "  \"esp_roundtrips_per_sec\": %.0f\n", esp);
  std::fprintf(f, "}\n");
  std::fclose(f);

  std::printf("\n=== E15 dataplane summary (%s) ===\n",
              quick ? "quick" : "full");
  for (const FlowTableSample& s : samples) {
    std::printf("flow_table %5d rules: hashed %12.0f /s   linear %12.0f /s   "
                "speedup %6.2fx\n",
                s.rules, s.hashed_per_sec, s.linear_per_sec, s.speedup);
  }
  std::printf("chain (5 modules):     %12.0f packets/s\n", chain5);
  std::printf("simulator:             %12.0f events/s\n", events);
  std::printf("esp encap+decap:       %12.0f roundtrips/s\n", esp);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bool quick = false;
  const char* env_quick = std::getenv("PVN_BENCH_QUICK");
  if (env_quick != nullptr && std::strcmp(env_quick, "0") != 0) quick = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--quick") == 0) quick = true;
  }

  if (!quick) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }

  const char* json_path = std::getenv("PVN_BENCH_JSON");
  write_json_summary(json_path != nullptr ? json_path : "BENCH_dataplane.json",
                     quick);
  return 0;
}
