// E15 — Dataplane viability microbenchmarks (google-benchmark).
//
// Claim (paper §3.3): PVN overhead must be "negligible relative to non-PVN
// connections" even with per-subscriber rules and chains. We measure the
// host-CPU cost of the mechanisms the per-packet path exercises: flow-table
// lookup vs table size, middlebox chain traversal vs chain length, meter
// conformance, and the codec round-trips on the wire path.
#include <benchmark/benchmark.h>

#include "mbox/host.h"
#include "mbox/inline_modules.h"
#include "sdn/flow_table.h"
#include "tunnel/esp.h"

using namespace pvn;

namespace {

Packet make_udp_packet(Network& net, std::uint32_t salt = 0) {
  UdpHeader hdr;
  hdr.src_port = static_cast<Port>(40000 + salt % 1000);
  hdr.dst_port = 80;
  return net.make_packet(Ipv4Addr(10, 0, 0, 2 + (salt % 100)),
                         Ipv4Addr(93, 184, 216, 34), IpProto::kUdp,
                         serialize_udp(hdr, Bytes(1200, 0x5A)));
}

void BM_FlowTableLookup(benchmark::State& state) {
  const int rules = static_cast<int>(state.range(0));
  Network net;
  FlowTable table;
  for (int i = 0; i < rules; ++i) {
    FlowRule rule;
    rule.priority = 100;
    rule.match.dst = Prefix{Ipv4Addr(172, 16, static_cast<uint8_t>(i / 256),
                                     static_cast<uint8_t>(i % 256)),
                            32};
    rule.actions.push_back(ActOutput{1});
    table.add(rule);
  }
  FlowRule catchall;  // what subscriber traffic actually hits
  catchall.priority = 1;
  catchall.actions.push_back(ActOutput{1});
  table.add(catchall);

  const Packet pkt = make_udp_packet(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.lookup(pkt, 0));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FlowTableLookup)->Arg(1)->Arg(10)->Arg(100)->Arg(1000);

void BM_ChainTraversal(benchmark::State& state) {
  const int len = static_cast<int>(state.range(0));
  Simulator sim;
  MboxHost host(sim);
  Chain& chain = host.create_chain("bench");
  std::vector<std::unique_ptr<Middlebox>> modules;
  for (int i = 0; i < len; ++i) {
    modules.push_back(std::make_unique<PiiDetector>(
        std::vector<std::string>{"imei=", "password=", "lat="},
        PiiAction::kMonitor));
    chain.append(modules.back().get());
  }
  Network net;
  std::uint32_t salt = 0;
  for (auto _ : state) {
    SimDuration delay = 0;
    Packet pkt = make_udp_packet(net, salt++);
    benchmark::DoNotOptimize(chain.process(std::move(pkt), 0, delay));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ChainTraversal)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_MeterConformance(benchmark::State& state) {
  Meter meter(Rate::mbps(100), 1 << 20);
  SimTime now = 0;
  for (auto _ : state) {
    now += 100;  // 100 ns between packets
    benchmark::DoNotOptimize(meter.conforms(1200, now));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MeterConformance);

void BM_EspEncapDecap(benchmark::State& state) {
  Network net;
  const Bytes key = to_bytes("bench-key");
  const Packet inner = make_udp_packet(net);
  std::uint32_t seq = 0;
  for (auto _ : state) {
    Packet outer = esp_encap(inner, Ipv4Addr(10, 0, 0, 1),
                             Ipv4Addr(203, 0, 113, 5), key, 1, ++seq);
    benchmark::DoNotOptimize(esp_decap(outer, key));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EspEncapDecap);

void BM_TcpHeaderCodec(benchmark::State& state) {
  TcpHeader hdr;
  hdr.src_port = 443;
  hdr.dst_port = 51234;
  hdr.seq = 123456;
  hdr.ack = 654321;
  hdr.flags = kTcpAck;
  hdr.sacks = {{1000, 2000}, {3000, 4000}};
  for (auto _ : state) {
    ByteWriter w;
    hdr.encode(w);
    ByteReader r(w.bytes());
    benchmark::DoNotOptimize(TcpHeader::decode(r));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TcpHeaderCodec);

}  // namespace

BENCHMARK_MAIN();
