// E5 — Why not the cloud / home? (paper §3.2).
//
// Claim: deploying PVN functionality by tunneling to a cloud or home network
// adds "10s of ms for well connected networks, but potentially 100s of ms
// for poorly connected networks", while in-network PVNs avoid the detour.
//
// We fetch a 100 KB page under three deployments (in-network middlebox,
// tunnel to a nearby cloud, tunnel to a distant home network) across three
// access-network qualities, and report completion time + added latency vs
// the no-PVN baseline.
#include "common.h"
#include "netsim/router.h"
#include "proto/host.h"
#include "tunnel/vpn.h"
#include "proto/http.h"
#include "workload/generators.h"

using namespace pvn;

namespace {

struct Scenario {
  const char* name;
  SimDuration detour_latency;  // one-way extra to the tunnel gateway
  bool tunneled;
};

struct AccessQuality {
  const char* name;
  SimDuration latency;
  Rate rate;
};

// client - ingress - wan - {gateway(detour), server}
SimDuration fetch_time(const AccessQuality& access, const Scenario& scenario) {
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& ingress = net.add_node<TunnelIngress>(
      "ingress", Ipv4Addr(10, 0, 0, 1), Ipv4Addr(203, 0, 113, 5),
      to_bytes("key"));
  auto& wan = net.add_node<Router>("wan");
  auto& gateway = net.add_node<VpnGateway>("gw", Ipv4Addr(203, 0, 113, 5),
                                           to_bytes("key"));
  auto& server = net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
  LinkParams access_link;
  access_link.latency = access.latency;
  access_link.rate = access.rate;
  LinkParams core;
  core.rate = Rate::mbps(1000);
  core.latency = milliseconds(10);
  LinkParams detour = core;
  detour.latency = scenario.detour_latency;
  net.connect(client, ingress, access_link);
  net.connect(ingress, wan, core);
  net.connect(wan, gateway, detour);
  net.connect(wan, server, core);
  wan.add_route(*Prefix::parse("10.0.0.0/24"), 0);
  wan.add_route(*Prefix::parse("203.0.113.5"), 1);
  wan.add_route(*Prefix::parse("0.0.0.0/0"), 2);
  if (!scenario.tunneled) {
    ingress.set_selector([](const Packet&) { return false; });
  }

  HttpServer http_server(server);
  HttpClient http(client);
  SimDuration total = 0;
  http.fetch(server.addr(), 80, "/bytes/20000",
             [&](const HttpResponse&, const FetchTiming& t) {
               total = t.total();
             });
  net.sim().run();
  return total;
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E5 tunnel overhead vs in-network PVN",
               "tunneling adds 10s of ms (well-connected) to 100s of ms "
               "(poorly connected); in-network PVNs avoid it");
  const AccessQuality qualities[] = {
      {"good-wifi (5ms)", milliseconds(5), Rate::mbps(80)},
      {"cellular (25ms)", milliseconds(25), Rate::mbps(20)},
      {"poor (80ms)", milliseconds(80), Rate::mbps(5)},
  };
  const Scenario scenarios[] = {
      {"in-network PVN", 0, false},
      {"cloud tunnel (+20ms)", milliseconds(20), true},
      {"home tunnel (+60ms)", milliseconds(60), true},
      {"distant tunnel (+150ms)", milliseconds(150), true},
  };

  bench::header({"access", "deployment", "fetch (ms)", "added vs in-net (ms)"});
  for (const AccessQuality& q : qualities) {
    const SimDuration base = fetch_time(q, scenarios[0]);
    for (const Scenario& s : scenarios) {
      const SimDuration t = fetch_time(q, s);
      bench::row(q.name, s.name, to_milliseconds(t),
                 to_milliseconds(t - base));
    }
  }
  return 0;
}
