// E12 — Offloading computation and communication / prefetching (paper §4,
// citing Procrastinator [29]).
//
// Claim: "many apps pre-fetch content to reduce user-perceived delays, but
// this can be costly in terms of data quota and battery if the pre-fetched
// content is not used. Using PVNs we can explore a middle ground, where we
// run code on the middlebox that prefetches content to move it closer to
// users, without consuming device resources."
//
// A page references 6 subresources; the user ends up viewing only 3. We
// compare: no prefetch, on-device prefetch (fetches all 6 over the access
// link), and PVN middlebox prefetch (warms an in-network cache; unused
// objects never cross the access link).
#include "common.h"
#include "netsim/trace.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

constexpr int kTotal = 6;
constexpr int kUsed = 3;
constexpr const char* kObjSize = "60000";

std::vector<std::string> all_paths() {
  std::vector<std::string> p;
  for (int i = 0; i < kTotal; ++i) {
    p.push_back("/bytes/" + std::string(kObjSize) + std::to_string(i % 10));
  }
  return p;
}

struct RunResult {
  SimDuration mean_view_latency = 0;  // per used object
  std::uint64_t access_link_bytes = 0;
};

// Fetches `paths` sequentially via `target`; measures mean latency of the
// `used` subset and total bytes crossing the client's access link.
RunResult run(Testbed& tb, Ipv4Addr target, Port port, bool device_prefetch) {
  TraceCollector trace(tb.net.sim());
  trace.attach(*tb.access_link);

  HttpClient http(*tb.client);
  const auto paths = all_paths();
  RunResult result;
  SimDuration latency_sum = 0;
  int fetched = 0;

  if (device_prefetch) {
    // The device fetches everything up front (quota burned on all 6).
    for (const std::string& p : paths) {
      http.fetch(target, port, p, [](const HttpResponse&, const FetchTiming&) {});
    }
    tb.net.sim().run();
  }
  // The user now views kUsed objects; with device prefetch these are local
  // (latency ~0), otherwise they are fetched on demand.
  for (int i = 0; i < kUsed; ++i) {
    if (device_prefetch) continue;  // already on the device
    http.fetch(target, port, paths[static_cast<std::size_t>(i)],
               [&](const HttpResponse&, const FetchTiming& t) {
                 latency_sum += t.total();
                 ++fetched;
               });
    tb.net.sim().run();
  }
  result.mean_view_latency = fetched > 0 ? latency_sum / fetched : 0;
  result.access_link_bytes =
      trace.bytes_from_to("access-sw", "client") +
      trace.bytes_from_to("client", "access-sw");
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E12 prefetch placement",
               "middlebox prefetch gives near-cache latency without burning "
               "device quota on unused objects [29]");
  bench::header({"strategy", "view latency (ms)", "access-link KB",
                 "wasted KB (unused)"});

  const double obj_kb = 60000.0 / 1000.0;
  // (a) No prefetch: on-demand fetches from the far origin.
  {
    TestbedConfig cfg;
    cfg.server_link.latency = milliseconds(60);  // far origin
    Testbed tb(cfg);
    const RunResult r = run(tb, tb.addrs.web, 80, false);
    bench::row("no prefetch", to_milliseconds(r.mean_view_latency),
               static_cast<double>(r.access_link_bytes) / 1000.0, 0.0);
  }
  // (b) On-device prefetch: everything crosses the access link.
  {
    TestbedConfig cfg;
    cfg.server_link.latency = milliseconds(60);
    Testbed tb(cfg);
    const RunResult r = run(tb, tb.addrs.web, 80, true);
    bench::row("on-device prefetch", 0.0,
               static_cast<double>(r.access_link_bytes) / 1000.0,
               (kTotal - kUsed) * obj_kb);
  }
  // (c) PVN middlebox prefetch: the proxy warms its cache from the origin;
  // the device pulls only what it views.
  {
    TestbedConfig cfg;
    cfg.server_link.latency = milliseconds(60);
    Testbed tb(cfg);
    auto& proxy = tb.net.add_node<PrefetchingProxy>(
        "prefetcher", Ipv4Addr(10, 0, 0, 30), tb.addrs.web, Port{8081});
    tb.net.connect(*tb.access_sw, proxy, LinkParams{});  // switch port 3
    FlowRule to_proxy;
    to_proxy.priority = 500;
    to_proxy.match.dst = Prefix{proxy.addr(), 32};
    to_proxy.cookie = "infra";
    to_proxy.actions.push_back(ActOutput{3});
    tb.access_sw->table(0).add(to_proxy);

    proxy.prefetch(all_paths());
    tb.net.sim().run();  // cache warms via the backhaul, not the access link

    const RunResult r = run(tb, proxy.addr(), 8081, false);
    bench::row("PVN middlebox prefetch", to_milliseconds(r.mean_view_latency),
               static_cast<double>(r.access_link_bytes) / 1000.0, 0.0);
  }
  return 0;
}
