// E8 — Discovery and Deployment Protocol (paper §3.1).
//
// The paper specifies the DM -> Offer -> DeployRequest -> Ack/Nack exchange
// with sequence numbers, subset offers, prices, and expiry. This bench runs
// every protocol outcome and reports message counts and handshake latency,
// then sweeps the offer-collection window (the knob trading discovery
// latency against hearing more offers in an anycast zone).
#include "common.h"
#include "testbed/testbed.h"

using namespace pvn;

namespace {

void outcome_row(const char* scenario, const DeployOutcome& out) {
  bench::row(scenario, out.ok ? "deployed" : out.failure,
             out.messages_sent + out.messages_received,
             to_milliseconds(out.elapsed));
}

}  // namespace

int main(int argc, char** argv) {
  pvn::bench::TelemetryScope telemetry(argc, argv);
  bench::title("E8 discovery/deployment protocol outcomes",
               "devices negotiate full, partial, or no deployment with "
               "bounded message counts and latency (§3.1)");
  bench::header({"scenario", "outcome", "messages", "elapsed (ms)"});

  // Full offer accepted.
  {
    Testbed tb;
    outcome_row("full offer", tb.deploy(tb.standard_pvnc()));
  }
  // Partial offer -> subset deployment.
  {
    TestbedConfig cfg;
    cfg.allowed_modules = {"pii-detector", "tracker-blocker"};
    Testbed tb(cfg);
    outcome_row("partial offer (subset)", tb.deploy(tb.standard_pvnc()));
  }
  // Hard constraint unmet -> client walks away.
  {
    TestbedConfig cfg;
    cfg.allowed_modules = {"pii-detector"};
    Testbed tb(cfg);
    ClientConfig ccfg;
    ccfg.constraints.required_modules = {"tls-validator"};
    outcome_row("hard constraint unmet", tb.deploy(tb.standard_pvnc(), ccfg));
  }
  // Too expensive.
  {
    TestbedConfig cfg;
    cfg.price_multiplier = 50.0;
    Testbed tb(cfg);
    ClientConfig ccfg;
    ccfg.constraints.max_price = 1.0;
    outcome_row("over budget", tb.deploy(tb.standard_pvnc(), ccfg));
  }
  // No PVN support at all (silent network).
  {
    Testbed tb;
    tb.server.reset();  // the network stops answering
    outcome_row("no PVN support", tb.deploy(tb.standard_pvnc()));
  }
  // NACK: middlebox memory exhausted.
  {
    Testbed tb;
    MboxHostConfig mcfg;
    mcfg.memory_budget = 6 * kMiB;  // room for 1 instance, chain needs 4
    auto tiny_host = std::make_unique<MboxHost>(tb.net.sim(), mcfg);
    ServerConfig scfg;
    scfg.switch_name = Testbed::kSwitchName;
    tb.server.reset();  // retire the default server first (unbinds the port)
    auto server = std::make_unique<DeploymentServer>(
        *tb.control, *tb.store, *tiny_host, *tb.controller, *tb.ledger, scfg);
    outcome_row("NACK (out of memory)", tb.deploy(tb.standard_pvnc()));
  }

  // Offer-wait sweep: discovery latency is dominated by how long the device
  // listens for offers.
  std::printf("\n");
  bench::header({"offer wait (ms)", "outcome", "messages", "elapsed (ms)"});
  for (const int wait_ms : {50, 100, 250, 500, 1000}) {
    Testbed tb;
    ClientConfig ccfg;
    ccfg.offer_wait = milliseconds(wait_ms);
    const DeployOutcome out = tb.deploy(tb.standard_pvnc(), ccfg);
    bench::row(wait_ms, out.ok ? "deployed" : out.failure,
               out.messages_sent + out.messages_received,
               to_milliseconds(out.elapsed));
  }
  return 0;
}
