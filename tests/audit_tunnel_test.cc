// Tests for the tunnel substrate (ESP-lite, VPN gateway NAT, locator) and
// the auditor (attestation, path proofs, active measurements, reputation).
#include <gtest/gtest.h>

#include "audit/attestation.h"
#include "audit/path_proof.h"
#include "testbed/testbed.h"
#include "tunnel/locator.h"

namespace pvn {
namespace {

// --- ESP ---------------------------------------------------------------------

TEST(Esp, EncapDecapRoundTrip) {
  Network net;
  const Bytes key = to_bytes("k");
  Packet inner = net.make_packet(Ipv4Addr(10, 0, 0, 2), Ipv4Addr(1, 2, 3, 4),
                                 IpProto::kUdp, Bytes(100, 0x42));
  inner.ip.tos = 0x20;
  const Packet outer = esp_encap(inner, Ipv4Addr(10, 0, 0, 1),
                                 Ipv4Addr(203, 0, 113, 5), key, 1, 7);
  EXPECT_EQ(outer.ip.proto, IpProto::kEsp);
  EXPECT_EQ(outer.ip.dst, Ipv4Addr(203, 0, 113, 5));
  EXPECT_EQ(outer.ip.tos, 0);  // inner class hidden
  EXPECT_GT(outer.size(), inner.size());

  const auto back = esp_decap(outer, key);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->ip.src, inner.ip.src);
  EXPECT_EQ(back->ip.dst, inner.ip.dst);
  EXPECT_EQ(back->ip.tos, 0x20);
  EXPECT_EQ(back->l4, inner.l4);
  EXPECT_EQ(esp_peek_spi(outer), 1u);
}

TEST(Esp, WrongKeyOrTamperFailsAuth) {
  Network net;
  Packet inner = net.make_packet(Ipv4Addr(10, 0, 0, 2), Ipv4Addr(1, 2, 3, 4),
                                 IpProto::kUdp, Bytes(50, 0x42));
  Packet outer = esp_encap(inner, Ipv4Addr(10, 0, 0, 1),
                           Ipv4Addr(203, 0, 113, 5), to_bytes("k"), 1, 1);
  EXPECT_FALSE(esp_decap(outer, to_bytes("wrong")).has_value());
  outer.l4[12] ^= 0xFF;
  EXPECT_FALSE(esp_decap(outer, to_bytes("k")).has_value());
  // Non-ESP packets are rejected outright.
  EXPECT_FALSE(esp_decap(inner, to_bytes("k")).has_value());
}

// --- VPN end-to-end through the testbed cloud gateway --------------------------

TEST(Vpn, TunneledHttpFetchWorksEndToEnd) {
  // Insert a TunnelIngress between client and switch by building a custom
  // mini-topology: client - ingress - wan - {gateway, server}.
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& ingress = net.add_node<TunnelIngress>(
      "ingress", Ipv4Addr(10, 0, 0, 1), Ipv4Addr(203, 0, 113, 5),
      to_bytes("vpnkey"));
  auto& wan = net.add_node<Router>("wan");
  auto& gateway = net.add_node<VpnGateway>("gw", Ipv4Addr(203, 0, 113, 5),
                                           to_bytes("vpnkey"));
  auto& server = net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
  net.connect(client, ingress);   // ingress port 0
  net.connect(ingress, wan);      // ingress port 1, wan port 0
  net.connect(wan, gateway);      // wan port 1
  net.connect(wan, server);       // wan port 2
  wan.add_route(*Prefix::parse("10.0.0.0/24"), 0);
  wan.add_route(*Prefix::parse("203.0.113.5"), 1);
  wan.add_route(*Prefix::parse("0.0.0.0/0"), 2);

  HttpServer http_server(server);
  HttpClient http(client);
  FetchTiming timing;
  http.fetch(server.addr(), 80, "/bytes/40000",
             [&](const HttpResponse&, const FetchTiming& t) { timing = t; });
  net.sim().run();
  EXPECT_TRUE(timing.ok);
  EXPECT_GT(ingress.tunneled(), 0u);
  EXPECT_GT(gateway.decapsulated(), 0u);
  EXPECT_GT(gateway.reencapsulated(), 0u);
  EXPECT_EQ(gateway.auth_failures(), 0u);
  // The server saw the gateway, not the client (privacy from the access
  // network's vantage point).
  EXPECT_GT(server.rsts_sent() + 1, 0u);  // server reachable
}

TEST(Vpn, SelectiveRedirectionOnlyTunnelsSelectedFlows) {
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& ingress = net.add_node<TunnelIngress>(
      "ingress", Ipv4Addr(10, 0, 0, 1), Ipv4Addr(203, 0, 113, 5),
      to_bytes("vpnkey"));
  auto& wan = net.add_node<Router>("wan");
  auto& gateway = net.add_node<VpnGateway>("gw", Ipv4Addr(203, 0, 113, 5),
                                           to_bytes("vpnkey"));
  auto& server = net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
  net.connect(client, ingress);
  net.connect(ingress, wan);
  net.connect(wan, gateway);
  net.connect(wan, server);
  wan.add_route(*Prefix::parse("10.0.0.0/24"), 0);
  wan.add_route(*Prefix::parse("203.0.113.5"), 1);
  wan.add_route(*Prefix::parse("0.0.0.0/0"), 2);

  // Only port-443 flows are redirected (Fig. 1c: TLS interception needs the
  // trusted cloud environment).
  ingress.set_selector([](const Packet& pkt) {
    Port sp = 0, dp = 0;
    if (!peek_ports(static_cast<std::uint8_t>(pkt.ip.proto), pkt.l4, sp, dp)) {
      return false;
    }
    return dp == 443 || sp == 443;
  });

  int got80 = 0, got443 = 0;
  server.bind_udp(80, [&](Ipv4Addr, Port, Port, const Bytes&) { ++got80; });
  server.bind_udp(443, [&](Ipv4Addr, Port, Port, const Bytes&) { ++got443; });
  client.send_udp(server.addr(), 1111, 80, Bytes(10, 1));
  client.send_udp(server.addr(), 1111, 443, Bytes(10, 2));
  net.sim().run();
  EXPECT_EQ(got80, 1);
  EXPECT_EQ(got443, 1);
  EXPECT_EQ(ingress.tunneled(), 1u);
  EXPECT_EQ(ingress.bypassed(), 1u);
  EXPECT_EQ(gateway.decapsulated(), 1u);
}

// --- Locator -------------------------------------------------------------------

TEST(Locator, RanksCandidatesByRtt) {
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& wan = net.add_node<Router>("wan");
  auto& near_host = net.add_node<Host>("near", Ipv4Addr(20, 0, 0, 1));
  auto& far_host = net.add_node<Host>("far", Ipv4Addr(30, 0, 0, 1));
  LinkParams near_link, far_link;
  near_link.latency = milliseconds(5);
  far_link.latency = milliseconds(60);
  net.connect(client, wan);
  net.connect(wan, near_host, near_link);
  net.connect(wan, far_host, far_link);
  wan.add_route(*Prefix::parse("10.0.0.0/8"), 0);
  wan.add_route(*Prefix::parse("20.0.0.0/8"), 1);
  wan.add_route(*Prefix::parse("30.0.0.0/8"), 2);
  install_echo_responder(near_host);
  install_echo_responder(far_host);

  RemotePvnLocator locator(client);
  std::vector<ProbeResult> results;
  locator.probe(
      {far_host.addr(), near_host.addr(), Ipv4Addr(99, 9, 9, 9)},
      [&](const std::vector<ProbeResult>& r) { results = r; });
  net.sim().run();
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].candidate, near_host.addr());
  EXPECT_TRUE(results[0].reachable);
  EXPECT_EQ(results[1].candidate, far_host.addr());
  EXPECT_FALSE(results[2].reachable);  // 99.9.9.9 has no route
  EXPECT_LT(results[0].rtt, results[1].rtt);
  const ProbeResult* best = RemotePvnLocator::best(results);
  ASSERT_NE(best, nullptr);
  EXPECT_EQ(best->candidate, near_host.addr());
}

TEST(Locator, AllUnreachableReportsNone) {
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& wan = net.add_node<Router>("wan");
  net.connect(client, wan);
  wan.add_route(*Prefix::parse("10.0.0.0/8"), 0);
  RemotePvnLocator locator(client);
  std::vector<ProbeResult> results;
  locator.probe({Ipv4Addr(99, 9, 9, 9)},
                [&](const std::vector<ProbeResult>& r) { results = r; });
  net.sim().run();
  ASSERT_EQ(results.size(), 1u);
  EXPECT_FALSE(results[0].reachable);
  EXPECT_EQ(RemotePvnLocator::best(results), nullptr);
}

// --- Attestation -----------------------------------------------------------------

TEST(Attestation, HonestQuoteVerifies) {
  Attester enclave(1001);
  KeyRegistry trusted;
  trusted.trust(enclave.key());
  const Digest cfg = config_digest({"tls-validator", "pii-detector"},
                                   {"rule1", "rule2"});
  const AttestationQuote quote = enclave.quote(42, cfg, seconds(1));
  EXPECT_EQ(verify_quote(quote, trusted, enclave.key().public_key(), 42, cfg),
            AttestationVerdict::kOk);
}

TEST(Attestation, DetectsEveryCheatMode) {
  Attester enclave(1001);
  Attester rogue(6666);
  KeyRegistry trusted;
  trusted.trust(enclave.key());
  const Digest cfg = config_digest({"tls-validator"}, {"r"});
  const Digest other_cfg = config_digest({"nothing"}, {});

  // Unknown enclave key (software-only impostor).
  const AttestationQuote fake = rogue.quote(42, cfg, 0);
  EXPECT_EQ(verify_quote(fake, trusted, rogue.key().public_key(), 42, cfg),
            AttestationVerdict::kUnknownKey);
  // Forged signature under a trusted key id.
  AttestationQuote tampered = enclave.quote(42, cfg, 0);
  tampered.config_digest = other_cfg;  // body changed, signature stale
  EXPECT_EQ(
      verify_quote(tampered, trusted, enclave.key().public_key(), 42, other_cfg),
      AttestationVerdict::kBadSignature);
  // Replay (wrong nonce).
  const AttestationQuote replay = enclave.quote(41, cfg, 0);
  EXPECT_EQ(verify_quote(replay, trusted, enclave.key().public_key(), 42, cfg),
            AttestationVerdict::kWrongNonce);
  // Honest quote over the WRONG config (the skipped-module cheat).
  const AttestationQuote wrong_cfg = enclave.quote(42, other_cfg, 0);
  EXPECT_EQ(
      verify_quote(wrong_cfg, trusted, enclave.key().public_key(), 42, cfg),
      AttestationVerdict::kConfigMismatch);
}

TEST(Attestation, ConfigDigestIsOrderSensitive) {
  EXPECT_NE(config_digest({"a", "b"}, {}).hex(),
            config_digest({"b", "a"}, {}).hex());
  EXPECT_NE(config_digest({"a"}, {"r1"}).hex(),
            config_digest({"a"}, {"r2"}).hex());
}

// --- Path proofs -------------------------------------------------------------------

TEST(PathProof, ValidChainVerifies) {
  const std::vector<Bytes> keys = {to_bytes("hop1"), to_bytes("hop2"),
                                   to_bytes("hop3")};
  const Digest pkt = digest_of("packet-bytes");
  PathProof proof;
  proof.packet_digest = pkt;
  for (const Bytes& k : keys) extend_proof(proof, k);
  EXPECT_TRUE(verify_proof(proof, pkt, keys));
}

TEST(PathProof, DetectsSkippedReorderedAndForgedHops) {
  const std::vector<Bytes> keys = {to_bytes("hop1"), to_bytes("hop2"),
                                   to_bytes("hop3")};
  const Digest pkt = digest_of("packet-bytes");

  // Skipped middle hop (ISP routed around the middlebox).
  PathProof skipped;
  skipped.packet_digest = pkt;
  extend_proof(skipped, keys[0]);
  extend_proof(skipped, keys[2]);
  EXPECT_FALSE(verify_proof(skipped, pkt, keys));

  // Reordered hops.
  PathProof reordered;
  reordered.packet_digest = pkt;
  extend_proof(reordered, keys[1]);
  extend_proof(reordered, keys[0]);
  extend_proof(reordered, keys[2]);
  EXPECT_FALSE(verify_proof(reordered, pkt, keys));

  // Forged hop key.
  PathProof forged;
  forged.packet_digest = pkt;
  extend_proof(forged, keys[0]);
  extend_proof(forged, to_bytes("evil"));
  extend_proof(forged, keys[2]);
  EXPECT_FALSE(verify_proof(forged, pkt, keys));

  // Proof bound to a different packet.
  PathProof wrong_pkt;
  wrong_pkt.packet_digest = digest_of("other-packet");
  for (const Bytes& k : keys) extend_proof(wrong_pkt, k);
  EXPECT_FALSE(verify_proof(wrong_pkt, pkt, keys));
}

// --- Active measurements -------------------------------------------------------------

TEST(RateProbe, MeasuresShapingOnMarkedTraffic) {
  // ISP shapes tos 0x20 ("video") to 1.5 Mbps; control traffic unshaped.
  Testbed tb;
  tb.access_sw->add_meter("isp-video", Rate::kbps(1500), 20000);
  FlowRule shape;
  shape.priority = 50;
  shape.match.tos = 0x20;
  shape.cookie = "isp-policy";
  shape.actions.push_back(ActMeter{"isp-video"});
  shape.actions.push_back(ActOutput{1});
  tb.access_sw->table(0).add(shape);

  RateProbe control_probe(*tb.client, *tb.web, 9001);
  RateProbe marked_probe(*tb.client, *tb.web, 9002);
  double control = 0, marked = 0;
  control_probe.run(Rate::mbps(10), seconds(2), 0, "application/octet",
                    [&](const RateProbe::Result& r) {
                      control = r.achieved_mbps;
                    });
  tb.net.sim().run();
  marked_probe.run(Rate::mbps(10), seconds(2), 0x20, "video/mp4",
                   [&](const RateProbe::Result& r) {
                     marked = r.achieved_mbps;
                   });
  tb.net.sim().run();
  EXPECT_GT(control, 8.0);
  EXPECT_LT(marked, 2.5);
  const DifferentiationVerdict verdict =
      judge_differentiation(control, marked);
  EXPECT_TRUE(verdict.differentiated);
  EXPECT_LT(verdict.ratio, 0.3);
}

TEST(RateProbe, NoShapingNoDetection) {
  Testbed tb;
  RateProbe control_probe(*tb.client, *tb.web, 9001);
  RateProbe marked_probe(*tb.client, *tb.web, 9002);
  double control = 0, marked = 0;
  control_probe.run(Rate::mbps(10), seconds(2), 0, "application/octet",
                    [&](const RateProbe::Result& r) {
                      control = r.achieved_mbps;
                    });
  tb.net.sim().run();
  marked_probe.run(Rate::mbps(10), seconds(2), 0x20, "video/mp4",
                   [&](const RateProbe::Result& r) {
                     marked = r.achieved_mbps;
                   });
  tb.net.sim().run();
  EXPECT_FALSE(judge_differentiation(control, marked).differentiated);
}

TEST(ContentCheck, DetectsInNetworkModification) {
  Testbed tb;
  // Learn the honest digest first.
  Digest expected;
  {
    HttpClient http(*tb.client);
    http.fetch(tb.addrs.web, 80, "/bytes/5000",
               [&](const HttpResponse& resp, const FetchTiming&) {
                 expected = digest_of(resp.body);
               });
    tb.net.sim().run();
  }
  // Honest network: no modification.
  ContentCheck check1(*tb.client);
  bool modified = true;
  check1.run(tb.addrs.web, 80, "/bytes/5000", expected,
             [&](bool m, Digest) { modified = m; });
  tb.net.sim().run();
  EXPECT_FALSE(modified);

  // ISP now injects a middlebox that rewrites content (ad injection).
  class AdInjector : public Middlebox {
   public:
    const std::string& name() const override { return name_; }
    Verdict process(Packet& pkt, MboxContext&) override {
      // Crude content tampering: flip payload bytes on HTTP responses.
      if (pkt.ip.proto == IpProto::kTcp &&
          pkt.l4.size() > TcpHeader::kWireSize + 50) {
        pkt.l4[TcpHeader::kWireSize + 40] ^= 0x1;
      }
      return Verdict::kForward;
    }
    std::string name_ = "ad-injector";
  } injector;

  Chain isp_chain("isp-injector", 0);
  isp_chain.append(&injector);
  tb.access_sw->register_processor("isp-injector", &isp_chain);
  FlowRule divert;
  divert.priority = 60;
  divert.match.dst = Prefix{tb.addrs.client, 32};
  divert.match.proto = IpProto::kTcp;
  divert.cookie = "isp-policy";
  divert.actions.push_back(ActMbox{"isp-injector"});
  divert.actions.push_back(ActOutput{0});
  tb.access_sw->table(0).add(divert);

  ContentCheck check2(*tb.client);
  bool modified2 = false;
  check2.run(tb.addrs.web, 80, "/bytes/5000", expected,
             [&](bool m, Digest) { modified2 = m; });
  tb.net.sim().run_until(tb.net.sim().now() + seconds(60));
  EXPECT_TRUE(modified2);
}

TEST(PathInflation, JudgesAgainstBaseline) {
  EXPECT_FALSE(
      judge_path_inflation(milliseconds(30), milliseconds(25)).inflated);
  EXPECT_TRUE(
      judge_path_inflation(milliseconds(100), milliseconds(25)).inflated);
  EXPECT_FALSE(judge_path_inflation(milliseconds(100), 0).inflated);
}

TEST(TlsInterception, PinnedKeyComparison) {
  KeyPair real(1), mitm(2);
  EXPECT_FALSE(tls_intercepted(real.public_key(), real.public_key()));
  EXPECT_TRUE(tls_intercepted(real.public_key(), mitm.public_key()));
}

// --- Reputation -----------------------------------------------------------------------

TEST(Reputation, ViolationsErodeAndAuditsRecover) {
  ReputationSystem rep;
  EXPECT_DOUBLE_EQ(rep.score("isp-a"), 1.0);
  rep.report_violation("isp-a");
  EXPECT_LT(rep.score("isp-a"), 1.0);
  const double after_violation = rep.score("isp-a");
  rep.report_clean_audit("isp-a");
  EXPECT_GT(rep.score("isp-a"), after_violation);
}

TEST(Reputation, BlacklistAndProviderSelection) {
  ReputationSystem rep(0.5);
  for (int i = 0; i < 5; ++i) rep.report_violation("cheater");
  EXPECT_TRUE(rep.blacklisted("cheater"));
  EXPECT_FALSE(rep.blacklisted("honest"));
  EXPECT_EQ(rep.pick_provider({"cheater", "honest"}), "honest");
  for (int i = 0; i < 5; ++i) rep.report_violation("honest");
  EXPECT_EQ(rep.pick_provider({"cheater", "honest"}), "");
}

TEST(ViolationLog, CountsByKind) {
  ViolationLog log;
  log.record(Violation{0, "isp-a", "differentiation", "video shaped"});
  log.record(Violation{1, "isp-a", "differentiation", "audio shaped"});
  log.record(Violation{2, "isp-a", "content-modification", "ads injected"});
  EXPECT_EQ(log.count("differentiation"), 2u);
  EXPECT_EQ(log.count("content-modification"), 1u);
  EXPECT_EQ(log.count("path-inflation"), 0u);
  EXPECT_EQ(log.all().size(), 3u);
}

}  // namespace
}  // namespace pvn
