// Middlebox runtime tests: ClickOS-style resource model, chain semantics,
// each inline DPI module, the TCP-terminating proxies, and the PVN Store.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "mbox/host.h"
#include "mbox/inline_modules.h"
#include "mbox/proxies.h"
#include "mbox/registry.h"
#include "workload/generators.h"

namespace pvn {
namespace {

using testing::DumbbellTopo;

LinkParams quick() {
  LinkParams lp;
  lp.rate = Rate::mbps(100);
  lp.latency = milliseconds(2);
  return lp;
}

Packet http_packet(Network& net, Ipv4Addr src, Ipv4Addr dst,
                   const std::string& payload_text, Port sport = 50000,
                   Port dport = 80) {
  TcpHeader hdr;
  hdr.src_port = sport;
  hdr.dst_port = dport;
  hdr.flags = kTcpAck;
  return net.make_packet(src, dst, IpProto::kTcp,
                         serialize_tcp(hdr, to_bytes(payload_text)));
}

// --- MboxHost resource model ----------------------------------------------------

class NopMbox : public Middlebox {
 public:
  const std::string& name() const override { return name_; }
  Verdict process(Packet&, MboxContext&) override { return Verdict::kForward; }

 private:
  std::string name_ = "nop";
};

TEST(MboxHost, InstantiationChargesClickOsDelay) {
  Simulator sim;
  MboxHost host(sim);
  Middlebox* got = nullptr;
  SimTime ready_at = -1;
  host.instantiate(std::make_unique<NopMbox>(), [&](Middlebox* m) {
    got = m;
    ready_at = sim.now();
  });
  sim.run();
  ASSERT_NE(got, nullptr);
  EXPECT_EQ(ready_at, milliseconds(30));  // the [24] number
  EXPECT_EQ(host.memory_in_use(), 6 * kMiB);
  EXPECT_EQ(host.instances(), 1);
}

TEST(MboxHost, MemoryBudgetRejectsOverflow) {
  Simulator sim;
  MboxHostConfig cfg;
  cfg.memory_budget = 12 * kMiB;  // room for exactly 2 instances
  MboxHost host(sim, cfg);
  int ok = 0, failed = 0;
  for (int i = 0; i < 3; ++i) {
    host.instantiate(std::make_unique<NopMbox>(), [&](Middlebox* m) {
      (m != nullptr ? ok : failed) += 1;
    });
  }
  sim.run();
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(failed, 1);
}

TEST(MboxHost, DestroyReleasesMemory) {
  Simulator sim;
  MboxHost host(sim);
  Middlebox* got = nullptr;
  host.instantiate(std::make_unique<NopMbox>(), [&](Middlebox* m) { got = m; });
  sim.run();
  EXPECT_TRUE(host.destroy(got));
  EXPECT_EQ(host.memory_in_use(), 0);
  EXPECT_FALSE(host.destroy(got));
}

TEST(Chain, ChargesBasePlusModuleDelay) {
  Simulator sim;
  MboxHost host(sim);
  Chain& chain = host.create_chain("c");
  NopMbox nop;
  chain.append(&nop);
  SimDuration delay = 0;
  Network net;
  Packet pkt = http_packet(net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                           "x");
  const auto out = chain.process(std::move(pkt), 0, delay);
  EXPECT_EQ(out.size(), 1u);
  EXPECT_EQ(delay, microseconds(45));  // base ClickOS per-packet cost
  EXPECT_EQ(nop.packets_seen, 1u);
}

// --- PiiDetector -------------------------------------------------------------------

TEST(PiiDetector, MonitorsWithoutBlocking) {
  Network net;
  PiiDetector detector({"imei=123456", "lat="}, PiiAction::kMonitor);
  std::vector<MboxFinding> findings;
  MboxContext ctx;
  ctx.findings = &findings;
  Packet pkt = http_packet(net, Ipv4Addr(10, 0, 0, 2), Ipv4Addr(6, 6, 6, 6),
                           "POST /c HTTP/1.1\r\n\r\nimei=123456&lat=42.1");
  EXPECT_EQ(detector.process(pkt, ctx), Middlebox::Verdict::kForward);
  EXPECT_EQ(detector.leaks_found(), 2u);
  EXPECT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].kind, "pii-leak");
}

TEST(PiiDetector, BlockDropsLeakyPacket) {
  Network net;
  PiiDetector detector({"password="}, PiiAction::kBlock);
  MboxContext ctx;
  Packet pkt = http_packet(net, Ipv4Addr(10, 0, 0, 2), Ipv4Addr(6, 6, 6, 6),
                           "user=bob&password=hunter2");
  EXPECT_EQ(detector.process(pkt, ctx), Middlebox::Verdict::kDrop);
}

TEST(PiiDetector, ScrubReplacesInPlace) {
  Network net;
  PiiDetector detector({"hunter2"}, PiiAction::kScrub);
  MboxContext ctx;
  Packet pkt = http_packet(net, Ipv4Addr(10, 0, 0, 2), Ipv4Addr(6, 6, 6, 6),
                           "password=hunter2&x=1");
  const std::size_t before = pkt.size();
  EXPECT_EQ(detector.process(pkt, ctx), Middlebox::Verdict::kForward);
  EXPECT_EQ(pkt.size(), before);  // scrubbing never changes sizes
  EXPECT_FALSE(payload_contains(pkt.l4, "hunter2"));
  EXPECT_TRUE(payload_contains(pkt.l4, "xxxxxxx"));
}

TEST(PiiDetector, CleanTrafficUntouched) {
  Network net;
  PiiDetector detector({"password="}, PiiAction::kBlock);
  MboxContext ctx;
  Packet pkt = http_packet(net, Ipv4Addr(10, 0, 0, 2), Ipv4Addr(6, 6, 6, 6),
                           "GET /index.html HTTP/1.1\r\n\r\n");
  EXPECT_EQ(detector.process(pkt, ctx), Middlebox::Verdict::kForward);
  EXPECT_EQ(detector.leaks_found(), 0u);
}

// --- TrackerBlocker -----------------------------------------------------------------

TEST(TrackerBlocker, DropsOnlyTrackerDestinations) {
  Network net;
  TrackerBlocker blocker({Ipv4Addr(6, 6, 6, 6)});
  MboxContext ctx;
  Packet to_tracker = http_packet(net, Ipv4Addr(10, 0, 0, 2),
                                  Ipv4Addr(6, 6, 6, 6), "beacon");
  Packet to_server = http_packet(net, Ipv4Addr(10, 0, 0, 2),
                                 Ipv4Addr(93, 184, 216, 34), "page");
  EXPECT_EQ(blocker.process(to_tracker, ctx), Middlebox::Verdict::kDrop);
  EXPECT_EQ(blocker.process(to_server, ctx), Middlebox::Verdict::kForward);
  EXPECT_EQ(blocker.blocked(), 1u);
}

// --- MalwareDetector ----------------------------------------------------------------

TEST(MalwareDetector, BlocksSignatureHit) {
  Network net;
  MalwareDetector detector({to_bytes("EVIL_SHELLCODE")},
                           EnforcementMode::kBlock);
  MboxContext ctx;
  Packet bad = http_packet(net, Ipv4Addr(66, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                           "prefix EVIL_SHELLCODE suffix");
  Packet good = http_packet(net, Ipv4Addr(8, 8, 8, 8), Ipv4Addr(10, 0, 0, 2),
                            "regular content");
  EXPECT_EQ(detector.process(bad, ctx), Middlebox::Verdict::kDrop);
  EXPECT_EQ(detector.process(good, ctx), Middlebox::Verdict::kForward);
  EXPECT_EQ(detector.detections(), 1u);
}

TEST(MalwareDetector, WarnModeForwardsButReports) {
  Network net;
  MalwareDetector detector({to_bytes("EVIL")}, EnforcementMode::kWarn);
  std::vector<MboxFinding> findings;
  MboxContext ctx;
  ctx.findings = &findings;
  Packet bad = http_packet(net, Ipv4Addr(66, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                           "EVIL");
  EXPECT_EQ(detector.process(bad, ctx), Middlebox::Verdict::kForward);
  EXPECT_EQ(findings.size(), 1u);
}

// --- Classifier --------------------------------------------------------------------

TEST(Classifier, MarksFlowOnContentTypeAndRemembersIt) {
  Network net;
  Classifier classifier({{"Content-Type: video", 0x20}});
  MboxContext ctx;
  // First packet of the response carries the header.
  Packet response = http_packet(net, Ipv4Addr(93, 184, 216, 34),
                                Ipv4Addr(10, 0, 0, 2),
                                "HTTP/1.1 200 OK\r\nContent-Type: video/mp4\r\n\r\n",
                                80, 50000);
  classifier.process(response, ctx);
  EXPECT_EQ(response.ip.tos, 0x20);
  // Subsequent body packets of the same flow carry no header but get marked.
  Packet body = http_packet(net, Ipv4Addr(93, 184, 216, 34),
                            Ipv4Addr(10, 0, 0, 2), "raw video bytes", 80,
                            50000);
  classifier.process(body, ctx);
  EXPECT_EQ(body.ip.tos, 0x20);
  // Reverse direction (ACKs) too.
  Packet ack = http_packet(net, Ipv4Addr(10, 0, 0, 2),
                           Ipv4Addr(93, 184, 216, 34), "", 50000, 80);
  classifier.process(ack, ctx);
  EXPECT_EQ(ack.ip.tos, 0x20);
  EXPECT_EQ(classifier.flows_classified(), 1u);
}

TEST(Classifier, UnmatchedTrafficKeepsTos) {
  Network net;
  Classifier classifier({{"Content-Type: video", 0x20}});
  MboxContext ctx;
  Packet text = http_packet(net, Ipv4Addr(93, 184, 216, 34),
                            Ipv4Addr(10, 0, 0, 2),
                            "HTTP/1.1 200 OK\r\nContent-Type: text/html\r\n\r\n",
                            80, 50001);
  classifier.process(text, ctx);
  EXPECT_EQ(text.ip.tos, 0);
}

// --- DnsValidator -------------------------------------------------------------------

TEST(DnsValidator, BlocksForgedSignedRecord) {
  Network net;
  KeyPair zone(1), attacker(2);
  KeyRegistry trusted;
  trusted.trust(zone);

  DnsRecord forged;
  forged.name = "bank.example";
  forged.addr = Ipv4Addr(66, 6, 6, 6);
  forged.signed_record = true;
  forged.signature = attacker.sign(forged.canonical_bytes());
  DnsMessage msg;
  msg.response = true;
  msg.question = forged.name;
  msg.answers.push_back(forged);

  UdpHeader hdr;
  hdr.src_port = kDnsPort;
  hdr.dst_port = 5353;
  Packet pkt = net.make_packet(Ipv4Addr(8, 8, 8, 8), Ipv4Addr(10, 0, 0, 2),
                               IpProto::kUdp, serialize_udp(hdr, msg.encode()));

  DnsValidator validator(&trusted, zone.public_key(), {},
                         EnforcementMode::kBlock);
  std::vector<MboxFinding> findings;
  MboxContext ctx;
  ctx.findings = &findings;
  EXPECT_EQ(validator.process(pkt, ctx), Middlebox::Verdict::kDrop);
  EXPECT_EQ(findings.at(0).kind, "dns-forgery");
}

TEST(DnsValidator, PinMismatchBlocked) {
  Network net;
  DnsRecord rec;
  rec.name = "bank.example";
  rec.addr = Ipv4Addr(66, 6, 6, 6);
  DnsMessage msg;
  msg.response = true;
  msg.question = rec.name;
  msg.answers.push_back(rec);
  UdpHeader hdr;
  hdr.src_port = kDnsPort;
  hdr.dst_port = 5353;
  Packet pkt = net.make_packet(Ipv4Addr(8, 8, 8, 8), Ipv4Addr(10, 0, 0, 2),
                               IpProto::kUdp, serialize_udp(hdr, msg.encode()));
  DnsValidator validator(nullptr, PublicKey{},
                         {{"bank.example", Ipv4Addr(93, 184, 216, 34)}},
                         EnforcementMode::kBlock);
  MboxContext ctx;
  EXPECT_EQ(validator.process(pkt, ctx), Middlebox::Verdict::kDrop);
}

TEST(DnsValidator, HonestAnswerPasses) {
  Network net;
  KeyPair zone(1);
  KeyRegistry trusted;
  trusted.trust(zone);
  DnsRecord rec;
  rec.name = "bank.example";
  rec.addr = Ipv4Addr(93, 184, 216, 34);
  rec.signed_record = true;
  rec.signature = zone.sign(rec.canonical_bytes());
  DnsMessage msg;
  msg.response = true;
  msg.question = rec.name;
  msg.answers.push_back(rec);
  UdpHeader hdr;
  hdr.src_port = kDnsPort;
  hdr.dst_port = 5353;
  Packet pkt = net.make_packet(Ipv4Addr(8, 8, 8, 8), Ipv4Addr(10, 0, 0, 2),
                               IpProto::kUdp, serialize_udp(hdr, msg.encode()));
  DnsValidator validator(&trusted, zone.public_key(), {},
                         EnforcementMode::kBlock);
  MboxContext ctx;
  EXPECT_EQ(validator.process(pkt, ctx), Middlebox::Verdict::kForward);
  EXPECT_EQ(validator.responses_blocked(), 0u);
}

// --- ReplicaSelector ----------------------------------------------------------------

Packet dns_response_packet(Network& net, const std::string& name,
                           Ipv4Addr answer, bool sign_with_key,
                           const KeyPair* key) {
  DnsRecord rec;
  rec.name = name;
  rec.addr = answer;
  if (sign_with_key && key != nullptr) {
    rec.signed_record = true;
    rec.signature = key->sign(rec.canonical_bytes());
  }
  DnsMessage msg;
  msg.response = true;
  msg.question = name;
  msg.answers.push_back(rec);
  UdpHeader hdr;
  hdr.src_port = kDnsPort;
  hdr.dst_port = 5353;
  return net.make_packet(Ipv4Addr(8, 8, 8, 8), Ipv4Addr(10, 0, 0, 2),
                         IpProto::kUdp, serialize_udp(hdr, msg.encode()));
}

TEST(ReplicaSelector, RewritesToNearestReplica) {
  Network net;
  const Ipv4Addr near_replica(93, 184, 216, 34);
  const Ipv4Addr far_replica(93, 184, 216, 35);
  ReplicaSelector selector(
      {{"cdn.example", ReplicaSelector::Service{{near_replica, far_replica}}}},
      {{near_replica, milliseconds(15)}, {far_replica, milliseconds(90)}});
  EXPECT_EQ(selector.best_replica("cdn.example"), near_replica);

  Packet pkt = dns_response_packet(net, "cdn.example", far_replica, false,
                                   nullptr);
  std::vector<MboxFinding> findings;
  MboxContext ctx;
  ctx.findings = &findings;
  EXPECT_EQ(selector.process(pkt, ctx), Middlebox::Verdict::kForward);
  const auto dg = parse_udp(pkt.l4);
  ASSERT_TRUE(dg.has_value());
  const auto msg = DnsMessage::decode(dg->payload);
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->answers.at(0).addr, near_replica);  // rewritten
  EXPECT_EQ(selector.rewrites(), 1u);
  EXPECT_EQ(findings.at(0).kind, "replica-rewrite");
}

TEST(ReplicaSelector, NeverTouchesSignedAnswers) {
  Network net;
  KeyPair zone(5);
  const Ipv4Addr near_replica(93, 184, 216, 34);
  const Ipv4Addr far_replica(93, 184, 216, 35);
  ReplicaSelector selector(
      {{"cdn.example", ReplicaSelector::Service{{near_replica, far_replica}}}},
      {{near_replica, milliseconds(15)}, {far_replica, milliseconds(90)}});
  Packet pkt = dns_response_packet(net, "cdn.example", far_replica, true,
                                   &zone);
  MboxContext ctx;
  selector.process(pkt, ctx);
  const auto msg = DnsMessage::decode(parse_udp(pkt.l4)->payload);
  EXPECT_EQ(msg->answers.at(0).addr, far_replica);  // untouched
  EXPECT_EQ(selector.rewrites(), 0u);
}

TEST(ReplicaSelector, IgnoresUnknownServicesAndAlreadyBest) {
  Network net;
  const Ipv4Addr near_replica(93, 184, 216, 34);
  ReplicaSelector selector(
      {{"cdn.example", ReplicaSelector::Service{{near_replica}}}},
      {{near_replica, milliseconds(15)}});
  Packet other = dns_response_packet(net, "other.example",
                                     Ipv4Addr(5, 5, 5, 5), false, nullptr);
  Packet already = dns_response_packet(net, "cdn.example", near_replica,
                                       false, nullptr);
  MboxContext ctx;
  selector.process(other, ctx);
  selector.process(already, ctx);
  EXPECT_EQ(selector.rewrites(), 0u);
  EXPECT_EQ(selector.best_replica("missing").is_unspecified(), true);
}

// --- SplitTcpProxy ------------------------------------------------------------------

TEST(SplitTcpProxy, BridgesHttpEndToEnd) {
  // client -- router -- proxy ...(proxy re-originates)... server
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& server = net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
  auto& proxy = net.add_node<SplitTcpProxy>(
      "proxy", Ipv4Addr(10, 0, 0, 10), Ipv4Addr(93, 184, 216, 34), Port{80},
      Port{8080});
  auto& router = net.add_node<Router>("router");
  net.connect(client, router, quick());
  net.connect(proxy, router, quick());
  net.connect(server, router, quick());
  router.add_route(*Prefix::parse("10.0.0.2"), 0);
  router.add_route(*Prefix::parse("10.0.0.10"), 1);
  router.add_route(*Prefix::parse("0.0.0.0/0"), 2);

  HttpServer http_server(server);
  HttpClient http_client(client);
  FetchTiming timing;
  std::size_t got = 0;
  http_client.fetch(proxy.addr(), 8080, "/bytes/100000",
                    [&](const HttpResponse& resp, const FetchTiming& t) {
                      timing = t;
                      got = resp.body.size();
                    });
  net.sim().run();
  EXPECT_TRUE(timing.ok);
  EXPECT_EQ(got, 100000u);
  EXPECT_EQ(proxy.connections_bridged(), 1u);
  EXPECT_GT(proxy.bytes_downstream(), 100000u);
}

// --- TranscodingProxy ---------------------------------------------------------------

TEST(TranscodingProxy, ShrinksVideoBodies) {
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& server = net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
  auto& proxy = net.add_node<TranscodingProxy>(
      "proxy", Ipv4Addr(10, 0, 0, 10), Ipv4Addr(93, 184, 216, 34), Port{8080});
  auto& router = net.add_node<Router>("router");
  net.connect(client, router, quick());
  net.connect(proxy, router, quick());
  net.connect(server, router, quick());
  router.add_route(*Prefix::parse("10.0.0.2"), 0);
  router.add_route(*Prefix::parse("10.0.0.10"), 1);
  router.add_route(*Prefix::parse("0.0.0.0/0"), 2);

  HttpServer http_server(server);
  install_video_server(http_server, 200000);

  HttpClient http_client(client);
  std::size_t video_size = 0, text_size = 0;
  bool video_transcoded = false;
  http_client.fetch(proxy.addr(), 8080, "/video/seg-0",
                    [&](const HttpResponse& resp, const FetchTiming&) {
                      video_size = resp.body.size();
                      video_transcoded = resp.header("X-Transcoded") != nullptr;
                    });
  net.sim().run();
  http_client.fetch(proxy.addr(), 8080, "/bytes/50000",
                    [&](const HttpResponse& resp, const FetchTiming&) {
                      text_size = resp.body.size();
                    });
  net.sim().run();
  EXPECT_TRUE(video_transcoded);
  EXPECT_EQ(video_size, 80000u);  // 40% of 200000
  EXPECT_EQ(text_size, 50000u);   // non-video untouched
  EXPECT_EQ(proxy.responses_transcoded(), 1u);
  EXPECT_EQ(proxy.bytes_saved(), 120000u);
}

// --- PrefetchingProxy ---------------------------------------------------------------

TEST(PrefetchingProxy, CacheHitIsFasterAndSavesOriginFetches) {
  Network net;
  auto& client = net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
  auto& server = net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
  auto& proxy = net.add_node<PrefetchingProxy>(
      "proxy", Ipv4Addr(10, 0, 0, 10), Ipv4Addr(93, 184, 216, 34), Port{8081});
  auto& router = net.add_node<Router>("router");
  LinkParams near = quick();
  LinkParams far = quick();
  far.latency = milliseconds(60);  // origin is far away
  net.connect(client, router, near);
  net.connect(proxy, router, near);
  net.connect(server, router, far);
  router.add_route(*Prefix::parse("10.0.0.2"), 0);
  router.add_route(*Prefix::parse("10.0.0.10"), 1);
  router.add_route(*Prefix::parse("0.0.0.0/0"), 2);

  HttpServer http_server(server);
  proxy.prefetch({"/bytes/20000"});
  net.sim().run();
  EXPECT_EQ(proxy.cached_entries(), 1u);

  HttpClient http_client(client);
  SimDuration hit_time = 0, miss_time = 0;
  http_client.fetch(proxy.addr(), 8081, "/bytes/20000",
                    [&](const HttpResponse&, const FetchTiming& t) {
                      hit_time = t.total();
                    });
  net.sim().run();
  http_client.fetch(proxy.addr(), 8081, "/bytes/20001",
                    [&](const HttpResponse&, const FetchTiming& t) {
                      miss_time = t.total();
                    });
  net.sim().run();
  EXPECT_EQ(proxy.cache_hits(), 1u);
  EXPECT_EQ(proxy.cache_misses(), 1u);
  EXPECT_LT(hit_time, miss_time);  // cache hit avoids the far origin
}

// --- PvnStore -----------------------------------------------------------------------

TEST(PvnStore, CatalogPricingAndInstantiation) {
  StoreEnvironment env;
  env.pii_patterns = {"password="};
  env.tracker_addrs = {Ipv4Addr(6, 6, 6, 6)};
  const PvnStore store = make_standard_store(env);
  EXPECT_TRUE(store.has("pii-detector"));
  EXPECT_TRUE(store.has("tracker-blocker"));
  EXPECT_TRUE(store.has("classifier"));
  EXPECT_FALSE(store.has("tls-validator"));  // no trust store provided
  EXPECT_FALSE(store.has("no-such-module"));

  const double price = store.price_of({"pii-detector", "tracker-blocker"});
  EXPECT_DOUBLE_EQ(price, 1.10);

  auto pii = store.make("pii-detector", {{"action", "monitor"}});
  ASSERT_NE(pii, nullptr);
  EXPECT_EQ(pii->name(), "pii-detector");
  EXPECT_EQ(store.make("ghost", {}), nullptr);
  EXPECT_GE(store.catalog().size(), 4u);
}

}  // namespace
}  // namespace pvn
