// Tests for the workload generators (HTTP load, video streaming, telemetry)
// and their statistics, plus testbed sanity checks.
#include <gtest/gtest.h>

#include "testbed/testbed.h"

namespace pvn {
namespace {

TEST(LoadStats, Aggregates) {
  LoadStats stats;
  for (int i = 1; i <= 100; ++i) {
    FetchTiming t;
    t.started = 0;
    t.completed = milliseconds(i);
    t.ok = i % 10 != 0;  // 10 failures
    t.body_bytes = 1000;
    stats.timings.push_back(t);
  }
  EXPECT_EQ(stats.ok_count(), 90);
  EXPECT_EQ(stats.mean_total(), milliseconds(50) + microseconds(500));
  EXPECT_GE(stats.p95_total(), milliseconds(95));
  EXPECT_EQ(stats.total_bytes(), 100000u);
}

TEST(LoadStats, EmptyIsZero) {
  LoadStats stats;
  EXPECT_EQ(stats.ok_count(), 0);
  EXPECT_EQ(stats.mean_total(), 0);
  EXPECT_EQ(stats.p95_total(), 0);
}

TEST(HttpLoadGen, RunsRequestedFetches) {
  Testbed tb;
  HttpLoadGen gen(*tb.client);
  LoadStats stats;
  gen.run(tb.addrs.web, 80, "/bytes/5000", 7, milliseconds(5),
          [&](const LoadStats& s) { stats = s; });
  tb.net.sim().run();
  EXPECT_EQ(stats.timings.size(), 7u);
  EXPECT_EQ(stats.ok_count(), 7);
  EXPECT_EQ(stats.total_bytes(), 7 * 5000u);
  EXPECT_GT(stats.mean_total(), 0);
}

TEST(VideoStreamer, CountsRebuffersUnderThrottle) {
  Testbed tb;
  // Unthrottled: no rebuffers.
  VideoStreamer streamer(*tb.client);
  VideoStats smooth;
  streamer.run(tb.addrs.video, 80, 5, 250 * 1000, seconds(1),
               [&](const VideoStats& s) { smooth = s; });
  tb.net.sim().run();
  EXPECT_EQ(smooth.segments, 5);
  EXPECT_EQ(smooth.rebuffers, 0);
  EXPECT_EQ(smooth.bytes, 5 * 250 * 1000u);
  EXPECT_GT(smooth.mean_segment_mbps, 2.0);

  // Degrade the access link below the video bitrate: rebuffers appear.
  tb.access_link->set_latency(milliseconds(8));
  TestbedConfig slow_cfg;
  slow_cfg.access.rate = Rate::kbps(1000);  // 1 Mbps < 2 Mbps needed
  Testbed slow(slow_cfg);
  VideoStreamer starved(*slow.client);
  VideoStats stats;
  starved.run(slow.addrs.video, 80, 5, 250 * 1000, seconds(1),
              [&](const VideoStats& s) { stats = s; });
  slow.net.sim().run_until(slow.net.sim().now() + seconds(120));
  EXPECT_GT(stats.rebuffers, 2);
}

TEST(TelemetryEmitter, EmitsAtInterval) {
  Testbed tb;
  TelemetryEmitter emitter(*tb.client, tb.addrs.tracker, 80, {"lat=1.0"});
  emitter.start(5, milliseconds(100));
  tb.net.sim().run();
  EXPECT_EQ(emitter.sent(), 5);
  EXPECT_EQ(tb.tracker_http->requests_served(), 5u);
}

TEST(VideoServer, ServesVideoContentType) {
  Testbed tb;
  HttpClient http(*tb.client);
  std::string content_type;
  std::size_t size = 0;
  http.fetch(tb.addrs.video, 80, "/video/seg-3",
             [&](const HttpResponse& r, const FetchTiming&) {
               if (const std::string* ct = r.header("Content-Type")) {
                 content_type = *ct;
               }
               size = r.body.size();
             });
  tb.net.sim().run();
  EXPECT_EQ(content_type, "video/mp4");
  EXPECT_EQ(size, 250 * 1000u);
}

// --- Testbed sanity ---------------------------------------------------------------

TEST(Testbed, BaselineConnectivityToEveryService) {
  Testbed tb;
  HttpClient http(*tb.client);
  int ok = 0;
  for (const Ipv4Addr dst : {tb.addrs.web, tb.addrs.video, tb.addrs.tracker}) {
    http.fetch(dst, 80, "/", [&](const HttpResponse&, const FetchTiming& t) {
      ok += t.ok ? 1 : 0;
    });
    tb.net.sim().run();
  }
  EXPECT_EQ(ok, 3);

  StubResolver stub(*tb.client, {tb.addrs.dns});
  DnsResult dns;
  stub.resolve("web.example", [&](const DnsResult& r) { dns = r; });
  tb.net.sim().run();
  EXPECT_EQ(dns.status, DnsResult::Status::kOk);
  EXPECT_EQ(dns.addr, tb.addrs.web);
}

TEST(Testbed, StandardPvncValidatesAgainstStore) {
  Testbed tb;
  EXPECT_TRUE(validate_pvnc(tb.standard_pvnc(), tb.store.get()).empty());
}

TEST(Testbed, SeedsProduceIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    TestbedConfig cfg;
    cfg.seed = seed;
    cfg.access.loss = 0.05;
    Testbed tb(cfg);
    HttpClient http(*tb.client);
    SimDuration total = 0;
    http.fetch(tb.addrs.web, 80, "/bytes/100000",
               [&](const HttpResponse&, const FetchTiming& t) {
                 total = t.total();
               });
    tb.net.sim().run_until(seconds(600));
    return total;
  };
  EXPECT_EQ(run_once(7), run_once(7));   // determinism
  EXPECT_NE(run_once(7), run_once(8));   // seeds matter under loss
}

}  // namespace
}  // namespace pvn
