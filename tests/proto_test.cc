// Tests for DNS-lite (resolution, forgery, DNSSEC-lite, quorum), TLS-lite
// (cert chains, validation failure modes, handshake, record MACs), HTTP-lite
// (codec, parser, server/client), and DHCP-lite (leases, PVN option).
#include <gtest/gtest.h>

#include "fixtures.h"
#include "proto/dhcp.h"
#include "proto/dns.h"
#include "proto/http.h"
#include "proto/tls.h"

namespace pvn {
namespace {

using testing::DumbbellTopo;

LinkParams quick() {
  LinkParams lp;
  lp.rate = Rate::mbps(100);
  lp.latency = milliseconds(2);
  return lp;
}

// ---------------------------------------------------------------- DNS ------

struct DnsTopo {
  Network net;
  Host* client;
  Host* resolver1;
  Host* resolver2;
  Host* resolver3;
  Router* router;

  DnsTopo() {
    client = &net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
    resolver1 = &net.add_node<Host>("resolver1", Ipv4Addr(8, 8, 8, 8));
    resolver2 = &net.add_node<Host>("resolver2", Ipv4Addr(9, 9, 9, 9));
    resolver3 = &net.add_node<Host>("resolver3", Ipv4Addr(1, 1, 1, 1));
    router = &net.add_node<Router>("router");
    net.connect(*client, *router, quick());
    net.connect(*resolver1, *router, quick());
    net.connect(*resolver2, *router, quick());
    net.connect(*resolver3, *router, quick());
    router->add_route(*Prefix::parse("10.0.0.0/8"), 0);
    router->add_route(*Prefix::parse("8.0.0.0/8"), 1);
    router->add_route(*Prefix::parse("9.0.0.0/8"), 2);
    router->add_route(*Prefix::parse("1.0.0.0/8"), 3);
  }
};

TEST(DnsCodec, MessageRoundTrip) {
  DnsMessage m;
  m.id = 77;
  m.response = true;
  m.question = "example.com";
  DnsRecord rec;
  rec.name = "example.com";
  rec.addr = Ipv4Addr(93, 184, 216, 34);
  rec.ttl_seconds = 60;
  m.answers.push_back(rec);
  const auto back = DnsMessage::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(DnsCodec, SignedRecordRoundTrip) {
  KeyPair zone(42);
  DnsRecord rec;
  rec.name = "secure.example";
  rec.addr = Ipv4Addr(1, 2, 3, 4);
  rec.signed_record = true;
  rec.signature = zone.sign(rec.canonical_bytes());
  DnsMessage m;
  m.question = rec.name;
  m.answers.push_back(rec);
  const auto back = DnsMessage::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->answers.at(0).signature, rec.signature);
}

TEST(DnsCodec, DecodeRejectsTruncated) {
  DnsMessage m;
  m.question = "example.com";
  Bytes raw = m.encode();
  raw.resize(raw.size() - 3);
  EXPECT_FALSE(DnsMessage::decode(raw).has_value());
}

TEST(Dns, ResolvesKnownName) {
  DnsTopo topo;
  DnsServer server(*topo.resolver1);
  server.add_record("example.com", Ipv4Addr(93, 184, 216, 34));
  StubResolver stub(*topo.client, {topo.resolver1->addr()});
  DnsResult result;
  stub.resolve("example.com", [&](const DnsResult& r) { result = r; });
  topo.net.sim().run();
  EXPECT_EQ(result.status, DnsResult::Status::kOk);
  EXPECT_EQ(result.addr, Ipv4Addr(93, 184, 216, 34));
  EXPECT_FALSE(result.authenticated);
  EXPECT_EQ(server.queries_served(), 1u);
}

TEST(Dns, UnknownNameIsNxDomain) {
  DnsTopo topo;
  DnsServer server(*topo.resolver1);
  StubResolver stub(*topo.client, {topo.resolver1->addr()});
  DnsResult result;
  stub.resolve("missing.example", [&](const DnsResult& r) { result = r; });
  topo.net.sim().run();
  EXPECT_EQ(result.status, DnsResult::Status::kNxDomain);
}

TEST(Dns, UnreachableResolverTimesOut) {
  DnsTopo topo;
  // No DnsServer bound on resolver1.
  StubResolver stub(*topo.client, {topo.resolver1->addr()});
  DnsResult result;
  result.status = DnsResult::Status::kOk;
  stub.resolve("example.com", [&](const DnsResult& r) { result = r; });
  topo.net.sim().run();
  EXPECT_EQ(result.status, DnsResult::Status::kTimeout);
}

TEST(Dns, ForgedAnswerAcceptedWithoutDefences) {
  // A lone malicious resolver wins when the client has no validation.
  DnsTopo topo;
  DnsServer evil(*topo.resolver1);
  evil.add_record("bank.example", Ipv4Addr(10, 9, 9, 9));
  evil.forge("bank.example", Ipv4Addr(66, 6, 6, 6));
  StubResolver stub(*topo.client, {topo.resolver1->addr()});
  DnsResult result;
  stub.resolve("bank.example", [&](const DnsResult& r) { result = r; });
  topo.net.sim().run();
  EXPECT_EQ(result.status, DnsResult::Status::kOk);
  EXPECT_EQ(result.addr, Ipv4Addr(66, 6, 6, 6));  // the attack succeeded
}

TEST(Dns, QuorumOutvotesSingleForger) {
  DnsTopo topo;
  DnsServer evil(*topo.resolver1);
  DnsServer good2(*topo.resolver2);
  DnsServer good3(*topo.resolver3);
  const Ipv4Addr truth(93, 184, 216, 34);
  evil.forge("bank.example", Ipv4Addr(66, 6, 6, 6));
  evil.add_record("bank.example", truth);
  good2.add_record("bank.example", truth);
  good3.add_record("bank.example", truth);
  StubResolver stub(*topo.client, {topo.resolver1->addr(),
                                   topo.resolver2->addr(),
                                   topo.resolver3->addr()});
  DnsResult result;
  stub.resolve("bank.example", [&](const DnsResult& r) { result = r; },
               /*quorum=*/3);
  topo.net.sim().run();
  EXPECT_EQ(result.status, DnsResult::Status::kOk);
  EXPECT_EQ(result.addr, truth);
}

TEST(Dns, SignedRecordAuthenticatesAgainstZoneKey) {
  DnsTopo topo;
  KeyPair zone(7);
  KeyRegistry trusted;
  trusted.trust(zone);
  DnsServer server(*topo.resolver1, &zone);
  server.add_record("secure.example", Ipv4Addr(5, 5, 5, 5));
  StubResolver stub(*topo.client, {topo.resolver1->addr()}, &trusted,
                    zone.public_key());
  DnsResult result;
  stub.resolve("secure.example", [&](const DnsResult& r) { result = r; });
  topo.net.sim().run();
  EXPECT_EQ(result.status, DnsResult::Status::kOk);
  EXPECT_TRUE(result.authenticated);
  EXPECT_EQ(result.addr, Ipv4Addr(5, 5, 5, 5));
}

TEST(Dns, ForgedSignatureIsBogus) {
  DnsTopo topo;
  KeyPair zone(7), attacker(666);
  KeyRegistry trusted;
  trusted.trust(zone);
  // Attacker signs with its own key but claims to be the zone.
  DnsServer server(*topo.resolver1, &attacker);
  server.add_record("secure.example", Ipv4Addr(66, 6, 6, 6));
  StubResolver stub(*topo.client, {topo.resolver1->addr()}, &trusted,
                    zone.public_key());
  DnsResult result;
  stub.resolve("secure.example", [&](const DnsResult& r) { result = r; });
  topo.net.sim().run();
  EXPECT_EQ(result.status, DnsResult::Status::kBogus);
}

// ---------------------------------------------------------------- TLS ------

TEST(TlsCerts, ValidChainValidates) {
  CertificateAuthority root("RootCA", 1);
  auto intermediate = root.issue_intermediate("MidCA", 2, 0, seconds(1000));
  KeyPair server_key(3);
  const Certificate leaf = intermediate->issue(
      "example.com", server_key.public_key(), 0, seconds(1000));
  TrustStore trust;
  trust.trust_root(root);
  trust.add_intermediate(*intermediate);
  const CertChain chain{leaf, intermediate->self_certificate(),
                        root.self_certificate()};
  EXPECT_EQ(validate_chain(chain, trust, seconds(10), "example.com"),
            CertStatus::kOk);
}

TEST(TlsCerts, DetectsEveryFailureMode) {
  CertificateAuthority root("RootCA", 1);
  CertificateAuthority rogue("RogueCA", 99);
  KeyPair server_key(3);
  TrustStore trust;
  trust.trust_root(root);

  const Certificate good =
      root.issue("example.com", server_key.public_key(), 0, seconds(1000));
  const CertChain good_chain{good, root.self_certificate()};

  // Expired.
  EXPECT_EQ(validate_chain(good_chain, trust, seconds(2000), "example.com"),
            CertStatus::kExpired);
  // Not yet valid.
  const Certificate future = root.issue("example.com", server_key.public_key(),
                                        seconds(500), seconds(1000));
  EXPECT_EQ(validate_chain({future, root.self_certificate()}, trust,
                           seconds(10), "example.com"),
            CertStatus::kNotYetValid);
  // Name mismatch.
  EXPECT_EQ(validate_chain(good_chain, trust, seconds(10), "evil.com"),
            CertStatus::kNameMismatch);
  // Untrusted root (rogue CA).
  const Certificate rogue_leaf =
      rogue.issue("example.com", server_key.public_key(), 0, seconds(1000));
  EXPECT_EQ(validate_chain({rogue_leaf, rogue.self_certificate()}, trust,
                           seconds(10), "example.com"),
            CertStatus::kUntrustedRoot);
  // Bad signature (tampered subject key after signing).
  Certificate tampered = good;
  tampered.subject_key.id ^= 1;
  EXPECT_EQ(validate_chain({tampered, root.self_certificate()}, trust,
                           seconds(10), "example.com"),
            CertStatus::kBadSignature);
  // Revoked.
  TrustStore crl = trust;
  crl.keys.trust(root.key());
  crl.trusted_roots.insert(root.key().public_key().id);
  crl.revoked_serials.insert(good.serial);
  EXPECT_EQ(validate_chain(good_chain, crl, seconds(10), "example.com"),
            CertStatus::kRevoked);
  // Empty chain.
  EXPECT_EQ(validate_chain({}, trust, seconds(10), "example.com"),
            CertStatus::kEmptyChain);
}

TEST(TlsCerts, ChainCodecRoundTrip) {
  CertificateAuthority root("RootCA", 1);
  KeyPair k(2);
  const Certificate leaf = root.issue("x.com", k.public_key(), 0, seconds(99));
  const CertChain chain{leaf, root.self_certificate()};
  const auto back = decode_chain(encode_chain(chain));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, chain);
}

TEST(TlsRecords, SealOpenRoundTripAndTamperDetection) {
  const Digest key = digest_of("session");
  const Bytes plain = to_bytes("secret payload");
  Bytes sealed = seal_app_data(key, plain);
  EXPECT_EQ(open_app_data(key, sealed), plain);
  sealed[5] ^= 0xFF;
  EXPECT_FALSE(open_app_data(key, sealed).has_value());
  EXPECT_FALSE(open_app_data(digest_of("wrong"), seal_app_data(key, plain))
                   .has_value());
}

struct TlsTopo {
  DumbbellTopo topo{LinkParams{Rate::mbps(100), milliseconds(5), 0.0,
                               1 * kMiB},
                    LinkParams{Rate::mbps(100), milliseconds(5), 0.0,
                               1 * kMiB}};
  CertificateAuthority root{"RootCA", 1};
  KeyPair server_key{2};
  TrustStore trust;
  std::unique_ptr<TlsServer> tls_server;

  TlsTopo(const std::string& cert_name = "example.com") {
    trust.trust_root(root);
    const Certificate leaf = root.issue(cert_name, server_key.public_key(), 0,
                                        seconds(3600));
    const CertChain chain{leaf, root.self_certificate()};
    topo.server->tcp_listen(443, [this, chain](TcpConnection& conn) {
      tls_server = std::make_unique<TlsServer>(conn, chain, server_key);
      tls_server->set_on_data([this](const Bytes& data) {
        server_received.insert(server_received.end(), data.begin(), data.end());
        tls_server->send(to_bytes("echo:" + to_string(data)));
      });
    });
  }

  Bytes server_received;
};

TEST(Tls, StrictClientCompletesHandshakeAndExchangesData) {
  TlsTopo t;
  TcpConnection& conn = t.topo.client->tcp_connect(t.topo.server->addr(), 443);
  TlsClient client(conn, "example.com", &t.trust, TlsClientPolicy::kStrict, 9);
  std::string got;
  client.set_on_connected([&](const TlsSessionInfo& info) {
    EXPECT_EQ(info.cert_status, CertStatus::kOk);
    client.send(to_bytes("hello"));
  });
  client.set_on_data([&](const Bytes& data) { got = to_string(data); });
  t.topo.net.sim().run();
  EXPECT_TRUE(client.info().established);
  EXPECT_EQ(to_string(t.server_received), "hello");
  EXPECT_EQ(got, "echo:hello");
  EXPECT_FALSE(client.saw_bad_mac());
}

TEST(Tls, StrictClientRejectsWrongName) {
  TlsTopo t("not-example.com");
  TcpConnection& conn = t.topo.client->tcp_connect(t.topo.server->addr(), 443);
  TlsClient client(conn, "example.com", &t.trust, TlsClientPolicy::kStrict, 9);
  CertStatus seen = CertStatus::kOk;
  client.set_on_connected(
      [&](const TlsSessionInfo& info) { seen = info.cert_status; });
  t.topo.net.sim().run();
  EXPECT_EQ(seen, CertStatus::kNameMismatch);
  EXPECT_FALSE(client.info().established);
}

TEST(Tls, BrokenClientAcceptsUntrustedCert) {
  // Models the [23] population: no validation at all.
  TlsTopo t;
  CertificateAuthority rogue("Rogue", 66);
  KeyPair mitm_key(67);
  const Certificate forged =
      rogue.issue("example.com", mitm_key.public_key(), 0, seconds(3600));
  // Re-point the server at a forged chain.
  t.topo.server->tcp_unlisten(443);
  std::unique_ptr<TlsServer> mitm_server;
  t.topo.server->tcp_listen(443, [&](TcpConnection& conn) {
    mitm_server = std::make_unique<TlsServer>(
        conn, CertChain{forged, rogue.self_certificate()}, mitm_key);
  });
  TcpConnection& conn = t.topo.client->tcp_connect(t.topo.server->addr(), 443);
  TlsClient naive(conn, "example.com", nullptr, TlsClientPolicy::kNone, 9);
  t.topo.net.sim().run();
  EXPECT_TRUE(naive.info().established);  // interception succeeded

  // The same forged chain fails strict validation.
  EXPECT_EQ(validate_chain(naive.info().server_chain, t.trust, seconds(1),
                           "example.com"),
            CertStatus::kUntrustedRoot);
}

// ---------------------------------------------------------------- HTTP -----

TEST(HttpCodec, RequestRoundTripThroughParser) {
  HttpRequest req;
  req.method = "POST";
  req.path = "/submit";
  req.set_header("Host", "example.com");
  req.set_header("X-Device-Id", "abc123");
  req.body = to_bytes("k=v&user=bob");

  HttpRequest parsed;
  bool got = false;
  HttpParser parser(HttpParser::Kind::kRequest,
                    [&](HttpRequest r) {
                      parsed = std::move(r);
                      got = true;
                    },
                    nullptr);
  parser.feed(req.serialize());
  ASSERT_TRUE(got);
  EXPECT_EQ(parsed.method, "POST");
  EXPECT_EQ(parsed.path, "/submit");
  EXPECT_EQ(*parsed.header("Host"), "example.com");
  EXPECT_EQ(*parsed.header("X-Device-Id"), "abc123");
  EXPECT_EQ(parsed.body, req.body);
  EXPECT_FALSE(parser.error());
}

TEST(HttpCodec, ResponseParsesAcrossChunkBoundaries) {
  HttpResponse resp;
  resp.status = 404;
  resp.reason = "Not Found";
  resp.body = to_bytes("nothing here");
  const Bytes wire = resp.serialize();

  HttpResponse parsed;
  int count = 0;
  HttpParser parser(HttpParser::Kind::kResponse, nullptr, [&](HttpResponse r) {
    parsed = std::move(r);
    ++count;
  });
  // Feed byte by byte.
  for (std::uint8_t b : wire) parser.feed(Bytes{b});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(parsed.status, 404);
  EXPECT_EQ(to_string(parsed.body), "nothing here");
}

TEST(HttpCodec, PipelinedMessages) {
  HttpRequest a, b;
  a.path = "/first";
  b.path = "/second";
  Bytes wire = a.serialize();
  const Bytes second = b.serialize();
  wire.insert(wire.end(), second.begin(), second.end());
  std::vector<std::string> paths;
  HttpParser parser(HttpParser::Kind::kRequest,
                    [&](HttpRequest r) { paths.push_back(r.path); }, nullptr);
  parser.feed(wire);
  EXPECT_EQ(paths, (std::vector<std::string>{"/first", "/second"}));
}

TEST(HttpCodec, MalformedHeaderSetsError) {
  HttpParser parser(HttpParser::Kind::kRequest, nullptr, nullptr);
  parser.feed(to_bytes("GET / HTTP/1.1\r\nBadHeaderNoColon\r\n\r\n"));
  EXPECT_TRUE(parser.error());
}

TEST(Http, EndToEndFetch) {
  DumbbellTopo topo(quick(), quick());
  HttpServer server(*topo.server);
  HttpClient client(*topo.client);
  FetchTiming timing;
  HttpResponse response;
  client.fetch(topo.server->addr(), 80, "/bytes/50000",
               [&](const HttpResponse& r, const FetchTiming& t) {
                 response = r;
                 timing = t;
               });
  topo.net.sim().run();
  EXPECT_TRUE(timing.ok);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body.size(), 50000u);
  EXPECT_GT(timing.total(), 0);
  EXPECT_LE(timing.ttfb(), timing.total());
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST(Http, LargerDownloadsTakeLonger) {
  DumbbellTopo topo(quick(), quick());
  HttpServer server(*topo.server);
  HttpClient client(*topo.client);
  SimDuration small_time = 0, large_time = 0;
  client.fetch(topo.server->addr(), 80, "/bytes/1000",
               [&](const HttpResponse&, const FetchTiming& t) {
                 small_time = t.total();
               });
  topo.net.sim().run();
  client.fetch(topo.server->addr(), 80, "/bytes/2000000",
               [&](const HttpResponse&, const FetchTiming& t) {
                 large_time = t.total();
               });
  topo.net.sim().run();
  EXPECT_GT(large_time, small_time);
}

TEST(Http, FetchFromDeadServerFails) {
  DumbbellTopo topo(quick(), quick());
  HttpClient client(*topo.client);
  bool called = false;
  FetchTiming timing;
  client.fetch(topo.server->addr(), 80, "/",
               [&](const HttpResponse&, const FetchTiming& t) {
                 called = true;
                 timing = t;
               });
  topo.net.sim().run();
  EXPECT_TRUE(called);
  EXPECT_FALSE(timing.ok);
}

// ---------------------------------------------------------------- DHCP -----

TEST(DhcpCodec, MessageRoundTrip) {
  DhcpMessage m;
  m.type = DhcpType::kOffer;
  m.xid = 99;
  m.client_id = 0xABCDEF;
  m.offered = Ipv4Addr(10, 0, 0, 50);
  m.options[kDhcpOptPvnStandards] = to_bytes("openflow-lite,mbox-v1");
  const auto back = DhcpMessage::decode(m.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->type, DhcpType::kOffer);
  EXPECT_EQ(back->offered, m.offered);
  EXPECT_EQ(to_string(back->options.at(kDhcpOptPvnStandards)),
            "openflow-lite,mbox-v1");
}

TEST(Dhcp, LeaseAssignsAddressAndUpdatesHost) {
  DumbbellTopo topo(quick(), quick());
  DhcpServer server(*topo.server, Ipv4Addr(10, 0, 0, 100), 10);
  DhcpClient client(*topo.client);
  DhcpLease lease;
  client.acquire(topo.server->addr(), [&](const DhcpLease& l) { lease = l; });
  topo.net.sim().run();
  EXPECT_TRUE(lease.ok);
  EXPECT_EQ(lease.addr, Ipv4Addr(10, 0, 0, 100));
  EXPECT_EQ(topo.client->addr(), lease.addr);
  EXPECT_FALSE(lease.pvn_supported);
  EXPECT_EQ(server.leases_granted(), 1u);
}

TEST(Dhcp, PvnOptionAdvertised) {
  DumbbellTopo topo(quick(), quick());
  DhcpServer server(*topo.server, Ipv4Addr(10, 0, 0, 100), 10);
  server.advertise_pvn(Ipv4Addr(10, 0, 0, 5), "openflow-lite,mbox-v1");
  DhcpClient client(*topo.client);
  DhcpLease lease;
  client.acquire(topo.server->addr(), [&](const DhcpLease& l) { lease = l; });
  topo.net.sim().run();
  ASSERT_TRUE(lease.ok);
  EXPECT_TRUE(lease.pvn_supported);
  EXPECT_EQ(lease.pvn_server, Ipv4Addr(10, 0, 0, 5));
  EXPECT_EQ(lease.pvn_standards, "openflow-lite,mbox-v1");
}

TEST(Dhcp, TimeoutWhenServerSilent) {
  DumbbellTopo topo(quick(), quick());
  DhcpClient client(*topo.client);
  DhcpLease lease;
  lease.ok = true;
  client.acquire(topo.server->addr(), [&](const DhcpLease& l) { lease = l; });
  topo.net.sim().run();
  EXPECT_FALSE(lease.ok);
}

TEST(Dhcp, SameClientGetsStableLease) {
  DumbbellTopo topo(quick(), quick());
  DhcpServer server(*topo.server, Ipv4Addr(10, 0, 0, 100), 10);
  DhcpClient client(*topo.client);
  Ipv4Addr first, second;
  client.acquire(topo.server->addr(),
                 [&](const DhcpLease& l) { first = l.addr; });
  topo.net.sim().run();
  client.acquire(topo.server->addr(),
                 [&](const DhcpLease& l) { second = l.addr; });
  topo.net.sim().run();
  EXPECT_EQ(first, second);
}

// Framing property: arbitrary chunkings reassemble identically.
class FramerProperty : public ::testing::TestWithParam<int> {};

TEST_P(FramerProperty, ReassemblesUnderChunking) {
  const int chunk_size = GetParam();
  std::vector<Bytes> frames_in = {to_bytes("alpha"), to_bytes(""),
                                  to_bytes(std::string(1000, 'x')),
                                  to_bytes("omega")};
  Bytes wire;
  for (const Bytes& f : frames_in) {
    const Bytes framed = StreamFramer::frame(f);
    wire.insert(wire.end(), framed.begin(), framed.end());
  }
  std::vector<Bytes> frames_out;
  StreamFramer framer([&](Bytes f) { frames_out.push_back(std::move(f)); });
  for (std::size_t i = 0; i < wire.size(); i += chunk_size) {
    const std::size_t n = std::min<std::size_t>(chunk_size, wire.size() - i);
    framer.feed(Bytes(wire.begin() + i, wire.begin() + i + n));
  }
  EXPECT_EQ(frames_out, frames_in);
  EXPECT_EQ(framer.buffered(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Chunkings, FramerProperty,
                         ::testing::Values(1, 2, 3, 7, 64, 1024, 100000));

}  // namespace
}  // namespace pvn
