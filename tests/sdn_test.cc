// SDN dataplane tests: match semantics, flow-table priority/specificity,
// meters, switch pipeline (multi-table, actions, default port), controller.
#include <gtest/gtest.h>

#include "fixtures.h"
#include "sdn/controller.h"

namespace pvn {
namespace {

Packet udp_packet(Network& net, Ipv4Addr src, Ipv4Addr dst, Port sport,
                  Port dport, std::size_t payload = 64, std::uint8_t tos = 0) {
  UdpHeader hdr;
  hdr.src_port = sport;
  hdr.dst_port = dport;
  Packet pkt = net.make_packet(src, dst, IpProto::kUdp,
                               serialize_udp(hdr, Bytes(payload, 0xAB)));
  pkt.ip.tos = tos;
  return pkt;
}

class SinkNode : public Node {
 public:
  SinkNode(Network& net, std::string name) : Node(net, std::move(name)) {}
  void handle_packet(Packet pkt, int) override {
    received.push_back(std::move(pkt));
  }
  std::vector<Packet> received;
};

// --- FlowMatch ---------------------------------------------------------------

TEST(FlowMatch, WildcardMatchesEverything) {
  Network net;
  const Packet pkt = udp_packet(net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                                1000, 2000);
  EXPECT_TRUE(FlowMatch::any().matches(pkt, 0));
  EXPECT_TRUE(FlowMatch::any().matches(pkt, 7));
}

TEST(FlowMatch, EachFieldFilters) {
  Network net;
  const Packet pkt = udp_packet(net, Ipv4Addr(10, 0, 0, 5),
                                Ipv4Addr(93, 184, 216, 34), 5353, 53, 64, 0x20);
  FlowMatch m;
  m.src = *Prefix::parse("10.0.0.0/24");
  m.dst = *Prefix::parse("93.184.216.34");
  m.proto = IpProto::kUdp;
  m.src_port = 5353;
  m.dst_port = 53;
  m.tos = 0x20;
  m.in_port = 3;
  EXPECT_TRUE(m.matches(pkt, 3));
  EXPECT_FALSE(m.matches(pkt, 4));  // wrong in_port

  FlowMatch wrong = m;
  wrong.src = *Prefix::parse("10.0.1.0/24");
  EXPECT_FALSE(wrong.matches(pkt, 3));
  wrong = m;
  wrong.proto = IpProto::kTcp;
  EXPECT_FALSE(wrong.matches(pkt, 3));
  wrong = m;
  wrong.dst_port = 80;
  EXPECT_FALSE(wrong.matches(pkt, 3));
  wrong = m;
  wrong.tos = 0;
  EXPECT_FALSE(wrong.matches(pkt, 3));
}

TEST(FlowMatch, PortMatchOnPortlessProtoFails) {
  Network net;
  Packet pkt = net.make_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                               IpProto::kEsp, Bytes(8, 0));
  FlowMatch m;
  m.dst_port = 53;
  EXPECT_FALSE(m.matches(pkt, 0));
}

// --- FlowTable ----------------------------------------------------------------

TEST(FlowTable, HighestPriorityWins) {
  Network net;
  FlowTable table;
  FlowRule low;
  low.priority = 1;
  low.cookie = "low";
  FlowRule high;
  high.priority = 10;
  high.cookie = "high";
  table.add(low);
  table.add(high);
  const Packet pkt = udp_packet(net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                                1, 2);
  const FlowRule* hit = table.lookup(pkt, 0);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->cookie, "high");
}

TEST(FlowTable, MoreSpecificWinsAtEqualPriority) {
  Network net;
  FlowTable table;
  FlowRule coarse;
  coarse.priority = 5;
  coarse.cookie = "coarse";
  FlowRule fine;
  fine.priority = 5;
  fine.match.dst = *Prefix::parse("2.2.2.2");
  fine.match.proto = IpProto::kUdp;
  fine.cookie = "fine";
  table.add(coarse);
  table.add(fine);
  const Packet pkt = udp_packet(net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                                1, 2);
  EXPECT_EQ(table.lookup(pkt, 0)->cookie, "fine");
}

TEST(FlowTable, CountersAndMisses) {
  Network net;
  FlowTable table;
  FlowRule rule;
  rule.match.proto = IpProto::kUdp;
  table.add(rule);
  const Packet udp = udp_packet(net, Ipv4Addr(1, 1, 1, 1),
                                Ipv4Addr(2, 2, 2, 2), 1, 2);
  Packet esp = net.make_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                               IpProto::kEsp, Bytes(8, 0));
  table.lookup(udp, 0);
  table.lookup(udp, 0);
  EXPECT_EQ(table.lookup(esp, 0), nullptr);
  EXPECT_EQ(table.rules()[0].hit_packets, 2u);
  EXPECT_EQ(table.rules()[0].hit_bytes, 2 * udp.size());
  EXPECT_EQ(table.misses(), 1u);
}

TEST(FlowTable, RemoveByCookie) {
  FlowTable table;
  for (int i = 0; i < 5; ++i) {
    FlowRule rule;
    rule.cookie = i % 2 == 0 ? "pvn:alice" : "pvn:bob";
    table.add(rule);
  }
  EXPECT_EQ(table.remove_by_cookie("pvn:alice"), 3u);
  EXPECT_EQ(table.size(), 2u);
  EXPECT_EQ(table.remove_by_cookie("pvn:alice"), 0u);
}

// --- Meter ----------------------------------------------------------------------

TEST(Meter, PassesWithinRateDropsAbove) {
  // 1 Mbps meter, 10 KB burst; offered 2 Mbps for 10 s -> ~half dropped.
  Meter meter(Rate::mbps(1), 10 * 1024);
  const std::int64_t pkt_size = 1250;  // 10 kbit
  int passed = 0;
  const int total = 2000;  // 2 Mbps for 10 s = 20 Mbit = 2000 pkts
  for (int i = 0; i < total; ++i) {
    const SimTime t = i * (milliseconds(10) / 2);  // 2 pkts per 10 ms
    if (meter.conforms(pkt_size, t)) ++passed;
  }
  const double ratio = static_cast<double>(passed) / total;
  EXPECT_NEAR(ratio, 0.5, 0.1);
}

TEST(Meter, BurstAllowsShortSpikes) {
  Meter meter(Rate::kbps(8), 10000);  // 1 KB/s steady, 10 KB burst
  // 5 back-to-back 1 KB packets at t=0 all fit in the burst.
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(meter.conforms(1000, 0)) << i;
  }
  // The 11th at t=0 exceeds the bucket.
  for (int i = 0; i < 5; ++i) meter.conforms(1000, 0);
  EXPECT_FALSE(meter.conforms(1000, 0));
  // After 1 s, one more 1 KB fits (refilled 1 KB).
  EXPECT_TRUE(meter.conforms(1000, seconds(1)));
  EXPECT_FALSE(meter.conforms(1000, seconds(1)));
}

// --- Switch pipeline ---------------------------------------------------------------

struct SwitchTopo {
  Network net;
  SinkNode* left;
  SinkNode* right;
  SdnSwitch* sw;

  SwitchTopo() {
    left = &net.add_node<SinkNode>("left");
    right = &net.add_node<SinkNode>("right");
    sw = &net.add_node<SdnSwitch>("sw", 2);
    net.connect(*left, *sw);   // sw port 0
    net.connect(*right, *sw);  // sw port 1
  }
};

TEST(SdnSwitch, OutputActionForwards) {
  SwitchTopo t;
  FlowRule rule;
  rule.actions.push_back(ActOutput{1});
  t.sw->table(0).add(rule);
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  EXPECT_EQ(t.right->received.size(), 1u);
  EXPECT_EQ(t.sw->stats().forwarded, 1u);
}

TEST(SdnSwitch, TableMissDropsWithoutDefault) {
  SwitchTopo t;
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  EXPECT_EQ(t.right->received.size(), 0u);
  EXPECT_EQ(t.sw->stats().dropped_miss, 1u);
}

TEST(SdnSwitch, TableMissUsesDefaultPort) {
  SwitchTopo t;
  t.sw->set_default_port(1);
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  EXPECT_EQ(t.right->received.size(), 1u);
}

TEST(SdnSwitch, DropActionDrops) {
  SwitchTopo t;
  FlowRule rule;
  rule.actions.push_back(ActDrop{});
  t.sw->table(0).add(rule);
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  EXPECT_EQ(t.sw->stats().dropped_rule, 1u);
}

TEST(SdnSwitch, SetTosAndSetDstRewrite) {
  SwitchTopo t;
  FlowRule rule;
  rule.actions.push_back(ActSetTos{0x2E});
  rule.actions.push_back(ActSetDst{Ipv4Addr(9, 9, 9, 9)});
  rule.actions.push_back(ActOutput{1});
  t.sw->table(0).add(rule);
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  ASSERT_EQ(t.right->received.size(), 1u);
  EXPECT_EQ(t.right->received[0].ip.tos, 0x2E);
  EXPECT_EQ(t.right->received[0].ip.dst, Ipv4Addr(9, 9, 9, 9));
}

TEST(SdnSwitch, GotoTableChainsLookups) {
  SwitchTopo t;
  FlowRule stage1;
  stage1.actions.push_back(ActSetTos{7});
  stage1.actions.push_back(ActGotoTable{1});
  t.sw->table(0).add(stage1);
  FlowRule stage2;
  stage2.match.tos = 7;  // sees the rewritten tos
  stage2.actions.push_back(ActOutput{1});
  t.sw->table(1).add(stage2);
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  EXPECT_EQ(t.right->received.size(), 1u);
}

TEST(SdnSwitch, MeterActionShapesTraffic) {
  SwitchTopo t;
  t.sw->add_meter("m1", Rate::mbps(1), 2000);
  FlowRule rule;
  rule.actions.push_back(ActMeter{"m1"});
  rule.actions.push_back(ActOutput{1});
  t.sw->table(0).add(rule);
  // Offer ~10 Mbps for 1 s: ~90% should be dropped by the meter.
  const int total = 1000;
  for (int i = 0; i < total; ++i) {
    t.net.sim().schedule_at(i * (seconds(1) / total), [&t] {
      t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1),
                                 Ipv4Addr(2, 2, 2, 2), 1, 2, 1200));
    });
  }
  t.net.sim().run();
  EXPECT_LT(t.right->received.size(), 200u);
  EXPECT_GT(t.right->received.size(), 50u);
  EXPECT_GT(t.sw->stats().dropped_meter, 700u);
}

TEST(SdnSwitch, MissingMeterDropsSafely) {
  SwitchTopo t;
  FlowRule rule;
  rule.actions.push_back(ActMeter{"nope"});
  rule.actions.push_back(ActOutput{1});
  t.sw->table(0).add(rule);
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  EXPECT_EQ(t.right->received.size(), 0u);
}

// A processor that tags packets (sets tos) and can drop or inject.
class TestProcessor : public PacketProcessor {
 public:
  std::vector<Packet> process(Packet pkt, SimTime, SimDuration& delay) override {
    delay = microseconds(45);
    ++calls;
    if (drop_all) return {};
    pkt.ip.tos = 0x55;
    std::vector<Packet> out;
    out.push_back(std::move(pkt));
    return out;
  }
  int calls = 0;
  bool drop_all = false;
};

TEST(SdnSwitch, MboxActionDivertsAndContinues) {
  SwitchTopo t;
  TestProcessor proc;
  t.sw->register_processor("c1", &proc);
  FlowRule rule;
  rule.actions.push_back(ActMbox{"c1"});
  rule.actions.push_back(ActOutput{1});
  t.sw->table(0).add(rule);
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  ASSERT_EQ(t.right->received.size(), 1u);
  EXPECT_EQ(t.right->received[0].ip.tos, 0x55);  // processed
  EXPECT_EQ(proc.calls, 1);
  EXPECT_EQ(t.sw->stats().diverted_mbox, 1u);
}

TEST(SdnSwitch, MboxDropAbsorbsPacket) {
  SwitchTopo t;
  TestProcessor proc;
  proc.drop_all = true;
  t.sw->register_processor("c1", &proc);
  FlowRule rule;
  rule.actions.push_back(ActMbox{"c1"});
  rule.actions.push_back(ActOutput{1});
  t.sw->table(0).add(rule);
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  EXPECT_EQ(t.right->received.size(), 0u);
}

TEST(SdnSwitch, MboxDelayIsCharged) {
  SwitchTopo t;
  TestProcessor proc;
  t.sw->register_processor("c1", &proc);
  FlowRule rule;
  rule.actions.push_back(ActMbox{"c1"});
  rule.actions.push_back(ActOutput{1});
  t.sw->table(0).add(rule);

  // With zero link latency/rate-delay, the arrival difference vs a direct
  // rule is the mbox 45us.
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2, 10));
  SimTime arrival = -1;
  t.net.sim().run();
  arrival = t.net.sim().now();
  EXPECT_GE(arrival, microseconds(45));
}

TEST(SdnSwitch, UnregisteredChainDrops) {
  SwitchTopo t;
  FlowRule rule;
  rule.actions.push_back(ActMbox{"ghost"});
  rule.actions.push_back(ActOutput{1});
  t.sw->table(0).add(rule);
  t.left->send(0, udp_packet(t.net, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2),
                             1, 2));
  t.net.sim().run();
  EXPECT_EQ(t.right->received.size(), 0u);
  EXPECT_EQ(t.sw->stats().dropped_rule, 1u);
}

// --- Controller ------------------------------------------------------------------

TEST(Controller, InstallsRulesWithControlDelay) {
  SwitchTopo t;
  Controller ctrl(t.net.sim(), milliseconds(5));
  ctrl.manage(*t.sw);
  bool done = false;
  FlowRule rule;
  rule.actions.push_back(ActOutput{1});
  ctrl.install_rule("sw", 0, rule, [&](bool ok) {
    done = ok;
    EXPECT_EQ(t.net.sim().now(), milliseconds(5));
  });
  t.net.sim().run();
  EXPECT_TRUE(done);
  EXPECT_EQ(t.sw->table(0).size(), 1u);
  EXPECT_EQ(ctrl.rules_installed(), 1u);
}

TEST(Controller, UnknownSwitchFails) {
  SwitchTopo t;
  Controller ctrl(t.net.sim());
  bool result = true;
  ctrl.install_rule("nope", 0, FlowRule{}, [&](bool ok) { result = ok; });
  t.net.sim().run();
  EXPECT_FALSE(result);
}

TEST(Controller, RemoveByCookieSweepsAllTables) {
  SwitchTopo t;
  Controller ctrl(t.net.sim());
  ctrl.manage(*t.sw);
  FlowRule r0;
  r0.cookie = "pvn:x";
  t.sw->table(0).add(r0);
  t.sw->table(1).add(r0);
  std::size_t removed = 0;
  ctrl.remove_by_cookie("pvn:x", [&](std::size_t n) { removed = n; });
  t.net.sim().run();
  EXPECT_EQ(removed, 2u);
}

}  // namespace
}  // namespace pvn
