// Unit and property tests for the simulation kernel, byte codecs, RNG, and
// structural crypto in src/util.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdarg>
#include <cstring>
#include <memory>
#include <vector>

#include "util/bytes.h"
#include "util/log.h"
#include "util/digest.h"
#include "util/rng.h"
#include "util/sim.h"
#include "util/units.h"

namespace pvn {
namespace {

// --- Simulator --------------------------------------------------------------

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  sim.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  sim.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  EXPECT_EQ(sim.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), milliseconds(30));
}

TEST(Simulator, SameTimeEventsRunFifo) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    sim.schedule_at(milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sim.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Simulator, ScheduleAfterIsRelative) {
  Simulator sim;
  SimTime fired = -1;
  sim.schedule_at(seconds(1), [&] {
    sim.schedule_after(milliseconds(500), [&] { fired = sim.now(); });
  });
  sim.run();
  EXPECT_EQ(fired, seconds(1) + milliseconds(500));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  const EventId id = sim.schedule_at(milliseconds(1), [&] { ran = true; });
  sim.cancel(id);
  sim.run();
  EXPECT_FALSE(ran);
}

TEST(Simulator, CancelInvalidAndSpentIdsAreNoOps) {
  Simulator sim;
  sim.cancel(kInvalidEventId);
  bool ran = false;
  const EventId id = sim.schedule_at(0, [&] { ran = true; });
  sim.run();
  EXPECT_TRUE(ran);
  sim.cancel(id);  // already fired; must not disturb future events
  bool ran2 = false;
  sim.schedule_after(1, [&] { ran2 = true; });
  sim.run();
  EXPECT_TRUE(ran2);
}

TEST(Simulator, RunUntilStopsAtDeadline) {
  Simulator sim;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    sim.schedule_at(seconds(i), [&] { ++count; });
  }
  EXPECT_EQ(sim.run_until(seconds(5)), 5u);
  EXPECT_EQ(count, 5);
  EXPECT_LE(sim.now(), seconds(5));
  EXPECT_EQ(sim.run(), 5u);
}

TEST(Simulator, RunUntilAdvancesClockOnEmptyQueue) {
  Simulator sim;
  sim.run_until(seconds(3));
  EXPECT_EQ(sim.now(), seconds(3));
}

TEST(Simulator, PastScheduleClampsToNow) {
  Simulator sim;
  sim.schedule_at(seconds(2), [&] {
    SimTime fired = -1;
    sim.schedule_at(seconds(1), [&sim, &fired] { fired = sim.now(); });
    (void)fired;
  });
  sim.run();
  EXPECT_EQ(sim.now(), seconds(2));
}

TEST(Simulator, EventsScheduledDuringRunExecute) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) sim.schedule_after(milliseconds(1), recurse);
  };
  sim.schedule_at(0, recurse);
  sim.run();
  EXPECT_EQ(depth, 100);
}

TEST(Simulator, PendingEventsExcludesCancelled) {
  Simulator sim;
  const EventId a = sim.schedule_at(milliseconds(1), [] {});
  sim.schedule_at(milliseconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(a);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.cancel(a);  // double-cancel is a no-op
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run();
  EXPECT_EQ(sim.pending_events(), 0u);
}

// Regression for the PR 1 lease-renewal pattern: schedule+cancel repeated
// indefinitely (timers that are always re-armed before firing) must not
// accumulate cancellation state or grow pending_events.
TEST(Simulator, RepeatedScheduleCancelCyclesDoNotAccumulateState) {
  Simulator sim;
  int fired = 0;
  EventId timer = kInvalidEventId;
  for (int i = 0; i < 10000; ++i) {
    sim.cancel(timer);  // for most iterations cancels an unfired event
    timer = sim.schedule_after(seconds(1000), [&] { ++fired; });
    EXPECT_EQ(sim.pending_events(), 1u);
    // Drive unrelated traffic so the queue keeps churning.
    sim.schedule_after(1, [] {});
    sim.run_until(sim.now() + 2);
  }
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(fired, 0);
  sim.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(Simulator, CancelledEventIdIsStaleAfterSlotReuse) {
  Simulator sim;
  bool first = false, second = false;
  const EventId a = sim.schedule_at(milliseconds(1), [&] { first = true; });
  sim.cancel(a);
  sim.run();  // reclaims the slot
  [[maybe_unused]] const EventId b =
      sim.schedule_at(milliseconds(2), [&] { second = true; });
  sim.cancel(a);  // stale id, possibly pointing at b's recycled slot
  sim.run();
  EXPECT_FALSE(first);
  EXPECT_TRUE(second);
}

// --- EventFn -----------------------------------------------------------------

TEST(EventFn, InvokesInlineAndHeapCallables) {
  int hits = 0;
  EventFn small([&hits] { ++hits; });
  EXPECT_TRUE(small.inlined());
  small();
  EXPECT_EQ(hits, 1);

  struct Big {
    unsigned char pad[256];
  } big{};
  EventFn large([&hits, big] {
    (void)big;
    ++hits;
  });
  EXPECT_FALSE(large.inlined());
  large();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, MovePreservesCallableAndReleasesSource) {
  int hits = 0;
  EventFn a([&hits] { ++hits; });
  EventFn b(std::move(a));
  EXPECT_FALSE(static_cast<bool>(a));  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  EventFn c;
  c = std::move(b);
  c();
  EXPECT_EQ(hits, 2);
}

TEST(EventFn, PacketSizedCapturesStayInline) {
  // The link-delivery lambda captures a pointer-rich context plus a Packet;
  // it must fit the inline buffer so per-hop scheduling never heap-allocates
  // the callback.
  struct DeliveryCapture {
    void* link;
    void* dir;
    void* from;
    bool lost;
    std::uint64_t id;
    void* shared_payload;
    std::int64_t created_at;
    void* trace_vec[3];
    void* names;
  } cap{};
  EventFn fn([cap] { (void)cap; });
  EXPECT_TRUE(fn.inlined());
  static_assert(sizeof(DeliveryCapture) <= EventFn::kInlineSize);
}

TEST(EventFn, DestroysMoveOnlyCaptureExactlyOnce) {
  auto token = std::make_unique<int>(7);
  int got = 0;
  {
    EventFn fn([&got, token = std::move(token)] { got = *token; });
    EventFn moved(std::move(fn));
    moved();
  }
  EXPECT_EQ(got, 7);
}

// --- Time formatting ---------------------------------------------------------

TEST(TimeFormat, AdaptiveUnits) {
  EXPECT_EQ(format_duration(nanoseconds(5)), "5ns");
  EXPECT_EQ(format_duration(microseconds(45)), "45.000us");
  EXPECT_EQ(format_duration(milliseconds(30)), "30.000ms");
  EXPECT_EQ(format_duration(seconds(2)), "2.000s");
}

// --- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval) {
  Rng r(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = r.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng r(9);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.uniform_int(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
    saw_lo |= (v == 3);
    saw_hi |= (v == 7);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng r(11);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliApproximatesProbability) {
  Rng r(13);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialHasRoughlyCorrectMean) {
  Rng r(17);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
  EXPECT_NEAR(sum / n, 5.0, 0.15);
}

TEST(Rng, ForkProducesIndependentStream) {
  Rng parent(21);
  Rng child = parent.fork();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowZeroBoundYieldsZero) {
  Rng r(23);
  EXPECT_EQ(r.next_below(0), 0u);
}

// --- ByteWriter / ByteReader ---------------------------------------------------

TEST(Bytes, RoundTripScalars) {
  ByteWriter w;
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFull);
  w.i64(-42);
  w.f64(3.14159);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, BigEndianLayout) {
  ByteWriter w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x04);
}

TEST(Bytes, RoundTripStringsAndBlobs) {
  ByteWriter w;
  w.str("hello pvn");
  w.blob(to_bytes("payload"));
  w.str("");
  ByteReader r(w.bytes());
  EXPECT_EQ(r.str(), "hello pvn");
  EXPECT_EQ(to_string(r.blob()), "payload");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, OverrunLatchesError) {
  ByteWriter w;
  w.u16(7);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.u32(), 0u);  // overrun
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still failed
  EXPECT_FALSE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Bytes, TruncatedBlobFails) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow
  w.u8(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.blob().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, EmptyReaderIsExhausted) {
  ByteReader r(Bytes{});
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(r.remaining(), 0u);
}

// --- Digest / HMAC / signatures ------------------------------------------------

TEST(Digest, DeterministicAndInputSensitive) {
  EXPECT_EQ(digest_of("hello"), digest_of("hello"));
  EXPECT_NE(digest_of("hello"), digest_of("hellp"));
  EXPECT_NE(digest_of("hello"), digest_of("hell"));
  EXPECT_NE(digest_of(""), digest_of(std::string_view("\0", 1)));
}

TEST(Digest, HexIs64Chars) {
  EXPECT_EQ(digest_of("x").hex().size(), 64u);
}

TEST(Digest, BytesRoundTrip) {
  const Digest d = digest_of("round trip");
  const auto back = Digest::from_bytes(d.to_bytes());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, d);
}

TEST(Digest, FromBytesRejectsWrongLength) {
  EXPECT_FALSE(Digest::from_bytes(Bytes(31, 0)).has_value());
  EXPECT_FALSE(Digest::from_bytes(Bytes(33, 0)).has_value());
}

TEST(Hmac, KeyedAndDataSensitive) {
  const Bytes k1 = to_bytes("key1"), k2 = to_bytes("key2");
  const Bytes m = to_bytes("message");
  EXPECT_EQ(hmac(k1, m), hmac(k1, m));
  EXPECT_NE(hmac(k1, m), hmac(k2, m));
  EXPECT_NE(hmac(k1, m), hmac(k1, to_bytes("messagf")));
}

TEST(Signatures, VerifyAcceptsGenuineSignature) {
  KeyPair kp(1234);
  KeyRegistry registry;
  registry.trust(kp);
  const Bytes msg = to_bytes("attestation quote");
  const Signature sig = kp.sign(msg);
  EXPECT_TRUE(registry.verify(kp.public_key(), msg, sig));
}

TEST(Signatures, VerifyRejectsTamperedMessage) {
  KeyPair kp(1234);
  KeyRegistry registry;
  registry.trust(kp);
  const Signature sig = kp.sign(to_bytes("original"));
  EXPECT_FALSE(registry.verify(kp.public_key(), to_bytes("tampered"), sig));
}

TEST(Signatures, VerifyRejectsUnknownKey) {
  KeyPair kp(1), other(2);
  KeyRegistry registry;
  registry.trust(other);
  const Bytes msg = to_bytes("m");
  EXPECT_FALSE(registry.verify(kp.public_key(), msg, kp.sign(msg)));
}

TEST(Signatures, VerifyRejectsWrongSigner) {
  KeyPair a(1), b(2);
  KeyRegistry registry;
  registry.trust(a);
  registry.trust(b);
  const Bytes msg = to_bytes("m");
  // b's signature presented as a's.
  EXPECT_FALSE(registry.verify(a.public_key(), msg, b.sign(msg)));
}

TEST(Signatures, RevokedKeyFailsVerification) {
  KeyPair kp(99);
  KeyRegistry registry;
  registry.trust(kp);
  const Bytes msg = to_bytes("m");
  const Signature sig = kp.sign(msg);
  registry.revoke(kp.public_key());
  EXPECT_FALSE(registry.verify(kp.public_key(), msg, sig));
  EXPECT_FALSE(registry.trusts(kp.public_key()));
}

TEST(Signatures, DistinctSeedsDistinctKeys) {
  EXPECT_NE(KeyPair(1).public_key(), KeyPair(2).public_key());
}

// --- Units ---------------------------------------------------------------------

TEST(Units, TransmitTimeMatchesRate) {
  // 1500 bytes at 12 Mbps = 1500*8/12e6 s = 1 ms.
  EXPECT_EQ(Rate::mbps(12).transmit_time(1500), milliseconds(1));
  // Zero-rate links serialize instantly (modelling "infinite" capacity).
  EXPECT_EQ(Rate::bps(0).transmit_time(1500), 0);
}

TEST(Units, RateConstructors) {
  EXPECT_EQ(Rate::kbps(1500).bits_per_second, 1'500'000);
  EXPECT_EQ(Rate::mbps(100).bits_per_second, 100'000'000);
  EXPECT_DOUBLE_EQ(Rate::mbps(100).mbps_value(), 100.0);
  EXPECT_EQ(Rate::gbps(1).bits_per_second, 1'000'000'000);
}


// --- Logger formatting -------------------------------------------------------

// format_log_message takes a va_list; this shim lets tests call it variadic.
std::size_t format_into(char* buf, std::size_t size, const char* fmt, ...)
    PVN_PRINTF(3, 4);
std::size_t format_into(char* buf, std::size_t size, const char* fmt, ...) {
  std::va_list ap;
  va_start(ap, fmt);
  const std::size_t n = format_log_message(buf, size, fmt, ap);
  va_end(ap);
  return n;
}

TEST(LogFormat, FittingMessageIsUnchanged) {
  char buf[64];
  const std::size_t n = format_into(buf, sizeof(buf), "x=%d y=%s", 7, "ok");
  EXPECT_EQ(std::string(buf, n), "x=7 y=ok");
}

TEST(LogFormat, OverflowTruncatesWithEllipsis) {
  char buf[16];
  const std::size_t n =
      format_into(buf, sizeof(buf), "%s", "this message is far too long");
  EXPECT_EQ(n, sizeof(buf) - 1);
  EXPECT_EQ(buf[n], '\0');
  // The tail is the 3-byte UTF-8 ellipsis, not a mid-word cut.
  EXPECT_EQ(std::memcmp(buf + n - 3, "\xE2\x80\xA6", 3), 0);
  EXPECT_EQ(std::string(buf, n - 3), "this message");
}

TEST(LogFormat, TinyBuffersStayTerminated) {
  char buf[2] = {'Z', 'Z'};
  // Too small for the ellipsis: plain truncation, still NUL-terminated.
  EXPECT_EQ(format_into(buf, sizeof(buf), "%s", "abc"), 1u);
  EXPECT_EQ(buf[0], 'a');
  EXPECT_EQ(buf[1], '\0');
  EXPECT_EQ(format_into(buf, 0, "%s", "abc"), 0u);
}

// Property sweep: transmit time is monotone in size and antitone in rate.
class TransmitTimeProperty
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(TransmitTimeProperty, MonotoneInSizeAntitoneInRate) {
  const auto [mbps, bytes] = GetParam();
  const Rate rate = Rate::mbps(mbps);
  EXPECT_LE(rate.transmit_time(bytes), rate.transmit_time(bytes + 1000));
  if (mbps > 1) {
    EXPECT_LE(rate.transmit_time(bytes), Rate::mbps(mbps - 1).transmit_time(bytes));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, TransmitTimeProperty,
    ::testing::Combine(::testing::Values(1, 5, 10, 100, 1000),
                       ::testing::Values(64, 576, 1500, 9000, 65535)));

}  // namespace
}  // namespace pvn
