// TCP-lite tests: handshake, byte-stream delivery, teardown, loss recovery,
// congestion control behaviour, flow control, and RST handling.
#include <gtest/gtest.h>

#include "fixtures.h"

namespace pvn {
namespace {

using testing::DumbbellTopo;
using testing::StreamSink;
using testing::pattern_bytes;

LinkParams fast_link() {
  LinkParams lp;
  lp.rate = Rate::mbps(100);
  lp.latency = milliseconds(5);
  lp.queue_bytes = 4 * kMiB;
  return lp;
}

TEST(Tcp, HandshakeEstablishesBothSides) {
  DumbbellTopo topo(fast_link(), fast_link());
  TcpConnection* server_conn = nullptr;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { server_conn = &c; });

  bool client_connected = false;
  TcpConnection& client_conn = topo.client->tcp_connect(topo.server->addr(), 80);
  client_conn.on_connected = [&] { client_connected = true; };

  topo.net.sim().run();
  EXPECT_TRUE(client_connected);
  ASSERT_NE(server_conn, nullptr);
  EXPECT_TRUE(client_conn.established());
  EXPECT_TRUE(server_conn->established());
  EXPECT_EQ(server_conn->remote_addr(), topo.client->addr());
}

TEST(Tcp, ConnectToClosedPortFailsFast) {
  DumbbellTopo topo(fast_link(), fast_link());
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 81);
  bool closed = false;
  conn.on_closed = [&] { closed = true; };
  topo.net.sim().run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
  EXPECT_GE(topo.server->rsts_sent(), 1u);
}

TEST(Tcp, SmallTransferDeliversExactBytes) {
  DumbbellTopo topo(fast_link(), fast_link());
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });

  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  const Bytes payload = to_bytes("hello over tcp-lite");
  conn.on_connected = [&] { conn.send(payload); };
  topo.net.sim().run();
  EXPECT_EQ(sink.data, payload);
}

TEST(Tcp, SendBeforeEstablishedIsBuffered) {
  DumbbellTopo topo(fast_link(), fast_link());
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  EXPECT_TRUE(conn.send(to_bytes("early data")));
  topo.net.sim().run();
  EXPECT_EQ(to_string(sink.data), "early data");
}

TEST(Tcp, LargeTransferIsCompleteAndInOrder) {
  DumbbellTopo topo(fast_link(), fast_link());
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });

  const Bytes payload = pattern_bytes(500 * 1000);
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] {
    conn.send(payload);
    conn.close();
  };
  topo.net.sim().run();
  EXPECT_EQ(sink.data.size(), payload.size());
  EXPECT_EQ(sink.data, payload);
  EXPECT_TRUE(sink.closed);
}

TEST(Tcp, MultipleSendsPreserveOrder) {
  DumbbellTopo topo(fast_link(), fast_link());
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] {
    for (int i = 0; i < 50; ++i) {
      conn.send(to_bytes("chunk-" + std::to_string(i) + ";"));
    }
    conn.close();
  };
  topo.net.sim().run();
  std::string expected;
  for (int i = 0; i < 50; ++i) expected += "chunk-" + std::to_string(i) + ";";
  EXPECT_EQ(to_string(sink.data), expected);
}

TEST(Tcp, BidirectionalTransfer) {
  DumbbellTopo topo(fast_link(), fast_link());
  StreamSink server_sink, client_sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) {
    server_sink.attach(c);
    c.on_data = [&server_sink, &c](const Bytes& data) {
      server_sink.data.insert(server_sink.data.end(), data.begin(), data.end());
      c.send(to_bytes("pong"));
    };
  });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  client_sink.attach(conn);
  conn.on_connected = [&] { conn.send(to_bytes("ping")); };
  topo.net.sim().run();
  EXPECT_EQ(to_string(server_sink.data), "ping");
  EXPECT_EQ(to_string(client_sink.data), "pong");
}

TEST(Tcp, GracefulCloseReachesBothSides) {
  DumbbellTopo topo(fast_link(), fast_link());
  TcpConnection* server_conn = nullptr;
  bool server_closed = false;
  topo.server->tcp_listen(80, [&](TcpConnection& c) {
    server_conn = &c;
    c.on_closed = [&] { server_closed = true; };
    // Server closes in response to peer FIN.
    c.on_data = [](const Bytes&) {};
  });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  bool client_closed = false;
  conn.on_closed = [&] { client_closed = true; };
  conn.on_connected = [&] {
    conn.send(to_bytes("bye"));
    conn.close();
  };
  // Server closes when it sees the FIN (CloseWait).
  topo.net.sim().schedule_after(seconds(1), [&] {
    if (server_conn != nullptr) server_conn->close();
  });
  topo.net.sim().run();
  EXPECT_TRUE(client_closed);
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
  EXPECT_EQ(server_conn->state(), TcpConnection::State::kClosed);
}

TEST(Tcp, AbortSendsRstAndClosesPeer) {
  DumbbellTopo topo(fast_link(), fast_link());
  TcpConnection* server_conn = nullptr;
  bool server_closed = false;
  topo.server->tcp_listen(80, [&](TcpConnection& c) {
    server_conn = &c;
    c.on_closed = [&] { server_closed = true; };
  });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] { conn.abort(); };
  topo.net.sim().run();
  EXPECT_TRUE(server_closed);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
}

TEST(Tcp, RecoversFromLoss) {
  LinkParams lossy = fast_link();
  lossy.loss = 0.02;
  DumbbellTopo topo(lossy, fast_link(), /*seed=*/77);
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });

  const Bytes payload = pattern_bytes(300 * 1000);
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] {
    conn.send(payload);
    conn.close();
  };
  topo.net.sim().run();
  EXPECT_EQ(sink.data, payload);
  EXPECT_GT(conn.stats().retransmits + conn.stats().fast_retransmits, 0u);
}

TEST(Tcp, SurvivesHeavyLoss) {
  LinkParams lossy = fast_link();
  lossy.loss = 0.15;
  DumbbellTopo topo(lossy, fast_link(), /*seed=*/99);
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });

  const Bytes payload = pattern_bytes(50 * 1000);
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] {
    conn.send(payload);
    conn.close();
  };
  topo.net.sim().run_until(seconds(600));
  EXPECT_EQ(sink.data, payload);
}

TEST(Tcp, SlowStartGrowsCwnd) {
  DumbbellTopo topo(fast_link(), fast_link());
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] { conn.send(pattern_bytes(400 * 1000)); };
  topo.net.sim().run();
  // IW10 with no loss: cwnd must have grown well beyond the initial window.
  EXPECT_GT(conn.stats().cwnd_segments, 20.0);
  EXPECT_EQ(conn.stats().timeouts, 0u);
  EXPECT_EQ(conn.stats().retransmits, 0u);
}

TEST(Tcp, LossClampsCwndViaFastRetransmit) {
  LinkParams lossy = fast_link();
  lossy.loss = 0.05;
  DumbbellTopo topo(lossy, fast_link(), /*seed=*/5);
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] {
    conn.send(pattern_bytes(400 * 1000));
    conn.close();
  };
  topo.net.sim().run();
  EXPECT_GT(conn.stats().fast_retransmits, 0u);
  EXPECT_EQ(to_string(sink.data).size(), 400 * 1000u);
}

TEST(Tcp, RttEstimateTracksPathRtt) {
  LinkParams lp = fast_link();
  lp.latency = milliseconds(40);  // RTT ~160ms across two links
  DumbbellTopo topo(lp, lp);
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] { conn.send(pattern_bytes(100 * 1000)); };
  topo.net.sim().run();
  EXPECT_GT(conn.stats().srtt, milliseconds(150));
  EXPECT_LT(conn.stats().srtt, milliseconds(400));
}

TEST(Tcp, ThroughputApproachesBottleneckRate) {
  LinkParams access;
  access.rate = Rate::mbps(10);
  access.latency = milliseconds(10);
  access.queue_bytes = 256 * 1024;
  DumbbellTopo topo(access, fast_link());
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });
  const std::size_t size = 2 * 1000 * 1000;
  SimTime done_at = 0;
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] { conn.send(pattern_bytes(size)); };
  conn.on_closed = [&] {};
  topo.net.sim().run();
  // All bytes delivered; effective rate is a healthy fraction of the 10 Mbps
  // bottleneck (the transfer includes one slow-start overshoot + recovery
  // episode, so it does not reach line rate) and never exceeds it.
  done_at = topo.net.sim().now();
  ASSERT_EQ(sink.data.size(), size);
  const double mbps = static_cast<double>(size) * 8 / to_seconds(done_at) / 1e6;
  EXPECT_GT(mbps, 4.0);
  EXPECT_LT(mbps, 10.5);
}

TEST(Tcp, SendAfterCloseRefused) {
  DumbbellTopo topo(fast_link(), fast_link());
  topo.server->tcp_listen(80, [](TcpConnection&) {});
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] {
    conn.close();
    EXPECT_FALSE(conn.send(to_bytes("late")));
  };
  topo.net.sim().run();
}

TEST(Tcp, SendBufferBoundRefusesOverflow) {
  DumbbellTopo topo(fast_link(), fast_link());
  topo.server->tcp_listen(80, [](TcpConnection&) {});
  TcpConfig cfg;
  cfg.max_send_buffer = 1000;
  TcpConnection& conn =
      topo.client->tcp_connect(topo.server->addr(), 80, cfg);
  EXPECT_TRUE(conn.send(Bytes(900, 1)));
  EXPECT_FALSE(conn.send(Bytes(200, 2)));
  topo.net.sim().run();
}

TEST(Tcp, GcClosedReapsConnections) {
  DumbbellTopo topo(fast_link(), fast_link());
  topo.server->tcp_listen(80, [](TcpConnection& c) {
    c.on_data = [&c](const Bytes&) { c.close(); };
  });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] {
    conn.send(to_bytes("x"));
    conn.close();
  };
  topo.net.sim().run();
  EXPECT_GE(topo.client->gc_closed(), 1u);
  EXPECT_GE(topo.server->gc_closed(), 1u);
}

TEST(Tcp, ConnectionSurvivesSynAckLoss) {
  // Drop everything on the access link briefly so the handshake needs a
  // retransmission, then heal it.
  DumbbellTopo topo(fast_link(), fast_link());
  topo.access->set_loss(1.0);
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& c) { sink.attach(c); });
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] { conn.send(to_bytes("after retry")); };
  topo.net.sim().schedule_after(milliseconds(1500),
                                [&] { topo.access->set_loss(0.0); });
  topo.net.sim().run();
  EXPECT_EQ(to_string(sink.data), "after retry");
  EXPECT_GT(conn.stats().timeouts, 0u);
}

TEST(Tcp, GivesUpAfterMaxSynRetries) {
  // Server side permanently unreachable.
  DumbbellTopo topo(fast_link(), fast_link());
  topo.access->set_loss(1.0);
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  bool closed = false;
  conn.on_closed = [&] { closed = true; };
  topo.net.sim().run_until(seconds(300));
  EXPECT_TRUE(closed);
  EXPECT_EQ(conn.state(), TcpConnection::State::kClosed);
}

// Property sweep: exactly-once in-order delivery across an RTT x loss grid.
struct TcpGridCase {
  int latency_ms;
  double loss;
  int kilobytes;
  std::uint64_t seed;
};

class TcpDeliveryProperty : public ::testing::TestWithParam<TcpGridCase> {};

TEST_P(TcpDeliveryProperty, ExactlyOnceInOrderDelivery) {
  const TcpGridCase c = GetParam();
  LinkParams access;
  access.rate = Rate::mbps(20);
  access.latency = milliseconds(c.latency_ms);
  access.loss = c.loss;
  access.queue_bytes = 1 * kMiB;
  DumbbellTopo topo(access, fast_link(), c.seed);
  StreamSink sink;
  topo.server->tcp_listen(80, [&](TcpConnection& conn) { sink.attach(conn); });
  const Bytes payload = testing::pattern_bytes(
      static_cast<std::size_t>(c.kilobytes) * 1000);
  TcpConnection& conn = topo.client->tcp_connect(topo.server->addr(), 80);
  conn.on_connected = [&] {
    conn.send(payload);
    conn.close();
  };
  topo.net.sim().run_until(seconds(1200));
  EXPECT_EQ(sink.data, payload)
      << "latency=" << c.latency_ms << "ms loss=" << c.loss;
  EXPECT_TRUE(sink.closed);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TcpDeliveryProperty,
    ::testing::Values(TcpGridCase{1, 0.0, 200, 1}, TcpGridCase{1, 0.03, 100, 2},
                      TcpGridCase{20, 0.0, 200, 3},
                      TcpGridCase{20, 0.05, 100, 4},
                      TcpGridCase{60, 0.01, 150, 5},
                      TcpGridCase{100, 0.08, 50, 6},
                      TcpGridCase{5, 0.12, 30, 7},
                      TcpGridCase{40, 0.0, 500, 8}));

}  // namespace
}  // namespace pvn
