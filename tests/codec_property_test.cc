// Property suites over every wire format in the repository: randomized
// round-trips, truncation robustness, and malformed-input safety. Decoders
// must never crash and must either reproduce the value exactly or fail
// cleanly.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>

#include "mbox/checkpoint.h"
#include "mbox/inline_modules.h"
#include "proto/dhcp.h"
#include "proto/dns.h"
#include "proto/tls.h"
#include "pvn/discovery.h"
#include "sdn/meter.h"
#include "tunnel/esp.h"
#include "util/rng.h"

namespace pvn {
namespace {

std::string random_name(Rng& rng) {
  const char* words[] = {"alpha", "beta", "gamma", "delta", "epsilon",
                         "zeta", "eta", "theta"};
  std::string out = words[rng.next_below(8)];
  out += "-" + std::to_string(rng.next_below(1000));
  return out;
}

// --- TcpHeader with SACK ranges ----------------------------------------------------

class TcpHeaderProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TcpHeaderProperty, RandomRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 200; ++i) {
    TcpHeader hdr;
    hdr.src_port = static_cast<Port>(rng.next_u64());
    hdr.dst_port = static_cast<Port>(rng.next_u64());
    hdr.seq = static_cast<std::uint32_t>(rng.next_u64());
    hdr.ack = static_cast<std::uint32_t>(rng.next_u64());
    hdr.flags = static_cast<std::uint8_t>(rng.next_below(16));
    hdr.window = static_cast<std::uint32_t>(rng.next_u64());
    const int n_sacks = static_cast<int>(rng.next_below(4));
    for (int s = 0; s < n_sacks; ++s) {
      const std::uint32_t b = static_cast<std::uint32_t>(rng.next_u64());
      hdr.sacks.emplace_back(b, b + static_cast<std::uint32_t>(
                                       rng.next_below(100000)));
    }
    ByteWriter w;
    hdr.encode(w);
    ByteReader r(w.bytes());
    EXPECT_EQ(TcpHeader::decode(r), hdr);
    EXPECT_TRUE(r.exhausted());
  }
}

TEST_P(TcpHeaderProperty, ExcessSackRangesAreTruncatedNotCorrupted) {
  Rng rng(GetParam());
  TcpHeader hdr;
  for (int s = 0; s < 10; ++s) {
    hdr.sacks.emplace_back(s * 1000, s * 1000 + 500);
  }
  ByteWriter w;
  hdr.encode(w);
  ByteReader r(w.bytes());
  const TcpHeader back = TcpHeader::decode(r);
  EXPECT_EQ(back.sacks.size(), TcpHeader::kMaxSackRanges);
  for (std::size_t i = 0; i < back.sacks.size(); ++i) {
    EXPECT_EQ(back.sacks[i], hdr.sacks[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TcpHeaderProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

// --- PVN discovery messages ----------------------------------------------------------

class DiscoveryProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DiscoveryProperty, AllMessageTypesRoundTrip) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    DiscoveryMessage dm;
    dm.seq = static_cast<std::uint32_t>(rng.next_u64());
    dm.device_id = random_name(rng);
    for (std::uint64_t s = 0; s < rng.next_below(4); ++s) {
      dm.standards.push_back(random_name(rng));
    }
    for (std::uint64_t m = 0; m < rng.next_below(6); ++m) {
      dm.modules.push_back(random_name(rng));
    }
    dm.est_memory_bytes = static_cast<std::int64_t>(rng.next_below(1 << 30));
    const auto dm2 = DiscoveryMessage::decode(dm.encode());
    ASSERT_TRUE(dm2.has_value());
    EXPECT_EQ(dm2->seq, dm.seq);
    EXPECT_EQ(dm2->device_id, dm.device_id);
    EXPECT_EQ(dm2->modules, dm.modules);
    EXPECT_EQ(dm2->est_memory_bytes, dm.est_memory_bytes);

    Offer offer;
    offer.seq = dm.seq;
    offer.deployment_server = Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64()));
    offer.offered_modules = dm.modules;
    offer.total_price = rng.uniform(0, 100);
    offer.expires_at = static_cast<SimTime>(rng.next_below(1'000'000'000));
    offer.standby_capacity = rng.bernoulli(0.5);
    offer.lease_duration = static_cast<SimDuration>(rng.next_below(kSecond * 60));
    offer.capacity_bytes = static_cast<std::int64_t>(rng.next_below(1LL << 40));
    const auto offer2 = Offer::decode(offer.encode());
    ASSERT_TRUE(offer2.has_value());
    EXPECT_EQ(offer2->deployment_server, offer.deployment_server);
    EXPECT_DOUBLE_EQ(offer2->total_price, offer.total_price);
    EXPECT_EQ(offer2->expires_at, offer.expires_at);
    EXPECT_EQ(offer2->standby_capacity, offer.standby_capacity);
    EXPECT_EQ(offer2->lease_duration, offer.lease_duration);
    EXPECT_EQ(offer2->capacity_bytes, offer.capacity_bytes);

    DeployAck ack;
    ack.seq = dm.seq;
    ack.chain_id = random_name(rng);
    const auto ack2 = DeployAck::decode(ack.encode());
    ASSERT_TRUE(ack2.has_value());
    EXPECT_EQ(ack2->chain_id, ack.chain_id);

    DeployNack nack;
    nack.seq = dm.seq;
    nack.reason = random_name(rng);
    nack.code = static_cast<NackCode>(rng.next_below(7));
    nack.retry_after = static_cast<SimDuration>(rng.next_below(kSecond * 10));
    const auto nack2 = DeployNack::decode(nack.encode());
    ASSERT_TRUE(nack2.has_value());
    EXPECT_EQ(nack2->reason, nack.reason);
    EXPECT_EQ(nack2->code, nack.code);
    EXPECT_EQ(nack2->retry_after, nack.retry_after);

    StateAck sack;
    sack.seq = dm.seq;
    sack.device_id = dm.device_id;
    sack.chain_id = "chain:" + random_name(rng);
    sack.applied = rng.bernoulli(0.5);
    sack.digest.resize(rng.next_below(40));
    for (auto& b : sack.digest) b = static_cast<std::uint8_t>(rng.next_u64());
    const auto sack2 = StateAck::decode(sack.encode());
    ASSERT_TRUE(sack2.has_value());
    EXPECT_EQ(sack2->device_id, sack.device_id);
    EXPECT_EQ(sack2->chain_id, sack.chain_id);
    EXPECT_EQ(sack2->applied, sack.applied);
    EXPECT_EQ(sack2->digest, sack.digest);
  }
}

TEST_P(DiscoveryProperty, DecodersRejectValuesNoHonestEncoderProduces) {
  // Structural hardening (distinct from vet_offer's semantic bounds): field
  // values that cannot come from an honest encoder — non-finite prices,
  // negative durations, out-of-range enum codes — are refused at decode so
  // they never reach protocol logic at all.
  Offer offer;
  offer.seq = 1;
  offer.total_price = 2.0;
  offer.expires_at = seconds(30);
  offer.lease_duration = seconds(10);
  ASSERT_TRUE(Offer::decode(offer.encode()).has_value());

  Offer bad = offer;
  bad.total_price = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(Offer::decode(bad.encode()).has_value());
  bad.total_price = std::numeric_limits<double>::infinity();
  EXPECT_FALSE(Offer::decode(bad.encode()).has_value());

  bad = offer;
  bad.expires_at = -1;
  EXPECT_FALSE(Offer::decode(bad.encode()).has_value());

  bad = offer;
  bad.lease_duration = -seconds(1);
  EXPECT_FALSE(Offer::decode(bad.encode()).has_value());

  DeployNack nack;
  nack.seq = 1;
  nack.reason = "busy";
  nack.code = NackCode::kBusy;
  nack.retry_after = milliseconds(500);
  ASSERT_TRUE(DeployNack::decode(nack.encode()).has_value());

  DeployNack bad_nack = nack;
  bad_nack.retry_after = -1;
  EXPECT_FALSE(DeployNack::decode(bad_nack.encode()).has_value());

  // Unknown NackCode values have to be hand-assembled — the enum itself
  // cannot hold them, which is exactly why the decoder must bound-check.
  for (const std::uint8_t code : {7, 42, 255}) {
    ByteWriter w;
    w.u32(1);
    w.str("busy");
    w.u8(code);
    w.i64(milliseconds(500));
    EXPECT_FALSE(DeployNack::decode(std::move(w).take()).has_value())
        << "code " << static_cast<int>(code);
  }

  DeployAck ack;
  ack.seq = 1;
  ack.chain_id = "chain:x:0";
  ack.lease_duration = -seconds(1);
  EXPECT_FALSE(DeployAck::decode(ack.encode()).has_value());

  LeaseAck lack;
  lack.seq = 1;
  lack.ok = true;
  lack.lease_duration = -1;
  EXPECT_FALSE(LeaseAck::decode(lack.encode()).has_value());
}

TEST_P(DiscoveryProperty, TruncationNeverCrashes) {
  Rng rng(GetParam());
  DiscoveryMessage dm;
  dm.seq = 1;
  dm.device_id = "device";
  dm.standards = {"openflow-lite"};
  dm.modules = {"pii-detector", "tls-validator"};
  const Bytes full = wrap(PvnMsgType::kDiscovery, dm.encode());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(), full.begin() + static_cast<std::ptrdiff_t>(cut));
    const auto unwrapped = unwrap(truncated);
    if (unwrapped && unwrapped->first == PvnMsgType::kDiscovery) {
      // Inner decode must fail cleanly or produce a valid message.
      const auto inner = DiscoveryMessage::decode(unwrapped->second);
      (void)inner;
    }
  }
  SUCCEED();
}

TEST_P(DiscoveryProperty, RandomBytesNeverCrashDecoders) {
  Rng rng(GetParam() + 100);
  for (int i = 0; i < 500; ++i) {
    Bytes junk(rng.next_below(200));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.next_u64());
    (void)unwrap(junk);
    (void)DiscoveryMessage::decode(junk);
    (void)Offer::decode(junk);
    (void)DeployRequest::decode(junk);
    (void)DeployAck::decode(junk);
    (void)DeployNack::decode(junk);
    (void)LeaseRenew::decode(junk);
    (void)LeaseAck::decode(junk);
    (void)StateRequest::decode(junk);
    (void)StateTransfer::decode(junk);
    (void)StateAck::decode(junk);
    (void)Teardown::decode(junk);
    (void)ChainCheckpoint::decode(junk);
    (void)DnsMessage::decode(junk);
    (void)DhcpMessage::decode(junk);
    (void)decode_chain(junk);
    (void)Pvnc::decode(junk);
  }
  SUCCEED();
}

TEST_P(DiscoveryProperty, MutatedValidEncodingsNeverCrashDecoders) {
  // Fuzz-style: start from valid wrapped encodings of every discovery
  // message type, apply random byte flips / truncations / extensions, and
  // push the result through unwrap + the matching decoder. Decoders must
  // fail cleanly (nullopt) or return a well-formed value; they must never
  // crash, over-read, or spin on corrupted length/count fields.
  Rng rng(GetParam() + 1000);

  DiscoveryMessage dm;
  dm.seq = 7;
  dm.device_id = "alice-phone";
  dm.standards = {"openflow-lite", "mbox-v1"};
  dm.modules = {"pii-detector", "tls-validator", "tracker-blocker"};
  dm.est_memory_bytes = 18 * 1024 * 1024;

  Offer offer;
  offer.seq = 7;
  offer.deployment_server = Ipv4Addr(10, 0, 0, 5);
  offer.standards = dm.standards;
  offer.offered_modules = dm.modules;
  offer.total_price = 3.25;
  offer.expires_at = seconds(30);

  DeployRequest req;
  req.seq = 7;
  req.device_id = dm.device_id;
  req.pvnc.name = "alice-phone";
  req.pvnc.chain.push_back(PvncModule{"pii-detector", {{"action", "block"}}});
  req.payment = 3.25;
  req.required_modules = {"pii-detector"};

  DeployAck ack;
  ack.seq = 7;
  ack.chain_id = "chain:alice-phone:0";
  ack.lease_duration = seconds(10);

  DeployNack nack;
  nack.seq = 7;
  nack.reason = "out of middlebox memory";

  LeaseRenew renew;
  renew.seq = 9;
  renew.device_id = dm.device_id;
  renew.chain_id = ack.chain_id;

  LeaseAck lack;
  lack.seq = 9;
  lack.ok = true;
  lack.lease_duration = seconds(10);
  lack.degraded_modules = {"tracker-blocker"};

  StateRequest sreq;
  sreq.seq = 11;
  sreq.device_id = dm.device_id;
  sreq.chain_id = ack.chain_id;

  // A StateTransfer carrying a real chain checkpoint with per-flow state.
  Network cknet(GetParam());
  Classifier ck_classifier({{"Content-Type: video", 0x20}});
  Chain ck_chain(ack.chain_id, microseconds(45));
  ck_chain.append(&ck_classifier);
  for (int f = 0; f < 4; ++f) {
    Packet pkt = cknet.make_packet(
        Ipv4Addr(10, 0, 0, 2), Ipv4Addr(93, 184, 216, 34 + f), IpProto::kTcp,
        to_bytes("HTTP/1.1 200 OK Content-Type: video"));
    SimDuration delay = 0;
    ck_chain.process(pkt, 0, delay);
  }
  StateTransfer xfer;
  xfer.seq = 11;
  xfer.device_id = dm.device_id;
  xfer.chain_id = ack.chain_id;
  xfer.ok = true;
  xfer.checkpoint = capture_chain(ck_chain, 1, 0).encode();

  StateAck sack;
  sack.seq = 11;
  sack.device_id = dm.device_id;
  sack.chain_id = ack.chain_id;
  sack.applied = true;
  sack.digest = {0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04};

  const std::vector<Bytes> corpus = {
      wrap(PvnMsgType::kDiscovery, dm.encode()),
      wrap(PvnMsgType::kOffer, offer.encode()),
      wrap(PvnMsgType::kDeployRequest, req.encode()),
      wrap(PvnMsgType::kDeployAck, ack.encode()),
      wrap(PvnMsgType::kDeployNack, nack.encode()),
      wrap(PvnMsgType::kLeaseRenew, renew.encode()),
      wrap(PvnMsgType::kLeaseAck, lack.encode()),
      wrap(PvnMsgType::kStateRequest, sreq.encode()),
      wrap(PvnMsgType::kStateTransfer, xfer.encode()),
      wrap(PvnMsgType::kStateAck, sack.encode()),
  };

  const auto decode_as = [](PvnMsgType type, const Bytes& body) {
    switch (type) {
      case PvnMsgType::kDiscovery: (void)DiscoveryMessage::decode(body); break;
      case PvnMsgType::kOffer: (void)Offer::decode(body); break;
      case PvnMsgType::kDeployRequest: (void)DeployRequest::decode(body); break;
      case PvnMsgType::kDeployAck: (void)DeployAck::decode(body); break;
      case PvnMsgType::kDeployNack: (void)DeployNack::decode(body); break;
      case PvnMsgType::kTeardown: (void)Teardown::decode(body); break;
      case PvnMsgType::kLeaseRenew: (void)LeaseRenew::decode(body); break;
      case PvnMsgType::kLeaseAck: (void)LeaseAck::decode(body); break;
      case PvnMsgType::kStateRequest: (void)StateRequest::decode(body); break;
      case PvnMsgType::kStateTransfer: {
        // The nested snapshot must also reject corruption cleanly.
        if (const auto x = StateTransfer::decode(body)) {
          (void)ChainCheckpoint::decode(x->checkpoint);
        }
        break;
      }
      case PvnMsgType::kStateAck: (void)StateAck::decode(body); break;
      default: break;
    }
  };

  for (int i = 0; i < 2000; ++i) {
    Bytes mutant = corpus[rng.next_below(corpus.size())];
    const std::uint64_t op = rng.next_below(4);
    if (op == 0 && !mutant.empty()) {
      // Flip 1-8 random bytes.
      const std::uint64_t flips = 1 + rng.next_below(8);
      for (std::uint64_t f = 0; f < flips; ++f) {
        mutant[rng.next_below(mutant.size())] ^=
            static_cast<std::uint8_t>(1 + rng.next_below(255));
      }
    } else if (op == 1 && !mutant.empty()) {
      mutant.resize(rng.next_below(mutant.size()));  // truncate
    } else if (op == 2) {
      Bytes extra(rng.next_below(64));
      for (auto& b : extra) b = static_cast<std::uint8_t>(rng.next_u64());
      mutant.insert(mutant.end(), extra.begin(), extra.end());  // extend
    } else if (!mutant.empty()) {
      // Overwrite a random run with 0xFF — maximizes length/count fields.
      const std::size_t at = rng.next_below(mutant.size());
      const std::size_t run = std::min<std::size_t>(
          mutant.size() - at, 1 + rng.next_below(8));
      for (std::size_t k = 0; k < run; ++k) mutant[at + k] = 0xFF;
    }
    if (const auto unwrapped = unwrap(mutant)) {
      decode_as(unwrapped->first, unwrapped->second);
    }
  }
  SUCCEED();
}

TEST_P(DiscoveryProperty, LeaseMessagesRoundTrip) {
  Rng rng(GetParam() + 2000);
  for (int i = 0; i < 50; ++i) {
    LeaseRenew renew;
    renew.seq = static_cast<std::uint32_t>(rng.next_u64());
    renew.device_id = random_name(rng);
    renew.chain_id = "chain:" + random_name(rng);
    const auto renew2 = LeaseRenew::decode(renew.encode());
    ASSERT_TRUE(renew2.has_value());
    EXPECT_EQ(renew2->seq, renew.seq);
    EXPECT_EQ(renew2->device_id, renew.device_id);
    EXPECT_EQ(renew2->chain_id, renew.chain_id);

    LeaseAck ack;
    ack.seq = renew.seq;
    ack.ok = rng.bernoulli(0.5);
    ack.lease_duration = static_cast<SimDuration>(rng.next_below(kSecond * 60));
    for (std::uint64_t m = 0; m < rng.next_below(4); ++m) {
      ack.degraded_modules.push_back(random_name(rng));
    }
    ack.reason = ack.ok ? "" : random_name(rng);
    const auto ack2 = LeaseAck::decode(ack.encode());
    ASSERT_TRUE(ack2.has_value());
    EXPECT_EQ(ack2->seq, ack.seq);
    EXPECT_EQ(ack2->ok, ack.ok);
    EXPECT_EQ(ack2->lease_duration, ack.lease_duration);
    EXPECT_EQ(ack2->degraded_modules, ack.degraded_modules);
    EXPECT_EQ(ack2->reason, ack.reason);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DiscoveryProperty,
                         ::testing::Values(11, 12, 13));

// --- Chain checkpoints (survivability) ------------------------------------------------

// Pushes a deterministic mix of classifiable and tracker-bound traffic
// through `chain`, building per-flow state in every stateful module.
void feed_chain(Chain& chain, Network& net, Rng& rng, int flows) {
  SimDuration delay = 0;
  for (int f = 0; f < flows; ++f) {
    Packet video = net.make_packet(
        Ipv4Addr(10, 0, 0, 2),
        Ipv4Addr(93, 184, 216, static_cast<std::uint8_t>(rng.next_below(250))),
        IpProto::kTcp, to_bytes("HTTP/1.1 200 OK Content-Type: video #" +
                                std::to_string(f)));
    (void)chain.process(video, 0, delay);
    Packet tracked = net.make_packet(
        Ipv4Addr(10, 0, 0, 2), Ipv4Addr(6, 6, 6, 6), IpProto::kTcp,
        to_bytes("GET /pixel?id=" + std::to_string(f)));
    (void)chain.process(tracked, 0, delay);
  }
}

class CheckpointProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CheckpointProperty, RoundTripPreservesModuleState) {
  Rng rng(GetParam());
  Network net(GetParam());
  Classifier classifier({{"Content-Type: video", 0x20}});
  TrackerBlocker blocker({Ipv4Addr(6, 6, 6, 6)});
  Chain chain("chain:ckpt:0", microseconds(45));
  chain.append(&classifier);
  chain.append(&blocker);
  feed_chain(chain, net, rng, 8);
  ASSERT_GT(classifier.flows_classified(), 0u);
  ASSERT_GT(blocker.blocked(), 0u);

  const ChainCheckpoint ckpt = capture_chain(chain, 3, seconds(1));
  const auto back = ChainCheckpoint::decode(ckpt.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->chain_id, ckpt.chain_id);
  EXPECT_EQ(back->seq, ckpt.seq);
  EXPECT_EQ(back->taken_at, ckpt.taken_at);
  EXPECT_EQ(back->incremental, ckpt.incremental);
  ASSERT_EQ(back->modules.size(), ckpt.modules.size());
  for (std::size_t m = 0; m < ckpt.modules.size(); ++m) {
    EXPECT_EQ(back->modules[m].module, ckpt.modules[m].module);
    EXPECT_EQ(back->modules[m].packets_seen, ckpt.modules[m].packets_seen);
    EXPECT_EQ(back->modules[m].state, ckpt.modules[m].state);
  }

  // Restoring into a fresh chain reproduces the source state byte for byte.
  Classifier classifier2({{"Content-Type: video", 0x20}});
  TrackerBlocker blocker2({Ipv4Addr(6, 6, 6, 6)});
  Chain chain2("chain:ckpt:restored", microseconds(45));
  chain2.append(&classifier2);
  chain2.append(&blocker2);
  EXPECT_EQ(restore_chain(chain2, *back), 2u);
  EXPECT_EQ(classifier2.serialize_state(), classifier.serialize_state());
  EXPECT_EQ(blocker2.serialize_state(), blocker.serialize_state());
  EXPECT_EQ(classifier2.flows_classified(), classifier.flows_classified());
  EXPECT_EQ(blocker2.packets_seen, blocker.packets_seen);
  EXPECT_EQ(blocker2.packets_dropped, blocker.packets_dropped);
}

TEST_P(CheckpointProperty, EveryTruncationIsRejected) {
  Rng rng(GetParam());
  Network net(GetParam());
  Classifier classifier({{"Content-Type: video", 0x20}});
  Chain chain("chain:ckpt:1", microseconds(45));
  chain.append(&classifier);
  feed_chain(chain, net, rng, 4);
  const Bytes full = capture_chain(chain, 1, 0).encode();
  ASSERT_TRUE(ChainCheckpoint::decode(full).has_value());
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Bytes truncated(full.begin(),
                    full.begin() + static_cast<std::ptrdiff_t>(cut));
    EXPECT_FALSE(ChainCheckpoint::decode(truncated).has_value())
        << "truncation at " << cut << " of " << full.size();
  }
}

TEST_P(CheckpointProperty, BitFlipsAreRejectedWholesale) {
  Rng rng(GetParam() + 50);
  Network net(GetParam());
  Classifier classifier({{"Content-Type: video", 0x20}});
  TrackerBlocker blocker({Ipv4Addr(6, 6, 6, 6)});
  Chain chain("chain:ckpt:2", microseconds(45));
  chain.append(&classifier);
  chain.append(&blocker);
  feed_chain(chain, net, rng, 6);
  const Bytes full = capture_chain(chain, 1, 0).encode();
  for (int i = 0; i < 300; ++i) {
    Bytes corrupted = full;
    const std::size_t at = rng.next_below(corrupted.size());
    corrupted[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_FALSE(ChainCheckpoint::decode(corrupted).has_value())
        << "bit flip at byte " << at;
  }
}

TEST_P(CheckpointProperty, CorruptedSnapshotNeverPartiallyRestores) {
  Rng rng(GetParam() + 99);
  Network net(GetParam());
  Classifier donor({{"Content-Type: video", 0x20}});
  Chain donor_chain("chain:ckpt:3", microseconds(45));
  donor_chain.append(&donor);
  feed_chain(donor_chain, net, rng, 8);
  ChainCheckpoint ckpt = capture_chain(donor_chain, 1, 0);
  ASSERT_EQ(ckpt.modules.size(), 1u);

  // The victim has its own, different state. A snapshot whose module payload
  // is mangled (modeling a serializer bug — the digest only protects the
  // transport) must be rejected by restore_state with zero mutation.
  Classifier victim({{"Content-Type: video", 0x20}});
  Chain victim_chain("chain:ckpt:victim", microseconds(45));
  victim_chain.append(&victim);
  feed_chain(victim_chain, net, rng, 3);
  const Bytes before = victim.serialize_state();
  const std::uint64_t flows_before = victim.flows_classified();

  ChainCheckpoint truncated_state = ckpt;
  truncated_state.modules[0].state.resize(
      truncated_state.modules[0].state.size() / 2);
  EXPECT_EQ(restore_chain(victim_chain, truncated_state), 0u);
  EXPECT_EQ(victim.serialize_state(), before);
  EXPECT_EQ(victim.flows_classified(), flows_before);

  ChainCheckpoint bad_version = ckpt;
  bad_version.modules[0].state_version = 999;
  EXPECT_EQ(restore_chain(victim_chain, bad_version), 0u);
  EXPECT_EQ(victim.serialize_state(), before);

  ChainCheckpoint extended = ckpt;
  extended.modules[0].state.push_back(0xAB);
  EXPECT_EQ(restore_chain(victim_chain, extended), 0u);
  EXPECT_EQ(victim.serialize_state(), before);

  // And the intact checkpoint still applies cleanly afterwards.
  EXPECT_EQ(restore_chain(victim_chain, ckpt), 1u);
  EXPECT_EQ(victim.serialize_state(), donor.serialize_state());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CheckpointProperty,
                         ::testing::Values(31, 32, 33));

// --- ESP ------------------------------------------------------------------------------

class EspProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EspProperty, RandomInnerPacketsRoundTrip) {
  Rng rng(GetParam());
  Network net(GetParam());
  const Bytes key = to_bytes("property-key");
  for (int i = 0; i < 100; ++i) {
    Packet inner = net.make_packet(
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
        Ipv4Addr(static_cast<std::uint32_t>(rng.next_u64())),
        rng.bernoulli(0.5) ? IpProto::kTcp : IpProto::kUdp,
        Bytes(rng.next_below(1500), static_cast<std::uint8_t>(rng.next_u64())));
    inner.ip.tos = static_cast<std::uint8_t>(rng.next_u64());
    const Packet outer =
        esp_encap(inner, Ipv4Addr(1, 1, 1, 1), Ipv4Addr(2, 2, 2, 2), key,
                  static_cast<std::uint32_t>(i), static_cast<std::uint32_t>(i));
    const auto back = esp_decap(outer, key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->ip.src, inner.ip.src);
    EXPECT_EQ(back->ip.dst, inner.ip.dst);
    EXPECT_EQ(back->ip.proto, inner.ip.proto);
    EXPECT_EQ(back->ip.tos, inner.ip.tos);
    EXPECT_EQ(back->l4, inner.l4);
  }
}

TEST_P(EspProperty, SingleBitFlipsAlwaysFailAuth) {
  Rng rng(GetParam() + 7);
  Network net(GetParam());
  const Bytes key = to_bytes("property-key");
  Packet inner = net.make_packet(Ipv4Addr(10, 0, 0, 2), Ipv4Addr(1, 2, 3, 4),
                                 IpProto::kUdp, Bytes(64, 0x42));
  const Packet outer = esp_encap(inner, Ipv4Addr(1, 1, 1, 1),
                                 Ipv4Addr(2, 2, 2, 2), key, 1, 1);
  for (int i = 0; i < 100; ++i) {
    Packet corrupted = outer;
    // Flip a random bit anywhere past the spi/seq prefix.
    const std::size_t at = 8 + rng.next_below(corrupted.l4.size() - 8);
    corrupted.l4[at] ^= static_cast<std::uint8_t>(1u << rng.next_below(8));
    EXPECT_FALSE(esp_decap(corrupted, key).has_value()) << "bit at " << at;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EspProperty, ::testing::Values(21, 22, 23));

// --- Meter long-run conformance property ----------------------------------------------

struct MeterCase {
  int rate_kbps;
  int offered_kbps;
  std::uint64_t seed;
};

class MeterProperty : public ::testing::TestWithParam<MeterCase> {};

TEST_P(MeterProperty, LongRunOutputNeverExceedsConfiguredRate) {
  const MeterCase c = GetParam();
  Meter meter(Rate::kbps(c.rate_kbps), 16 * 1024);
  Rng rng(c.seed);
  const std::int64_t pkt = 1000;  // bytes
  const double pkts_per_sec = c.offered_kbps * 1000.0 / 8.0 / pkt;
  std::int64_t passed_bytes = 0;
  SimTime now = 0;
  const SimDuration horizon = seconds(30);
  while (now < horizon) {
    now += static_cast<SimDuration>(rng.exponential(kSecond / pkts_per_sec));
    if (meter.conforms(pkt, now)) passed_bytes += pkt;
  }
  const double out_kbps = passed_bytes * 8.0 / to_seconds(horizon) / 1000.0;
  // Never above configured rate (+ burst amortized over 30 s ≈ 4 kbps).
  EXPECT_LE(out_kbps, c.rate_kbps * 1.05 + 5);
  // And if offered >= configured, the meter should pass ~the full rate.
  if (c.offered_kbps >= c.rate_kbps * 2) {
    EXPECT_GE(out_kbps, c.rate_kbps * 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MeterProperty,
    ::testing::Values(MeterCase{500, 250, 1}, MeterCase{500, 1000, 2},
                      MeterCase{1500, 8000, 3}, MeterCase{1500, 1500, 4},
                      MeterCase{100, 5000, 5}, MeterCase{8000, 16000, 6}));

}  // namespace
}  // namespace pvn
