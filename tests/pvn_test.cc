// PVN core tests: PVNC model/codec, the text-format parser, the compiler,
// negotiation, billing, and full end-to-end deployment through the
// discovery protocol on the canonical testbed.
#include <gtest/gtest.h>

#include "pvn/pvnc_parser.h"
#include "testbed/testbed.h"

namespace pvn {
namespace {

// --- PVNC model / codec ---------------------------------------------------------

Pvnc sample_pvnc() {
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"tls-validator", {{"mode", "block"}}});
  pvnc.chain.push_back(PvncModule{"pii-detector", {{"action", "scrub"}}});
  PvncPolicy drop;
  drop.kind = PvncPolicy::Kind::kDrop;
  drop.match.proto = IpProto::kUdp;
  drop.match.dst_port = 1900;
  pvnc.policies.push_back(drop);
  PvncPolicy rate;
  rate.kind = PvncPolicy::Kind::kRateLimit;
  rate.match.tos = 0x20;
  rate.tos = 0x20;
  rate.rate = Rate::kbps(1500);
  pvnc.policies.push_back(rate);
  return pvnc;
}

TEST(Pvnc, EncodeDecodeRoundTrip) {
  const Pvnc pvnc = sample_pvnc();
  const auto back = Pvnc::decode(pvnc.encode());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, pvnc);
}

TEST(Pvnc, DecodeRejectsGarbage) {
  EXPECT_FALSE(Pvnc::decode(to_bytes("not a pvnc")).has_value());
}

TEST(Pvnc, ResourceEstimateScalesWithChain) {
  Pvnc pvnc = sample_pvnc();
  const auto two = pvnc.est_memory_bytes();
  pvnc.chain.push_back(PvncModule{"classifier", {}});
  EXPECT_GT(pvnc.est_memory_bytes(), two);
}

TEST(Pvnc, RestrictToModulesKeepsOrderAndPolicies) {
  const Pvnc pvnc = sample_pvnc();
  const Pvnc subset = restrict_to_modules(pvnc, {"pii-detector"});
  ASSERT_EQ(subset.chain.size(), 1u);
  EXPECT_EQ(subset.chain[0].store_name, "pii-detector");
  EXPECT_EQ(subset.policies.size(), pvnc.policies.size());
}

TEST(PvncValidation, CatchesProblems) {
  StoreEnvironment env;
  const PvnStore store = make_standard_store(env);

  Pvnc unknown;
  unknown.name = "x";
  unknown.chain.push_back(PvncModule{"warp-drive", {}});
  EXPECT_FALSE(validate_pvnc(unknown, &store).empty());

  Pvnc dup;
  dup.name = "x";
  dup.chain.push_back(PvncModule{"classifier", {}});
  dup.chain.push_back(PvncModule{"classifier", {}});
  EXPECT_FALSE(validate_pvnc(dup, &store).empty());

  Pvnc unnamed;
  EXPECT_FALSE(validate_pvnc(unnamed, &store).empty());

  Pvnc conflicting;
  conflicting.name = "x";
  PvncPolicy a, b;
  a.kind = PvncPolicy::Kind::kDrop;
  b.kind = PvncPolicy::Kind::kMark;
  conflicting.policies = {a, b};
  EXPECT_FALSE(validate_pvnc(conflicting, &store).empty());

  Pvnc good;
  good.name = "x";
  good.chain.push_back(PvncModule{"classifier", {}});
  EXPECT_TRUE(validate_pvnc(good, &store).empty());
}

// --- Parser ------------------------------------------------------------------------

TEST(PvncParser, ParsesFullExample) {
  const std::string text = R"(
# Alice's roaming configuration
pvnc "alice-phone" {
  module tls-validator mode=block
  module pii-detector action=scrub
  policy drop proto=udp dport=1900
  policy rate tos=0x20 rate=1500kbps
  policy mark dport=80 tos=16
  policy tunnel dport=443 gateway=203.0.113.5
}
)";
  const auto result = parse_pvnc(text);
  ASSERT_TRUE(std::holds_alternative<Pvnc>(result));
  const Pvnc& pvnc = std::get<Pvnc>(result);
  EXPECT_EQ(pvnc.name, "alice-phone");
  ASSERT_EQ(pvnc.chain.size(), 2u);
  EXPECT_EQ(pvnc.chain[0].store_name, "tls-validator");
  EXPECT_EQ(pvnc.chain[0].params.at("mode"), "block");
  ASSERT_EQ(pvnc.policies.size(), 4u);
  EXPECT_EQ(pvnc.policies[0].kind, PvncPolicy::Kind::kDrop);
  EXPECT_EQ(pvnc.policies[0].match.dst_port, 1900);
  EXPECT_EQ(pvnc.policies[1].kind, PvncPolicy::Kind::kRateLimit);
  EXPECT_EQ(pvnc.policies[1].rate, Rate::kbps(1500));
  EXPECT_EQ(pvnc.policies[1].match.tos, 0x20);
  EXPECT_EQ(pvnc.policies[2].kind, PvncPolicy::Kind::kMark);
  EXPECT_EQ(pvnc.policies[2].tos, 16);
  EXPECT_EQ(pvnc.policies[3].kind, PvncPolicy::Kind::kTunnel);
  EXPECT_EQ(pvnc.policies[3].gateway, Ipv4Addr(203, 0, 113, 5));
}

struct BadPvncCase {
  const char* label;
  const char* text;
};

class PvncParserErrors : public ::testing::TestWithParam<BadPvncCase> {};

TEST_P(PvncParserErrors, ReportsLineAndMessage) {
  const auto result = parse_pvnc(GetParam().text);
  ASSERT_TRUE(std::holds_alternative<ParseError>(result)) << GetParam().label;
  EXPECT_GT(std::get<ParseError>(result).line, 0);
  EXPECT_FALSE(std::get<ParseError>(result).message.empty());
}

INSTANTIATE_TEST_SUITE_P(
    Cases, PvncParserErrors,
    ::testing::Values(
        BadPvncCase{"empty", ""},
        BadPvncCase{"no-brace", "pvnc \"x\"\n}"},
        BadPvncCase{"unterminated", "pvnc \"x\" {\n module classifier\n"},
        BadPvncCase{"unknown-directive", "pvnc \"x\" {\n frobnicate\n}"},
        BadPvncCase{"bad-policy-kind", "pvnc \"x\" {\n policy explode\n}"},
        BadPvncCase{"bad-cidr", "pvnc \"x\" {\n policy drop dst=999.1.2.3\n}"},
        BadPvncCase{"bad-port", "pvnc \"x\" {\n policy drop dport=99999\n}"},
        BadPvncCase{"rate-missing", "pvnc \"x\" {\n policy rate tos=1\n}"},
        BadPvncCase{"tunnel-missing-gw", "pvnc \"x\" {\n policy tunnel\n}"},
        BadPvncCase{"module-bad-param",
                    "pvnc \"x\" {\n module classifier modeblock\n}"}),
    [](const ::testing::TestParamInfo<BadPvncCase>& info) {
      std::string name = info.param.label;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(PvncParser, FormatRoundTrips) {
  const Pvnc pvnc = sample_pvnc();
  const std::string text = format_pvnc(pvnc);
  const auto result = parse_pvnc(text);
  ASSERT_TRUE(std::holds_alternative<Pvnc>(result)) << text;
  EXPECT_EQ(std::get<Pvnc>(result), pvnc) << text;
}

// --- Compiler -----------------------------------------------------------------------

TEST(Compiler, EmitsScopedTwoTableProgram) {
  const Pvnc pvnc = sample_pvnc();
  DeploymentContext ctx;
  ctx.device = Ipv4Addr(10, 0, 0, 2);
  ctx.client_port = 0;
  ctx.wan_port = 1;
  ctx.chain_id = "chain:alice:0";
  ctx.cookie = "pvn:alice-phone";
  const CompiledPvnc compiled = compile_pvnc(pvnc, ctx);

  // Table 0: 2 scope/divert rules. Table 1: 2 policies x 2 directions +
  // 2 fall-through forwarding rules.
  int t0 = 0, t1 = 0;
  for (const auto& [table, rule] : compiled.rules) {
    EXPECT_EQ(rule.cookie, "pvn:alice-phone");
    // Every rule is scoped to the device in one direction.
    const bool scoped_src =
        rule.match.src && rule.match.src->contains(ctx.device) &&
        rule.match.src->len == 32;
    const bool scoped_dst =
        rule.match.dst && rule.match.dst->contains(ctx.device) &&
        rule.match.dst->len == 32;
    EXPECT_TRUE(scoped_src || scoped_dst);
    (table == 0 ? t0 : t1) += 1;
  }
  EXPECT_EQ(t0, 2);
  EXPECT_EQ(t1, 6);
  ASSERT_EQ(compiled.meters.size(), 1u);
  EXPECT_EQ(compiled.meters[0].rate, Rate::kbps(1500));
  EXPECT_EQ(compiled.chain.size(), pvnc.chain.size());
}

TEST(Compiler, EmptyChainSkipsMboxAction) {
  Pvnc pvnc;
  pvnc.name = "bare";
  DeploymentContext ctx;
  ctx.device = Ipv4Addr(10, 0, 0, 2);
  ctx.chain_id = "c";
  ctx.cookie = "pvn:bare";
  const CompiledPvnc compiled = compile_pvnc(pvnc, ctx);
  for (const auto& [table, rule] : compiled.rules) {
    for (const Action& a : rule.actions) {
      EXPECT_EQ(std::get_if<ActMbox>(&a), nullptr);
    }
  }
}

// --- Negotiation --------------------------------------------------------------------

Offer make_offer(std::vector<std::string> modules, double price,
                 SimTime expires = 0) {
  Offer o;
  o.offered_modules = std::move(modules);
  o.total_price = price;
  o.expires_at = expires;
  return o;
}

TEST(Negotiation, FullOfferAccepted) {
  const Constraints c;
  const auto r = evaluate_offer(make_offer({"a", "b"}, 1.0), {"a", "b"}, c, 0);
  EXPECT_EQ(r.action, NegotiationAction::kAccept);
  EXPECT_DOUBLE_EQ(r.utility, 2.0);
}

TEST(Negotiation, PartialOfferCountersWithSubset) {
  const Constraints c;
  const auto r = evaluate_offer(make_offer({"a"}, 0.5), {"a", "b"}, c, 0);
  EXPECT_EQ(r.action, NegotiationAction::kCounterSubset);
  EXPECT_EQ(r.accept_modules, std::vector<std::string>{"a"});
}

TEST(Negotiation, HardConstraintRejects) {
  Constraints c;
  c.required_modules = {"b"};
  const auto r = evaluate_offer(make_offer({"a"}, 0.5), {"a", "b"}, c, 0);
  EXPECT_EQ(r.action, NegotiationAction::kReject);
}

TEST(Negotiation, BudgetRejects) {
  Constraints c;
  c.max_price = 1.0;
  const auto r = evaluate_offer(make_offer({"a"}, 2.0), {"a"}, c, 0);
  EXPECT_EQ(r.action, NegotiationAction::kReject);
}

TEST(Negotiation, ExpiredOfferRejected) {
  const Constraints c;
  const auto r = evaluate_offer(make_offer({"a"}, 0.1, seconds(1)), {"a"}, c,
                                seconds(2));
  EXPECT_EQ(r.action, NegotiationAction::kReject);
}

TEST(Negotiation, ExpiredOfferSkippedByPickBestOffer) {
  const Constraints c;
  // The expired offer is better on every axis; it must still lose.
  std::vector<Offer> offers = {make_offer({"a", "b"}, 0.1, seconds(1)),
                               make_offer({"a"}, 5.0, seconds(60))};
  EXPECT_EQ(pick_best_offer(offers, {"a", "b"}, c, seconds(2)), 1);
}

TEST(Negotiation, AllOffersExpiredPicksNone) {
  const Constraints c;
  std::vector<Offer> offers = {make_offer({"a"}, 0.1, seconds(1)),
                               make_offer({"a"}, 0.2, seconds(3))};
  EXPECT_EQ(pick_best_offer(offers, {"a"}, c, seconds(4)), -1);
}

TEST(Negotiation, OfferWithNoExpiryNeverExpires) {
  const Constraints c;
  std::vector<Offer> offers = {make_offer({"a"}, 0.5, 0)};
  EXPECT_EQ(pick_best_offer(offers, {"a"}, c, seconds(1000000)), 0);
}

TEST(Negotiation, SoftUtilityRanksOffers) {
  Constraints c;
  c.module_utility = {{"a", 5.0}, {"b", 1.0}};
  std::vector<Offer> offers = {make_offer({"b"}, 0.1),
                               make_offer({"a"}, 0.9)};
  EXPECT_EQ(pick_best_offer(offers, {"a", "b"}, c, 0), 1);
}

TEST(Negotiation, TieBrokenByPrice) {
  const Constraints c;
  std::vector<Offer> offers = {make_offer({"a"}, 0.9), make_offer({"a"}, 0.2)};
  EXPECT_EQ(pick_best_offer(offers, {"a"}, c, 0), 1);
}

TEST(Negotiation, NoAcceptableOffer) {
  Constraints c;
  c.max_price = 0.01;
  std::vector<Offer> offers = {make_offer({"a"}, 1.0)};
  EXPECT_EQ(pick_best_offer(offers, {"a"}, c, 0), -1);
}

// Property: a larger budget never yields a worse (lower-utility) choice.
class BudgetMonotonicity : public ::testing::TestWithParam<double> {};

TEST_P(BudgetMonotonicity, MoreBudgetNeverWorse) {
  std::vector<Offer> offers = {make_offer({"a"}, 0.5),
                               make_offer({"a", "b"}, 2.0),
                               make_offer({"a", "b", "c"}, 5.0)};
  Constraints small;
  small.max_price = GetParam();
  Constraints big;
  big.max_price = GetParam() * 2;
  const std::vector<std::string> req = {"a", "b", "c"};
  const int pick_small = pick_best_offer(offers, req, small, 0);
  const int pick_big = pick_best_offer(offers, req, big, 0);
  auto utility = [&](int idx) {
    if (idx < 0) return -1.0;
    return evaluate_offer(offers[static_cast<std::size_t>(idx)], req,
                          Constraints{}, 0)
        .utility;
  };
  EXPECT_GE(utility(pick_big), utility(pick_small));
}

INSTANTIATE_TEST_SUITE_P(Budgets, BudgetMonotonicity,
                         ::testing::Values(0.1, 0.6, 1.0, 2.5, 6.0));

// --- Ledger -------------------------------------------------------------------------

TEST(Ledger, BalancesAndRefunds) {
  Ledger ledger;
  ledger.charge(0, "alice", "isp", 2.0, "deployment");
  ledger.charge(0, "bob", "isp", 3.0, "deployment");
  EXPECT_DOUBLE_EQ(ledger.balance("isp"), 5.0);
  EXPECT_DOUBLE_EQ(ledger.balance("alice"), -2.0);

  const std::size_t d =
      ledger.file_dispute(seconds(1), "alice", "isp", 2.0, "shaping detected");
  EXPECT_TRUE(ledger.grant_refund(d));
  EXPECT_FALSE(ledger.grant_refund(d));  // no double refunds
  EXPECT_DOUBLE_EQ(ledger.balance("alice"), 0.0);
  EXPECT_DOUBLE_EQ(ledger.balance("isp"), 3.0);
  EXPECT_FALSE(ledger.grant_refund(99));
}

// --- End-to-end deployment on the testbed ----------------------------------------

TEST(Deployment, FullProtocolSucceeds) {
  Testbed tb;
  const DeployOutcome outcome = tb.deploy(tb.standard_pvnc());
  ASSERT_TRUE(outcome.ok) << outcome.failure;
  EXPECT_FALSE(outcome.chain_id.empty());
  EXPECT_EQ(outcome.offers_received, 1);
  EXPECT_GT(outcome.paid, 0.0);
  EXPECT_EQ(outcome.deployed_modules.size(), 4u);
  EXPECT_EQ(tb.server->deployments_active(), 1u);
  // Rules landed on the switch (infra rules + pvn rules).
  EXPECT_GT(tb.access_sw->table(0).size(), 3u);
  EXPECT_GT(tb.access_sw->table(1).size(), 0u);
  // The ledger recorded the charge.
  EXPECT_GT(tb.ledger->balance("access-net"), 0.0);
  // Deployment includes instantiation (4 x sequential-ish 30 ms) and the
  // discovery wait; it completes in well under a second.
  EXPECT_LT(outcome.elapsed, seconds(1));
  EXPECT_GT(outcome.elapsed, milliseconds(30));
}

TEST(Deployment, TrafficFlowsThroughDeployedPvn) {
  Testbed tb;
  ASSERT_TRUE(tb.deploy(tb.standard_pvnc()).ok);
  // Plain web fetch still works through the PVN.
  HttpClient http(*tb.client);
  bool ok = false;
  http.fetch(tb.addrs.web, 80, "/bytes/50000",
             [&](const HttpResponse&, const FetchTiming& t) { ok = t.ok; });
  tb.net.sim().run();
  EXPECT_TRUE(ok);
  // The chain saw the packets.
  Chain* chain = tb.mbox_host->chain("chain:alice-phone:0");
  ASSERT_NE(chain, nullptr);
  EXPECT_GT(chain->packets(), 0u);
}

TEST(Deployment, PiiBlockedEndToEndAfterDeployment) {
  Testbed tb;
  // Without the PVN, the tracker receives the leaky beacon.
  TelemetryEmitter leaky_before(*tb.client, tb.addrs.tracker, 80,
                                {"imei=356938035643809", "lat=42.3601"});
  leaky_before.start(1, milliseconds(10));
  tb.net.sim().run();
  EXPECT_EQ(tb.tracker_http->requests_served(), 1u);

  ASSERT_TRUE(tb.deploy(tb.standard_pvnc()).ok);
  // With the PVN, tracker traffic is dropped (tracker-blocker) before the
  // PII even matters.
  TelemetryEmitter leaky_after(*tb.client, tb.addrs.tracker, 80,
                               {"imei=356938035643809"});
  leaky_after.start(1, milliseconds(10));
  tb.net.sim().run_until(tb.net.sim().now() + seconds(30));
  EXPECT_EQ(tb.tracker_http->requests_served(), 1u);  // unchanged

  Chain* chain = tb.mbox_host->chain("chain:alice-phone:0");
  ASSERT_NE(chain, nullptr);
  bool tracker_finding = false;
  for (const MboxFinding& f : chain->findings()) {
    if (f.kind == "tracker-blocked") tracker_finding = true;
  }
  EXPECT_TRUE(tracker_finding);
}

TEST(Deployment, PartialProviderTriggersSubsetDeployment) {
  TestbedConfig cfg;
  cfg.allowed_modules = {"pii-detector", "tracker-blocker"};  // no validators
  Testbed tb(cfg);
  const DeployOutcome outcome = tb.deploy(tb.standard_pvnc());
  ASSERT_TRUE(outcome.ok) << outcome.failure;
  EXPECT_EQ(outcome.deployed_modules.size(), 2u);
  EXPECT_LT(outcome.utility, 4.0);
}

TEST(Deployment, HardConstraintFailsOnPartialProvider) {
  TestbedConfig cfg;
  cfg.allowed_modules = {"pii-detector"};
  Testbed tb(cfg);
  ClientConfig ccfg;
  ccfg.constraints.required_modules = {"tls-validator"};
  const DeployOutcome outcome = tb.deploy(tb.standard_pvnc(), ccfg);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.failure, "no acceptable offer");
}

TEST(Deployment, OverpricedProviderRejectedByBudget) {
  TestbedConfig cfg;
  cfg.price_multiplier = 100.0;
  Testbed tb(cfg);
  ClientConfig ccfg;
  ccfg.constraints.max_price = 5.0;
  const DeployOutcome outcome = tb.deploy(tb.standard_pvnc(), ccfg);
  EXPECT_FALSE(outcome.ok);
}

TEST(Deployment, TeardownRemovesRulesAndChain) {
  Testbed tb;
  ASSERT_TRUE(tb.deploy(tb.standard_pvnc()).ok);
  const std::size_t rules_with_pvn = tb.access_sw->table(0).size();

  PvnClient agent(*tb.client, tb.standard_pvnc());
  agent.teardown(tb.addrs.control);
  tb.net.sim().run();
  EXPECT_EQ(tb.server->deployments_active(), 0u);
  EXPECT_LT(tb.access_sw->table(0).size(), rules_with_pvn);
  // Only the testbed's infrastructure rules survive.
  for (const FlowRule& rule : tb.access_sw->table(0).rules()) {
    EXPECT_EQ(rule.cookie, "infra");
  }
  EXPECT_EQ(tb.mbox_host->memory_in_use(), 0);
}

TEST(Deployment, RedeploymentReplacesOldOne) {
  Testbed tb;
  ASSERT_TRUE(tb.deploy(tb.standard_pvnc()).ok);
  Pvnc smaller;
  smaller.name = "alice-phone";
  smaller.chain.push_back(PvncModule{"pii-detector", {}});
  ASSERT_TRUE(tb.deploy(smaller).ok);
  EXPECT_EQ(tb.server->deployments_active(), 1u);
  EXPECT_EQ(tb.mbox_host->instances(), 1);
}

TEST(Deployment, DhcpAdvertisesPvnAndDeviceUsesIt) {
  Testbed tb;
  DhcpClient dhcp_client(*tb.client);
  DhcpLease lease;
  dhcp_client.acquire(tb.addrs.control,
                      [&](const DhcpLease& l) { lease = l; });
  tb.net.sim().run();
  ASSERT_TRUE(lease.ok);
  ASSERT_TRUE(lease.pvn_supported);
  EXPECT_EQ(lease.pvn_server, tb.addrs.control);

  // Deploy against the discovered server. The client was re-addressed by
  // DHCP, so deployment rules scope to the new address.
  const DeployOutcome outcome = tb.deploy(tb.standard_pvnc());
  EXPECT_TRUE(outcome.ok) << outcome.failure;
}

TEST(Deployment, UnknownModuleGetsNoOffer) {
  Testbed tb;
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  pvnc.chain.push_back(PvncModule{"quantum-encryptor", {}});
  const DeployOutcome outcome = tb.deploy(pvnc);
  EXPECT_FALSE(outcome.ok);
}

TEST(Deployment, RatePolicyInstallsMeterAndShapesFlow) {
  Testbed tb;
  Pvnc pvnc;
  pvnc.name = "alice-phone";
  PvncPolicy rate;
  rate.kind = PvncPolicy::Kind::kRateLimit;
  rate.match.proto = IpProto::kUdp;
  rate.match.dst_port = 9000;
  rate.rate = Rate::kbps(500);
  pvnc.policies.push_back(rate);
  ASSERT_TRUE(tb.deploy(pvnc).ok);

  // Blast 5 Mbps of UDP at the rate-limited port; goodput collapses to the
  // configured 500 kbps.
  int received = 0;
  tb.web->bind_udp(9000, [&](Ipv4Addr, Port, Port, const Bytes&) {
    ++received;
  });
  const int total = 500;
  for (int i = 0; i < total; ++i) {
    tb.net.sim().schedule_after(i * (seconds(1) / total), [&tb] {
      tb.client->send_udp(tb.addrs.web, 40000, 9000, Bytes(1200, 1));
    });
  }
  tb.net.sim().run_until(tb.net.sim().now() + seconds(5));
  // 500 kbps of ~1240B packets for 1 s ≈ 50 packets (plus burst allowance).
  EXPECT_LT(received, 130);
  EXPECT_GT(received, 20);
}

}  // namespace
}  // namespace pvn
