// Tests for the telemetry subsystem: metrics registry semantics, histogram
// bucketing, span nesting + ring wraparound, golden exporter output, the
// simulator profiler, and an end-to-end check that one deployed PVN session
// populates every layer's metrics consistently (TelemetryAuditor).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "audit/telemetry_check.h"
#include "proto/http.h"
#include "telemetry/export.h"
#include "telemetry/metrics.h"
#include "telemetry/span.h"
#include "testbed/testbed.h"

namespace pvn {
namespace {

using telemetry::MetricsRegistry;
using telemetry::SpanRecord;
using telemetry::SpanRecorder;

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, RegistrationIsIdempotent) {
  MetricsRegistry reg;
  telemetry::Counter& a = reg.counter("x.y.z");
  telemetry::Counter& b = reg.counter("x.y.z");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(reg.size(), 1u);
  telemetry::Counter& c = reg.counter("x.y.z", "inst");
  EXPECT_NE(&a, &c);
  EXPECT_EQ(reg.size(), 2u);
}

TEST(MetricsRegistry, SnapshotReflectsValuesAndInstances) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry reg;
  reg.counter("net.pkts", "a->b").inc(3);
  reg.counter("net.pkts", "b->a").inc(5);
  reg.gauge("net.queue").set(-2);

  const telemetry::MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.samples.size(), 3u);
  const telemetry::MetricSample* ab = snap.find("net.pkts", "a->b");
  ASSERT_NE(ab, nullptr);
  EXPECT_EQ(ab->counter_value, 3u);
  EXPECT_EQ(snap.counter_total("net.pkts"), 8u);
  const telemetry::MetricSample* g = snap.find("net.queue");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->gauge_value, -2);
  EXPECT_EQ(snap.find("net.pkts", "nope"), nullptr);
}

TEST(MetricsRegistry, ResetZeroesValuesButKeepsHandedOutCells) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry reg;
  telemetry::Counter& c = reg.counter("a.b");
  c.inc(7);
  reg.reset();
  EXPECT_EQ(reg.size(), 1u);  // registration survives
  EXPECT_EQ(c.value(), 0u);
  c.inc();  // the pre-reset reference still points at the live cell
  EXPECT_EQ(reg.snapshot().counter_total("a.b"), 1u);
}

TEST(MetricsRegistry, GlobalIsASingleton) {
  EXPECT_EQ(&MetricsRegistry::global(), &MetricsRegistry::global());
}

// --- Histogram ---------------------------------------------------------------

TEST(Histogram, BoundsAreInclusiveUpperWithOverflowBucket) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  telemetry::Histogram h({10, 20});
  h.observe(10);  // lands in <=10
  h.observe(11);  // lands in <=20
  h.observe(20);  // lands in <=20
  h.observe(21);  // overflow
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{1, 2, 1}));
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 62u);
  h.reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.bounds().size(), 2u);  // bounds survive reset
}

TEST(Histogram, FirstRegistrationFixesBounds) {
  MetricsRegistry reg;
  telemetry::Histogram& a = reg.histogram("h", {1, 2, 3});
  telemetry::Histogram& b = reg.histogram("h", {99});
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(b.bounds(), (std::vector<std::uint64_t>{1, 2, 3}));
}

TEST(Histogram, LatencyBoundsAreAscending) {
  const std::vector<std::uint64_t> bounds = telemetry::latency_bounds_ns();
  ASSERT_GE(bounds.size(), 2u);
  for (std::size_t i = 1; i < bounds.size(); ++i) {
    EXPECT_LT(bounds[i - 1], bounds[i]);
  }
}

// --- Spans -------------------------------------------------------------------

TEST(Span, DepthTracksNestingPerSession) {
  SpanRecorder rec(16);
  telemetry::Span outer = rec.start("cycle", "pvn", "dev-1");
  telemetry::Span inner = rec.start("phase", "pvn", "dev-1");
  telemetry::Span other = rec.start("cycle", "pvn", "dev-2");
  inner.finish();
  telemetry::Span inner2 = rec.start("phase2", "pvn", "dev-1");
  inner2.finish();
  other.finish();
  outer.finish();

  const std::vector<SpanRecord> records = rec.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records[0].depth, 0);  // cycle (dev-1)
  EXPECT_EQ(records[1].depth, 1);  // phase nested under cycle
  EXPECT_EQ(records[2].depth, 0);  // dev-2 has its own depth
  EXPECT_EQ(records[3].depth, 1);  // phase2 reuses the freed depth slot
}

TEST(Span, InstantIsZeroDuration) {
  SpanRecorder rec(4);
  rec.instant("blip", "fault", "dev");
  const std::vector<SpanRecord> records = rec.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].start, records[0].end);
}

TEST(Span, RingWrapKeepsNewestRecords) {
  SpanRecorder rec(4);
  for (int i = 0; i < 6; ++i) {
    std::string name = "i";
    name += std::to_string(i);
    rec.instant(name, "t", "");
  }
  EXPECT_EQ(rec.total_recorded(), 6u);
  const std::vector<SpanRecord> records = rec.records();
  ASSERT_EQ(records.size(), 4u);
  EXPECT_EQ(records.front().name, "i2");  // oldest surviving
  EXPECT_EQ(records.back().name, "i5");
  for (std::size_t i = 1; i < records.size(); ++i) {
    EXPECT_EQ(records[i].seq, records[i - 1].seq + 1);
  }
}

TEST(Span, LateFinishAfterWrapIsDropped) {
  SpanRecorder rec(2);
  telemetry::Span stale = rec.start("stale", "t", "");  // seq 0
  rec.instant("a", "t", "");                            // seq 1
  rec.instant("b", "t", "");                            // seq 2: evicts seq 0
  stale.finish();  // slot now holds seq 2; must not be stamped
  const std::vector<SpanRecord> records = rec.records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].name, "a");
  EXPECT_EQ(records[1].name, "b");
  EXPECT_EQ(records[1].end, records[1].start);  // untouched instant
}

TEST(Span, StampsFromTheConfiguredSimulatorClock) {
  Simulator sim;
  SpanRecorder rec(8);
  rec.set_clock(&sim);
  telemetry::Span span;
  sim.schedule_at(milliseconds(5), [&] { span = rec.start("p", "pvn", "d"); });
  sim.schedule_at(milliseconds(9), [&] { span.finish(); });
  sim.run();
  const std::vector<SpanRecord> records = rec.records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].start, milliseconds(5));
  EXPECT_EQ(records[0].end, milliseconds(9));
}

TEST(Span, ExportAfterClockDestructionUsesLastRecordedTime) {
  SpanRecorder rec(8);
  {
    Simulator sim;
    rec.set_clock(&sim);
    sim.schedule_at(milliseconds(7), [&] { rec.instant("i", "t", ""); });
    sim.run();
  }  // the clock dies here; exporting must not dereference it
  EXPECT_EQ(rec.last_time(), milliseconds(7));
  const std::string out = telemetry::trace_events_json(rec);
  EXPECT_NE(out.find("\"ts\": 7000.000"), std::string::npos);
}

TEST(Span, MoveTransfersOwnershipAndFinishIsIdempotent) {
  Simulator sim;
  SpanRecorder rec(8);
  rec.set_clock(&sim);
  telemetry::Span a = rec.start("s", "t", "");
  telemetry::Span b = std::move(a);
  EXPECT_FALSE(a.active());  // NOLINT(bugprone-use-after-move): inert by design
  EXPECT_TRUE(b.active());
  a.finish();  // no-op
  sim.schedule_at(milliseconds(3), [&] { b.finish(); });
  sim.run();
  b.finish();  // second finish must not restamp
  ASSERT_EQ(rec.records().size(), 1u);
  EXPECT_EQ(rec.records()[0].end, milliseconds(3));
}

// --- Exporters (golden) ------------------------------------------------------

MetricsRegistry& golden_registry(MetricsRegistry& reg) {
  reg.counter("a.count").inc(3);
  reg.counter("a.count", "x").inc(2);
  reg.gauge("b.gauge").set(-7);
  telemetry::Histogram& h = reg.histogram("c.hist", {10, 20});
  h.observe(5);
  h.observe(15);
  h.observe(99);
  return reg;
}

TEST(Export, PrometheusTextGolden) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry reg;
  const std::string got =
      telemetry::prometheus_text(golden_registry(reg).snapshot());
  const std::string want =
      "# TYPE a_count counter\n"
      "a_count 3\n"
      "a_count{instance=\"x\"} 2\n"
      "# TYPE b_gauge gauge\n"
      "b_gauge -7\n"
      "# TYPE c_hist histogram\n"
      "c_hist_bucket{le=\"10\"} 1\n"
      "c_hist_bucket{le=\"20\"} 2\n"
      "c_hist_bucket{le=\"+Inf\"} 3\n"
      "c_hist_sum 119\n"
      "c_hist_count 3\n";
  EXPECT_EQ(got, want);
}

TEST(Export, MetricsJsonGolden) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry reg;
  const std::string got =
      telemetry::metrics_json(golden_registry(reg).snapshot());
  const std::string want =
      "{\n  \"metrics\": [\n"
      "    {\"name\": \"a.count\", \"instance\": \"\", \"kind\": \"counter\", "
      "\"value\": 3},\n"
      "    {\"name\": \"a.count\", \"instance\": \"x\", \"kind\": "
      "\"counter\", \"value\": 2},\n"
      "    {\"name\": \"b.gauge\", \"instance\": \"\", \"kind\": \"gauge\", "
      "\"value\": -7},\n"
      "    {\"name\": \"c.hist\", \"instance\": \"\", \"kind\": "
      "\"histogram\", \"bounds\": [10, 20], \"counts\": [1, 1, 1], \"sum\": "
      "119, \"count\": 3}\n"
      "  ]\n}\n";
  EXPECT_EQ(got, want);
}

TEST(Export, TraceEventsJsonGolden) {
  std::vector<SpanRecord> records(2);
  records[0] = {0, "deploy", "pvn", "dev", 1000, 3000, 0};
  records[1] = {1, "retransmit", "pvn", "dev", 2000, 2000, 1};
  const std::string got = telemetry::trace_events_json(records, 3000);
  const std::string want =
      "{\"traceEvents\": [\n"
      "  {\"name\": \"deploy\", \"cat\": \"pvn\", \"ph\": \"X\", "
      "\"ts\": 1.000, \"dur\": 2.000, \"pid\": 1, \"tid\": 1, "
      "\"args\": {\"depth\": 0}},\n"
      "  {\"name\": \"retransmit\", \"cat\": \"pvn\", \"ph\": \"i\", "
      "\"ts\": 2.000, \"pid\": 1, \"tid\": 1, \"s\": \"t\"},\n"
      "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
      "\"tid\": 1, \"args\": {\"name\": \"dev\"}}\n"
      "], \"displayTimeUnit\": \"ms\"}\n";
  EXPECT_EQ(got, want);
}

TEST(Export, OpenSpansCloseAtExportTime) {
  std::vector<SpanRecord> records(1);
  records[0] = {0, "open", "pvn", "", 1000, -1, 0};
  const std::string out = telemetry::trace_events_json(records, 5000);
  EXPECT_NE(out.find("\"dur\": 4.000"), std::string::npos);
  // The unnamed session renders as the "global" track.
  EXPECT_NE(out.find("\"name\": \"global\""), std::string::npos);
}

TEST(Export, ProfileJsonListsEveryCategory) {
  SimProfile profile;
  profile.by_category[static_cast<std::size_t>(SimCategory::kLink)] = {7, 123};
  const std::string out = telemetry::profile_json(profile);
  EXPECT_NE(out.find("\"category\": \"link\", \"events\": 7"),
            std::string::npos);
  EXPECT_NE(out.find("\"category\": \"pvn-control\""), std::string::npos);
  EXPECT_NE(out.find("\"total_events\": 7"), std::string::npos);
}

// --- Simulator profiler ------------------------------------------------------

TEST(SimProfiler, AttributesEventsToCategories) {
  Simulator sim;
  sim.enable_profiling(true);
  int ran = 0;
  for (int i = 0; i < 3; ++i) {
    sim.schedule_after(i + 1, SimCategory::kLink, [&] { ++ran; });
  }
  sim.schedule_after(10, SimCategory::kFault, [&] { ++ran; });
  sim.schedule_after(11, [&] { ++ran; });  // untagged -> kOther
  sim.run();
  EXPECT_EQ(ran, 5);
  const SimProfile& p = sim.profile();
  EXPECT_EQ(p.by_category[static_cast<std::size_t>(SimCategory::kLink)].events,
            3u);
  EXPECT_EQ(p.by_category[static_cast<std::size_t>(SimCategory::kFault)].events,
            1u);
  EXPECT_EQ(p.by_category[static_cast<std::size_t>(SimCategory::kOther)].events,
            1u);
  EXPECT_EQ(p.total_events(), 5u);
  sim.reset_profile();
  EXPECT_EQ(sim.profile().total_events(), 0u);
}

TEST(SimProfiler, CountsEventsEvenWhenTimingDisabled) {
  Simulator sim;  // profiling off: no steady_clock reads, but counts stay
  sim.schedule_after(1, SimCategory::kMbox, [] {});
  sim.run();
  EXPECT_EQ(
      sim.profile().by_category[static_cast<std::size_t>(SimCategory::kMbox)]
          .events,
      1u);
}

// --- TelemetryAuditor --------------------------------------------------------

TEST(TelemetryAuditor, FlagsMissingAndUndercountedChains) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  const TelemetryAuditor auditor;
  MetricsRegistry reg;

  // Device holds proofs but the network reports no chain telemetry at all.
  std::vector<TelemetryFinding> findings =
      auditor.check_chain_traversals(reg.snapshot(), "chain-1", 5);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "chain-missing");

  // Network admits fewer traversals than the device verified.
  reg.counter("mbox.chain.packets", "chain-1").inc(3);
  findings = auditor.check_chain_traversals(reg.snapshot(), "chain-1", 5);
  ASSERT_EQ(findings.size(), 1u);
  EXPECT_EQ(findings[0].check, "chain-undercount");

  // Counts consistent (network may legitimately see more than the sample).
  reg.counter("mbox.chain.packets", "chain-1").inc(10);
  EXPECT_TRUE(
      auditor.check_chain_traversals(reg.snapshot(), "chain-1", 5).empty());
}

// --- End to end: one session populates every layer --------------------------

TEST(TelemetryE2E, DeployedSessionCoversEveryLayerAndPassesAudit) {
  if (!telemetry::kCompiledIn) GTEST_SKIP() << "telemetry compiled out";
  MetricsRegistry::global().reset();
  SpanRecorder::global().clear();

  Testbed tb;
  PvnClient agent(*tb.client, tb.standard_pvnc());
  bool deployed = false;
  agent.discover_and_deploy(tb.addrs.control,
                            [&](const DeployOutcome& out) { deployed = out.ok; });
  HttpClient http(*tb.client);
  bool fetched = false;
  tb.net.sim().schedule_at(seconds(2), [&] {
    http.fetch(tb.addrs.web, 80, "/bytes/5000",
               [&](const HttpResponse&, const FetchTiming& t) { fetched = t.ok; });
  });
  tb.net.sim().run_until(seconds(10));
  ASSERT_TRUE(deployed);
  ASSERT_TRUE(fetched);

  const telemetry::MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  EXPECT_GT(snap.counter_total("netsim.link.delivered_packets"), 0u);
  EXPECT_GT(snap.counter_total("sdn.switch.packets_in"), 0u);
  EXPECT_GT(snap.counter_total("sdn.flow_table.hits"), 0u);
  EXPECT_GT(snap.counter_total("mbox.chain.packets"), 0u);
  EXPECT_GT(snap.counter_total("pvn.client.deploys_ok"), 0u);
  EXPECT_GT(snap.counter_total("pvn.server.deploys"), 0u);
  // Tunnel cells register at testbed construction even when idle.
  EXPECT_NE(snap.find("tunnel.device.tunneled"), nullptr);

  // The layers' independent accounts of the same run must reconcile.
  const TelemetryAuditor auditor;
  const std::vector<TelemetryFinding> findings =
      auditor.check_dataplane_consistency(snap);
  for (const TelemetryFinding& f : findings) {
    ADD_FAILURE() << f.check << ": " << f.detail;
  }

  // The control plane traced the deploy lifecycle.
  bool saw_cycle = false;
  bool saw_server = false;
  for (const SpanRecord& r : SpanRecorder::global().records()) {
    if (r.name == "deploy_cycle") saw_cycle = true;
    if (r.name == "server_deploy") saw_server = true;
  }
  EXPECT_TRUE(saw_cycle);
  EXPECT_TRUE(saw_server);
}

}  // namespace
}  // namespace pvn
