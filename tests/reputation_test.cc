// Adversarial-hardening reputation layer: typed misbehavior accrual,
// decay-based rehabilitation, hysteretic quarantine, the circuit breaker's
// state machine, and the legacy ReputationSystem it coexists with.
#include <gtest/gtest.h>

#include "audit/reputation.h"

namespace pvn {
namespace {

// --- HostScoreboard: accrual -----------------------------------------------

TEST(HostScoreboard, UnknownHostsStartFullyTrusted) {
  HostScoreboard board;
  EXPECT_DOUBLE_EQ(board.score("10.0.0.5", 0), 1.0);
  EXPECT_FALSE(board.quarantined("10.0.0.5", 0));
  EXPECT_EQ(board.violations(), 0u);
}

TEST(HostScoreboard, ReportMultipliesScoreByClassWeight) {
  HostScoreboard board;
  board.report("h", Misbehavior::kBogusOffer, 0);
  EXPECT_NEAR(board.score("h", 0),
              1.0 - misbehavior_weight(Misbehavior::kBogusOffer), 1e-12);
  // A second report compounds multiplicatively, not additively.
  board.report("h", Misbehavior::kBogusOffer, 0);
  const double w = misbehavior_weight(Misbehavior::kBogusOffer);
  EXPECT_NEAR(board.score("h", 0), (1.0 - w) * (1.0 - w), 1e-12);
}

TEST(HostScoreboard, SeverityOrderingAcrossClasses) {
  // Proof-grade misbehavior (corrupt checkpoint) must cost more than weak
  // circumstantial evidence (deploy timeout).
  EXPECT_GT(misbehavior_weight(Misbehavior::kCorruptCheckpoint),
            misbehavior_weight(Misbehavior::kDeployTimeout));
  EXPECT_GT(misbehavior_weight(Misbehavior::kAuditFailure),
            misbehavior_weight(Misbehavior::kNakFlood));
  for (std::size_t i = 0; i < kMisbehaviorCount; ++i) {
    const double w = misbehavior_weight(static_cast<Misbehavior>(i));
    EXPECT_GT(w, 0.0);
    EXPECT_LE(w, 1.0);
  }
}

TEST(HostScoreboard, PerClassViolationCounters) {
  HostScoreboard board;
  board.report("h", Misbehavior::kBogusOffer, 0);
  board.report("h", Misbehavior::kBogusOffer, 0);
  board.report("h", Misbehavior::kNakFlood, 0);
  EXPECT_EQ(board.violations(), 3u);
  EXPECT_EQ(board.violations(Misbehavior::kBogusOffer), 2u);
  EXPECT_EQ(board.violations(Misbehavior::kNakFlood), 1u);
  EXPECT_EQ(board.violations(Misbehavior::kCorruptCheckpoint), 0u);
}

TEST(HostScoreboard, HostsAreIndependent) {
  HostScoreboard board;
  board.report("bad", Misbehavior::kAuditFailure, 0);
  EXPECT_LT(board.score("bad", 0), 1.0);
  EXPECT_DOUBLE_EQ(board.score("good", 0), 1.0);
}

// --- HostScoreboard: decay-based rehabilitation ----------------------------

TEST(HostScoreboard, DistrustHalvesPerHalfLife) {
  HostScoreboardConfig cfg;
  cfg.rehab_half_life = seconds(60);
  HostScoreboard board(cfg);
  board.report("h", Misbehavior::kAuditFailure, 0);  // distrust 0.5
  EXPECT_NEAR(board.score("h", 0), 0.5, 1e-12);
  EXPECT_NEAR(board.score("h", seconds(60)), 0.75, 1e-9);
  EXPECT_NEAR(board.score("h", seconds(120)), 0.875, 1e-9);
}

TEST(HostScoreboard, SuccessReportsAddLinearRecovery) {
  HostScoreboardConfig cfg;
  cfg.rehab_half_life = seconds(1'000'000);  // isolate the linear term
  cfg.success_recovery = 0.1;
  HostScoreboard board(cfg);
  board.report("h", Misbehavior::kAuditFailure, 0);  // score 0.5
  board.report_success("h", 0);
  EXPECT_NEAR(board.score("h", 0), 0.6, 1e-9);
  // Recovery saturates at full trust, never overshoots.
  for (int i = 0; i < 20; ++i) board.report_success("h", 0);
  EXPECT_DOUBLE_EQ(board.score("h", 0), 1.0);
}

// --- HostScoreboard: hysteretic quarantine ---------------------------------

TEST(HostScoreboard, QuarantineEntersBelowLowWaterMark) {
  HostScoreboard board;  // enter < 0.35, exit > 0.65
  // kAuditFailure (0.5): one report -> score 0.5, still above 0.35.
  board.report("h", Misbehavior::kAuditFailure, 0);
  EXPECT_FALSE(board.quarantined("h", 0));
  // Second report -> 0.25 < 0.35: quarantined.
  board.report("h", Misbehavior::kAuditFailure, 0);
  EXPECT_TRUE(board.quarantined("h", 0));
  EXPECT_EQ(board.quarantine_enters(), 1u);
}

TEST(HostScoreboard, HysteresisHoldsQuarantineBetweenMarks) {
  HostScoreboardConfig cfg;
  cfg.rehab_half_life = seconds(60);
  HostScoreboard board(cfg);
  board.report("h", Misbehavior::kAuditFailure, 0);
  board.report("h", Misbehavior::kAuditFailure, 0);  // score 0.25
  ASSERT_TRUE(board.quarantined("h", 0));
  // One half-life: score 0.625 — above the entry mark but below the exit
  // mark, so the host stays latched in quarantine (no flapping).
  EXPECT_GT(board.score("h", seconds(60)), 0.35);
  EXPECT_LT(board.score("h", seconds(60)), 0.65);
  EXPECT_TRUE(board.quarantined("h", seconds(60)));
  // Two half-lives: 0.8125 > 0.65 — rehabilitated.
  EXPECT_FALSE(board.quarantined("h", seconds(120)));
  EXPECT_EQ(board.quarantine_exits(), 1u);
}

TEST(HostScoreboard, RehabilitatedHostCanRequarantine) {
  HostScoreboardConfig cfg;
  cfg.rehab_half_life = seconds(60);
  HostScoreboard board(cfg);
  board.report("h", Misbehavior::kAuditFailure, 0);
  board.report("h", Misbehavior::kAuditFailure, 0);
  ASSERT_TRUE(board.quarantined("h", 0));
  ASSERT_FALSE(board.quarantined("h", seconds(120)));
  // Relapse.
  board.report("h", Misbehavior::kAuditFailure, seconds(120));
  board.report("h", Misbehavior::kAuditFailure, seconds(120));
  EXPECT_TRUE(board.quarantined("h", seconds(120)));
  EXPECT_EQ(board.quarantine_enters(), 2u);
}

// --- CircuitBreaker --------------------------------------------------------

TEST(CircuitBreaker, OpensAfterConsecutiveFailures) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  cfg.open_for = seconds(10);
  CircuitBreaker b(cfg);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  b.record_failure(0);
  b.record_failure(0);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.allow(0));
  b.record_failure(0);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.allow(seconds(5)));
  EXPECT_GE(b.rejected(), 1u);
}

TEST(CircuitBreaker, SuccessResetsTheFailureStreak) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 3;
  CircuitBreaker b(cfg);
  b.record_failure(0);
  b.record_failure(0);
  b.record_success();
  b.record_failure(0);
  b.record_failure(0);
  EXPECT_EQ(b.state(), BreakerState::kClosed);  // streak broken, never opened
}

TEST(CircuitBreaker, HalfOpenAdmitsExactlyOneProbe) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_for = seconds(10);
  CircuitBreaker b(cfg);
  b.record_failure(0);
  ASSERT_EQ(b.state(), BreakerState::kOpen);
  // Cool-down elapsed: the first attempt becomes the half-open probe, the
  // second is held until the probe resolves.
  EXPECT_TRUE(b.allow(seconds(10)));
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(b.allow(seconds(10)));
  // Probe succeeds: closed again.
  b.record_success();
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.allow(seconds(10)));
}

TEST(CircuitBreaker, FailedProbeReopens) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 1;
  cfg.open_for = seconds(10);
  CircuitBreaker b(cfg);
  b.record_failure(0);
  ASSERT_TRUE(b.allow(seconds(10)));  // half-open probe
  b.record_failure(seconds(10));
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_FALSE(b.allow(seconds(15)));
  // And the cool-down restarts from the failed probe.
  EXPECT_TRUE(b.allow(seconds(20)));
}

TEST(CircuitBreaker, NonPositiveThresholdDisablesTripping) {
  CircuitBreakerConfig cfg;
  cfg.failure_threshold = 0;
  CircuitBreaker b(cfg);
  for (int i = 0; i < 100; ++i) b.record_failure(0);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_TRUE(b.allow(0));
}

// --- Legacy ReputationSystem stays as-was ----------------------------------

TEST(ReputationSystem, ViolationAndRecoveryUnchanged) {
  ReputationSystem rep(0.3);
  EXPECT_DOUBLE_EQ(rep.score("p"), 1.0);
  rep.report_violation("p", 0.5);
  EXPECT_DOUBLE_EQ(rep.score("p"), 0.5);
  rep.report_violation("p", 0.5);
  EXPECT_TRUE(rep.blacklisted("p"));
  EXPECT_EQ(rep.pick_provider({"p", "q"}), "q");
}

}  // namespace
}  // namespace pvn
