// Tests for the packet-level network simulator: addresses, links (delay,
// bandwidth, loss, queues), routers, and trace collection.
#include <gtest/gtest.h>

#include "netsim/network.h"
#include "netsim/router.h"
#include "netsim/trace.h"

namespace pvn {
namespace {

// A node that records everything it receives.
class SinkNode : public Node {
 public:
  SinkNode(Network& net, std::string name) : Node(net, std::move(name)) {}
  void handle_packet(Packet pkt, int in_port) override {
    received.push_back(std::move(pkt));
    in_ports.push_back(in_port);
    arrival_times.push_back(sim().now());
  }
  std::vector<Packet> received;
  std::vector<int> in_ports;
  std::vector<SimTime> arrival_times;
};

// A node that reflects packets back out the port they arrived on.
class EchoNode : public Node {
 public:
  EchoNode(Network& net, std::string name) : Node(net, std::move(name)) {}
  void handle_packet(Packet pkt, int in_port) override {
    std::swap(pkt.ip.src, pkt.ip.dst);
    send(in_port, std::move(pkt));
  }
};

Packet test_packet(Network& net, std::size_t payload = 100) {
  return net.make_packet(Ipv4Addr(10, 0, 0, 1), Ipv4Addr(10, 0, 0, 2),
                         IpProto::kUdp, Bytes(payload, 0xAA));
}

// --- Addresses ----------------------------------------------------------------

TEST(Ipv4Addr, ParseAndPrintRoundTrip) {
  const auto a = Ipv4Addr::parse("192.168.1.42");
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->to_string(), "192.168.1.42");
  EXPECT_EQ(a->v, 0xC0A8012Au);
}

TEST(Ipv4Addr, ParseRejectsMalformed) {
  EXPECT_FALSE(Ipv4Addr::parse("").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.4.5").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("256.0.0.1").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1.2.3.x").has_value());
  EXPECT_FALSE(Ipv4Addr::parse("1..3.4").has_value());
}

TEST(Prefix, ContainsRespectsLength) {
  const auto p = Prefix::parse("10.1.0.0/16");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->contains(Ipv4Addr(10, 1, 200, 7)));
  EXPECT_FALSE(p->contains(Ipv4Addr(10, 2, 0, 1)));
  const auto all = Prefix::parse("0.0.0.0/0");
  ASSERT_TRUE(all.has_value());
  EXPECT_TRUE(all->contains(Ipv4Addr(255, 255, 255, 255)));
}

TEST(Prefix, HostParseDefaultsTo32) {
  const auto p = Prefix::parse("10.0.0.5");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->len, 32);
  EXPECT_TRUE(p->contains(Ipv4Addr(10, 0, 0, 5)));
  EXPECT_FALSE(p->contains(Ipv4Addr(10, 0, 0, 6)));
}

TEST(Prefix, ParseRejectsBadLength) {
  EXPECT_FALSE(Prefix::parse("10.0.0.0/33").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/-1").has_value());
  EXPECT_FALSE(Prefix::parse("10.0.0.0/").has_value());
}

// --- IpHeader codec --------------------------------------------------------------

TEST(IpHeader, EncodeDecodeRoundTrip) {
  IpHeader h;
  h.src = Ipv4Addr(1, 2, 3, 4);
  h.dst = Ipv4Addr(5, 6, 7, 8);
  h.proto = IpProto::kTcp;
  h.ttl = 17;
  h.tos = 0x2E;
  ByteWriter w;
  h.encode(w);
  EXPECT_EQ(w.size(), IpHeader::kWireSize);
  ByteReader r(w.bytes());
  EXPECT_EQ(IpHeader::decode(r), h);
  EXPECT_TRUE(r.exhausted());
}

// --- Links ---------------------------------------------------------------------

TEST(Link, DeliversWithLatencyPlusSerialization) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  LinkParams lp;
  lp.rate = Rate::mbps(12);          // 1500B -> 1ms serialization
  lp.latency = milliseconds(10);
  net.connect(a, b, lp);

  Packet pkt = test_packet(net, 1500 - IpHeader::kWireSize);
  EXPECT_EQ(pkt.size(), 1500u);
  a.send(0, std::move(pkt));
  net.sim().run();

  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.arrival_times[0], milliseconds(11));
  EXPECT_EQ(b.in_ports[0], 0);
}

TEST(Link, SerializationDelaysBackToBackPackets) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  LinkParams lp;
  lp.rate = Rate::mbps(12);
  lp.latency = 0;
  net.connect(a, b, lp);

  for (int i = 0; i < 3; ++i) {
    a.send(0, test_packet(net, 1500 - IpHeader::kWireSize));
  }
  net.sim().run();
  ASSERT_EQ(b.received.size(), 3u);
  EXPECT_EQ(b.arrival_times[0], milliseconds(1));
  EXPECT_EQ(b.arrival_times[1], milliseconds(2));
  EXPECT_EQ(b.arrival_times[2], milliseconds(3));
}

TEST(Link, IsFullDuplex) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  LinkParams lp;
  lp.rate = Rate::mbps(12);
  lp.latency = 0;
  net.connect(a, b, lp);

  // Simultaneous sends in both directions must not serialize behind each
  // other.
  a.send(0, test_packet(net, 1500 - IpHeader::kWireSize));
  b.send(0, test_packet(net, 1500 - IpHeader::kWireSize));
  net.sim().run();
  ASSERT_EQ(a.received.size(), 1u);
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(a.arrival_times[0], milliseconds(1));
  EXPECT_EQ(b.arrival_times[0], milliseconds(1));
}

TEST(Link, DropTailQueueBoundsBacklog) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  LinkParams lp;
  lp.rate = Rate::kbps(100);
  lp.latency = 0;
  lp.queue_bytes = 3000;  // room for ~2 x 1500B packets in the queue
  Link& link = net.connect(a, b, lp);

  for (int i = 0; i < 10; ++i) {
    a.send(0, test_packet(net, 1500 - IpHeader::kWireSize));
  }
  net.sim().run();
  // 1 in flight + 2 queued = 3 delivered; 7 dropped.
  EXPECT_EQ(b.received.size(), 3u);
  EXPECT_EQ(link.stats_from(a).queue_drops, 7u);
  EXPECT_EQ(link.stats_from(a).delivered_packets, 3u);
}

TEST(Link, LossDropsApproximatelyAtConfiguredRate) {
  Network net(1234);
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  LinkParams lp;
  lp.rate = Rate::gbps(10);
  lp.latency = 0;
  lp.loss = 0.2;
  lp.queue_bytes = 100 * kMiB;
  Link& link = net.connect(a, b, lp);

  const int n = 5000;
  for (int i = 0; i < n; ++i) a.send(0, test_packet(net, 80));
  net.sim().run();
  const double delivered = static_cast<double>(b.received.size()) / n;
  EXPECT_NEAR(delivered, 0.8, 0.03);
  EXPECT_EQ(link.stats_from(a).loss_drops + b.received.size(),
            static_cast<std::uint64_t>(n));
}

TEST(Link, ZeroLossDeliversEverything) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  LinkParams lp;
  lp.rate = Rate::gbps(10);
  lp.queue_bytes = 100 * kMiB;
  net.connect(a, b, lp);
  for (int i = 0; i < 1000; ++i) a.send(0, test_packet(net, 80));
  net.sim().run();
  EXPECT_EQ(b.received.size(), 1000u);
}

TEST(Link, StatsCountBytes) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  Link& link = net.connect(a, b);
  a.send(0, test_packet(net, 100));
  net.sim().run();
  EXPECT_EQ(link.stats_from(a).tx_bytes, 120u);  // 100 + 20B header
  EXPECT_EQ(link.stats_from(b).tx_bytes, 0u);
}

TEST(Node, SendOnUnwiredPortCountsDrop) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  a.send(0, test_packet(net));
  a.send(5, test_packet(net));
  net.sim().run();
  EXPECT_EQ(a.dropped_on_unwired_port(), 2u);
}

TEST(Network, DuplicateNodeNameThrows) {
  Network net;
  net.add_node<SinkNode>("dup");
  EXPECT_THROW(net.add_node<SinkNode>("dup"), std::invalid_argument);
}

TEST(Network, FindNodeByName) {
  Network net;
  auto& a = net.add_node<SinkNode>("alpha");
  EXPECT_EQ(net.find_node("alpha"), &a);
  EXPECT_EQ(net.find_node("missing"), nullptr);
}

TEST(Network, PacketIdsAreUnique) {
  Network net;
  const Packet p1 = test_packet(net);
  const Packet p2 = test_packet(net);
  EXPECT_NE(p1.id, p2.id);
}

// --- Router ----------------------------------------------------------------------

TEST(Router, LongestPrefixMatchWins) {
  Network net;
  auto& r = net.add_node<Router>("r");
  auto& coarse = net.add_node<SinkNode>("coarse");
  auto& fine = net.add_node<SinkNode>("fine");
  auto& src = net.add_node<SinkNode>("src");
  net.connect(src, r);     // r port 0
  net.connect(r, coarse);  // r port 1
  net.connect(r, fine);    // r port 2
  r.add_route(*Prefix::parse("10.0.0.0/8"), 1);
  r.add_route(*Prefix::parse("10.1.0.0/16"), 2);

  Packet to_fine = net.make_packet(Ipv4Addr(1, 1, 1, 1), Ipv4Addr(10, 1, 9, 9),
                                   IpProto::kUdp, {});
  Packet to_coarse = net.make_packet(Ipv4Addr(1, 1, 1, 1),
                                     Ipv4Addr(10, 200, 0, 1), IpProto::kUdp, {});
  src.send(0, std::move(to_fine));
  src.send(0, std::move(to_coarse));
  net.sim().run();
  EXPECT_EQ(fine.received.size(), 1u);
  EXPECT_EQ(coarse.received.size(), 1u);
}

TEST(Router, NoRouteDrops) {
  Network net;
  auto& r = net.add_node<Router>("r");
  auto& src = net.add_node<SinkNode>("src");
  net.connect(src, r);
  src.send(0, test_packet(net));
  net.sim().run();
  EXPECT_EQ(r.no_route_drops(), 1u);
}

TEST(Router, DecrementsTtlAndDropsExpired) {
  Network net;
  auto& r = net.add_node<Router>("r");
  auto& dst = net.add_node<SinkNode>("dst");
  auto& src = net.add_node<SinkNode>("src");
  net.connect(src, r);
  net.connect(r, dst);
  r.add_route(*Prefix::parse("0.0.0.0/0"), 1);

  Packet pkt = test_packet(net);
  pkt.ip.ttl = 3;
  src.send(0, std::move(pkt));
  Packet dead = test_packet(net);
  dead.ip.ttl = 0;
  src.send(0, std::move(dead));
  net.sim().run();
  ASSERT_EQ(dst.received.size(), 1u);
  EXPECT_EQ(dst.received[0].ip.ttl, 2);
  EXPECT_EQ(r.ttl_drops(), 1u);
}

TEST(Router, RemoveRoute) {
  Network net;
  auto& r = net.add_node<Router>("r");
  auto& dst = net.add_node<SinkNode>("dst");
  auto& src = net.add_node<SinkNode>("src");
  net.connect(src, r);
  net.connect(r, dst);
  const Prefix all = *Prefix::parse("0.0.0.0/0");
  r.add_route(all, 1);
  EXPECT_TRUE(r.remove_route(all));
  EXPECT_FALSE(r.remove_route(all));
  src.send(0, test_packet(net));
  net.sim().run();
  EXPECT_EQ(dst.received.size(), 0u);
  EXPECT_EQ(r.no_route_drops(), 1u);
}

// --- Hop trace & echo ---------------------------------------------------------------

TEST(Packet, HopTraceRecordsPath) {
  Network net;
  auto& src = net.add_node<SinkNode>("src");
  auto& r1 = net.add_node<Router>("r1");
  auto& r2 = net.add_node<Router>("r2");
  auto& dst = net.add_node<SinkNode>("dst");
  net.connect(src, r1);
  net.connect(r1, r2);
  net.connect(r2, dst);
  r1.add_route(*Prefix::parse("0.0.0.0/0"), 1);
  r2.add_route(*Prefix::parse("0.0.0.0/0"), 1);

  src.send(0, test_packet(net));
  net.sim().run();
  ASSERT_EQ(dst.received.size(), 1u);
  EXPECT_EQ(dst.received[0].hop_trace.strings(),
            (std::vector<std::string>{"src", "r1", "r2"}));
}

// Regression: interned hop traces must round-trip to the exact strings the
// pre-interning vector<string> representation produced (what the auditor
// benches compare against as ground truth).
TEST(Packet, InternedHopTraceRoundTripsToStrings) {
  Network net;
  auto& src = net.add_node<SinkNode>("gw-src");
  auto& r1 = net.add_node<Router>("isp.access-1");
  auto& dst = net.add_node<SinkNode>("subscriber/42");
  net.connect(src, r1);
  net.connect(r1, dst);
  r1.add_route(*Prefix::parse("0.0.0.0/0"), 1);

  src.send(0, test_packet(net));
  src.send(0, test_packet(net));
  net.sim().run();
  ASSERT_EQ(dst.received.size(), 2u);
  const std::vector<std::string> want{"gw-src", "isp.access-1"};
  EXPECT_EQ(dst.received[0].hop_trace.strings(), want);
  EXPECT_EQ(dst.received[1].hop_trace.strings(), want);
  // Both packets traversed the same nodes, so their interned ids are equal
  // and drawn from the one per-Network table.
  EXPECT_EQ(dst.received[0].hop_trace, dst.received[1].hop_trace);
  EXPECT_EQ(dst.received[0].hop_trace.names, &net.names());
  // Ids are stable: interning the same name again is a no-op.
  EXPECT_EQ(net.names().intern("gw-src"), dst.received[0].hop_trace.ids[0]);
}

TEST(Network, FindNodeWithStringViewIsTransparent) {
  Network net;
  auto& node = net.add_node<SinkNode>("needle");
  const std::string_view sv = "needle";
  EXPECT_EQ(net.find_node(sv), &node);
  EXPECT_EQ(net.find_node("missing"), nullptr);
}

// CoW payloads: copies share the backing buffer; in-place mutation detaches
// the writer and leaves other holders untouched.
TEST(Packet, CopyOnWritePayloadSharesUntilMutated) {
  Network net;
  Packet a = test_packet(net, 64);
  EXPECT_EQ(a.l4.use_count(), 1);
  Packet b = a;
  EXPECT_EQ(a.l4.use_count(), 2);
  EXPECT_EQ(b.l4.data(), a.l4.data());

  b.l4[0] ^= 0xFF;  // detaches b
  EXPECT_EQ(a.l4.use_count(), 1);
  EXPECT_NE(b.l4.data(), a.l4.data());
  EXPECT_EQ(a.l4[0], 0xAA);
  EXPECT_EQ(b.l4[0], 0xAA ^ 0xFF);
}

TEST(EchoNode, RoundTripTimeIsTwiceOneWay) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& echo = net.add_node<EchoNode>("echo");
  LinkParams lp;
  lp.rate = Rate::gbps(100);  // negligible serialization
  lp.latency = milliseconds(25);
  net.connect(a, echo, lp);
  a.send(0, test_packet(net, 10));
  net.sim().run();
  ASSERT_EQ(a.received.size(), 1u);
  EXPECT_GE(a.arrival_times[0], milliseconds(50));
  EXPECT_LT(a.arrival_times[0], milliseconds(51));
}

// --- TraceCollector ------------------------------------------------------------------

TEST(TraceCollector, RecordsDeliveredPackets) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  Link& link = net.connect(a, b);
  TraceCollector tc(net.sim());
  tc.attach(link);
  for (int i = 0; i < 5; ++i) a.send(0, test_packet(net, 100));
  net.sim().run();
  EXPECT_EQ(tc.records().size(), 5u);
  EXPECT_EQ(tc.bytes_from_to("a", "b"), 5 * 120u);
  EXPECT_EQ(tc.bytes_from_to("b", "a"), 0u);
  EXPECT_EQ(tc.count_packets(IpProto::kUdp), 5u);
  EXPECT_EQ(tc.count_packets(IpProto::kTcp), 0u);
}

TEST(TraceCollector, ThroughputReflectsLinkRate) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  LinkParams lp;
  lp.rate = Rate::mbps(10);
  lp.latency = 0;
  lp.queue_bytes = 10 * kMiB;
  Link& link = net.connect(a, b, lp);
  TraceCollector tc(net.sim());
  tc.attach(link);
  for (int i = 0; i < 200; ++i) {
    a.send(0, test_packet(net, 1500 - IpHeader::kWireSize));
  }
  net.sim().run();
  // Back-to-back packets on a saturated link: observed rate ~= link rate.
  EXPECT_NEAR(tc.mean_throughput_bps("a", "b") / 1e6, 10.0, 0.5);
}


TEST(Link, ChainedTapsAllObserveEveryDelivery) {
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  Link& link = net.connect(a, b);

  // Regression: attaching a TraceCollector used to silently evict any
  // previously installed tap. Both observers must now see every packet.
  int attacker_seen = 0;
  link.add_tap([&](const Packet&, const Node&, const Node&) {
    ++attacker_seen;
  });
  TraceCollector tc(net.sim());
  tc.attach(link);
  EXPECT_EQ(link.tap_count(), 2u);

  for (int i = 0; i < 5; ++i) a.send(0, test_packet(net, 100));
  net.sim().run();
  EXPECT_EQ(attacker_seen, 5);
  EXPECT_EQ(tc.records().size(), 5u);

  // Legacy single-observer semantics still available explicitly.
  link.set_tap([](const Packet&, const Node&, const Node&) {});
  EXPECT_EQ(link.tap_count(), 1u);
  link.clear_taps();
  EXPECT_EQ(link.tap_count(), 0u);
}

// Parameterized property: delivery time = latency + size/rate across a grid.
struct LinkTimingCase {
  int mbps;
  int payload;
  int latency_ms;
};

class LinkTimingProperty : public ::testing::TestWithParam<LinkTimingCase> {};

TEST_P(LinkTimingProperty, OnePacketTiming) {
  const auto [mbps, payload, latency_ms] = GetParam();
  Network net;
  auto& a = net.add_node<SinkNode>("a");
  auto& b = net.add_node<SinkNode>("b");
  LinkParams lp;
  lp.rate = Rate::mbps(mbps);
  lp.latency = milliseconds(latency_ms);
  net.connect(a, b, lp);
  Packet pkt = test_packet(net, static_cast<std::size_t>(payload));
  const auto size = static_cast<std::int64_t>(pkt.size());
  a.send(0, std::move(pkt));
  net.sim().run();
  ASSERT_EQ(b.received.size(), 1u);
  EXPECT_EQ(b.arrival_times[0],
            milliseconds(latency_ms) + lp.rate.transmit_time(size));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, LinkTimingProperty,
    ::testing::Values(LinkTimingCase{1, 100, 1}, LinkTimingCase{10, 1480, 5},
                      LinkTimingCase{100, 9000, 20},
                      LinkTimingCase{1000, 64, 0},
                      LinkTimingCase{25, 4000, 50}));

}  // namespace
}  // namespace pvn
