// Shared test topologies.
#pragma once

#include "netsim/network.h"
#include "netsim/router.h"
#include "proto/host.h"

namespace pvn::testing {

// client --(access link)-- router --(core link)-- server
struct DumbbellTopo {
  Network net;
  Host* client = nullptr;
  Host* server = nullptr;
  Router* router = nullptr;
  Link* access = nullptr;
  Link* core = nullptr;

  explicit DumbbellTopo(LinkParams access_params = {},
                        LinkParams core_params = {},
                        std::uint64_t seed = 1)
      : net(seed) {
    client = &net.add_node<Host>("client", Ipv4Addr(10, 0, 0, 2));
    server = &net.add_node<Host>("server", Ipv4Addr(93, 184, 216, 34));
    router = &net.add_node<Router>("router");
    access = &net.connect(*client, *router, access_params);
    core = &net.connect(*router, *server, core_params);
    router->add_route(*Prefix::parse("10.0.0.0/8"), 0);
    router->add_route(*Prefix::parse("0.0.0.0/0"), 1);
  }
};

// Collects a byte stream delivered via TcpConnection::on_data.
struct StreamSink {
  Bytes data;
  bool closed = false;

  void attach(TcpConnection& conn) {
    conn.on_data = [this](const Bytes& chunk) {
      data.insert(data.end(), chunk.begin(), chunk.end());
    };
    conn.on_eof = [&conn] { conn.close(); };  // close our half on EOF
    conn.on_closed = [this] { closed = true; };
  }
};

inline Bytes pattern_bytes(std::size_t n, std::uint8_t phase = 0) {
  Bytes b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b[i] = static_cast<std::uint8_t>((i * 31 + phase) & 0xFF);
  }
  return b;
}

}  // namespace pvn::testing
